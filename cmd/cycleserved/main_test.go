package main

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/service"
	"repro/internal/store"
)

// newTestServer builds a server over the real routing table; dir != ""
// backs the corpus with a durable store (returned for reopen tests).
func newTestServer(t *testing.T, dir string) (*server, *store.Store) {
	t.Helper()
	var persist *store.Store
	if dir != "" {
		var err error
		persist, err = store.Open(dir, store.Options{CompactThreshold: -1, Logf: t.Logf})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { persist.Close() })
	}
	svc := service.New(service.Config{Slots: 2, BatchSize: 1, Persist: persist})
	return &server{svc: svc, store: persist, defaultIterations: 4}, persist
}

func do(t *testing.T, h http.Handler, method, path, body string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(method, path, strings.NewReader(body))
	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, req)
	return rr
}

func TestCorpusMutationEndpoints(t *testing.T) {
	srv, _ := newTestServer(t, "")
	h := srv.routes()

	steps := []struct {
		name, method, path, body string
		want                     int
	}{
		{"create-inline", "POST", "/v1/corpus/ring", `{"graph":{"n":6,"edges":[[0,1],[1,2],[2,3],[3,4],[4,5],[5,0]]}}`, 201},
		{"create-duplicate", "POST", "/v1/corpus/ring", `{"graph":{"n":3,"edges":[[0,1]]}}`, 409},
		{"create-from-spec", "POST", "/v1/corpus/gen", `{"spec":"planted:64:3:1.5","seed":7}`, 201},
		{"create-bad-spec", "POST", "/v1/corpus/bad", `{"spec":"nonsense:1:2"}`, 400},
		{"create-empty-body", "POST", "/v1/corpus/empty", `{}`, 400},
		{"create-both-forms", "POST", "/v1/corpus/both", `{"graph":{"n":2,"edges":[[0,1]]},"spec":"planted:64:3:1.5"}`, 400},
		{"create-unknown-field", "POST", "/v1/corpus/junk", `{"grap":{"n":2}}`, 400},
		{"create-malformed-json", "POST", "/v1/corpus/junk", `{"graph":`, 400},
		{"create-absurd-n", "POST", "/v1/corpus/huge", `{"graph":{"n":134000000,"edges":[[0,1]]}}`, 400},
		{"create-file-spec", "POST", "/v1/corpus/lfi", `{"spec":"file:/etc/hostname"}`, 400},
		{"create-oversize-spec", "POST", "/v1/corpus/big", `{"spec":"gnm:20000000:60000000"}`, 400},
		{"create-overflow-spec", "POST", "/v1/corpus/wrap", `{"spec":"pg:4000000000"}`, 400},
		{"create-negative-spec", "POST", "/v1/corpus/neg", `{"spec":"gnm:-5:-10"}`, 400},
		{"create-long-name", "POST", "/v1/corpus/" + strings.Repeat("n", 513), `{"graph":{"n":2,"edges":[[0,1]]}}`, 400},
		{"add-edges", "POST", "/v1/corpus/ring/edges", `{"edges":[[0,3],[1,4]]}`, 200},
		{"add-edges-unknown", "POST", "/v1/corpus/ghost/edges", `{"edges":[[0,1]]}`, 404},
		{"add-edges-empty", "POST", "/v1/corpus/ring/edges", `{"edges":[]}`, 400},
		{"add-edges-negative", "POST", "/v1/corpus/ring/edges", `{"edges":[[-1,2]]}`, 400},
		{"detect-on-corpus", "POST", "/v1/detect", `{"algo":"det","k":2,"corpus":"ring"}`, 200},
		{"detect-unknown-corpus", "POST", "/v1/detect", `{"algo":"det","k":2,"corpus":"ghost"}`, 404},
		{"delete", "DELETE", "/v1/corpus/gen", ``, 200},
		{"delete-unknown", "DELETE", "/v1/corpus/gen", ``, 404},
		{"store-stats-memory-only", "GET", "/v1/store", ``, 404},
	}
	for _, s := range steps {
		rr := do(t, h, s.method, s.path, s.body)
		if rr.Code != s.want {
			t.Fatalf("%s: %s %s → %d, want %d (body: %s)", s.name, s.method, s.path, rr.Code, s.want, rr.Body)
		}
	}

	// The add-edges response carries the post-mutation shape, and the
	// detect cycle through the mutated graph still works.
	rr := do(t, h, "POST", "/v1/corpus/ring/edges", `{"edges":[[2,5]]}`)
	var entry corpusEntry
	if err := json.Unmarshal(rr.Body.Bytes(), &entry); err != nil {
		t.Fatal(err)
	}
	if entry.M != 9 || entry.Fingerprint == "" {
		t.Fatalf("mutated entry = %+v, want 9 edges and a fingerprint", entry)
	}
}

// TestMutationWhileDraining proves the admit middleware refuses corpus
// mutations (and everything but healthz) once the server drains.
func TestMutationWhileDraining(t *testing.T) {
	srv, _ := newTestServer(t, "")
	h := srv.routes()
	if rr := do(t, h, "POST", "/v1/corpus/pre", `{"graph":{"n":2,"edges":[[0,1]]}}`); rr.Code != 201 {
		t.Fatalf("pre-drain create → %d", rr.Code)
	}
	srv.draining.Store(true)

	rr := do(t, h, "POST", "/v1/corpus/post", `{"graph":{"n":2,"edges":[[0,1]]}}`)
	if rr.Code != http.StatusServiceUnavailable {
		t.Fatalf("draining create → %d, want 503", rr.Code)
	}
	if rr.Header().Get("Retry-After") == "" {
		t.Fatal("draining 503 carries no Retry-After")
	}
	if rr := do(t, h, "POST", "/v1/corpus/pre/edges", `{"edges":[[0,1]]}`); rr.Code != http.StatusServiceUnavailable {
		t.Fatalf("draining add-edges → %d, want 503", rr.Code)
	}
	if rr := do(t, h, "GET", "/healthz", ""); rr.Code != http.StatusServiceUnavailable {
		t.Fatalf("draining healthz → %d, want 503 (draining body)", rr.Code)
	} else if !strings.Contains(rr.Body.String(), "draining") {
		t.Fatalf("draining healthz body %s does not say draining", rr.Body)
	}
}

// TestDurableMutationsSurviveReopen drives mutations through the HTTP
// layer into a real store, then rebuilds server+service+store from the
// directory and checks the corpus comes back fingerprint-identical.
func TestDurableMutationsSurviveReopen(t *testing.T) {
	dir := t.TempDir()
	srv, persist := newTestServer(t, dir)
	h := srv.routes()

	if rr := do(t, h, "POST", "/v1/corpus/ring", `{"graph":{"n":6,"edges":[[0,1],[1,2],[2,3],[3,4],[4,5],[5,0]]}}`); rr.Code != 201 {
		t.Fatalf("create → %d: %s", rr.Code, rr.Body)
	}
	rr := do(t, h, "POST", "/v1/corpus/ring/edges", `{"edges":[[0,3]]}`)
	if rr.Code != 200 {
		t.Fatalf("add-edges → %d: %s", rr.Code, rr.Body)
	}
	var acked corpusEntry
	if err := json.Unmarshal(rr.Body.Bytes(), &acked); err != nil {
		t.Fatal(err)
	}
	if rr := do(t, h, "POST", "/v1/corpus/doomed", `{"spec":"planted:64:3:1.5","seed":3}`); rr.Code != 201 {
		t.Fatalf("create doomed → %d", rr.Code)
	}
	if rr := do(t, h, "DELETE", "/v1/corpus/doomed", ""); rr.Code != 200 {
		t.Fatalf("delete doomed → %d", rr.Code)
	}
	var st store.Stats
	if rr := do(t, h, "GET", "/v1/store", ""); rr.Code != 200 {
		t.Fatalf("store stats → %d", rr.Code)
	} else if err := json.Unmarshal(rr.Body.Bytes(), &st); err != nil {
		t.Fatal(err)
	}
	if st.Appended != 4 || st.Graphs != 1 {
		t.Fatalf("store stats = %+v, want 4 appended mutations and 1 graph", st)
	}
	persist.Close()

	srv2, _ := newTestServer(t, dir)
	h2 := srv2.routes()
	rr = do(t, h2, "GET", "/v1/corpus", "")
	var entries []corpusEntry
	if err := json.Unmarshal(rr.Body.Bytes(), &entries); err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 || entries[0].Name != "ring" {
		t.Fatalf("recovered corpus = %+v, want only ring", entries)
	}
	if entries[0].Fingerprint != acked.Fingerprint || entries[0].M != acked.M {
		t.Fatalf("recovered ring = %+v, want acknowledged shape %+v", entries[0], acked)
	}
	// And the recovered graph serves detections.
	if rr := do(t, h2, "POST", "/v1/detect", `{"algo":"det","k":2,"corpus":"ring"}`); rr.Code != 200 {
		t.Fatalf("detect on recovered corpus → %d: %s", rr.Code, rr.Body)
	}
}

// TestFlagSeededCorpusIsDurablyMutable proves -corpus seeding composes
// with -data-dir: seeded graphs are persisted at boot, so the API can
// append edges to and delete them (they are real store entries, not
// memory-only registrations that 404 on mutation), and after a restart
// the durable — possibly mutated — value wins over the spec.
func TestFlagSeededCorpusIsDurablyMutable(t *testing.T) {
	dir := t.TempDir()
	srv, persist := newTestServer(t, dir)
	entries := []string{"seeded=planted:64:3:1.5", "doomed=gnm:32:40"}
	if err := seedCorpus(srv.svc, true, entries, 7); err != nil {
		t.Fatal(err)
	}
	h := srv.routes()

	rr := do(t, h, "POST", "/v1/corpus/seeded/edges", `{"edges":[[0,9],[1,8]]}`)
	if rr.Code != 200 {
		t.Fatalf("add-edges on flag-seeded graph → %d: %s", rr.Code, rr.Body)
	}
	var mutated corpusEntry
	if err := json.Unmarshal(rr.Body.Bytes(), &mutated); err != nil {
		t.Fatal(err)
	}
	if rr := do(t, h, "DELETE", "/v1/corpus/doomed", ""); rr.Code != 200 {
		t.Fatalf("delete of flag-seeded graph → %d: %s", rr.Code, rr.Body)
	}
	persist.Close()

	// Restart with the same flags. "seeded" keeps its mutated durable
	// value (the spec is skipped with a warning); "doomed" is gone from
	// the store, so the flag re-seeds it — the flag means "ensure this
	// name exists", and durable state wins only where it exists.
	srv2, _ := newTestServer(t, dir)
	if err := seedCorpus(srv2.svc, true, entries, 7); err != nil {
		t.Fatalf("re-seeding after restart: %v", err)
	}
	g, ok := srv2.svc.NamedGraph("seeded")
	if !ok {
		t.Fatal("seeded graph lost across restart")
	}
	if g.Fingerprint().String() != mutated.Fingerprint {
		t.Fatalf("recovered seeded graph fp = %s, want mutated %s (durable state must win over the spec)",
			g.Fingerprint(), mutated.Fingerprint)
	}
	if _, ok := srv2.svc.NamedGraph("doomed"); !ok {
		t.Fatal("deleted flag graph was not re-seeded on the next boot")
	}
}
