// Command cycleserved serves the repository's cycle detectors over
// HTTP/JSON: a long-running detection service with a bounded worker pool,
// single-flight coalescing of identical requests, and a verdict cache
// keyed by graph fingerprint (see internal/service and
// docs/ARCHITECTURE.md, "Service layer").
//
// Usage:
//
//	cycleserved -addr :8972 \
//	  -corpus planted-a=planted:2000:4:1.5 -corpus free-a=highgirth:2000:3000:6
//
// API:
//
//	POST /v1/detect     {"algo":"even|bounded|odd|det","k":2,
//	                     "corpus":"name" | "graph":{"n":N,"edges":[[u,v],...]},
//	                     "seed":S,"iterations":I,"threshold":T,"pipelined":false}
//	                    → the verdict JSON (found, witness, rounds, bits, ...).
//	                    Serve-path metadata travels in headers
//	                    (X-Evencycle-Source: cache|coalesced|amplified|computed,
//	                    X-Evencycle-Elapsed-Ns, and for computed requests
//	                    X-Evencycle-Batch: the engine batch size the request
//	                    was fused into), keeping deterministic-mode response
//	                    bodies byte-identical across serves.
//	POST /v1/jobs       same body → {"id":"job-N"} immediately (async).
//	GET  /v1/jobs/{id}  → job status, including the verdict once done.
//	GET  /v1/jobs/{id}/witness → just the witness cycle of a done job.
//	GET  /v1/corpus     → the registered named graphs with fingerprints.
//	GET  /v1/stats      → request/hit/coalesce/amplify/engine-session counters,
//	                    plus the failure-domain counters (shed, deadline_exceeded,
//	                    cancelled, panics, batches_skipped, mean_session_ms).
//	GET  /healthz       → {"ok":true} once the corpus is built;
//	                    {"ok":false,"draining":true} with 503 during shutdown.
//
// Error taxonomy (see internal/service and docs/ARCHITECTURE.md,
// "Failure domains & request lifecycle"):
//
//	400  malformed request (bad algo, bad graph, negative deadline)
//	404  unknown corpus name or job id
//	408  the request's deadline (deadline_ms, or -deadline default,
//	     capped by -max-deadline) expired before or during detection
//	429  load shed: the admission queue is full, or the estimated queue
//	     wait already exceeds the request's remaining deadline
//	499  the client disconnected and the detection was cancelled
//	     cooperatively at an engine round boundary
//	503  a detector panic was contained (response carries the error), or
//	     the server is draining after SIGTERM (Retry-After is set)
//
// On SIGTERM/SIGINT the server stops admitting work (503 + Retry-After,
// healthz flips to draining), lets in-flight and accepted async jobs
// finish (bounded by -drain-timeout), then exits 0.
//
// -fault arms deterministic fault-injection points (repeatable; spec
// point:every=N[:limit=M][:delay=D], see internal/faultpoint). Faults are
// for chaos testing only and are loudly logged at startup.
//
// Cache policy: deterministic-mode (algo=det) verdicts are pure functions
// of the graph and cache forever (the seed is not part of the key);
// randomized verdicts record their trial budget — a repeat query within
// budget is a pure hit, a larger budget runs only the missing trials
// (amplification). -iterations sets the default budget for requests that
// omit one.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"sync/atomic"
	"syscall"
	"time"

	"repro/internal/faultpoint"
	"repro/internal/graph"
	"repro/internal/service"
)

// listFlag collects repeated string flags (-corpus name=spec, -fault spec).
type listFlag []string

func (c *listFlag) String() string { return strings.Join(*c, ",") }
func (c *listFlag) Set(v string) error {
	*c = append(*c, v)
	return nil
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "cycleserved:", err)
		os.Exit(1)
	}
}

func run() error {
	addr := flag.String("addr", ":8972", "listen address")
	slots := flag.Int("slots", 0, "concurrent detections (worker pool size; 0 = GOMAXPROCS)")
	queue := flag.Int("queue", 1024, "admission queue bound; deeper requests are rejected (negative = unbounded)")
	cache := flag.Int("cache", 1024, "verdict cache capacity (entries)")
	parallel := flag.Int("parallel", 1, "per-request trial parallelism (0 = GOMAXPROCS)")
	workers := flag.Int("workers", 0, "engine goroutine pool per session (0 = GOMAXPROCS)")
	iterations := flag.Int("iterations", 32, "default trial budget for randomized requests that omit one")
	batch := flag.Int("batch", 0, "fused miss-path batch size: compatible concurrent misses share one engine session (0 = default 8, 1 = disable)")
	batchLinger := flag.Duration("batch-linger", 0, "how long an under-full batch waits for joiners (0 = default 2ms)")
	corpusSeed := flag.Uint64("corpus-seed", 1, "seed for randomized corpus generators")
	deadline := flag.Duration("deadline", 0, "default per-request deadline for requests that omit deadline_ms (0 = none)")
	maxDeadline := flag.Duration("max-deadline", 0, "cap on client-supplied deadlines (0 = uncapped)")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "how long SIGTERM waits for in-flight work before exiting")
	readHeaderTimeout := flag.Duration("read-header-timeout", 5*time.Second, "http.Server ReadHeaderTimeout (slowloris guard)")
	readTimeout := flag.Duration("read-timeout", time.Minute, "http.Server ReadTimeout (whole-request read bound)")
	writeTimeout := flag.Duration("write-timeout", 2*time.Minute, "http.Server WriteTimeout (response write bound; bounds handler time for synchronous detects)")
	idleTimeout := flag.Duration("idle-timeout", 2*time.Minute, "http.Server IdleTimeout for keep-alive connections")
	maxHeaderBytes := flag.Int("max-header-bytes", 1<<20, "http.Server MaxHeaderBytes")
	var corpus, faults listFlag
	flag.Var(&corpus, "corpus", "named corpus graph as name=spec (repeatable); specs:\n"+graph.SpecHelp)
	flag.Var(&faults, "fault", "arm a fault-injection point as point:every=N[:limit=M][:delay=D] (repeatable; chaos testing only)")
	flag.Parse()

	for _, spec := range faults {
		if err := faultpoint.Set(spec); err != nil {
			return fmt.Errorf("-fault %q: %w", spec, err)
		}
		log.Printf("WARNING: fault injection armed: %s", spec)
	}

	par := *parallel
	if par == 0 {
		par = -1
	}
	svc := service.New(service.Config{
		Slots:           *slots,
		MaxQueue:        *queue,
		CacheEntries:    *cache,
		Parallel:        par,
		Workers:         *workers,
		BatchSize:       *batch,
		BatchLinger:     *batchLinger,
		DefaultDeadline: *deadline,
		MaxDeadline:     *maxDeadline,
	})
	for _, entry := range corpus {
		name, spec, ok := strings.Cut(entry, "=")
		if !ok {
			return fmt.Errorf("-corpus %q: want name=spec", entry)
		}
		g, err := graph.FromSpec(spec, *corpusSeed)
		if err != nil {
			return fmt.Errorf("-corpus %q: %w", entry, err)
		}
		if err := svc.RegisterGraph(name, g); err != nil {
			return err
		}
		log.Printf("corpus %s: %s (n=%d m=%d fp=%s)", name, spec, g.NumNodes(), g.NumEdges(), g.Fingerprint())
	}

	srv := &server{svc: svc, defaultIterations: *iterations}
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", srv.handleHealth)
	mux.HandleFunc("GET /v1/stats", srv.handleStats)
	mux.HandleFunc("GET /v1/corpus", srv.handleCorpus)
	mux.HandleFunc("POST /v1/detect", srv.handleDetect)
	mux.HandleFunc("POST /v1/jobs", srv.handleSubmit)
	mux.HandleFunc("GET /v1/jobs/{id}", srv.handleJob)
	mux.HandleFunc("GET /v1/jobs/{id}/witness", srv.handleWitness)

	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           srv.admit(mux),
		ReadHeaderTimeout: *readHeaderTimeout,
		ReadTimeout:       *readTimeout,
		WriteTimeout:      *writeTimeout,
		IdleTimeout:       *idleTimeout,
		MaxHeaderBytes:    *maxHeaderBytes,
	}

	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGTERM, os.Interrupt)

	log.Printf("cycleserved listening on %s (%d corpus graphs)", *addr, len(svc.GraphNames()))
	select {
	case err := <-errc:
		return err
	case sig := <-sigc:
		// Graceful drain: stop admitting (admit middleware starts
		// returning 503, healthz flips to draining), let accepted async
		// jobs and in-flight requests finish, then close listeners. Every
		// step shares the one drain budget.
		log.Printf("received %v: draining (timeout %v)", sig, *drainTimeout)
		srv.draining.Store(true)
		ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
		defer cancel()
		if err := svc.DrainJobs(ctx); err != nil {
			log.Printf("drain: async jobs still running after %v: %v", *drainTimeout, err)
		}
		if err := httpSrv.Shutdown(ctx); err != nil {
			log.Printf("drain: forced close with connections open: %v", err)
		}
		log.Printf("cycleserved drained; exiting")
		return nil
	}
}

type server struct {
	svc               *service.Service
	defaultIterations int
	// draining flips once on SIGTERM/SIGINT: admission stops (503 +
	// Retry-After), healthz reports draining so load balancers pull the
	// instance, and in-flight work runs to completion.
	draining atomic.Bool
}

// admit is the outermost middleware: once the server is draining, every
// endpoint except healthz (which must stay readable so orchestrators see
// the state change) is refused up front with a retryable 503.
func (srv *server) admit(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if srv.draining.Load() && r.URL.Path != "/healthz" {
			w.Header().Set("Retry-After", "1")
			writeJSON(w, http.StatusServiceUnavailable, apiError{"server is draining"})
			return
		}
		next.ServeHTTP(w, r)
	})
}

// statusClientClosedRequest is the de-facto standard (nginx) status for
// "the client went away before we could answer".
const statusClientClosedRequest = 499

// statusFor maps the service error taxonomy onto HTTP statuses. Anything
// outside the taxonomy is a request the caller can fix (400).
func statusFor(err error) int {
	switch {
	case errors.Is(err, service.ErrDeadline):
		return http.StatusRequestTimeout
	case errors.Is(err, service.ErrShed):
		return http.StatusTooManyRequests
	case errors.Is(err, service.ErrCancelled):
		return statusClientClosedRequest
	case errors.Is(err, service.ErrInternal):
		return http.StatusServiceUnavailable
	default:
		return http.StatusBadRequest
	}
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	if err := enc.Encode(v); err != nil {
		log.Printf("encode response: %v", err)
	}
}

type apiError struct {
	Error string `json:"error"`
}

func (srv *server) decodeRequest(w http.ResponseWriter, r *http.Request) (*service.Request, bool) {
	var wire service.WireRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 64<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&wire); err != nil {
		writeJSON(w, http.StatusBadRequest, apiError{fmt.Sprintf("decoding request: %v", err)})
		return nil, false
	}
	req, err := srv.svc.Resolve(&wire, srv.defaultIterations)
	if err != nil {
		status := http.StatusBadRequest
		if errors.Is(err, service.ErrUnknownCorpus) {
			status = http.StatusNotFound
		}
		writeJSON(w, status, apiError{err.Error()})
		return nil, false
	}
	return req, true
}

func (srv *server) handleDetect(w http.ResponseWriter, r *http.Request) {
	req, ok := srv.decodeRequest(w, r)
	if !ok {
		return
	}
	faultpoint.Sleep(faultpoint.HandlerSlow)
	start := time.Now()
	resp, info, err := srv.svc.DoInfo(r.Context(), req)
	elapsed := time.Since(start)
	if err != nil {
		status := statusFor(err)
		if status == http.StatusTooManyRequests || status == http.StatusServiceUnavailable {
			// Both shed and contained-panic failures are transient: tell
			// well-behaved clients when to come back.
			w.Header().Set("Retry-After", "1")
		}
		writeJSON(w, status, apiError{err.Error()})
		return
	}
	// Serve-path metadata rides in headers so the body — the cached
	// verdict — is byte-identical however the request was served.
	w.Header().Set("X-Evencycle-Source", string(info.Source))
	w.Header().Set("X-Evencycle-Elapsed-Ns", fmt.Sprintf("%d", elapsed.Nanoseconds()))
	if info.Batch > 0 {
		// Computed requests only: the size of the engine batch that served
		// this request (1 = solo session, > 1 = fused with other misses).
		w.Header().Set("X-Evencycle-Batch", fmt.Sprintf("%d", info.Batch))
	}
	writeJSON(w, http.StatusOK, resp)
}

func (srv *server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	req, ok := srv.decodeRequest(w, r)
	if !ok {
		return
	}
	id := srv.svc.Submit(req)
	writeJSON(w, http.StatusAccepted, map[string]string{"id": id})
}

func (srv *server) handleJob(w http.ResponseWriter, r *http.Request) {
	job, ok := srv.svc.Job(r.PathValue("id"))
	if !ok {
		writeJSON(w, http.StatusNotFound, apiError{"unknown job id"})
		return
	}
	writeJSON(w, http.StatusOK, job)
}

func (srv *server) handleWitness(w http.ResponseWriter, r *http.Request) {
	job, ok := srv.svc.Job(r.PathValue("id"))
	if !ok {
		writeJSON(w, http.StatusNotFound, apiError{"unknown job id"})
		return
	}
	if job.State != service.JobDone {
		writeJSON(w, http.StatusConflict, apiError{fmt.Sprintf("job is %s, not done", job.State)})
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"found":   job.Response.Found,
		"witness": job.Response.Witness,
	})
}

func (srv *server) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, srv.svc.Stats())
}

type corpusEntry struct {
	Name        string `json:"name"`
	N           int    `json:"n"`
	M           int    `json:"m"`
	Fingerprint string `json:"fingerprint"`
}

func (srv *server) handleCorpus(w http.ResponseWriter, r *http.Request) {
	names := srv.svc.GraphNames()
	out := make([]corpusEntry, 0, len(names))
	for _, name := range names {
		g, _ := srv.svc.NamedGraph(name)
		out = append(out, corpusEntry{
			Name: name, N: g.NumNodes(), M: g.NumEdges(), Fingerprint: g.Fingerprint().String(),
		})
	}
	writeJSON(w, http.StatusOK, out)
}

func (srv *server) handleHealth(w http.ResponseWriter, r *http.Request) {
	if srv.draining.Load() {
		writeJSON(w, http.StatusServiceUnavailable, map[string]bool{"ok": false, "draining": true})
		return
	}
	writeJSON(w, http.StatusOK, map[string]bool{"ok": true})
}
