// Command cycleserved serves the repository's cycle detectors over
// HTTP/JSON: a long-running detection service with a bounded worker pool,
// single-flight coalescing of identical requests, and a verdict cache
// keyed by graph fingerprint (see internal/service and
// docs/ARCHITECTURE.md, "Service layer").
//
// Usage:
//
//	cycleserved -addr :8972 \
//	  -corpus planted-a=planted:2000:4:1.5 -corpus free-a=highgirth:2000:3000:6
//
// API:
//
//	POST /v1/detect     {"algo":"even|bounded|odd|det","k":2,
//	                     "corpus":"name" | "graph":{"n":N,"edges":[[u,v],...]},
//	                     "seed":S,"iterations":I,"threshold":T,"pipelined":false}
//	                    → the verdict JSON (found, witness, rounds, bits, ...).
//	                    Serve-path metadata travels in headers
//	                    (X-Evencycle-Source: cache|coalesced|amplified|computed,
//	                    X-Evencycle-Elapsed-Ns, and for computed requests
//	                    X-Evencycle-Batch: the engine batch size the request
//	                    was fused into), keeping deterministic-mode response
//	                    bodies byte-identical across serves.
//	POST /v1/jobs       same body → {"id":"job-N"} immediately (async).
//	GET  /v1/jobs/{id}  → job status, including the verdict once done.
//	GET  /v1/jobs/{id}/witness → just the witness cycle of a done job.
//	GET  /v1/corpus     → the registered named graphs with fingerprints.
//	POST /v1/corpus/{name}        create a corpus graph: {"graph":{"n":N,
//	                    "edges":[[u,v],...]}} or {"spec":"planted:...","seed":S}
//	                    → 201 with {name,n,m,fingerprint}; 409 if the name
//	                    is taken. Remote specs are restricted to pure
//	                    generator kinds (file: is refused — it reads
//	                    server-side paths) and size-bounded; the -corpus
//	                    flag keeps the full spec language.
//	POST /v1/corpus/{name}/edges  append edges: {"edges":[[u,v],...]} →
//	                    200 with the new {name,n,m,fingerprint}; the old
//	                    graph value is untouched (copy-on-write), so
//	                    in-flight detections and cached verdicts stay valid.
//	DELETE /v1/corpus/{name}      remove the graph → 200; 404 if unknown.
//	GET  /v1/stats      → request/hit/coalesce/amplify/engine-session counters,
//	                    plus the failure-domain counters (shed, deadline_exceeded,
//	                    cancelled, panics, batches_skipped, mean_session_ms).
//	GET  /v1/store      → durable-store counters (graphs, last_seq, wal_bytes,
//	                    appended, compactions, recovered, torn_tail); 404
//	                    when the server runs without -data-dir.
//	GET  /metrics       → Prometheus text exposition (counters, gauges,
//	                    and with -observe the request/stage/engine/gate/
//	                    store latency histograms); stays scrapable while
//	                    draining.
//	GET  /healthz       → {"ok":true,"uptime_seconds":...,"version":...}
//	                    once the corpus is built; ok=false with
//	                    "draining":true and 503 during shutdown.
//
// A request body with "trace":true opts into per-stage timing: the
// response body gains a trace_ns object (validate, queue_wait,
// batch_linger, engine, cache_install — nanoseconds) and matching
// X-Evencycle-Stage-* headers. Untraced responses are byte-identical to
// an unobserved server's. -log-requests (sampled by -log-sample N)
// logs one key=value completion line per detection; -debug-addr opens
// a pprof side listener.
//
// Durability: with -data-dir every corpus mutation is journaled to a
// checksummed WAL (fsynced before the response when -fsync=true, the
// default) and compacted into a snapshot past -compact-threshold bytes;
// on boot the corpus is recovered — snapshot plus journal replay, torn
// tail truncated with a logged warning, mid-file corruption refusing to
// start — BEFORE the listener opens, so a 200 from this server means the
// state survives kill -9. -corpus flag graphs are persisted into the
// store at first boot (so they are mutable and deletable over the API
// like any other graph); on later boots the durable value wins over the
// spec. Mutations whose graph would not fit a single durable record
// (~64 MiB encoded) are refused with 400 before anything is written.
// Without -data-dir mutations are memory-only and vanish on restart.
//
// Error taxonomy (see internal/service and docs/ARCHITECTURE.md,
// "Failure domains & request lifecycle"):
//
//	400  malformed request (bad algo, bad graph, negative deadline)
//	404  unknown corpus name or job id
//	409  corpus create for a name that is already registered
//	408  the request's deadline (deadline_ms, or -deadline default,
//	     capped by -max-deadline) expired before or during detection
//	429  load shed: the admission queue is full, or the estimated queue
//	     wait already exceeds the request's remaining deadline
//	499  the client disconnected and the detection was cancelled
//	     cooperatively at an engine round boundary
//	503  a detector panic was contained (response carries the error), or
//	     the server is draining after SIGTERM (Retry-After is set)
//
// On SIGTERM/SIGINT the server stops admitting work (503 + Retry-After,
// healthz flips to draining), lets in-flight and accepted async jobs
// finish (bounded by -drain-timeout), then exits 0.
//
// -fault arms deterministic fault-injection points (repeatable; spec
// point:every=N[:limit=M][:delay=D], see internal/faultpoint). Faults are
// for chaos testing only and are loudly logged at startup.
//
// Cache policy: deterministic-mode (algo=det) verdicts are pure functions
// of the graph and cache forever (the seed is not part of the key);
// randomized verdicts record their trial budget — a repeat query within
// budget is a pure hit, a larger budget runs only the missing trials
// (amplification). -iterations sets the default budget for requests that
// omit one.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"runtime/debug"
	"strings"
	"sync/atomic"
	"syscall"
	"time"

	"repro/internal/faultpoint"
	"repro/internal/graph"
	"repro/internal/obs"
	"repro/internal/service"
	"repro/internal/store"
)

// listFlag collects repeated string flags (-corpus name=spec, -fault spec).
type listFlag []string

func (c *listFlag) String() string { return strings.Join(*c, ",") }
func (c *listFlag) Set(v string) error {
	*c = append(*c, v)
	return nil
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "cycleserved:", err)
		os.Exit(1)
	}
}

func run() error {
	addr := flag.String("addr", ":8972", "listen address")
	slots := flag.Int("slots", 0, "concurrent detections (worker pool size; 0 = GOMAXPROCS)")
	queue := flag.Int("queue", 1024, "admission queue bound; deeper requests are rejected (negative = unbounded)")
	cache := flag.Int("cache", 1024, "verdict cache capacity (entries)")
	parallel := flag.Int("parallel", 1, "per-request trial parallelism (0 = GOMAXPROCS)")
	workers := flag.Int("workers", 0, "engine goroutine pool per session (0 = GOMAXPROCS)")
	iterations := flag.Int("iterations", 32, "default trial budget for randomized requests that omit one")
	batch := flag.Int("batch", 0, "fused miss-path batch size: compatible concurrent misses share one engine session (0 = default 8, 1 = disable)")
	batchLinger := flag.Duration("batch-linger", 0, "how long an under-full batch waits for joiners (0 = default 2ms)")
	corpusSeed := flag.Uint64("corpus-seed", 1, "seed for randomized corpus generators")
	deadline := flag.Duration("deadline", 0, "default per-request deadline for requests that omit deadline_ms (0 = none)")
	maxDeadline := flag.Duration("max-deadline", 0, "cap on client-supplied deadlines (0 = uncapped)")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "how long SIGTERM waits for in-flight work before exiting")
	readHeaderTimeout := flag.Duration("read-header-timeout", 5*time.Second, "http.Server ReadHeaderTimeout (slowloris guard)")
	readTimeout := flag.Duration("read-timeout", time.Minute, "http.Server ReadTimeout (whole-request read bound)")
	writeTimeout := flag.Duration("write-timeout", 2*time.Minute, "http.Server WriteTimeout (response write bound; bounds handler time for synchronous detects)")
	idleTimeout := flag.Duration("idle-timeout", 2*time.Minute, "http.Server IdleTimeout for keep-alive connections")
	maxHeaderBytes := flag.Int("max-header-bytes", 1<<20, "http.Server MaxHeaderBytes")
	observe := flag.Bool("observe", true, "arm latency observation: request/stage/engine/gate/store histograms behind GET /metrics (counters work either way)")
	debugAddr := flag.String("debug-addr", "", "side listener for /debug/pprof/* (empty = disabled); keep it off the public address")
	logRequests := flag.Bool("log-requests", false, "log a structured key=value completion line per detection request")
	logSample := flag.Int64("log-sample", 1, "with -log-requests, log every Nth completion (1 = all)")
	dataDir := flag.String("data-dir", "", "durable corpus directory (WAL + snapshot); empty = memory-only corpus")
	fsync := flag.Bool("fsync", true, "fsync the corpus journal before acknowledging a mutation (power-loss durability; -data-dir only)")
	compactThreshold := flag.Int64("compact-threshold", 0, "journal bytes that trigger snapshot compaction (0 = default 4MiB, negative = never; -data-dir only)")
	var corpus, faults listFlag
	flag.Var(&corpus, "corpus", "named corpus graph as name=spec (repeatable); specs:\n"+graph.SpecHelp)
	flag.Var(&faults, "fault", "arm a fault-injection point as point:every=N[:limit=M][:delay=D] (repeatable; chaos testing only)")
	flag.Parse()

	for _, spec := range faults {
		if err := faultpoint.Set(spec); err != nil {
			return fmt.Errorf("-fault %q: %w", spec, err)
		}
		log.Printf("WARNING: fault injection armed: %s", spec)
	}

	par := *parallel
	if par == 0 {
		par = -1
	}

	// Durable boot: the corpus store is recovered BEFORE the service is
	// built and the listener opens — a failed recovery (mid-file
	// corruption) refuses to start rather than serve a corpus that
	// silently disagrees with past acknowledgments.
	var persist *store.Store
	if *dataDir != "" {
		var err error
		persist, err = store.Open(*dataDir, store.Options{
			Fsync:            *fsync,
			CompactThreshold: *compactThreshold,
		})
		if err != nil {
			return fmt.Errorf("opening corpus store %s: %w", *dataDir, err)
		}
		defer persist.Close()
		s := persist.Stats()
		log.Printf("corpus store %s: %d graphs recovered (seq %d, %d journal records replayed, torn_tail=%v, fsync=%v)",
			*dataDir, s.Graphs, s.LastSeq, s.Recovered, s.TornTail, *fsync)
	}

	svc := service.New(service.Config{
		Slots:           *slots,
		MaxQueue:        *queue,
		CacheEntries:    *cache,
		Parallel:        par,
		Workers:         *workers,
		BatchSize:       *batch,
		BatchLinger:     *batchLinger,
		DefaultDeadline: *deadline,
		MaxDeadline:     *maxDeadline,
		Persist:         persist,
		Observe:         *observe,
	})
	if err := seedCorpus(svc, persist != nil, corpus, *corpusSeed); err != nil {
		return err
	}

	srv := &server{
		svc:               svc,
		store:             persist,
		defaultIterations: *iterations,
		start:             time.Now(),
		version:           buildVersion(),
	}
	if *logRequests {
		srv.logEvery = max(1, *logSample)
	}
	if *debugAddr != "" {
		// The pprof surface rides a SIDE listener with its own mux:
		// profiles stay off the public address, and importing
		// net/http/pprof's DefaultServeMux registration is avoided.
		dmux := http.NewServeMux()
		dmux.HandleFunc("/debug/pprof/", pprof.Index)
		dmux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		dmux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		dmux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		dmux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		dsrv := &http.Server{Addr: *debugAddr, Handler: dmux, ReadHeaderTimeout: 5 * time.Second}
		defer dsrv.Close()
		go func() {
			if err := dsrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
				log.Printf("debug listener %s: %v", *debugAddr, err)
			}
		}()
		log.Printf("debug listener on %s (/debug/pprof/)", *debugAddr)
	}
	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           srv.routes(),
		ReadHeaderTimeout: *readHeaderTimeout,
		ReadTimeout:       *readTimeout,
		WriteTimeout:      *writeTimeout,
		IdleTimeout:       *idleTimeout,
		MaxHeaderBytes:    *maxHeaderBytes,
	}

	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGTERM, os.Interrupt)

	log.Printf("cycleserved listening on %s (%d corpus graphs)", *addr, len(svc.GraphNames()))
	select {
	case err := <-errc:
		return err
	case sig := <-sigc:
		// Graceful drain: stop admitting (admit middleware starts
		// returning 503, healthz flips to draining), let accepted async
		// jobs and in-flight requests finish, then close listeners. Every
		// step shares the one drain budget.
		log.Printf("received %v: draining (timeout %v)", sig, *drainTimeout)
		srv.draining.Store(true)
		ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
		defer cancel()
		if err := svc.DrainJobs(ctx); err != nil {
			log.Printf("drain: async jobs still running after %v: %v", *drainTimeout, err)
		}
		if err := httpSrv.Shutdown(ctx); err != nil {
			log.Printf("drain: forced close with connections open: %v", err)
		}
		log.Printf("cycleserved drained; exiting")
		return nil
	}
}

// seedCorpus realizes the -corpus name=spec flags into the service. With
// a durable store behind the service (durable = true) the seeded graphs
// are PERSISTED — created through the WAL exactly like API mutations —
// so they can be edge-appended and deleted over the API like any other
// corpus graph. A name the store already holds is left alone: durable
// state (which may have been mutated over the API since the graph was
// first seeded) wins over the spec, with a warning when the structures
// differ. Memory-only servers register the graphs in the in-memory map.
func seedCorpus(svc *service.Service, durable bool, corpus []string, seed uint64) error {
	for _, entry := range corpus {
		name, spec, ok := strings.Cut(entry, "=")
		if !ok {
			return fmt.Errorf("-corpus %q: want name=spec", entry)
		}
		g, err := graph.FromSpec(spec, seed)
		if err != nil {
			return fmt.Errorf("-corpus %q: %w", entry, err)
		}
		if have, ok := svc.NamedGraph(name); ok {
			// The durable store already holds this name from a previous run.
			// Same structure: the flag is satisfied. Different structure: the
			// store's value is (or descends from) acknowledged state — API
			// mutations since the first boot — and re-applying the spec would
			// silently undo it, so the durable value wins, loudly.
			if have.Fingerprint() == g.Fingerprint() {
				log.Printf("corpus %s: already durable (fp=%s), -corpus spec skipped", name, g.Fingerprint())
			} else {
				log.Printf("WARNING: corpus %s: durable store holds fingerprint %s, -corpus spec builds %s; durable state wins, spec skipped",
					name, have.Fingerprint(), g.Fingerprint())
			}
			continue
		}
		if durable {
			err = svc.CreateCorpus(name, g)
		} else {
			err = svc.RegisterGraph(name, g)
		}
		if err != nil {
			return fmt.Errorf("-corpus %q: %w", entry, err)
		}
		log.Printf("corpus %s: %s (n=%d m=%d fp=%s)", name, spec, g.NumNodes(), g.NumEdges(), g.Fingerprint())
	}
	return nil
}

type server struct {
	svc *service.Service
	// store is the durable corpus store behind the service, nil without
	// -data-dir; the handler layer only reads its stats (mutations go
	// through the service).
	store             *store.Store
	defaultIterations int
	// draining flips once on SIGTERM/SIGINT: admission stops (503 +
	// Retry-After), healthz reports draining so load balancers pull the
	// instance, and in-flight work runs to completion.
	draining atomic.Bool
	// start anchors healthz's uptime_seconds; version is the toolchain-
	// stamped build identity (see buildVersion). Zero values (direct
	// struct construction in tests) degrade to uptime-since-epoch-zero
	// and an empty version, never an error.
	start   time.Time
	version string
	// logEvery > 0 logs every logEvery-th detection completion as a
	// key=value line; logSeq is the sampling counter.
	logEvery int64
	logSeq   atomic.Int64
}

// buildVersion is the binary's identity for healthz: the main module
// version plus the VCS revision the Go toolchain stamped into the build
// (no ldflags ceremony needed). A pseudo-version already ends in the
// revision, so the suffix is only added when it brings new information.
func buildVersion() string {
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return "unknown"
	}
	v := bi.Main.Version
	if v == "" || v == "(devel)" {
		v = "devel"
	}
	for _, s := range bi.Settings {
		if s.Key == "vcs.revision" && s.Value != "" {
			rev := s.Value
			if len(rev) > 12 {
				rev = rev[:12]
			}
			if !strings.Contains(v, rev) {
				return v + "+" + rev
			}
			break
		}
	}
	return v
}

// routes builds the full handler tree — every endpoint behind the admit
// middleware. Extracted from run so the HTTP tests drive the real
// routing table.
func (srv *server) routes() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", srv.handleHealth)
	mux.HandleFunc("GET /metrics", srv.handleMetrics)
	mux.HandleFunc("GET /v1/stats", srv.handleStats)
	mux.HandleFunc("GET /v1/store", srv.handleStore)
	mux.HandleFunc("GET /v1/corpus", srv.handleCorpus)
	mux.HandleFunc("POST /v1/corpus/{name}", srv.handleCorpusCreate)
	mux.HandleFunc("POST /v1/corpus/{name}/edges", srv.handleCorpusAddEdges)
	mux.HandleFunc("DELETE /v1/corpus/{name}", srv.handleCorpusDelete)
	mux.HandleFunc("POST /v1/detect", srv.handleDetect)
	mux.HandleFunc("POST /v1/jobs", srv.handleSubmit)
	mux.HandleFunc("GET /v1/jobs/{id}", srv.handleJob)
	mux.HandleFunc("GET /v1/jobs/{id}/witness", srv.handleWitness)
	return srv.admit(mux)
}

// admit is the outermost middleware: once the server is draining, every
// endpoint except healthz and metrics (which must stay readable so
// orchestrators see the state change and scrapers see the drain) is
// refused up front with a retryable 503.
func (srv *server) admit(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if srv.draining.Load() && r.URL.Path != "/healthz" && r.URL.Path != "/metrics" {
			w.Header().Set("Retry-After", "1")
			writeJSON(w, http.StatusServiceUnavailable, apiError{"server is draining"})
			return
		}
		next.ServeHTTP(w, r)
	})
}

// statusClientClosedRequest is the de-facto standard (nginx) status for
// "the client went away before we could answer".
const statusClientClosedRequest = 499

// statusFor maps the service error taxonomy onto HTTP statuses. Anything
// outside the taxonomy is a request the caller can fix (400).
func statusFor(err error) int {
	switch {
	case errors.Is(err, service.ErrDeadline):
		return http.StatusRequestTimeout
	case errors.Is(err, service.ErrShed):
		return http.StatusTooManyRequests
	case errors.Is(err, service.ErrCancelled):
		return statusClientClosedRequest
	case errors.Is(err, service.ErrInternal):
		return http.StatusServiceUnavailable
	case errors.Is(err, service.ErrDuplicateCorpus):
		return http.StatusConflict
	case errors.Is(err, service.ErrUnknownCorpus):
		return http.StatusNotFound
	default:
		return http.StatusBadRequest
	}
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	if err := enc.Encode(v); err != nil {
		log.Printf("encode response: %v", err)
	}
}

type apiError struct {
	Error string `json:"error"`
}

func (srv *server) decodeRequest(w http.ResponseWriter, r *http.Request) (*service.Request, bool) {
	var wire service.WireRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 64<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&wire); err != nil {
		writeJSON(w, http.StatusBadRequest, apiError{fmt.Sprintf("decoding request: %v", err)})
		return nil, false
	}
	req, err := srv.svc.Resolve(&wire, srv.defaultIterations)
	if err != nil {
		writeJSON(w, statusFor(err), apiError{err.Error()})
		return nil, false
	}
	return req, true
}

func (srv *server) handleDetect(w http.ResponseWriter, r *http.Request) {
	req, ok := srv.decodeRequest(w, r)
	if !ok {
		return
	}
	faultpoint.Sleep(faultpoint.HandlerSlow)
	// clientTraced: the client asked for stage timing in its response.
	// When only the completion log wants stages, attach a tracer without
	// changing what the client gets back.
	clientTraced := req.Trace != nil
	if srv.logEvery > 0 && req.Trace == nil {
		req.Trace = &obs.Trace{}
	}
	start := time.Now()
	resp, info, err := srv.svc.DoInfo(r.Context(), req)
	elapsed := time.Since(start)
	if err != nil {
		status := statusFor(err)
		srv.logRequest(req, info, status, elapsed, err)
		if status == http.StatusTooManyRequests || status == http.StatusServiceUnavailable {
			// Both shed and contained-panic failures are transient: tell
			// well-behaved clients when to come back.
			w.Header().Set("Retry-After", "1")
		}
		writeJSON(w, status, apiError{err.Error()})
		return
	}
	srv.logRequest(req, info, http.StatusOK, elapsed, nil)
	// Serve-path metadata rides in headers so the body — the cached
	// verdict — is byte-identical however the request was served.
	w.Header().Set("X-Evencycle-Source", string(info.Source))
	w.Header().Set("X-Evencycle-Elapsed-Ns", fmt.Sprintf("%d", elapsed.Nanoseconds()))
	if info.Batch > 0 {
		// Computed requests only: the size of the engine batch that served
		// this request (1 = solo session, > 1 = fused with other misses).
		w.Header().Set("X-Evencycle-Batch", fmt.Sprintf("%d", info.Batch))
	}
	if clientTraced {
		// The opt-in trace: per-stage headers plus a trace_ns object
		// wrapped AROUND the verdict. Untraced responses keep the exact
		// cached-verdict bytes.
		traceNS := make(map[string]int64, obs.NumStages)
		req.Trace.Each(func(st obs.Stage, ns int64) {
			w.Header().Set("X-Evencycle-Stage-"+strings.ReplaceAll(st.String(), "_", "-"), fmt.Sprintf("%d", ns))
			traceNS[st.String()] = ns
		})
		writeJSON(w, http.StatusOK, struct {
			*service.Response
			TraceNS map[string]int64 `json:"trace_ns"`
		}{resp, traceNS})
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

// logRequest emits the sampled key=value completion line (-log-requests,
// -log-sample): serve path, status, total and per-stage milliseconds.
func (srv *server) logRequest(req *service.Request, info service.Info, status int, elapsed time.Duration, err error) {
	if srv.logEvery <= 0 || srv.logSeq.Add(1)%srv.logEvery != 0 {
		return
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "request path=/v1/detect algo=%s k=%d fp=%s source=%s batch=%d status=%d total_ms=%.3f",
		req.Algo, req.K, req.Graph.Fingerprint(), info.Source, info.Batch, status,
		float64(elapsed.Nanoseconds())/1e6)
	req.Trace.Each(func(st obs.Stage, ns int64) {
		fmt.Fprintf(&sb, " %s_ms=%.3f", st, float64(ns)/1e6)
	})
	if err != nil {
		fmt.Fprintf(&sb, " err=%q", err)
	}
	log.Print(sb.String())
}

// handleMetrics serves the Prometheus text exposition of the service
// registry (counters, gauges and — on an observed server — the latency,
// stage, engine, gate and store histograms).
func (srv *server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if err := srv.svc.Metrics().WritePrometheus(w); err != nil {
		log.Printf("write metrics: %v", err)
	}
}

func (srv *server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	req, ok := srv.decodeRequest(w, r)
	if !ok {
		return
	}
	id := srv.svc.Submit(req)
	writeJSON(w, http.StatusAccepted, map[string]string{"id": id})
}

func (srv *server) handleJob(w http.ResponseWriter, r *http.Request) {
	job, ok := srv.svc.Job(r.PathValue("id"))
	if !ok {
		writeJSON(w, http.StatusNotFound, apiError{"unknown job id"})
		return
	}
	writeJSON(w, http.StatusOK, job)
}

func (srv *server) handleWitness(w http.ResponseWriter, r *http.Request) {
	job, ok := srv.svc.Job(r.PathValue("id"))
	if !ok {
		writeJSON(w, http.StatusNotFound, apiError{"unknown job id"})
		return
	}
	if job.State != service.JobDone {
		writeJSON(w, http.StatusConflict, apiError{fmt.Sprintf("job is %s, not done", job.State)})
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"found":   job.Response.Found,
		"witness": job.Response.Witness,
	})
}

func (srv *server) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, srv.svc.Stats())
}

type corpusEntry struct {
	Name        string `json:"name"`
	N           int    `json:"n"`
	M           int    `json:"m"`
	Fingerprint string `json:"fingerprint"`
}

// mutationEntry is the mutation response: the resulting corpus entry plus
// the parent→child lineage edge and what the warm-start path did. A Noop
// response reports parent_fingerprint == fingerprint and nothing warmed.
type mutationEntry struct {
	corpusEntry
	ParentFingerprint string `json:"parent_fingerprint"`
	Noop              bool   `json:"noop,omitempty"`
	WarmStarts        int    `json:"warm_starts"`
	Fallbacks         int    `json:"fallbacks"`
}

func (srv *server) handleCorpus(w http.ResponseWriter, r *http.Request) {
	names := srv.svc.GraphNames()
	out := make([]corpusEntry, 0, len(names))
	for _, name := range names {
		g, _ := srv.svc.NamedGraph(name)
		out = append(out, corpusEntry{
			Name: name, N: g.NumNodes(), M: g.NumEdges(), Fingerprint: g.Fingerprint().String(),
		})
	}
	writeJSON(w, http.StatusOK, out)
}

// corpusEntryFor renders one corpus graph for mutation responses.
func corpusEntryFor(name string, g *graph.Graph) corpusEntry {
	return corpusEntry{Name: name, N: g.NumNodes(), M: g.NumEdges(), Fingerprint: g.Fingerprint().String()}
}

// wireCorpusCreate is the body of POST /v1/corpus/{name}: an inline
// edge list, or a generator spec with its seed — exactly one.
type wireCorpusCreate struct {
	Graph *service.WireGraph `json:"graph,omitempty"`
	Spec  string             `json:"spec,omitempty"`
	Seed  uint64             `json:"seed,omitempty"`
}

// Remote generation bounds: a client-supplied spec runs a generator ON
// THE SERVER, so the create handler bounds the declared output size
// before any generation work starts. Independent of (and tighter than)
// the durable store's per-record frame cap, which still applies to the
// built graph.
const (
	maxRemoteSpecNodes = 4 << 20
	maxRemoteSpecEdges = 8 << 20
)

// checkRemoteSpec admits a generator spec supplied by an HTTP client:
// pure-generator kinds only — file: would make the server read an
// arbitrary server-side path as an edge list — and declared sizes inside
// the remote-generation bounds. Operators keep the full spec language
// (file: included, no size bound) through the -corpus flag.
func checkRemoteSpec(spec string) error {
	kind, n, m, err := graph.SpecCost(spec)
	if err != nil {
		return err
	}
	if kind == "file" {
		return errors.New("file: specs are not accepted over the API (they read server-side paths); send the graph inline or use the -corpus flag")
	}
	if n < 0 || m < 0 || n > maxRemoteSpecNodes || m > maxRemoteSpecEdges {
		return fmt.Errorf("spec %q declares n=%d m=%d, outside the remote-generation bounds (0 ≤ n ≤ %d, 0 ≤ m ≤ %d); use the -corpus flag for larger graphs",
			spec, n, m, maxRemoteSpecNodes, maxRemoteSpecEdges)
	}
	return nil
}

func (srv *server) handleCorpusCreate(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	var body wireCorpusCreate
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 64<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&body); err != nil {
		writeJSON(w, http.StatusBadRequest, apiError{fmt.Sprintf("decoding request: %v", err)})
		return
	}
	var g *graph.Graph
	var err error
	switch {
	case body.Graph != nil && body.Spec != "":
		writeJSON(w, http.StatusBadRequest, apiError{"request ships both an inline graph and a spec — pick one"})
		return
	case body.Graph != nil:
		g, err = body.Graph.Build()
	case body.Spec != "":
		if err := checkRemoteSpec(body.Spec); err != nil {
			writeJSON(w, http.StatusBadRequest, apiError{err.Error()})
			return
		}
		g, err = graph.FromSpec(body.Spec, body.Seed)
	default:
		writeJSON(w, http.StatusBadRequest, apiError{"request has neither graph nor spec"})
		return
	}
	if err != nil {
		writeJSON(w, http.StatusBadRequest, apiError{err.Error()})
		return
	}
	if err := srv.svc.CreateCorpus(name, g); err != nil {
		writeJSON(w, statusFor(err), apiError{err.Error()})
		return
	}
	// The 201 is the durability acknowledgment: with -data-dir the
	// mutation is journaled (and fsynced under -fsync) before this line.
	writeJSON(w, http.StatusCreated, corpusEntryFor(name, g))
}

// wireCorpusEdges is the body of POST /v1/corpus/{name}/edges.
type wireCorpusEdges struct {
	Edges [][2]graph.NodeID `json:"edges"`
}

func (srv *server) handleCorpusAddEdges(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	var body wireCorpusEdges
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 64<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&body); err != nil {
		writeJSON(w, http.StatusBadRequest, apiError{fmt.Sprintf("decoding request: %v", err)})
		return
	}
	if len(body.Edges) == 0 {
		writeJSON(w, http.StatusBadRequest, apiError{"request ships no edges"})
		return
	}
	mut, err := srv.svc.AddCorpusEdges(name, body.Edges)
	if err != nil {
		writeJSON(w, statusFor(err), apiError{err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, mutationEntry{
		corpusEntry:       corpusEntryFor(name, mut.Graph),
		ParentFingerprint: mut.Parent.String(),
		Noop:              mut.Noop,
		WarmStarts:        mut.WarmStarts,
		Fallbacks:         mut.Fallbacks,
	})
}

func (srv *server) handleCorpusDelete(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	if err := srv.svc.DeleteCorpus(name); err != nil {
		writeJSON(w, statusFor(err), apiError{err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"deleted": name})
}

func (srv *server) handleStore(w http.ResponseWriter, r *http.Request) {
	if srv.store == nil {
		writeJSON(w, http.StatusNotFound, apiError{"server runs without -data-dir: no durable store"})
		return
	}
	writeJSON(w, http.StatusOK, srv.store.Stats())
}

func (srv *server) handleHealth(w http.ResponseWriter, r *http.Request) {
	body := map[string]any{
		"ok":             true,
		"uptime_seconds": time.Since(srv.start).Seconds(),
		"version":        srv.version,
	}
	if srv.draining.Load() {
		body["ok"] = false
		body["draining"] = true
		writeJSON(w, http.StatusServiceUnavailable, body)
		return
	}
	writeJSON(w, http.StatusOK, body)
}
