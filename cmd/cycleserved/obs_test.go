package main

import (
	"encoding/json"
	"net/http"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/service"
)

// newObservedServer is newTestServer with observation armed and request
// logging sampled, the production default.
func newObservedServer(t *testing.T) *server {
	t.Helper()
	svc := service.New(service.Config{Slots: 2, BatchSize: 1, Observe: true})
	return &server{
		svc:               svc,
		defaultIterations: 4,
		start:             time.Now(),
		version:           buildVersion(),
		logEvery:          1,
	}
}

// TestMetricsEndpoint scrapes GET /metrics after real traffic: the
// exposition must parse strictly, validate internally (cumulative
// buckets, _count/_sum agreement), carry the right content type, and
// agree with the request counters — including while draining, when the
// scrape must keep working.
func TestMetricsEndpoint(t *testing.T) {
	srv := newObservedServer(t)
	h := srv.routes()

	body := `{"algo":"det","k":2,"graph":{"n":6,"edges":[[0,1],[1,2],[2,3],[3,0],[3,4],[4,5]]}}`
	for i := 0; i < 3; i++ { // 1 computed + 2 hits
		if rr := do(t, h, "POST", "/v1/detect", body); rr.Code != http.StatusOK {
			t.Fatalf("detect %d → %d: %s", i, rr.Code, rr.Body)
		}
	}

	rr := do(t, h, "GET", "/metrics", "")
	if rr.Code != http.StatusOK {
		t.Fatalf("/metrics → %d", rr.Code)
	}
	if ct := rr.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("content type %q", ct)
	}
	exp, err := obs.ParseExposition(strings.NewReader(rr.Body.String()))
	if err != nil {
		t.Fatalf("scrape does not parse: %v", err)
	}
	if err := exp.Validate(); err != nil {
		t.Fatalf("scrape inconsistent: %v", err)
	}
	if got, ok := exp.CounterSum("evencycle_requests_total"); !ok || got != 3 {
		t.Fatalf("requests_total = %v (ok=%v), want 3", got, ok)
	}
	dur, err := exp.MergedHistogram("evencycle_request_duration_seconds")
	if err != nil {
		t.Fatal(err)
	}
	if dur == nil || dur.Count != 3 {
		t.Fatalf("request_duration count = %+v, want 3", dur)
	}

	srv.draining.Store(true)
	if rr := do(t, h, "GET", "/metrics", ""); rr.Code != http.StatusOK {
		t.Fatalf("draining /metrics → %d, want 200 (scrapers must see the drain)", rr.Code)
	}
}

// TestDetectTraceOptIn checks the per-request trace: "trace":true yields
// stage headers and a trace_ns object around the unchanged verdict, and
// an untraced request's body carries no trace field.
func TestDetectTraceOptIn(t *testing.T) {
	srv := newObservedServer(t)
	srv.logEvery = 0 // tracing must not depend on the completion log
	h := srv.routes()

	graphJSON := `"graph":{"n":6,"edges":[[0,1],[1,2],[2,3],[3,0],[3,4],[4,5]]}`
	rr := do(t, h, "POST", "/v1/detect", `{"algo":"det","k":2,"trace":true,`+graphJSON+`}`)
	if rr.Code != http.StatusOK {
		t.Fatalf("traced detect → %d: %s", rr.Code, rr.Body)
	}
	if rr.Header().Get("X-Evencycle-Stage-Engine") == "" {
		t.Fatalf("computed traced request has no engine stage header; headers: %v", rr.Header())
	}
	var traced struct {
		Found   bool             `json:"found"`
		TraceNS map[string]int64 `json:"trace_ns"`
	}
	if err := json.Unmarshal(rr.Body.Bytes(), &traced); err != nil {
		t.Fatal(err)
	}
	if !traced.Found {
		t.Fatal("verdict lost in the traced wrapper")
	}
	if traced.TraceNS["engine"] <= 0 {
		t.Fatalf("trace_ns = %v, want engine > 0", traced.TraceNS)
	}

	rr = do(t, h, "POST", "/v1/detect", `{"algo":"det","k":2,`+graphJSON+`}`)
	if rr.Code != http.StatusOK {
		t.Fatalf("untraced detect → %d", rr.Code)
	}
	if strings.Contains(rr.Body.String(), "trace_ns") {
		t.Fatalf("untraced response carries trace_ns: %s", rr.Body)
	}
	if rr.Header().Get("X-Evencycle-Stage-Engine") != "" {
		t.Fatal("untraced response carries stage headers")
	}
}

// TestHealthzUptimeVersion checks the enriched health body on both sides
// of the drain flip.
func TestHealthzUptimeVersion(t *testing.T) {
	srv := newObservedServer(t)
	h := srv.routes()
	var health struct {
		OK            bool    `json:"ok"`
		UptimeSeconds float64 `json:"uptime_seconds"`
		Version       string  `json:"version"`
		Draining      bool    `json:"draining"`
	}
	rr := do(t, h, "GET", "/healthz", "")
	if rr.Code != http.StatusOK {
		t.Fatalf("/healthz → %d", rr.Code)
	}
	if err := json.Unmarshal(rr.Body.Bytes(), &health); err != nil {
		t.Fatal(err)
	}
	if !health.OK || health.UptimeSeconds < 0 || health.Version == "" {
		t.Fatalf("healthz body %s", rr.Body)
	}

	srv.draining.Store(true)
	rr = do(t, h, "GET", "/healthz", "")
	if rr.Code != http.StatusServiceUnavailable {
		t.Fatalf("draining /healthz → %d", rr.Code)
	}
	if err := json.Unmarshal(rr.Body.Bytes(), &health); err != nil {
		t.Fatal(err)
	}
	if health.OK || !health.Draining || health.Version == "" {
		t.Fatalf("draining healthz body %s", rr.Body)
	}
}
