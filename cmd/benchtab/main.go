// Command benchtab runs the repository's experiments (the reproduction of
// the paper's Table 1 and Figure 1; see DESIGN.md §4 for the index) and
// renders their tables.
//
// Usage:
//
//	benchtab [-quick] [-seed N] [-csv] [-out FILE] [-workers W] [-parallel P] [E1,E3,... | all]
//	benchtab -json [-label L] [-baseline BENCH_x.json] [-max-regression 0.10] [-quick] [-out BENCH_y.json]
//
// -workers sets the per-session goroutine pool of the CONGEST simulator;
// -parallel sets how many independent detection trials each sweep point
// runs concurrently on the shared trial scheduler (internal/sched). Both
// leave every table byte-identical to the sequential run.
//
// -json switches to the perf-trajectory mode: instead of experiment
// tables, the fixed scenario suite of internal/bench (mirroring the root
// package's BenchmarkDetectEvenCycle) is measured for wall time and
// allocations and emitted as JSON. -baseline embeds a previous record so
// the written file carries its own comparison point; see the README's
// Performance section for the recording workflow.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"repro/internal/bench"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "benchtab:", err)
		os.Exit(1)
	}
}

func run() error {
	quick := flag.Bool("quick", false, "reduced sweep sizes (test scale)")
	seed := flag.Uint64("seed", 42, "master random seed")
	csv := flag.Bool("csv", false, "emit CSV instead of aligned text")
	out := flag.String("out", "", "output file (default stdout)")
	workers := flag.Int("workers", 0, "simulator goroutine pool size (0 = GOMAXPROCS)")
	parallel := flag.Int("parallel", 1,
		"independent detection trials in flight per sweep point (0 = GOMAXPROCS, 1 = sequential); tables are identical either way")
	jsonMode := flag.Bool("json", false,
		"emit the perf-trajectory JSON (BENCH_*.json) instead of experiment tables; the perf workloads are pinned, so -seed/-workers/-parallel and experiment ids do not apply")
	label := flag.String("label", "current", "label recorded in the perf JSON (-json only)")
	baselineFile := flag.String("baseline", "", "previous BENCH_*.json to embed as the comparison baseline (-json only)")
	maxRegression := flag.Float64("max-regression", 0,
		"fail when any scenario's ns/op exceeds the -baseline value by more than this fraction, e.g. 0.10 (-json only; 0 disables)")
	flag.Parse()

	ids := flag.Args()
	if len(ids) == 0 || (len(ids) == 1 && ids[0] == "all") {
		ids = nil
		for _, e := range bench.All() {
			ids = append(ids, e.ID)
		}
	} else if len(ids) == 1 && strings.Contains(ids[0], ",") {
		ids = strings.Split(ids[0], ",")
	}

	var w io.Writer = os.Stdout
	if *out != "" {
		file, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer file.Close()
		w = file
	}

	if *jsonMode {
		if len(flag.Args()) > 0 {
			return fmt.Errorf("-json measures the pinned perf suite; experiment ids %v do not apply", flag.Args())
		}
		if *csv {
			return fmt.Errorf("-json and -csv are mutually exclusive")
		}
		rec, err := bench.RunPerf(*quick, *label)
		if err != nil {
			return err
		}
		if *baselineFile != "" {
			f, err := os.Open(*baselineFile)
			if err != nil {
				return err
			}
			base, err := bench.ReadPerfRecord(f)
			f.Close()
			if err != nil {
				return err
			}
			base.Baseline = nil // keep one level of history per record
			rec.Baseline = base
		}
		if err := rec.WriteJSON(w); err != nil {
			return err
		}
		if *maxRegression > 0 {
			return rec.CheckRegression(*maxRegression)
		}
		return nil
	}
	if *maxRegression > 0 {
		return fmt.Errorf("-max-regression applies to -json mode only")
	}

	par := *parallel
	if par == 0 {
		par = -1 // sched.TrialRunner: negative means GOMAXPROCS
	}
	cfg := bench.Config{Quick: *quick, Seed: *seed, Workers: *workers, Parallel: par}
	for _, id := range ids {
		exp, err := bench.ByID(strings.TrimSpace(id))
		if err != nil {
			return err
		}
		start := time.Now()
		fmt.Fprintf(os.Stderr, "running %s: %s ...\n", exp.ID, exp.Title)
		tab, err := exp.Run(cfg)
		if err != nil {
			return fmt.Errorf("%s: %w", exp.ID, err)
		}
		fmt.Fprintf(os.Stderr, "  done in %v\n", time.Since(start).Round(time.Millisecond))
		if *csv {
			err = tab.RenderCSV(w)
		} else {
			err = tab.Render(w)
		}
		if err != nil {
			return err
		}
	}
	return nil
}
