// Command gadgetgen emits instances of the lower-bound gadget families of
// Section 3.3 as edge lists (see package gadget for the constructions).
//
// Usage:
//
//	gadgetgen -family drucker -q 7 -intersect
//	gadgetgen -family kr -k 3 -n 500
//	gadgetgen -family odd -k 2 -n 30 -intersect -out inst.txt
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/gadget"
	"repro/internal/graph"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "gadgetgen:", err)
		os.Exit(1)
	}
}

func run() error {
	family := flag.String("family", "drucker", "drucker | kr | odd")
	q := flag.Int("q", 5, "projective-plane order (drucker)")
	k := flag.Int("k", 2, "half cycle length (kr, odd)")
	n := flag.Int("n", 100, "universe side size (kr: elements, odd: column size)")
	intersect := flag.Bool("intersect", false, "plant an intersection (the cycle exists)")
	density := flag.Float64("density", 0.3, "per-side element probability")
	seed := flag.Uint64("seed", 1, "random seed")
	out := flag.String("out", "", "output file (default stdout)")
	flag.Parse()

	var w io.Writer = os.Stdout
	if *out != "" {
		file, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer file.Close()
		w = file
	}

	var (
		g   *graph.Graph
		err error
	)
	switch *family {
	case "drucker":
		tmpl, terr := gadget.NewDruckerC4(*q)
		if terr != nil {
			return terr
		}
		d := instance(tmpl.UniverseSize(), *density, *intersect, *seed)
		g, err = tmpl.Build(d)
		fmt.Fprintf(os.Stderr, "Drucker C4 gadget: universe %d, intersects=%v\n",
			tmpl.UniverseSize(), d.Intersects())
	case "kr":
		tmpl, terr := gadget.NewKRC2k(*k, *n)
		if terr != nil {
			return terr
		}
		d := instance(tmpl.UniverseSize(), *density, *intersect, *seed)
		g, err = tmpl.Build(d)
		fmt.Fprintf(os.Stderr, "KR C_%d gadget: universe %d, intersects=%v\n",
			2**k, tmpl.UniverseSize(), d.Intersects())
	case "odd":
		tmpl, terr := gadget.NewOddGadget(*k, *n)
		if terr != nil {
			return terr
		}
		d := instance(tmpl.UniverseSize(), *density, *intersect, *seed)
		g, err = tmpl.Build(d)
		fmt.Fprintf(os.Stderr, "odd C_%d gadget: universe %d, intersects=%v\n",
			2**k+1, tmpl.UniverseSize(), d.Intersects())
	default:
		return fmt.Errorf("unknown family %q", *family)
	}
	if err != nil {
		return err
	}
	return graph.WriteEdgeList(w, g)
}

func instance(universe int, density float64, intersect bool, seed uint64) *gadget.Disjointness {
	d := gadget.RandomDisjointness(universe, density, !intersect, seed)
	if intersect {
		d.X[universe/2], d.Y[universe/2] = true, true
	}
	return d
}
