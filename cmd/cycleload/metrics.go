package main

import (
	"fmt"
	"math"
	"net/http"
	"time"

	"repro/internal/obs"
)

// Server-side observability for HTTP runs (-metrics): the client scrapes
// GET /metrics before and after the replay, deltas the exposition, and
// reports the SERVER's view of the run — latency quantiles measured
// inside the service (no transport, no client scheduling) next to the
// client-observed ones, plus the counter deltas that cross-check the
// client's own tally. The scrape itself is strict: a malformed or
// internally inconsistent exposition (non-cumulative buckets, _count
// disagreeing with +Inf) fails the run, which is how CI keeps the
// /metrics surface honest under real concurrency.

// ServerMetricsDelta is the before/after difference of the server's
// exposition across one replay, recorded in LoadRecord.server_metrics.
type ServerMetricsDelta struct {
	// RequestsTotal/ServedTotal/ErrorsTotal are counter deltas over the
	// run (evencycle_requests_total and friends).
	RequestsTotal float64 `json:"requests_total"`
	ServedTotal   float64 `json:"served_total"`
	ErrorsTotal   float64 `json:"errors_total"`
	// DurationCount is the request-latency histogram's observation delta
	// — the server's count of successes it timed. P50/P99 are quantiles
	// interpolated from the bucket deltas (server-side latency: queue
	// wait and engine included, HTTP transport excluded).
	DurationCount float64 `json:"duration_count"`
	P50Ns         int64   `json:"p50_ns"`
	P99Ns         int64   `json:"p99_ns"`
}

// scrapeMetrics fetches and strictly parses the server's exposition.
func scrapeMetrics(addr string) (*obs.Exposition, error) {
	resp, err := http.Get(addr + "/metrics")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("GET /metrics: %s", resp.Status)
	}
	exp, err := obs.ParseExposition(resp.Body)
	if err != nil {
		return nil, fmt.Errorf("parsing /metrics: %w", err)
	}
	if err := exp.Validate(); err != nil {
		return nil, fmt.Errorf("inconsistent /metrics exposition: %w", err)
	}
	return exp, nil
}

// counterDelta is the increase of a counter family between two scrapes.
func counterDelta(before, after *obs.Exposition, name string) (float64, error) {
	b, _ := before.CounterSum(name)
	a, ok := after.CounterSum(name)
	if !ok {
		return 0, fmt.Errorf("metric %s absent from the scrape", name)
	}
	if a < b {
		return 0, fmt.Errorf("counter %s went backwards across the run (%v → %v)", name, b, a)
	}
	return a - b, nil
}

// metricsDelta computes the server-side view of the replay from the two
// scrapes.
func metricsDelta(before, after *obs.Exposition) (*ServerMetricsDelta, error) {
	d := &ServerMetricsDelta{}
	var err error
	if d.RequestsTotal, err = counterDelta(before, after, "evencycle_requests_total"); err != nil {
		return nil, err
	}
	if d.ServedTotal, err = counterDelta(before, after, "evencycle_served_total"); err != nil {
		return nil, err
	}
	if d.ErrorsTotal, err = counterDelta(before, after, "evencycle_errors_total"); err != nil {
		return nil, err
	}
	bh, err := before.MergedHistogram("evencycle_request_duration_seconds")
	if err != nil {
		return nil, err
	}
	ah, err := after.MergedHistogram("evencycle_request_duration_seconds")
	if err != nil {
		return nil, err
	}
	if ah == nil {
		return nil, fmt.Errorf("evencycle_request_duration_seconds absent — is the server running with -observe?")
	}
	dh := ah
	if bh != nil {
		if dh, err = ah.Sub(bh); err != nil {
			return nil, fmt.Errorf("delta of request_duration histograms: %w", err)
		}
	}
	d.DurationCount = dh.Count
	if dh.Count > 0 {
		if p := dh.Quantile(0.50); !math.IsNaN(p) {
			d.P50Ns = int64(p * 1e9)
		}
		if p := dh.Quantile(0.99); !math.IsNaN(p) {
			d.P99Ns = int64(p * 1e9)
		}
	}
	return d, nil
}

// checkServerMetrics gates the run on the server's own numbers: the
// duration histogram must have timed exactly the successes this client
// observed (nobody else was talking to the server, and no success
// escaped instrumentation), and the server-side p99 must stay under the
// bound when one is set.
func checkServerMetrics(d *ServerMetricsDelta, rec *LoadRecord, maxServerP99 time.Duration) error {
	successes := float64(rec.Totals.ByClass["2xx"] + rec.Totals.ByClass["2xx_retried"])
	if d.DurationCount != successes {
		return fmt.Errorf("server timed %.0f requests but the client completed %.0f — instrumentation and traffic disagree",
			d.DurationCount, successes)
	}
	if d.ServedTotal != successes {
		return fmt.Errorf("server served_total delta %.0f ≠ client successes %.0f", d.ServedTotal, successes)
	}
	if maxServerP99 > 0 && d.P99Ns > maxServerP99.Nanoseconds() {
		return fmt.Errorf("server-side p99 %s exceeds bound %s",
			time.Duration(d.P99Ns), maxServerP99)
	}
	return nil
}
