// Command cycleload is a closed-loop load generator for cycleserved: C
// client goroutines each keep exactly one request in flight against
// POST /v1/detect, cycling through a slice of the server's corpus so the
// request stream mixes cache misses (first touch of each graph) with hits
// (every revisit). It reports throughput, a latency histogram with
// percentiles, and the serve-path split the server advertises in its
// X-Evencycle-Source headers — and can gate on minimum cache-hit ratio
// and maximum failures, which is how the CI smoke job asserts the service
// works.
//
// Usage:
//
//	cycleload -addr http://localhost:8972 -requests 400 -clients 8 \
//	  -algo det -k 2 -distinct 4 [-json -out BENCH_5.json] \
//	  [-min-hit-ratio 0.5] [-max-failures 0]
//
// The corpus names are discovered from GET /v1/corpus; -distinct D uses
// the first D names, so with R requests the expected hit ratio approaches
// 1 - D/R once every graph has been touched. Deterministic mode (-algo
// det) additionally asserts that every response body for a given graph is
// byte-identical — the service's determinism acceptance check.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"slices"
	"sync"
	"time"

	"repro/internal/service"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "cycleload:", err)
		os.Exit(1)
	}
}

// LoadRecord is the serialized result of one load run (BENCH_5.json and
// the CI service-smoke artifact use it).
type LoadRecord struct {
	Schema string     `json:"schema"`
	Label  string     `json:"label"`
	Target string     `json:"target"`
	Config LoadConfig `json:"config"`
	Totals LoadTotals `json:"totals"`
	// ElapsedNs is the whole-run wall time; RPS the completed requests
	// per second over it.
	ElapsedNs int64   `json:"elapsed_ns"`
	RPS       float64 `json:"rps"`
	Latency   Latency `json:"latency_ns"`
}

// LoadConfig echoes the generator parameters.
type LoadConfig struct {
	Clients    int    `json:"clients"`
	Requests   int    `json:"requests"`
	Algo       string `json:"algo"`
	K          int    `json:"k"`
	Distinct   int    `json:"distinct"`
	Iterations int    `json:"iterations,omitempty"`
	Seed       uint64 `json:"seed"`
}

// LoadTotals is the outcome tally.
type LoadTotals struct {
	Completed int `json:"completed"`
	Failures  int `json:"failures"`
	// BySource splits completed requests by the server's serve path.
	BySource map[string]int `json:"by_source"`
	// HitRatio is the fraction of completed requests served without a
	// full computation (cache + coalesced + amplified).
	HitRatio float64 `json:"hit_ratio"`
	// DetByteIdentical is set in det mode: whether every response body
	// per graph was identical across serves.
	DetByteIdentical *bool `json:"det_byte_identical,omitempty"`
}

// Latency summarizes the per-request latency sample in nanoseconds.
type Latency struct {
	P50  int64 `json:"p50"`
	P90  int64 `json:"p90"`
	P99  int64 `json:"p99"`
	Max  int64 `json:"max"`
	Mean int64 `json:"mean"`
	// Histogram counts requests at or under each power-of-two bound.
	Histogram []Bucket `json:"histogram"`
}

// Bucket is one histogram cell: latency ≤ LeNs.
type Bucket struct {
	LeNs  int64 `json:"le_ns"`
	Count int   `json:"count"`
}

type sample struct {
	ns     int64
	source string
	name   string
	body   []byte
	err    error
}

func run() error {
	addr := flag.String("addr", "http://localhost:8972", "cycleserved base URL")
	clients := flag.Int("clients", 8, "concurrent closed-loop clients")
	requests := flag.Int("requests", 400, "total requests to issue")
	algo := flag.String("algo", "det", "algo per request: even | bounded | odd | det")
	k := flag.Int("k", 2, "half cycle length")
	distinct := flag.Int("distinct", 0, "corpus names to cycle through (0 = all)")
	iterations := flag.Int("iterations", 0, "trial budget per request (0 = server default; randomized algos)")
	seed := flag.Uint64("seed", 1, "request seed (randomized algos)")
	label := flag.String("label", "cycleload", "label recorded in the JSON output")
	jsonOut := flag.Bool("json", false, "emit the LoadRecord JSON instead of text")
	out := flag.String("out", "", "output file (default stdout)")
	minHitRatio := flag.Float64("min-hit-ratio", -1, "fail unless the hit ratio reaches this (negative disables)")
	maxFailures := flag.Int("max-failures", -1, "fail if more requests fail than this (negative disables)")
	flag.Parse()

	names, err := corpusNames(*addr)
	if err != nil {
		return err
	}
	if len(names) == 0 {
		return fmt.Errorf("server has no corpus graphs; start cycleserved with -corpus name=spec")
	}
	if *distinct > 0 && *distinct < len(names) {
		names = names[:*distinct]
	}
	fmt.Fprintf(os.Stderr, "load: %d requests, %d clients, %d distinct graphs, algo=%s k=%d\n",
		*requests, *clients, len(names), *algo, *k)

	samples := make([]sample, *requests)
	var next int
	var mu sync.Mutex
	var wg sync.WaitGroup
	client := &http.Client{Timeout: 5 * time.Minute}
	start := time.Now()
	for c := 0; c < *clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				mu.Lock()
				i := next
				next++
				mu.Unlock()
				if i >= *requests {
					return
				}
				name := names[i%len(names)]
				samples[i] = oneRequest(client, *addr, &service.WireRequest{
					Algo:       *algo,
					K:          *k,
					Corpus:     name,
					Seed:       *seed,
					Iterations: *iterations,
				}, name)
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)

	rec := summarize(samples, elapsed)
	rec.Label = *label
	rec.Target = *addr
	rec.Config = LoadConfig{
		Clients: *clients, Requests: *requests, Algo: *algo, K: *k,
		Distinct: len(names), Iterations: *iterations, Seed: *seed,
	}
	if *algo == "det" || *algo == "deterministic" {
		identical := detBodiesIdentical(samples)
		rec.Totals.DetByteIdentical = &identical
	}

	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	if *jsonOut {
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rec); err != nil {
			return err
		}
	} else {
		renderText(w, rec)
	}

	if *maxFailures >= 0 && rec.Totals.Failures > *maxFailures {
		return fmt.Errorf("%d requests failed (max %d)", rec.Totals.Failures, *maxFailures)
	}
	if *minHitRatio >= 0 && rec.Totals.HitRatio < *minHitRatio {
		return fmt.Errorf("hit ratio %.3f below required %.3f", rec.Totals.HitRatio, *minHitRatio)
	}
	if rec.Totals.DetByteIdentical != nil && !*rec.Totals.DetByteIdentical {
		return fmt.Errorf("deterministic-mode responses were not byte-identical per graph")
	}
	return nil
}

func corpusNames(addr string) ([]string, error) {
	resp, err := http.Get(addr + "/v1/corpus")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("GET /v1/corpus: %s", resp.Status)
	}
	var entries []struct {
		Name string `json:"name"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&entries); err != nil {
		return nil, err
	}
	names := make([]string, len(entries))
	for i, e := range entries {
		names[i] = e.Name
	}
	return names, nil
}

func oneRequest(client *http.Client, addr string, wire *service.WireRequest, name string) sample {
	body, err := json.Marshal(wire)
	if err != nil {
		return sample{err: err}
	}
	start := time.Now()
	resp, err := client.Post(addr+"/v1/detect", "application/json", bytes.NewReader(body))
	if err != nil {
		return sample{ns: time.Since(start).Nanoseconds(), name: name, err: err}
	}
	defer resp.Body.Close()
	payload, err := io.ReadAll(resp.Body)
	ns := time.Since(start).Nanoseconds()
	if err != nil {
		return sample{ns: ns, name: name, err: err}
	}
	if resp.StatusCode != http.StatusOK {
		return sample{ns: ns, name: name, err: fmt.Errorf("%s: %s", resp.Status, payload)}
	}
	return sample{
		ns:     ns,
		source: resp.Header.Get("X-Evencycle-Source"),
		name:   name,
		body:   payload,
	}
}

func summarize(samples []sample, elapsed time.Duration) *LoadRecord {
	rec := &LoadRecord{
		Schema:    "evencycle-service-load/v1",
		ElapsedNs: elapsed.Nanoseconds(),
		Totals:    LoadTotals{BySource: make(map[string]int)},
	}
	var lats []int64
	var sum int64
	for _, s := range samples {
		if s.err != nil {
			rec.Totals.Failures++
			fmt.Fprintf(os.Stderr, "request failed: %v\n", s.err)
			continue
		}
		rec.Totals.Completed++
		rec.Totals.BySource[s.source]++
		lats = append(lats, s.ns)
		sum += s.ns
	}
	if rec.Totals.Completed > 0 {
		saved := rec.Totals.Completed - rec.Totals.BySource[string(service.SourceComputed)]
		rec.Totals.HitRatio = float64(saved) / float64(rec.Totals.Completed)
		rec.RPS = float64(rec.Totals.Completed) / elapsed.Seconds()
	}
	if len(lats) > 0 {
		slices.Sort(lats)
		q := func(p float64) int64 {
			i := int(p * float64(len(lats)-1))
			return lats[i]
		}
		rec.Latency = Latency{
			P50: q(0.50), P90: q(0.90), P99: q(0.99),
			Max:  lats[len(lats)-1],
			Mean: sum / int64(len(lats)),
		}
		// Power-of-two buckets from 4µs up to the max.
		for le := int64(4096); ; le *= 2 {
			n, _ := slices.BinarySearch(lats, le+1)
			rec.Latency.Histogram = append(rec.Latency.Histogram, Bucket{LeNs: le, Count: n})
			if le >= rec.Latency.Max {
				break
			}
		}
	}
	return rec
}

// detBodiesIdentical checks the determinism acceptance bar: for each
// graph, every successful det-mode response body must be byte-identical
// no matter which serve path produced it.
func detBodiesIdentical(samples []sample) bool {
	first := make(map[string][]byte)
	ok := true
	for _, s := range samples {
		if s.err != nil || s.body == nil {
			continue
		}
		if prev, seen := first[s.name]; seen {
			if !bytes.Equal(prev, s.body) {
				fmt.Fprintf(os.Stderr, "det responses differ for %s:\n  %s\n  %s\n", s.name, prev, s.body)
				ok = false
			}
		} else {
			first[s.name] = s.body
		}
	}
	return ok
}

func renderText(w io.Writer, rec *LoadRecord) {
	fmt.Fprintf(w, "completed %d requests in %s (%.1f req/s), %d failures\n",
		rec.Totals.Completed, time.Duration(rec.ElapsedNs).Round(time.Millisecond),
		rec.RPS, rec.Totals.Failures)
	fmt.Fprintf(w, "serve paths:")
	for _, src := range []string{"computed", "amplified", "coalesced", "cache"} {
		if n := rec.Totals.BySource[src]; n > 0 {
			fmt.Fprintf(w, " %s=%d", src, n)
		}
	}
	fmt.Fprintf(w, "  hit ratio %.3f\n", rec.Totals.HitRatio)
	fmt.Fprintf(w, "latency: p50=%s p90=%s p99=%s max=%s\n",
		time.Duration(rec.Latency.P50), time.Duration(rec.Latency.P90),
		time.Duration(rec.Latency.P99), time.Duration(rec.Latency.Max))
	if rec.Totals.DetByteIdentical != nil {
		fmt.Fprintf(w, "det responses byte-identical per graph: %v\n", *rec.Totals.DetByteIdentical)
	}
}
