// Command cycleload is a closed-loop load generator for cycleserved: C
// client goroutines each keep exactly one request in flight against
// POST /v1/detect, cycling through a slice of the server's corpus so the
// request stream mixes cache misses (first touch of each graph) with hits
// (every revisit). It reports throughput, a latency histogram with
// percentiles, and the serve-path split the server advertises in its
// X-Evencycle-Source headers — and can gate on minimum cache-hit ratio
// and maximum failures, which is how the CI smoke job asserts the service
// works.
//
// Usage:
//
//	cycleload -addr http://localhost:8972 -requests 400 -clients 8 \
//	  -algo det -k 2 -distinct 4 [-json -out BENCH_5.json] \
//	  [-min-hit-ratio 0.5] [-max-failures 0]
//
// The corpus names are discovered from GET /v1/corpus; -distinct D uses
// the first D names, so with R requests the expected hit ratio approaches
// 1 - D/R once every graph has been touched. Deterministic mode (-algo
// det) additionally asserts that every response body for a given graph is
// byte-identical — the service's determinism acceptance check.
//
// The many-small-graphs mode (-inline spec) generates -distinct D graphs
// client-side from the spec template (one per derived seed) and ships
// them inline instead of referencing the corpus. With D close to the
// request count nearly every request is a first touch — a pure miss-path
// workload, which is what the server's fused batching exists for. The
// report then includes the batch-size distribution the server advertises
// in its X-Evencycle-Batch headers, and the server's own final counters;
// -max-engine-sessions gates on fused batching actually collapsing the
// session count (the CI smoke job's batching assertion).
//
// The in-process mode (-direct, requires -inline) drives service.Do
// directly instead of going through HTTP, so the measurement isolates
// the miss path itself — fingerprint, scheduling, engine session — from
// the HTTP/JSON transport cost, which on small graphs is several times
// the detection cost and identical on every serve path. -direct -vs-solo
// replays the same workload twice, against a batching-disabled service
// and a batched one, verifies the responses are byte-identical per graph
// across both, and emits a single comparison record with the throughput
// ratio (BENCH_6.json); -min-speedup gates on that ratio and -trials
// takes the best of N runs per path to damp scheduler noise.
//
// Failure-domain accounting: every request lands in an outcome class
// ("2xx", "408" deadline, "429" shed, "499" cancelled, "503" contained
// panic/drain, "client_timeout", "net"), tallied in totals.by_class.
// -deadline-ms attaches a per-request deadline (the 408/429 domains);
// -timeout D -timeout-frac F abandons a fraction F of requests
// client-side after D (the 499 domain, exercising cooperative engine
// cancellation under live load).
//
// Retry policy (-retries N, HTTP mode only): 429 and 503 are the
// server's explicit safe-to-retry pushback, so with N > 0 the client
// retries them up to N times, sleeping the server's Retry-After hint
// when one is sent and otherwise an exponential backoff (25ms doubling,
// capped by -max-backoff), both with ±25% jitter so synchronized
// clients don't re-arrive in lockstep. A request that failed first and
// then succeeded counts as "2xx_retried" in totals.by_class — visibly
// distinct from clean "2xx", so a run that leaned on retries can't
// masquerade as one that didn't.
//
// The chaos mode (-chaos, requires -direct -inline) is the robustness
// acceptance harness: it replays the workload fault-free to capture
// reference response bodies, arms the -fault specs (or a default storm
// of round stalls, detector panics, and batch-leader crashes), replays
// again under a watchdog, and gates on the failure-domain invariants —
// the chaos run finishes (no hangs), every failure carries the typed
// taxonomy, every surviving response is byte-identical to its reference,
// the armed faults actually fired, and the service drains to idle (no
// leaked admission slots). BENCH_7.json is the overload-with-deadlines
// artifact: a -deadline-ms run on a small slot count, recording the
// 2xx/408/429 split and the shed/deadline counters server-side.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"slices"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/faultpoint"
	"repro/internal/graph"
	"repro/internal/obs"
	"repro/internal/service"
)

// listFlag collects repeated -fault spec flags.
type listFlag []string

func (c *listFlag) String() string { return strings.Join(*c, ",") }
func (c *listFlag) Set(v string) error {
	*c = append(*c, v)
	return nil
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "cycleload:", err)
		os.Exit(1)
	}
}

// LoadRecord is the serialized result of one load run (BENCH_5.json and
// the CI service-smoke artifact use it).
type LoadRecord struct {
	Schema string     `json:"schema"`
	Label  string     `json:"label"`
	Target string     `json:"target"`
	Config LoadConfig `json:"config"`
	Totals LoadTotals `json:"totals"`
	// ElapsedNs is the whole-run wall time; RPS the completed requests
	// per second over it.
	ElapsedNs int64   `json:"elapsed_ns"`
	RPS       float64 `json:"rps"`
	Latency   Latency `json:"latency_ns"`
	// ServerStats is the server's own counter snapshot after the run
	// (GET /v1/stats, or Service.Stats in -direct mode) — the
	// authoritative engine-session count behind the client-observed
	// batch sizes.
	ServerStats *service.Stats `json:"server_stats,omitempty"`
	// ServerMetrics is the before/after delta of the server's /metrics
	// exposition (-metrics, HTTP mode): server-side latency quantiles
	// and the counter deltas cross-checking the client tally.
	ServerMetrics *ServerMetricsDelta `json:"server_metrics,omitempty"`
}

// LoadConfig echoes the generator parameters.
type LoadConfig struct {
	Clients    int    `json:"clients"`
	Requests   int    `json:"requests"`
	Algo       string `json:"algo"`
	K          int    `json:"k"`
	Distinct   int    `json:"distinct"`
	Iterations int    `json:"iterations,omitempty"`
	Seed       uint64 `json:"seed"`
	// Inline is the graph-spec template of the many-small-graphs mode
	// (empty = corpus mode).
	Inline string `json:"inline,omitempty"`
	// DeadlineMS is the per-request deadline attached to every request
	// (0 = none): the knob behind the 408/429 outcome classes.
	DeadlineMS int64 `json:"deadline_ms,omitempty"`
	// ClientTimeoutMS/TimeoutFrac inject client-side abandonment: every
	// 1/TimeoutFrac-th request is dropped by the client after
	// ClientTimeoutMS (the 499 domain).
	ClientTimeoutMS int64   `json:"client_timeout_ms,omitempty"`
	TimeoutFrac     float64 `json:"timeout_frac,omitempty"`
	// Retries is how many times a 429/503 is retried (HTTP mode;
	// Retry-After honored, exponential backoff otherwise, capped at
	// MaxBackoffMS). 0 = fail immediately, the pre-retry behavior.
	Retries      int   `json:"retries,omitempty"`
	MaxBackoffMS int64 `json:"max_backoff_ms,omitempty"`
	// Faults echoes the armed fault-injection specs of a chaos run.
	Faults []string `json:"faults,omitempty"`
}

// LoadTotals is the outcome tally.
type LoadTotals struct {
	Completed int `json:"completed"`
	Failures  int `json:"failures"`
	// BySource splits completed requests by the server's serve path.
	BySource map[string]int `json:"by_source"`
	// ByClass splits ALL requests (completed and failed) by outcome
	// class: "2xx", "408" (deadline), "429" (shed), "499" (cancelled),
	// "503" (contained panic / draining), "client_timeout" (the client
	// gave up in flight), "net" (transport error), "err" (anything else).
	ByClass map[string]int `json:"by_class"`
	// HitRatio is the fraction of completed requests served without a
	// full computation (cache + coalesced + amplified).
	HitRatio float64 `json:"hit_ratio"`
	// DetByteIdentical is set in det mode: whether every response body
	// per graph was identical across serves.
	DetByteIdentical *bool `json:"det_byte_identical,omitempty"`
	// BatchSizes counts computed requests by the engine batch size the
	// server fused them into (the X-Evencycle-Batch header): key "1" is
	// solo sessions, larger keys are fused batches.
	BatchSizes map[string]int `json:"batch_sizes,omitempty"`
}

// MissBatchRecord is the -vs-solo comparison artifact (BENCH_6.json):
// the same miss-path workload replayed against a solo-session service
// and a fused-batching one, with the responses pinned identical.
type MissBatchRecord struct {
	Schema string     `json:"schema"`
	Label  string     `json:"label"`
	Config LoadConfig `json:"config"`
	// BatchSize / BatchLingerNs / Slots are the batched service's knobs
	// (the solo reference differs only in BatchSize 1).
	BatchSize     int   `json:"batch_size"`
	BatchLingerNs int64 `json:"batch_linger_ns"`
	Slots         int   `json:"slots"`
	// Trials is how many times each path ran; Solo/Batched are the
	// best-throughput trial of each.
	Trials  int         `json:"trials"`
	Solo    *LoadRecord `json:"solo"`
	Batched *LoadRecord `json:"batched"`
	// Speedup is Batched.RPS / Solo.RPS.
	Speedup float64 `json:"speedup"`
	// ResponsesIdentical records the equivalence check: every graph's
	// response body byte-identical between the solo and batched runs.
	ResponsesIdentical bool `json:"responses_identical"`
}

// Latency summarizes the per-request latency sample in nanoseconds.
type Latency struct {
	P50  int64 `json:"p50"`
	P90  int64 `json:"p90"`
	P99  int64 `json:"p99"`
	Max  int64 `json:"max"`
	Mean int64 `json:"mean"`
	// Histogram counts requests at or under each power-of-two bound.
	Histogram []Bucket `json:"histogram"`
}

// Bucket is one histogram cell: latency ≤ LeNs.
type Bucket struct {
	LeNs  int64 `json:"le_ns"`
	Count int   `json:"count"`
}

type sample struct {
	ns     int64
	source string
	batch  int // engine batch size for computed requests (X-Evencycle-Batch)
	name   string
	class  string // outcome class (see LoadTotals.ByClass)
	// retryAfter is the server's Retry-After hint on a 429/503, if any —
	// the sleep the retry loop prefers over its own backoff schedule.
	retryAfter time.Duration
	body       []byte
	// resp holds the unserialized response in -direct mode; the body is
	// marshaled after the timed run so serialization isn't billed to the
	// service.
	resp *service.Response
	err  error
}

func run() error {
	addr := flag.String("addr", "http://localhost:8972", "cycleserved base URL")
	clients := flag.Int("clients", 8, "concurrent closed-loop clients")
	requests := flag.Int("requests", 400, "total requests to issue")
	algo := flag.String("algo", "det", "algo per request: even | bounded | odd | det")
	k := flag.Int("k", 2, "half cycle length")
	distinct := flag.Int("distinct", 0, "corpus names to cycle through (0 = all)")
	iterations := flag.Int("iterations", 0, "trial budget per request (0 = server default; randomized algos)")
	seed := flag.Uint64("seed", 1, "request seed (randomized algos)")
	label := flag.String("label", "cycleload", "label recorded in the JSON output")
	jsonOut := flag.Bool("json", false, "emit the LoadRecord JSON instead of text")
	out := flag.String("out", "", "output file (default stdout)")
	minHitRatio := flag.Float64("min-hit-ratio", -1, "fail unless the hit ratio reaches this (negative disables)")
	maxFailures := flag.Int("max-failures", -1, "fail if more requests fail than this (negative disables)")
	inline := flag.String("inline", "", "many-small-graphs mode: generate -distinct graphs from this spec template\n"+
		"client-side (one per derived seed) and ship them inline instead of using the corpus")
	maxSessions := flag.Int("max-engine-sessions", -1, "fail if the server's final engine-session count exceeds this (negative disables)")
	direct := flag.Bool("direct", false, "drive the service in-process instead of over HTTP (requires -inline)")
	vsSolo := flag.Bool("vs-solo", false, "with -direct: replay against solo and batched services and emit the comparison record")
	trials := flag.Int("trials", 1, "with -vs-solo: runs per path, best throughput kept")
	minSpeedup := flag.Float64("min-speedup", -1, "with -vs-solo: fail unless batched/solo rps reaches this (negative disables)")
	slots := flag.Int("slots", 0, "with -direct: service compute slots (0 = service default)")
	batch := flag.Int("batch", 0, "with -direct: max fused batch size (0 = service default, 1 = disable)")
	batchLinger := flag.Duration("batch-linger", 0, "with -direct: batch linger window (0 = service default)")
	deadlineMS := flag.Int64("deadline-ms", 0, "per-request deadline in ms (0 = none); expiry is the 408 class, shedding the 429 class")
	retries := flag.Int("retries", 0, "retry 429/503 responses up to this many times, honoring Retry-After (HTTP mode; 0 = never)")
	maxBackoff := flag.Duration("max-backoff", 2*time.Second, "cap on the per-retry backoff sleep")
	clientTimeout := flag.Duration("timeout", 0, "client-side abandonment: give up on injected requests after this long (0 = never)")
	timeoutFrac := flag.Float64("timeout-frac", 0, "fraction of requests that get the -timeout abandonment (0 = none)")
	chaos := flag.Bool("chaos", false, "chaos acceptance mode (requires -direct -inline): fault-free reference replay, then a fault-injected replay gated on the failure-domain invariants")
	chaosTimeout := flag.Duration("chaos-timeout", 2*time.Minute, "with -chaos: watchdog bound on the fault-injected replay (a hang fails the run)")
	metrics := flag.Bool("metrics", false, "scrape GET /metrics before and after the replay (HTTP mode): record the server-side\n"+
		"latency delta and fail unless the server's success count matches the client's")
	maxServerP99 := flag.Duration("max-server-p99", 0, "with -metrics: fail if the server-side p99 over the run exceeds this (0 = no bound)")
	mutate := flag.String("mutate", "", "mutate-then-detect mode (HTTP only): add -requests random single edges to this corpus name,\n"+
		"detecting after each op and gating mutation lineage + served-fingerprint consistency (see mutate.go)")
	var faults listFlag
	flag.Var(&faults, "fault", "arm a fault-injection point as point:every=N[:limit=M][:delay=D] (repeatable; -direct/-chaos only)")
	flag.Parse()

	if *vsSolo && !*direct {
		return fmt.Errorf("-vs-solo requires -direct")
	}
	if *chaos && !*direct {
		return fmt.Errorf("-chaos requires -direct (the reference/chaos replays share one process)")
	}
	if *direct && *inline == "" {
		return fmt.Errorf("-direct needs -inline (it has no server corpus to draw from)")
	}
	if len(faults) > 0 && !*direct {
		return fmt.Errorf("-fault only applies in -direct mode; arm server-side faults via cycleserved -fault")
	}
	if *metrics && (*direct || *mutate != "") {
		return fmt.Errorf("-metrics scrapes a live server over HTTP; it composes with neither -direct nor -mutate")
	}
	if *mutate != "" {
		if *direct || *inline != "" {
			return fmt.Errorf("-mutate drives a server corpus over HTTP; it composes with neither -direct nor -inline")
		}
		rec, err := mutateRun(*addr, *mutate, *requests, *k, *seed, *label)
		if err != nil {
			return err
		}
		var w io.Writer = os.Stdout
		if *out != "" {
			f, err := os.Create(*out)
			if err != nil {
				return err
			}
			defer f.Close()
			w = f
		}
		if *jsonOut {
			enc := json.NewEncoder(w)
			enc.SetIndent("", "  ")
			return enc.Encode(rec)
		}
		_, err = fmt.Fprintln(w, renderMutate(rec))
		return err
	}

	// Build the request stream: corpus references, or inline graphs
	// generated from the -inline spec template.
	var names []string
	var gs []*graph.Graph
	if *inline != "" {
		if *distinct <= 0 {
			return fmt.Errorf("-inline needs -distinct > 0 (how many graphs to generate)")
		}
		names = make([]string, *distinct)
		gs = make([]*graph.Graph, *distinct)
		for i := range gs {
			g, err := graph.FromSpec(*inline, *seed+uint64(i))
			if err != nil {
				return fmt.Errorf("-inline %q: %w", *inline, err)
			}
			names[i] = fmt.Sprintf("inline-%d", i)
			gs[i] = g
		}
	} else {
		var err error
		if names, err = corpusNames(*addr); err != nil {
			return err
		}
		if len(names) == 0 {
			return fmt.Errorf("server has no corpus graphs; start cycleserved with -corpus name=spec")
		}
		if *distinct > 0 && *distinct < len(names) {
			names = names[:*distinct]
		}
	}
	cfg := LoadConfig{
		Clients: *clients, Requests: *requests, Algo: *algo, K: *k,
		Distinct: len(names), Iterations: *iterations, Seed: *seed, Inline: *inline,
		DeadlineMS:      *deadlineMS,
		ClientTimeoutMS: clientTimeout.Milliseconds(),
		TimeoutFrac:     *timeoutFrac,
		Retries:         *retries,
		MaxBackoffMS:    maxBackoff.Milliseconds(),
	}
	if *retries > 0 && *direct {
		return fmt.Errorf("-retries only applies over HTTP; -direct failures carry typed errors, not statuses")
	}
	fmt.Fprintf(os.Stderr, "load: %d requests, %d clients, %d distinct graphs, algo=%s k=%d\n",
		*requests, *clients, len(names), *algo, *k)

	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}

	if *chaos {
		algoP, err := service.ParseAlgo(*algo)
		if err != nil {
			return err
		}
		svcCfg := service.Config{Slots: *slots, CacheEntries: 2*len(gs) + 16,
			BatchSize: *batch, BatchLinger: *batchLinger}
		return chaosRun(w, svcCfg, gs, names, algoP, cfg, faults, *label, *jsonOut, *chaosTimeout)
	}
	for _, spec := range faults {
		if err := faultpoint.Set(spec); err != nil {
			return fmt.Errorf("-fault %q: %w", spec, err)
		}
		fmt.Fprintf(os.Stderr, "WARNING: fault injection armed: %s\n", spec)
	}

	if *vsSolo {
		algoP, err := service.ParseAlgo(*algo)
		if err != nil {
			return err
		}
		base := service.Config{Slots: *slots, CacheEntries: 2*len(gs) + 16,
			BatchSize: *batch, BatchLinger: *batchLinger}
		batchedCfg := service.New(base).Config() // resolve defaults for the record
		soloCfg := base
		soloCfg.BatchSize = 1

		solo, batched, identical, err := compareRuns(soloCfg, base, gs, names, algoP, cfg, *trials)
		if err != nil {
			return err
		}
		rec := &MissBatchRecord{
			Schema: "evencycle-missbatch/v1", Label: *label, Config: cfg,
			BatchSize: batchedCfg.BatchSize, BatchLingerNs: batchedCfg.BatchLinger.Nanoseconds(),
			Slots: batchedCfg.Slots, Trials: *trials,
			Solo: solo, Batched: batched,
			Speedup:            batched.RPS / solo.RPS,
			ResponsesIdentical: identical,
		}
		if *jsonOut {
			enc := json.NewEncoder(w)
			enc.SetIndent("", "  ")
			if err := enc.Encode(rec); err != nil {
				return err
			}
		} else {
			renderVsSolo(w, rec)
		}
		if !identical {
			return fmt.Errorf("batched responses differ from solo responses")
		}
		if *maxFailures >= 0 {
			if f := solo.Totals.Failures + batched.Totals.Failures; f > *maxFailures {
				return fmt.Errorf("%d requests failed (max %d)", f, *maxFailures)
			}
		}
		if *maxSessions >= 0 && batched.ServerStats.EngineSessions > int64(*maxSessions) {
			return fmt.Errorf("batched path ran %d engine sessions (max %d — batching did not collapse the miss path)",
				batched.ServerStats.EngineSessions, *maxSessions)
		}
		if *minSpeedup >= 0 && rec.Speedup < *minSpeedup {
			return fmt.Errorf("batched/solo speedup %.2f below required %.2f", rec.Speedup, *minSpeedup)
		}
		return nil
	}

	var rec *LoadRecord
	if *direct {
		algoP, err := service.ParseAlgo(*algo)
		if err != nil {
			return err
		}
		svcCfg := service.Config{Slots: *slots, CacheEntries: 2*len(gs) + 16,
			BatchSize: *batch, BatchLinger: *batchLinger}
		rec, _, _, err = directRun(svcCfg, gs, names, algoP, cfg)
		if err != nil {
			return err
		}
	} else {
		var before *obs.Exposition
		var err error
		if *metrics {
			if before, err = scrapeMetrics(*addr); err != nil {
				return fmt.Errorf("pre-run scrape: %w", err)
			}
		}
		if rec, err = httpRun(*addr, gs, names, cfg); err != nil {
			return err
		}
		if *metrics {
			after, err := scrapeMetrics(*addr)
			if err != nil {
				return fmt.Errorf("post-run scrape: %w", err)
			}
			if rec.ServerMetrics, err = metricsDelta(before, after); err != nil {
				return err
			}
		}
	}
	rec.Label = *label
	if *algo == "det" || *algo == "deterministic" {
		// DetByteIdentical is filled per run; surface a pointer even when
		// no body repeated so the gate below stays meaningful.
		if rec.Totals.DetByteIdentical == nil {
			identical := true
			rec.Totals.DetByteIdentical = &identical
		}
	}

	if *jsonOut {
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rec); err != nil {
			return err
		}
	} else {
		renderText(w, rec)
	}

	if *maxFailures >= 0 && rec.Totals.Failures > *maxFailures {
		return fmt.Errorf("%d requests failed (max %d)", rec.Totals.Failures, *maxFailures)
	}
	if *minHitRatio >= 0 && rec.Totals.HitRatio < *minHitRatio {
		return fmt.Errorf("hit ratio %.3f below required %.3f", rec.Totals.HitRatio, *minHitRatio)
	}
	if *maxSessions >= 0 {
		if rec.ServerStats == nil {
			return fmt.Errorf("-max-engine-sessions set but server stats were unavailable")
		}
		if rec.ServerStats.EngineSessions > int64(*maxSessions) {
			return fmt.Errorf("server ran %d engine sessions (max %d — batching did not collapse the miss path)",
				rec.ServerStats.EngineSessions, *maxSessions)
		}
	}
	if rec.Totals.DetByteIdentical != nil && !*rec.Totals.DetByteIdentical {
		return fmt.Errorf("deterministic-mode responses were not byte-identical per graph")
	}
	if rec.ServerMetrics != nil {
		if err := checkServerMetrics(rec.ServerMetrics, rec, *maxServerP99); err != nil {
			return err
		}
	}
	return nil
}

// replay drives the closed loop: `clients` goroutines each keep one
// request in flight until `requests` have been issued.
func replay(requests, clients int, do func(i int) sample) ([]sample, time.Duration) {
	samples := make([]sample, requests)
	var next atomic.Int64
	var wg sync.WaitGroup
	start := time.Now()
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= requests {
					return
				}
				samples[i] = do(i)
			}
		}()
	}
	wg.Wait()
	return samples, time.Since(start)
}

// httpRun replays the workload over HTTP. Request bodies are marshaled
// once per distinct graph up front — re-encoding the edge list on every
// request would bill client CPU against the server on a shared host.
func httpRun(addr string, gs []*graph.Graph, names []string, cfg LoadConfig) (*LoadRecord, error) {
	bodies := make([][]byte, len(names))
	for i := range names {
		wire := &service.WireRequest{
			Algo:       cfg.Algo,
			K:          cfg.K,
			Seed:       cfg.Seed,
			Iterations: cfg.Iterations,
			DeadlineMS: cfg.DeadlineMS,
		}
		if gs != nil {
			wire.Graph = &service.WireGraph{N: gs[i].NumNodes(), Edges: gs[i].Edges()}
		} else {
			wire.Corpus = names[i]
		}
		var err error
		if bodies[i], err = json.Marshal(wire); err != nil {
			return nil, err
		}
	}
	client := &http.Client{Timeout: 5 * time.Minute}
	stride := timeoutStride(cfg.TimeoutFrac)
	samples, elapsed := replay(cfg.Requests, cfg.Clients, func(i int) sample {
		ctx := context.Background()
		if stride > 0 && i%stride == 0 {
			var cancel context.CancelFunc
			ctx, cancel = context.WithTimeout(ctx, time.Duration(cfg.ClientTimeoutMS)*time.Millisecond)
			defer cancel()
		}
		return oneRequestRetry(ctx, client, addr, bodies[i%len(names)], names[i%len(names)],
			cfg.Retries, time.Duration(cfg.MaxBackoffMS)*time.Millisecond)
	})
	rec := summarize(samples, elapsed)
	rec.Target = addr
	rec.Config = cfg
	if st, err := serverStats(addr); err != nil {
		fmt.Fprintf(os.Stderr, "warning: GET /v1/stats failed: %v\n", err)
	} else {
		rec.ServerStats = st
	}
	if cfg.Algo == "det" || cfg.Algo == "deterministic" {
		identical := detBodiesIdentical(samples)
		rec.Totals.DetByteIdentical = &identical
	}
	return rec, nil
}

// directRun replays the workload in-process against a fresh Service,
// returning the run record, the per-graph response bodies (for
// cross-path equivalence checks), and the raw samples (for per-request
// chaos gating).
func directRun(svcCfg service.Config, gs []*graph.Graph, names []string, algo service.Algo, cfg LoadConfig) (*LoadRecord, map[string][]byte, []sample, error) {
	svc := service.New(svcCfg)
	stride := timeoutStride(cfg.TimeoutFrac)
	samples, elapsed := replay(cfg.Requests, cfg.Clients, func(i int) sample {
		name := names[i%len(names)]
		req := &service.Request{
			Graph: gs[i%len(gs)], Algo: algo, K: cfg.K,
			Seed: cfg.Seed, Iterations: cfg.Iterations,
			Deadline: time.Duration(cfg.DeadlineMS) * time.Millisecond,
		}
		ctx := context.Background()
		if stride > 0 && i%stride == 0 {
			var cancel context.CancelFunc
			ctx, cancel = context.WithTimeout(ctx, time.Duration(cfg.ClientTimeoutMS)*time.Millisecond)
			defer cancel()
		}
		start := time.Now()
		resp, info, err := svc.DoInfo(ctx, req)
		ns := time.Since(start).Nanoseconds()
		if err != nil {
			return sample{ns: ns, name: name, class: classOfErr(err), err: err}
		}
		return sample{ns: ns, source: string(info.Source), batch: info.Batch, name: name, class: "2xx", resp: resp}
	})
	for i := range samples {
		s := &samples[i]
		if s.err == nil && s.resp != nil {
			if s.body, s.err = json.Marshal(s.resp); s.err != nil {
				s.body = nil
			}
		}
	}
	rec := summarize(samples, elapsed)
	rec.Target = "in-process"
	rec.Config = cfg
	st := svc.Stats()
	rec.ServerStats = &st
	if algo == service.AlgoDet {
		identical := detBodiesIdentical(samples)
		rec.Totals.DetByteIdentical = &identical
	}
	return rec, firstBodies(samples), samples, nil
}

// classOfErr maps a direct-mode failure onto its outcome class — the
// same domains an HTTP client would read off the status line.
func classOfErr(err error) string {
	switch {
	case errors.Is(err, service.ErrDeadline):
		return "408"
	case errors.Is(err, service.ErrShed):
		return "429"
	case errors.Is(err, service.ErrCancelled):
		return "499"
	case errors.Is(err, service.ErrInternal):
		return "503"
	case errors.Is(err, context.DeadlineExceeded):
		return "client_timeout"
	default:
		return "err"
	}
}

// timeoutStride converts -timeout-frac into "every Nth request": 0.25 →
// every 4th. Zero disables injection.
func timeoutStride(frac float64) int {
	if frac <= 0 {
		return 0
	}
	stride := int(1/frac + 0.5)
	if stride < 1 {
		stride = 1
	}
	return stride
}

// compareRuns interleaves `trials` solo and batched replays (each
// against a fresh service, so every trial exercises the pure miss path)
// and keeps each path's best-throughput record. Interleaving means a
// burst of host interference lands on both paths alike instead of
// skewing whichever side it happened to hit. All trials of both paths
// must produce byte-identical per-graph responses.
func compareRuns(soloCfg, batchedCfg service.Config, gs []*graph.Graph, names []string, algo service.Algo, cfg LoadConfig, trials int) (solo, batched *LoadRecord, identical bool, err error) {
	if trials < 1 {
		trials = 1
	}
	var ref map[string][]byte
	identical = true
	for t := 0; t < trials; t++ {
		for _, p := range []struct {
			cfg  service.Config
			best **LoadRecord
		}{{soloCfg, &solo}, {batchedCfg, &batched}} {
			rec, bodies, _, rerr := directRun(p.cfg, gs, names, algo, cfg)
			if rerr != nil {
				return nil, nil, false, rerr
			}
			if ref == nil {
				ref = bodies
			} else if !bodiesEqual(ref, bodies) {
				identical = false
			}
			if *p.best == nil || rec.RPS > (*p.best).RPS {
				*p.best = rec
			}
		}
	}
	return solo, batched, identical, nil
}

// ChaosRecord is the -chaos artifact: one fault-free reference replay
// and one fault-injected replay of the same workload, with the
// failure-domain invariants that gate the run.
type ChaosRecord struct {
	Schema string     `json:"schema"`
	Label  string     `json:"label"`
	Config LoadConfig `json:"config"`
	// Faults are the armed injection specs; Fired counts how often each
	// point actually triggered during the chaos replay.
	Faults []string         `json:"faults"`
	Fired  map[string]int64 `json:"fired"`
	// Reference is the fault-free replay; Chaos the injected one.
	Reference *LoadRecord `json:"reference"`
	Chaos     *LoadRecord `json:"chaos"`
	// The gates: every chaos response matched its reference byte for
	// byte, every failure carried the typed taxonomy, and the service
	// ended idle (no leaked admission slots or queue entries).
	UnaffectedIdentical bool `json:"unaffected_identical"`
	ContainedFailures   bool `json:"contained_failures"`
	DrainedClean        bool `json:"drained_clean"`
}

// defaultChaosFaults is the storm armed when -chaos is given without
// explicit -fault specs: periodic round stalls plus a bounded number of
// detector and batch-leader crashes.
var defaultChaosFaults = []string{
	"round-stall:every=11:delay=200us",
	"detector-panic:every=2:limit=4",
	"batch-leader-crash:every=2:limit=3",
}

// chaosRun is the robustness acceptance harness (see the package
// comment). It exits non-zero if any failure-domain invariant breaks.
func chaosRun(w io.Writer, svcCfg service.Config, gs []*graph.Graph, names []string, algo service.Algo, cfg LoadConfig, faults []string, label string, jsonOut bool, watchdog time.Duration) error {
	if len(faults) == 0 {
		faults = defaultChaosFaults
	}
	cfg.Faults = faults

	// Reference replay: fault-free, no client abandonment — every graph's
	// canonical response body.
	faultpoint.Reset()
	refCfg := cfg
	refCfg.ClientTimeoutMS, refCfg.TimeoutFrac = 0, 0
	refRec, refBodies, _, err := directRun(svcCfg, gs, names, algo, refCfg)
	if err != nil {
		return err
	}
	if refRec.Totals.Failures > 0 {
		return fmt.Errorf("reference replay had %d failures — fix the workload before injecting faults", refRec.Totals.Failures)
	}

	for _, spec := range faults {
		if err := faultpoint.Set(spec); err != nil {
			return fmt.Errorf("-fault %q: %w", spec, err)
		}
		fmt.Fprintf(os.Stderr, "chaos: armed %s\n", spec)
	}
	defer faultpoint.Reset()

	// Chaos replay under a watchdog: a fault that wedges a request (lost
	// wakeup, leaked slot) must fail the run, not hang CI.
	type result struct {
		rec     *LoadRecord
		samples []sample
		err     error
	}
	resc := make(chan result, 1)
	go func() {
		rec, _, samples, err := directRun(svcCfg, gs, names, algo, cfg)
		resc <- result{rec, samples, err}
	}()
	var res result
	select {
	case res = <-resc:
	case <-time.After(watchdog):
		return fmt.Errorf("chaos replay hung: not finished after %v (fault left a request stuck)", watchdog)
	}
	if res.err != nil {
		return res.err
	}

	fired := make(map[string]int64)
	for p, n := range faultpoint.Fired() {
		fired[string(p)] = n
	}
	rec := &ChaosRecord{
		Schema: "evencycle-chaos/v1", Label: label, Config: cfg,
		Faults: faults, Fired: fired,
		Reference: refRec, Chaos: res.rec,
		UnaffectedIdentical: true, ContainedFailures: true,
	}
	for _, s := range res.samples {
		switch {
		case s.err == nil:
			if !bytes.Equal(refBodies[s.name], s.body) {
				fmt.Fprintf(os.Stderr, "chaos: %s diverged from reference:\n  %s\n  %s\n", s.name, refBodies[s.name], s.body)
				rec.UnaffectedIdentical = false
			}
		case s.class == "408" || s.class == "429" || s.class == "499" ||
			s.class == "503" || s.class == "client_timeout":
			// contained: the failure carries the typed taxonomy
		default:
			fmt.Fprintf(os.Stderr, "chaos: untyped failure (%s): %v\n", s.class, s.err)
			rec.ContainedFailures = false
		}
	}
	st := res.rec.ServerStats
	rec.DrainedClean = st != nil && st.InFlight == 0 && st.Queued == 0

	if jsonOut {
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rec); err != nil {
			return err
		}
	} else {
		renderChaos(w, rec)
	}

	var total int64
	for _, n := range rec.Fired {
		total += n
	}
	switch {
	case total == 0:
		return fmt.Errorf("chaos gate: no armed faultpoint fired — the replay exercised nothing")
	case !rec.ContainedFailures:
		return fmt.Errorf("chaos gate: a failure escaped the typed error taxonomy")
	case !rec.UnaffectedIdentical:
		return fmt.Errorf("chaos gate: a response served under faults diverged from its fault-free reference")
	case !rec.DrainedClean:
		return fmt.Errorf("chaos gate: service not idle after the replay (leaked slot or queue entry)")
	}
	return nil
}

func renderChaos(w io.Writer, rec *ChaosRecord) {
	fmt.Fprintf(w, "chaos replay: %d requests, %d clients, faults %v\n",
		rec.Config.Requests, rec.Config.Clients, rec.Faults)
	fmt.Fprintf(w, "  fired: %v\n", rec.Fired)
	fmt.Fprintf(w, "  reference: %d ok; chaos: %d ok, %d failed, classes %v\n",
		rec.Reference.Totals.Completed, rec.Chaos.Totals.Completed,
		rec.Chaos.Totals.Failures, rec.Chaos.Totals.ByClass)
	fmt.Fprintf(w, "  unaffected identical: %v  contained failures: %v  drained clean: %v\n",
		rec.UnaffectedIdentical, rec.ContainedFailures, rec.DrainedClean)
}

// firstBodies maps each graph name to its first successful response body.
func firstBodies(samples []sample) map[string][]byte {
	m := make(map[string][]byte)
	for _, s := range samples {
		if s.err != nil || s.body == nil {
			continue
		}
		if _, ok := m[s.name]; !ok {
			m[s.name] = s.body
		}
	}
	return m
}

func bodiesEqual(a, b map[string][]byte) bool {
	if len(a) != len(b) {
		return false
	}
	for name, body := range a {
		if !bytes.Equal(b[name], body) {
			fmt.Fprintf(os.Stderr, "responses differ for %s:\n  %s\n  %s\n", name, body, b[name])
			return false
		}
	}
	return true
}

func serverStats(addr string) (*service.Stats, error) {
	resp, err := http.Get(addr + "/v1/stats")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("GET /v1/stats: %s", resp.Status)
	}
	var st service.Stats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return nil, err
	}
	return &st, nil
}

func corpusNames(addr string) ([]string, error) {
	resp, err := http.Get(addr + "/v1/corpus")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("GET /v1/corpus: %s", resp.Status)
	}
	var entries []struct {
		Name string `json:"name"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&entries); err != nil {
		return nil, err
	}
	names := make([]string, len(entries))
	for i, e := range entries {
		names[i] = e.Name
	}
	return names, nil
}

func oneRequest(ctx context.Context, client *http.Client, addr string, body []byte, name string) sample {
	start := time.Now()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, addr+"/v1/detect", bytes.NewReader(body))
	if err != nil {
		return sample{name: name, class: "err", err: err}
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := client.Do(req)
	if err != nil {
		class := "net"
		if errors.Is(err, context.DeadlineExceeded) {
			// The injected client timeout fired: we abandoned the request
			// in flight (server-side this is the 499 domain).
			class = "client_timeout"
		}
		return sample{ns: time.Since(start).Nanoseconds(), name: name, class: class, err: err}
	}
	defer resp.Body.Close()
	payload, err := io.ReadAll(resp.Body)
	ns := time.Since(start).Nanoseconds()
	if err != nil {
		class := "net"
		if errors.Is(err, context.DeadlineExceeded) {
			class = "client_timeout"
		}
		return sample{ns: ns, name: name, class: class, err: err}
	}
	if resp.StatusCode != http.StatusOK {
		s := sample{ns: ns, name: name, class: strconv.Itoa(resp.StatusCode),
			err: fmt.Errorf("%s: %s", resp.Status, payload)}
		if sec, err := strconv.Atoi(resp.Header.Get("Retry-After")); err == nil && sec >= 0 {
			s.retryAfter = time.Duration(sec) * time.Second
		}
		return s
	}
	batch, _ := strconv.Atoi(resp.Header.Get("X-Evencycle-Batch"))
	return sample{
		ns:     ns,
		source: resp.Header.Get("X-Evencycle-Source"),
		batch:  batch,
		name:   name,
		class:  "2xx",
		body:   payload,
	}
}

// retryable reports whether a response class is worth re-sending: 429
// (shed / deadline-cannot-cover-queue) and 503 (draining, store failure)
// are explicit back-off-and-come-back signals. Everything else — 4xx
// request defects, 408 deadline expiry, network errors mid-body — either
// will not improve on resend or may have committed server-side work.
func retryable(class string) bool {
	return class == "429" || class == "503"
}

// oneRequestRetry wraps oneRequest with a bounded retry loop for
// back-pressure responses. The sleep between attempts prefers the
// server's Retry-After hint when one came back, otherwise an exponential
// schedule starting at 25ms; either way it is capped at maxBackoff and
// jittered ±25% so a fleet of shed clients does not re-converge on the
// same instant. A request that succeeds after at least one retry is
// classed "2xx_retried" so summaries separate clean admissions from
// recovered ones; the reported latency covers only the final attempt
// (queueing delay the client chose to insert is not service latency).
func oneRequestRetry(ctx context.Context, client *http.Client, addr string, body []byte, name string, retries int, maxBackoff time.Duration) sample {
	s := oneRequest(ctx, client, addr, body, name)
	backoff := 25 * time.Millisecond
	for attempt := 0; attempt < retries && retryable(s.class); attempt++ {
		sleep := backoff
		if s.retryAfter > 0 {
			sleep = s.retryAfter
		}
		if maxBackoff > 0 && sleep > maxBackoff {
			sleep = maxBackoff
		}
		sleep = time.Duration(float64(sleep) * (0.75 + 0.5*rand.Float64()))
		select {
		case <-time.After(sleep):
		case <-ctx.Done():
			return s
		}
		backoff *= 2
		s = oneRequest(ctx, client, addr, body, name)
		if s.class == "2xx" {
			s.class = "2xx_retried"
		}
	}
	return s
}

func summarize(samples []sample, elapsed time.Duration) *LoadRecord {
	rec := &LoadRecord{
		Schema:    "evencycle-service-load/v1",
		ElapsedNs: elapsed.Nanoseconds(),
		Totals:    LoadTotals{BySource: make(map[string]int), ByClass: make(map[string]int)},
	}
	var lats []int64
	var sum int64
	var failuresShown int
	for _, s := range samples {
		if s.class != "" {
			rec.Totals.ByClass[s.class]++
		}
		if s.err != nil {
			rec.Totals.Failures++
			// An overload run fails hundreds of requests by design; cap
			// the per-request noise and let by_class carry the tally.
			if failuresShown < 10 {
				fmt.Fprintf(os.Stderr, "request failed: %v\n", s.err)
				failuresShown++
			} else if failuresShown == 10 {
				fmt.Fprintln(os.Stderr, "(further failures suppressed; see totals.by_class)")
				failuresShown++
			}
			continue
		}
		rec.Totals.Completed++
		rec.Totals.BySource[s.source]++
		if s.batch > 0 {
			if rec.Totals.BatchSizes == nil {
				rec.Totals.BatchSizes = make(map[string]int)
			}
			rec.Totals.BatchSizes[strconv.Itoa(s.batch)]++
		}
		lats = append(lats, s.ns)
		sum += s.ns
	}
	if rec.Totals.Completed > 0 {
		saved := rec.Totals.Completed - rec.Totals.BySource[string(service.SourceComputed)]
		rec.Totals.HitRatio = float64(saved) / float64(rec.Totals.Completed)
		rec.RPS = float64(rec.Totals.Completed) / elapsed.Seconds()
	}
	if len(lats) > 0 {
		slices.Sort(lats)
		q := func(p float64) int64 {
			i := int(p * float64(len(lats)-1))
			return lats[i]
		}
		rec.Latency = Latency{
			P50: q(0.50), P90: q(0.90), P99: q(0.99),
			Max:  lats[len(lats)-1],
			Mean: sum / int64(len(lats)),
		}
		// Power-of-two buckets from 4µs up to the max.
		for le := int64(4096); ; le *= 2 {
			n, _ := slices.BinarySearch(lats, le+1)
			rec.Latency.Histogram = append(rec.Latency.Histogram, Bucket{LeNs: le, Count: n})
			if le >= rec.Latency.Max {
				break
			}
		}
	}
	return rec
}

// detBodiesIdentical checks the determinism acceptance bar: for each
// graph, every successful det-mode response body must be byte-identical
// no matter which serve path produced it.
func detBodiesIdentical(samples []sample) bool {
	first := make(map[string][]byte)
	ok := true
	for _, s := range samples {
		if s.err != nil || s.body == nil {
			continue
		}
		if prev, seen := first[s.name]; seen {
			if !bytes.Equal(prev, s.body) {
				fmt.Fprintf(os.Stderr, "det responses differ for %s:\n  %s\n  %s\n", s.name, prev, s.body)
				ok = false
			}
		} else {
			first[s.name] = s.body
		}
	}
	return ok
}

func renderText(w io.Writer, rec *LoadRecord) {
	fmt.Fprintf(w, "completed %d requests in %s (%.1f req/s), %d failures\n",
		rec.Totals.Completed, time.Duration(rec.ElapsedNs).Round(time.Millisecond),
		rec.RPS, rec.Totals.Failures)
	fmt.Fprintf(w, "serve paths:")
	for _, src := range []string{"computed", "amplified", "coalesced", "cache"} {
		if n := rec.Totals.BySource[src]; n > 0 {
			fmt.Fprintf(w, " %s=%d", src, n)
		}
	}
	fmt.Fprintf(w, "  hit ratio %.3f\n", rec.Totals.HitRatio)
	if len(rec.Totals.ByClass) > 1 || rec.Totals.ByClass["2xx"] != rec.Totals.Completed {
		classes := make([]string, 0, len(rec.Totals.ByClass))
		for c := range rec.Totals.ByClass {
			classes = append(classes, c)
		}
		slices.Sort(classes)
		fmt.Fprintf(w, "outcome classes:")
		for _, c := range classes {
			fmt.Fprintf(w, " %s=%d", c, rec.Totals.ByClass[c])
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintf(w, "latency: p50=%s p90=%s p99=%s max=%s\n",
		time.Duration(rec.Latency.P50), time.Duration(rec.Latency.P90),
		time.Duration(rec.Latency.P99), time.Duration(rec.Latency.Max))
	if len(rec.Totals.BatchSizes) > 0 {
		sizes := make([]int, 0, len(rec.Totals.BatchSizes))
		for k := range rec.Totals.BatchSizes {
			if v, err := strconv.Atoi(k); err == nil {
				sizes = append(sizes, v)
			}
		}
		slices.Sort(sizes)
		fmt.Fprintf(w, "engine batch sizes:")
		for _, sz := range sizes {
			fmt.Fprintf(w, " %d×%d", sz, rec.Totals.BatchSizes[strconv.Itoa(sz)])
		}
		fmt.Fprintln(w)
	}
	if rec.ServerStats != nil {
		fmt.Fprintf(w, "server sessions: engine=%d (fused=%d solo=%d), batches=%d mean=%.2f max=%d\n",
			rec.ServerStats.EngineSessions, rec.ServerStats.FusedSessions, rec.ServerStats.SoloSessions,
			rec.ServerStats.BatchesFormed, rec.ServerStats.MeanBatchSize, rec.ServerStats.MaxBatchSize)
	}
	if rec.ServerMetrics != nil {
		fmt.Fprintf(w, "server-side latency (from /metrics): p50=%s p99=%s over %.0f timed requests\n",
			time.Duration(rec.ServerMetrics.P50Ns), time.Duration(rec.ServerMetrics.P99Ns),
			rec.ServerMetrics.DurationCount)
	}
	if rec.Totals.DetByteIdentical != nil {
		fmt.Fprintf(w, "det responses byte-identical per graph: %v\n", *rec.Totals.DetByteIdentical)
	}
}

func renderVsSolo(w io.Writer, rec *MissBatchRecord) {
	fmt.Fprintf(w, "miss-path comparison (%d×%q, %d requests, %d clients, algo=%s, best of %d):\n",
		rec.Config.Distinct, rec.Config.Inline, rec.Config.Requests, rec.Config.Clients,
		rec.Config.Algo, rec.Trials)
	for _, p := range []struct {
		name string
		r    *LoadRecord
	}{{"solo", rec.Solo}, {"batched", rec.Batched}} {
		fmt.Fprintf(w, "  %-8s %9.1f req/s  p50=%-10s sessions=%d",
			p.name, p.r.RPS, time.Duration(p.r.Latency.P50), p.r.ServerStats.EngineSessions)
		if p.r.ServerStats.BatchesFormed > 0 {
			fmt.Fprintf(w, " (batches=%d mean=%.2f max=%d)",
				p.r.ServerStats.BatchesFormed, p.r.ServerStats.MeanBatchSize, p.r.ServerStats.MaxBatchSize)
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintf(w, "  speedup %.2fx (batch %d, linger %s), responses identical: %v\n",
		rec.Speedup, rec.BatchSize, time.Duration(rec.BatchLingerNs), rec.ResponsesIdentical)
}
