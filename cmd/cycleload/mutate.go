package main

// The mutate-then-detect mode (-mutate NAME, HTTP only) drives the
// incremental corpus mutation path end to end against a live server:
// each op POSTs one random edge to /v1/corpus/NAME/edges and immediately
// detects on the mutated corpus. The gates are consistency, not speed —
// every mutation response must chain (its parent_fingerprint equal to
// the previous child fingerprint, or, for a no-op, the fingerprint
// unchanged), and every detection must be served for exactly the
// fingerprint the preceding mutation acknowledged. A violation is a
// hard error, so CI can run this as a correctness replay of the
// warm-start path under real HTTP traffic.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"time"

	"repro/internal/service"
)

// MutateRecord is the serialized result of one mutate-then-detect run.
type MutateRecord struct {
	Schema string `json:"schema"`
	Label  string `json:"label"`
	Target string `json:"target"`
	Corpus string `json:"corpus"`
	Ops    int    `json:"ops"`
	// Noops counts all-duplicate batches the server acknowledged without
	// a state change; Found counts detections that reported a cycle.
	Noops int `json:"noops"`
	Found int `json:"found"`
	// WarmStarts and Fallbacks sum the per-mutation warm-path counters
	// from the mutation responses (the server's /v1/stats totals ride in
	// ServerStats for cross-checking).
	WarmStarts  int            `json:"warm_starts"`
	Fallbacks   int            `json:"fallbacks"`
	ElapsedNs   int64          `json:"elapsed_ns"`
	OpsPerSec   float64        `json:"ops_per_sec"`
	ServerStats *service.Stats `json:"server_stats,omitempty"`
}

// mutateResponse mirrors cycleserved's mutationEntry wire shape.
type mutateResponse struct {
	Name              string `json:"name"`
	N                 int    `json:"n"`
	M                 int    `json:"m"`
	Fingerprint       string `json:"fingerprint"`
	ParentFingerprint string `json:"parent_fingerprint"`
	Noop              bool   `json:"noop"`
	WarmStarts        int    `json:"warm_starts"`
	Fallbacks         int    `json:"fallbacks"`
}

func mutateRun(addr, name string, ops, k int, seed uint64, label string) (*MutateRecord, error) {
	client := &http.Client{Timeout: 5 * time.Minute}

	resp, err := client.Get(addr + "/v1/corpus")
	if err != nil {
		return nil, err
	}
	var entries []mutateResponse
	err = json.NewDecoder(resp.Body).Decode(&entries)
	resp.Body.Close()
	if err != nil {
		return nil, fmt.Errorf("GET /v1/corpus: %w", err)
	}
	prev := ""
	n := 0
	for _, e := range entries {
		if e.Name == name {
			prev, n = e.Fingerprint, e.N
		}
	}
	if prev == "" {
		return nil, fmt.Errorf("corpus %q not on the server", name)
	}
	if n < 2 {
		return nil, fmt.Errorf("corpus %q has %d vertices; mutation needs at least 2", name, n)
	}

	rec := &MutateRecord{Schema: "evencycle-mutate/v1", Label: label, Target: addr, Corpus: name, Ops: ops}
	rng := rand.New(rand.NewSource(int64(seed)))
	start := time.Now()
	for i := 0; i < ops; i++ {
		u := rng.Intn(n)
		v := rng.Intn(n)
		body, _ := json.Marshal(map[string]any{"edges": [][2]int{{u, v}}})
		hr, err := client.Post(addr+"/v1/corpus/"+name+"/edges", "application/json", bytes.NewReader(body))
		if err != nil {
			return nil, fmt.Errorf("op %d: mutate: %w", i, err)
		}
		var mut mutateResponse
		err = json.NewDecoder(hr.Body).Decode(&mut)
		hr.Body.Close()
		if err != nil || hr.StatusCode != http.StatusOK {
			return nil, fmt.Errorf("op %d: mutate [%d,%d]: status %s err %v", i, u, v, hr.Status, err)
		}
		if mut.Noop {
			rec.Noops++
			if mut.Fingerprint != prev || mut.ParentFingerprint != prev {
				return nil, fmt.Errorf("op %d: no-op moved the fingerprint: %+v (had %s)", i, mut, prev)
			}
		} else {
			if mut.ParentFingerprint != prev {
				return nil, fmt.Errorf("op %d: lineage broken: parent %s, previous child %s", i, mut.ParentFingerprint, prev)
			}
			prev = mut.Fingerprint
		}
		rec.WarmStarts += mut.WarmStarts
		rec.Fallbacks += mut.Fallbacks

		det, _ := json.Marshal(map[string]any{"algo": "det", "k": k, "corpus": name})
		hr, err = client.Post(addr+"/v1/detect", "application/json", bytes.NewReader(det))
		if err != nil {
			return nil, fmt.Errorf("op %d: detect: %w", i, err)
		}
		var dr struct {
			Fingerprint string `json:"fingerprint"`
			Found       bool   `json:"found"`
		}
		err = json.NewDecoder(hr.Body).Decode(&dr)
		hr.Body.Close()
		if err != nil || hr.StatusCode != http.StatusOK {
			return nil, fmt.Errorf("op %d: detect: status %s err %v", i, hr.Status, err)
		}
		if dr.Fingerprint != prev {
			return nil, fmt.Errorf("op %d: detection served fingerprint %s, corpus is at %s", i, dr.Fingerprint, prev)
		}
		if dr.Found {
			rec.Found++
		}
	}
	elapsed := time.Since(start)
	rec.ElapsedNs = elapsed.Nanoseconds()
	if elapsed > 0 {
		rec.OpsPerSec = float64(ops) / elapsed.Seconds()
	}
	rec.ServerStats, err = serverStats(addr)
	if err != nil {
		return nil, err
	}
	return rec, nil
}

func renderMutate(rec *MutateRecord) string {
	return fmt.Sprintf("mutate %s: %d ops (%d noops), %d warm starts, %d fallbacks, %d found, %.1f ops/s",
		rec.Corpus, rec.Ops, rec.Noops, rec.WarmStarts, rec.Fallbacks, rec.Found, rec.OpsPerSec)
}
