// Command cycledetect runs one of the repository's cycle detectors on a
// generated or loaded graph and prints the verdict, witness, and cost.
//
// Usage:
//
//	cycledetect -gen planted:2000:4:1.5 -k 2 -mode classical
//	cycledetect -gen planted:2000:4:1.5 -k 2 -algo det -json
//	cycledetect -gen file:graph.txt -k 3 -mode quantum
//	cycledetect -gen pg:7 -k 2 -mode bounded
//	cycledetect -gen planted:8192:6:1.5 -k 3 -mode classical -trials 16 -parallel 0
//
// -algo is an alias for -mode; mode "det" runs the deterministic
// broadcast-CONGEST detector (arXiv:2412.11195), which is seedless — its
// output is a pure function of the graph.
//
// -json replaces the human-readable output with one JSON object on stdout
// (verdict, witness, rounds, bits, graph fingerprint, ...), so scripts,
// the load harness, and CI smoke jobs can parse results instead of
// scraping text. The witness_verified field reports the re-verification
// of the returned witness against the input graph.
//
// -trials runs that many independent detection runs (derived seeds) on the
// shared trial scheduler and stops at the first detection; -parallel
// controls how many trials/iterations are in flight (0 = GOMAXPROCS). The
// printed result is deterministic for a fixed -seed regardless of
// -parallel.
//
// Generators:
//
//	gnm:N:M          Erdős–Rényi G(N,M)
//	planted:N:L:AVG  sparse host (avg degree AVG) + planted C_L
//	heavy:N:L:HUB    planted C_L through a degree-HUB hub
//	highgirth:N:M:G  girth > G
//	pg:Q             PG(2,Q) point–line incidence graph (C₄-free)
//	file:PATH        edge-list file ("n m" header then "u v" lines)
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"repro/internal/baseline"
	"repro/internal/graph"
	"repro/internal/sched"

	evencycle "repro"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "cycledetect:", err)
		os.Exit(1)
	}
}

// outcome is the machine-readable result of one cycledetect invocation:
// the union of every mode's fields, rendered as text by default or as one
// JSON object with -json.
type outcome struct {
	Graph struct {
		N           int    `json:"n"`
		M           int    `json:"m"`
		MaxDeg      int    `json:"maxdeg"`
		Fingerprint string `json:"fingerprint"`
	} `json:"graph"`
	Mode string `json:"mode"`
	K    int    `json:"k"`

	Found    bool           `json:"found"`
	Witness  []graph.NodeID `json:"witness,omitempty"`
	FoundLen int            `json:"found_len,omitempty"`
	// WitnessVerified reports re-verification of the witness against the
	// input graph (present whenever a witness is).
	WitnessVerified *bool `json:"witness_verified,omitempty"`

	Rounds        int   `json:"rounds,omitempty"`
	Messages      int64 `json:"messages,omitempty"`
	Bits          int64 `json:"bits,omitempty"`
	MaxCongestion int   `json:"max_congestion,omitempty"`
	Overflowed    bool  `json:"overflowed,omitempty"`
	Iterations    int   `json:"iterations,omitempty"`

	// Trials is the requested -trials count, TrialsRun how many actually
	// folded (a miss ran them all; an early detection stops the fold),
	// and DetectedTrial the 1-based winner. Set when -trials > 1.
	Trials        int `json:"trials,omitempty"`
	TrialsRun     int `json:"trials_run,omitempty"`
	DetectedTrial int `json:"detected_trial,omitempty"`

	// Quantum-mode fields.
	QuantumRounds float64 `json:"quantum_rounds,omitempty"`
	Components    int     `json:"components,omitempty"`
	Eps           float64 `json:"eps,omitempty"`

	// Mode-specific extras.
	Rejecting    []graph.NodeID   `json:"rejecting,omitempty"`
	Cycles       [][]graph.NodeID `json:"cycles,omitempty"`
	Attempts     int              `json:"attempts,omitempty"`
	MaxBallEdges int              `json:"max_ball_edges,omitempty"`
}

// verifyWitness fills WitnessVerified (and prints in text mode).
func (o *outcome) verifyWitness(g *evencycle.Graph, jsonMode bool) {
	if len(o.Witness) == 0 {
		return
	}
	err := evencycle.VerifyCycle(g, o.Witness)
	ok := err == nil
	o.WitnessVerified = &ok
	if jsonMode {
		return
	}
	if err != nil {
		fmt.Printf("WITNESS INVALID: %v\n", err)
	} else {
		fmt.Println("witness verified against the input graph")
	}
}

func run() error {
	gen := flag.String("gen", "gnm:1000:2000", "graph source (see doc comment)")
	k := flag.Int("k", 2, "half cycle length: detect C_2k (or C_{2k+1} in odd mode)")
	mode := flag.String("mode", "classical",
		"classical | det | quantum | odd | oddquantum | bounded | boundedquantum | list | local | localthreshold | kball")
	flag.StringVar(mode, "algo", "classical", "alias for -mode")
	seed := flag.Uint64("seed", 1, "master random seed (also seeds -gen; the det detector itself is seedless — for a fixed graph its output never depends on the seed)")
	iterations := flag.Int("iterations", 0, "override coloring repetitions (0 = faithful)")
	threshold := flag.Int("threshold", 0, "override the congestion threshold τ (0 = faithful)")
	trials := flag.Int("trials", 1,
		"independent detection runs with derived seeds; stops at the first detection (detector modes only)")
	parallel := flag.Int("parallel", 1,
		"trials/iterations in flight on the shared scheduler (0 = GOMAXPROCS, 1 = sequential); the result is deterministic either way")
	jsonMode := flag.Bool("json", false, "emit one JSON object instead of text (scripting mode)")
	flag.Parse()

	g, err := graph.FromSpec(*gen, *seed)
	if err != nil {
		return err
	}
	out := &outcome{Mode: *mode, K: *k}
	out.Graph.N = g.NumNodes()
	out.Graph.M = g.NumEdges()
	out.Graph.MaxDeg = g.MaxDegree()
	out.Graph.Fingerprint = g.Fingerprint().String()
	if !*jsonMode {
		fmt.Printf("graph: n=%d m=%d maxdeg=%d\n", out.Graph.N, out.Graph.M, out.Graph.MaxDeg)
	}

	par := *parallel
	if par == 0 {
		par = -1 // sched.TrialRunner: negative means GOMAXPROCS
	}
	baseOpts := func(trialSeed uint64) []evencycle.Option {
		opts := []evencycle.Option{evencycle.WithSeed(trialSeed), evencycle.WithParallel(par)}
		if *iterations > 0 {
			opts = append(opts, evencycle.WithIterations(*iterations))
		}
		if *threshold > 0 {
			opts = append(opts, evencycle.WithThreshold(*threshold))
		}
		return opts
	}
	opts := baseOpts(*seed)

	// runTrials executes `-trials` independent runs of one detector with
	// seeds derived from the master seed, early-stopping at the first
	// detection; the result is deterministic for every -parallel. fill
	// populates out from one run and returns whether that run detected.
	runTrials := func(fill func(out *outcome, opts ...evencycle.Option) (found bool, err error)) error {
		if *trials <= 1 {
			_, err := fill(out, opts...)
			return err
		}
		out.Trials = *trials
		winnerTrial := -1
		res, err := sched.Run(sched.TrialRunner{Workers: par}, *trials,
			func(i int) (*outcome, error) {
				// The parallelism budget is spent at the trial level here;
				// each trial runs its own iterations sequentially rather
				// than multiplying the two levels.
				trialOut := &outcome{}
				opts := append(baseOpts(sched.Tag(*seed, uint64(i))), evencycle.WithParallel(1))
				found, err := fill(trialOut, opts...)
				if err != nil {
					return nil, fmt.Errorf("trial %d: %w", i, err)
				}
				if !found {
					trialOut = nil
				}
				return trialOut, nil
			},
			func(i int, trialOut *outcome) bool {
				if trialOut != nil {
					// Graft the winning trial's detector fields onto out,
					// keeping the graph/mode/trial bookkeeping.
					saved := *out
					*out = *trialOut
					out.Graph, out.Mode, out.K, out.Trials = saved.Graph, saved.Mode, saved.K, saved.Trials
					winnerTrial = i
					return true
				}
				return false
			})
		if err != nil {
			return err
		}
		out.TrialsRun = res.Folded
		if winnerTrial < 0 {
			out.Found = false
			out.Iterations = 0
			if !*jsonMode {
				fmt.Printf("found=false after %d independent trials\n", res.Folded)
			}
			return nil
		}
		out.DetectedTrial = winnerTrial + 1
		if !*jsonMode {
			fmt.Printf("detected on trial %d of %d\n", winnerTrial+1, *trials)
		}
		return nil
	}

	fillClassical := func(detect func(g *evencycle.Graph, k int, opts ...evencycle.Option) (*evencycle.Result, error)) func(*outcome, ...evencycle.Option) (bool, error) {
		return func(o *outcome, opts ...evencycle.Option) (bool, error) {
			res, err := detect(g, *k, opts...)
			if err != nil {
				return false, err
			}
			o.Found = res.Found
			o.Witness = res.Witness
			o.FoundLen = res.FoundLen
			o.Rounds, o.Messages, o.Bits = res.Rounds, res.Messages, res.Bits
			o.MaxCongestion, o.Overflowed, o.Iterations = res.MaxCongestion, res.Overflowed, res.Iterations
			return res.Found, nil
		}
	}
	fillQuantum := func(detect func(g *evencycle.Graph, k int, opts ...evencycle.Option) (*evencycle.QuantumResult, error)) func(*outcome, ...evencycle.Option) (bool, error) {
		return func(o *outcome, opts ...evencycle.Option) (bool, error) {
			res, err := detect(g, *k, opts...)
			if err != nil {
				return false, err
			}
			o.Found = res.Found
			o.Witness = res.Witness
			o.FoundLen = len(res.Witness)
			o.QuantumRounds, o.Components, o.Eps = res.QuantumRounds, res.Components, res.Eps
			return res.Found, nil
		}
	}

	printClassical := func() {
		fmt.Printf("found=%v rounds=%d messages=%d congestion=%d iterations=%d\n",
			out.Found, out.Rounds, out.Messages, out.MaxCongestion, out.Iterations)
		if out.Found {
			fmt.Printf("witness (C_%d): %v\n", out.FoundLen, out.Witness)
		}
	}
	printQuantum := func() {
		fmt.Printf("found=%v quantumRounds=%.0f components=%d eps=%.3g\n",
			out.Found, out.QuantumRounds, out.Components, out.Eps)
		if out.Found {
			fmt.Printf("witness: %v\n", out.Witness)
		}
	}
	// runAndRender is the shared tail of every trial-capable detector
	// mode: run the trials, print in text mode, verify the witness. A
	// multi-trial miss leaves `out`'s detector fields unset (each trial's
	// stats were trial-local), so the only honest text line is the
	// "found=false after N trials" runTrials already printed — printing
	// the stats line there would report zero costs for work that ran.
	runAndRender := func(fill func(*outcome, ...evencycle.Option) (bool, error), print func()) error {
		if err := runTrials(fill); err != nil {
			return err
		}
		if !*jsonMode && !(out.Trials > 1 && !out.Found) {
			print()
		}
		out.verifyWitness(g, *jsonMode)
		return nil
	}

	switch *mode {
	case "classical":
		if err := runAndRender(fillClassical(evencycle.Detect), printClassical); err != nil {
			return err
		}
	case "det", "deterministic":
		// The deterministic broadcast detector is seedless: one run is the
		// whole answer, so -trials/-parallel do not apply.
		res, err := evencycle.DetectDeterministic(g, *k, opts...)
		if err != nil {
			return err
		}
		out.Found = res.Found
		out.Witness = res.Witness
		out.FoundLen = res.FoundLen
		out.Rounds, out.Messages, out.Bits = res.Rounds, res.Messages, res.Bits
		out.MaxCongestion, out.Overflowed = res.MaxCongestion, res.Overflowed
		if !*jsonMode {
			fmt.Printf("found=%v rounds=%d messages=%d congestion=%d overflowed=%v\n",
				out.Found, out.Rounds, out.Messages, out.MaxCongestion, out.Overflowed)
			if out.Found {
				fmt.Printf("witness (C_%d): %v\n", out.FoundLen, out.Witness)
			}
		}
		out.verifyWitness(g, *jsonMode)
	case "bounded":
		if err := runAndRender(fillClassical(evencycle.DetectBounded), printClassical); err != nil {
			return err
		}
	case "odd":
		if err := runAndRender(fillClassical(evencycle.DetectOdd), printClassical); err != nil {
			return err
		}
	case "list":
		cycles, err := evencycle.ListCycles(g, *k, opts...)
		if err != nil {
			return err
		}
		out.Cycles = cycles
		out.Found = len(cycles) > 0
		if !*jsonMode {
			fmt.Printf("distinct C_%d copies found: %d\n", 2**k, len(cycles))
			for i, c := range cycles {
				fmt.Printf("  %3d: %v\n", i+1, c)
			}
		}
	case "local":
		res, err := evencycle.DetectLocal(g, *k, opts...)
		if err != nil {
			return err
		}
		out.Found = res.Found
		out.Witness = res.Witness
		out.FoundLen = res.FoundLen
		out.Rounds, out.Messages, out.Bits = res.Rounds, res.Messages, res.Bits
		out.MaxCongestion, out.Overflowed, out.Iterations = res.MaxCongestion, res.Overflowed, res.Iterations
		out.Rejecting = res.Rejecting
		if !*jsonMode {
			fmt.Printf("found=%v rounds=%d rejecting nodes=%v\n", out.Found, out.Rounds, out.Rejecting)
			if out.Found {
				fmt.Printf("witness: %v\n", out.Witness)
			}
		}
		out.verifyWitness(g, *jsonMode)
	case "quantum":
		if err := runAndRender(fillQuantum(evencycle.DetectQuantum), printQuantum); err != nil {
			return err
		}
	case "oddquantum":
		if err := runAndRender(fillQuantum(evencycle.DetectOddQuantum), printQuantum); err != nil {
			return err
		}
	case "boundedquantum":
		if err := runAndRender(fillQuantum(evencycle.DetectBoundedQuantum), printQuantum); err != nil {
			return err
		}
	case "localthreshold":
		res, err := baseline.DetectLocalThreshold(g, *k, baseline.LocalThresholdOptions{
			Seed: *seed, Attempts: *iterations, Parallel: par,
		})
		if err != nil {
			return err
		}
		out.Found = res.Found
		out.Witness = res.Witness
		out.Rounds, out.MaxCongestion, out.Attempts = res.Rounds, res.MaxCongestion, res.AttemptsRun
		if !*jsonMode {
			fmt.Printf("found=%v attempts=%d rounds=%d congestion=%d\n",
				out.Found, out.Attempts, out.Rounds, out.MaxCongestion)
			if out.Found {
				fmt.Printf("witness: %v\n", out.Witness)
			}
		}
		out.verifyWitness(g, *jsonMode)
	case "kball":
		res, err := baseline.DetectKBall(g, *k, *seed, 0)
		if err != nil {
			return err
		}
		out.Found = res.Found
		out.Witness = res.Witness
		out.Rounds, out.Messages, out.MaxBallEdges = res.Rounds, res.Messages, res.MaxBallEdges
		if !*jsonMode {
			fmt.Printf("found=%v rounds=%d messages=%d maxBallEdges=%d\n",
				out.Found, out.Rounds, out.Messages, out.MaxBallEdges)
			if out.Found {
				fmt.Printf("witness: %v\n", out.Witness)
			}
		}
		out.verifyWitness(g, *jsonMode)
	default:
		return fmt.Errorf("unknown mode %q", *mode)
	}

	if *jsonMode {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(out)
	}
	return nil
}
