// Command cycledetect runs one of the repository's cycle detectors on a
// generated or loaded graph and prints the verdict, witness, and cost.
//
// Usage:
//
//	cycledetect -gen planted:2000:4:1.5 -k 2 -mode classical
//	cycledetect -gen planted:2000:4:1.5 -k 2 -algo det
//	cycledetect -gen file:graph.txt -k 3 -mode quantum
//	cycledetect -gen pg:7 -k 2 -mode bounded
//	cycledetect -gen planted:8192:6:1.5 -k 3 -mode classical -trials 16 -parallel 0
//
// -algo is an alias for -mode; mode "det" runs the deterministic
// broadcast-CONGEST detector (arXiv:2412.11195), which is seedless — its
// output is a pure function of the graph.
//
// -trials runs that many independent detection runs (derived seeds) on the
// shared trial scheduler and stops at the first detection; -parallel
// controls how many trials/iterations are in flight (0 = GOMAXPROCS). The
// printed result is deterministic for a fixed -seed regardless of
// -parallel.
//
// Generators:
//
//	gnm:N:M          Erdős–Rényi G(N,M)
//	planted:N:L:AVG  sparse host (avg degree AVG) + planted C_L
//	heavy:N:L:HUB    planted C_L through a degree-HUB hub
//	highgirth:N:M:G  girth > G
//	pg:Q             PG(2,Q) point–line incidence graph (C₄-free)
//	file:PATH        edge-list file ("n m" header then "u v" lines)
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/baseline"
	"repro/internal/graph"
	"repro/internal/sched"

	evencycle "repro"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "cycledetect:", err)
		os.Exit(1)
	}
}

func run() error {
	gen := flag.String("gen", "gnm:1000:2000", "graph source (see doc comment)")
	k := flag.Int("k", 2, "half cycle length: detect C_2k (or C_{2k+1} in odd mode)")
	mode := flag.String("mode", "classical",
		"classical | det | quantum | odd | oddquantum | bounded | boundedquantum | list | local | localthreshold | kball")
	flag.StringVar(mode, "algo", "classical", "alias for -mode")
	seed := flag.Uint64("seed", 1, "master random seed (also seeds -gen; the det detector itself is seedless — for a fixed graph its output never depends on the seed)")
	iterations := flag.Int("iterations", 0, "override coloring repetitions (0 = faithful)")
	threshold := flag.Int("threshold", 0, "override the congestion threshold τ (0 = faithful)")
	trials := flag.Int("trials", 1,
		"independent detection runs with derived seeds; stops at the first detection (detector modes only)")
	parallel := flag.Int("parallel", 1,
		"trials/iterations in flight on the shared scheduler (0 = GOMAXPROCS, 1 = sequential); the result is deterministic either way")
	flag.Parse()

	g, err := buildGraph(*gen, *seed)
	if err != nil {
		return err
	}
	fmt.Printf("graph: n=%d m=%d maxdeg=%d\n", g.NumNodes(), g.NumEdges(), g.MaxDegree())

	par := *parallel
	if par == 0 {
		par = -1 // sched.TrialRunner: negative means GOMAXPROCS
	}
	baseOpts := func(trialSeed uint64) []evencycle.Option {
		opts := []evencycle.Option{evencycle.WithSeed(trialSeed), evencycle.WithParallel(par)}
		if *iterations > 0 {
			opts = append(opts, evencycle.WithIterations(*iterations))
		}
		if *threshold > 0 {
			opts = append(opts, evencycle.WithThreshold(*threshold))
		}
		return opts
	}
	opts := baseOpts(*seed)

	// runTrials executes `-trials` independent runs of one detector with
	// seeds derived from the master seed, early-stopping at the first
	// detection; the printed result is deterministic for every -parallel.
	runTrials := func(detect func(opts ...evencycle.Option) (found bool, print func(), err error)) error {
		if *trials <= 1 {
			_, print, err := detect(opts...)
			if err != nil {
				return err
			}
			print()
			return nil
		}
		var winner func()
		winnerTrial := -1
		res, err := sched.Run(sched.TrialRunner{Workers: par}, *trials,
			func(i int) (func(), error) {
				// The parallelism budget is spent at the trial level here;
				// each trial runs its own iterations sequentially rather
				// than multiplying the two levels.
				opts := append(baseOpts(sched.Tag(*seed, uint64(i))), evencycle.WithParallel(1))
				found, print, err := detect(opts...)
				if err != nil {
					return nil, fmt.Errorf("trial %d: %w", i, err)
				}
				if !found {
					print = nil
				}
				return print, nil
			},
			func(i int, print func()) bool {
				if print != nil {
					winner, winnerTrial = print, i
					return true
				}
				return false
			})
		if err != nil {
			return err
		}
		if winner == nil {
			fmt.Printf("found=false after %d independent trials\n", res.Folded)
			return nil
		}
		fmt.Printf("detected on trial %d of %d\n", winnerTrial+1, *trials)
		winner()
		return nil
	}
	classicalTrials := func(detect func(g *evencycle.Graph, k int, opts ...evencycle.Option) (*evencycle.Result, error)) error {
		return runTrials(func(opts ...evencycle.Option) (bool, func(), error) {
			res, err := detect(g, *k, opts...)
			if err != nil {
				return false, nil, err
			}
			return res.Found, func() { printClassical(g, res) }, nil
		})
	}
	quantumTrials := func(detect func(g *evencycle.Graph, k int, opts ...evencycle.Option) (*evencycle.QuantumResult, error)) error {
		return runTrials(func(opts ...evencycle.Option) (bool, func(), error) {
			res, err := detect(g, *k, opts...)
			if err != nil {
				return false, nil, err
			}
			return res.Found, func() { printQuantum(g, res) }, nil
		})
	}

	switch *mode {
	case "classical":
		return classicalTrials(evencycle.Detect)
	case "det", "deterministic":
		// The deterministic broadcast detector is seedless: one run is the
		// whole answer, so -trials/-parallel do not apply.
		res, err := evencycle.DetectDeterministic(g, *k, opts...)
		if err != nil {
			return err
		}
		fmt.Printf("found=%v rounds=%d messages=%d congestion=%d overflowed=%v\n",
			res.Found, res.Rounds, res.Messages, res.MaxCongestion, res.Overflowed)
		if res.Found {
			fmt.Printf("witness (C_%d): %v\n", res.FoundLen, res.Witness)
			if err := evencycle.VerifyCycle(g, res.Witness); err != nil {
				fmt.Printf("WITNESS INVALID: %v\n", err)
			} else {
				fmt.Println("witness verified against the input graph")
			}
		}
	case "bounded":
		return classicalTrials(evencycle.DetectBounded)
	case "odd":
		return classicalTrials(evencycle.DetectOdd)
	case "list":
		cycles, err := evencycle.ListCycles(g, *k, opts...)
		if err != nil {
			return err
		}
		fmt.Printf("distinct C_%d copies found: %d\n", 2**k, len(cycles))
		for i, c := range cycles {
			fmt.Printf("  %3d: %v\n", i+1, c)
		}
	case "local":
		res, err := evencycle.DetectLocal(g, *k, opts...)
		if err != nil {
			return err
		}
		fmt.Printf("found=%v rounds=%d rejecting nodes=%v\n", res.Found, res.Rounds, res.Rejecting)
		if res.Found {
			fmt.Printf("witness: %v\n", res.Witness)
		}
	case "quantum":
		return quantumTrials(evencycle.DetectQuantum)
	case "oddquantum":
		return quantumTrials(evencycle.DetectOddQuantum)
	case "boundedquantum":
		return quantumTrials(evencycle.DetectBoundedQuantum)
	case "localthreshold":
		res, err := baseline.DetectLocalThreshold(g, *k, baseline.LocalThresholdOptions{
			Seed: *seed, Attempts: *iterations, Parallel: par,
		})
		if err != nil {
			return err
		}
		fmt.Printf("found=%v attempts=%d rounds=%d congestion=%d\n",
			res.Found, res.AttemptsRun, res.Rounds, res.MaxCongestion)
		if res.Found {
			fmt.Printf("witness: %v\n", res.Witness)
		}
	case "kball":
		res, err := baseline.DetectKBall(g, *k, *seed, 0)
		if err != nil {
			return err
		}
		fmt.Printf("found=%v rounds=%d messages=%d maxBallEdges=%d\n",
			res.Found, res.Rounds, res.Messages, res.MaxBallEdges)
		if res.Found {
			fmt.Printf("witness: %v\n", res.Witness)
		}
	default:
		return fmt.Errorf("unknown mode %q", *mode)
	}
	return nil
}

func printClassical(g *evencycle.Graph, res *evencycle.Result) {
	fmt.Printf("found=%v rounds=%d messages=%d congestion=%d iterations=%d\n",
		res.Found, res.Rounds, res.Messages, res.MaxCongestion, res.Iterations)
	if res.Found {
		fmt.Printf("witness (C_%d): %v\n", res.FoundLen, res.Witness)
		if err := evencycle.VerifyCycle(g, res.Witness); err != nil {
			fmt.Printf("WITNESS INVALID: %v\n", err)
		} else {
			fmt.Println("witness verified against the input graph")
		}
	}
}

func printQuantum(g *evencycle.Graph, res *evencycle.QuantumResult) {
	fmt.Printf("found=%v quantumRounds=%.0f components=%d eps=%.3g\n",
		res.Found, res.QuantumRounds, res.Components, res.Eps)
	if res.Found {
		fmt.Printf("witness: %v\n", res.Witness)
		if err := evencycle.VerifyCycle(g, res.Witness); err != nil {
			fmt.Printf("WITNESS INVALID: %v\n", err)
		} else {
			fmt.Println("witness verified against the input graph")
		}
	}
}

func buildGraph(spec string, seed uint64) (*graph.Graph, error) {
	parts := strings.Split(spec, ":")
	atoi := func(i int) (int, error) {
		if i >= len(parts) {
			return 0, fmt.Errorf("generator %q: missing field %d", spec, i)
		}
		return strconv.Atoi(parts[i])
	}
	atof := func(i int) (float64, error) {
		if i >= len(parts) {
			return 0, fmt.Errorf("generator %q: missing field %d", spec, i)
		}
		return strconv.ParseFloat(parts[i], 64)
	}
	rng := graph.NewRand(seed)
	switch parts[0] {
	case "gnm":
		n, err := atoi(1)
		if err != nil {
			return nil, err
		}
		m, err := atoi(2)
		if err != nil {
			return nil, err
		}
		return graph.Gnm(n, m, rng), nil
	case "planted":
		n, err := atoi(1)
		if err != nil {
			return nil, err
		}
		l, err := atoi(2)
		if err != nil {
			return nil, err
		}
		avg, err := atof(3)
		if err != nil {
			return nil, err
		}
		g, _, err := graph.PlantedLight(n, l, avg, rng)
		return g, err
	case "heavy":
		n, err := atoi(1)
		if err != nil {
			return nil, err
		}
		l, err := atoi(2)
		if err != nil {
			return nil, err
		}
		hub, err := atoi(3)
		if err != nil {
			return nil, err
		}
		g, _, err := graph.PlantedHeavy(n, l, hub, 1.5, rng)
		return g, err
	case "highgirth":
		n, err := atoi(1)
		if err != nil {
			return nil, err
		}
		m, err := atoi(2)
		if err != nil {
			return nil, err
		}
		girth, err := atoi(3)
		if err != nil {
			return nil, err
		}
		return graph.HighGirth(n, m, girth, rng), nil
	case "pg":
		q, err := atoi(1)
		if err != nil {
			return nil, err
		}
		return graph.ProjectivePlaneIncidence(q)
	case "file":
		if len(parts) < 2 {
			return nil, fmt.Errorf("file generator needs a path")
		}
		f, err := os.Open(strings.Join(parts[1:], ":"))
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return graph.ReadEdgeList(f)
	default:
		return nil, fmt.Errorf("unknown generator %q", parts[0])
	}
}
