// Command cycledetect runs one of the repository's cycle detectors on a
// generated or loaded graph and prints the verdict, witness, and cost.
//
// Usage:
//
//	cycledetect -gen planted:2000:4:1.5 -k 2 -mode classical
//	cycledetect -gen file:graph.txt -k 3 -mode quantum
//	cycledetect -gen pg:7 -k 2 -mode bounded
//
// Generators:
//
//	gnm:N:M          Erdős–Rényi G(N,M)
//	planted:N:L:AVG  sparse host (avg degree AVG) + planted C_L
//	heavy:N:L:HUB    planted C_L through a degree-HUB hub
//	highgirth:N:M:G  girth > G
//	pg:Q             PG(2,Q) point–line incidence graph (C₄-free)
//	file:PATH        edge-list file ("n m" header then "u v" lines)
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/baseline"
	"repro/internal/graph"

	evencycle "repro"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "cycledetect:", err)
		os.Exit(1)
	}
}

func run() error {
	gen := flag.String("gen", "gnm:1000:2000", "graph source (see doc comment)")
	k := flag.Int("k", 2, "half cycle length: detect C_2k (or C_{2k+1} in odd mode)")
	mode := flag.String("mode", "classical",
		"classical | quantum | odd | oddquantum | bounded | boundedquantum | list | local | localthreshold | kball")
	seed := flag.Uint64("seed", 1, "master random seed")
	iterations := flag.Int("iterations", 0, "override coloring repetitions (0 = faithful)")
	flag.Parse()

	g, err := buildGraph(*gen, *seed)
	if err != nil {
		return err
	}
	fmt.Printf("graph: n=%d m=%d maxdeg=%d\n", g.NumNodes(), g.NumEdges(), g.MaxDegree())

	opts := []evencycle.Option{evencycle.WithSeed(*seed)}
	if *iterations > 0 {
		opts = append(opts, evencycle.WithIterations(*iterations))
	}

	switch *mode {
	case "classical":
		res, err := evencycle.Detect(g, *k, opts...)
		if err != nil {
			return err
		}
		printClassical(g, res)
	case "bounded":
		res, err := evencycle.DetectBounded(g, *k, opts...)
		if err != nil {
			return err
		}
		printClassical(g, res)
	case "odd":
		res, err := evencycle.DetectOdd(g, *k, opts...)
		if err != nil {
			return err
		}
		printClassical(g, res)
	case "list":
		cycles, err := evencycle.ListCycles(g, *k, opts...)
		if err != nil {
			return err
		}
		fmt.Printf("distinct C_%d copies found: %d\n", 2**k, len(cycles))
		for i, c := range cycles {
			fmt.Printf("  %3d: %v\n", i+1, c)
		}
	case "local":
		res, err := evencycle.DetectLocal(g, *k, opts...)
		if err != nil {
			return err
		}
		fmt.Printf("found=%v rounds=%d rejecting nodes=%v\n", res.Found, res.Rounds, res.Rejecting)
		if res.Found {
			fmt.Printf("witness: %v\n", res.Witness)
		}
	case "quantum":
		res, err := evencycle.DetectQuantum(g, *k, opts...)
		if err != nil {
			return err
		}
		printQuantum(g, res)
	case "oddquantum":
		res, err := evencycle.DetectOddQuantum(g, *k, opts...)
		if err != nil {
			return err
		}
		printQuantum(g, res)
	case "boundedquantum":
		res, err := evencycle.DetectBoundedQuantum(g, *k, opts...)
		if err != nil {
			return err
		}
		printQuantum(g, res)
	case "localthreshold":
		res, err := baseline.DetectLocalThreshold(g, *k, baseline.LocalThresholdOptions{
			Seed: *seed, Attempts: *iterations,
		})
		if err != nil {
			return err
		}
		fmt.Printf("found=%v attempts=%d rounds=%d congestion=%d\n",
			res.Found, res.AttemptsRun, res.Rounds, res.MaxCongestion)
		if res.Found {
			fmt.Printf("witness: %v\n", res.Witness)
		}
	case "kball":
		res, err := baseline.DetectKBall(g, *k, *seed, 0)
		if err != nil {
			return err
		}
		fmt.Printf("found=%v rounds=%d messages=%d maxBallEdges=%d\n",
			res.Found, res.Rounds, res.Messages, res.MaxBallEdges)
		if res.Found {
			fmt.Printf("witness: %v\n", res.Witness)
		}
	default:
		return fmt.Errorf("unknown mode %q", *mode)
	}
	return nil
}

func printClassical(g *evencycle.Graph, res *evencycle.Result) {
	fmt.Printf("found=%v rounds=%d messages=%d congestion=%d iterations=%d\n",
		res.Found, res.Rounds, res.Messages, res.MaxCongestion, res.Iterations)
	if res.Found {
		fmt.Printf("witness (C_%d): %v\n", res.FoundLen, res.Witness)
		if err := evencycle.VerifyCycle(g, res.Witness); err != nil {
			fmt.Printf("WITNESS INVALID: %v\n", err)
		} else {
			fmt.Println("witness verified against the input graph")
		}
	}
}

func printQuantum(g *evencycle.Graph, res *evencycle.QuantumResult) {
	fmt.Printf("found=%v quantumRounds=%.0f components=%d eps=%.3g\n",
		res.Found, res.QuantumRounds, res.Components, res.Eps)
	if res.Found {
		fmt.Printf("witness: %v\n", res.Witness)
		if err := evencycle.VerifyCycle(g, res.Witness); err != nil {
			fmt.Printf("WITNESS INVALID: %v\n", err)
		} else {
			fmt.Println("witness verified against the input graph")
		}
	}
}

func buildGraph(spec string, seed uint64) (*graph.Graph, error) {
	parts := strings.Split(spec, ":")
	atoi := func(i int) (int, error) {
		if i >= len(parts) {
			return 0, fmt.Errorf("generator %q: missing field %d", spec, i)
		}
		return strconv.Atoi(parts[i])
	}
	atof := func(i int) (float64, error) {
		if i >= len(parts) {
			return 0, fmt.Errorf("generator %q: missing field %d", spec, i)
		}
		return strconv.ParseFloat(parts[i], 64)
	}
	rng := graph.NewRand(seed)
	switch parts[0] {
	case "gnm":
		n, err := atoi(1)
		if err != nil {
			return nil, err
		}
		m, err := atoi(2)
		if err != nil {
			return nil, err
		}
		return graph.Gnm(n, m, rng), nil
	case "planted":
		n, err := atoi(1)
		if err != nil {
			return nil, err
		}
		l, err := atoi(2)
		if err != nil {
			return nil, err
		}
		avg, err := atof(3)
		if err != nil {
			return nil, err
		}
		g, _, err := graph.PlantedLight(n, l, avg, rng)
		return g, err
	case "heavy":
		n, err := atoi(1)
		if err != nil {
			return nil, err
		}
		l, err := atoi(2)
		if err != nil {
			return nil, err
		}
		hub, err := atoi(3)
		if err != nil {
			return nil, err
		}
		g, _, err := graph.PlantedHeavy(n, l, hub, 1.5, rng)
		return g, err
	case "highgirth":
		n, err := atoi(1)
		if err != nil {
			return nil, err
		}
		m, err := atoi(2)
		if err != nil {
			return nil, err
		}
		girth, err := atoi(3)
		if err != nil {
			return nil, err
		}
		return graph.HighGirth(n, m, girth, rng), nil
	case "pg":
		q, err := atoi(1)
		if err != nil {
			return nil, err
		}
		return graph.ProjectivePlaneIncidence(q)
	case "file":
		if len(parts) < 2 {
			return nil, fmt.Errorf("file generator needs a path")
		}
		f, err := os.Open(strings.Join(parts[1:], ":"))
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return graph.ReadEdgeList(f)
	default:
		return nil, fmt.Errorf("unknown generator %q", parts[0])
	}
}
