package evencycle

// Transcript-invariance pins for the sharded delivery pipeline, at the
// detector level: every detector of the repository must produce a
// bit-identical result fingerprint for every (Workers, Shards,
// ParallelThreshold) engine configuration — including thresholds of 1,
// which force the work-stealing handler pool and the sharded scatter
// onto every round. CI runs this file under -race, so the parallel
// paths are exercised with full instrumentation.

import (
	"fmt"
	"testing"

	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/deterministic"
	"repro/internal/graph"
	"repro/internal/lowprob"
	"repro/internal/quantum"
)

// engineCfgs spans serial, parallel-defaults, and forced-parallel with a
// shard count different from the worker count.
var engineCfgs = []struct {
	name                       string
	workers, shards, threshold int
}{
	{"serial", 1, 0, 0},
	{"w2", 2, 0, 1},
	{"w8s3", 8, 3, 1},
}

func fingerprintInvariant(t *testing.T, run func(workers, shards, threshold int) (string, error)) {
	t.Helper()
	base, err := run(engineCfgs[0].workers, engineCfgs[0].shards, engineCfgs[0].threshold)
	if err != nil {
		t.Fatalf("%s: %v", engineCfgs[0].name, err)
	}
	for _, cfg := range engineCfgs[1:] {
		got, err := run(cfg.workers, cfg.shards, cfg.threshold)
		if err != nil {
			t.Fatalf("%s: %v", cfg.name, err)
		}
		if got != base {
			t.Fatalf("transcript fingerprint diverges at %s:\nserial: %s\n%s: %s", cfg.name, base, cfg.name, got)
		}
	}
}

func plantedInstance(t *testing.T, n, L int) *graph.Graph {
	t.Helper()
	host := graph.Gnm(n, 2*n, graph.NewRand(3))
	g, _, err := graph.PlantCycle(host, L, graph.NewRand(4))
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestDetectorTranscriptsInvariantAcrossDelivery(t *testing.T) {
	g := plantedInstance(t, 600, 4)
	gOdd := plantedInstance(t, 400, 5)

	t.Run("even-batch", func(t *testing.T) {
		fingerprintInvariant(t, func(w, s, p int) (string, error) {
			res, err := core.DetectEvenCycle(g, 2, core.Options{
				Seed: 42, MaxIterations: 4, KeepGoing: true,
				Workers: w, Shards: s, ParallelThreshold: p,
			})
			if err != nil {
				return "", err
			}
			return fmt.Sprintf("%+v", res), nil
		})
	})

	t.Run("even-pipelined", func(t *testing.T) {
		fingerprintInvariant(t, func(w, s, p int) (string, error) {
			res, err := core.DetectEvenCycle(g, 2, core.Options{
				Seed: 42, MaxIterations: 4, KeepGoing: true, Pipelined: true,
				Workers: w, Shards: s, ParallelThreshold: p,
			})
			if err != nil {
				return "", err
			}
			return fmt.Sprintf("%+v", res), nil
		})
	})

	// Bounded detection runs color-BFS in the merged DetectSkip mode;
	// with Pipelined it covers the DetectSkip+Pipelined combination.
	t.Run("bounded-skip-batch", func(t *testing.T) {
		fingerprintInvariant(t, func(w, s, p int) (string, error) {
			res, err := core.DetectBoundedCycle(g, 2, core.Options{
				Seed: 7, MaxIterations: 3, KeepGoing: true,
				Workers: w, Shards: s, ParallelThreshold: p,
			})
			if err != nil {
				return "", err
			}
			return fmt.Sprintf("%+v", res), nil
		})
	})

	t.Run("bounded-skip-pipelined", func(t *testing.T) {
		fingerprintInvariant(t, func(w, s, p int) (string, error) {
			res, err := core.DetectBoundedCycle(g, 2, core.Options{
				Seed: 7, MaxIterations: 3, KeepGoing: true, Pipelined: true,
				Workers: w, Shards: s, ParallelThreshold: p,
			})
			if err != nil {
				return "", err
			}
			return fmt.Sprintf("%+v", res), nil
		})
	})

	t.Run("listing", func(t *testing.T) {
		fingerprintInvariant(t, func(w, s, p int) (string, error) {
			res, err := core.ListEvenCycles(g, 2, core.Options{
				Seed: 9, MaxIterations: 3, KeepGoing: true,
				Workers: w, Shards: s, ParallelThreshold: p,
			})
			if err != nil {
				return "", err
			}
			return fmt.Sprintf("%+v", res), nil
		})
	})

	t.Run("lowprob-even", func(t *testing.T) {
		fingerprintInvariant(t, func(w, s, p int) (string, error) {
			res, err := lowprob.Detect(g, 2, core.Options{
				Seed: 11, MaxIterations: 40, KeepGoing: true,
				Workers: w, Shards: s, ParallelThreshold: p,
			})
			if err != nil {
				return "", err
			}
			return fmt.Sprintf("%+v", res), nil
		})
	})

	t.Run("lowprob-odd", func(t *testing.T) {
		fingerprintInvariant(t, func(w, s, p int) (string, error) {
			res, err := lowprob.DetectOdd(gOdd, 2, lowprob.OddOptions{
				Seed: 13, MaxIterations: 40, KeepGoing: true,
				Workers: w, Shards: s, ParallelThreshold: p,
			})
			if err != nil {
				return "", err
			}
			return fmt.Sprintf("%+v", res), nil
		})
	})

	t.Run("baseline-threshold", func(t *testing.T) {
		fingerprintInvariant(t, func(w, s, p int) (string, error) {
			res, err := baseline.DetectLocalThreshold(g, 2, baseline.LocalThresholdOptions{
				Seed: 17, Attempts: 20, KeepGoing: true,
				Workers: w, Shards: s, ParallelThreshold: p,
			})
			if err != nil {
				return "", err
			}
			return fmt.Sprintf("%+v", res), nil
		})
	})

	// DetectKBall exposes only the worker knob; shard counts follow the
	// worker count through the engine default.
	t.Run("baseline-kball", func(t *testing.T) {
		base := ""
		for i, w := range []int{1, 2, 8} {
			res, err := baseline.DetectKBall(g, 2, 19, w)
			if err != nil {
				t.Fatal(err)
			}
			fp := fmt.Sprintf("%+v", res)
			if i == 0 {
				base = fp
			} else if fp != base {
				t.Fatalf("kball diverges at workers=%d", w)
			}
		}
	})

	// The deterministic broadcast detector must be invariant not only
	// across the delivery configurations but across master seeds: it
	// draws no randomness, so its transcript is a pure function of the
	// graph. The seed is folded into the sweep to pin exactly that.
	t.Run("deterministic", func(t *testing.T) {
		seeds := []uint64{29, 31337}
		fingerprintInvariant(t, func(w, s, p int) (string, error) {
			res, err := deterministic.Detect(g, 2, deterministic.Options{
				Seed: seeds[(w+s+p)%2], Workers: w, Shards: s, ParallelThreshold: p,
			})
			if err != nil {
				return "", err
			}
			return fmt.Sprintf("%+v", res), nil
		})
	})

	t.Run("quantum-even", func(t *testing.T) {
		fingerprintInvariant(t, func(w, s, p int) (string, error) {
			res, err := quantum.DetectEvenCycle(g, 2, quantum.Options{
				Seed: 23, MaxSims: 6, AttemptIterations: 2,
				Workers: w, Shards: s, ParallelThreshold: p,
			})
			if err != nil {
				return "", err
			}
			return fmt.Sprintf("%+v", res), nil
		})
	})
}
