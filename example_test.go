package evencycle_test

import (
	"fmt"

	evencycle "repro"
)

// ExampleDetect decides C₄-freeness on a small graph and prints the
// verified witness.
func ExampleDetect() {
	g := evencycle.NewGraph(6, [][2]evencycle.NodeID{
		{0, 1}, {1, 2}, {2, 3}, {3, 0}, // a C₄
		{3, 4}, {4, 5},
	})
	res, err := evencycle.Detect(g, 2, evencycle.WithSeed(7))
	if err != nil {
		panic(err)
	}
	fmt.Println(res.Found, len(res.Witness))
	fmt.Println(evencycle.VerifyCycle(g, res.Witness))
	// Output:
	// true 4
	// <nil>
}

// ExampleListCycles lists every distinct 4-cycle of K_{2,3}.
func ExampleListCycles() {
	g := evencycle.NewGraph(5, [][2]evencycle.NodeID{
		{0, 2}, {0, 3}, {0, 4},
		{1, 2}, {1, 3}, {1, 4},
	})
	cycles, err := evencycle.ListCycles(g, 2, evencycle.WithSeed(4))
	if err != nil {
		panic(err)
	}
	fmt.Println(len(cycles))
	// Output:
	// 3
}

// ExampleDetectDeterministic runs the deterministic broadcast-CONGEST
// detector: no randomness at all, so the result is a pure function of
// the graph — the seed changes nothing.
func ExampleDetectDeterministic() {
	g := evencycle.NewGraph(6, [][2]evencycle.NodeID{
		{0, 1}, {1, 2}, {2, 3}, {3, 0}, // a C₄
		{3, 4}, {4, 5},
	})
	a, err := evencycle.DetectDeterministic(g, 2)
	if err != nil {
		panic(err)
	}
	b, err := evencycle.DetectDeterministic(g, 2, evencycle.WithSeed(12345))
	if err != nil {
		panic(err)
	}
	fmt.Println(a.Found, a.FoundLen, evencycle.VerifyCycle(g, a.Witness))
	fmt.Println(fmt.Sprintf("%+v", a) == fmt.Sprintf("%+v", b))
	// Output:
	// true 4 <nil>
	// true
}

// ExampleDetectBounded decides F₄-freeness (any cycle of length ≤ 4):
// the shortest cycle here is a triangle, which the merged schedule finds.
func ExampleDetectBounded() {
	g := evencycle.NewGraph(5, [][2]evencycle.NodeID{
		{0, 1}, {1, 2}, {2, 0}, // a C₃
		{2, 3}, {3, 4},
	})
	res, err := evencycle.DetectBounded(g, 2, evencycle.WithSeed(1))
	if err != nil {
		panic(err)
	}
	fmt.Println(res.Found, res.FoundLen)
	// Output:
	// true 3
}

// ExampleDetectOdd decides C₅-freeness with the Section 3.4 randomized
// base algorithm.
func ExampleDetectOdd() {
	g := evencycle.NewGraph(6, [][2]evencycle.NodeID{
		{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 0}, // a C₅
		{4, 5},
	})
	res, err := evencycle.DetectOdd(g, 2, evencycle.WithSeed(2))
	if err != nil {
		panic(err)
	}
	fmt.Println(res.Found, res.FoundLen, evencycle.VerifyCycle(g, res.Witness))
	// Output:
	// true 5 <nil>
}

// ExampleDetectLocal upgrades detection to the Section 1.2 local output:
// exactly the members of the discovered cycle reject.
func ExampleDetectLocal() {
	g := evencycle.NewGraph(6, [][2]evencycle.NodeID{
		{0, 1}, {1, 2}, {2, 3}, {3, 0}, // a C₄
		{3, 4}, {4, 5},
	})
	res, err := evencycle.DetectLocal(g, 2, evencycle.WithSeed(7))
	if err != nil {
		panic(err)
	}
	fmt.Println(res.Found, res.Rejecting)
	// Output:
	// true [0 1 2 3]
}

// ExampleDetectQuantum runs the Theorem 2 pipeline on the quantum round
// ledger; the verdict and the charged ledger are deterministic for a
// fixed seed.
func ExampleDetectQuantum() {
	g := evencycle.NewGraph(5, [][2]evencycle.NodeID{
		{0, 2}, {0, 3}, {0, 4},
		{1, 2}, {1, 3}, {1, 4}, // K_{2,3}: three C₄ copies
	})
	res, err := evencycle.DetectQuantum(g, 2, evencycle.WithSeed(3))
	if err != nil {
		panic(err)
	}
	fmt.Println(res.Found, evencycle.VerifyCycle(g, res.Witness))
	// Output:
	// true <nil>
}

// ExampleDetectOddQuantum decides C₅-freeness in Θ̃(√n) charged quantum
// rounds.
func ExampleDetectOddQuantum() {
	g := evencycle.NewGraph(5, [][2]evencycle.NodeID{
		{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 0}, // a C₅
	})
	res, err := evencycle.DetectOddQuantum(g, 2, evencycle.WithSeed(5))
	if err != nil {
		panic(err)
	}
	fmt.Println(res.Found, evencycle.VerifyCycle(g, res.Witness))
	// Output:
	// true <nil>
}

// ExampleDetectBoundedQuantum decides F₄-freeness on the quantum ledger.
func ExampleDetectBoundedQuantum() {
	g := evencycle.NewGraph(5, [][2]evencycle.NodeID{
		{0, 1}, {1, 2}, {2, 0}, // a C₃
		{2, 3}, {3, 4},
	})
	res, err := evencycle.DetectBoundedQuantum(g, 2, evencycle.WithSeed(6))
	if err != nil {
		panic(err)
	}
	fmt.Println(res.Found, len(res.Witness))
	// Output:
	// true 3
}
