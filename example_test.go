package evencycle_test

import (
	"fmt"

	evencycle "repro"
)

// ExampleDetect decides C₄-freeness on a small graph and prints the
// verified witness.
func ExampleDetect() {
	g := evencycle.NewGraph(6, [][2]evencycle.NodeID{
		{0, 1}, {1, 2}, {2, 3}, {3, 0}, // a C₄
		{3, 4}, {4, 5},
	})
	res, err := evencycle.Detect(g, 2, evencycle.WithSeed(7))
	if err != nil {
		panic(err)
	}
	fmt.Println(res.Found, len(res.Witness))
	fmt.Println(evencycle.VerifyCycle(g, res.Witness))
	// Output:
	// true 4
	// <nil>
}

// ExampleListCycles lists every distinct 4-cycle of K_{2,3}.
func ExampleListCycles() {
	g := evencycle.NewGraph(5, [][2]evencycle.NodeID{
		{0, 2}, {0, 3}, {0, 4},
		{1, 2}, {1, 3}, {1, 4},
	})
	cycles, err := evencycle.ListCycles(g, 2, evencycle.WithSeed(4))
	if err != nil {
		panic(err)
	}
	fmt.Println(len(cycles))
	// Output:
	// 3
}
