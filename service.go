package evencycle

import (
	"context"
	"fmt"
	"slices"
	"time"

	"repro/internal/service"
)

// Service is a long-running, concurrent detection front end: requests are
// admitted through a bounded FIFO worker pool, concurrent identical
// requests coalesce into one computation, and verdicts are cached in an
// LRU keyed by the graph's stable fingerprint plus the request
// parameters. Deterministic-mode verdicts are pure functions of the graph
// and cache forever; randomized verdicts record the trial budget they
// exhausted, so a repeat query within budget is a pure hit and a larger
// budget amplifies the entry (runs only the missing trials) instead of
// recomputing. Construct with NewService; safe for concurrent use. See
// docs/ARCHITECTURE.md ("Service layer") and cmd/cycleserved for the
// HTTP surface.
type Service struct {
	svc        *service.Service
	iterations int
}

// ServiceOption tunes a Service at construction.
type ServiceOption func(*serviceConfig)

type serviceConfig struct {
	cfg service.Config
	// iterations is the default trial budget applied when a detection call
	// does not carry WithIterations.
	iterations int
}

// WithServiceSlots bounds the number of detections computing at once (the
// worker pool size; default GOMAXPROCS). Queued requests are admitted
// FIFO.
func WithServiceSlots(slots int) ServiceOption {
	return func(c *serviceConfig) { c.cfg.Slots = slots }
}

// WithServiceQueue bounds the admission queue; requests beyond it fail
// fast with ErrServiceOverloaded. Default 1024; negative is unbounded.
func WithServiceQueue(depth int) ServiceOption {
	return func(c *serviceConfig) { c.cfg.MaxQueue = depth }
}

// WithServiceCache sets the verdict-cache capacity in entries (default
// 1024).
func WithServiceCache(entries int) ServiceOption {
	return func(c *serviceConfig) { c.cfg.CacheEntries = entries }
}

// WithServiceParallel sets the per-request trial parallelism (matching
// WithParallel on the direct detection calls: 0/1 sequential, negative
// GOMAXPROCS).
func WithServiceParallel(p int) ServiceOption {
	return func(c *serviceConfig) { c.cfg.Parallel = p }
}

// WithServiceWorkers sets the engine goroutine pool per session (matching
// WithWorkers).
func WithServiceWorkers(w int) ServiceOption {
	return func(c *serviceConfig) { c.cfg.Workers = w }
}

// WithServiceBatch caps the fused miss-path batch: up to size compatible
// cache misses (same algo, k and knobs — different graphs) share one
// engine session on the disjoint union of their graphs. Per-graph
// verdicts, witnesses and costs are identical to solo computation; only
// the session count drops. Default 8; 1 disables batching.
func WithServiceBatch(size int) ServiceOption {
	return func(c *serviceConfig) { c.cfg.BatchSize = size }
}

// WithServiceBatchLinger sets how long an under-full batch waits for
// joiners before dispatching (the extra latency a lone miss pays to
// offer itself for fusion). Default 2ms; negative dispatches
// immediately.
func WithServiceBatchLinger(d time.Duration) ServiceOption {
	return func(c *serviceConfig) { c.cfg.BatchLinger = d }
}

// WithServiceIterations sets the default trial budget for randomized
// detections that do not carry an explicit WithIterations. Service
// requests must state a finite budget (the faithful counts are
// astronomically large for k ≥ 3); the default is 32.
func WithServiceIterations(iters int) ServiceOption {
	return func(c *serviceConfig) { c.iterations = iters }
}

// ErrServiceOverloaded is returned when the service's admission queue is
// full.
var ErrServiceOverloaded = service.ErrOverloaded

// ServiceStats is a snapshot of the service counters: the request total,
// its partition into serve paths (hits, coalesced, amplified, computed),
// error counts, and the engine-session count that cache hits save.
type ServiceStats = service.Stats

// ServiceSource identifies how a request was served: "cache",
// "coalesced", "amplified" or "computed".
type ServiceSource = service.Source

// NewService constructs the detection service.
func NewService(opts ...ServiceOption) *Service {
	c := serviceConfig{iterations: 32}
	for _, o := range opts {
		o(&c)
	}
	return &Service{svc: service.New(c.cfg), iterations: c.iterations}
}

// request maps facade options onto a service request.
func (s *Service) request(g *Graph, algo service.Algo, k int, opts []Option) *service.Request {
	c := buildConfig(opts)
	iters := c.iterations
	if iters <= 0 {
		iters = s.iterations
	}
	return &service.Request{
		Graph:      g,
		Algo:       algo,
		K:          k,
		Seed:       c.seed,
		Iterations: iters,
		Threshold:  c.threshold,
		Eps:        c.eps,
		Pipelined:  c.pipelined,
	}
}

// do executes the request and converts the response. The witness is
// cloned: the service's Response (and its witness slice) is shared by
// every cache hit on the key, while the direct Detect path hands each
// caller a fresh slice — a caller mutating Result.Witness must not
// corrupt the cache entry behind everyone else's hits.
func (s *Service) do(ctx context.Context, req *service.Request) (*Result, ServiceSource, error) {
	resp, src, err := s.svc.Do(ctx, req)
	if err != nil {
		return nil, src, fmt.Errorf("evencycle: %w", err)
	}
	return &Result{
		Found:         resp.Found,
		Witness:       slices.Clone(resp.Witness),
		FoundLen:      resp.FoundLen,
		Rounds:        resp.Rounds,
		Messages:      resp.Messages,
		Bits:          resp.Bits,
		MaxCongestion: resp.MaxCongestion,
		Overflowed:    resp.Overflowed,
		Iterations:    resp.Iterations,
	}, src, nil
}

// Detect serves a C_{2k}-freeness decision (Algorithm 1) through the
// cache and worker pool. The options mirror the package-level Detect;
// WithIterations sets the trial budget recorded in the cache entry
// (default: the service's WithServiceIterations). The returned
// ServiceSource says whether the verdict was computed, amplified, or
// served from cache.
func (s *Service) Detect(ctx context.Context, g *Graph, k int, opts ...Option) (*Result, ServiceSource, error) {
	return s.do(ctx, s.request(g, service.AlgoEven, k, opts))
}

// DetectBounded serves an F_{2k}-freeness decision (any cycle of length
// ≤ 2k) through the cache and worker pool.
func (s *Service) DetectBounded(ctx context.Context, g *Graph, k int, opts ...Option) (*Result, ServiceSource, error) {
	return s.do(ctx, s.request(g, service.AlgoBounded, k, opts))
}

// DetectOdd serves a C_{2k+1}-freeness decision through the cache and
// worker pool.
func (s *Service) DetectOdd(ctx context.Context, g *Graph, k int, opts ...Option) (*Result, ServiceSource, error) {
	return s.do(ctx, s.request(g, service.AlgoOdd, k, opts))
}

// DetectDeterministic serves the deterministic broadcast-CONGEST verdict
// through the cache: since the verdict is a pure function of the graph
// (and k, τ), entries never expire and repeated calls are byte-identical
// cache hits regardless of seed or parallelism options.
func (s *Service) DetectDeterministic(ctx context.Context, g *Graph, k int, opts ...Option) (*Result, ServiceSource, error) {
	return s.do(ctx, s.request(g, service.AlgoDet, k, opts))
}

// Stats snapshots the service counters.
func (s *Service) Stats() ServiceStats { return s.svc.Stats() }

// RegisterGraph adds a named graph to the service's corpus registry (used
// by the HTTP server so requests can reference instances by name instead
// of shipping edge lists).
func (s *Service) RegisterGraph(name string, g *Graph) error {
	return s.svc.RegisterGraph(name, g)
}

// NamedGraph resolves a corpus name registered with RegisterGraph.
func (s *Service) NamedGraph(name string) (*Graph, bool) { return s.svc.NamedGraph(name) }

// GraphNames lists the registered corpus names in sorted order.
func (s *Service) GraphNames() []string { return s.svc.GraphNames() }

// Fingerprint returns the stable 128-bit structural hash of g — the
// cache key component identifying the graph. It is invariant under edge
// insertion order and identifies the graph across processes and runs.
func Fingerprint(g *Graph) string { return g.Fingerprint().String() }
