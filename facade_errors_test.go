package evencycle_test

// Table-driven coverage of the facade's error paths: malformed edge lists
// through ReadGraph, invalid k / ε arguments through every Detect* entry
// point, and Overflowed propagation through every detector that exposes
// threshold pruning.

import (
	"strings"
	"testing"

	evencycle "repro"
)

func TestReadGraphMalformed(t *testing.T) {
	cases := []struct {
		name  string
		input string
		want  string
	}{
		{"empty", "", "empty input"},
		{"comments-only", "# nothing\n\n# here\n", "empty input"},
		{"one-field", "zzz\n", "want two fields"},
		{"three-fields", "1 2 3\n", "want two fields"},
		{"non-integer-header", "a b\n", "invalid syntax"},
		{"non-integer-edge", "4 1\nx y\n", "invalid syntax"},
		{"negative-header", "-5 0\n", "negative value"},
		{"negative-endpoint", "4 1\n0 -2\n", "negative value"},
		{"huge-header", "4294967295 0\n", "exceeds"},
		{"giant-alloc-header", "2147483646 0\n", "exceeds"},
		{"huge-endpoint", "4 1\n0 4294967295\n", "out of range"},
		{"three-fields-edge", "4 1\n0 1 2\n", "want two fields"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			g, err := evencycle.ReadGraph(strings.NewReader(tc.input))
			if err == nil {
				t.Fatalf("parsed malformed input into n=%d m=%d", g.NumNodes(), g.NumEdges())
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
	// A header lying about a gigantic edge count must not pre-allocate or
	// panic (the count is a hint; the clamp keeps it a hint).
	g, err := evencycle.ReadGraph(strings.NewReader("1 4611686018427387904\n"))
	if err != nil || g.NumNodes() != 1 || g.NumEdges() != 0 {
		t.Fatalf("huge edge-count header: g=%v err=%v", g, err)
	}
	// Sanity: the hardening did not break valid input.
	g, err = evencycle.ReadGraph(strings.NewReader("3 3\n0 1\n1 2\n2 0\n"))
	if err != nil || g.NumNodes() != 3 || g.NumEdges() != 3 {
		t.Fatalf("valid input: g=%v err=%v", g, err)
	}
}

func TestDetectInvalidArguments(t *testing.T) {
	g := evencycle.RandomGraph(50, 100, 1)
	type entry struct {
		name string
		run  func(opts ...evencycle.Option) error
	}
	res := func(_ *evencycle.Result, err error) error { return err }
	qres := func(_ *evencycle.QuantumResult, err error) error { return err }
	entries := []entry{
		{"Detect", func(o ...evencycle.Option) error { return res(evencycle.Detect(g, 1, o...)) }},
		{"DetectBounded", func(o ...evencycle.Option) error { return res(evencycle.DetectBounded(g, 1, o...)) }},
		{"DetectLocal", func(o ...evencycle.Option) error {
			_, err := evencycle.DetectLocal(g, 1, o...)
			return err
		}},
		{"ListCycles", func(o ...evencycle.Option) error {
			_, err := evencycle.ListCycles(g, 1, o...)
			return err
		}},
		{"DetectOdd", func(o ...evencycle.Option) error { return res(evencycle.DetectOdd(g, 0, o...)) }},
		{"DetectDeterministic", func(o ...evencycle.Option) error {
			return res(evencycle.DetectDeterministic(g, 1, o...))
		}},
		{"DetectQuantum", func(o ...evencycle.Option) error { return qres(evencycle.DetectQuantum(g, 1, o...)) }},
		{"DetectOddQuantum", func(o ...evencycle.Option) error { return qres(evencycle.DetectOddQuantum(g, 0, o...)) }},
		{"DetectBoundedQuantum", func(o ...evencycle.Option) error {
			return qres(evencycle.DetectBoundedQuantum(g, 1, o...))
		}},
	}
	for _, e := range entries {
		t.Run(e.name+"/k-too-small", func(t *testing.T) {
			err := e.run()
			if err == nil {
				t.Fatal("undersized k accepted")
			}
			if !strings.Contains(err.Error(), "k") {
				t.Fatalf("error %q does not mention k", err)
			}
		})
	}
	// Invalid ε through the classical entry points that honor WithError.
	for _, eps := range []float64{-0.5, 1, 2} {
		if _, err := evencycle.Detect(g, 2, evencycle.WithError(eps)); err == nil {
			t.Fatalf("ε=%v accepted", eps)
		} else if !strings.Contains(err.Error(), "ε") {
			t.Fatalf("ε=%v error %q does not mention ε", eps, err)
		}
	}
}

// TestOverflowPropagation plants a cycle in a dense-enough instance, runs
// every threshold-pruning detector with τ=1 (every forwarder overflows
// immediately), and requires Overflowed to surface through the facade
// result — with one-sidedness intact: an overflow can cost the
// detection, never fabricate one.
func TestOverflowPropagation(t *testing.T) {
	host := evencycle.RandomGraph(200, 600, 8)
	g, _, err := evencycle.WithPlantedCycle(host, 4, 9)
	if err != nil {
		t.Fatal(err)
	}
	opts := []evencycle.Option{
		evencycle.WithThreshold(1),
		evencycle.WithSeed(5),
		evencycle.WithIterations(4),
	}
	check := func(name string, res *evencycle.Result, err error) {
		t.Helper()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !res.Overflowed {
			t.Errorf("%s: τ=1 run did not report Overflowed", name)
		}
		if res.Found {
			if err := evencycle.VerifyCycle(g, res.Witness); err != nil {
				t.Errorf("%s: overflowed run fabricated witness: %v", name, err)
			}
		}
	}
	res, err := evencycle.Detect(g, 2, opts...)
	check("Detect", res, err)
	res, err = evencycle.DetectBounded(g, 2, opts...)
	check("DetectBounded", res, err)
	local, err := evencycle.DetectLocal(g, 2, opts...)
	if err != nil {
		t.Fatal(err)
	}
	check("DetectLocal", &local.Result, nil)
	res, err = evencycle.DetectDeterministic(g, 2, evencycle.WithThreshold(1))
	check("DetectDeterministic", res, err)

	// And the complement: on a sparse instance the faithful threshold does
	// not overflow, and the flag stays false.
	sparseHost := evencycle.RandomGraph(200, 150, 8)
	sparse, _, err := evencycle.WithPlantedCycle(sparseHost, 4, 9)
	if err != nil {
		t.Fatal(err)
	}
	clean, err := evencycle.DetectDeterministic(sparse, 2)
	if err != nil {
		t.Fatal(err)
	}
	if clean.Overflowed {
		t.Error("faithful-threshold deterministic run reported Overflowed on a sparse instance")
	}
}
