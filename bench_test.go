package evencycle

// One benchmark per reproduced table/figure (the per-experiment index in
// each experiment maps to a Table 1 row or to Figure 1), plus
// micro-benchmarks of the load-bearing substrates. Benchmarks run the
// quick sweeps; the full sweeps recorded in EXPERIMENTS.md are produced by
// cmd/benchtab.

import (
	"testing"

	"repro/internal/bench"
	"repro/internal/congest"
	"repro/internal/core"
	"repro/internal/decomp"
	"repro/internal/deterministic"
	"repro/internal/graph"
	"repro/internal/lowprob"
	"repro/internal/quantum"
)

func runExperiment(b *testing.B, id string) {
	b.Helper()
	exp, err := bench.ByID(id)
	if err != nil {
		b.Fatal(err)
	}
	cfg := bench.Config{Quick: true, Seed: 42}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tab, err := exp.Run(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if len(tab.Rows) == 0 {
			b.Fatalf("%s produced no rows", id)
		}
	}
}

// Table 1 row "this paper, C_2k, O(n^{1-1/k}) rand." (Theorem 1).
func BenchmarkE1ClassicalEvenCycle(b *testing.B) { runExperiment(b, "E1") }

// Table 1 rows [16] vs "this paper" for k ≥ 6.
func BenchmarkE2EdenCrossover(b *testing.B) { runExperiment(b, "E2") }

// Table 1 row "this paper, C_2k, Õ(n^{1/2-1/2k}) quant." (Theorem 2).
func BenchmarkE3QuantumEvenCycle(b *testing.B) { runExperiment(b, "E3") }

// Section 3.2.1 congestion/success trade-off.
func BenchmarkE4CongestionTradeoff(b *testing.B) { runExperiment(b, "E4") }

// Table 1 row "this paper, C_2k+1, Θ̃(√n) quant." (Section 3.4).
func BenchmarkE5QuantumOddCycle(b *testing.B) { runExperiment(b, "E5") }

// Table 1 rows [33] vs "this paper" for bounded-length detection.
func BenchmarkE6BoundedLength(b *testing.B) { runExperiment(b, "E6") }

// Table 1 lower-bound rows: the Section 3.3 gadget families.
func BenchmarkE7GadgetHardness(b *testing.B) { runExperiment(b, "E7") }

// Theorem 3 quadratic amplification separation.
func BenchmarkE8Amplification(b *testing.B) { runExperiment(b, "E8") }

// Figure 1 / Density Lemma extraction statistics.
func BenchmarkE9DensityExtraction(b *testing.B) { runExperiment(b, "E9") }

// Theorem 1 error guarantees at faithful parameters.
func BenchmarkE10ErrorCalibration(b *testing.B) { runExperiment(b, "E10") }

// Deterministic broadcast CONGEST vs randomized detection.
func BenchmarkD1Deterministic(b *testing.B) { runExperiment(b, "D1") }

// Ablation A1: batch vs pipelined scheduling.
func BenchmarkA1BatchVsPipelined(b *testing.B) { runExperiment(b, "A1") }

// Ablation A2: global vs constant-local threshold on trap instances.
func BenchmarkA2ThresholdTrap(b *testing.B) { runExperiment(b, "A2") }

// Ablation A4: with vs without diameter reduction.
func BenchmarkA4DiameterReduction(b *testing.B) { runExperiment(b, "A4") }

// ---------------------------------------------------------------------------
// Micro-benchmarks of the substrates.

// BenchmarkEngineFlood measures raw simulator throughput: a full flood on
// a 10k-node sparse graph.
func BenchmarkEngineFlood(b *testing.B) {
	g := graph.Gnm(10000, 30000, graph.NewRand(1))
	net := congest.NewNetwork(g, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tree, _, err := buildTree(net)
		if err != nil {
			b.Fatal(err)
		}
		if tree.MaxDepth() == 0 {
			b.Fatal("flood did not spread")
		}
	}
}

func buildTree(net *congest.Network) (*treeProbe, *congest.Report, error) {
	t := &treeProbe{}
	rep, err := congest.NewEngine(net).Run(t)
	return t, rep, err
}

// treeProbe is a minimal BFS flood used by BenchmarkEngineFlood.
type treeProbe struct {
	depth []int32
}

func (t *treeProbe) Init(rt *congest.Runtime) {
	t.depth = make([]int32, rt.N())
	for i := range t.depth {
		t.depth[i] = -1
	}
	t.depth[0] = 0
	rt.WakeAt(0, 0)
}

func (t *treeProbe) HandleRound(rt *congest.Runtime, u graph.NodeID, r int, inbox []congest.Message) {
	if t.depth[u] >= 0 && r > int(t.depth[u]) {
		return
	}
	if t.depth[u] < 0 {
		t.depth[u] = int32(r)
	}
	for _, v := range rt.Neighbors(u) {
		rt.Send(u, v, 1, 0, 0)
	}
}

func (t *treeProbe) MaxDepth() int32 {
	best := int32(0)
	for _, d := range t.depth {
		if d > best {
			best = d
		}
	}
	return best
}

// BenchmarkDetectEvenCycle is the end-to-end detector benchmark: a full
// Algorithm 1 run (set construction + K colorings × three color-BFS calls)
// on a planted instance. It is the headline number of the perf trajectory
// recorded in BENCH_*.json; the scenarios are bench.DetectScenarios, the
// same pinned table `cmd/benchtab -json` measures.
func BenchmarkDetectEvenCycle(b *testing.B) {
	for _, sc := range bench.DetectScenarios {
		b.Run(sc.Name, func(b *testing.B) {
			g, err := sc.Graph()
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := sc.Run(g); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkDetectDeterministic measures the deterministic broadcast
// detector end to end on the same pinned instance as
// BenchmarkDetectEvenCycle's n=2000/k=2 scenario (one seedless broadcast
// session: all-source walk relay + witness reconstruction). It mirrors
// the det-broadcast entry of the perf-trajectory JSON.
func BenchmarkDetectDeterministic(b *testing.B) {
	g, err := bench.DetectScenarios[0].Graph()
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := deterministic.Detect(g, 2, deterministic.Options{})
		if err != nil {
			b.Fatal(err)
		}
		if !res.Found {
			b.Fatal("planted cycle missed by the deterministic detector")
		}
	}
}

// BenchmarkColorBFS measures one full color-BFS call (the paper's inner
// loop) on a planted instance.
func BenchmarkColorBFS(b *testing.B) {
	g, cyc, err := graph.PlantedLight(5000, 4, 2.0, graph.NewRand(2))
	if err != nil {
		b.Fatal(err)
	}
	n := g.NumNodes()
	colors := make([]int8, n)
	for i, v := range cyc {
		colors[v] = int8(i)
	}
	all := make([]bool, n)
	for i := range all {
		all[i] = true
	}
	net := congest.NewNetwork(g, 3)
	eng := congest.NewEngine(net)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bfs, err := core.NewColorBFS(n, core.ColorBFSSpec{
			L: 4, Color: colors, InH: all, InX: all, Threshold: n, SeedProb: 1,
		})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := bfs.Run(eng); err != nil {
			b.Fatal(err)
		}
		if len(bfs.Detections()) == 0 {
			b.Fatal("planted cycle missed under perfect coloring")
		}
	}
}

// BenchmarkLowProbAttempt measures one Lemma 12 attempt (the quantum
// pipeline's Setup body).
func BenchmarkLowProbAttempt(b *testing.B) {
	g, _, err := graph.PlantedLight(5000, 4, 2.0, graph.NewRand(4))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := lowprob.Detect(g, 2, core.Options{Seed: uint64(i), MaxIterations: 1})
		if err != nil {
			b.Fatal(err)
		}
		_ = res
	}
}

// BenchmarkDecomposition measures the Lemma 10 construction.
func BenchmarkDecomposition(b *testing.B) {
	g := graph.Gnm(5000, 12000, graph.NewRand(5))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dec, err := decomp.Decompose(g, 6, uint64(i))
		if err != nil {
			b.Fatal(err)
		}
		_ = dec
	}
}

// BenchmarkDensityAnalysis measures the Lemma 4 sparsification+extraction.
func BenchmarkDensityAnalysis(b *testing.B) {
	bld := graph.NewBuilder(0)
	var layer []int8
	add := func(l int8) graph.NodeID {
		id := graph.NodeID(len(layer))
		layer = append(layer, l)
		bld.AddNodes(len(layer))
		return id
	}
	var sNodes []graph.NodeID
	for i := 0; i < 16; i++ {
		sNodes = append(sNodes, add(core.LayerS))
	}
	var wNodes []graph.NodeID
	for i := 0; i < 400; i++ {
		w := add(core.LayerW0)
		wNodes = append(wNodes, w)
		for _, s := range sNodes {
			bld.AddEdge(w, s)
		}
	}
	v1 := add(1)
	for _, w := range wNodes {
		bld.AddEdge(v1, w)
	}
	add(2)
	bld.AddEdge(graph.NodeID(len(layer)-1), v1)
	in := &core.DensityInstance{G: bld.Build(), K: 4, Layer: layer}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := core.AnalyzeDensity(in)
		if err != nil {
			b.Fatal(err)
		}
		if res.Violation < 0 {
			b.Fatal("expected violation")
		}
	}
}

// BenchmarkAmplification measures the Theorem 3 wrapper overhead.
func BenchmarkAmplification(b *testing.B) {
	attempt := func(i int) (bool, []graph.NodeID, int, error) {
		return i == 3, []graph.NodeID{0, 1, 2, 3}, 5, nil
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := quantum.AmplifyMonteCarlo(attempt, quantum.AmplifyOptions{
			Eps: 0.01, Delta: 0.001, Diameter: 4, MaxSims: 10,
		})
		if err != nil {
			b.Fatal(err)
		}
		if !res.Found {
			b.Fatal("amplification missed the planted success")
		}
	}
}

// BenchmarkWitnessExtraction measures parent-pointer walk + verification.
func BenchmarkWitnessExtraction(b *testing.B) {
	g := graph.Cycle(12)
	n := g.NumNodes()
	colors := make([]int8, n)
	for i := 0; i < 12; i++ {
		colors[i] = int8(i)
	}
	all := make([]bool, n)
	for i := range all {
		all[i] = true
	}
	net := congest.NewNetwork(g, 7)
	eng := congest.NewEngine(net)
	bfs, err := core.NewColorBFS(n, core.ColorBFSSpec{
		L: 12, Color: colors, InH: all, InX: all, Threshold: n, SeedProb: 1,
	})
	if err != nil {
		b.Fatal(err)
	}
	if _, err := bfs.Run(eng); err != nil {
		b.Fatal(err)
	}
	if len(bfs.Detections()) == 0 {
		b.Fatal("no detection")
	}
	d := bfs.Detections()[0]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w, err := bfs.Witness(d)
		if err != nil {
			b.Fatal(err)
		}
		if err := graph.IsSimpleCycle(g, w, 12); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExactSearch measures the reference checker the tests rely on.
func BenchmarkExactSearch(b *testing.B) {
	g, _, err := graph.PlantedLight(800, 6, 2.0, graph.NewRand(9))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if graph.FindCycleLen(g, 6) == nil {
			b.Fatal("planted cycle missed")
		}
	}
}
