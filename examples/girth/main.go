// Girth bracketing with bounded-length detection.
//
// F_{2k}-freeness ("no cycle of length ≤ 2k") brackets the girth: if the
// detector finds a cycle of length ℓ the girth is ≤ ℓ, and — with the
// usual one-sided caveat — repeated silence at level 2k suggests girth
// > 2k. This example sweeps k over graphs with known girth and compares
// the bracket with the exact value.
package main

import (
	"fmt"
	"log"

	evencycle "repro"
)

func main() {
	type testcase struct {
		name string
		g    *evencycle.Graph
	}
	pg, err := projectivePlane(5)
	if err != nil {
		log.Fatal(err)
	}
	cases := []testcase{
		{"PG(2,5) incidence (girth 6)", pg},
		{"high-girth(>8) sparse", evencycle.HighGirthGraph(400, 480, 8, 3)},
		{"random G(300,600)", evencycle.RandomGraph(300, 600, 4)},
	}

	for _, tc := range cases {
		fmt.Printf("%s: n=%d m=%d\n", tc.name, tc.g.NumNodes(), tc.g.NumEdges())
		bracketGirth(tc.g)
		fmt.Println()
	}
}

func bracketGirth(g *evencycle.Graph) {
	for k := 2; k <= 4; k++ {
		res, err := evencycle.DetectBounded(g, k,
			evencycle.WithSeed(uint64(k)), evencycle.WithIterations(2500))
		if err != nil {
			log.Fatal(err)
		}
		if res.Found {
			if err := evencycle.VerifyCycle(g, res.Witness); err != nil {
				log.Fatalf("invalid witness: %v", err)
			}
			fmt.Printf("  k=%d: found C_%d ⇒ girth ≤ %d (witness %v)\n",
				k, res.FoundLen, res.FoundLen, res.Witness)
			return
		}
		fmt.Printf("  k=%d: no cycle of length ≤ %d detected\n", k, 2*k)
	}
	fmt.Println("  ⇒ girth likely > 8")
}

// projectivePlane rebuilds the PG(2,q) incidence graph through the facade
// edge-list API (the internal generator is not exported).
func projectivePlane(q int) (*evencycle.Graph, error) {
	// Points and lines of PG(2,q) with q prime; incidence ax+by+cz ≡ 0.
	type triple [3]int
	var pts []triple
	for y := 0; y < q; y++ {
		for z := 0; z < q; z++ {
			pts = append(pts, triple{1, y, z})
		}
	}
	for z := 0; z < q; z++ {
		pts = append(pts, triple{0, 1, z})
	}
	pts = append(pts, triple{0, 0, 1})
	n := len(pts)
	var edges [][2]evencycle.NodeID
	for li, l := range pts {
		for pi, p := range pts {
			if (l[0]*p[0]+l[1]*p[1]+l[2]*p[2])%q == 0 {
				edges = append(edges, [2]evencycle.NodeID{
					evencycle.NodeID(pi), evencycle.NodeID(n + li),
				})
			}
		}
	}
	return evencycle.NewGraph(2*n, edges), nil
}
