// Social-network scenario: cycle detection on a skewed-degree graph.
//
// Real interaction networks have heavy-tailed degrees — a few hubs and
// many low-degree members. This is exactly the regime Algorithm 1's split
// into light and heavy cases targets: cycles through hubs are found via
// the random vertex sample S and the heavy-neighbor set W, while cycles
// among ordinary members are found inside G[U] where the degree bound
// keeps congestion low. This example builds a preferential-attachment
// style graph, plants a short "friend circle" (a C₄ and a C₆) and locates
// both.
package main

import (
	"fmt"
	"log"
	"math/rand/v2"

	evencycle "repro"
)

func main() {
	const n = 3000
	g := preferentialAttachment(n, 2, 42)
	fmt.Printf("network: %d members, %d ties, max degree %d\n",
		g.NumNodes(), g.NumEdges(), g.MaxDegree())

	// Plant a 4-circle among arbitrary members.
	g, circle4, err := evencycle.WithPlantedCycle(g, 4, 7)
	if err != nil {
		log.Fatal(err)
	}
	// And a 6-circle.
	g, circle6, err := evencycle.WithPlantedCycle(g, 6, 8)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("planted C₄ at %v and C₆ at %v\n\n", circle4, circle6)

	res, err := evencycle.Detect(g, 2, evencycle.WithSeed(1))
	if err != nil {
		log.Fatal(err)
	}
	report(g, "C₄ (k=2)", res)

	res, err = evencycle.Detect(g, 3, evencycle.WithSeed(1), evencycle.WithIterations(60000))
	if err != nil {
		log.Fatal(err)
	}
	report(g, "C₆ (k=3)", res)

	// The bounded-length detector answers "is there any circle of length
	// ≤ 6?" in one shot.
	bres, err := evencycle.DetectBounded(g, 3, evencycle.WithSeed(2))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("any cycle ≤ 6: found=%v (length %d) after %d rounds\n",
		bres.Found, bres.FoundLen, bres.Rounds)
}

func report(g *evencycle.Graph, label string, res *evencycle.Result) {
	fmt.Printf("%s: found=%v rounds=%d congestion=%d iterations=%d\n",
		label, res.Found, res.Rounds, res.MaxCongestion, res.Iterations)
	if res.Found {
		fmt.Printf("  witness: %v\n", res.Witness)
		if err := evencycle.VerifyCycle(g, res.Witness); err != nil {
			log.Fatalf("  witness invalid: %v", err)
		}
	}
	fmt.Println()
}

// preferentialAttachment grows a graph where each new vertex attaches to
// `attach` endpoints of existing edges (degree-proportional sampling), so
// early vertices become hubs.
func preferentialAttachment(n, attach int, seed uint64) *evencycle.Graph {
	rng := rand.New(rand.NewPCG(seed, seed^0x5eed))
	var edges [][2]evencycle.NodeID
	// Endpoint pool: each edge contributes both endpoints, so sampling the
	// pool is degree-proportional.
	pool := []evencycle.NodeID{0, 1}
	edges = append(edges, [2]evencycle.NodeID{0, 1})
	for v := evencycle.NodeID(2); int(v) < n; v++ {
		seen := map[evencycle.NodeID]bool{}
		for len(seen) < attach {
			target := pool[rng.IntN(len(pool))]
			if target != v && !seen[target] {
				seen[target] = true
				edges = append(edges, [2]evencycle.NodeID{v, target})
				pool = append(pool, v, target)
			}
		}
	}
	return evencycle.NewGraph(n, edges)
}
