// Quantum speedup: the paper's quadratic amplification advantage, measured.
//
// Both the classical and the quantum route start from the same base
// algorithm — the congestion-reduced detector of Lemma 12, which runs in
// k^{O(k)} rounds and succeeds with small probability ε = Θ(1/n^{1-1/k}).
// To reach error δ:
//
//	classical repetition:  ln(1/δ)·(1/ε)  executions,
//	quantum amplification: ln(1/δ)·O(1/√ε) executions (Theorem 3).
//
// This example runs the actual pipeline on planted instances and prints
// both costs with T_setup and the diameter measured on the simulator, plus
// the resulting speedup — which grows like √(1/ε) ~ n^{(1-1/k)/2}.
package main

import (
	"fmt"
	"log"

	evencycle "repro"
	"repro/internal/quantum"
)

func main() {
	fmt.Println("C₄-freeness (k=2): classical vs quantum boosting of the Lemma 12 detector")
	fmt.Printf("%8s  %12s  %18s  %16s  %8s\n",
		"n", "base ε", "classical rounds", "quantum rounds", "speedup")
	for _, n := range []int{500, 2000, 8000, 32000} {
		host := evencycle.RandomGraph(n, 2*n, uint64(n))
		g, _, err := evencycle.WithPlantedCycle(host, 4, uint64(n)+1)
		if err != nil {
			log.Fatal(err)
		}

		res, err := evencycle.DetectQuantum(g, 2,
			evencycle.WithSeed(1),
			evencycle.WithIterations(1),       // one coloring per attempt
			evencycle.WithSimulationBudget(4)) // classical sims realizing semantics
		if err != nil {
			log.Fatal(err)
		}

		// The classical route repeats the identical Setup ln(1/δ)/ε times.
		delta := 1 / float64(n*n)
		classical := quantum.ClassicalBoostRounds(res.Eps, delta, 0, 30)
		fmt.Printf("%8d  %12.2e  %18.3g  %16.0f  %8.1f\n",
			n, res.Eps, classical, res.QuantumRounds, classical/res.QuantumRounds)
	}

	fmt.Println()
	fmt.Println("odd cycles C₅ (k=2): quantum Θ̃(√n) ledger (optimal up to polylogs)")
	for _, n := range []int{500, 2000, 8000} {
		host := evencycle.RandomGraph(n, 2*n, uint64(n))
		g, _, err := evencycle.WithPlantedCycle(host, 5, uint64(n)+2)
		if err != nil {
			log.Fatal(err)
		}
		res, err := evencycle.DetectOddQuantum(g, 2,
			evencycle.WithSeed(1), evencycle.WithIterations(1),
			evencycle.WithSimulationBudget(2))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  n=%6d  quantum rounds %10.0f  base ε = %.2e\n",
			n, res.QuantumRounds, res.Eps)
	}
	fmt.Println()
	fmt.Println("note: quantum rounds are a charged ledger (Lemma 8/Theorem 3 semantics")
	fmt.Println("simulated classically; T_setup and D measured on the simulator — docs/ARCHITECTURE.md)")
}
