// Figure 1 reproduction: the Density Lemma's constructive cycle extraction
// for k = 5 (a 10-cycle), the paper's only figure.
//
// The figure illustrates the proof of Lemma 6: at a node v (layer i = 2 in
// the figure) with IN(v,0) ≠ ∅, a 10-cycle through S is assembled from
//
//	P  — an alternating W₀/S path inside the nested edge sets IN(v,γ)
//	     (Claim 1; the figure's (w, s₃, w₂, s₁, w₂′, s′)),
//	P′ — a layered path from P's W₀-endpoint back to v (Claim 2;
//	     (w, v₁′, v)), and
//	P″ — a layered path from P's S-endpoint to v through a fresh w″
//	     avoiding every OUT(v′_j) (Claim 2; (s, w″, v₁″, v)).
//
// This program builds an instance realizing the figure's regime, runs the
// OUT/IN sparsification (Eqs. 3–8), extracts the three paths, and verifies
// the assembled cycle.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/graph"
)

func main() {
	const k = 5 // C_10, as in the figure
	in := buildInstance(k)
	fmt.Printf("instance: n=%d, |S|=%d, |W₀|=%d, layers V₁..V₂ (k=%d)\n",
		in.G.NumNodes(), count(in.Layer, core.LayerS), count(in.Layer, core.LayerW0), k)

	res, err := core.AnalyzeDensity(in)
	if err != nil {
		log.Fatal(err)
	}
	if res.Violation < 0 {
		log.Fatal("expected a density violation (the figure's regime)")
	}
	fmt.Printf("\ndensity bound violated at node %d (layer %d): |W₀(v)| = %d > 2^{i-1}(k-1)|S| = %d\n",
		res.Violation, res.ViolationLayer, res.ReachSize, res.Bound)

	w := res.Witness
	fmt.Printf("\nLemma 6 construction at v = %d (layer i = %d):\n", w.V, w.LayerI)
	fmt.Printf("  P  (alternating W₀/S, %d vertices): %v\n", len(w.P), w.P)
	fmt.Printf("  P′ (w → v through layers):          %v\n", w.PPrime)
	fmt.Printf("  P″ (s → v through fresh w″):        %v\n", w.PDbl)
	fmt.Printf("\nassembled C_%d: %v\n", 2*k, w.Cycle)

	if err := graph.IsSimpleCycle(in.G, w.Cycle, 2*k); err != nil {
		log.Fatalf("cycle failed verification: %v", err)
	}
	touches := 0
	for _, v := range w.Cycle {
		if in.Layer[v] == core.LayerS {
			touches++
		}
	}
	fmt.Printf("verified: simple 10-cycle, touching S in %d vertices ✓\n", touches)
}

// buildInstance creates the figure's regime at layer i = 2: every W₀
// vertex sees all of S (k² = 25 S-neighbors required); each V₁ vertex sees
// only a slice of W₀ small enough to satisfy the layer-1 bound
// (k-1)|S| = 104, but a single V₂ vertex sees every V₁ vertex, so its
// reach is all of W₀ and the layer-2 bound 2(k-1)|S| = 208 breaks there —
// exactly the case Figure 1 depicts.
func buildInstance(k int) *core.DensityInstance {
	const (
		sizeS  = 150 // each W₀ vertex sees exactly k² = 25 of these
		slice  = 24  // W₀ vertices per V₁ node
		slices = 51  // |W₀| = 1224 > 2(k-1)|S| = 1200
	)
	// Within a slice, the 25 S-neighborhoods are spread round-robin so
	// every S-vertex has degree exactly slice·25/|S| = 4 into the slice —
	// equal to the Eq. 5 cutoff 2^{i-1}(k-1) = 4 at layer 1, so the whole
	// slice drains into OUT(v₁) and IN(v₁,0) = ∅: layer-1 nodes are never
	// "hot". The V₂ vertex aggregates all 51 slices (per-S degree 204 ≫ 8)
	// and becomes the hot node of the figure.
	b := graph.NewBuilder(0)
	var layer []int8
	add := func(l int8) graph.NodeID {
		id := graph.NodeID(len(layer))
		layer = append(layer, l)
		b.AddNodes(len(layer))
		return id
	}
	var sNodes []graph.NodeID
	for i := 0; i < sizeS; i++ {
		sNodes = append(sNodes, add(core.LayerS))
	}
	var v1Nodes []graph.NodeID
	for sl := 0; sl < slices; sl++ {
		var wSlice []graph.NodeID
		for i := 0; i < slice; i++ {
			w := add(core.LayerW0)
			wSlice = append(wSlice, w)
			for j := 0; j < k*k; j++ {
				b.AddEdge(w, sNodes[(i*k*k+j)%sizeS])
			}
		}
		v1 := add(1)
		v1Nodes = append(v1Nodes, v1)
		for _, w := range wSlice {
			b.AddEdge(v1, w)
		}
	}
	v2 := add(2)
	for _, v1 := range v1Nodes {
		b.AddEdge(v2, v1)
	}
	return &core.DensityInstance{G: b.Build(), K: k, Layer: layer}
}

func count(layer []int8, want int8) int {
	c := 0
	for _, l := range layer {
		if l == want {
			c++
		}
	}
	return c
}
