// Quickstart: build a small graph, ask whether it contains a 4-cycle, and
// inspect the verified witness the detector returns.
package main

import (
	"fmt"
	"log"

	evencycle "repro"
)

func main() {
	// A 6-vertex graph: a C₄ (0-1-2-3) with a pendant path (3-4-5).
	g := evencycle.NewGraph(6, [][2]evencycle.NodeID{
		{0, 1}, {1, 2}, {2, 3}, {3, 0}, // the C₄
		{3, 4}, {4, 5}, // pendant path
	})

	// Detect C_{2k} with k = 2, i.e. C₄-freeness, with the paper's
	// Algorithm 1 at its faithful parameterization (ε = 1/3).
	res, err := evencycle.Detect(g, 2, evencycle.WithSeed(7))
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("C₄ present: %v\n", res.Found)
	if res.Found {
		fmt.Printf("witness cycle: %v\n", res.Witness)
		if err := evencycle.VerifyCycle(g, res.Witness); err != nil {
			log.Fatalf("witness failed verification: %v", err)
		}
		fmt.Println("witness verified: every edge exists, all vertices distinct")
	}
	fmt.Printf("cost: %d CONGEST rounds, %d messages, %d coloring iterations\n",
		res.Rounds, res.Messages, res.Iterations)

	// One-sidedness: a graph of girth 6 can never be rejected.
	free := evencycle.HighGirthGraph(200, 240, 5, 1)
	res, err = evencycle.Detect(free, 2, evencycle.WithSeed(7), evencycle.WithIterations(50))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ngirth>5 graph rejected: %v (always false — detection is one-sided)\n", res.Found)
}
