package evencycle_test

import (
	"context"
	"testing"

	evencycle "repro"
)

// TestServiceFacade drives evencycle.Service end to end: computed first
// serve, cache hit second, det-mode seed independence, and stats
// accounting.
func TestServiceFacade(t *testing.T) {
	svc := evencycle.NewService(
		evencycle.WithServiceSlots(2),
		evencycle.WithServiceCache(64),
		evencycle.WithServiceIterations(20),
	)
	host := evencycle.RandomGraph(300, 330, 5)
	g, _, err := evencycle.WithPlantedCycle(host, 4, 6)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	res, src, err := svc.Detect(ctx, g, 2, evencycle.WithSeed(3))
	if err != nil {
		t.Fatal(err)
	}
	if src != "computed" {
		t.Fatalf("first serve source %q", src)
	}
	if !res.Found {
		t.Fatal("planted C_4 not found within the default budget")
	}
	if err := evencycle.VerifyCycle(g, res.Witness); err != nil {
		t.Fatal(err)
	}

	again, src, err := svc.Detect(ctx, g, 2, evencycle.WithSeed(3))
	if err != nil {
		t.Fatal(err)
	}
	if src != "cache" {
		t.Fatalf("repeat serve source %q, want cache", src)
	}
	if !again.Found || again.Rounds != res.Rounds {
		t.Fatal("cache hit returned a different result")
	}

	// Deterministic mode ignores the seed in its cache key.
	det1, src1, err := svc.DetectDeterministic(ctx, g, 2, evencycle.WithSeed(1))
	if err != nil {
		t.Fatal(err)
	}
	det2, src2, err := svc.DetectDeterministic(ctx, g, 2, evencycle.WithSeed(999))
	if err != nil {
		t.Fatal(err)
	}
	if src1 != "computed" || src2 != "cache" {
		t.Fatalf("det sources %q/%q, want computed/cache", src1, src2)
	}
	if det1.Found != det2.Found || det1.Rounds != det2.Rounds {
		t.Fatal("det results differ across seeds")
	}

	if err := svc.RegisterGraph("g1", g); err != nil {
		t.Fatal(err)
	}
	if _, ok := svc.NamedGraph("g1"); !ok {
		t.Fatal("registered graph not resolvable")
	}
	if names := svc.GraphNames(); len(names) != 1 || names[0] != "g1" {
		t.Fatalf("corpus names %v", names)
	}
	if fp := evencycle.Fingerprint(g); len(fp) != 32 {
		t.Fatalf("fingerprint %q is not 32 hex digits", fp)
	}

	st := svc.Stats()
	if st.Requests != 4 || st.Hits != 2 || st.EngineSessions != 2 {
		t.Fatalf("stats requests=%d hits=%d engineSessions=%d, want 4/2/2",
			st.Requests, st.Hits, st.EngineSessions)
	}
}
