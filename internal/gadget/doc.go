// Package gadget builds the hard-instance families underlying the paper's
// lower-bound reductions (Section 3.3): graphs parameterized by a two-party
// Set-Disjointness instance (x, y) such that the target cycle exists if and
// only if the sets intersect.
//
// These are the inputs of experiment E7. The communication-complexity
// theorems themselves ([4]: any r-round quantum protocol for Disjointness
// on N elements needs Ω(r + N/r) qubits) cannot be reproduced empirically;
// what we reproduce is the *instance structure* of the reductions of
// Drucker et al. [PODC'14] (C₄, N = Θ(n^{3/2})) and Korhonen–Rybicki
// [OPODIS'17] (C_{2k}, N = Θ(n)), plus the odd-cycle family
// (N = Θ(n²)), each verified against exact search.
//
// Builders are deterministic: a family instance is a pure function of its
// parameters and the Disjointness vectors, so experiments over the same
// (seed, trial) grid rebuild identical graphs.
package gadget
