package gadget

import (
	"testing"
	"testing/quick"

	"repro/internal/graph"
)

func TestDisjointnessBasics(t *testing.T) {
	d := NewDisjointness(5)
	if d.Intersects() {
		t.Fatal("empty instance intersects")
	}
	d.X[2], d.Y[2] = true, true
	if !d.Intersects() {
		t.Fatal("intersection missed")
	}
	forced := RandomDisjointness(200, 0.5, true, 1)
	if forced.Intersects() {
		t.Fatal("forceDisjoint produced an intersection")
	}
}

// The C₄ gadget: iff-property checked by exact search across random
// instances.
func TestDruckerC4Iff(t *testing.T) {
	tmpl, err := NewDruckerC4(3)
	if err != nil {
		t.Fatal(err)
	}
	n := tmpl.UniverseSize()
	if n != 4*13 {
		t.Fatalf("universe = %d, want 52 for q=3", n)
	}
	for seed := uint64(0); seed < 6; seed++ {
		intersecting := seed%2 == 0
		d := RandomDisjointness(n, 0.3, !intersecting, seed)
		if intersecting {
			i := int(seed) % n
			d.X[i], d.Y[i] = true, true
		}
		g, err := tmpl.Build(d)
		if err != nil {
			t.Fatal(err)
		}
		has := graph.HasCycleLen(g, 4)
		if has != d.Intersects() {
			t.Fatalf("seed %d: C₄ present=%v but intersects=%v", seed, has, d.Intersects())
		}
	}
}

func TestDruckerC4EdgeCount(t *testing.T) {
	tmpl, err := NewDruckerC4(5)
	if err != nil {
		t.Fatal(err)
	}
	// N = (q+1)(q²+q+1) = 6·31 = 186 = Θ(n^{3/2}) with n = 2·62 = 124.
	if tmpl.UniverseSize() != 186 {
		t.Fatalf("universe = %d, want 186", tmpl.UniverseSize())
	}
	if tmpl.NumNodes() != 124 {
		t.Fatalf("nodes = %d, want 124", tmpl.NumNodes())
	}
}

func TestKRC2kIff(t *testing.T) {
	for _, k := range []int{2, 3, 4} {
		tmpl, err := NewKRC2k(k, 12)
		if err != nil {
			t.Fatal(err)
		}
		for seed := uint64(0); seed < 6; seed++ {
			intersecting := seed%2 == 1
			d := RandomDisjointness(12, 0.4, !intersecting, seed+100)
			if intersecting {
				i := int(seed) % 12
				d.X[i], d.Y[i] = true, true
			}
			g, err := tmpl.Build(d)
			if err != nil {
				t.Fatal(err)
			}
			has := graph.HasCycleLen(g, 2*k)
			if has != d.Intersects() {
				t.Fatalf("k=%d seed %d: C_%d present=%v, intersects=%v",
					k, seed, 2*k, has, d.Intersects())
			}
			// Stronger: the gadget is cycle-free when disjoint.
			if !d.Intersects() && graph.Girth(g) != -1 {
				t.Fatalf("k=%d seed %d: disjoint instance has girth %d", k, seed, graph.Girth(g))
			}
		}
	}
}

func TestOddGadgetIff(t *testing.T) {
	for _, k := range []int{2, 3} {
		tmpl, err := NewOddGadget(k, 5)
		if err != nil {
			t.Fatal(err)
		}
		for seed := uint64(0); seed < 6; seed++ {
			intersecting := seed%2 == 0
			d := RandomDisjointness(tmpl.UniverseSize(), 0.15, !intersecting, seed+200)
			if intersecting {
				idx := tmpl.Index(int(seed)%5, (int(seed)+2)%5)
				d.X[idx], d.Y[idx] = true, true
			}
			g, err := tmpl.Build(d)
			if err != nil {
				t.Fatal(err)
			}
			has := graph.HasCycleLen(g, 2*k+1)
			if has != d.Intersects() {
				t.Fatalf("k=%d seed %d: C_%d present=%v, intersects=%v",
					k, seed, 2*k+1, has, d.Intersects())
			}
		}
	}
}

// Property test: the odd gadget never contains ANY odd cycle of length
// 2k+1 unless the sets intersect, for arbitrary bit patterns.
func TestOddGadgetIffQuick(t *testing.T) {
	tmpl, err := NewOddGadget(2, 4)
	if err != nil {
		t.Fatal(err)
	}
	f := func(xBits, yBits uint16) bool {
		d := NewDisjointness(16)
		for i := 0; i < 16; i++ {
			d.X[i] = xBits&(1<<i) != 0
			d.Y[i] = yBits&(1<<i) != 0
		}
		g, err := tmpl.Build(d)
		if err != nil {
			return false
		}
		return graph.HasCycleLen(g, 5) == d.Intersects()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

// Property test for KR: arbitrary bit patterns.
func TestKRC2kIffQuick(t *testing.T) {
	tmpl, err := NewKRC2k(3, 16)
	if err != nil {
		t.Fatal(err)
	}
	f := func(xBits, yBits uint16) bool {
		d := NewDisjointness(16)
		for i := 0; i < 16; i++ {
			d.X[i] = xBits&(1<<i) != 0
			d.Y[i] = yBits&(1<<i) != 0
		}
		g, err := tmpl.Build(d)
		if err != nil {
			return false
		}
		return graph.HasCycleLen(g, 6) == d.Intersects()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

func TestGadgetValidation(t *testing.T) {
	if _, err := NewKRC2k(1, 5); err == nil {
		t.Fatal("k=1 accepted")
	}
	if _, err := NewKRC2k(2, 0); err == nil {
		t.Fatal("n=0 accepted")
	}
	if _, err := NewOddGadget(1, 5); err == nil {
		t.Fatal("k=1 accepted")
	}
	if _, err := NewDruckerC4(4); err == nil {
		t.Fatal("non-prime q accepted")
	}
	tmpl, _ := NewKRC2k(2, 5)
	if _, err := tmpl.Build(NewDisjointness(4)); err == nil {
		t.Fatal("wrong universe size accepted")
	}
}
