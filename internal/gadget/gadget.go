package gadget

import (
	"fmt"

	"repro/internal/graph"
)

// Disjointness is a two-party Set-Disjointness instance over [N].
type Disjointness struct {
	X, Y []bool
}

// NewDisjointness allocates an all-zero instance of size n.
func NewDisjointness(n int) *Disjointness {
	return &Disjointness{X: make([]bool, n), Y: make([]bool, n)}
}

// Intersects reports whether some element is in both sets.
func (d *Disjointness) Intersects() bool {
	for i := range d.X {
		if d.X[i] && d.Y[i] {
			return true
		}
	}
	return false
}

// RandomDisjointness samples an instance where each element enters each
// side independently with probability p, then (if forceDisjoint) removes
// intersections from Y.
func RandomDisjointness(n int, p float64, forceDisjoint bool, seed uint64) *Disjointness {
	rng := graph.NewRand(seed)
	d := NewDisjointness(n)
	for i := 0; i < n; i++ {
		d.X[i] = rng.Float64() < p
		d.Y[i] = rng.Float64() < p
		if forceDisjoint && d.X[i] && d.Y[i] {
			d.Y[i] = false
		}
	}
	return d
}

// ---------------------------------------------------------------------------
// Drucker et al. C₄ gadget.

// DruckerC4 is the template of the [PODC'14] C₄ lower-bound family: a
// C₄-free bipartite base graph G₀ (the point–line incidence graph of
// PG(2,q), with N = (q+1)(q²+q+1) = Θ(n^{3/2}) edges), duplicated into an
// Alice copy and a Bob copy joined by a perfect matching. Alice keeps base
// edge e_i in her copy iff x_i; Bob keeps e_i in his copy iff y_i. The
// result contains a C₄ iff some e_i is kept by both (the matching plus the
// two copies of e_i), because G₀ itself is C₄-free.
type DruckerC4 struct {
	base  *graph.Graph
	edges [][2]graph.NodeID
}

// NewDruckerC4 builds the template for prime order q.
func NewDruckerC4(q int) (*DruckerC4, error) {
	base, err := graph.ProjectivePlaneIncidence(q)
	if err != nil {
		return nil, fmt.Errorf("gadget: DruckerC4: %w", err)
	}
	return &DruckerC4{base: base, edges: base.Edges()}, nil
}

// UniverseSize returns N, the number of Disjointness elements.
func (t *DruckerC4) UniverseSize() int { return len(t.edges) }

// NumNodes returns the vertex count of built instances (2·|V(G₀)|).
func (t *DruckerC4) NumNodes() int { return 2 * t.base.NumNodes() }

// Build materializes the instance for (x,y). Vertices: Alice copy
// 0..|V|-1, Bob copy |V|..2|V|-1.
func (t *DruckerC4) Build(d *Disjointness) (*graph.Graph, error) {
	if len(d.X) != len(t.edges) || len(d.Y) != len(t.edges) {
		return nil, fmt.Errorf("gadget: DruckerC4 universe is %d, got |x|=%d |y|=%d",
			len(t.edges), len(d.X), len(d.Y))
	}
	nv := t.base.NumNodes()
	b := graph.NewBuilder(2 * nv)
	for v := 0; v < nv; v++ {
		b.AddEdge(graph.NodeID(v), graph.NodeID(v+nv)) // perfect matching
	}
	for i, e := range t.edges {
		if d.X[i] {
			b.AddEdge(e[0], e[1])
		}
		if d.Y[i] {
			b.AddEdge(e[0]+graph.NodeID(nv), e[1]+graph.NodeID(nv))
		}
	}
	return b.Build(), nil
}

// ---------------------------------------------------------------------------
// Korhonen–Rybicki C_{2k} gadget.

// KRC2k is the [OPODIS'17]-style C_{2k} family with N = Θ(n) elements: a
// hub u and per-element terminals w_i; Alice contributes a (k-1)-edge path
// u⇝w_i iff x_i, Bob a (k+1)-edge path w_i⇝u iff y_i. Every cycle must
// leave and re-enter the hub through the two arms of a single terminal, so
// a C_{2k} (indeed, any cycle at all) exists iff the sets intersect.
type KRC2k struct {
	k, n int
}

// NewKRC2k builds the template for C_{2k} over a universe of n elements.
func NewKRC2k(k, n int) (*KRC2k, error) {
	if k < 2 {
		return nil, fmt.Errorf("gadget: KRC2k needs k ≥ 2, got %d", k)
	}
	if n < 1 {
		return nil, fmt.Errorf("gadget: KRC2k needs n ≥ 1")
	}
	return &KRC2k{k: k, n: n}, nil
}

// UniverseSize returns the number of Disjointness elements.
func (t *KRC2k) UniverseSize() int { return t.n }

// Build materializes the instance: vertex 0 is the hub, vertices 1..n the
// terminals, then arm interiors.
func (t *KRC2k) Build(d *Disjointness) (*graph.Graph, error) {
	if len(d.X) != t.n || len(d.Y) != t.n {
		return nil, fmt.Errorf("gadget: KRC2k universe is %d, got |x|=%d |y|=%d", t.n, len(d.X), len(d.Y))
	}
	b := graph.NewBuilder(1 + t.n)
	const hub = graph.NodeID(0)
	next := graph.NodeID(1 + t.n)
	addPath := func(from, to graph.NodeID, edges int) {
		prev := from
		for s := 0; s < edges-1; s++ {
			b.AddEdge(prev, next)
			prev = next
			next++
		}
		b.AddEdge(prev, to)
	}
	for i := 0; i < t.n; i++ {
		w := graph.NodeID(1 + i)
		if d.X[i] {
			addPath(hub, w, t.k-1) // Alice arm
		}
		if d.Y[i] {
			addPath(w, hub, t.k+1) // Bob arm
		}
	}
	return b.Build(), nil
}

// ---------------------------------------------------------------------------
// Odd-cycle gadget (Section 3.3.2), N = Θ(n²).

// OddGadget is the C_{2k+1} family over ordered pairs (i,j) ∈ [m]²: four
// vertex columns A, A′, B, B′ of size m with matchings a_t—b_t and
// a′_t—b′_t; Alice contributes a k-edge path a_i ⇝ a′_j iff x_{ij}, Bob a
// (k-1)-edge path b_i ⇝ b′_j iff y_{ij}.
//
// Why the iff holds: arms flip the primed/unprimed column parity while
// matching edges preserve it, so every cycle uses an even number A+B of
// arms; its length is kA + (k-1)B + M with M (the matching edges used)
// even. For length 2k+1 the only solution with k ≥ 2 is A = B = 1, M = 2,
// which forces the two arms to share the pair (i,j) — i.e. x_{ij} ∧ y_{ij}.
// (Cycles with A+B ≥ 4 arms have length ≥ 4k-2 > 2k+1; pure-Alice or
// pure-Bob combinations would need an odd M.)
type OddGadget struct {
	k, m int
}

// NewOddGadget builds the template for C_{2k+1} with side size m
// (universe m² pairs).
func NewOddGadget(k, m int) (*OddGadget, error) {
	if k < 2 {
		return nil, fmt.Errorf("gadget: OddGadget needs k ≥ 2, got %d", k)
	}
	if m < 1 {
		return nil, fmt.Errorf("gadget: OddGadget needs m ≥ 1")
	}
	return &OddGadget{k: k, m: m}, nil
}

// UniverseSize returns m².
func (t *OddGadget) UniverseSize() int { return t.m * t.m }

// Index maps an ordered pair to its universe element.
func (t *OddGadget) Index(i, j int) int { return i*t.m + j }

// Build materializes the instance. Columns: A = 0..m-1, A′ = m..2m-1,
// B = 2m..3m-1, B′ = 3m..4m-1, then arm interiors.
func (t *OddGadget) Build(d *Disjointness) (*graph.Graph, error) {
	if len(d.X) != t.UniverseSize() || len(d.Y) != t.UniverseSize() {
		return nil, fmt.Errorf("gadget: OddGadget universe is %d, got |x|=%d |y|=%d",
			t.UniverseSize(), len(d.X), len(d.Y))
	}
	m := t.m
	b := graph.NewBuilder(4 * m)
	colA := func(i int) graph.NodeID { return graph.NodeID(i) }
	colAp := func(i int) graph.NodeID { return graph.NodeID(m + i) }
	colB := func(i int) graph.NodeID { return graph.NodeID(2*m + i) }
	colBp := func(i int) graph.NodeID { return graph.NodeID(3*m + i) }
	for i := 0; i < m; i++ {
		b.AddEdge(colA(i), colB(i))
		b.AddEdge(colAp(i), colBp(i))
	}
	next := graph.NodeID(4 * m)
	addPath := func(from, to graph.NodeID, edges int) {
		prev := from
		for s := 0; s < edges-1; s++ {
			b.AddEdge(prev, next)
			prev = next
			next++
		}
		b.AddEdge(prev, to)
	}
	for i := 0; i < m; i++ {
		for j := 0; j < m; j++ {
			idx := t.Index(i, j)
			if d.X[idx] {
				addPath(colA(i), colAp(j), t.k) // Alice arm, k edges
			}
			if d.Y[idx] {
				addPath(colB(i), colBp(j), t.k-1) // Bob arm, k-1 edges
			}
		}
	}
	return b.Build(), nil
}
