package graph

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestBuilderBasics(t *testing.T) {
	b := NewBuilder(4)
	b.AddEdge(0, 1)
	b.AddEdge(1, 0) // duplicate, reversed
	b.AddEdge(1, 2)
	b.AddEdge(2, 2) // self loop, dropped
	b.AddEdge(3, 2)
	g := b.Build()
	if got := g.NumNodes(); got != 4 {
		t.Fatalf("NumNodes = %d, want 4", got)
	}
	if got := g.NumEdges(); got != 3 {
		t.Fatalf("NumEdges = %d, want 3", got)
	}
	if !g.HasEdge(0, 1) || !g.HasEdge(1, 0) {
		t.Error("edge {0,1} missing")
	}
	if g.HasEdge(0, 2) {
		t.Error("unexpected edge {0,2}")
	}
	if g.HasEdge(2, 2) {
		t.Error("self loop survived")
	}
	if err := g.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
}

func TestBuilderGrowsVertexSet(t *testing.T) {
	b := NewBuilder(2)
	b.AddEdge(0, 7)
	g := b.Build()
	if got := g.NumNodes(); got != 8 {
		t.Fatalf("NumNodes = %d, want 8", got)
	}
}

func TestDegreesAndNeighbors(t *testing.T) {
	g := Star(5)
	if got := g.Degree(0); got != 5 {
		t.Fatalf("hub degree = %d, want 5", got)
	}
	for v := NodeID(1); v <= 5; v++ {
		if got := g.Degree(v); got != 1 {
			t.Fatalf("leaf %d degree = %d, want 1", v, got)
		}
	}
	if got := g.MaxDegree(); got != 5 {
		t.Fatalf("MaxDegree = %d, want 5", got)
	}
}

func TestCycleGraph(t *testing.T) {
	for _, n := range []int{3, 4, 7, 10} {
		g := Cycle(n)
		if g.NumEdges() != n {
			t.Fatalf("C_%d: edges = %d", n, g.NumEdges())
		}
		if got := Girth(g); got != n {
			t.Fatalf("C_%d: girth = %d", n, got)
		}
		if !HasCycleLen(g, n) {
			t.Fatalf("C_%d: HasCycleLen(%d) = false", n, n)
		}
		if n > 3 && HasCycleLen(g, n-1) {
			t.Fatalf("C_%d: found bogus C_%d", n, n-1)
		}
	}
}

func TestFindCycleLenReturnsValidCycle(t *testing.T) {
	rng := NewRand(42)
	for trial := 0; trial < 20; trial++ {
		g := Gnm(30, 60, rng)
		for L := 3; L <= 8; L++ {
			cyc := FindCycleLen(g, L)
			if cyc == nil {
				continue
			}
			if err := IsSimpleCycle(g, cyc, L); err != nil {
				t.Fatalf("trial %d L=%d: invalid cycle %v: %v", trial, L, cyc, err)
			}
		}
	}
}

func TestGirthMatchesBruteForce(t *testing.T) {
	rng := NewRand(7)
	for trial := 0; trial < 30; trial++ {
		g := Gnm(16, 4+int(rng.Int32N(20)), rng)
		want := girthBrute(g, 16)
		got := Girth(g)
		if got != want {
			t.Fatalf("trial %d: Girth = %d, brute = %d (edges=%v)", trial, got, want, g.Edges())
		}
	}
}

func TestGirthAcyclic(t *testing.T) {
	rng := NewRand(3)
	tree := Tree(40, rng)
	if got := Girth(tree); got != -1 {
		t.Fatalf("tree girth = %d, want -1", got)
	}
	if got := Girth(Path(10)); got != -1 {
		t.Fatalf("path girth = %d, want -1", got)
	}
}

func TestTreeProperties(t *testing.T) {
	rng := NewRand(11)
	for _, n := range []int{1, 2, 3, 10, 100} {
		g := Tree(n, rng)
		wantEdges := n - 1
		if n <= 1 {
			wantEdges = 0
		}
		if g.NumEdges() != wantEdges {
			t.Fatalf("Tree(%d): %d edges, want %d", n, g.NumEdges(), wantEdges)
		}
		if n > 0 {
			if _, comps := g.ConnectedComponents(); comps != 1 {
				t.Fatalf("Tree(%d): %d components", n, comps)
			}
		}
		if Girth(g) != -1 {
			t.Fatalf("Tree(%d) contains a cycle", n)
		}
	}
}

func TestGridHypercubeGirth(t *testing.T) {
	if got := Girth(Grid(3, 4)); got != 4 {
		t.Fatalf("grid girth = %d, want 4", got)
	}
	if got := Girth(Hypercube(3)); got != 4 {
		t.Fatalf("hypercube girth = %d, want 4", got)
	}
	if got := Girth(CompleteBipartite(3, 3)); got != 4 {
		t.Fatalf("K33 girth = %d, want 4", got)
	}
}

func TestTheta(t *testing.T) {
	g := Theta(3, 4) // three arms of length 4: shortest cycle 8
	if got := Girth(g); got != 8 {
		t.Fatalf("theta girth = %d, want 8", got)
	}
	if !HasCycleLen(g, 8) {
		t.Fatal("theta missing C_8")
	}
	// Asymmetric arms via two separate graphs is covered in gadget tests.
}

func TestGnpEdgeCount(t *testing.T) {
	rng := NewRand(5)
	n, p := 400, 0.02
	g := Gnp(n, p, rng)
	if err := g.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	want := p * float64(n) * float64(n-1) / 2
	got := float64(g.NumEdges())
	if got < want*0.7 || got > want*1.3 {
		t.Fatalf("Gnp edges = %v, want ≈ %v", got, want)
	}
}

func TestGnpExtremes(t *testing.T) {
	rng := NewRand(5)
	if g := Gnp(10, 0, rng); g.NumEdges() != 0 {
		t.Fatal("Gnp(p=0) has edges")
	}
	if g := Gnp(6, 1, rng); g.NumEdges() != 15 {
		t.Fatalf("Gnp(p=1) edges = %d, want 15", g.NumEdges())
	}
}

func TestRandomRegular(t *testing.T) {
	rng := NewRand(9)
	g, err := RandomRegular(50, 3, rng)
	if err != nil {
		t.Fatalf("RandomRegular: %v", err)
	}
	for v := 0; v < 50; v++ {
		if g.Degree(NodeID(v)) != 3 {
			t.Fatalf("vertex %d degree = %d", v, g.Degree(NodeID(v)))
		}
	}
	if err := g.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if _, err := RandomRegular(5, 3, rng); err == nil {
		t.Fatal("odd n*d accepted")
	}
}

func TestPlantCycle(t *testing.T) {
	rng := NewRand(21)
	host := Gnm(60, 40, rng)
	for _, L := range []int{4, 6, 8} {
		g, cyc, err := PlantCycle(host, L, rng)
		if err != nil {
			t.Fatalf("PlantCycle(%d): %v", L, err)
		}
		if err := IsSimpleCycle(g, cyc, L); err != nil {
			t.Fatalf("planted cycle invalid: %v", err)
		}
		if !HasCycleLen(g, L) {
			t.Fatalf("planted C_%d not found by exact search", L)
		}
	}
	if _, _, err := PlantCycle(Path(3), 8, rng); err == nil {
		t.Fatal("planting C_8 in 3 vertices should fail")
	}
}

func TestPlantedHeavy(t *testing.T) {
	rng := NewRand(33)
	g, cyc, err := PlantedHeavy(200, 6, 40, 2.0, rng)
	if err != nil {
		t.Fatalf("PlantedHeavy: %v", err)
	}
	if err := IsSimpleCycle(g, cyc, 6); err != nil {
		t.Fatalf("planted cycle invalid: %v", err)
	}
	if got := g.Degree(cyc[0]); got < 40 {
		t.Fatalf("hub degree = %d, want ≥ 40", got)
	}
}

func TestHighGirth(t *testing.T) {
	rng := NewRand(17)
	for _, minG := range []int{4, 6, 8} {
		g := HighGirth(150, 200, minG, rng)
		if err := g.Validate(); err != nil {
			t.Fatalf("Validate: %v", err)
		}
		if girth := Girth(g); girth != -1 && girth <= minG {
			t.Fatalf("HighGirth(minG=%d): girth = %d", minG, girth)
		}
		if g.NumEdges() == 0 {
			t.Fatalf("HighGirth(minG=%d): no edges", minG)
		}
	}
}

func TestProjectivePlaneIncidence(t *testing.T) {
	for _, q := range []int{2, 3, 5} {
		g, err := ProjectivePlaneIncidence(q)
		if err != nil {
			t.Fatalf("q=%d: %v", q, err)
		}
		nPts := q*q + q + 1
		if got := g.NumNodes(); got != 2*nPts {
			t.Fatalf("q=%d: nodes = %d, want %d", q, got, 2*nPts)
		}
		if got := g.NumEdges(); got != (q+1)*nPts {
			t.Fatalf("q=%d: edges = %d, want %d", q, got, (q+1)*nPts)
		}
		for v := 0; v < g.NumNodes(); v++ {
			if d := g.Degree(NodeID(v)); d != q+1 {
				t.Fatalf("q=%d: vertex %d degree %d, want %d", q, v, d, q+1)
			}
		}
		if girth := Girth(g); girth != 6 {
			t.Fatalf("q=%d: girth = %d, want 6", q, girth)
		}
	}
	if _, err := ProjectivePlaneIncidence(4); err == nil {
		t.Fatal("non-prime order accepted")
	}
}

func TestInducedSubgraph(t *testing.T) {
	g := Cycle(6)
	keep := []bool{true, true, true, true, false, false}
	sub, orig := g.InducedSubgraph(keep)
	if sub.NumNodes() != 4 {
		t.Fatalf("sub nodes = %d", sub.NumNodes())
	}
	if sub.NumEdges() != 3 {
		t.Fatalf("sub edges = %d, want 3 (path 0-1-2-3)", sub.NumEdges())
	}
	if len(orig) != 4 || orig[0] != 0 || orig[3] != 3 {
		t.Fatalf("orig mapping = %v", orig)
	}
}

func TestConnectedComponents(t *testing.T) {
	g := Union(Cycle(4), Cycle(5))
	comp, num := g.ConnectedComponents()
	if num != 2 {
		t.Fatalf("components = %d, want 2", num)
	}
	if comp[0] == comp[4] {
		t.Fatal("distinct cycles share a component")
	}
}

func TestDiameter(t *testing.T) {
	if got := Path(5).Diameter(); got != 4 {
		t.Fatalf("path diameter = %d, want 4", got)
	}
	if got := Cycle(8).Diameter(); got != 4 {
		t.Fatalf("C8 diameter = %d, want 4", got)
	}
	if got := Union(Path(2), Path(2)).Diameter(); got != -1 {
		t.Fatalf("disconnected diameter = %d, want -1", got)
	}
	approx := Path(9).DiameterApprox(4)
	if approx < 4 || approx > 8 {
		t.Fatalf("DiameterApprox = %d outside [4,8]", approx)
	}
}

func TestBFSDistances(t *testing.T) {
	g := Path(5)
	d := g.BFSDistances(0)
	for i, want := range []int32{0, 1, 2, 3, 4} {
		if d[i] != want {
			t.Fatalf("dist[%d] = %d, want %d", i, d[i], want)
		}
	}
}

func TestEdgeListRoundTrip(t *testing.T) {
	rng := NewRand(77)
	g := Gnm(40, 80, rng)
	var buf bytes.Buffer
	if err := WriteEdgeList(&buf, g); err != nil {
		t.Fatalf("write: %v", err)
	}
	h, err := ReadEdgeList(&buf)
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	if h.NumNodes() != g.NumNodes() || h.NumEdges() != g.NumEdges() {
		t.Fatalf("round trip mismatch: %d/%d vs %d/%d",
			h.NumNodes(), h.NumEdges(), g.NumNodes(), g.NumEdges())
	}
	for _, e := range g.Edges() {
		if !h.HasEdge(e[0], e[1]) {
			t.Fatalf("edge %v lost in round trip", e)
		}
	}
}

func TestReadEdgeListErrors(t *testing.T) {
	if _, err := ReadEdgeList(bytes.NewBufferString("")); err == nil {
		t.Fatal("empty input accepted")
	}
	if _, err := ReadEdgeList(bytes.NewBufferString("3 1\n0 x\n")); err == nil {
		t.Fatal("garbage field accepted")
	}
	if _, err := ReadEdgeList(bytes.NewBufferString("3 1\n0 1 2\n")); err == nil {
		t.Fatal("three-field line accepted")
	}
}

func TestPairFromIndex(t *testing.T) {
	n := 6
	seen := make(map[[2]int32]bool)
	total := int64(n * (n - 1) / 2)
	for idx := int64(0); idx < total; idx++ {
		u, v := pairFromIndex(idx, n)
		if u >= v || v >= int32(n) {
			t.Fatalf("pairFromIndex(%d) = (%d,%d) invalid", idx, u, v)
		}
		key := [2]int32{u, v}
		if seen[key] {
			t.Fatalf("pair (%d,%d) repeated", u, v)
		}
		seen[key] = true
	}
	if len(seen) != int(total) {
		t.Fatalf("enumerated %d pairs, want %d", len(seen), total)
	}
}

// Property: Build always yields a structurally valid graph regardless of the
// edge stream fed to the builder.
func TestBuilderValidQuick(t *testing.T) {
	f := func(raw []uint16) bool {
		b := NewBuilder(1)
		for i := 0; i+1 < len(raw); i += 2 {
			b.AddEdge(int32(raw[i]%97), int32(raw[i+1]%97))
		}
		return b.Build().Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: IsSimpleCycle accepts exactly the rotations of a planted cycle.
func TestIsSimpleCycleRotations(t *testing.T) {
	g := Cycle(7)
	verts := []NodeID{0, 1, 2, 3, 4, 5, 6}
	for r := 0; r < 7; r++ {
		rot := append(append([]NodeID{}, verts[r:]...), verts[:r]...)
		if err := IsSimpleCycle(g, rot, 7); err != nil {
			t.Fatalf("rotation %d rejected: %v", r, err)
		}
	}
	bad := []NodeID{0, 2, 4, 6, 1, 3, 5}
	if err := IsSimpleCycle(g, bad, 7); err == nil {
		t.Fatal("non-cycle ordering accepted")
	}
	if err := IsSimpleCycle(g, verts[:6], 6); err == nil {
		t.Fatal("broken 6-cycle accepted")
	}
}
