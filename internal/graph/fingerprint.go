package graph

import "fmt"

// Fingerprint is a stable 128-bit hash of a graph's structure. Two graphs
// have equal fingerprints exactly when their CSR representations are equal
// — and the CSR is canonical (Build sorts and deduplicates edges), so the
// fingerprint is invariant under builder insertion order, duplicate edges
// and self-loops: it identifies the graph itself, not how it was built.
//
// The value is pinned: it must never change across releases, because the
// detection service keys its cross-request result cache on it and recorded
// corpus fingerprints (BENCH_*.json, CI smoke replays) compare against
// stored values. fingerprint_test.go pins known values for exactly this
// reason — if a change to this file trips those tests, the change is wrong.
type Fingerprint [2]uint64

// String renders the fingerprint as 32 hex digits (high word first).
func (f Fingerprint) String() string {
	return fmt.Sprintf("%016x%016x", f[0], f[1])
}

// IsZero reports whether f is the zero fingerprint. The hash of any graph
// (even the empty one) mixes at least the vertex count, so the zero value
// can serve as an "unset" sentinel.
func (f Fingerprint) IsZero() bool { return f[0] == 0 && f[1] == 0 }

// fpMix advances one 64-bit accumulator lane by one value using the
// SplitMix64 finalizer over the running state — the same construction as
// sched.Tag, duplicated here so the graph package (which sched depends on
// nothing in, and which nothing below it may import) stays dependency-free
// and the pinned values are self-contained.
func fpMix(h, v uint64) uint64 {
	h ^= v + 0x9e3779b97f4a7c15 + (h << 6) + (h >> 2)
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	return h
}

// fpBlockWords is the checkpoint granularity of the absorber: the two lane
// states are recorded after every fpBlockWords absorbed words. A mutated
// graph whose absorbed word stream shares a clean prefix with its parent
// resumes from the last checkpoint inside that prefix instead of rehashing
// from word zero. 1024 words ≈ 16 KiB of CSR per checkpoint and 16 bytes of
// memo per checkpoint, so the memo stays ~0.1% of the graph it describes.
const fpBlockWords = 1024

// fpMemo is the memoized result of one fingerprint computation: the final
// value plus the per-block lane-state checkpoints that children resume from.
type fpMemo struct {
	fp Fingerprint
	// cks[j] is the (h0,h1) lane state after (j+1)*fpBlockWords absorbed
	// words. Checkpoints are a pure function of the absorbed prefix, so a
	// child whose stream shares j clean blocks with its parent can reuse
	// cks[:j] verbatim as its own leading checkpoints.
	cks []Fingerprint
}

// fpResume links a spliced graph to its parent for fingerprint resume:
// every absorbed word before dirtyWord is byte-identical between the two
// graphs' streams, so the child can start from the parent's last checkpoint
// at or before dirtyWord. The link is dropped as soon as the fingerprint is
// memoized — a long mutation chain must not pin its ancestors in memory.
type fpResume struct {
	parent    *Graph
	dirtyWord int // index of the first absorbed word that may differ
}

// fpAbsorber is the two-lane sponge behind Fingerprint, with checkpointing.
// It must absorb exactly the word stream the original closed-form hash did:
// word 0 is the vertex count (with its lane-1 offset), then the offsets
// pairwise, then the targets pairwise, each slice with its own high-bit
// tail marker when its length is odd.
type fpAbsorber struct {
	h0, h1 uint64
	words  int
	cks    []Fingerprint
}

// newFPAbsorber starts a stream: distinct lane seeds (digits of π and e) so
// a collision must hold in two decorrelated 64-bit hashes at once, then the
// vertex count as word 0.
func newFPAbsorber(n int) fpAbsorber {
	a := fpAbsorber{h0: 0x243f6a8885a308d3, h1: 0xb7e151628aed2a6a}
	a.h0 = fpMix(a.h0, uint64(n))
	a.h1 = fpMix(a.h1, uint64(n)+0x9d)
	a.words = 1
	return a
}

func (a *fpAbsorber) mix(w uint64) {
	a.h0 = fpMix(a.h0, w)
	a.h1 = fpMix(a.h1, w^0xa5a5a5a5a5a5a5a5)
	a.words++
	if a.words%fpBlockWords == 0 {
		a.cks = append(a.cks, Fingerprint{a.h0, a.h1})
	}
}

// absorb mixes vals[from:] pairwise, with the tail marker for an odd total
// length. from must be even: pair boundaries are absolute positions in
// vals, so a resumed absorption produces the same words as a full one.
func (a *fpAbsorber) absorb(vals []int32, from int) {
	i := from
	for ; i+1 < len(vals); i += 2 {
		a.mix(uint64(uint32(vals[i]))<<32 | uint64(uint32(vals[i+1])))
	}
	if i < len(vals) {
		a.mix(uint64(uint32(vals[i])) | 1<<63) // tail marker: ≠ any pair
	}
}

// Fingerprint returns the stable 128-bit structural hash of g. It is a
// pure function of (NumNodes, adjacency structure), and since Graph is
// immutable the value is computed once and memoized — the detection
// service hashes every request's graph to form its cache key, and a
// cache hit must not pay an O(n+m) rehash of a static value. Concurrent
// first calls may both compute; they store the identical value, so the
// race is benign.
func (g *Graph) Fingerprint() Fingerprint {
	return g.memo().fp
}

func (g *Graph) memo() *fpMemo {
	if m := g.fpm.Load(); m != nil {
		return m
	}
	var m *fpMemo
	if r := g.fpr.Load(); r != nil {
		m = g.resumedFingerprint(r)
	} else {
		m = g.fullFingerprint()
	}
	g.fpm.Store(m)
	// Release the parent link only after the memo is published, so a racing
	// reader never sees both unset and recomputes from scratch needlessly.
	g.fpr.Store(nil)
	return m
}

// fullFingerprint computes the hash from word zero: two independent
// accumulator lanes absorb the vertex count, every row boundary and every
// CSR target, packing two int32 values per absorbed word. Cost is one pass
// over the CSR; the only allocation is the checkpoint slice.
func (g *Graph) fullFingerprint() *fpMemo {
	a := newFPAbsorber(g.NumNodes())
	// Absorb offsets and targets pairwise. The offsets delimit rows (so
	// ["0 1","2"] and ["0","1 2"] differ even with equal target streams),
	// and the targets are each row's sorted adjacency list.
	a.absorb(g.offsets, 0)
	a.absorb(g.targets, 0)
	return &fpMemo{fp: Fingerprint{a.h0, a.h1}, cks: a.cks}
}

// resumedFingerprint computes the identical hash by restarting the stream
// from the parent's last checkpoint inside the clean shared prefix. The
// splice path guarantees parent and child have equal vertex counts, so the
// two streams agree on word 0, on pair alignment, and on every offsets word
// before r.dirtyWord; resuming therefore absorbs the same words a full pass
// would from that point on — same function, skipped prefix.
func (g *Graph) resumedFingerprint(r *fpResume) *fpMemo {
	pm := r.parent.memo()
	j := r.dirtyWord / fpBlockWords // whole clean blocks shared with parent
	if j == 0 || j > len(pm.cks) {
		return g.fullFingerprint()
	}
	ck := pm.cks[j-1]
	a := fpAbsorber{h0: ck[0], h1: ck[1], words: j * fpBlockWords}
	a.cks = append(make([]Fingerprint, 0, len(pm.cks)), pm.cks[:j]...)
	// Word w ≥ 1 of the stream is offsets pair w-1, so the first word not
	// covered by the checkpoint starts at offsets index 2*(j*fpBlockWords-1).
	// The splice path's dirtyWord always lies inside the offsets region
	// (an edge insert at row u shifts offsets[u+1:]), so the resume point
	// does too: j*fpBlockWords ≤ dirtyWord ≤ 1+(len(offsets)-1)/2.
	a.absorb(g.offsets, 2*(j*fpBlockWords-1))
	a.absorb(g.targets, 0)
	return &fpMemo{fp: Fingerprint{a.h0, a.h1}, cks: a.cks}
}

// noteSpliceParent records the fingerprint-resume link on a freshly spliced
// graph: the smallest row that received an insertion determines the first
// absorbed word that may differ from the parent's stream. Must be called
// before the graph is published (it is not synchronized with readers).
func (g *Graph) noteSpliceParent(parent *Graph, firstDirtyRow int) {
	// offsets[i] changes for every i > firstDirtyRow; index firstDirtyRow+1
	// lives in offsets pair (firstDirtyRow+1)/2, which is stream word
	// 1 + (firstDirtyRow+1)/2.
	g.fpr.Store(&fpResume{parent: parent, dirtyWord: 1 + (firstDirtyRow+1)/2})
}
