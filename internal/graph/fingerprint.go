package graph

import "fmt"

// Fingerprint is a stable 128-bit hash of a graph's structure. Two graphs
// have equal fingerprints exactly when their CSR representations are equal
// — and the CSR is canonical (Build sorts and deduplicates edges), so the
// fingerprint is invariant under builder insertion order, duplicate edges
// and self-loops: it identifies the graph itself, not how it was built.
//
// The value is pinned: it must never change across releases, because the
// detection service keys its cross-request result cache on it and recorded
// corpus fingerprints (BENCH_*.json, CI smoke replays) compare against
// stored values. fingerprint_test.go pins known values for exactly this
// reason — if a change to this file trips those tests, the change is wrong.
type Fingerprint [2]uint64

// String renders the fingerprint as 32 hex digits (high word first).
func (f Fingerprint) String() string {
	return fmt.Sprintf("%016x%016x", f[0], f[1])
}

// IsZero reports whether f is the zero fingerprint. The hash of any graph
// (even the empty one) mixes at least the vertex count, so the zero value
// can serve as an "unset" sentinel.
func (f Fingerprint) IsZero() bool { return f[0] == 0 && f[1] == 0 }

// fpMix advances one 64-bit accumulator lane by one value using the
// SplitMix64 finalizer over the running state — the same construction as
// sched.Tag, duplicated here so the graph package (which sched depends on
// nothing in, and which nothing below it may import) stays dependency-free
// and the pinned values are self-contained.
func fpMix(h, v uint64) uint64 {
	h ^= v + 0x9e3779b97f4a7c15 + (h << 6) + (h >> 2)
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	return h
}

// Fingerprint returns the stable 128-bit structural hash of g. It is a
// pure function of (NumNodes, adjacency structure), and since Graph is
// immutable the value is computed once and memoized — the detection
// service hashes every request's graph to form its cache key, and a
// cache hit must not pay an O(n+m) rehash of a static value. Concurrent
// first calls may both compute; they store the identical value, so the
// race is benign.
func (g *Graph) Fingerprint() Fingerprint {
	if fp := g.fp.Load(); fp != nil {
		return *fp
	}
	fp := g.fingerprint()
	g.fp.Store(&fp)
	return fp
}

// fingerprint computes the hash: two independent accumulator lanes with
// distinct initial states absorb the vertex count, every row boundary and
// every CSR target, packing two int32 values per absorbed word. Cost is
// one pass over the CSR, no allocation.
func (g *Graph) fingerprint() Fingerprint {
	// Distinct lane seeds (digits of π and e) so a collision must hold in
	// two decorrelated 64-bit hashes at once.
	h0 := uint64(0x243f6a8885a308d3)
	h1 := uint64(0xb7e151628aed2a6a)
	n := g.NumNodes()
	h0 = fpMix(h0, uint64(n))
	h1 = fpMix(h1, uint64(n)+0x9d)
	// Absorb offsets and targets pairwise. The offsets delimit rows (so
	// ["0 1","2"] and ["0","1 2"] differ even with equal target streams),
	// and the targets are each row's sorted adjacency list.
	absorb := func(vals []int32) {
		i := 0
		for ; i+1 < len(vals); i += 2 {
			w := uint64(uint32(vals[i]))<<32 | uint64(uint32(vals[i+1]))
			h0 = fpMix(h0, w)
			h1 = fpMix(h1, w^0xa5a5a5a5a5a5a5a5)
		}
		if i < len(vals) {
			w := uint64(uint32(vals[i])) | 1<<63 // tail marker: ≠ any pair
			h0 = fpMix(h0, w)
			h1 = fpMix(h1, w^0xa5a5a5a5a5a5a5a5)
		}
	}
	absorb(g.offsets)
	absorb(g.targets)
	return Fingerprint{h0, h1}
}
