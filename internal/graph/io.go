package graph

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// WriteEdgeList writes g in a simple text format: a header line "n m"
// followed by one "u v" line per edge (u < v).
func WriteEdgeList(w io.Writer, g *Graph) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "%d %d\n", g.NumNodes(), g.NumEdges()); err != nil {
		return err
	}
	for _, e := range g.Edges() {
		if _, err := fmt.Fprintf(bw, "%d %d\n", e[0], e[1]); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadEdgeList parses the format produced by WriteEdgeList. Blank lines and
// lines starting with '#' are ignored.
func ReadEdgeList(r io.Reader) (*Graph, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<24)
	var b *Builder
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 2 {
			return nil, fmt.Errorf("graph: line %d: want two fields, got %q", lineNo, line)
		}
		a, err := strconv.Atoi(fields[0])
		if err != nil {
			return nil, fmt.Errorf("graph: line %d: %w", lineNo, err)
		}
		c, err := strconv.Atoi(fields[1])
		if err != nil {
			return nil, fmt.Errorf("graph: line %d: %w", lineNo, err)
		}
		if b == nil {
			b = NewBuilder(a) // header: n m
			b.Grow(c)
			continue
		}
		b.AddEdge(int32(a), int32(c))
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("graph: reading edge list: %w", err)
	}
	if b == nil {
		return nil, fmt.Errorf("graph: empty input")
	}
	return b.Build(), nil
}
