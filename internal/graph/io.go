package graph

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// WriteEdgeList writes g in a simple text format: a header line "n m"
// followed by one "u v" line per edge (u < v).
func WriteEdgeList(w io.Writer, g *Graph) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "%d %d\n", g.NumNodes(), g.NumEdges()); err != nil {
		return err
	}
	for _, e := range g.Edges() {
		if _, err := fmt.Fprintf(bw, "%d %d\n", e[0], e[1]); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// MaxReadNodes caps the vertex count ReadEdgeList accepts — from the
// header and from edge endpoints (which grow the vertex set). The CSR
// allocates O(n) up front, so unvalidated input may not declare an
// arbitrary n.
const MaxReadNodes = 1 << 27

// ReadEdgeList parses the format produced by WriteEdgeList. Blank lines and
// lines starting with '#' are ignored.
func ReadEdgeList(r io.Reader) (*Graph, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<24)
	var b *Builder
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 2 {
			return nil, fmt.Errorf("graph: line %d: want two fields, got %q", lineNo, line)
		}
		a, err := strconv.Atoi(fields[0])
		if err != nil {
			return nil, fmt.Errorf("graph: line %d: %w", lineNo, err)
		}
		c, err := strconv.Atoi(fields[1])
		if err != nil {
			return nil, fmt.Errorf("graph: line %d: %w", lineNo, err)
		}
		if a < 0 || c < 0 {
			return nil, fmt.Errorf("graph: line %d: negative value in %q", lineNo, line)
		}
		// MaxReadNodes bounds both the header's vertex count and every
		// endpoint: Build allocates O(n) slabs up front, so a corrupt or
		// malicious header (or a stray huge endpoint, which would grow
		// the vertex set to match) must error out instead of demanding
		// gigabytes. ~134M vertices is far beyond any corpus this
		// repository handles; raise the constant if that ever changes.
		if b == nil {
			if a > MaxReadNodes {
				return nil, fmt.Errorf("graph: line %d: vertex count %d exceeds the %d limit", lineNo, a, MaxReadNodes)
			}
			b = NewBuilder(a) // header: n m
			// The edge count is a pre-allocation hint, not a contract;
			// clamp it tightly (1M edges = an 8MB slab) so a lying header
			// cannot demand gigabytes (or panic slices.Grow) before a
			// single edge line is read — larger legitimate files just
			// regrow organically.
			b.Grow(min(c, 1<<20))
			continue
		}
		if a > MaxReadNodes || c > MaxReadNodes {
			return nil, fmt.Errorf("graph: line %d: endpoint out of range in %q", lineNo, line)
		}
		b.AddEdge(int32(a), int32(c))
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("graph: reading edge list: %w", err)
	}
	if b == nil {
		return nil, fmt.Errorf("graph: empty input")
	}
	return b.Build(), nil
}
