package graph

import (
	"math/rand/v2"
	"testing"
)

// unionChained is the pairwise O(B²) reference the single-pass UnionN
// replaces.
func unionChained(gs []*Graph) *Graph {
	acc := &Graph{}
	for _, g := range gs {
		acc = Union(acc, g)
	}
	return acc
}

func randomTestGraphs(t *testing.T, rng *rand.Rand, count int) []*Graph {
	t.Helper()
	gs := make([]*Graph, count)
	for i := range gs {
		n := 2 + rng.IntN(40)
		m := rng.IntN(3 * n)
		gs[i] = Gnm(n, m, NewRand(rng.Uint64()))
	}
	return gs
}

func TestUnionNMatchesChainedUnion(t *testing.T) {
	rng := rand.New(rand.NewPCG(6, 60))
	for trial := 0; trial < 25; trial++ {
		gs := randomTestGraphs(t, rng, 1+rng.IntN(8))
		want := unionChained(gs)
		got := UnionN(gs...)
		if err := got.Validate(); err != nil {
			t.Fatalf("trial %d: UnionN invalid: %v", trial, err)
		}
		if got.NumNodes() != want.NumNodes() || got.NumEdges() != want.NumEdges() {
			t.Fatalf("trial %d: size mismatch: got (%d,%d) want (%d,%d)",
				trial, got.NumNodes(), got.NumEdges(), want.NumNodes(), want.NumEdges())
		}
		if got.Fingerprint() != want.Fingerprint() {
			t.Fatalf("trial %d: fingerprint mismatch vs chained Union", trial)
		}
	}
}

func TestUnionNEmptyAndSingle(t *testing.T) {
	if g := UnionN(); g.NumNodes() != 0 || g.NumEdges() != 0 {
		t.Fatalf("UnionN() = (%d,%d), want empty", g.NumNodes(), g.NumEdges())
	}
	g := Gnm(17, 30, NewRand(99))
	u := UnionN(g)
	if u.Fingerprint() != g.Fingerprint() {
		t.Fatal("UnionN(g) differs from g")
	}
}

func TestUnionTaggedComponentMap(t *testing.T) {
	rng := rand.New(rand.NewPCG(7, 70))
	gs := randomTestGraphs(t, rng, 6)
	u, parts := UnionTagged(gs)
	if len(parts.Base) != len(gs) || len(parts.Comp) != u.NumNodes() {
		t.Fatalf("parts sized (%d,%d), want (%d,%d)", len(parts.Base), len(parts.Comp), len(gs), u.NumNodes())
	}
	for i, g := range gs {
		lo, hi := parts.Component(i)
		if int(hi-lo) != g.NumNodes() {
			t.Fatalf("component %d: range [%d,%d) for %d nodes", i, lo, hi, g.NumNodes())
		}
		for v := lo; v < hi; v++ {
			if parts.Comp[v] != int32(i) {
				t.Fatalf("Comp[%d] = %d, want %d", v, parts.Comp[v], i)
			}
		}
		// Every fused row is the input row shifted by the base offset.
		for v := 0; v < g.NumNodes(); v++ {
			gotRow := u.Neighbors(lo + int32(v))
			wantRow := g.Neighbors(int32(v))
			if len(gotRow) != len(wantRow) {
				t.Fatalf("component %d vertex %d: degree %d, want %d", i, v, len(gotRow), len(wantRow))
			}
			for j := range wantRow {
				if gotRow[j] != wantRow[j]+lo {
					t.Fatalf("component %d vertex %d: neighbor %d is %d, want %d",
						i, v, j, gotRow[j], wantRow[j]+lo)
				}
			}
		}
	}
}
