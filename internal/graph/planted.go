package graph

import (
	"fmt"
	"math/rand/v2"
)

// PlantCycle returns a copy of host with a simple cycle of length L planted
// on L random distinct vertices, together with the cycle's vertex sequence.
// The host keeps all of its edges; the planted cycle guarantees that the
// result contains C_L (it may of course contain other cycles too).
func PlantCycle(host *Graph, L int, rng *rand.Rand) (*Graph, []NodeID, error) {
	n := host.NumNodes()
	if L > n {
		return nil, nil, fmt.Errorf("graph: cannot plant C_%d in %d vertices", L, n)
	}
	perm := rng.Perm(n)
	cyc := make([]NodeID, L)
	for i := 0; i < L; i++ {
		cyc[i] = NodeID(perm[i])
	}
	b := NewBuilderCap(n, host.NumEdges()+L)
	for _, e := range host.Edges() {
		b.AddEdge(e[0], e[1])
	}
	for i := 0; i < L; i++ {
		b.AddEdge(cyc[i], cyc[(i+1)%L])
	}
	return b.Build(), cyc, nil
}

// PlantedLight returns a sparse graph on n vertices with average degree
// avgDeg and a planted C_L whose vertices all keep low degree (the "light"
// case of Algorithm 1: every cycle vertex has degree ≤ n^{1/k} for the
// typical parameterizations used in the experiments).
func PlantedLight(n, L int, avgDeg float64, rng *rand.Rand) (*Graph, []NodeID, error) {
	m := int(avgDeg * float64(n) / 2)
	host := Gnm(n, m, rng)
	return PlantCycle(host, L, rng)
}

// PlantedHeavy returns a graph on (at least) n vertices containing a planted
// C_L through a hub vertex of degree ≥ hubDeg (leaves are attached to the
// hub), embedded in a sparse background graph. This exercises the
// heavy-cycle cases (Cases 2 and 3) of Algorithm 1's analysis: the hub has
// degree exceeding n^{1/k} so the cycle is not contained in G[U].
func PlantedHeavy(n, L, hubDeg int, avgDeg float64, rng *rand.Rand) (*Graph, []NodeID, error) {
	if n < L+hubDeg {
		n = L + hubDeg
	}
	m := int(avgDeg * float64(n) / 2)
	host := Gnm(n, m, rng)
	g, cyc, err := PlantCycle(host, L, rng)
	if err != nil {
		return nil, nil, err
	}
	hub := cyc[0]
	b := NewBuilderCap(n, g.NumEdges()+hubDeg)
	for _, e := range g.Edges() {
		b.AddEdge(e[0], e[1])
	}
	// Raise the hub's degree by connecting it to hubDeg random vertices
	// outside the cycle.
	onCycle := make(map[NodeID]struct{}, L)
	for _, v := range cyc {
		onCycle[v] = struct{}{}
	}
	added := 0
	for attempt := 0; added < hubDeg && attempt < 20*hubDeg+100; attempt++ {
		v := NodeID(rng.Int32N(int32(n)))
		if v == hub {
			continue
		}
		if _, on := onCycle[v]; on {
			continue
		}
		if g.HasEdge(hub, v) {
			continue
		}
		b.AddEdge(hub, v)
		added++
	}
	return b.Build(), cyc, nil
}

// HighGirth returns a graph on n vertices with up to m edges and girth
// strictly greater than minGirth: edges are inserted only when the two
// endpoints are currently at distance ≥ minGirth, so every created cycle has
// length ≥ minGirth+1. These are the guaranteed C_ℓ-free (ℓ ≤ minGirth)
// instances for false-positive experiments.
func HighGirth(n, m, minGirth int, rng *rand.Rand) *Graph {
	adj := make([][]int32, n)
	dist := make([]int32, n)
	queue := make([]int32, 0, n)
	edges := make([][2]NodeID, 0, m)
	// Bounded BFS over the dynamic adjacency structure.
	farEnough := func(u, v int32) bool {
		for i := range dist {
			dist[i] = -1
		}
		dist[u] = 0
		queue = append(queue[:0], u)
		for len(queue) > 0 {
			x := queue[0]
			queue = queue[1:]
			if int(dist[x]) >= minGirth-1 {
				continue
			}
			for _, w := range adj[x] {
				if dist[w] < 0 {
					if w == v {
						return false
					}
					dist[w] = dist[x] + 1
					queue = append(queue, w)
				}
			}
		}
		return true
	}
	attempts := 0
	for len(edges) < m && attempts < 50*m+1000 {
		attempts++
		u := rng.Int32N(int32(n))
		v := rng.Int32N(int32(n))
		if u == v {
			continue
		}
		if !farEnough(u, v) {
			continue
		}
		adj[u] = append(adj[u], v)
		adj[v] = append(adj[v], u)
		edges = append(edges, [2]NodeID{u, v})
	}
	return FromEdges(n, edges)
}
