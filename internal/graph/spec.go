package graph

import (
	"fmt"
	"math"
	"os"
	"strconv"
	"strings"
)

// SpecHelp documents the generator-spec mini-language accepted by
// FromSpec, shared by the cycledetect, cycleserved and cycleload commands.
const SpecHelp = `gnm:N:M          Erdős–Rényi G(N,M)
planted:N:L:AVG  sparse host (avg degree AVG) + planted C_L
heavy:N:L:HUB    planted C_L through a degree-HUB hub
highgirth:N:M:G  girth > G
pg:Q             PG(2,Q) point–line incidence graph (C₄-free)
file:PATH        edge-list file ("n m" header then "u v" lines)`

// FromSpec builds a graph from a generator spec string (see SpecHelp for
// the accepted forms). Randomized generators draw from NewRand(seed), so a
// (spec, seed) pair names one reproducible graph — the detection service's
// corpus registry and the load harness rely on exactly that.
func FromSpec(spec string, seed uint64) (*Graph, error) {
	parts := strings.Split(spec, ":")
	atoi := func(i int) (int, error) {
		if i >= len(parts) {
			return 0, fmt.Errorf("graph: generator %q: missing field %d", spec, i)
		}
		return strconv.Atoi(parts[i])
	}
	atof := func(i int) (float64, error) {
		if i >= len(parts) {
			return 0, fmt.Errorf("graph: generator %q: missing field %d", spec, i)
		}
		return strconv.ParseFloat(parts[i], 64)
	}
	rng := NewRand(seed)
	switch parts[0] {
	case "gnm":
		n, err := atoi(1)
		if err != nil {
			return nil, err
		}
		m, err := atoi(2)
		if err != nil {
			return nil, err
		}
		return Gnm(n, m, rng), nil
	case "planted":
		n, err := atoi(1)
		if err != nil {
			return nil, err
		}
		l, err := atoi(2)
		if err != nil {
			return nil, err
		}
		avg, err := atof(3)
		if err != nil {
			return nil, err
		}
		g, _, err := PlantedLight(n, l, avg, rng)
		return g, err
	case "heavy":
		n, err := atoi(1)
		if err != nil {
			return nil, err
		}
		l, err := atoi(2)
		if err != nil {
			return nil, err
		}
		hub, err := atoi(3)
		if err != nil {
			return nil, err
		}
		g, _, err := PlantedHeavy(n, l, hub, 1.5, rng)
		return g, err
	case "highgirth":
		n, err := atoi(1)
		if err != nil {
			return nil, err
		}
		m, err := atoi(2)
		if err != nil {
			return nil, err
		}
		girth, err := atoi(3)
		if err != nil {
			return nil, err
		}
		return HighGirth(n, m, girth, rng), nil
	case "pg":
		q, err := atoi(1)
		if err != nil {
			return nil, err
		}
		return ProjectivePlaneIncidence(q)
	case "file":
		if len(parts) < 2 {
			return nil, fmt.Errorf("graph: file generator needs a path")
		}
		f, err := os.Open(strings.Join(parts[1:], ":"))
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return ReadEdgeList(f)
	default:
		return nil, fmt.Errorf("graph: unknown generator %q", parts[0])
	}
}

// SpecCost parses a generator spec and reports its kind together with a
// conservative upper estimate of the graph it would build — vertices and
// edges — WITHOUT generating anything. Servers that accept specs from
// untrusted clients use it for admission control: bounding n/m before
// running a generator, and refusing kinds that touch server-side state
// (the "file" kind reports zero cost because the path's size is
// unknowable from the spec alone — callers that cannot trust the spec
// author must reject it outright).
func SpecCost(spec string) (kind string, n, m int, err error) {
	parts := strings.Split(spec, ":")
	kind = parts[0]
	atoi := func(i int) (int, error) {
		if i >= len(parts) {
			return 0, fmt.Errorf("graph: generator %q: missing field %d", spec, i)
		}
		return strconv.Atoi(parts[i])
	}
	atof := func(i int) (float64, error) {
		if i >= len(parts) {
			return 0, fmt.Errorf("graph: generator %q: missing field %d", spec, i)
		}
		return strconv.ParseFloat(parts[i], 64)
	}
	switch kind {
	case "gnm", "highgirth":
		// Both declare n and m directly (highgirth's m is a target the
		// generator never exceeds).
		if n, err = atoi(1); err != nil {
			return kind, 0, 0, err
		}
		m, err = atoi(2)
		return kind, n, m, err
	case "planted":
		var avg float64
		if n, err = atoi(1); err != nil {
			return kind, 0, 0, err
		}
		if _, err = atoi(2); err != nil { // cycle length: validated, not a cost
			return kind, 0, 0, err
		}
		if avg, err = atof(3); err != nil {
			return kind, 0, 0, err
		}
		// Host edges ≈ n·avg/2, plus at most n cycle edges.
		return kind, n, int(float64(n)*avg/2) + n, nil
	case "heavy":
		var hub int
		if n, err = atoi(1); err != nil {
			return kind, 0, 0, err
		}
		if _, err = atoi(2); err != nil {
			return kind, 0, 0, err
		}
		if hub, err = atoi(3); err != nil {
			return kind, 0, 0, err
		}
		// Fixed host avg degree 1.5 (< n edges), plus hub spokes, plus at
		// most n cycle edges.
		return kind, n, n + hub + n, nil
	case "pg":
		var q int
		if q, err = atoi(1); err != nil {
			return kind, 0, 0, err
		}
		if q < 0 || q > 1<<20 {
			// Past any plausible admission bound; report saturated costs
			// instead of overflowing q².
			return kind, math.MaxInt, math.MaxInt, nil
		}
		p := q*q + q + 1 // points (= lines) of PG(2,q)
		return kind, 2 * p, p * (q + 1), nil
	case "file":
		if len(parts) < 2 {
			return kind, 0, 0, fmt.Errorf("graph: file generator needs a path")
		}
		return kind, 0, 0, nil
	default:
		return kind, 0, 0, fmt.Errorf("graph: unknown generator %q", kind)
	}
}
