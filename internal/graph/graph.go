package graph

import (
	"fmt"
	"slices"
	"sync/atomic"
)

// NodeID identifies a vertex. Vertices are always 0..N-1.
type NodeID = int32

// Graph is an immutable simple undirected graph in CSR (compressed sparse
// row) form. The zero value is the empty graph.
type Graph struct {
	offsets []int32 // len n+1; row pointers into targets
	targets []int32 // concatenated sorted adjacency lists
	// fpm memoizes Fingerprint (immutability makes the hash a constant)
	// together with its absorb-block checkpoints; fpr optionally links a
	// spliced graph to its parent so that first computation can resume
	// from the parent's checkpoints instead of rehashing from word zero.
	fpm atomic.Pointer[fpMemo]
	fpr atomic.Pointer[fpResume]
}

// NumNodes returns the number of vertices.
func (g *Graph) NumNodes() int {
	if len(g.offsets) == 0 {
		return 0
	}
	return len(g.offsets) - 1
}

// NumEdges returns the number of undirected edges.
func (g *Graph) NumEdges() int { return len(g.targets) / 2 }

// Degree returns the degree of v.
func (g *Graph) Degree(v NodeID) int {
	return int(g.offsets[v+1] - g.offsets[v])
}

// Neighbors returns the sorted adjacency list of v. The returned slice
// aliases internal storage and must not be modified.
func (g *Graph) Neighbors(v NodeID) []int32 {
	return g.targets[g.offsets[v]:g.offsets[v+1]]
}

// HasEdge reports whether {u,v} is an edge.
func (g *Graph) HasEdge(u, v NodeID) bool {
	_, found := slices.BinarySearch(g.Neighbors(u), v)
	return found
}

// MaxDegree returns the maximum degree, or 0 for the empty graph.
func (g *Graph) MaxDegree() int {
	best := 0
	for v := 0; v < g.NumNodes(); v++ {
		if d := g.Degree(NodeID(v)); d > best {
			best = d
		}
	}
	return best
}

// Edges returns all edges as pairs with u < v, in lexicographic order.
func (g *Graph) Edges() [][2]NodeID {
	out := make([][2]NodeID, 0, g.NumEdges())
	for u := NodeID(0); int(u) < g.NumNodes(); u++ {
		for _, v := range g.Neighbors(u) {
			if u < v {
				out = append(out, [2]NodeID{u, v})
			}
		}
	}
	return out
}

// Builder accumulates edges and produces a Graph. Duplicate edges and
// self-loops are dropped. The zero value is not usable; call NewBuilder.
// Edges are stored packed (u<<32 | v with u < v), so sorting them is a
// plain integer sort and lexicographic edge order is key order.
type Builder struct {
	n     int
	edges []uint64
}

// NewBuilder returns a builder for a graph on n vertices.
func NewBuilder(n int) *Builder {
	return &Builder{n: n}
}

// NewBuilderCap returns a builder for a graph on n vertices with room for
// edgeCap edges pre-allocated. Generators that know their edge count up
// front use this to avoid append growth.
func NewBuilderCap(n, edgeCap int) *Builder {
	return &Builder{n: n, edges: make([]uint64, 0, max(edgeCap, 0))}
}

// Grow ensures capacity for at least extra additional edges.
func (b *Builder) Grow(extra int) {
	b.edges = slices.Grow(b.edges, extra)
}

// AddEdge records the undirected edge {u,v}. Self-loops are ignored.
// Out-of-range endpoints grow the vertex set.
func (b *Builder) AddEdge(u, v NodeID) {
	if u == v {
		return
	}
	if u > v {
		u, v = v, u
	}
	if int(v) >= b.n {
		b.n = int(v) + 1
	}
	b.edges = append(b.edges, uint64(uint32(u))<<32|uint64(uint32(v)))
}

// NumNodes returns the current number of vertices.
func (b *Builder) NumNodes() int { return b.n }

// AddNodes ensures the graph has at least n vertices.
func (b *Builder) AddNodes(n int) {
	if n > b.n {
		b.n = n
	}
}

// Build produces the immutable graph. The builder may be reused afterwards.
func (b *Builder) Build() *Graph {
	slices.Sort(b.edges)
	b.edges = slices.Compact(b.edges)
	deg := make([]int32, b.n+1)
	for _, e := range b.edges {
		deg[int32(e>>32)+1]++
		deg[int32(uint32(e))+1]++
	}
	offsets := make([]int32, b.n+1)
	for i := 1; i <= b.n; i++ {
		offsets[i] = offsets[i-1] + deg[i]
	}
	targets := make([]int32, offsets[b.n])
	cursor := make([]int32, b.n)
	copy(cursor, offsets[:b.n])
	// Single pass over the sorted unique edge list leaves every row sorted:
	// row w first receives its back-edges {u,w} (u < w, in ascending u —
	// they sort before w's own block) and then its forward edges {w,v}
	// (v > w, in ascending v), so no per-row post-sort is needed.
	for _, e := range b.edges {
		u, v := int32(e>>32), int32(uint32(e))
		targets[cursor[u]] = v
		cursor[u]++
		targets[cursor[v]] = u
		cursor[v]++
	}
	return &Graph{offsets: offsets, targets: targets}
}

// FromEdges builds a graph on n vertices from the given edge list.
func FromEdges(n int, edges [][2]NodeID) *Graph {
	b := NewBuilderCap(n, len(edges))
	for _, e := range edges {
		b.AddEdge(e[0], e[1])
	}
	return b.Build()
}

// WithEdges returns a new graph equal to g plus the given undirected
// edges. Duplicates (of existing or new edges) and self-loops are
// dropped, and endpoints beyond the current vertex count grow the vertex
// set, exactly as Builder.AddEdge. g itself is never modified — Graph is
// immutable, so mutation is copy-on-write: the caller installs the
// returned value while readers holding the old pointer keep a fully
// consistent snapshot (and fingerprint) of the pre-mutation graph.
// Negative endpoints or endpoints beyond MaxReadNodes are rejected.
//
// When the added edges grow no vertices, the new CSR is produced by
// splicing only the dirty rows of g's CSR (see spliceEdges) instead of
// rebuilding through a Builder; the result is bit-identical either way
// because the CSR is canonical. If every added edge is a duplicate or a
// self-loop the mutation is a no-op and WithEdges returns g itself —
// same value, same pointer, same memoized fingerprint.
func (g *Graph) WithEdges(edges [][2]NodeID) (*Graph, error) {
	for i, e := range edges {
		if e[0] < 0 || e[1] < 0 || int(e[0]) > MaxReadNodes || int(e[1]) > MaxReadNodes {
			return nil, fmt.Errorf("graph: added edge %d has endpoint out of range: [%d,%d]", i, e[0], e[1])
		}
	}
	if ng, ok := g.spliceEdges(edges); ok {
		return ng, nil
	}
	b := NewBuilderCap(g.NumNodes(), g.NumEdges()+len(edges))
	for u := NodeID(0); int(u) < g.NumNodes(); u++ {
		for _, v := range g.Neighbors(u) {
			if u < v {
				b.AddEdge(u, v)
			}
		}
	}
	for _, e := range edges {
		b.AddEdge(e[0], e[1])
	}
	return b.Build(), nil
}

// spliceEdges is the incremental WithEdges fast path. Precondition: every
// added endpoint already lies in [0, n) — an edge that grows the vertex
// set shifts every row boundary and renders no prefix reusable, so those
// mutations take the Builder rebuild (ok == false). Otherwise the new CSR
// equals g's except in the rows that receive insertions: offsets shift by
// the number of directed insertions before them, and each dirty row is a
// sorted merge of its old adjacency list with its new targets. Clean spans
// between dirty rows are bulk-copied. The result carries a fingerprint-
// resume link to g (see noteSpliceParent).
func (g *Graph) spliceEdges(edges [][2]NodeID) (*Graph, bool) {
	n := g.NumNodes()
	// Canonicalize exactly as Builder.Build: pack u<v keys, drop
	// self-loops, sort, dedupe — then drop edges g already has.
	packed := make([]uint64, 0, len(edges))
	for _, e := range edges {
		u, v := e[0], e[1]
		if u == v {
			continue
		}
		if int(u) >= n || int(v) >= n {
			return nil, false
		}
		if u > v {
			u, v = v, u
		}
		packed = append(packed, uint64(uint32(u))<<32|uint64(uint32(v)))
	}
	slices.Sort(packed)
	packed = slices.Compact(packed)
	fresh := packed[:0]
	for _, e := range packed {
		if !g.HasEdge(int32(e>>32), int32(uint32(e))) {
			fresh = append(fresh, e)
		}
	}
	if len(fresh) == 0 {
		// No-op mutation: the canonical CSR is unchanged, so the "new"
		// graph IS g. Returning the same pointer lets callers (store WAL,
		// service corpus) detect and skip the whole mutation.
		return g, true
	}
	// Each undirected edge inserts into two rows; sorting the directed
	// (row, target) pairs groups insertions by row in target order.
	ins := make([]uint64, 0, 2*len(fresh))
	for _, e := range fresh {
		u, v := e>>32, uint64(uint32(e))
		ins = append(ins, u<<32|v, v<<32|u)
	}
	slices.Sort(ins)

	offsets := make([]int32, n+1)
	targets := make([]int32, len(g.targets)+len(ins))
	pos, src := 0, 0 // write / read cursors into targets / g.targets
	row := 0         // next row whose offset is unwritten
	for ii := 0; ii < len(ins); {
		dirty := int(ins[ii] >> 32)
		// Clean span [row, dirty): offsets shift uniformly, targets copy.
		shift := int32(pos - src)
		for ; row <= dirty; row++ {
			offsets[row] = g.offsets[row] + shift
		}
		spanEnd := int(g.offsets[dirty])
		copy(targets[pos:], g.targets[src:spanEnd])
		pos += spanEnd - src
		src = spanEnd
		// Dirty row: sorted merge of the old row with its insertions.
		start := ii
		for ii < len(ins) && int(ins[ii]>>32) == dirty {
			ii++
		}
		adds := ins[start:ii]
		rowEnd := int(g.offsets[dirty+1])
		ai := 0
		for _, w := range g.targets[src:rowEnd] {
			for ai < len(adds) && int32(uint32(adds[ai])) < w {
				targets[pos] = int32(uint32(adds[ai]))
				pos++
				ai++
			}
			targets[pos] = w
			pos++
		}
		for ; ai < len(adds); ai++ {
			targets[pos] = int32(uint32(adds[ai]))
			pos++
		}
		src = rowEnd
	}
	shift := int32(pos - src)
	for ; row <= n; row++ {
		offsets[row] = g.offsets[row] + shift
	}
	copy(targets[pos:], g.targets[src:])

	ng := &Graph{offsets: offsets, targets: targets}
	ng.noteSpliceParent(g, int(ins[0]>>32))
	return ng, true
}

// InducedSubgraph returns the subgraph induced by the vertices with
// keep[v] == true, together with the mapping from new IDs to original IDs.
func (g *Graph) InducedSubgraph(keep []bool) (*Graph, []NodeID) {
	n := g.NumNodes()
	remap := make([]int32, n)
	orig := make([]NodeID, 0, n)
	for v := 0; v < n; v++ {
		if keep[v] {
			remap[v] = int32(len(orig))
			orig = append(orig, NodeID(v))
		} else {
			remap[v] = -1
		}
	}
	b := NewBuilder(len(orig))
	for _, u := range orig {
		for _, w := range g.Neighbors(u) {
			if keep[w] && u < w {
				b.AddEdge(remap[u], remap[w])
			}
		}
	}
	return b.Build(), orig
}

// ConnectedComponents returns, for each vertex, its component index, and the
// number of components.
func (g *Graph) ConnectedComponents() ([]int32, int) {
	n := g.NumNodes()
	comp := make([]int32, n)
	for i := range comp {
		comp[i] = -1
	}
	next := int32(0)
	queue := make([]int32, 0, n)
	for s := 0; s < n; s++ {
		if comp[s] >= 0 {
			continue
		}
		comp[s] = next
		queue = append(queue[:0], int32(s))
		for len(queue) > 0 {
			u := queue[0]
			queue = queue[1:]
			for _, w := range g.Neighbors(u) {
				if comp[w] < 0 {
					comp[w] = next
					queue = append(queue, w)
				}
			}
		}
		next++
	}
	return comp, int(next)
}

// BFSDistances runs a breadth-first search from src and returns the distance
// array (-1 for unreachable vertices).
func (g *Graph) BFSDistances(src NodeID) []int32 {
	n := g.NumNodes()
	dist := make([]int32, n)
	for i := range dist {
		dist[i] = -1
	}
	dist[src] = 0
	queue := make([]int32, 0, n)
	queue = append(queue, int32(src))
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, w := range g.Neighbors(u) {
			if dist[w] < 0 {
				dist[w] = dist[u] + 1
				queue = append(queue, w)
			}
		}
	}
	return dist
}

// Diameter returns the exact diameter of the graph (max eccentricity over
// all vertices), or -1 if the graph is disconnected or empty. It runs a BFS
// from every vertex and is intended for tests and small instances.
func (g *Graph) Diameter() int {
	n := g.NumNodes()
	if n == 0 {
		return -1
	}
	best := 0
	for v := 0; v < n; v++ {
		dist := g.BFSDistances(NodeID(v))
		for _, d := range dist {
			if d < 0 {
				return -1
			}
			if int(d) > best {
				best = int(d)
			}
		}
	}
	return best
}

// DiameterApprox returns a 2-approximation of the diameter via double BFS
// from src (the eccentricity of the farthest vertex found). Returns -1 for a
// disconnected graph.
func (g *Graph) DiameterApprox(src NodeID) int {
	dist := g.BFSDistances(src)
	far, best := src, int32(0)
	for v, d := range dist {
		if d < 0 {
			return -1
		}
		if d > best {
			best, far = d, NodeID(v)
		}
	}
	dist = g.BFSDistances(far)
	best = 0
	for _, d := range dist {
		if d > best {
			best = d
		}
	}
	return int(best)
}

// Validate checks structural invariants of the CSR representation. It is
// used by property tests on builders and generators.
func (g *Graph) Validate() error {
	n := g.NumNodes()
	for v := 0; v < n; v++ {
		row := g.Neighbors(NodeID(v))
		for i, w := range row {
			if int(w) < 0 || int(w) >= n {
				return fmt.Errorf("vertex %d: neighbor %d out of range", v, w)
			}
			if int(w) == v {
				return fmt.Errorf("vertex %d: self-loop", v)
			}
			if i > 0 && row[i-1] >= w {
				return fmt.Errorf("vertex %d: adjacency not strictly sorted", v)
			}
			if !g.HasEdge(w, NodeID(v)) {
				return fmt.Errorf("edge {%d,%d} not symmetric", v, w)
			}
		}
	}
	return nil
}
