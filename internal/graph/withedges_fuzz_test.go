package graph

import (
	"encoding/binary"
	"slices"
	"testing"
)

// fuzzEdges decodes a byte stream into an edge list: pairs of little-endian
// uint16 values, optionally biased into a small vertex range so edges
// actually collide (duplicates, shared rows) instead of spraying a sparse
// random bipartite-ish cloud.
func fuzzEdges(data []byte, modulo int) [][2]NodeID {
	edges := make([][2]NodeID, 0, len(data)/4)
	for i := 0; i+3 < len(data); i += 4 {
		u := NodeID(binary.LittleEndian.Uint16(data[i:]))
		v := NodeID(binary.LittleEndian.Uint16(data[i+2:]))
		if modulo > 0 {
			u %= NodeID(modulo)
			v %= NodeID(modulo)
		}
		edges = append(edges, [2]NodeID{u, v})
	}
	return edges
}

// FuzzWithEdges cross-checks the splice fast path against the Builder
// rebuild on arbitrary (base edge list, added edge list) pairs: both must
// produce the identical canonical CSR and fingerprint, errors may occur
// only for the documented out-of-range endpoints (which fuzzEdges cannot
// generate — uint16 endpoints are always within [0, MaxReadNodes]), and a
// batch adding nothing new must return the base graph pointer itself.
func FuzzWithEdges(f *testing.F) {
	pack := func(es ...uint16) []byte {
		b := make([]byte, 2*len(es))
		for i, e := range es {
			binary.LittleEndian.PutUint16(b[2*i:], e)
		}
		return b
	}
	// Boundary seeds: row growth within existing vertices, vertex growth,
	// duplicates of base edges, self-loops, empty batch, batch into the
	// empty graph, insertions at row 0 and at the last row.
	f.Add(pack(0, 1, 1, 2), pack(0, 2), uint8(8))        // row growth, no vertex growth
	f.Add(pack(0, 1), pack(5, 9), uint8(0))              // vertex growth: rebuild path
	f.Add(pack(0, 1, 1, 2), pack(0, 1, 1, 0), uint8(4))  // duplicates only: no-op
	f.Add(pack(3, 3, 2, 2), pack(1, 1), uint8(4))        // self-loops everywhere
	f.Add(pack(0, 1, 2, 3), []byte{}, uint8(4))          // empty batch
	f.Add([]byte{}, pack(0, 1, 2, 3), uint8(0))          // mutation of the empty graph
	f.Add(pack(1, 2, 1, 3), pack(0, 1, 3, 1), uint8(16)) // head of row 0, tail merges
	f.Add(pack(0, 7, 6, 7), pack(7, 5, 7, 0), uint8(8))  // last row dirty twice
	f.Fuzz(func(t *testing.T, baseBytes, addBytes []byte, mod uint8) {
		modulo := int(mod)
		baseEdges := fuzzEdges(baseBytes, modulo)
		addEdges := fuzzEdges(addBytes, modulo)
		var n int
		for _, e := range baseEdges {
			if e[0] != e[1] {
				n = max(n, int(e[0])+1, int(e[1])+1)
			}
		}
		base := FromEdges(n, baseEdges)

		got, err := base.WithEdges(addEdges)
		if err != nil {
			t.Fatalf("WithEdges: unexpected error for in-range endpoints: %v", err)
		}
		want := withEdgesRebuild(base, addEdges)
		if !slices.Equal(got.offsets, want.offsets) || !slices.Equal(got.targets, want.targets) {
			t.Fatalf("CSR diverges:\nbase=%v add=%v\n got offsets=%v targets=%v\nwant offsets=%v targets=%v",
				baseEdges, addEdges, got.offsets, got.targets, want.offsets, want.targets)
		}
		if got.Fingerprint() != want.Fingerprint() {
			t.Fatalf("fingerprint diverges: got %v want %v", got.Fingerprint(), want.Fingerprint())
		}
		if err := got.Validate(); err != nil {
			t.Fatalf("Validate: %v", err)
		}
		// Pointer-identity contract: identical CSR sizes mean nothing was
		// added, and that exact case must short-circuit to the same graph.
		if got.NumEdges() == base.NumEdges() && got.NumNodes() == base.NumNodes() && got != base {
			t.Fatal("no-op mutation did not return the base graph pointer")
		}
	})
}
