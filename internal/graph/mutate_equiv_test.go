package graph

import (
	"fmt"
	"math/rand/v2"
	"slices"
	"testing"
)

// withEdgesRebuild is the from-scratch reference for WithEdges: feed every
// existing edge plus the additions through a fresh Builder, exactly as the
// cold path did before the splice fast path existed. The metamorphic suite
// pins the incremental path byte-equal to this at every step.
func withEdgesRebuild(g *Graph, edges [][2]NodeID) *Graph {
	b := NewBuilderCap(g.NumNodes(), g.NumEdges()+len(edges))
	for u := NodeID(0); int(u) < g.NumNodes(); u++ {
		for _, v := range g.Neighbors(u) {
			if u < v {
				b.AddEdge(u, v)
			}
		}
	}
	for _, e := range edges {
		b.AddEdge(e[0], e[1])
	}
	return b.Build()
}

// requireSameCSR fails unless the two graphs have byte-identical CSR
// arrays — not just equal edge sets, the exact canonical representation.
func requireSameCSR(t *testing.T, step int, got, want *Graph) {
	t.Helper()
	if !slices.Equal(got.offsets, want.offsets) {
		t.Fatalf("step %d: offsets diverge:\n got %v\nwant %v", step, got.offsets, want.offsets)
	}
	if !slices.Equal(got.targets, want.targets) {
		t.Fatalf("step %d: targets diverge:\n got %v\nwant %v", step, got.targets, want.targets)
	}
	if got.Fingerprint() != want.Fingerprint() {
		t.Fatalf("step %d: fingerprints diverge: got %v want %v", step, got.Fingerprint(), want.Fingerprint())
	}
}

// randomBatch draws one mutation batch. Most batches stay inside the
// current vertex set (the splice path); some deliberately exercise the
// rebuild path (vertex growth), duplicates, self-loops and empty batches.
func randomBatch(rng *rand.Rand, n int) [][2]NodeID {
	kind := rng.IntN(10)
	if kind == 0 {
		return nil // empty batch: must be a pointer-identical no-op
	}
	size := 1 + rng.IntN(6)
	batch := make([][2]NodeID, 0, size)
	for i := 0; i < size; i++ {
		u := NodeID(rng.IntN(n))
		v := NodeID(rng.IntN(n))
		switch {
		case kind == 1 && i == 0:
			v = u // self-loop: dropped by both paths
		case kind == 2 && i == 0:
			v = NodeID(n + rng.IntN(3)) // vertex growth: forces rebuild
		}
		batch = append(batch, [2]NodeID{u, v})
		if kind == 3 {
			batch = append(batch, [2]NodeID{v, u}) // duplicate, reversed
		}
	}
	return batch
}

// TestMutateEquivalenceRandomSequences is the graph half of the metamorphic
// mutation-equivalence suite: seeded random mutation sequences are applied
// through the incremental WithEdges path and, at every step, compared
// byte-for-byte (CSR arrays and fingerprint) against a from-scratch Builder
// rebuild of the same edge set. Any divergence — in splice row arithmetic,
// dedup handling, or checkpointed fingerprint resume — trips here with the
// seed and step number needed to replay it.
func TestMutateEquivalenceRandomSequences(t *testing.T) {
	const (
		sequences = 8
		steps     = 160 // 8×160 = 1280 randomized mutation steps
	)
	for seq := 0; seq < sequences; seq++ {
		seq := seq
		t.Run(fmt.Sprintf("seed=%d", seq), func(t *testing.T) {
			t.Parallel()
			rng := NewRand(uint64(seq)*0x9e37 + 7)
			n := 24 + rng.IntN(40)
			inc := Gnm(n, n+rng.IntN(2*n), rng)
			allEdges := inc.Edges()
			scratchN := inc.NumNodes()
			for step := 0; step < steps; step++ {
				batch := randomBatch(rng, inc.NumNodes())
				next, err := inc.WithEdges(batch)
				if err != nil {
					t.Fatalf("step %d: WithEdges: %v", step, err)
				}
				ref := withEdgesRebuild(inc, batch)
				requireSameCSR(t, step, next, ref)

				// Cross-check against a from-scratch build of the full
				// accumulated edge list: catches drift that a stepwise
				// reference (itself derived from inc) could miss.
				allEdges = append(allEdges, batch...)
				for _, e := range batch {
					hi := max(int(e[0]), int(e[1])) + 1
					if e[0] != e[1] && hi > scratchN {
						scratchN = hi
					}
				}
				scratch := FromEdges(scratchN, allEdges)
				requireSameCSR(t, step, next, scratch)

				if step%20 == 0 {
					if err := next.Validate(); err != nil {
						t.Fatalf("step %d: Validate: %v", step, err)
					}
				}
				inc = next
			}
		})
	}
}

// TestMutateEquivalenceLargeResume drives mutation chains on a graph big
// enough that the fingerprint absorber records many checkpoints, so the
// resumed hash genuinely skips blocks (small graphs silently fall back to a
// full pass and would not exercise the resume arithmetic at all). Parent
// fingerprints are computed at varying points relative to the child's so
// both resume orders (parent memoized first, parent memoized lazily on
// demand) are covered, including grandchild chains.
func TestMutateEquivalenceLargeResume(t *testing.T) {
	t.Parallel()
	rng := NewRand(42)
	n := 4000
	g := Gnm(n, 4*n, rng) // word stream ≈ 1 + n/2 + 4n words ≫ fpBlockWords
	if wantCks := (1 + (n+1+1)/2 + 4*n) / fpBlockWords; wantCks < 3 {
		t.Fatalf("test graph too small to checkpoint: ~%d blocks", wantCks)
	}
	allEdges := g.Edges()
	for step := 0; step < 40; step++ {
		if step%3 == 0 {
			g.Fingerprint() // memoize eagerly on some parents, lazily on others
		}
		var batch [][2]NodeID
		for i := 0; i < 1+rng.IntN(3); i++ {
			batch = append(batch, [2]NodeID{NodeID(rng.IntN(n)), NodeID(rng.IntN(n))})
		}
		next, err := g.WithEdges(batch)
		if err != nil {
			t.Fatalf("step %d: WithEdges: %v", step, err)
		}
		allEdges = append(allEdges, batch...)
		scratch := FromEdges(n, allEdges)
		if next != g { // no-op batches keep the old memo; nothing to compare
			if got, want := next.Fingerprint(), scratch.Fingerprint(); got != want {
				t.Fatalf("step %d: resumed fingerprint %v != scratch %v", step, got, want)
			}
			if !slices.Equal(next.targets, scratch.targets) || !slices.Equal(next.offsets, scratch.offsets) {
				t.Fatalf("step %d: spliced CSR diverges from scratch build", step)
			}
			// The resumed memo must also reproduce the full pass's
			// checkpoints — a grandchild resumes from THESE.
			full := next.fullFingerprint()
			if !slices.Equal(next.memo().cks, full.cks) {
				t.Fatalf("step %d: resumed checkpoints diverge from full pass", step)
			}
		}
		g = next
	}
}

// TestWithEdgesNoopIdentity pins the no-op contract: a batch whose every
// edge is already present (or a self-loop, or empty) returns g itself —
// the identical pointer, not an equal copy — so the store can skip the WAL
// append and the service can skip the cache work for no-op mutations.
func TestWithEdgesNoopIdentity(t *testing.T) {
	t.Parallel()
	g := FromEdges(6, [][2]NodeID{{0, 1}, {1, 2}, {2, 3}, {3, 0}, {4, 5}})
	for _, tc := range []struct {
		name  string
		batch [][2]NodeID
	}{
		{"empty", nil},
		{"duplicates", [][2]NodeID{{0, 1}, {1, 0}, {3, 2}}},
		{"self-loops", [][2]NodeID{{2, 2}, {5, 5}}},
		{"mixed", [][2]NodeID{{0, 1}, {4, 4}, {5, 4}}},
	} {
		ng, err := g.WithEdges(tc.batch)
		if err != nil {
			t.Fatalf("%s: WithEdges: %v", tc.name, err)
		}
		if ng != g {
			t.Errorf("%s: no-op mutation returned a new graph pointer", tc.name)
		}
	}
	// Sanity: a batch with one genuinely new edge must NOT be a no-op.
	ng, err := g.WithEdges([][2]NodeID{{0, 1}, {0, 2}})
	if err != nil {
		t.Fatalf("WithEdges: %v", err)
	}
	if ng == g {
		t.Fatal("mutation with a fresh edge returned the parent pointer")
	}
}

// TestSpliceBoundaryCases pins the splice row arithmetic on handcrafted
// shapes: insertions into row 0, into the last row, at the head/middle/tail
// of an existing row, into empty rows, consecutive dirty rows, and a batch
// touching every row at once.
func TestSpliceBoundaryCases(t *testing.T) {
	t.Parallel()
	base := FromEdges(8, [][2]NodeID{{1, 3}, {1, 5}, {3, 5}, {6, 7}})
	cases := map[string][][2]NodeID{
		"row0-head":         {{0, 1}},
		"last-row":          {{0, 7}},
		"head-of-row":       {{1, 0}},
		"tail-of-row":       {{1, 7}},
		"middle-of-row":     {{1, 4}},
		"empty-rows":        {{2, 4}},
		"consecutive-dirty": {{2, 3}, {3, 4}, {4, 5}},
		"every-row":         {{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5}, {5, 6}, {6, 0}, {7, 0}},
		"one-row-many":      {{3, 0}, {3, 2}, {3, 4}, {3, 6}, {3, 7}},
	}
	for name, batch := range cases {
		got, err := base.WithEdges(batch)
		if err != nil {
			t.Fatalf("%s: WithEdges: %v", name, err)
		}
		requireSameCSR(t, 0, got, withEdgesRebuild(base, batch))
		if err := got.Validate(); err != nil {
			t.Fatalf("%s: Validate: %v", name, err)
		}
	}
}

// TestWithEdgesRejectsOutOfRange pins the documented error cases: negative
// endpoints and endpoints beyond MaxReadNodes fail loudly on both paths.
func TestWithEdgesRejectsOutOfRange(t *testing.T) {
	t.Parallel()
	g := FromEdges(4, [][2]NodeID{{0, 1}})
	for _, bad := range [][2]NodeID{{-1, 2}, {2, -7}, {0, NodeID(MaxReadNodes + 1)}} {
		if _, err := g.WithEdges([][2]NodeID{bad}); err == nil {
			t.Errorf("WithEdges(%v): want error, got nil", bad)
		}
	}
}
