package graph

import "fmt"

// ProjectivePlaneIncidence returns the point–line incidence graph of the
// projective plane PG(2,q) for a prime q: a bipartite graph with
// 2(q²+q+1) vertices (points first, then lines), degree q+1, Θ(n^{3/2})
// edges, and girth 6 — in particular it is C₄-free. This is the classical
// extremal gadget underlying the Drucker et al. [PODC'14] C₄ lower bound,
// and it doubles as the canonical dense-but-C₄-free instance family.
func ProjectivePlaneIncidence(q int) (*Graph, error) {
	if q < 2 || !isPrime(q) {
		return nil, fmt.Errorf("graph: projective plane order %d is not a supported prime", q)
	}
	pts := canonicalPoints(q)
	index := make(map[[3]int16]int32, len(pts))
	for i, p := range pts {
		index[p] = int32(i)
	}
	nPts := len(pts)                       // q²+q+1
	b := NewBuilderCap(2*nPts, nPts*(q+1)) // incidence graph has (q+1) edges per line
	// Lines have the same canonical representatives as points (duality).
	for li, line := range pts {
		for _, p := range linePoints(line, q) {
			pi, ok := index[canonical(p, q)]
			if !ok {
				return nil, fmt.Errorf("graph: internal error: point %v not canonical", p)
			}
			b.AddEdge(pi, int32(nPts+li))
		}
	}
	return b.Build(), nil
}

func isPrime(q int) bool {
	if q < 2 {
		return false
	}
	for d := 2; d*d <= q; d++ {
		if q%d == 0 {
			return false
		}
	}
	return true
}

// canonicalPoints enumerates one representative of each projective point of
// PG(2,q): (1,y,z), (0,1,z), (0,0,1).
func canonicalPoints(q int) [][3]int16 {
	pts := make([][3]int16, 0, q*q+q+1)
	for y := 0; y < q; y++ {
		for z := 0; z < q; z++ {
			pts = append(pts, [3]int16{1, int16(y), int16(z)})
		}
	}
	for z := 0; z < q; z++ {
		pts = append(pts, [3]int16{0, 1, int16(z)})
	}
	pts = append(pts, [3]int16{0, 0, 1})
	return pts
}

// canonical scales a nonzero homogeneous triple so its first nonzero
// coordinate is 1.
func canonical(p [3]int16, q int) [3]int16 {
	var lead int16
	for _, c := range p {
		if c != 0 {
			lead = c
			break
		}
	}
	inv := modInverse(int(lead), q)
	var out [3]int16
	for i, c := range p {
		out[i] = int16(int(c) * inv % q)
	}
	return out
}

// modInverse returns a^{-1} mod q for prime q via Fermat's little theorem.
func modInverse(a, q int) int {
	return modPow(a%q, q-2, q)
}

func modPow(base, exp, mod int) int {
	result := 1
	base %= mod
	for exp > 0 {
		if exp&1 == 1 {
			result = result * base % mod
		}
		base = base * base % mod
		exp >>= 1
	}
	return result
}

// linePoints returns the q+1 points incident to the line [a:b:c]
// (solutions of ax+by+cz = 0): it finds two independent solutions v1,v2 and
// returns v1, and v1·t + v2 for t in F_q... more precisely the projective
// points of the solution plane are {v2} ∪ {v1 + t·v2 : t ∈ F_q}.
func linePoints(line [3]int16, q int) [][3]int16 {
	v1, v2 := kernelBasis(line, q)
	out := make([][3]int16, 0, q+1)
	out = append(out, v2)
	for t := 0; t < q; t++ {
		var p [3]int16
		for i := 0; i < 3; i++ {
			p[i] = int16((int(v1[i]) + t*int(v2[i])) % q)
		}
		out = append(out, p)
	}
	return out
}

// kernelBasis returns two linearly independent solutions of a·x = 0 over
// F_q for a nonzero row vector a.
func kernelBasis(a [3]int16, q int) (v1, v2 [3]int16) {
	// Find the pivot coordinate.
	pivot := -1
	for i, c := range a {
		if c != 0 {
			pivot = i
			break
		}
	}
	inv := modInverse(int(a[pivot]), q)
	// For each non-pivot coordinate j, the vector e_j - (a_j/a_pivot)·e_pivot
	// is a solution; the two such vectors are independent.
	var basis [][3]int16
	for j := 0; j < 3; j++ {
		if j == pivot {
			continue
		}
		var v [3]int16
		v[j] = 1
		v[pivot] = int16((q - int(a[j])*inv%q) % q)
		basis = append(basis, v)
	}
	return basis[0], basis[1]
}
