package graph

import "testing"

// TestSpecCost pins the admission-control estimates: kind parsing, the
// n/m upper bounds against what the generator actually builds, and the
// error paths a server relies on to reject garbage before generating.
func TestSpecCost(t *testing.T) {
	good := []struct {
		spec string
		kind string
		n, m int
	}{
		{"gnm:100:300", "gnm", 100, 300},
		{"highgirth:200:260:6", "highgirth", 200, 260},
		{"pg:3", "pg", 26, 52}, // p = 13 points, 13 lines of 4 points each
		{"file:/tmp/edges.txt", "file", 0, 0},
		{"file:C:\\edges.txt", "file", 0, 0}, // colons in the path survive
	}
	for _, c := range good {
		kind, n, m, err := SpecCost(c.spec)
		if err != nil {
			t.Fatalf("SpecCost(%q): %v", c.spec, err)
		}
		if kind != c.kind || n != c.n || m != c.m {
			t.Fatalf("SpecCost(%q) = (%s, %d, %d), want (%s, %d, %d)", c.spec, kind, n, m, c.kind, c.n, c.m)
		}
	}

	// For generator kinds the estimate must be an UPPER bound on what
	// FromSpec actually builds — that is the property admission control
	// leans on.
	for _, spec := range []string{"gnm:100:300", "planted:100:4:1.5", "heavy:100:4:10", "highgirth:200:260:6", "pg:3"} {
		_, n, m, err := SpecCost(spec)
		if err != nil {
			t.Fatalf("SpecCost(%q): %v", spec, err)
		}
		g, err := FromSpec(spec, 7)
		if err != nil {
			t.Fatalf("FromSpec(%q): %v", spec, err)
		}
		if g.NumNodes() > n || g.NumEdges() > m {
			t.Fatalf("spec %q built n=%d m=%d, over the SpecCost estimate (%d, %d)",
				spec, g.NumNodes(), g.NumEdges(), n, m)
		}
	}

	// Saturated, not overflowed: a q big enough that q² wraps int64.
	if _, n, m, err := SpecCost("pg:4000000000"); err != nil || n < 0 || m < 0 {
		t.Fatalf("SpecCost(pg:4e9) = (n=%d, m=%d, err=%v), want saturated non-negative costs", n, m, err)
	}

	for _, bad := range []string{"nonsense:1:2", "gnm:100", "gnm:a:b", "planted:100:4:xyz", "file"} {
		if _, _, _, err := SpecCost(bad); err == nil {
			t.Fatalf("SpecCost(%q) succeeded, want error", bad)
		}
	}
}
