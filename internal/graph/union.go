package graph

// UnionParts is the component map of a tagged disjoint union: for every
// vertex of the fused graph, which input graph it came from, and for every
// input graph, the offset its vertices were shifted by. Local and global
// IDs convert by `global = local + Base[i]` / `local = global - Base[Comp[global]]`.
type UnionParts struct {
	// Comp[v] is the index (into the UnionN argument list) of the input
	// graph that vertex v of the union belongs to.
	Comp []int32
	// Base[i] is the ID shift applied to input graph i: its vertex u
	// appears in the union as u + Base[i]. len(Base) == number of inputs,
	// and Base entries are nondecreasing (inputs keep argument order).
	Base []int32
}

// Component returns the half-open global vertex range [lo, hi) of input i.
func (p *UnionParts) Component(i int) (lo, hi int32) {
	lo = p.Base[i]
	if i+1 < len(p.Base) {
		hi = p.Base[i+1]
	} else {
		hi = int32(len(p.Comp))
	}
	return lo, hi
}

// UnionN returns the disjoint union of the given graphs, with graph i's
// vertices shifted past all earlier graphs' vertex blocks. Unlike chaining
// the pairwise Union (which re-copies the accumulated edge list at every
// step, O(B²) total work for B graphs), UnionN sizes the fused CSR once
// and fills it in a single pass over the inputs. UnionN() with no
// arguments returns the empty graph.
func UnionN(gs ...*Graph) *Graph {
	u, _ := UnionTagged(gs)
	return u
}

// UnionTagged is UnionN plus the component map needed to demultiplex the
// union back into its inputs (the fused-session miss path uses it to remap
// witnesses and split cost accounting per request). The inputs' CSR rows
// are already sorted, so each row of the union is a shifted copy of the
// corresponding input row — no re-sort, no dedup pass.
func UnionTagged(gs []*Graph) (*Graph, *UnionParts) {
	totalN, totalT := 0, 0
	for _, g := range gs {
		totalN += g.NumNodes()
		totalT += 2 * g.NumEdges()
	}
	offsets := make([]int32, totalN+1)
	targets := make([]int32, totalT)
	parts := &UnionParts{
		Comp: make([]int32, totalN),
		Base: make([]int32, len(gs)),
	}
	baseN, baseT := int32(0), int32(0)
	for i, g := range gs {
		parts.Base[i] = baseN
		n := g.NumNodes()
		for v := 0; v < n; v++ {
			offsets[int(baseN)+v+1] = baseT + g.offsets[v+1]
			parts.Comp[int(baseN)+v] = int32(i)
		}
		row := targets[baseT : int(baseT)+len(g.targets)]
		for j, w := range g.targets {
			row[j] = w + baseN
		}
		baseN += int32(n)
		baseT += int32(len(g.targets))
	}
	return &Graph{offsets: offsets, targets: targets}, parts
}
