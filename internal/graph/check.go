package graph

import (
	"fmt"
)

// IsSimpleCycle reports whether verts is a simple cycle of length
// wantLen in g: exactly wantLen distinct vertices, consecutive vertices
// adjacent, and the last adjacent to the first.
func IsSimpleCycle(g *Graph, verts []NodeID, wantLen int) error {
	if len(verts) != wantLen {
		return fmt.Errorf("cycle has %d vertices, want %d", len(verts), wantLen)
	}
	if wantLen < 3 {
		return fmt.Errorf("cycle length %d < 3", wantLen)
	}
	seen := make(map[NodeID]struct{}, wantLen)
	for _, v := range verts {
		if int(v) < 0 || int(v) >= g.NumNodes() {
			return fmt.Errorf("vertex %d out of range", v)
		}
		if _, dup := seen[v]; dup {
			return fmt.Errorf("vertex %d repeated", v)
		}
		seen[v] = struct{}{}
	}
	for i := range verts {
		u, v := verts[i], verts[(i+1)%wantLen]
		if !g.HasEdge(u, v) {
			return fmt.Errorf("missing edge {%d,%d}", u, v)
		}
	}
	return nil
}

// FindCycleLen searches for a simple cycle of exactly length L and returns
// its vertices, or nil if none exists. It is an exact exponential-time
// reference procedure intended for validating detectors on test-sized
// graphs: it enumerates simple paths from each canonical start vertex
// (the minimum-ID vertex of the cycle), pruned by BFS distance back to the
// start.
func FindCycleLen(g *Graph, L int) []NodeID {
	if L < 3 {
		return nil
	}
	n := g.NumNodes()
	path := make([]NodeID, 0, L)
	onPath := make([]bool, n)
	for s := 0; s < n; s++ {
		if g.Degree(NodeID(s)) < 2 {
			continue
		}
		dist := bfsDistFrom(g, NodeID(s), NodeID(s))
		path = append(path[:0], NodeID(s))
		onPath[s] = true
		if found := dfsCycle(g, NodeID(s), L, path, onPath, dist); found != nil {
			return found
		}
		onPath[s] = false
	}
	return nil
}

// bfsDistFrom computes BFS distances from src restricted to vertices with
// ID >= minID (the canonicalization used by FindCycleLen).
func bfsDistFrom(g *Graph, src, minID NodeID) []int32 {
	n := g.NumNodes()
	dist := make([]int32, n)
	for i := range dist {
		dist[i] = -1
	}
	dist[src] = 0
	queue := []int32{int32(src)}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, w := range g.Neighbors(u) {
			if w >= minID && dist[w] < 0 {
				dist[w] = dist[u] + 1
				queue = append(queue, w)
			}
		}
	}
	return dist
}

func dfsCycle(g *Graph, start NodeID, L int, path []NodeID, onPath []bool, dist []int32) []NodeID {
	u := path[len(path)-1]
	if len(path) == L {
		// All L vertices placed; the cycle closes iff the last one is
		// adjacent to the start.
		if g.HasEdge(u, start) {
			out := make([]NodeID, L)
			copy(out, path)
			return out
		}
		return nil
	}
	remaining := L - len(path) // edges still to place before closing
	for _, w := range g.Neighbors(u) {
		if w <= start || onPath[w] {
			continue
		}
		// Prune: after placing w, the cycle still has remaining-1 path
		// edges plus the closing edge available, so w must be within
		// distance `remaining` of the start.
		if dist[w] < 0 || int(dist[w]) > remaining {
			continue
		}
		path = append(path, w)
		onPath[w] = true
		if found := dfsCycle(g, start, L, path, onPath, dist); found != nil {
			return found
		}
		onPath[w] = false
		path = path[:len(path)-1]
	}
	return nil
}

// HasCycleLen reports whether g contains a simple cycle of exactly length L.
func HasCycleLen(g *Graph, L int) bool { return FindCycleLen(g, L) != nil }

// Girth returns the length of a shortest cycle in g, or -1 if g is acyclic.
// It runs a BFS from every vertex and, for every non-tree edge (x,y)
// encountered, considers the candidate dist(x)+dist(y)+1; the minimum over
// all roots is the exact girth (the classical O(nm) algorithm: rooted at a
// vertex of a shortest cycle, BFS distances along the cycle are exact, so
// the cycle's "closing" edge realizes the girth).
func Girth(g *Graph) int {
	n := g.NumNodes()
	best := -1
	dist := make([]int32, n)
	parent := make([]int32, n)
	queue := make([]int32, 0, n)
	for s := 0; s < n; s++ {
		for i := range dist {
			dist[i] = -1
			parent[i] = -1
		}
		dist[s] = 0
		queue = append(queue[:0], int32(s))
		for len(queue) > 0 {
			u := queue[0]
			queue = queue[1:]
			if best >= 0 && int(2*dist[u]) >= best {
				// No shorter cycle can be found from this root.
				break
			}
			for _, w := range g.Neighbors(u) {
				switch {
				case dist[w] < 0:
					dist[w] = dist[u] + 1
					parent[w] = u
					queue = append(queue, w)
				case parent[u] != w && parent[w] != u:
					if c := int(dist[u] + dist[w] + 1); best < 0 || c < best {
						best = c
					}
				}
			}
		}
	}
	return best
}

// girthBrute returns the exact girth by trying FindCycleLen for every
// length; used only to cross-validate Girth in tests.
func girthBrute(g *Graph, maxLen int) int {
	for L := 3; L <= maxLen; L++ {
		if HasCycleLen(g, L) {
			return L
		}
	}
	return -1
}
