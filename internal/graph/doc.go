// Package graph provides the static-graph substrate used by every layer of
// the repository: a compact immutable adjacency representation (CSR with
// sorted rows, which the engine's fixed-offset delivery pipeline indexes
// directly), generators for the instance families the experiments need
// (random graphs, planted cycles, high-girth incidence graphs; lower-bound
// gadgets are in package gadget), and exact reference checkers (cycle
// search, girth, diameter) that the test suite uses to validate the
// distributed detectors — every witness any detector reports is
// re-verified with IsSimpleCycle before it reaches a caller.
//
// Determinism contract: generators draw exclusively from the *rand.Rand
// passed in, so a (generator, seed) pair always produces the same graph;
// Builder packs edges into one sorted pass, so graph construction order
// does not leak into adjacency order — Neighbors always returns ascending
// IDs, which the engine's ascending-sender delivery order builds on.
//
// Because the CSR is canonical, Fingerprint — a pinned 128-bit structural
// hash — identifies the graph itself, independent of how it was built;
// the detection service keys its cross-request verdict cache on it, so
// the hash must never change (fingerprint_test.go pins known values).
package graph
