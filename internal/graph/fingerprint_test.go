package graph

import (
	"math/rand/v2"
	"testing"
)

// TestFingerprintPinnedValues pins the fingerprint of known graphs. These
// values are load-bearing: the detection service's result cache and
// recorded corpus fingerprints key on them, so any change to the hash is a
// cache-format break and must be rejected, not re-pinned casually.
func TestFingerprintPinnedValues(t *testing.T) {
	pg, err := ProjectivePlaneIncidence(3)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		g    *Graph
		want string
	}{
		{"empty", FromEdges(0, nil), "3e1f2ef101ddc56f2d30741bbb014171"},
		{"singleton", FromEdges(1, nil), "7226e0fd1a927f649a76020bc1e74888"},
		{"triangle", FromEdges(3, [][2]NodeID{{0, 1}, {1, 2}, {2, 0}}), "a93a7bccd0993f80e59450e4c2f07b44"},
		{"c4", FromEdges(4, [][2]NodeID{{0, 1}, {1, 2}, {2, 3}, {3, 0}}), "5dbb8fda1f9a569c2fa4a8d937fab285"},
		{"gnm-100-250-seed7", Gnm(100, 250, NewRand(7)), "0dc21565f12903e4260e5ee988c79878"},
		{"pg-2-3", pg, "cd3e983838d5d8ebca7694742d601bef"},
	}
	for _, tc := range cases {
		if got := tc.g.Fingerprint().String(); got != tc.want {
			t.Errorf("%s: fingerprint %s, want pinned %s", tc.name, got, tc.want)
		}
	}
}

// TestFingerprintInsertionOrderInvariant builds the same edge set in
// shuffled orders, with duplicates and self-loops sprinkled in, and
// requires one fingerprint.
func TestFingerprintInsertionOrderInvariant(t *testing.T) {
	base := Gnm(200, 600, NewRand(11))
	edges := base.Edges()
	want := base.Fingerprint()
	rng := rand.New(rand.NewPCG(3, 5))
	for trial := 0; trial < 20; trial++ {
		rng.Shuffle(len(edges), func(i, j int) { edges[i], edges[j] = edges[j], edges[i] })
		b := NewBuilder(base.NumNodes())
		for _, e := range edges {
			u, v := e[0], e[1]
			if rng.IntN(2) == 0 {
				u, v = v, u // reversed endpoints
			}
			b.AddEdge(u, v)
			if rng.IntN(4) == 0 {
				b.AddEdge(u, v) // duplicate
			}
			if rng.IntN(8) == 0 {
				b.AddEdge(u, u) // self-loop (dropped by the builder)
			}
		}
		got := b.Build().Fingerprint()
		if got != want {
			t.Fatalf("trial %d: fingerprint %s, want %s", trial, got, want)
		}
	}
}

// TestFingerprintDistinguishesStructure checks that near-miss graphs get
// distinct fingerprints: same target stream split differently across rows,
// one edge flipped, one vertex added.
func TestFingerprintDistinguishesStructure(t *testing.T) {
	g := Gnm(50, 120, NewRand(13))
	seen := map[Fingerprint]string{g.Fingerprint(): "base"}
	add := func(name string, h *Graph) {
		fp := h.Fingerprint()
		if prev, dup := seen[fp]; dup {
			t.Errorf("%s collides with %s: %s", name, prev, fp)
		}
		seen[fp] = name
	}
	// One extra isolated vertex, same edges.
	b := NewBuilder(g.NumNodes() + 1)
	for _, e := range g.Edges() {
		b.AddEdge(e[0], e[1])
	}
	add("extra-vertex", b.Build())
	// Remove one edge; add a different one.
	edges := g.Edges()
	add("drop-edge", FromEdges(g.NumNodes(), edges[1:]))
	swapped := append([][2]NodeID{}, edges[1:]...)
	swapped = append(swapped, [2]NodeID{edges[0][0], (edges[0][1] + 1) % NodeID(g.NumNodes())})
	add("swap-edge", FromEdges(g.NumNodes(), swapped))
	// Empty vs zero-edge graphs of increasing n.
	for n := 0; n < 8; n++ {
		add("edgeless", FromEdges(n, nil))
	}
}

// TestFingerprintCollisionSweep hashes a few hundred generator outputs —
// G(n,m) sweeps, planted instances, high-girth instances, projective
// planes — and requires all fingerprints distinct. With 128 bits, any
// collision here is a hash defect, not bad luck.
func TestFingerprintCollisionSweep(t *testing.T) {
	seen := make(map[Fingerprint]string)
	add := func(name string, g *Graph) {
		t.Helper()
		fp := g.Fingerprint()
		if prev, dup := seen[fp]; dup {
			t.Fatalf("%s collides with %s: %s", name, prev, fp)
		}
		seen[fp] = name
	}
	for seed := uint64(0); seed < 10; seed++ {
		for _, n := range []int{20, 50, 100} {
			add("gnm", Gnm(n, 2*n, NewRand(seed)))
			add("highgirth", HighGirth(n, 3*n/2, 6, NewRand(seed)))
			g, _, err := PlantedLight(n, 4, 1.5, NewRand(seed))
			if err != nil {
				t.Fatal(err)
			}
			add("planted", g)
		}
	}
	for _, q := range []int{2, 3, 5, 7} {
		pg, err := ProjectivePlaneIncidence(q)
		if err != nil {
			t.Fatal(err)
		}
		add("pg", pg)
	}
	if len(seen) < 90 {
		t.Fatalf("sweep produced only %d distinct graphs", len(seen))
	}
}
