package graph

import (
	"fmt"
	"math"
	"math/rand/v2"
)

// NewRand returns the deterministic RNG used across the repository, seeded
// from a single master seed.
func NewRand(seed uint64) *rand.Rand {
	return rand.New(rand.NewPCG(seed, seed^0x9e3779b97f4a7c15))
}

// Gnm samples a uniform simple graph with n vertices and m edges
// (Erdős–Rényi G(n,m)).
func Gnm(n, m int, rng *rand.Rand) *Graph {
	maxEdges := n * (n - 1) / 2
	if m > maxEdges {
		m = maxEdges
	}
	b := NewBuilderCap(n, m)
	seen := make(map[uint64]struct{}, m)
	for len(seen) < m {
		u := rng.Int32N(int32(n))
		v := rng.Int32N(int32(n))
		if u == v {
			continue
		}
		if u > v {
			u, v = v, u
		}
		key := uint64(u)<<32 | uint64(uint32(v))
		if _, dup := seen[key]; dup {
			continue
		}
		seen[key] = struct{}{}
		b.AddEdge(u, v)
	}
	return b.Build()
}

// Gnp samples an Erdős–Rényi G(n,p) graph using geometric skipping, so the
// cost is proportional to the number of edges rather than n².
func Gnp(n int, p float64, rng *rand.Rand) *Graph {
	b := NewBuilderCap(n, int(p*float64(n)*float64(n-1)/2))
	if p <= 0 {
		return b.Build()
	}
	if p >= 1 {
		for u := 0; u < n; u++ {
			for v := u + 1; v < n; v++ {
				b.AddEdge(int32(u), int32(v))
			}
		}
		return b.Build()
	}
	logq := math.Log1p(-p)
	// Enumerate candidate pairs (u,v), u<v, in row-major order with skips.
	idx := int64(-1)
	total := int64(n) * int64(n-1) / 2
	for {
		skip := int64(math.Floor(math.Log(1-rng.Float64()) / logq))
		idx += 1 + skip
		if idx >= total {
			break
		}
		u, v := pairFromIndex(idx, n)
		b.AddEdge(u, v)
	}
	return b.Build()
}

// pairFromIndex maps a linear index in [0, n(n-1)/2) to the corresponding
// pair (u,v) with u < v, enumerated row by row.
func pairFromIndex(idx int64, n int) (int32, int32) {
	u := int64(0)
	rowLen := int64(n - 1)
	for idx >= rowLen {
		idx -= rowLen
		u++
		rowLen--
	}
	return int32(u), int32(u + 1 + idx)
}

// RandomRegular samples a d-regular graph on n vertices via the
// configuration model with rejection of self-loops and multi-edges.
// n*d must be even. It retries until a simple d-regular graph is produced.
func RandomRegular(n, d int, rng *rand.Rand) (*Graph, error) {
	if n*d%2 != 0 {
		return nil, fmt.Errorf("graph: n*d must be even (n=%d d=%d)", n, d)
	}
	if d >= n {
		return nil, fmt.Errorf("graph: degree %d too large for %d vertices", d, n)
	}
	stubs := make([]int32, 0, n*d)
	for attempt := 0; attempt < 200; attempt++ {
		stubs = stubs[:0]
		for v := 0; v < n; v++ {
			for i := 0; i < d; i++ {
				stubs = append(stubs, int32(v))
			}
		}
		rng.Shuffle(len(stubs), func(i, j int) { stubs[i], stubs[j] = stubs[j], stubs[i] })
		ok := true
		seen := make(map[uint64]struct{}, n*d/2)
		for i := 0; i < len(stubs); i += 2 {
			u, v := stubs[i], stubs[i+1]
			if u == v {
				ok = false
				break
			}
			a, c := u, v
			if a > c {
				a, c = c, a
			}
			key := uint64(a)<<32 | uint64(uint32(c))
			if _, dup := seen[key]; dup {
				ok = false
				break
			}
			seen[key] = struct{}{}
		}
		if !ok {
			continue
		}
		b := NewBuilderCap(n, n*d/2)
		for i := 0; i < len(stubs); i += 2 {
			b.AddEdge(stubs[i], stubs[i+1])
		}
		return b.Build(), nil
	}
	return nil, fmt.Errorf("graph: failed to sample %d-regular graph on %d vertices", d, n)
}

// Cycle returns the cycle C_n.
func Cycle(n int) *Graph {
	b := NewBuilderCap(n, n)
	for i := 0; i < n; i++ {
		b.AddEdge(int32(i), int32((i+1)%n))
	}
	return b.Build()
}

// Path returns the path P_n on n vertices.
func Path(n int) *Graph {
	b := NewBuilderCap(n, n-1)
	for i := 0; i+1 < n; i++ {
		b.AddEdge(int32(i), int32(i+1))
	}
	return b.Build()
}

// Grid returns the rows×cols grid graph (girth 4 when both dims ≥ 2).
func Grid(rows, cols int) *Graph {
	b := NewBuilderCap(rows*cols, 2*rows*cols)
	id := func(r, c int) int32 { return int32(r*cols + c) }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if c+1 < cols {
				b.AddEdge(id(r, c), id(r, c+1))
			}
			if r+1 < rows {
				b.AddEdge(id(r, c), id(r+1, c))
			}
		}
	}
	return b.Build()
}

// Hypercube returns the d-dimensional hypercube graph (2^d vertices,
// girth 4 for d ≥ 2).
func Hypercube(d int) *Graph {
	n := 1 << d
	b := NewBuilderCap(n, n*d/2)
	for v := 0; v < n; v++ {
		for bit := 0; bit < d; bit++ {
			w := v ^ (1 << bit)
			if w > v {
				b.AddEdge(int32(v), int32(w))
			}
		}
	}
	return b.Build()
}

// CompleteBipartite returns K_{a,b} (girth 4 when a,b ≥ 2).
func CompleteBipartite(a, b int) *Graph {
	bld := NewBuilderCap(a+b, a*b)
	for i := 0; i < a; i++ {
		for j := 0; j < b; j++ {
			bld.AddEdge(int32(i), int32(a+j))
		}
	}
	return bld.Build()
}

// Theta returns a theta graph: two hub vertices joined by `arms` internally
// disjoint paths, each of the given length (in edges). Any two arms of
// lengths a and b form a cycle of length a+b.
func Theta(arms int, length int) *Graph {
	if length < 1 || arms < 1 {
		return NewBuilder(0).Build()
	}
	b := NewBuilderCap(2, arms*length)
	const hubU, hubV = int32(0), int32(1)
	next := int32(2)
	for a := 0; a < arms; a++ {
		prev := hubU
		for step := 0; step < length-1; step++ {
			b.AddEdge(prev, next)
			prev = next
			next++
		}
		b.AddEdge(prev, hubV)
	}
	return b.Build()
}

// Star returns the star K_{1,leaves} with the hub at vertex 0.
func Star(leaves int) *Graph {
	b := NewBuilderCap(leaves+1, leaves)
	for i := 1; i <= leaves; i++ {
		b.AddEdge(0, int32(i))
	}
	return b.Build()
}

// Tree samples a uniform random labelled tree on n vertices via a Prüfer
// sequence. Trees are the canonical cycle-free instances.
func Tree(n int, rng *rand.Rand) *Graph {
	b := NewBuilderCap(n, n-1)
	if n <= 1 {
		return b.Build()
	}
	if n == 2 {
		b.AddEdge(0, 1)
		return b.Build()
	}
	prufer := make([]int32, n-2)
	deg := make([]int32, n)
	for i := range deg {
		deg[i] = 1
	}
	for i := range prufer {
		prufer[i] = rng.Int32N(int32(n))
		deg[prufer[i]]++
	}
	// Standard decoding with a pointer-scan over leaves.
	ptr := int32(0)
	for deg[ptr] != 1 {
		ptr++
	}
	leaf := ptr
	for _, v := range prufer {
		b.AddEdge(leaf, v)
		deg[v]--
		if deg[v] == 1 && v < ptr {
			leaf = v
		} else {
			ptr++
			for deg[ptr] != 1 {
				ptr++
			}
			leaf = ptr
		}
	}
	// Two leaves remain; the larger one is n-1.
	b.AddEdge(leaf, int32(n-1))
	return b.Build()
}

// Union returns the disjoint union of two graphs, with h's vertices shifted
// by g.NumNodes().
func Union(g, h *Graph) *Graph {
	off := int32(g.NumNodes())
	b := NewBuilderCap(g.NumNodes()+h.NumNodes(), g.NumEdges()+h.NumEdges())
	for _, e := range g.Edges() {
		b.AddEdge(e[0], e[1])
	}
	for _, e := range h.Edges() {
		b.AddEdge(e[0]+off, e[1]+off)
	}
	return b.Build()
}
