// Package decomp implements the network-decomposition machinery the paper
// uses to remove the diameter dependence from its quantum algorithms:
//
//   - Lemma 10 (Eden et al. / Elkin–Neiman): a randomized construction of
//     clusters of diameter O(k log n) colored with O(log n) colors such
//     that (1) every node is in at least one cluster, (2) clusters of the
//     same color are at distance ≥ k from each other.
//   - Lemma 9: the diameter-reduction runner — for H-freeness with
//     |V(H)| = k it suffices to run the detector on every connected
//     component of G(i,k) (color-i clusters enlarged by their
//     k-neighborhood), sequentially over colors, in parallel within a
//     color.
//
// The construction is the exponential-shift ball carving of Miller–Peng–Xu
// with shift parameter β = 1/Θ(k) and truncation Δ = Θ(k log n), followed
// by shrinking each carved cluster to its core (nodes at distance > k from
// the cluster boundary). Cores of distinct clusters of one carving are at
// distance ≥ k+1 by construction; each node's k-ball is uncut with
// constant probability per carving, so O(log n) carvings cover every node
// with high probability. The simulation runs the carving centrally and
// charges its distributed cost (Δ+k rounds per carving — the depth of the
// two BFS passes a CONGEST implementation performs).
//
// Determinism contract: all carving randomness derives from the caller's
// seed, and clusters, components and their processing order are emitted in
// a canonical (sorted) order — cluster order must never depend on map
// iteration, because the per-component seeds of the quantum detectors are
// derived from component indices.
package decomp
