package decomp

import (
	"fmt"
	"math"
	"slices"

	"repro/internal/graph"
)

// Cluster is one cluster of the decomposition: the core of a carved ball,
// labelled by the carving iteration (= its color).
type Cluster struct {
	Color   int
	Members []graph.NodeID
}

// Decomposition is the output of Decompose.
type Decomposition struct {
	Clusters []Cluster
	// Colors is the number of carving iterations used (= number of colors).
	Colors int
	// Covered[v] reports whether v belongs to at least one cluster.
	Covered []bool
	// Rounds is the simulated distributed cost of the construction.
	Rounds int
	// Delta is the truncation radius Θ(k log n) used by the carvings.
	Delta int
}

// Separation is the guaranteed distance between same-color clusters.
func (d *Decomposition) Separation(k int) int { return k + 1 }

// Decompose builds a (k, O(k log n), O(log n)) decomposition of g:
// every node is in ≥ 1 cluster, same-color clusters are at distance ≥ k+1,
// and every cluster has (weak) diameter O(k log n). It retries with more
// carvings until full coverage (Las Vegas); failure to cover within the
// retry budget is reported as an error.
func Decompose(g *graph.Graph, k int, seed uint64) (*Decomposition, error) {
	if k < 1 {
		return nil, fmt.Errorf("decomp: k = %d < 1", k)
	}
	n := g.NumNodes()
	if n == 0 {
		return &Decomposition{Covered: []bool{}}, nil
	}
	logN := math.Log(float64(n) + 2)
	beta := 1 / (4 * float64(k))
	delta := int(math.Ceil(2*logN/beta)) + 2*k // Θ(k log n)
	gamma := int(math.Ceil(4 * logN))          // carvings per batch

	rng := graph.NewRand(seed ^ 0xdec0de)
	dec := &Decomposition{Covered: make([]bool, n), Delta: delta}

	covered := 0
	const maxBatches = 8
	for batch := 0; batch < maxBatches && covered < n; batch++ {
		for it := 0; it < gamma && covered < n; it++ {
			color := dec.Colors
			dec.Colors++
			dec.Rounds += delta + k // the two BFS passes of one carving

			owner := carve(g, beta, delta, rng)
			distOut := boundaryDistance(g, owner, k+1)

			// Cores: nodes strictly further than k from their cluster's
			// boundary, grouped by owner. Owners are walked in sorted
			// order — map iteration order would otherwise leak into the
			// cluster (hence component) order, and with it into every
			// downstream per-component seed, making quantum runs
			// irreproducible.
			byOwner := make(map[graph.NodeID][]graph.NodeID)
			for v := 0; v < n; v++ {
				if distOut[v] > int32(k) {
					byOwner[owner[v]] = append(byOwner[owner[v]], graph.NodeID(v))
				}
			}
			owners := make([]graph.NodeID, 0, len(byOwner))
			for o := range byOwner {
				owners = append(owners, o)
			}
			slices.Sort(owners)
			for _, o := range owners {
				members := byOwner[o]
				dec.Clusters = append(dec.Clusters, Cluster{Color: color, Members: members})
				for _, v := range members {
					if !dec.Covered[v] {
						dec.Covered[v] = true
						covered++
					}
				}
			}
		}
	}
	if covered < n {
		return nil, fmt.Errorf("decomp: %d/%d nodes uncovered after %d carvings", n-covered, n, dec.Colors)
	}
	return dec, nil
}

// carve runs one exponential-shift ball carving: every node draws a
// geometric shift δ_u (the discretized Exp(β)) truncated at delta-1 and
// starts claiming at time delta-δ_u; nodes join the earliest claim to
// reach them (ties: smaller source ID). Returns the owner of every node.
func carve(g *graph.Graph, beta float64, delta int, rng interface{ Float64() float64 }) []graph.NodeID {
	n := g.NumNodes()
	start := make([]int32, n)
	for u := 0; u < n; u++ {
		// Geometric(1-e^{-β}) = floor(Exp(β)).
		shift := int(math.Floor(-math.Log(1-rng.Float64()) / beta))
		if shift > delta-1 {
			shift = delta - 1
		}
		start[u] = int32(delta - 1 - shift)
	}
	owner := make([]graph.NodeID, n)
	claimTime := make([]int32, n)
	for v := range owner {
		owner[v] = -1
		claimTime[v] = -1
	}
	// Time-stepped multi-source BFS.
	frontier := make([]graph.NodeID, 0, n)
	var next []graph.NodeID
	for t := int32(0); t < int32(delta); t++ {
		// Unclaimed nodes whose start time arrives become their own source.
		for u := 0; u < n; u++ {
			if owner[u] < 0 && start[u] == t {
				owner[u] = graph.NodeID(u)
				claimTime[u] = t
				frontier = append(frontier, graph.NodeID(u))
			}
		}
		next = next[:0]
		for _, u := range frontier {
			if claimTime[u] != t {
				continue
			}
			for _, w := range g.Neighbors(u) {
				switch {
				case owner[w] < 0:
					owner[w] = owner[u]
					claimTime[w] = t + 1
					next = append(next, w)
				case claimTime[w] == t+1 && owner[u] < owner[w]:
					// Simultaneous claims: deterministic tie-break by
					// smaller source ID.
					owner[w] = owner[u]
				}
			}
		}
		frontier = append(frontier[:0], next...)
	}
	// In a connected graph every node is claimed by time delta; stragglers
	// in disconnected graphs claim themselves.
	for u := 0; u < n; u++ {
		if owner[u] < 0 {
			owner[u] = graph.NodeID(u)
		}
	}
	return owner
}

// boundaryDistance returns, for every node, the BFS distance to the nearest
// node owned by a different cluster, capped at `cap` (distances ≥ cap are
// reported as cap).
func boundaryDistance(g *graph.Graph, owner []graph.NodeID, capDist int) []int32 {
	n := g.NumNodes()
	dist := make([]int32, n)
	for v := range dist {
		dist[v] = int32(capDist)
	}
	queue := make([]graph.NodeID, 0, n)
	// Seed: nodes adjacent to a foreign cluster are at distance 1.
	for v := 0; v < n; v++ {
		for _, w := range g.Neighbors(graph.NodeID(v)) {
			if owner[w] != owner[v] {
				dist[v] = 1
				queue = append(queue, graph.NodeID(v))
				break
			}
		}
	}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		if int(dist[u]) >= capDist-1 {
			continue
		}
		for _, w := range g.Neighbors(u) {
			// Distance propagates within the same cluster.
			if owner[w] == owner[u] && dist[w] > dist[u]+1 {
				dist[w] = dist[u] + 1
				queue = append(queue, w)
			}
		}
	}
	return dist
}

// Component is one connected component of some G(i,k): a color-i cluster
// enlarged by its k-neighborhood.
type Component struct {
	Color int
	// Sub is the induced subgraph and Orig the mapping back to g's IDs.
	Sub  *graph.Graph
	Orig []graph.NodeID
}

// Components materializes the G(i,k) components of Lemma 9: for every
// cluster, its members enlarged by a k-neighborhood BFS in g, split into
// connected components of the induced subgraph.
func (d *Decomposition) Components(g *graph.Graph, k int) []Component {
	var out []Component
	n := g.NumNodes()
	mark := make([]bool, n)
	var queue, nextQ []graph.NodeID
	for _, cl := range d.Clusters {
		// BFS to depth k from all members.
		touched := make([]graph.NodeID, 0, len(cl.Members)*2)
		queue = queue[:0]
		for _, v := range cl.Members {
			if !mark[v] {
				mark[v] = true
				touched = append(touched, v)
				queue = append(queue, v)
			}
		}
		for depth := 0; depth < k; depth++ {
			nextQ = nextQ[:0]
			for _, u := range queue {
				for _, w := range g.Neighbors(u) {
					if !mark[w] {
						mark[w] = true
						touched = append(touched, w)
						nextQ = append(nextQ, w)
					}
				}
			}
			queue, nextQ = nextQ, queue
		}
		keep := make([]bool, n)
		for _, v := range touched {
			keep[v] = true
			mark[v] = false // reset for the next cluster
		}
		sub, orig := g.InducedSubgraph(keep)
		comp, num := sub.ConnectedComponents()
		for c := 0; c < num; c++ {
			keepC := make([]bool, sub.NumNodes())
			for v := range keepC {
				keepC[v] = comp[v] == int32(c)
			}
			subC, origC := sub.InducedSubgraph(keepC)
			mapped := make([]graph.NodeID, len(origC))
			for i, v := range origC {
				mapped[i] = orig[v]
			}
			out = append(out, Component{Color: cl.Color, Sub: subC, Orig: mapped})
		}
	}
	return out
}

// ReducedRun is the outcome of running a detector over all components of a
// decomposition per Lemma 9.
type ReducedRun struct {
	Found bool
	// Witness in g's vertex IDs (translated back from the component).
	Witness []graph.NodeID
	// Rounds charges the decomposition cost plus, per color, the maximum
	// component cost (same-color components run in parallel).
	Rounds int
	// Components is the number of component runs executed.
	Components int
}

// RunPerComponent executes `run` on every component (sequentially by
// color, conceptually in parallel within a color) and aggregates the
// Lemma 9 round accounting. The callback returns (found, witness-in-sub,
// rounds). Early exit after the first color that finds a witness.
func (d *Decomposition) RunPerComponent(
	g *graph.Graph,
	k int,
	run func(c Component) (bool, []graph.NodeID, int, error),
) (*ReducedRun, error) {
	comps := d.Components(g, k)
	res := &ReducedRun{Rounds: d.Rounds}
	perColorMax := make(map[int]int)
	for _, c := range comps {
		found, witness, rounds, err := run(c)
		if err != nil {
			return nil, err
		}
		res.Components++
		if rounds > perColorMax[c.Color] {
			perColorMax[c.Color] = rounds
		}
		if found && !res.Found {
			res.Found = true
			mapped := make([]graph.NodeID, len(witness))
			for i, v := range witness {
				mapped[i] = c.Orig[v]
			}
			res.Witness = mapped
		}
	}
	for _, r := range perColorMax {
		res.Rounds += r
	}
	return res, nil
}
