package decomp

import (
	"testing"

	"repro/internal/graph"
)

func checkDecomposition(t *testing.T, g *graph.Graph, k int, d *Decomposition) {
	t.Helper()
	n := g.NumNodes()
	// (1) Coverage.
	for v := 0; v < n; v++ {
		if !d.Covered[v] {
			t.Fatalf("node %d uncovered", v)
		}
	}
	inCluster := make([]bool, n)
	for _, cl := range d.Clusters {
		for _, v := range cl.Members {
			inCluster[v] = true
		}
	}
	for v := 0; v < n; v++ {
		if !inCluster[v] {
			t.Fatalf("node %d in no cluster despite Covered", v)
		}
	}
	// (2) Same-color clusters at distance ≥ k+1: multi-source BFS per
	// cluster, capped at k, must not touch another same-color cluster.
	for ci, cl := range d.Clusters {
		dist := make([]int32, n)
		for i := range dist {
			dist[i] = -1
		}
		queue := make([]graph.NodeID, 0, len(cl.Members))
		for _, v := range cl.Members {
			dist[v] = 0
			queue = append(queue, v)
		}
		for len(queue) > 0 {
			u := queue[0]
			queue = queue[1:]
			if int(dist[u]) >= k {
				continue
			}
			for _, w := range g.Neighbors(u) {
				if dist[w] < 0 {
					dist[w] = dist[u] + 1
					queue = append(queue, w)
				}
			}
		}
		for cj, other := range d.Clusters {
			if cj == ci || other.Color != cl.Color {
				continue
			}
			for _, v := range other.Members {
				if dist[v] >= 0 && int(dist[v]) <= k {
					t.Fatalf("same-color clusters %d and %d at distance %d ≤ k=%d",
						ci, cj, dist[v], k)
				}
			}
		}
	}
	// (3) Weak diameter bound O(k log n): distances within a cluster
	// (measured in g) at most 2·Delta.
	for ci, cl := range d.Clusters {
		if len(cl.Members) == 0 {
			t.Fatalf("cluster %d empty", ci)
		}
		dist := g.BFSDistances(cl.Members[0])
		for _, v := range cl.Members {
			if dist[v] < 0 || int(dist[v]) > 2*d.Delta {
				t.Fatalf("cluster %d: member %d at distance %d > 2Δ=%d",
					ci, v, dist[v], 2*d.Delta)
			}
		}
	}
}

func TestDecomposeSmallGraphs(t *testing.T) {
	rng := graph.NewRand(1)
	for _, tc := range []struct {
		name string
		g    *graph.Graph
		k    int
	}{
		{"cycle", graph.Cycle(40), 2},
		{"path", graph.Path(60), 3},
		{"gnm", graph.Gnm(150, 300, rng), 2},
		{"tree", graph.Tree(120, rng), 4},
		{"grid", graph.Grid(8, 8), 2},
	} {
		t.Run(tc.name, func(t *testing.T) {
			d, err := Decompose(tc.g, tc.k, 7)
			if err != nil {
				t.Fatal(err)
			}
			checkDecomposition(t, tc.g, tc.k, d)
			if d.Rounds <= 0 {
				t.Fatal("no distributed cost accounted")
			}
		})
	}
}

func TestDecomposeValidation(t *testing.T) {
	if _, err := Decompose(graph.Cycle(4), 0, 1); err == nil {
		t.Fatal("k=0 accepted")
	}
	d, err := Decompose(graph.NewBuilder(0).Build(), 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Clusters) != 0 {
		t.Fatal("clusters on empty graph")
	}
}

// Lemma 9's key property: any C_{2k} (diameter ≤ k) is fully contained in
// at least one component of some G(i,k).
func TestComponentsContainShortCycles(t *testing.T) {
	rng := graph.NewRand(5)
	for trial := 0; trial < 10; trial++ {
		k := 2 + int(rng.Int32N(2))
		g, cyc, err := graph.PlantedLight(200, 2*k, 1.5, rng)
		if err != nil {
			t.Fatal(err)
		}
		// Decomposition parameter 2k+1, as in the Lemma 9 construction.
		d, err := Decompose(g, 2*k+1, uint64(trial))
		if err != nil {
			t.Fatal(err)
		}
		comps := d.Components(g, 2*k)
		containing := 0
		for _, c := range comps {
			present := make(map[graph.NodeID]bool, len(c.Orig))
			for _, v := range c.Orig {
				present[v] = true
			}
			all := true
			for _, v := range cyc {
				if !present[v] {
					all = false
					break
				}
			}
			if all {
				containing++
			}
		}
		if containing == 0 {
			t.Fatalf("trial %d: planted C_%d in no component", trial, 2*k)
		}
	}
}

// Component subgraphs must be induced: edges inside a component exist in g
// and vice versa for contained vertex pairs.
func TestComponentsAreInducedSubgraphs(t *testing.T) {
	rng := graph.NewRand(9)
	g := graph.Gnm(100, 200, rng)
	d, err := Decompose(g, 3, 3)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range d.Components(g, 2) {
		for v := 0; v < c.Sub.NumNodes(); v++ {
			for _, w := range c.Sub.Neighbors(graph.NodeID(v)) {
				if !g.HasEdge(c.Orig[v], c.Orig[w]) {
					t.Fatalf("component edge {%d,%d} missing in g", c.Orig[v], c.Orig[w])
				}
			}
		}
		for i := 0; i < len(c.Orig); i++ {
			for j := i + 1; j < len(c.Orig); j++ {
				if g.HasEdge(c.Orig[i], c.Orig[j]) != c.Sub.HasEdge(graph.NodeID(i), graph.NodeID(j)) {
					t.Fatalf("induced property violated for {%d,%d}", c.Orig[i], c.Orig[j])
				}
			}
		}
		if _, num := c.Sub.ConnectedComponents(); num != 1 && c.Sub.NumNodes() > 0 {
			t.Fatal("component not connected")
		}
	}
}

func TestRunPerComponentAggregation(t *testing.T) {
	g := graph.Cycle(30)
	d, err := Decompose(g, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	calls := 0
	run := func(c Component) (bool, []graph.NodeID, int, error) {
		calls++
		return false, nil, 5, nil
	}
	res, err := d.RunPerComponent(g, 2, run)
	if err != nil {
		t.Fatal(err)
	}
	if res.Found {
		t.Fatal("found without witness")
	}
	if res.Components != calls || calls == 0 {
		t.Fatalf("components = %d, calls = %d", res.Components, calls)
	}
	// Rounds = decomposition + 5 per color that has components.
	if res.Rounds <= d.Rounds {
		t.Fatalf("rounds %d did not accumulate per-color cost over %d", res.Rounds, d.Rounds)
	}
}

func TestRunPerComponentWitnessMapping(t *testing.T) {
	g := graph.Cycle(12)
	d, err := Decompose(g, 5, 4)
	if err != nil {
		t.Fatal(err)
	}
	run := func(c Component) (bool, []graph.NodeID, int, error) {
		// Report the first 3 component-local vertices as a fake witness.
		if c.Sub.NumNodes() >= 3 {
			return true, []graph.NodeID{0, 1, 2}, 1, nil
		}
		return false, nil, 1, nil
	}
	res, err := d.RunPerComponent(g, 4, run)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Found || len(res.Witness) != 3 {
		t.Fatalf("res = %+v", res)
	}
	for _, v := range res.Witness {
		if int(v) < 0 || int(v) >= g.NumNodes() {
			t.Fatalf("witness vertex %d not mapped back to g", v)
		}
	}
}

// Larger separation parameters (the quantum pipeline uses 2·|V(H)|+2, i.e.
// up to ~18 for C_8) must still produce valid decompositions.
func TestDecomposeLargeSeparation(t *testing.T) {
	rng := graph.NewRand(77)
	g := graph.Gnm(400, 800, rng)
	for _, k := range []int{10, 18} {
		d, err := Decompose(g, k, 5)
		if err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		checkDecomposition(t, g, k, d)
	}
}
