package quantum

import (
	"fmt"
	"math"

	"repro/internal/graph"
	"repro/internal/sched"
)

// Ledger itemizes the round accounting of one amplified execution.
type Ledger struct {
	// Diameter is the measured diameter (or its 2-approximation) of the
	// graph the amplification ran on.
	Diameter int
	// SetupRounds is the measured cost of one Setup execution: leader
	// election + one run of A + convergecast of the outcome.
	SetupRounds float64
	// GroverIterations is ceil(π/(4√ε)), the quadratically-reduced
	// repetition count of Lemma 8.
	GroverIterations float64
	// Repetitions is the log(1/δ) outer boosting factor.
	Repetitions float64
	// QuantumRounds is the total charged cost:
	// Repetitions · GroverIterations · (Diameter + SetupRounds).
	QuantumRounds float64
	// ClassicalSims is the number of Setup simulations actually executed
	// to realize the semantics.
	ClassicalSims int
	// SimRounds is the total number of simulated CONGEST rounds spent in
	// those executions (simulation cost, not part of the quantum charge).
	SimRounds int
}

// Attempt runs one full execution of the base algorithm A (index `i` for
// seed derivation) and reports whether it rejected, the witness it can
// produce, and the CONGEST rounds it consumed. Attempts must be
// independent (all randomness derived from `i`): with
// AmplifyOptions.Parallel > 1 they run concurrently on the shared trial
// scheduler.
type Attempt func(i int) (found bool, witness []graph.NodeID, rounds int, err error)

// AmplifyOptions parameterizes AmplifyMonteCarlo.
type AmplifyOptions struct {
	// Eps is the one-sided success probability ε of the base algorithm.
	Eps float64
	// Delta is the target one-sided error; 0 means 1/n² (the paper's
	// 1/poly(n)).
	Delta float64
	// N is the network size used for the default Delta.
	N int
	// ElectRounds and CastRounds are the measured costs of the leader
	// election and outcome convergecast around each run of A (they are
	// part of T_setup in Theorem 3's proof).
	ElectRounds, CastRounds int
	// Diameter is the measured diameter term D.
	Diameter int
	// MaxSims caps the classical simulations of Setup (the semantics
	// realization); 0 means the full classical budget ln(1/δ)/ε. Capping
	// can only cause missed detections (never false positives), and the
	// quantum charge is unaffected.
	MaxSims int
	// Parallel is the number of Setup simulations in flight (0/1
	// sequential, negative GOMAXPROCS). The ledger and the outcome are
	// deterministic regardless: they aggregate the sequential prefix of
	// attempts up to and including the first success.
	Parallel int
}

// AmplifyResult is the outcome of one amplified execution.
type AmplifyResult struct {
	Found   bool
	Witness []graph.NodeID
	Ledger  Ledger
}

// AmplifyMonteCarlo realizes Theorem 3: it boosts the one-sided success
// probability ε of the base algorithm to error δ, charging
// O(log(1/δ))·⌈π/(4√ε)⌉·(D + T_setup) rounds, where T_setup is measured
// from the executed attempts (election + A + convergecast).
func AmplifyMonteCarlo(attempt Attempt, opt AmplifyOptions) (*AmplifyResult, error) {
	if opt.Eps <= 0 || opt.Eps > 1 {
		return nil, fmt.Errorf("quantum: ε = %v outside (0,1]", opt.Eps)
	}
	delta := opt.Delta
	if delta == 0 {
		n := float64(opt.N)
		if n < 2 {
			n = 2
		}
		delta = 1 / (n * n)
	}
	if delta <= 0 || delta >= 1 {
		return nil, fmt.Errorf("quantum: δ = %v outside (0,1)", delta)
	}

	res := &AmplifyResult{}
	led := &res.Ledger
	led.Diameter = opt.Diameter
	led.GroverIterations = math.Ceil(math.Pi / (4 * math.Sqrt(opt.Eps)))
	led.Repetitions = math.Ceil(math.Log(1/delta) / math.Ln2)

	// Classical realization of the semantics: repeat Setup until success
	// or budget exhaustion.
	budget := math.Ceil(math.Log(1/delta) / opt.Eps)
	sims := int(budget)
	if budget > float64(math.MaxInt32) {
		sims = math.MaxInt32
	}
	if opt.MaxSims > 0 && opt.MaxSims < sims {
		sims = opt.MaxSims
	}
	type attemptOutcome struct {
		found   bool
		witness []graph.NodeID
		rounds  int
	}
	maxAttemptRounds := 0
	runner := sched.TrialRunner{Workers: opt.Parallel}
	_, err := sched.Run(runner, sims,
		func(i int) (attemptOutcome, error) {
			found, witness, rounds, err := attempt(i)
			if err != nil {
				return attemptOutcome{}, fmt.Errorf("quantum: attempt %d: %w", i, err)
			}
			return attemptOutcome{found: found, witness: witness, rounds: rounds}, nil
		},
		func(i int, a attemptOutcome) bool {
			led.ClassicalSims++
			led.SimRounds += a.rounds
			if a.rounds > maxAttemptRounds {
				maxAttemptRounds = a.rounds
			}
			if a.found {
				res.Found = true
				res.Witness = a.witness
				return true
			}
			return false
		})
	if err != nil {
		return nil, err
	}
	led.SetupRounds = float64(maxAttemptRounds + opt.ElectRounds + opt.CastRounds)
	led.QuantumRounds = led.Repetitions * led.GroverIterations *
		(float64(opt.Diameter) + led.SetupRounds)
	return res, nil
}

// ClassicalBoostRounds is the cost of achieving the same error δ by
// classical repetition: ln(1/δ)/ε executions of (D + T_setup). Used by the
// E8 experiment to exhibit the quadratic separation.
func ClassicalBoostRounds(eps, delta float64, diameter int, setupRounds float64) float64 {
	return math.Ceil(math.Log(1/delta)/eps) * (float64(diameter) + setupRounds)
}
