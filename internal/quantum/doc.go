// Package quantum implements the paper's quantum CONGEST framework as a
// classically-simulated layer with faithful round accounting:
//
//   - Lemma 8 (distributed quantum search / Grover) and Theorem 3
//     (distributed quantum Monte-Carlo amplification): given a distributed
//     one-sided Monte-Carlo algorithm A with success probability ε and
//     round complexity T, there is a quantum algorithm with error δ and
//     round complexity polylog(1/δ)·(1/√ε)·(D + T).
//   - Lemma 13 / Section 3.4 / Section 3.5: the quantum detectors for
//     C_{2k}, C_{2k+1} and F_{2k} obtained by amplifying the
//     congestion-reduced detectors of package lowprob inside the
//     diameter-reduced components of package decomp.
//
// Substitution (documented in docs/ARCHITECTURE.md): a classical machine
// cannot run Grover natively. The simulation preserves exactly the two
// properties the paper's analysis uses — (1) outputs lie in the support of
// the Setup procedure (one-sidedness: a reported cycle is always real and
// carries a verified witness), and (2) if the per-run success probability
// is ≥ ε, the amplified run succeeds with probability ≥ 1-δ (realized by
// classical repetition of Setup) — while the *round ledger* charges the
// quantum cost with T_setup measured on the simulator, not assumed from
// the theorem.
//
// Determinism contract: amplification attempts are independent trials on
// the shared scheduler with per-attempt seeds derived via sched.Tag, and
// per-component seeds derive from the decomposition's canonical component
// order — so the verdict, witness and the whole round ledger are
// bit-identical for every Workers/Shards/Parallel setting.
package quantum
