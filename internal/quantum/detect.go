package quantum

import (
	"fmt"

	"repro/internal/congest"
	"repro/internal/core"
	"repro/internal/decomp"
	"repro/internal/graph"
	"repro/internal/lowprob"
	"repro/internal/proto"
)

// Options tunes the quantum detectors.
type Options struct {
	// Delta is the target one-sided error; 0 means 1/n² (the paper's
	// 1/poly(n)).
	Delta float64
	// MaxSims caps classical Setup simulations per component (semantics
	// realization only; see AmplifyOptions.MaxSims).
	MaxSims int
	// AttemptIterations overrides the coloring repetitions K inside each
	// low-probability attempt (0 = faithful).
	AttemptIterations int
	// AttemptSeedProb overrides the seed-activation probability inside
	// attempts. This is a semantics-only experiment knob (it raises the
	// chance a capped simulation finds the planted cycle); the quantum
	// round charge always uses the faithful ε.
	AttemptSeedProb float64
	// NoDecomposition skips the Lemma 9 diameter reduction and amplifies
	// on the whole graph, exposing the D·√(1/ε) term (ablation A4).
	NoDecomposition bool
	// EpsFn overrides the base success probability as a function of the
	// component size (0-arg nil keeps the faithful value). Scaling
	// experiments use constant-rescaled ε = 1/(3τ_scaled) so that the
	// exponent — the measured quantity — is visible at simulation sizes
	// (see core.Options.POverride for the same reasoning).
	EpsFn   func(n int) (float64, error)
	Seed    uint64
	Workers int
	// Shards / ParallelThreshold tune the engine's parallel delivery
	// phase (see congest.Engine); 0 keeps the engine defaults.
	// Transcripts are bit-identical for every setting.
	Shards            int
	ParallelThreshold int

	// Parallel is the number of Setup simulations amplified concurrently
	// per component (0/1 sequential, negative GOMAXPROCS); see
	// AmplifyOptions.Parallel.
	Parallel int
}

// Result reports a quantum detection run.
type Result struct {
	// Found and Witness follow the usual one-sided contract; witnesses are
	// verified against the input graph.
	Found   bool
	Witness []graph.NodeID

	// QuantumRounds is the total charged quantum cost: decomposition
	// rounds plus, per color, the maximum component amplification cost.
	QuantumRounds float64
	// DecompRounds is the decomposition's share.
	DecompRounds int
	// Colors is the number of decomposition colors summed over (the γ of
	// Lemma 10; 1 when NoDecomposition).
	Colors int
	// Components is the number of component runs.
	Components int
	// Eps is the base success probability used on the largest component.
	Eps float64
	// ClassicalSims / SimRounds aggregate the simulation effort (not part
	// of the quantum charge).
	ClassicalSims int
	SimRounds     int
	// MaxLedger is the single largest component ledger, for inspection.
	MaxLedger Ledger
}

// pipeline abstracts the three detectors over the common
// decompose-amplify-verify structure of Lemma 13.
type pipeline struct {
	// hSize is the number of vertices of the target subgraph H (2k for
	// C_{2k}, 2k+1 for C_{2k+1}).
	hSize int
	// eps returns the base success probability of one attempt on an
	// n-vertex (sub)graph.
	eps func(n int) (float64, error)
	// attempt runs the base low-probability algorithm on a subgraph.
	attempt func(sub *graph.Graph, seed uint64) (bool, []graph.NodeID, int, error)
}

// DetectEvenCycle is the paper's quantum C_{2k}-freeness algorithm
// (Theorem 2 / Lemma 13): diameter reduction (Lemma 9), then within each
// component distributed quantum Monte-Carlo amplification (Theorem 3) of
// the congestion-reduced detector (Lemma 12). Round complexity
// k^{O(k)}·polylog(n)·n^{1/2-1/2k}; error 1/poly(n), one-sided.
func DetectEvenCycle(g *graph.Graph, k int, opt Options) (*Result, error) {
	if k < 2 {
		return nil, fmt.Errorf("quantum: k = %d < 2", k)
	}
	pipe := pipeline{
		hSize: 2 * k,
		eps:   func(n int) (float64, error) { return lowprob.SuccessProb(n, k) },
		attempt: func(sub *graph.Graph, seed uint64) (bool, []graph.NodeID, int, error) {
			res, err := lowprob.Detect(sub, k, core.Options{
				Seed:              seed,
				MaxIterations:     opt.AttemptIterations,
				SeedProb:          opt.AttemptSeedProb,
				Workers:           opt.Workers,
				Shards:            opt.Shards,
				ParallelThreshold: opt.ParallelThreshold,
			})
			if err != nil {
				return false, nil, 0, err
			}
			return res.Found, res.Witness, res.Rounds, nil
		},
	}
	return runPipeline(g, pipe, opt)
}

// DetectOddCycle is the Section 3.4 quantum C_{2k+1}-freeness algorithm:
// Θ̃(√n) rounds, error 1/poly(n), one-sided. k ≥ 1.
func DetectOddCycle(g *graph.Graph, k int, opt Options) (*Result, error) {
	if k < 1 {
		return nil, fmt.Errorf("quantum: odd detection needs k ≥ 1")
	}
	pipe := pipeline{
		hSize: 2*k + 1,
		eps:   func(n int) (float64, error) { return lowprob.OddSuccessProb(n), nil },
		attempt: func(sub *graph.Graph, seed uint64) (bool, []graph.NodeID, int, error) {
			res, err := lowprob.DetectOdd(sub, k, lowprob.OddOptions{
				Seed:              seed,
				MaxIterations:     opt.AttemptIterations,
				SeedProb:          opt.AttemptSeedProb,
				Workers:           opt.Workers,
				Shards:            opt.Shards,
				ParallelThreshold: opt.ParallelThreshold,
			})
			if err != nil {
				return false, nil, 0, err
			}
			return res.Found, res.Witness, res.Rounds, nil
		},
	}
	return runPipeline(g, pipe, opt)
}

// DetectBoundedCycle is the Section 3.5 quantum F_{2k}-freeness algorithm
// ({C_ℓ | 3 ≤ ℓ ≤ 2k}): Õ(n^{1/2-1/2k}) rounds, improving the
// Õ(n^{1/2-1/(4k+2)}) of van Apeldoorn–de Vos [PODC'22].
func DetectBoundedCycle(g *graph.Graph, k int, opt Options) (*Result, error) {
	if k < 2 {
		return nil, fmt.Errorf("quantum: bounded detection needs k ≥ 2")
	}
	pipe := pipeline{
		hSize: 2 * k,
		eps:   func(n int) (float64, error) { return lowprob.BoundedSuccessProb(n, k) },
		attempt: func(sub *graph.Graph, seed uint64) (bool, []graph.NodeID, int, error) {
			res, err := lowprob.DetectBounded(sub, k, core.Options{
				Seed:              seed,
				MaxIterations:     opt.AttemptIterations,
				SeedProb:          opt.AttemptSeedProb,
				Workers:           opt.Workers,
				Shards:            opt.Shards,
				ParallelThreshold: opt.ParallelThreshold,
			})
			if err != nil {
				return false, nil, 0, err
			}
			return res.Found, res.Witness, res.Rounds, nil
		},
	}
	return runPipeline(g, pipe, opt)
}

func runPipeline(g *graph.Graph, pipe pipeline, opt Options) (*Result, error) {
	if opt.EpsFn != nil {
		pipe.eps = opt.EpsFn
	}
	res := &Result{}
	if opt.NoDecomposition {
		comp := decomp.Component{Color: 0, Sub: g, Orig: identity(g.NumNodes())}
		led, found, witness, err := amplifyComponent(comp, pipe, opt, 0)
		if err != nil {
			return nil, err
		}
		res.Components = 1
		res.Colors = 1
		res.QuantumRounds = led.QuantumRounds
		res.ClassicalSims = led.ClassicalSims
		res.SimRounds = led.SimRounds
		res.MaxLedger = led
		res.Eps, _ = pipe.eps(max(g.NumNodes(), 2))
		if found {
			res.Found = true
			res.Witness = witness
			if err := graph.IsSimpleCycle(g, witness, len(witness)); err != nil {
				return nil, fmt.Errorf("quantum: invalid witness: %w", err)
			}
		}
		return res, nil
	}

	// Lemma 9: decompose with separation > 2·hSize so that enlarged
	// same-color clusters are vertex-disjoint and non-adjacent, then run
	// per component.
	dec, err := decomp.Decompose(g, 2*pipe.hSize+2, opt.Seed)
	if err != nil {
		return nil, fmt.Errorf("quantum: decomposition: %w", err)
	}
	res.DecompRounds = dec.Rounds
	res.QuantumRounds = float64(dec.Rounds)
	comps := dec.Components(g, pipe.hSize)

	perColorMax := make(map[int]float64)
	for ci, comp := range comps {
		if comp.Sub.NumNodes() < pipe.hSize {
			continue
		}
		led, found, witness, err := amplifyComponent(comp, pipe, opt, uint64(ci))
		if err != nil {
			return nil, err
		}
		res.Components++
		res.ClassicalSims += led.ClassicalSims
		res.SimRounds += led.SimRounds
		if led.QuantumRounds > perColorMax[comp.Color] {
			perColorMax[comp.Color] = led.QuantumRounds
		}
		if led.QuantumRounds > res.MaxLedger.QuantumRounds {
			res.MaxLedger = led
		}
		if e, err := pipe.eps(max(comp.Sub.NumNodes(), 2)); err == nil && (res.Eps == 0 || e < res.Eps) {
			res.Eps = e
		}
		if found && !res.Found {
			mapped := make([]graph.NodeID, len(witness))
			for i, v := range witness {
				mapped[i] = comp.Orig[v]
			}
			if err := graph.IsSimpleCycle(g, mapped, len(mapped)); err != nil {
				return nil, fmt.Errorf("quantum: mapped witness invalid: %w", err)
			}
			res.Found = true
			res.Witness = mapped
		}
	}
	for _, r := range perColorMax {
		res.QuantumRounds += r
	}
	res.Colors = len(perColorMax)
	if res.Colors == 0 {
		res.Colors = 1
	}
	return res, nil
}

// amplifyComponent runs Theorem 3 on one component: measures the O(D)
// Setup scaffolding (leader election tree + convergecast) and the
// component diameter, then amplifies the base attempts.
func amplifyComponent(comp decomp.Component, pipe pipeline, opt Options, salt uint64) (Ledger, bool, []graph.NodeID, error) {
	n := comp.Sub.NumNodes()
	if n < 2 {
		return Ledger{}, false, nil, nil
	}
	net := congest.NewNetwork(comp.Sub, opt.Seed^salt*0x9e3779b97f4a7c15)
	eng := congest.NewEngine(net)
	eng.Workers = opt.Workers
	eng.Shards = opt.Shards
	eng.ParallelThreshold = opt.ParallelThreshold

	tree, repTree, err := proto.BuildTree(eng, 0)
	if err != nil {
		return Ledger{}, false, nil, err
	}
	conv := &proto.ConvergecastOr{Tree: tree, Value: make([]bool, n)}
	repConv, err := eng.Run(conv)
	if err != nil {
		return Ledger{}, false, nil, err
	}
	diameter := 2 * tree.MaxDepth() // root eccentricity e: e ≤ D ≤ 2e

	eps, err := pipe.eps(max(n, 2))
	if err != nil {
		return Ledger{}, false, nil, err
	}
	attempt := func(i int) (bool, []graph.NodeID, int, error) {
		seed := opt.Seed ^ (salt+1)*0xbf58476d1ce4e5b9 ^ uint64(i+1)*0x94d049bb133111eb
		return pipe.attempt(comp.Sub, seed)
	}
	amp, err := AmplifyMonteCarlo(attempt, AmplifyOptions{
		Eps:         eps,
		Delta:       opt.Delta,
		N:           n,
		ElectRounds: repTree.Rounds,
		CastRounds:  repConv.Rounds,
		Diameter:    diameter,
		MaxSims:     opt.MaxSims,
		Parallel:    opt.Parallel,
	})
	if err != nil {
		return Ledger{}, false, nil, err
	}
	return amp.Ledger, amp.Found, amp.Witness, nil
}

func identity(n int) []graph.NodeID {
	out := make([]graph.NodeID, n)
	for i := range out {
		out[i] = graph.NodeID(i)
	}
	return out
}
