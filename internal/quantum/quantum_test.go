package quantum

import (
	"math"
	"testing"

	"repro/internal/graph"
)

func TestAmplifyFindsWithHighEps(t *testing.T) {
	calls := 0
	attempt := func(i int) (bool, []graph.NodeID, int, error) {
		calls++
		// Succeed on the third attempt.
		if i == 2 {
			return true, []graph.NodeID{1, 2, 3}, 10, nil
		}
		return false, nil, 10, nil
	}
	res, err := AmplifyMonteCarlo(attempt, AmplifyOptions{
		Eps: 0.25, N: 100, Diameter: 5, ElectRounds: 7, CastRounds: 6,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Found || len(res.Witness) != 3 {
		t.Fatalf("res = %+v", res)
	}
	if calls != 3 {
		t.Fatalf("calls = %d, want 3 (early exit)", calls)
	}
	l := res.Ledger
	// Grover iterations = ceil(π/(4·0.5)) = 2.
	if l.GroverIterations != 2 {
		t.Fatalf("GroverIterations = %v, want 2", l.GroverIterations)
	}
	// Setup = max attempt rounds + elect + cast = 10+7+6 = 23.
	if l.SetupRounds != 23 {
		t.Fatalf("SetupRounds = %v, want 23", l.SetupRounds)
	}
	want := l.Repetitions * 2 * (5 + 23)
	if math.Abs(l.QuantumRounds-want) > 1e-9 {
		t.Fatalf("QuantumRounds = %v, want %v", l.QuantumRounds, want)
	}
}

func TestAmplifyRespectsBudget(t *testing.T) {
	calls := 0
	attempt := func(i int) (bool, []graph.NodeID, int, error) {
		calls++
		return false, nil, 1, nil
	}
	_, err := AmplifyMonteCarlo(attempt, AmplifyOptions{
		Eps: 0.5, Delta: 0.1, Diameter: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Budget = ceil(ln(10)/0.5) = 5.
	if calls != 5 {
		t.Fatalf("calls = %d, want 5", calls)
	}

	calls = 0
	if _, err := AmplifyMonteCarlo(attempt, AmplifyOptions{
		Eps: 1e-6, Delta: 0.1, Diameter: 1, MaxSims: 7,
	}); err != nil {
		t.Fatal(err)
	}
	if calls != 7 {
		t.Fatalf("MaxSims: calls = %d, want 7", calls)
	}
}

func TestAmplifyValidation(t *testing.T) {
	noop := func(i int) (bool, []graph.NodeID, int, error) { return false, nil, 0, nil }
	if _, err := AmplifyMonteCarlo(noop, AmplifyOptions{Eps: 0}); err == nil {
		t.Fatal("eps=0 accepted")
	}
	if _, err := AmplifyMonteCarlo(noop, AmplifyOptions{Eps: 0.5, Delta: 2}); err == nil {
		t.Fatal("delta=2 accepted")
	}
}

// The quadratic speedup: quantum rounds scale as 1/√ε versus the classical
// 1/ε.
func TestQuadraticSeparation(t *testing.T) {
	noop := func(i int) (bool, []graph.NodeID, int, error) { return false, nil, 3, nil }
	rounds := func(eps float64) (quantum, classical float64) {
		res, err := AmplifyMonteCarlo(noop, AmplifyOptions{
			Eps: eps, Delta: 0.01, Diameter: 2, MaxSims: 3,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.Ledger.QuantumRounds, ClassicalBoostRounds(eps, 0.01, 2, res.Ledger.SetupRounds)
	}
	q1, c1 := rounds(1e-2)
	q2, c2 := rounds(1e-4)
	// ε shrinks 100×: quantum grows ≈ 10×, classical ≈ 100×.
	qRatio, cRatio := q2/q1, c2/c1
	if qRatio < 5 || qRatio > 20 {
		t.Fatalf("quantum ratio = %v, want ≈ 10", qRatio)
	}
	if cRatio < 50 || cRatio > 200 {
		t.Fatalf("classical ratio = %v, want ≈ 100", cRatio)
	}
}

func TestDetectEvenCycleQuantumFinds(t *testing.T) {
	rng := graph.NewRand(11)
	g, _, err := graph.PlantedLight(120, 4, 1.8, rng)
	if err != nil {
		t.Fatal(err)
	}
	res, err := DetectEvenCycle(g, 2, Options{
		Seed:            3,
		MaxSims:         40,
		AttemptSeedProb: 1, // semantics knob: make capped sims effective
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Found {
		t.Fatalf("quantum detector missed planted C_4 (%d sims)", res.ClassicalSims)
	}
	if err := graph.IsSimpleCycle(g, res.Witness, 4); err != nil {
		t.Fatalf("invalid witness: %v", err)
	}
	if res.QuantumRounds <= 0 || res.Components == 0 {
		t.Fatalf("accounting empty: %+v", res)
	}
}

func TestDetectEvenCycleQuantumOneSided(t *testing.T) {
	g, err := graph.ProjectivePlaneIncidence(3)
	if err != nil {
		t.Fatal(err)
	}
	res, err := DetectEvenCycle(g, 2, Options{Seed: 1, MaxSims: 10, AttemptSeedProb: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Found {
		t.Fatal("false positive on C₄-free graph")
	}
}

func TestDetectOddCycleQuantum(t *testing.T) {
	rng := graph.NewRand(21)
	g, _, err := graph.PlantCycle(graph.Tree(80, rng), 5, rng)
	if err != nil {
		t.Fatal(err)
	}
	res, err := DetectOddCycle(g, 2, Options{
		Seed: 5, MaxSims: 60, AttemptSeedProb: 0.5, AttemptIterations: 40000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Found {
		t.Fatalf("quantum odd detector missed planted C_5 (%d sims)", res.ClassicalSims)
	}
	if err := graph.IsSimpleCycle(g, res.Witness, 5); err != nil {
		t.Fatalf("invalid witness: %v", err)
	}
}

func TestDetectOddCycleQuantumOneSidedBipartite(t *testing.T) {
	g := graph.CompleteBipartite(7, 7)
	res, err := DetectOddCycle(g, 1, Options{Seed: 2, MaxSims: 20, AttemptSeedProb: 1, AttemptIterations: 500})
	if err != nil {
		t.Fatal(err)
	}
	if res.Found {
		t.Fatal("odd cycle reported in bipartite graph")
	}
}

func TestDetectBoundedCycleQuantum(t *testing.T) {
	rng := graph.NewRand(31)
	g, _, err := graph.PlantCycle(graph.Tree(100, rng), 4, rng)
	if err != nil {
		t.Fatal(err)
	}
	res, err := DetectBoundedCycle(g, 2, Options{
		Seed: 7, MaxSims: 40, AttemptSeedProb: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Found {
		t.Fatalf("quantum bounded detector missed planted C_4 (%d sims)", res.ClassicalSims)
	}
	if err := graph.IsSimpleCycle(g, res.Witness, len(res.Witness)); err != nil {
		t.Fatalf("invalid witness: %v", err)
	}
	if len(res.Witness) > 4 {
		t.Fatalf("witness length %d > 2k", len(res.Witness))
	}
}

// Ablation A4: without diameter reduction, the D term enters the charge;
// on a high-diameter graph the reduced pipeline must be cheaper.
func TestNoDecompositionCostsMore(t *testing.T) {
	rng := graph.NewRand(41)
	// Long path with a planted C_4 at one end: diameter ≈ n.
	g, _, err := graph.PlantCycle(graph.Path(600), 4, rng)
	if err != nil {
		t.Fatal(err)
	}
	flat, err := DetectEvenCycle(g, 2, Options{
		Seed: 1, MaxSims: 1, NoDecomposition: true, AttemptIterations: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	reduced, err := DetectEvenCycle(g, 2, Options{
		Seed: 1, MaxSims: 1, AttemptIterations: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if reduced.MaxLedger.Diameter >= flat.MaxLedger.Diameter {
		t.Fatalf("component diameter %d not reduced below global %d",
			reduced.MaxLedger.Diameter, flat.MaxLedger.Diameter)
	}
	if flat.MaxLedger.QuantumRounds <= reduced.MaxLedger.QuantumRounds {
		t.Fatalf("per-component charge %v should beat whole-graph charge %v on a path",
			reduced.MaxLedger.QuantumRounds, flat.MaxLedger.QuantumRounds)
	}
}

func TestQuantumValidation(t *testing.T) {
	g := graph.Cycle(8)
	if _, err := DetectEvenCycle(g, 1, Options{}); err == nil {
		t.Fatal("k=1 accepted")
	}
	if _, err := DetectOddCycle(g, 0, Options{}); err == nil {
		t.Fatal("k=0 accepted for odd")
	}
	if _, err := DetectBoundedCycle(g, 1, Options{}); err == nil {
		t.Fatal("k=1 accepted for bounded")
	}
}

func TestAmplifyStopsAtFirstSuccess(t *testing.T) {
	calls := 0
	attempt := func(i int) (bool, []graph.NodeID, int, error) {
		calls++
		return true, []graph.NodeID{9}, 3, nil
	}
	res, err := AmplifyMonteCarlo(attempt, AmplifyOptions{Eps: 1e-8, Delta: 0.5, MaxSims: 1000})
	if err != nil {
		t.Fatal(err)
	}
	if calls != 1 || !res.Found {
		t.Fatalf("calls=%d found=%v, want early exit on first success", calls, res.Found)
	}
	if res.Ledger.ClassicalSims != 1 {
		t.Fatalf("sims = %d", res.Ledger.ClassicalSims)
	}
}

func TestDetectOddCycleQuantumK3(t *testing.T) {
	rng := graph.NewRand(71)
	g, _, err := graph.PlantCycle(graph.HighGirth(100, 120, 6, rng), 7, rng)
	if err != nil {
		t.Fatal(err)
	}
	res, err := DetectOddCycle(g, 3, Options{
		Seed: 9, MaxSims: 40, AttemptSeedProb: 0.5, AttemptIterations: 400000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.QuantumRounds <= 0 {
		t.Fatalf("no quantum charge: %+v", res)
	}
	if res.Found {
		if err := graph.IsSimpleCycle(g, res.Witness, 7); err != nil {
			t.Fatalf("invalid witness: %v", err)
		}
	}
}
