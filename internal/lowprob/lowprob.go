package lowprob

import (
	"fmt"
	"math"
	"time"

	"repro/internal/congest"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/sched"
)

// ConstantThreshold is the forwarding threshold of Algorithm 2
// (Instruction 5 of randomized-color-BFS).
const ConstantThreshold = 4

// Detect runs Lemma 12's detector A: Algorithm 1 with every color-BFS call
// replaced by randomized-color-BFS (seed activation probability 1/τ,
// forwarding threshold 4). One run costs k^{O(k)} rounds — independent of
// n — and succeeds (finds an existing C_{2k}) with probability ≥ 1/(3τ).
func Detect(g *graph.Graph, k int, opt core.Options) (*core.Result, error) {
	eps := opt.Eps
	if eps == 0 {
		eps = 1.0 / 3
	}
	params, err := core.NewParams(g.NumNodes(), k, eps)
	if err != nil {
		return nil, err
	}
	if opt.SeedProb == 0 {
		opt.SeedProb = 1 / float64(params.Tau)
	}
	if opt.BFSThreshold == 0 {
		opt.BFSThreshold = ConstantThreshold
	}
	return core.DetectEvenCycle(g, k, opt)
}

// SuccessProb returns the one-sided success probability 1/(3τ) of the
// Lemma 12 detector on an n-vertex graph.
func SuccessProb(n, k int) (float64, error) {
	params, err := core.NewParams(n, k, 1.0/3)
	if err != nil {
		return 0, err
	}
	return 1 / (3 * float64(params.Tau)), nil
}

// DetectBounded is the analogous low-probability variant of the
// bounded-length detector (Section 3.5's algorithm with randomized
// activation), used by the quantum F_{2k} detector.
func DetectBounded(g *graph.Graph, k int, opt core.Options) (*core.BoundedResult, error) {
	eps := opt.Eps
	if eps == 0 {
		eps = 1.0 / 3
	}
	params, err := core.NewParams(g.NumNodes(), k, eps)
	if err != nil {
		return nil, err
	}
	tau := int(math.Ceil(2 * float64(params.N) * params.P))
	if tau < 1 {
		tau = 1
	}
	if opt.SeedProb == 0 {
		opt.SeedProb = 1 / float64(tau)
	}
	if opt.BFSThreshold == 0 {
		opt.BFSThreshold = ConstantThreshold
	}
	return core.DetectBoundedCycle(g, k, opt)
}

// BoundedSuccessProb returns the one-sided success probability 1/(3τ) with
// the Section 3.5 threshold τ = 2np.
func BoundedSuccessProb(n, k int) (float64, error) {
	params, err := core.NewParams(n, k, 1.0/3)
	if err != nil {
		return 0, err
	}
	tau := 2 * float64(params.N) * params.P
	if tau < 1 {
		tau = 1
	}
	return 1 / (3 * tau), nil
}

// OddOptions tunes the Section 3.4 odd-cycle detector.
type OddOptions struct {
	// MaxIterations caps the number of colorings; 0 keeps the faithful
	// ε̂·(2k+1)^{2k+1} value.
	MaxIterations int
	// SeedProb overrides the activation probability (0 means the faithful
	// 1/n).
	SeedProb float64
	// Threshold overrides the constant forwarding threshold (0 means 4).
	Threshold int
	Seed      uint64
	Workers   int
	// Shards / ParallelThreshold tune the engine's parallel delivery
	// phase (see congest.Engine); 0 keeps the engine defaults.
	// Transcripts are bit-identical for every setting.
	Shards            int
	ParallelThreshold int
	// Parallel is the number of coloring trials in flight (0/1 sequential,
	// negative GOMAXPROCS); results are deterministic regardless.
	Parallel  int
	KeepGoing bool
	// Cancel aborts in-flight engine sessions at the next round boundary
	// when tripped (see congest.CancelFlag); untripped it changes nothing.
	Cancel *congest.CancelFlag
	// Observe receives each completed engine session's round count and
	// wall clock (see congest.Engine.Observe); purely passive.
	Observe func(rounds int, wall time.Duration)
}

// OddResult reports a run of the odd-cycle detector.
type OddResult struct {
	Found         bool
	Witness       []graph.NodeID
	Detector      graph.NodeID
	Rounds        int
	Messages      int64
	IterationsRun int
}

// DetectOdd runs the Section 3.4 low-probability detector for
// C_{2k+1}-freeness: repeated random colorings with colors {0,…,2k}, a
// randomized-color-BFS on the whole graph with X = V, activation
// probability 1/n and constant threshold 4. One run costs O(1) rounds per
// coloring and succeeds with probability Ω(1/n) when a (2k+1)-cycle exists.
func DetectOdd(g *graph.Graph, k int, opt OddOptions) (*OddResult, error) {
	if k < 1 {
		return nil, fmt.Errorf("lowprob: odd detection needs k ≥ 1, got %d", k)
	}
	n := g.NumNodes()
	if n < 3 {
		return &OddResult{}, nil
	}
	L := 2*k + 1
	seedProb := opt.SeedProb
	if seedProb == 0 {
		seedProb = 1 / float64(n)
	}
	threshold := opt.Threshold
	if threshold == 0 {
		threshold = ConstantThreshold
	}
	iterations := opt.MaxIterations
	if iterations == 0 {
		faithful := math.Log(9) * math.Pow(float64(L), float64(L))
		if faithful > math.MaxInt32 {
			faithful = math.MaxInt32
		}
		iterations = int(math.Ceil(faithful))
	}

	net := congest.NewNetwork(g, opt.Seed)
	eng := congest.NewEngine(net)
	eng.Workers = opt.Workers
	eng.Shards = opt.Shards
	eng.ParallelThreshold = opt.ParallelThreshold
	eng.Cancel = opt.Cancel
	eng.Observe = opt.Observe

	all := make([]bool, n)
	for v := range all {
		all[v] = true
	}

	// Each coloring is an independent trial on the shared scheduler; the
	// fold aggregates the deterministic prefix, so the outcome is the same
	// for every Parallel setting.
	type oddOutcome struct {
		rep      congest.Report
		found    bool
		witness  []graph.NodeID
		detector graph.NodeID
	}
	pool := core.NewColorBFSPool(n)
	trial := func(it int) (*oddOutcome, error) {
		colors := core.IterationColors(n, L, sched.Tag(opt.Seed, 0x27d4eb2f), it)
		bfs, err := pool.Acquire(core.ColorBFSSpec{
			L:         L,
			Color:     colors,
			InH:       all,
			InX:       all,
			Threshold: threshold,
			SeedProb:  seedProb,
		})
		if err != nil {
			return nil, fmt.Errorf("lowprob: odd color-BFS: %w", err)
		}
		rep, err := bfs.RunSessions(eng, sched.Tag(opt.Seed, 0x0dd, uint64(it)))
		if err != nil {
			return nil, fmt.Errorf("lowprob: odd color-BFS: %w", err)
		}
		out := &oddOutcome{}
		out.rep.Accumulate(rep)
		if ds := bfs.Detections(); len(ds) > 0 {
			witness, err := bfs.Witness(ds[0])
			if err != nil {
				return nil, fmt.Errorf("lowprob: odd witness: %w", err)
			}
			if err := graph.IsSimpleCycle(g, witness, L); err != nil {
				return nil, fmt.Errorf("lowprob: odd invalid witness: %w", err)
			}
			out.found = true
			out.witness = witness
			out.detector = ds[0].Node
		}
		pool.Release(bfs)
		return out, nil
	}
	res := &OddResult{}
	total := &congest.Report{}
	fold := func(it int, out *oddOutcome) bool {
		res.IterationsRun = it + 1
		total.Accumulate(&out.rep)
		if out.found && !res.Found {
			res.Found = true
			res.Witness = out.witness
			res.Detector = out.detector
		}
		return res.Found && !opt.KeepGoing
	}
	runner := sched.TrialRunner{Workers: opt.Parallel}
	if _, err := sched.Run(runner, iterations, trial, fold); err != nil {
		return nil, err
	}
	res.Rounds = total.Rounds
	res.Messages = total.Messages
	return res, nil
}

// OddSuccessProb returns the per-run success probability Ω(1/n) (we use
// the 1/(3n) bound mirroring Lemma 12's analysis).
func OddSuccessProb(n int) float64 { return 1 / (3 * float64(n)) }
