// Package lowprob implements the congestion-reduction step of the paper's
// quantum pipeline (Section 3.2): Algorithm 2 (randomized-color-BFS) and
// the detectors built on it, including the Section 3.4 odd-cycle base
// detector.
//
// The trade-off (Lemma 12): replacing color-BFS with randomized-color-BFS —
// each color-0 seed activates independently with probability 1/τ and the
// forwarding threshold drops to the constant 4 — turns Algorithm 1 into a
// detector with round complexity k^{O(k)} (constant in n) and one-sided
// *success* probability 1/(3τ) = Θ(1/n^{1-1/k}). The quantum layer
// (package quantum) then amplifies this small success probability
// quadratically faster than classical repetition.
//
// Determinism contract: the detectors reuse core's pooled color-BFS
// invocations and run attempts as independent trials on the shared
// scheduler, with all randomness (colorings, seed activation) derived
// from the caller's seed and attempt index — results are bit-identical
// for every Workers/Shards/Parallel setting, and every reported witness
// is verified against the input graph.
package lowprob
