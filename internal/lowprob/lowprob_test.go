package lowprob

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/graph"
)

// The Lemma 12 detector must still be one-sided: on C_4-free graphs it
// never reports Found.
func TestDetectOneSided(t *testing.T) {
	g, err := graph.ProjectivePlaneIncidence(3) // girth 6, C_4-free
	if err != nil {
		t.Fatal(err)
	}
	for seed := uint64(0); seed < 6; seed++ {
		res, err := Detect(g, 2, core.Options{Seed: seed, MaxIterations: 50})
		if err != nil {
			t.Fatal(err)
		}
		if res.Found {
			t.Fatalf("seed %d: false positive", seed)
		}
	}
}

// Round complexity per run must be tiny (constant threshold 4, constant
// congestion) compared to the full-threshold detector.
func TestDetectConstantCongestion(t *testing.T) {
	rng := graph.NewRand(1)
	g, _, err := graph.PlantedLight(4000, 4, 2.0, rng)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Detect(g, 2, core.Options{Seed: 1, MaxIterations: 10, KeepGoing: true})
	if err != nil {
		t.Fatal(err)
	}
	// Each forwarder relays at most 4+1 identifiers, so congestion must be
	// bounded by a constant regardless of n.
	if res.MaxCongestion > 16 {
		t.Fatalf("MaxCongestion = %d with constant threshold 4", res.MaxCongestion)
	}
	// 10 iterations × 3 calls × (k phases × ≤5 ids + overhead) — rounds
	// must be far below n.
	if res.Rounds > 1200 {
		t.Fatalf("Rounds = %d, want O(1) per iteration", res.Rounds)
	}
}

// With many repetitions (classical amplification) the low-probability
// detector does find planted cycles, and its witnesses verify.
func TestDetectEventuallyFinds(t *testing.T) {
	rng := graph.NewRand(2)
	g, _, err := graph.PlantedLight(40, 4, 1.8, rng)
	if err != nil {
		t.Fatal(err)
	}
	// On n=40, τ ≈ k·2^k·n·p with p capped at 1 → activation 1/τ is small
	// but repetitions compensate.
	res, err := Detect(g, 2, core.Options{Seed: 7, MaxIterations: 250000})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Found {
		t.Fatalf("low-prob detector never found planted C_4 in %d iterations", res.IterationsRun)
	}
	if err := graph.IsSimpleCycle(g, res.Witness, 4); err != nil {
		t.Fatalf("invalid witness: %v", err)
	}
}

func TestSuccessProbScales(t *testing.T) {
	p1, err := SuccessProb(1000, 2)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := SuccessProb(100000, 2)
	if err != nil {
		t.Fatal(err)
	}
	if p1 <= p2 {
		t.Fatalf("success probability should shrink with n: %v vs %v", p1, p2)
	}
	// 1/(3τ) with τ = Θ(n^{1/2}·const) for k=2 → ratio ≈ (100)^{1/2} = 10.
	ratio := p1 / p2
	if ratio < 5 || ratio > 20 {
		t.Fatalf("p(1000)/p(100000) = %v, want ≈ 10 (τ ~ n^{1/2})", ratio)
	}
}

func TestDetectOddFindsTriangle(t *testing.T) {
	rng := graph.NewRand(3)
	g, _, err := graph.PlantCycle(graph.Tree(30, rng), 3, rng)
	if err != nil {
		t.Fatal(err)
	}
	res, err := DetectOdd(g, 1, OddOptions{Seed: 3, MaxIterations: 100000, SeedProb: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Found {
		t.Fatalf("planted C_3 missed in %d iterations", res.IterationsRun)
	}
	if err := graph.IsSimpleCycle(g, res.Witness, 3); err != nil {
		t.Fatalf("invalid witness: %v", err)
	}
}

func TestDetectOddFindsC5(t *testing.T) {
	rng := graph.NewRand(4)
	g, _, err := graph.PlantCycle(graph.HighGirth(40, 45, 5, rng), 5, rng)
	if err != nil {
		t.Fatal(err)
	}
	res, err := DetectOdd(g, 2, OddOptions{Seed: 6, MaxIterations: 500000, SeedProb: 0.3})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Found {
		t.Fatalf("planted C_5 missed in %d iterations", res.IterationsRun)
	}
	if err := graph.IsSimpleCycle(g, res.Witness, 5); err != nil {
		t.Fatalf("invalid witness: %v", err)
	}
}

func TestDetectOddOneSided(t *testing.T) {
	// Bipartite graphs have no odd cycles at all.
	g := graph.CompleteBipartite(8, 8)
	res, err := DetectOdd(g, 2, OddOptions{Seed: 1, MaxIterations: 3000, SeedProb: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Found {
		t.Fatal("odd cycle detected in a bipartite graph")
	}
}

func TestDetectOddValidation(t *testing.T) {
	g := graph.Cycle(5)
	if _, err := DetectOdd(g, 0, OddOptions{}); err == nil {
		t.Fatal("k=0 accepted")
	}
	tiny := graph.Path(2)
	res, err := DetectOdd(tiny, 1, OddOptions{MaxIterations: 5})
	if err != nil || res.Found {
		t.Fatalf("tiny graph: res=%+v err=%v", res, err)
	}
}

func TestDetectBoundedLowProb(t *testing.T) {
	rng := graph.NewRand(5)
	g, _, err := graph.PlantCycle(graph.Tree(60, rng), 4, rng)
	if err != nil {
		t.Fatal(err)
	}
	res, err := DetectBounded(g, 2, core.Options{Seed: 2, MaxIterations: 200000})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Found {
		t.Fatalf("bounded low-prob detector missed planted C_4 (%d iterations)", res.IterationsRun)
	}
	if err := graph.IsSimpleCycle(g, res.Witness, res.FoundLen); err != nil {
		t.Fatalf("invalid witness: %v", err)
	}
}

func TestBoundedSuccessProbSane(t *testing.T) {
	p, err := BoundedSuccessProb(10000, 3)
	if err != nil {
		t.Fatal(err)
	}
	if p <= 0 || p > 1.0/3 {
		t.Fatalf("BoundedSuccessProb = %v", p)
	}
	if OddSuccessProb(100) != 1.0/300 {
		t.Fatalf("OddSuccessProb(100) = %v", OddSuccessProb(100))
	}
	if math.IsNaN(p) {
		t.Fatal("NaN probability")
	}
}
