// Package obs is the zero-dependency observability layer: an atomic
// metrics registry with Prometheus text exposition, and a per-request
// stage tracer.
//
// The registry holds counters, gauges, sampled gauge funcs, and
// fixed-bucket histograms. Hot-path operations (Counter.Add,
// Histogram.Observe) are a handful of atomic adds — no locks, no
// allocation — so instrumented paths keep their AllocsPerRun pins.
// Registration is the only locked operation and happens at service
// construction.
//
// Exposition (Registry.WritePrometheus) renders the text format version
// 0.0.4: one # HELP and # TYPE line per family, cumulative histogram
// buckets with a +Inf terminal bucket plus _sum/_count, no exemplars,
// no timestamps. Histograms store native int64 units (nanoseconds,
// rounds, bytes) and apply a scale factor only at exposition, so the
// observe path stays integer-only.
//
// ParseExposition is the inverse: a strict parser for the same format,
// shared by the golden exposition test and cycleload's /metrics
// scraper, with histogram delta (Sub) and quantile estimation
// (Quantile) for server-side p50/p99 gating.
//
// Trace accumulates wall-clock time per request stage (validate, queue
// wait, batch linger, engine, cache install). A nil *Trace disables
// tracing at the cost of one pointer compare per stage boundary — the
// same disarmed-cost discipline as internal/faultpoint. Nothing in this
// package feeds back into detector execution, so transcripts and
// determinism fingerprints are unaffected by observation.
package obs
