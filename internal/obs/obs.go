package obs

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing metric. The zero value is ready
// to use; all methods are safe for concurrent callers and lock-free.
type Counter struct {
	v atomic.Int64
}

// Inc adds one to the counter.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n to the counter. n must be non-negative for the Prometheus
// counter contract to hold; the registry does not police it.
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a metric that can go up and down. The zero value is ready to
// use; all methods are lock-free.
type Gauge struct {
	v atomic.Int64
}

// Set replaces the gauge value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add adjusts the gauge by n (which may be negative).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Value returns the current gauge value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Max raises the gauge to n if n is larger than the current value.
func (g *Gauge) Max(n int64) {
	for {
		cur := g.v.Load()
		if n <= cur || g.v.CompareAndSwap(cur, n) {
			return
		}
	}
}

// Histogram is a fixed-bucket histogram over int64 observations in some
// native unit (typically nanoseconds for durations). Observations are
// two or three atomic adds — no locks, no allocation — so the hot path
// may call Observe freely. The bucket layout is frozen at construction.
//
// At exposition time every native value is multiplied by the scale
// factor passed at registration (1e-9 turns nanoseconds into the
// seconds base unit Prometheus expects).
type Histogram struct {
	upper  []int64 // ascending upper bounds, native units; +Inf implicit
	counts []atomic.Int64
	sum    atomic.Int64
}

func newHistogram(upper []int64) *Histogram {
	bounds := make([]int64, len(upper))
	copy(bounds, upper)
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("obs: histogram bounds not strictly ascending: %v", upper))
		}
	}
	return &Histogram{upper: bounds, counts: make([]atomic.Int64, len(bounds)+1)}
}

// Observe records one value in native units.
func (h *Histogram) Observe(v int64) {
	i := 0
	for i < len(h.upper) && v > h.upper[i] {
		i++
	}
	h.counts[i].Add(1)
	h.sum.Add(v)
}

// ObserveDuration records a duration in nanoseconds.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(int64(d)) }

// Count returns the total number of observations.
func (h *Histogram) Count() int64 {
	var n int64
	for i := range h.counts {
		n += h.counts[i].Load()
	}
	return n
}

// Sum returns the sum of all observed values in native units.
func (h *Histogram) Sum() int64 { return h.sum.Load() }

// DurationBuckets returns the default latency bucket bounds in
// nanoseconds: 10µs up to 5s in a 1-2.5-5 progression.
func DurationBuckets() []int64 {
	return []int64{
		10e3, 25e3, 50e3, 100e3, 250e3, 500e3, // 10µs .. 500µs
		1e6, 2.5e6, 5e6, 10e6, 25e6, 50e6, 100e6, 250e6, 500e6, // 1ms .. 500ms
		1e9, 2.5e9, 5e9, // 1s .. 5s
	}
}

// RoundBuckets returns bucket bounds for engine round counts.
func RoundBuckets() []int64 {
	return []int64{1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 4096, 16384}
}

// SizeBuckets returns power-of-two bucket bounds from 1 up to max
// (inclusive when max is a power of two). Useful for batch fill sizes
// and byte counts.
func SizeBuckets(max int64) []int64 {
	var b []int64
	for v := int64(1); v <= max; v *= 2 {
		b = append(b, v)
	}
	return b
}

// metricKind discriminates what a series reads from at collection time.
type series struct {
	labels string // pre-rendered `key="value"` pairs, "" when unlabeled
	ctr    *Counter
	gauge  *Gauge
	fn     func() int64
	hist   *Histogram
}

type family struct {
	name, help, typ string
	scale           float64 // histogram exposition multiplier
	series          []*series
}

// Registry holds metric families and renders them in Prometheus text
// exposition format. Registration takes a lock; reads on registered
// metrics never do. Metrics sharing a name form one family (one
// HELP/TYPE header) distinguished by labels.
type Registry struct {
	mu       sync.Mutex
	families []*family
	index    map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{index: make(map[string]*family)}
}

// Counter registers and returns an unlabeled counter.
func (r *Registry) Counter(name, help string) *Counter {
	c := &Counter{}
	r.register(name, help, "counter", 0, &series{ctr: c})
	return c
}

// LabeledCounter registers and returns a counter carrying one
// key="value" label. Counters sharing a name form one family.
func (r *Registry) LabeledCounter(name, help, key, value string) *Counter {
	c := &Counter{}
	r.register(name, help, "counter", 0, &series{labels: renderLabel(key, value), ctr: c})
	return c
}

// Gauge registers and returns an unlabeled gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	g := &Gauge{}
	r.register(name, help, "gauge", 0, &series{gauge: g})
	return g
}

// GaugeFunc registers a gauge whose value is sampled by calling fn at
// exposition time. fn must be safe to call from the scrape goroutine.
func (r *Registry) GaugeFunc(name, help string, fn func() int64) {
	r.register(name, help, "gauge", 0, &series{fn: fn})
}

// CounterFunc registers a counter whose value is sampled by calling fn
// at exposition time — for monotone counts owned by another subsystem
// (e.g. store append totals). fn must be monotone non-decreasing.
func (r *Registry) CounterFunc(name, help string, fn func() int64) {
	r.register(name, help, "counter", 0, &series{fn: fn})
}

// Histogram registers and returns an unlabeled histogram with the given
// ascending bucket upper bounds (native units) and exposition scale
// (native unit → Prometheus base unit, e.g. 1e-9 for nanoseconds).
func (r *Registry) Histogram(name, help string, buckets []int64, scale float64) *Histogram {
	h := newHistogram(buckets)
	r.register(name, help, "histogram", scale, &series{hist: h})
	return h
}

// LabeledHistogram registers and returns a histogram carrying one
// key="value" label. Histograms sharing a name form one family and must
// share bucket bounds and scale.
func (r *Registry) LabeledHistogram(name, help, key, value string, buckets []int64, scale float64) *Histogram {
	h := newHistogram(buckets)
	r.register(name, help, "histogram", scale, &series{labels: renderLabel(key, value), hist: h})
	return h
}

func (r *Registry) register(name, help, typ string, scale float64, s *series) {
	if !ValidMetricName(name) {
		panic("obs: invalid metric name " + strconv.Quote(name))
	}
	if strings.ContainsAny(help, "\n") {
		panic("obs: metric help must be a single line: " + name)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	fam := r.index[name]
	if fam == nil {
		fam = &family{name: name, help: help, typ: typ, scale: scale}
		r.index[name] = fam
		r.families = append(r.families, fam)
	} else {
		if fam.typ != typ {
			panic(fmt.Sprintf("obs: metric %s registered as %s and %s", name, fam.typ, typ))
		}
		if typ == "histogram" && fam.scale != scale {
			panic("obs: histogram family " + name + " registered with differing scales")
		}
	}
	for _, prev := range fam.series {
		if prev.labels == s.labels {
			panic(fmt.Sprintf("obs: duplicate registration of %s{%s}", name, s.labels))
		}
	}
	if typ == "histogram" && len(fam.series) > 0 {
		prev, next := fam.series[0].hist.upper, s.hist.upper
		if len(prev) != len(next) {
			panic("obs: histogram family " + name + " registered with differing buckets")
		}
		for i := range prev {
			if prev[i] != next[i] {
				panic("obs: histogram family " + name + " registered with differing buckets")
			}
		}
	}
	fam.series = append(fam.series, s)
}

// ValidMetricName reports whether name matches the Prometheus metric
// name charset [a-zA-Z_:][a-zA-Z0-9_:]*.
func ValidMetricName(name string) bool {
	if name == "" {
		return false
	}
	for i := 0; i < len(name); i++ {
		c := name[i]
		ok := c == '_' || c == ':' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(c >= '0' && c <= '9' && i > 0)
		if !ok {
			return false
		}
	}
	return true
}

// ValidLabelName reports whether name matches the Prometheus label name
// charset [a-zA-Z_][a-zA-Z0-9_]*.
func ValidLabelName(name string) bool {
	if name == "" {
		return false
	}
	for i := 0; i < len(name); i++ {
		c := name[i]
		ok := c == '_' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(c >= '0' && c <= '9' && i > 0)
		if !ok {
			return false
		}
	}
	return true
}

func renderLabel(key, value string) string {
	if !ValidLabelName(key) {
		panic("obs: invalid label name " + strconv.Quote(key))
	}
	return key + "=" + strconv.Quote(value)
}

// WritePrometheus renders every registered family in the Prometheus
// text exposition format (version 0.0.4, exemplar-free). Families
// appear in registration order; each carries exactly one # HELP and one
// # TYPE line. Histogram buckets are emitted cumulatively with a
// trailing +Inf bucket, _sum, and _count per series.
//
// Collection is not a single atomic snapshot across metrics, but each
// histogram's cumulative buckets are derived from one pass over its
// per-bucket counts, so bucket monotonicity always holds within a
// series.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	fams := make([]*family, len(r.families))
	copy(fams, r.families)
	r.mu.Unlock()

	var b strings.Builder
	for _, fam := range fams {
		b.Reset()
		fmt.Fprintf(&b, "# HELP %s %s\n", fam.name, escapeHelp(fam.help))
		fmt.Fprintf(&b, "# TYPE %s %s\n", fam.name, fam.typ)
		for _, s := range fam.series {
			switch {
			case s.hist != nil:
				writeHistogram(&b, fam, s)
			case s.ctr != nil:
				writeSample(&b, fam.name, s.labels, float64(s.ctr.Value()))
			case s.gauge != nil:
				writeSample(&b, fam.name, s.labels, float64(s.gauge.Value()))
			case s.fn != nil:
				writeSample(&b, fam.name, s.labels, float64(s.fn()))
			}
		}
		if _, err := io.WriteString(w, b.String()); err != nil {
			return err
		}
	}
	return nil
}

func writeSample(b *strings.Builder, name, labels string, v float64) {
	b.WriteString(name)
	if labels != "" {
		b.WriteByte('{')
		b.WriteString(labels)
		b.WriteByte('}')
	}
	b.WriteByte(' ')
	b.WriteString(formatValue(v))
	b.WriteByte('\n')
}

func writeHistogram(b *strings.Builder, fam *family, s *series) {
	h := s.hist
	scale := fam.scale
	if scale == 0 {
		scale = 1
	}
	var cum int64
	for i, bound := range h.upper {
		cum += h.counts[i].Load()
		writeBucket(b, fam.name, s.labels, formatValue(float64(bound)*scale), cum)
	}
	cum += h.counts[len(h.upper)].Load()
	writeBucket(b, fam.name, s.labels, "+Inf", cum)
	writeSample(b, fam.name+"_sum", s.labels, float64(h.sum.Load())*scale)
	b.WriteString(fam.name)
	b.WriteString("_count")
	if s.labels != "" {
		b.WriteByte('{')
		b.WriteString(s.labels)
		b.WriteByte('}')
	}
	b.WriteByte(' ')
	b.WriteString(strconv.FormatInt(cum, 10))
	b.WriteByte('\n')
}

func writeBucket(b *strings.Builder, name, labels, le string, cum int64) {
	b.WriteString(name)
	b.WriteString("_bucket{")
	if labels != "" {
		b.WriteString(labels)
		b.WriteByte(',')
	}
	b.WriteString(`le="`)
	b.WriteString(le)
	b.WriteString(`"} `)
	b.WriteString(strconv.FormatInt(cum, 10))
	b.WriteByte('\n')
}

func formatValue(v float64) string {
	if v == float64(int64(v)) {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func escapeHelp(s string) string {
	if !strings.ContainsAny(s, "\\\n") {
		return s
	}
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// FamilyNames returns the registered family names in registration
// order; useful for tests asserting coverage.
func (r *Registry) FamilyNames() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	names := make([]string, len(r.families))
	for i, f := range r.families {
		names[i] = f.name
	}
	return names
}

// sortedLabelKeys is kept for parse.go; declared here so both files
// share one small helper set.
func sortedLabelKeys(m map[string]string) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
