package obs

import (
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGauge(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_total", "a counter")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	g := r.Gauge("test_gauge", "a gauge")
	g.Set(7)
	g.Add(-2)
	if got := g.Value(); got != 5 {
		t.Fatalf("gauge = %d, want 5", got)
	}
	g.Max(3)
	if got := g.Value(); got != 5 {
		t.Fatalf("Max(3) lowered gauge to %d", got)
	}
	g.Max(9)
	if got := g.Value(); got != 9 {
		t.Fatalf("Max(9) = %d, want 9", got)
	}
}

func TestHistogramBucketing(t *testing.T) {
	h := newHistogram([]int64{10, 100, 1000})
	for _, v := range []int64{5, 10, 11, 100, 500, 5000} {
		h.Observe(v)
	}
	want := []int64{2, 2, 1, 1} // (..10] (10..100] (100..1000] (1000..]
	for i, w := range want {
		if got := h.counts[i].Load(); got != w {
			t.Errorf("bucket %d = %d, want %d", i, got, w)
		}
	}
	if got := h.Count(); got != 6 {
		t.Errorf("Count = %d, want 6", got)
	}
	if got := h.Sum(); got != 5626 {
		t.Errorf("Sum = %d, want 5626", got)
	}
}

// TestExpositionGolden renders a registry exercising every metric kind
// and validates the full payload through the strict parser: HELP/TYPE
// present for every family, legal name charset, histogram bucket
// monotonicity, +Inf terminal bucket, and _sum/_count consistency.
func TestExpositionGolden(t *testing.T) {
	r := NewRegistry()
	reqs := r.Counter("evencycle_requests_total", "requests observed")
	reqs.Add(12)
	for _, path := range []string{"hit", "computed"} {
		c := r.LabeledCounter("evencycle_served_total", "served by path", "path", path)
		c.Add(3)
	}
	r.Gauge("evencycle_queue_depth", "waiters in the gate").Set(2)
	r.GaugeFunc("evencycle_cache_entries", "cached verdicts", func() int64 { return 41 })
	h := r.Histogram("evencycle_request_duration_seconds", "request latency",
		DurationBuckets(), 1e-9)
	h.ObserveDuration(75 * time.Microsecond)
	h.ObserveDuration(3 * time.Millisecond)
	h.ObserveDuration(12 * time.Second) // lands in +Inf
	lh := r.LabeledHistogram("evencycle_stage_duration_seconds", "stage latency",
		"stage", "engine", DurationBuckets(), 1e-9)
	lh.ObserveDuration(time.Millisecond)

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	text := b.String()

	exp, err := ParseExposition(strings.NewReader(text))
	if err != nil {
		t.Fatalf("ParseExposition:\n%s\nerror: %v", text, err)
	}
	if err := exp.Validate(); err != nil {
		t.Fatalf("Validate:\n%s\nerror: %v", text, err)
	}

	// Every line must be a comment or a valid sample (the parser already
	// guarantees this); additionally check each family got exactly one
	// HELP and one TYPE line.
	for _, fam := range exp.Families {
		if strings.Count(text, "# HELP "+fam.Name+" ") != 1 {
			t.Errorf("family %s: want exactly one HELP line", fam.Name)
		}
		if strings.Count(text, "# TYPE "+fam.Name+" ") != 1 {
			t.Errorf("family %s: want exactly one TYPE line", fam.Name)
		}
	}
	if v, ok := exp.Value("evencycle_requests_total", nil); !ok || v != 12 {
		t.Errorf("requests_total = %v (found=%v), want 12", v, ok)
	}
	if sum, ok := exp.CounterSum("evencycle_served_total"); !ok || sum != 6 {
		t.Errorf("served_total sum = %v (found=%v), want 6", sum, ok)
	}
	snap, err := exp.MergedHistogram("evencycle_request_duration_seconds")
	if err != nil {
		t.Fatalf("MergedHistogram: %v", err)
	}
	if snap.Count != 3 {
		t.Errorf("histogram count = %v, want 3", snap.Count)
	}
	if !math.IsInf(snap.Bounds[len(snap.Bounds)-1], 1) {
		t.Errorf("last bound = %v, want +Inf", snap.Bounds[len(snap.Bounds)-1])
	}
	wantSum := (75*time.Microsecond + 3*time.Millisecond + 12*time.Second).Seconds()
	if math.Abs(snap.Sum-wantSum) > 1e-9 {
		t.Errorf("histogram sum = %v, want %v", snap.Sum, wantSum)
	}
	// No exemplars, no timestamps: every sample line is exactly
	// "name[{labels}] value".
	for _, line := range strings.Split(text, "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if strings.Count(line, " ") != 1 {
			t.Errorf("sample line has trailing content: %q", line)
		}
	}
}

func TestParserRejectsMalformed(t *testing.T) {
	cases := map[string]string{
		"sample before TYPE":  "foo_total 1\n",
		"bad name":            "# HELP 9bad x\n# TYPE 9bad counter\n9bad 1\n",
		"bad value":           "# HELP a x\n# TYPE a counter\na one\n",
		"timestamp":           "# HELP a x\n# TYPE a counter\na 1 1700000000\n",
		"unterminated labels": "# HELP a x\n# TYPE a counter\na{x=\"y\" 1\n",
		"duplicate TYPE":      "# TYPE a counter\n# TYPE a counter\n",
	}
	for name, text := range cases {
		if _, err := ParseExposition(strings.NewReader(text)); err == nil {
			t.Errorf("%s: parser accepted %q", name, text)
		}
	}
}

func TestValidateCatchesBrokenHistograms(t *testing.T) {
	cases := map[string]string{
		"missing +Inf": `# HELP h x
# TYPE h histogram
h_bucket{le="1"} 1
h_sum 1
h_count 1
`,
		"count mismatch": `# HELP h x
# TYPE h histogram
h_bucket{le="1"} 1
h_bucket{le="+Inf"} 2
h_sum 1
h_count 3
`,
		"non-monotone": `# HELP h x
# TYPE h histogram
h_bucket{le="1"} 5
h_bucket{le="2"} 3
h_bucket{le="+Inf"} 5
h_sum 1
h_count 5
`,
		"missing sum": `# HELP h x
# TYPE h histogram
h_bucket{le="+Inf"} 1
h_count 1
`,
	}
	for name, text := range cases {
		exp, err := ParseExposition(strings.NewReader(text))
		if err != nil {
			t.Fatalf("%s: parse error %v", name, err)
		}
		if err := exp.Validate(); err == nil {
			t.Errorf("%s: Validate accepted broken histogram", name)
		}
	}
}

// TestRegistryRace hammers every metric kind from many goroutines while
// a scraper renders the exposition, under -race in CI.
func TestRegistryRace(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("race_total", "x")
	g := r.Gauge("race_gauge", "x")
	h := r.Histogram("race_seconds", "x", DurationBuckets(), 1e-9)
	lh := r.LabeledHistogram("race_stage_seconds", "x", "stage", "engine", DurationBuckets(), 1e-9)
	r.GaugeFunc("race_fn", "x", func() int64 { return c.Value() })

	const writers = 8
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			for i := int64(0); ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				c.Inc()
				g.Add(1 - 2*(i&1))
				h.Observe(seed + i%1e6)
				lh.ObserveDuration(time.Duration(i % 1e7))
			}
		}(int64(w) * 1000)
	}
	for i := 0; i < 20; i++ {
		var b strings.Builder
		if err := r.WritePrometheus(&b); err != nil {
			t.Fatalf("WritePrometheus: %v", err)
		}
		exp, err := ParseExposition(strings.NewReader(b.String()))
		if err != nil {
			t.Fatalf("scrape %d unparseable: %v", i, err)
		}
		if err := exp.Validate(); err != nil {
			t.Fatalf("scrape %d invalid: %v", i, err)
		}
	}
	close(stop)
	wg.Wait()
}

func TestHistogramSnapshotDeltaAndQuantile(t *testing.T) {
	mk := func(obs ...time.Duration) string {
		r := NewRegistry()
		h := r.Histogram("d_seconds", "x", DurationBuckets(), 1e-9)
		for _, d := range obs {
			h.ObserveDuration(d)
		}
		var b strings.Builder
		if err := r.WritePrometheus(&b); err != nil {
			t.Fatal(err)
		}
		return b.String()
	}
	parse := func(text string) *HistogramSnapshot {
		exp, err := ParseExposition(strings.NewReader(text))
		if err != nil {
			t.Fatal(err)
		}
		snap, err := exp.MergedHistogram("d_seconds")
		if err != nil {
			t.Fatal(err)
		}
		return snap
	}
	before := parse(mk(time.Millisecond))
	after := parse(mk(time.Millisecond, 2*time.Millisecond, 4*time.Millisecond, 40*time.Millisecond))
	delta, err := after.Sub(before)
	if err != nil {
		t.Fatalf("Sub: %v", err)
	}
	if delta.Count != 3 {
		t.Fatalf("delta count = %v, want 3", delta.Count)
	}
	p50 := delta.Quantile(0.50)
	if p50 < 0.001 || p50 > 0.005 {
		t.Errorf("p50 = %v, want within (1ms, 5ms]", p50)
	}
	p99 := delta.Quantile(0.99)
	if p99 < 0.025 || p99 > 0.050 {
		t.Errorf("p99 = %v, want within (25ms, 50ms]", p99)
	}
	if !math.IsNaN((&HistogramSnapshot{}).Quantile(0.5)) {
		t.Errorf("empty snapshot quantile should be NaN")
	}
}

func TestTrace(t *testing.T) {
	var nilTrace *Trace
	nilTrace.Add(StageEngine, time.Second) // must not panic
	if nilTrace.Total() != 0 || nilTrace.Ns(StageEngine) != 0 {
		t.Fatal("nil trace should read zero")
	}
	nilTrace.Each(func(Stage, int64) { t.Fatal("nil trace Each fired") })

	tr := &Trace{}
	tr.Add(StageValidate, 10*time.Nanosecond)
	tr.Add(StageEngine, 30*time.Nanosecond)
	tr.Add(StageEngine, 5*time.Nanosecond)
	tr.Add(StageCacheInstall, -time.Second) // dropped
	if got := tr.Ns(StageEngine); got != 35 {
		t.Errorf("engine ns = %d, want 35", got)
	}
	if got := tr.Total(); got != 45 {
		t.Errorf("total = %d, want 45", got)
	}
	var seen []string
	tr.Each(func(s Stage, ns int64) { seen = append(seen, s.String()) })
	if strings.Join(seen, ",") != "validate,engine" {
		t.Errorf("Each order = %v", seen)
	}
	names := StageNames()
	if len(names) != int(NumStages) || names[0] != "validate" || names[4] != "cache_install" {
		t.Errorf("StageNames = %v", names)
	}
}

func TestValidNames(t *testing.T) {
	good := []string{"a", "evencycle_requests_total", "a:b", "_x", "A9"}
	bad := []string{"", "9a", "a-b", "a b", "a\"b"}
	for _, n := range good {
		if !ValidMetricName(n) {
			t.Errorf("ValidMetricName(%q) = false", n)
		}
	}
	for _, n := range bad {
		if ValidMetricName(n) {
			t.Errorf("ValidMetricName(%q) = true", n)
		}
	}
	if ValidLabelName("a:b") {
		t.Errorf("label names may not contain colons")
	}
	if !ValidLabelName("stage") {
		t.Errorf("ValidLabelName(stage) = false")
	}
}

func TestDisarmedObserveAllocs(t *testing.T) {
	h := newHistogram(DurationBuckets())
	var tr *Trace
	n := testing.AllocsPerRun(100, func() {
		h.Observe(123456)
		tr.Add(StageEngine, time.Millisecond)
	})
	if n != 0 {
		t.Fatalf("Observe allocated %v per run, want 0", n)
	}
}
