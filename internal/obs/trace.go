package obs

import (
	"sync/atomic"
	"time"
)

// Stage identifies one phase of a request's path through the service.
// The enum is fixed: exposition names, trace JSON keys, and the
// X-Evencycle-Stage-* response headers all derive from it.
type Stage uint8

// Stages in request-lifecycle order. A cache hit only records
// StageValidate; a fused miss records all five.
const (
	StageValidate     Stage = iota // request validation and fingerprinting
	StageQueueWait                 // waiting for an admission gate slot
	StageBatchLinger               // waiting in an open fuse batch
	StageEngine                    // the CONGEST engine session itself
	StageCacheInstall              // installing the verdict into the cache
	NumStages
)

var stageNames = [NumStages]string{
	"validate",
	"queue_wait",
	"batch_linger",
	"engine",
	"cache_install",
}

// String returns the stable snake_case stage name.
func (s Stage) String() string {
	if s < NumStages {
		return stageNames[s]
	}
	return "unknown"
}

// StageNames returns the stage names in lifecycle order.
func StageNames() []string {
	out := make([]string, NumStages)
	copy(out, stageNames[:])
	return out
}

// Trace accumulates per-stage wall-clock time for a single request. A
// request that opted in carries one Trace pointer through the service;
// on the fused miss path the batch leader stamps stages into every
// member's Trace, so all fields are atomic. A nil *Trace means "not
// traced" and costs one pointer compare at each stage boundary.
type Trace struct {
	ns [NumStages]atomic.Int64
}

// Add accumulates d into stage s. Negative durations are dropped (the
// monotonic clock never produces them; belt and braces for stubs).
func (t *Trace) Add(s Stage, d time.Duration) {
	if t == nil || d < 0 || s >= NumStages {
		return
	}
	t.ns[s].Add(int64(d))
}

// Ns returns the accumulated nanoseconds for stage s.
func (t *Trace) Ns(s Stage) int64 {
	if t == nil || s >= NumStages {
		return 0
	}
	return t.ns[s].Load()
}

// Total returns the sum over all stages in nanoseconds. Stages do not
// cover the full request wall clock (scheduling gaps between stages are
// unattributed), so Total is a lower bound on elapsed time.
func (t *Trace) Total() int64 {
	if t == nil {
		return 0
	}
	var sum int64
	for i := range t.ns {
		sum += t.ns[i].Load()
	}
	return sum
}

// Each calls f for every stage that recorded a nonzero duration, in
// lifecycle order.
func (t *Trace) Each(f func(s Stage, ns int64)) {
	if t == nil {
		return
	}
	for i := Stage(0); i < NumStages; i++ {
		if v := t.ns[i].Load(); v != 0 {
			f(i, v)
		}
	}
}
