package obs

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// Sample is one parsed exposition line: a metric name, its label set,
// and a value.
type Sample struct {
	Name   string
	Labels map[string]string
	Value  float64
}

// Label returns the value of label key, or "" when absent.
func (s Sample) Label(key string) string { return s.Labels[key] }

// ParsedFamily is one metric family reconstructed from # HELP/# TYPE
// headers and the samples that follow them.
type ParsedFamily struct {
	Name    string
	Help    string
	Type    string
	Samples []Sample
}

// Exposition is a fully parsed /metrics payload.
type Exposition struct {
	Families []*ParsedFamily
	byName   map[string]*ParsedFamily
}

// Family returns the family with the given base name, or nil.
func (e *Exposition) Family(name string) *ParsedFamily { return e.byName[name] }

// baseName strips the histogram sample suffixes so _bucket/_sum/_count
// lines attach to their family.
func baseName(name string, types map[string]string) string {
	for _, suf := range []string{"_bucket", "_sum", "_count"} {
		base := strings.TrimSuffix(name, suf)
		if base != name && types[base] == "histogram" {
			return base
		}
	}
	return name
}

// ParseExposition parses the Prometheus text exposition format
// strictly: every sample must follow a # HELP and # TYPE header for its
// family, names and labels must match the Prometheus charsets, and
// values must parse as floats. It does NOT validate histogram
// consistency — call Exposition.Validate for that.
func ParseExposition(r io.Reader) (*Exposition, error) {
	exp := &Exposition{byName: make(map[string]*ParsedFamily)}
	helps := make(map[string]string)
	types := make(map[string]string)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if strings.TrimSpace(line) == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			if err := parseHeader(exp, helps, types, line, lineNo); err != nil {
				return nil, err
			}
			continue
		}
		sample, err := parseSample(line, lineNo)
		if err != nil {
			return nil, err
		}
		base := baseName(sample.Name, types)
		fam := exp.byName[base]
		if fam == nil {
			return nil, fmt.Errorf("line %d: sample %q before its # TYPE header", lineNo, sample.Name)
		}
		if _, ok := helps[base]; !ok {
			return nil, fmt.Errorf("line %d: sample %q has no # HELP header", lineNo, sample.Name)
		}
		fam.Samples = append(fam.Samples, sample)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return exp, nil
}

func parseHeader(exp *Exposition, helps, types map[string]string, line string, lineNo int) error {
	fields := strings.SplitN(line, " ", 4)
	if len(fields) < 3 {
		return fmt.Errorf("line %d: malformed comment line %q", lineNo, line)
	}
	switch fields[1] {
	case "HELP":
		name := fields[2]
		if !ValidMetricName(name) {
			return fmt.Errorf("line %d: invalid metric name %q in HELP", lineNo, name)
		}
		if _, dup := helps[name]; dup {
			return fmt.Errorf("line %d: duplicate HELP for %q", lineNo, name)
		}
		help := ""
		if len(fields) == 4 {
			help = fields[3]
		}
		helps[name] = help
	case "TYPE":
		if len(fields) != 4 {
			return fmt.Errorf("line %d: malformed TYPE line %q", lineNo, line)
		}
		name, typ := fields[2], fields[3]
		if !ValidMetricName(name) {
			return fmt.Errorf("line %d: invalid metric name %q in TYPE", lineNo, name)
		}
		switch typ {
		case "counter", "gauge", "histogram", "summary", "untyped":
		default:
			return fmt.Errorf("line %d: unknown metric type %q", lineNo, typ)
		}
		if _, dup := types[name]; dup {
			return fmt.Errorf("line %d: duplicate TYPE for %q", lineNo, name)
		}
		types[name] = typ
		fam := &ParsedFamily{Name: name, Help: helps[name], Type: typ}
		exp.byName[name] = fam
		exp.Families = append(exp.Families, fam)
	default:
		// Plain comments are legal; ignore.
	}
	return nil
}

func parseSample(line string, lineNo int) (Sample, error) {
	s := Sample{Labels: map[string]string{}}
	rest := line
	brace := strings.IndexByte(rest, '{')
	if brace >= 0 {
		s.Name = rest[:brace]
		end := strings.LastIndexByte(rest, '}')
		if end < brace {
			return s, fmt.Errorf("line %d: unterminated label set in %q", lineNo, line)
		}
		if err := parseLabels(rest[brace+1:end], s.Labels, lineNo); err != nil {
			return s, err
		}
		rest = strings.TrimSpace(rest[end+1:])
	} else {
		sp := strings.IndexByte(rest, ' ')
		if sp < 0 {
			return s, fmt.Errorf("line %d: no value in sample %q", lineNo, line)
		}
		s.Name = rest[:sp]
		rest = strings.TrimSpace(rest[sp+1:])
	}
	if !ValidMetricName(s.Name) {
		return s, fmt.Errorf("line %d: invalid metric name %q", lineNo, s.Name)
	}
	// Reject exemplars and timestamps: the repo's exposition is plain
	// `name value` only.
	if strings.ContainsAny(rest, " #") {
		return s, fmt.Errorf("line %d: unexpected trailing content after value in %q", lineNo, line)
	}
	v, err := parseFloat(rest)
	if err != nil {
		return s, fmt.Errorf("line %d: bad value %q: %v", lineNo, rest, err)
	}
	s.Value = v
	return s, nil
}

func parseLabels(body string, into map[string]string, lineNo int) error {
	for body != "" {
		eq := strings.IndexByte(body, '=')
		if eq < 0 {
			return fmt.Errorf("line %d: malformed label pair in %q", lineNo, body)
		}
		key := body[:eq]
		if !ValidLabelName(key) {
			return fmt.Errorf("line %d: invalid label name %q", lineNo, key)
		}
		rest := body[eq+1:]
		if len(rest) == 0 || rest[0] != '"' {
			return fmt.Errorf("line %d: unquoted label value for %q", lineNo, key)
		}
		// Find the closing quote, honoring backslash escapes.
		i := 1
		for i < len(rest) {
			if rest[i] == '\\' {
				i += 2
				continue
			}
			if rest[i] == '"' {
				break
			}
			i++
		}
		if i >= len(rest) {
			return fmt.Errorf("line %d: unterminated label value for %q", lineNo, key)
		}
		val, err := strconv.Unquote(rest[:i+1])
		if err != nil {
			return fmt.Errorf("line %d: bad label value for %q: %v", lineNo, key, err)
		}
		if _, dup := into[key]; dup {
			return fmt.Errorf("line %d: duplicate label %q", lineNo, key)
		}
		into[key] = val
		body = rest[i+1:]
		body = strings.TrimPrefix(body, ",")
	}
	return nil
}

func parseFloat(s string) (float64, error) {
	switch s {
	case "+Inf":
		return math.Inf(1), nil
	case "-Inf":
		return math.Inf(-1), nil
	case "NaN":
		return math.NaN(), nil
	}
	return strconv.ParseFloat(s, 64)
}

// Validate checks exposition-level invariants beyond syntax: every
// histogram series must have monotone non-decreasing cumulative
// buckets, a +Inf bucket, and _sum/_count samples with _count equal to
// the +Inf bucket; counter and histogram values must be non-negative
// and finite.
func (e *Exposition) Validate() error {
	for _, fam := range e.Families {
		switch fam.Type {
		case "histogram":
			if err := validateHistogramFamily(fam); err != nil {
				return err
			}
		case "counter":
			for _, s := range fam.Samples {
				if s.Value < 0 || math.IsInf(s.Value, 0) || math.IsNaN(s.Value) {
					return fmt.Errorf("counter %s has invalid value %v", fam.Name, s.Value)
				}
			}
		}
	}
	return nil
}

func validateHistogramFamily(fam *ParsedFamily) error {
	type seriesAgg struct {
		bounds []float64
		counts []float64
		sum    *float64
		count  *float64
	}
	agg := map[string]*seriesAgg{}
	key := func(s Sample) string {
		parts := make([]string, 0, len(s.Labels))
		for _, k := range sortedLabelKeys(s.Labels) {
			if k == "le" {
				continue
			}
			parts = append(parts, k+"="+s.Labels[k])
		}
		return strings.Join(parts, ",")
	}
	get := func(s Sample) *seriesAgg {
		k := key(s)
		a := agg[k]
		if a == nil {
			a = &seriesAgg{}
			agg[k] = a
		}
		return a
	}
	for _, s := range fam.Samples {
		a := get(s)
		switch s.Name {
		case fam.Name + "_bucket":
			le, ok := s.Labels["le"]
			if !ok {
				return fmt.Errorf("histogram %s bucket without le label", fam.Name)
			}
			bound, err := parseFloat(le)
			if err != nil {
				return fmt.Errorf("histogram %s: bad le %q", fam.Name, le)
			}
			a.bounds = append(a.bounds, bound)
			a.counts = append(a.counts, s.Value)
		case fam.Name + "_sum":
			v := s.Value
			a.sum = &v
		case fam.Name + "_count":
			v := s.Value
			a.count = &v
		default:
			return fmt.Errorf("histogram %s has stray sample %s", fam.Name, s.Name)
		}
	}
	for k, a := range agg {
		label := fam.Name
		if k != "" {
			label += "{" + k + "}"
		}
		if len(a.bounds) == 0 {
			return fmt.Errorf("histogram %s has no buckets", label)
		}
		for i := 1; i < len(a.bounds); i++ {
			if a.bounds[i] <= a.bounds[i-1] {
				return fmt.Errorf("histogram %s: bucket bounds not ascending", label)
			}
			if a.counts[i] < a.counts[i-1] {
				return fmt.Errorf("histogram %s: cumulative counts decrease at le=%v", label, a.bounds[i])
			}
		}
		last := a.bounds[len(a.bounds)-1]
		if !math.IsInf(last, 1) {
			return fmt.Errorf("histogram %s: missing +Inf bucket", label)
		}
		if a.sum == nil {
			return fmt.Errorf("histogram %s: missing _sum", label)
		}
		if a.count == nil {
			return fmt.Errorf("histogram %s: missing _count", label)
		}
		if *a.count != a.counts[len(a.counts)-1] {
			return fmt.Errorf("histogram %s: _count %v != +Inf bucket %v", label, *a.count, a.counts[len(a.counts)-1])
		}
	}
	return nil
}

// HistogramSnapshot is a point-in-time cumulative histogram extracted
// from an exposition, suitable for delta and quantile arithmetic.
type HistogramSnapshot struct {
	Bounds     []float64 // ascending, last is +Inf
	Cumulative []float64 // cumulative counts aligned with Bounds
	Sum        float64
	Count      float64
}

// MergedHistogram collects every series of a histogram family (all
// non-le label sets) into one snapshot. All series must share bucket
// bounds, which holds for registry-produced expositions. Returns nil
// when the family is absent — callers treat that as an empty histogram.
func (e *Exposition) MergedHistogram(name string) (*HistogramSnapshot, error) {
	fam := e.byName[name]
	if fam == nil {
		return nil, nil
	}
	if fam.Type != "histogram" {
		return nil, fmt.Errorf("%s is a %s, not a histogram", name, fam.Type)
	}
	snap := &HistogramSnapshot{}
	boundIndex := map[float64]int{}
	for _, s := range fam.Samples {
		switch s.Name {
		case name + "_bucket":
			bound, err := parseFloat(s.Labels["le"])
			if err != nil {
				return nil, fmt.Errorf("%s: bad le %q", name, s.Labels["le"])
			}
			idx, ok := boundIndex[bound]
			if !ok {
				idx = len(snap.Bounds)
				boundIndex[bound] = idx
				snap.Bounds = append(snap.Bounds, bound)
				snap.Cumulative = append(snap.Cumulative, 0)
			}
			snap.Cumulative[idx] += s.Value
		case name + "_sum":
			snap.Sum += s.Value
		case name + "_count":
			snap.Count += s.Value
		}
	}
	// Bounds arrive in per-series order; normalize.
	order := make([]int, len(snap.Bounds))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return snap.Bounds[order[a]] < snap.Bounds[order[b]] })
	bounds := make([]float64, len(order))
	cum := make([]float64, len(order))
	for i, idx := range order {
		bounds[i] = snap.Bounds[idx]
		cum[i] = snap.Cumulative[idx]
	}
	snap.Bounds, snap.Cumulative = bounds, cum
	return snap, nil
}

// Sub returns the histogram of observations made between prev and h
// (h minus prev). Bounds must match; a nil prev is treated as empty.
func (h *HistogramSnapshot) Sub(prev *HistogramSnapshot) (*HistogramSnapshot, error) {
	if prev == nil {
		return h, nil
	}
	if len(prev.Bounds) != len(h.Bounds) {
		return nil, fmt.Errorf("histogram bucket layout changed between scrapes (%d vs %d buckets)", len(prev.Bounds), len(h.Bounds))
	}
	out := &HistogramSnapshot{
		Bounds:     h.Bounds,
		Cumulative: make([]float64, len(h.Cumulative)),
		Sum:        h.Sum - prev.Sum,
		Count:      h.Count - prev.Count,
	}
	for i := range h.Cumulative {
		if h.Bounds[i] != prev.Bounds[i] {
			return nil, fmt.Errorf("histogram bucket bound changed between scrapes (%v vs %v)", prev.Bounds[i], h.Bounds[i])
		}
		out.Cumulative[i] = h.Cumulative[i] - prev.Cumulative[i]
		if out.Cumulative[i] < 0 {
			return nil, fmt.Errorf("histogram count went backwards at le=%v", h.Bounds[i])
		}
	}
	return out, nil
}

// Quantile estimates the q-quantile (0 < q <= 1) with linear
// interpolation inside the containing bucket, mirroring Prometheus's
// histogram_quantile. Observations in the +Inf bucket clamp to the
// highest finite bound. Returns NaN for an empty histogram.
func (h *HistogramSnapshot) Quantile(q float64) float64 {
	if h == nil || len(h.Bounds) == 0 {
		return math.NaN()
	}
	total := h.Cumulative[len(h.Cumulative)-1]
	if total <= 0 {
		return math.NaN()
	}
	rank := q * total
	for i, cum := range h.Cumulative {
		if cum < rank {
			continue
		}
		upper := h.Bounds[i]
		if math.IsInf(upper, 1) {
			// Clamp to the highest finite bound.
			if i == 0 {
				return math.NaN()
			}
			return h.Bounds[i-1]
		}
		lower := 0.0
		prevCum := 0.0
		if i > 0 {
			lower = h.Bounds[i-1]
			prevCum = h.Cumulative[i-1]
		}
		inBucket := cum - prevCum
		if inBucket <= 0 {
			return upper
		}
		return lower + (upper-lower)*(rank-prevCum)/inBucket
	}
	return h.Bounds[len(h.Bounds)-1]
}

// CounterSum returns the sum of a counter family's samples across all
// label sets (0 when absent) and whether the family exists.
func (e *Exposition) CounterSum(name string) (float64, bool) {
	fam := e.byName[name]
	if fam == nil {
		return 0, false
	}
	var sum float64
	for _, s := range fam.Samples {
		sum += s.Value
	}
	return sum, true
}

// Value returns the value of the unique sample of name with exactly the
// given labels (nil means unlabeled), and whether it was found.
func (e *Exposition) Value(name string, labels map[string]string) (float64, bool) {
	fam := e.byName[baseNameLoose(e, name)]
	if fam == nil {
		return 0, false
	}
	for _, s := range fam.Samples {
		if s.Name != name {
			continue
		}
		if len(s.Labels) != len(labels) {
			continue
		}
		match := true
		for k, v := range labels {
			if s.Labels[k] != v {
				match = false
				break
			}
		}
		if match {
			return s.Value, true
		}
	}
	return 0, false
}

func baseNameLoose(e *Exposition, name string) string {
	if e.byName[name] != nil {
		return name
	}
	for _, suf := range []string{"_bucket", "_sum", "_count"} {
		if base := strings.TrimSuffix(name, suf); base != name && e.byName[base] != nil {
			return base
		}
	}
	return name
}
