package sched

import (
	"context"
	"fmt"
	"sync"
	"time"
)

// Gate is a bounded, FIFO-fair admission semaphore. The detection service
// layers it over TrialRunner: every request acquires one of Slots
// computation slots before it may spend engine-session work, so a burst of
// expensive requests queues instead of oversubscribing the host, and slots
// are granted strictly in arrival order — a stream of cheap requests
// cannot starve an earlier expensive one (fairness across sessions).
//
// Waiting is context-aware: a canceled waiter leaves the queue without
// consuming a slot. The zero value is not usable; call NewGate.
type Gate struct {
	// Observe, when set, receives the queue-wait duration of every
	// granted Acquire (zero for fast-path grants; canceled waiters are
	// not reported). Purely passive; set before the gate is shared, like
	// an engine field. The disarmed cost is one nil-check per Acquire.
	Observe func(wait time.Duration)

	mu      sync.Mutex
	slots   int
	inUse   int
	waiters []chan struct{} // FIFO; closed when the head waiter is granted
}

// NewGate returns a gate with the given number of slots (minimum 1).
func NewGate(slots int) *Gate {
	if slots < 1 {
		slots = 1
	}
	return &Gate{slots: slots}
}

// Slots returns the gate's capacity.
func (g *Gate) Slots() int { return g.slots }

// InUse returns the number of currently held slots.
func (g *Gate) InUse() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.inUse
}

// Waiting returns the current queue length.
func (g *Gate) Waiting() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return len(g.waiters)
}

// Acquire blocks until a slot is granted (FIFO order) or ctx is done, in
// which case it returns ctx's error without holding a slot.
func (g *Gate) Acquire(ctx context.Context) error {
	g.mu.Lock()
	if g.inUse < g.slots && len(g.waiters) == 0 {
		g.inUse++
		g.mu.Unlock()
		if g.Observe != nil {
			g.Observe(0)
		}
		return nil
	}
	var enqueued time.Time
	if g.Observe != nil {
		enqueued = time.Now()
	}
	ready := make(chan struct{})
	g.waiters = append(g.waiters, ready)
	g.mu.Unlock()

	select {
	case <-ready:
		if g.Observe != nil {
			g.Observe(time.Since(enqueued))
		}
		return nil
	case <-ctx.Done():
		g.mu.Lock()
		// Either remove ourselves from the queue, or — if the grant raced
		// the cancellation — pass the already-granted slot on.
		for i, w := range g.waiters {
			if w == ready {
				g.waiters = append(g.waiters[:i], g.waiters[i+1:]...)
				g.mu.Unlock()
				return ctx.Err()
			}
		}
		g.releaseLocked()
		g.mu.Unlock()
		return ctx.Err()
	}
}

// Release returns a slot, granting it to the head waiter if any. Releasing
// an unheld slot panics — that is always a caller bug.
func (g *Gate) Release() {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.releaseLocked()
}

func (g *Gate) releaseLocked() {
	if g.inUse <= 0 {
		panic(fmt.Sprintf("sched: Gate.Release without Acquire (inUse=%d)", g.inUse))
	}
	if len(g.waiters) > 0 {
		// Hand the slot directly to the head waiter: inUse stays constant,
		// so FIFO order is preserved without a wakeup race.
		head := g.waiters[0]
		g.waiters = g.waiters[1:]
		close(head)
		return
	}
	g.inUse--
}
