package sched

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// PanicError is the error every waiter of a batch receives when the
// batch's Exec panicked. The panic is contained at the dispatch site —
// dispatch may run on a timer goroutine, where an escaping panic would
// kill the process — and surfaces as an ordinary error carrying the
// recovered value.
type PanicError struct{ Value any }

func (e PanicError) Error() string { return fmt.Sprintf("sched: batch exec panicked: %v", e.Value) }

// Batcher groups concurrent Do calls that share a compatibility key into
// batches and hands each batch to Exec as one unit. The first caller for
// a key opens a batch and arms the linger timer; later callers join until
// the batch fills (MaxBatch), its weight budget is exhausted (MaxWeight),
// or the timer fires — whichever comes first dispatches. The service's
// miss path uses this to fuse compatible detection requests into one
// engine session.
//
// Dispatch runs Exec synchronously on whichever goroutine triggered it
// (the filling caller or the timer), mirroring the single-flight leader
// convention: a batch that has started always runs to completion. A
// caller whose context ends while waiting abandons its result but does
// not retract its item — Exec still computes it (and the service still
// caches it).
//
// MaxBatch ≤ 1 degenerates to the solo path: Do invokes Exec inline with
// a single-item batch, no timer, no cross-goroutine hand-off.
type Batcher[K comparable, T, R any] struct {
	// MaxBatch caps the number of items per batch (≤ 1 = solo).
	MaxBatch int
	// Linger is how long an open batch waits for joiners before
	// dispatching; ≤ 0 dispatches immediately (solo behavior with batch
	// bookkeeping).
	Linger time.Duration
	// Weight and MaxWeight bound a batch by total item weight (e.g. fused
	// node count): a join that would push the batch past MaxWeight
	// dispatches the open batch and opens a new one. Zero MaxWeight or nil
	// Weight disables the bound.
	Weight    func(T) int
	MaxWeight int
	// Exec computes a batch. It must return one result per item (or an
	// error applied to every item).
	Exec func(key K, items []T) ([]R, error)
	// Observe, when set, receives the fill size of every executed batch
	// (solo degenerate calls report 1; all-abandoned skipped batches are
	// not reported). Purely passive; set before the batcher is shared.
	Observe func(size int)

	mu      sync.Mutex
	pending map[K]*openBatch[T, R]

	skipped atomic.Int64
}

// Skipped reports how many batches were skipped outright because every
// waiter had abandoned them before dispatch (their Exec never ran).
func (b *Batcher[K, T, R]) Skipped() int64 { return b.skipped.Load() }

// openBatch accumulates joiners until dispatch. Each waiter holds its
// item's index and blocks on done; dispatch publishes results/err and
// then closes done, so one broadcast wakes every waiter and the batch
// needs no per-caller channel.
type openBatch[T, R any] struct {
	items  []T
	weight int
	timer  *time.Timer

	done    chan struct{}
	results []R
	err     error

	// abandoned counts waiters whose context ended before dispatch
	// sealed the batch; both sides touch it under Batcher.mu. sealed
	// marks the point past which abandoning no longer matters (dispatch
	// has taken its snapshot).
	abandoned int
	sealed    bool
}

// Do submits one item under the given compatibility key and blocks until
// its batch has been computed (or ctx ends). It returns the item's
// result and the size of the batch it was computed in.
func (b *Batcher[K, T, R]) Do(ctx context.Context, key K, item T) (R, int, error) {
	var zero R
	if b.MaxBatch <= 1 {
		if b.Observe != nil {
			b.Observe(1)
		}
		results, err := b.Exec(key, []T{item})
		if err != nil {
			return zero, 1, err
		}
		if len(results) != 1 {
			return zero, 1, fmt.Errorf("sched: batch exec returned %d results for 1 item", len(results))
		}
		return results[0], 1, nil
	}
	w := 1
	if b.Weight != nil {
		w = b.Weight(item)
	}

	b.mu.Lock()
	if b.pending == nil {
		b.pending = make(map[K]*openBatch[T, R])
	}
	ob := b.pending[key]
	if ob != nil && b.MaxWeight > 0 && ob.weight+w > b.MaxWeight {
		// This item does not fit: the open batch dispatches as-is and the
		// item opens a fresh one.
		delete(b.pending, key)
		ob.timer.Stop()
		full := ob
		defer b.dispatch(key, full)
		ob = nil
	}
	if ob == nil {
		ob = &openBatch[T, R]{done: make(chan struct{})}
		b.pending[key] = ob
		cur := ob
		ob.timer = time.AfterFunc(max(b.Linger, 0), func() {
			b.mu.Lock()
			if b.pending[key] != cur {
				b.mu.Unlock()
				return
			}
			delete(b.pending, key)
			b.mu.Unlock()
			b.dispatch(key, cur)
		})
	}
	idx := len(ob.items)
	ob.items = append(ob.items, item)
	ob.weight += w
	if len(ob.items) >= b.MaxBatch {
		delete(b.pending, key)
		ob.timer.Stop()
		b.mu.Unlock()
		b.dispatch(key, ob)
	} else {
		b.mu.Unlock()
	}

	select {
	case <-ob.done:
		if ob.err != nil {
			return zero, len(ob.items), ob.err
		}
		return ob.results[idx], len(ob.items), nil
	case <-ctx.Done():
		// Record the abandonment: if every waiter of this batch leaves
		// before dispatch seals it, the engine run is skipped entirely.
		b.mu.Lock()
		if !ob.sealed {
			ob.abandoned++
		}
		b.mu.Unlock()
		return zero, 0, ctx.Err()
	}
}

// dispatch computes a detached batch, publishes the results, and wakes
// every waiter with one close. Runs on the triggering goroutine; the
// batch is already out of pending, so items cannot grow concurrently and
// the close is the happens-before edge for results/err.
//
// Two failure-domain rules apply. A batch whose every waiter abandoned
// it before this point skips Exec entirely — nobody will read the
// results, so the engine run would be pure waste (a batch with even one
// surviving waiter still computes all items, so the service can cache
// the abandoned ones). And a panicking Exec is contained here: the
// waiters wake with a PanicError instead of hanging on done forever,
// and the panic never unwinds into the timer goroutine.
func (b *Batcher[K, T, R]) dispatch(key K, ob *openBatch[T, R]) {
	b.mu.Lock()
	ob.sealed = true
	allAbandoned := ob.abandoned >= len(ob.items)
	b.mu.Unlock()

	// Registered before the recover fence (deferred functions run in
	// reverse order), so results/err — including a PanicError — are
	// always published before the wake-up broadcast.
	defer close(ob.done)
	if allAbandoned {
		b.skipped.Add(1)
		ob.err = context.Canceled
		return
	}
	defer func() {
		if r := recover(); r != nil {
			ob.results, ob.err = nil, PanicError{Value: r}
		}
	}()
	if b.Observe != nil {
		b.Observe(len(ob.items))
	}
	results, err := b.Exec(key, ob.items)
	if err == nil && len(results) != len(ob.items) {
		err = fmt.Errorf("sched: batch exec returned %d results for %d items", len(results), len(ob.items))
	}
	ob.results, ob.err = results, err
}
