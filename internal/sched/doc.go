// Package sched is the shared trial scheduler of the simulation runtime:
// every detector and every bench sweep in this repository repeats
// independent simulation sessions — Algorithm 1 repeats K colored-BFS
// iterations, the quantum layer amplifies a low-probability detector over
// many attempts, experiments sweep (n, seed) grids — and this package runs
// those N independent trials across a bounded worker pool with results
// that are bit-identical to the sequential loop.
//
// Determinism contract. Run behaves observably like
//
//	for i := 0; i < n; i++ {
//	    v, err := trial(i)
//	    if err != nil { return err }
//	    if fold(i, v) { break }
//	}
//
// for every worker count: fold is invoked sequentially, in trial-index
// order, on exactly the prefix of trials up to and including the first one
// whose fold returns true (the "hit"). Parallel execution may speculatively
// run trials past the hit (overshoot); their results are discarded, never
// folded, so aggregates built inside fold are reproducible bit for bit.
//
// Trials must be independent: trial(i) may not observe state written by
// trial(j). Determinism inside one trial is the trial's own business —
// detectors achieve it by deriving all randomness from Tag(seed, i, ...).
//
// Gate complements TrialRunner for long-running servers: a FIFO-fair,
// context-aware admission semaphore that bounds how many computations run
// at once (the detection service admits every request through one before
// spending engine work, so bursts queue in arrival order instead of
// oversubscribing the host).
package sched
