package sched

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestGateBoundsConcurrency(t *testing.T) {
	const slots, workers, perWorker = 3, 16, 20
	g := NewGate(slots)
	var cur, peak, total atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				if err := g.Acquire(context.Background()); err != nil {
					t.Error(err)
					return
				}
				c := cur.Add(1)
				for {
					p := peak.Load()
					if c <= p || peak.CompareAndSwap(p, c) {
						break
					}
				}
				total.Add(1)
				cur.Add(-1)
				g.Release()
			}
		}()
	}
	wg.Wait()
	if got := peak.Load(); got > slots {
		t.Fatalf("peak concurrency %d exceeds %d slots", got, slots)
	}
	if got := total.Load(); got != workers*perWorker {
		t.Fatalf("completed %d acquisitions, want %d", got, workers*perWorker)
	}
	if g.InUse() != 0 || g.Waiting() != 0 {
		t.Fatalf("gate not drained: inUse=%d waiting=%d", g.InUse(), g.Waiting())
	}
}

// TestGateFIFO fills the gate, queues waiters in a known order, and checks
// grants come back in exactly that order.
func TestGateFIFO(t *testing.T) {
	g := NewGate(1)
	if err := g.Acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	const n = 8
	order := make(chan int, n)
	var started sync.WaitGroup
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		started.Add(1)
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			// Serialize queue entry so arrival order is deterministic.
			started.Done()
			if err := g.Acquire(context.Background()); err != nil {
				t.Error(err)
				return
			}
			order <- i
			g.Release()
		}(i)
		started.Wait()
		waitUntil(t, func() bool { return g.Waiting() == i+1 })
	}
	g.Release()
	wg.Wait()
	close(order)
	want := 0
	for got := range order {
		if got != want {
			t.Fatalf("grant order: got waiter %d at position %d", got, want)
		}
		want++
	}
}

func TestGateAcquireCancel(t *testing.T) {
	g := NewGate(1)
	if err := g.Acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() {
		errc <- g.Acquire(ctx)
	}()
	waitUntil(t, func() bool { return g.Waiting() == 1 })
	cancel()
	if err := <-errc; err != context.Canceled {
		t.Fatalf("canceled Acquire returned %v", err)
	}
	waitUntil(t, func() bool { return g.Waiting() == 0 })
	// The held slot is unaffected; releasing it leaves a fully free gate.
	g.Release()
	if err := g.Acquire(context.Background()); err != nil {
		t.Fatalf("Acquire on a free gate: %v", err)
	}
	g.Release()
	if g.InUse() != 0 || g.Waiting() != 0 {
		t.Fatalf("gate not drained: inUse=%d waiting=%d", g.InUse(), g.Waiting())
	}
}

func waitUntil(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached in time")
		}
		time.Sleep(time.Millisecond)
	}
}
