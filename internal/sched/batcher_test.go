package sched

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestBatcherFusesConcurrentSubmitters pins that concurrent Do calls under
// one key land in one Exec call (the batch fills before the linger expires)
// and that each caller receives its own item's result and the batch size.
func TestBatcherFusesConcurrentSubmitters(t *testing.T) {
	var execs atomic.Int64
	b := &Batcher[string, int, int]{
		MaxBatch: 4,
		Linger:   time.Second,
		Exec: func(key string, items []int) ([]int, error) {
			execs.Add(1)
			out := make([]int, len(items))
			for i, it := range items {
				out[i] = it * 10
			}
			return out, nil
		},
	}
	var wg sync.WaitGroup
	results := make([]int, 4)
	sizes := make([]int, 4)
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			r, size, err := b.Do(context.Background(), "k", i)
			if err != nil {
				t.Errorf("Do(%d): %v", i, err)
			}
			results[i], sizes[i] = r, size
		}(i)
	}
	wg.Wait()
	if got := execs.Load(); got != 1 {
		t.Fatalf("exec calls = %d, want 1", got)
	}
	for i := 0; i < 4; i++ {
		if results[i] != i*10 {
			t.Errorf("result[%d] = %d, want %d", i, results[i], i*10)
		}
		if sizes[i] != 4 {
			t.Errorf("size[%d] = %d, want 4", i, sizes[i])
		}
	}
}

// TestBatcherLingerDispatch pins that a lone submitter is dispatched by the
// linger timer as a batch of one.
func TestBatcherLingerDispatch(t *testing.T) {
	b := &Batcher[string, int, int]{
		MaxBatch: 8,
		Linger:   5 * time.Millisecond,
		Exec: func(key string, items []int) ([]int, error) {
			out := make([]int, len(items))
			for i, it := range items {
				out[i] = it + 1
			}
			return out, nil
		},
	}
	r, size, err := b.Do(context.Background(), "k", 41)
	if err != nil || r != 42 || size != 1 {
		t.Fatalf("Do = (%d, %d, %v), want (42, 1, nil)", r, size, err)
	}
}

// TestBatcherKeysDoNotMix pins that different compatibility keys never
// share a batch.
func TestBatcherKeysDoNotMix(t *testing.T) {
	var mu sync.Mutex
	batches := map[string][][]int{}
	b := &Batcher[string, int, int]{
		MaxBatch: 2,
		Linger:   5 * time.Millisecond,
		Exec: func(key string, items []int) ([]int, error) {
			mu.Lock()
			batches[key] = append(batches[key], append([]int(nil), items...))
			mu.Unlock()
			return make([]int, len(items)), nil
		},
	}
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		for _, key := range []string{"a", "b"} {
			wg.Add(1)
			go func(key string, i int) {
				defer wg.Done()
				if _, _, err := b.Do(context.Background(), key, i); err != nil {
					t.Errorf("Do(%s, %d): %v", key, i, err)
				}
			}(key, i)
		}
	}
	wg.Wait()
	mu.Lock()
	defer mu.Unlock()
	for _, key := range []string{"a", "b"} {
		n := 0
		for _, items := range batches[key] {
			n += len(items)
		}
		if n != 2 {
			t.Errorf("key %q: %d items across %d batches, want 2", key, n, len(batches[key]))
		}
	}
}

// TestBatcherMaxWeight pins the weight bound: a join that would exceed
// MaxWeight dispatches the open batch and starts a new one.
func TestBatcherMaxWeight(t *testing.T) {
	var mu sync.Mutex
	var sizes []int
	release := make(chan struct{})
	b := &Batcher[string, int, int]{
		MaxBatch:  8,
		Linger:    50 * time.Millisecond,
		Weight:    func(it int) int { return it },
		MaxWeight: 100,
		Exec: func(key string, items []int) ([]int, error) {
			mu.Lock()
			sizes = append(sizes, len(items))
			mu.Unlock()
			return make([]int, len(items)), nil
		},
	}
	var wg sync.WaitGroup
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-release
			if _, _, err := b.Do(context.Background(), "k", 60); err != nil {
				t.Errorf("Do: %v", err)
			}
		}()
	}
	close(release)
	wg.Wait()
	mu.Lock()
	defer mu.Unlock()
	for _, s := range sizes {
		if s > 1 {
			t.Errorf("batch of %d items × weight 60 exceeds MaxWeight 100", s)
		}
	}
	total := 0
	for _, s := range sizes {
		total += s
	}
	if total != 3 {
		t.Errorf("%d items dispatched, want 3", total)
	}
}

// TestBatcherSoloMode pins that MaxBatch ≤ 1 runs inline, one Exec per Do.
func TestBatcherSoloMode(t *testing.T) {
	var execs atomic.Int64
	b := &Batcher[string, int, int]{
		MaxBatch: 1,
		Linger:   time.Hour, // must be irrelevant
		Exec: func(key string, items []int) ([]int, error) {
			execs.Add(1)
			if len(items) != 1 {
				t.Errorf("solo batch has %d items", len(items))
			}
			return []int{items[0] * 2}, nil
		},
	}
	for i := 0; i < 3; i++ {
		r, size, err := b.Do(context.Background(), "k", i)
		if err != nil || r != i*2 || size != 1 {
			t.Fatalf("Do(%d) = (%d, %d, %v)", i, r, size, err)
		}
	}
	if got := execs.Load(); got != 3 {
		t.Fatalf("exec calls = %d, want 3", got)
	}
}

// TestBatcherExecError pins that an Exec error reaches every waiter.
func TestBatcherExecError(t *testing.T) {
	boom := errors.New("boom")
	b := &Batcher[string, int, int]{
		MaxBatch: 2,
		Linger:   time.Second,
		Exec: func(key string, items []int) ([]int, error) {
			return nil, boom
		},
	}
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if _, _, err := b.Do(context.Background(), "k", i); !errors.Is(err, boom) {
				t.Errorf("Do(%d) err = %v, want boom", i, err)
			}
		}(i)
	}
	wg.Wait()
}

// TestBatcherCanceledWaiter pins that a caller whose context ends gets
// ctx.Err() promptly, and that a batch whose only waiter abandoned it
// is skipped at dispatch (Exec never runs — see TestBatcherPartial-
// AbandonStillComputesAll for the ≥1-survivor case that does compute).
func TestBatcherCanceledWaiter(t *testing.T) {
	computed := make(chan []int, 1)
	b := &Batcher[string, int, int]{
		MaxBatch: 8,
		Linger:   30 * time.Millisecond,
		Exec: func(key string, items []int) ([]int, error) {
			computed <- append([]int(nil), items...)
			return make([]int, len(items)), nil
		},
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, err := b.Do(ctx, "k", 7); !errors.Is(err, context.Canceled) {
		t.Fatalf("Do err = %v, want context.Canceled", err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for b.Skipped() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("fully-abandoned batch never skipped")
		}
		time.Sleep(time.Millisecond)
	}
	select {
	case items := <-computed:
		t.Fatalf("abandoned batch computed %v, want skip", items)
	default:
	}
}
