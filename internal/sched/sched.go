package sched

import (
	"runtime"
	"sync"
)

// TrialRunner executes batches of independent trials.
type TrialRunner struct {
	// Workers is the number of trials in flight: 0 or 1 runs trials
	// sequentially on the calling goroutine, negative means GOMAXPROCS.
	Workers int
}

// Auto is a TrialRunner with one worker per CPU.
var Auto = TrialRunner{Workers: -1}

func (r TrialRunner) workers() int {
	if r.Workers < 0 {
		return runtime.GOMAXPROCS(0)
	}
	return r.Workers
}

// Result summarizes one batch.
type Result struct {
	// Stopped is the index of the trial whose fold returned true, or -1
	// when the batch ran to completion (or stopped on an error).
	Stopped int
	// Folded is the number of trials folded — the length of the
	// deterministic prefix.
	Folded int
	// Executed is the number of trials actually run, including parallel
	// overshoot past the stopping index. Executed == Folded whenever
	// Workers <= 1.
	Executed int
}

// Run executes trials 0..n-1 through trial and folds their values in index
// order; fold returning true stops the batch (fold may be nil: run
// everything). An error from trial(i) aborts the batch with that error
// after folding trials 0..i-1 — again matching the sequential loop
// regardless of worker count.
func Run[T any](r TrialRunner, n int, trial func(i int) (T, error), fold func(i int, v T) bool) (Result, error) {
	res := Result{Stopped: -1}
	if n <= 0 {
		return res, nil
	}
	w := r.workers()
	if w > n {
		w = n
	}
	if w <= 1 {
		for i := 0; i < n; i++ {
			v, err := trial(i)
			res.Executed++
			if err != nil {
				return res, err
			}
			res.Folded++
			if fold != nil && fold(i, v) {
				res.Stopped = i
				break
			}
		}
		return res, nil
	}

	// Parallel path: workers pull trial indices in order from a shared
	// cursor with a bounded lookahead ring; the caller's goroutine drains
	// the ring strictly in index order, folding as results become ready.
	// Early stop (or an error) shrinks the bound so no new trial past the
	// decision point is started; in-flight overshoot completes and is
	// dropped.
	type slot struct {
		v     T
		err   error
		ready bool
	}
	ringSize := 4 * w
	ring := make([]slot, ringSize)
	var (
		mu       sync.Mutex
		cond     = sync.NewCond(&mu)
		next     int // next index to hand to a worker
		deliver  int // next index to fold
		bound    = n // exclusive upper bound on indices to start
		executed int
		wg       sync.WaitGroup
	)
	for i := 0; i < w; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				mu.Lock()
				for next < bound && next >= deliver+ringSize {
					cond.Wait()
				}
				if next >= bound {
					mu.Unlock()
					return
				}
				i := next
				next++
				mu.Unlock()
				v, err := trial(i)
				mu.Lock()
				executed++
				sl := &ring[i%ringSize]
				sl.v, sl.err, sl.ready = v, err, true
				cond.Broadcast()
				mu.Unlock()
			}
		}()
	}

	var retErr error
	mu.Lock()
	for deliver < bound {
		sl := &ring[deliver%ringSize]
		if !sl.ready {
			cond.Wait()
			continue
		}
		i := deliver
		v, err := sl.v, sl.err
		var zero T
		sl.v, sl.err, sl.ready = zero, nil, false
		deliver++
		if err != nil {
			retErr = err
			bound = i // no further starts; nothing past i is folded
			cond.Broadcast()
			break
		}
		mu.Unlock()
		res.Folded++
		stop := fold != nil && fold(i, v)
		mu.Lock()
		if stop {
			res.Stopped = i
			bound = deliver
			cond.Broadcast()
			break
		}
		cond.Broadcast() // ring slot freed: unblock lookahead-limited workers
	}
	mu.Unlock()
	wg.Wait()
	res.Executed = executed
	return res, retErr
}

// Tag chains its parts through a SplitMix64-style mix into a 64-bit tag.
// Callers use it to give every (trial, subcall) pair a distinct,
// deterministic random seed or engine session tag, so that trials are
// decorrelated yet reproducible under any scheduling.
func Tag(parts ...uint64) uint64 {
	h := uint64(0x9e3779b97f4a7c15)
	for _, p := range parts {
		h ^= p + 0x9e3779b97f4a7c15 + (h << 6) + (h >> 2)
		h ^= h >> 30
		h *= 0xbf58476d1ce4e5b9
		h ^= h >> 27
		h *= 0x94d049bb133111eb
		h ^= h >> 31
	}
	return h
}
