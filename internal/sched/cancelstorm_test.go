package sched

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// waitGoroutines polls until the goroutine count returns to within slack
// of base, failing the test if it never does — the leak detector for
// mass-cancellation storms.
func waitGoroutines(t *testing.T, base, slack int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= base+slack {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d now vs %d at start", runtime.NumGoroutine(), base)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestGateMassCancellation cancels a storm of queued waiters while the
// slot holders churn, then checks the gate's books balance: no waiter
// leaks a goroutine, no slot is double-granted, and the gate drains to
// idle.
func TestGateMassCancellation(t *testing.T) {
	base := runtime.NumGoroutine()
	g := NewGate(2)

	// Fill both slots so every storm waiter actually queues.
	for i := 0; i < 2; i++ {
		if err := g.Acquire(context.Background()); err != nil {
			t.Fatal(err)
		}
	}

	const storm = 200
	ctx, cancel := context.WithCancel(context.Background())
	var wg sync.WaitGroup
	var acquired, canceled atomic.Int64
	for i := 0; i < storm; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := g.Acquire(ctx); err != nil {
				canceled.Add(1)
				return
			}
			acquired.Add(1)
			g.Release()
		}()
	}
	// Let the queue build, then cancel the whole storm while releasing
	// the two held slots — grants race cancellations in both orders.
	for g.Waiting() < storm/2 {
		time.Sleep(time.Millisecond)
	}
	cancel()
	g.Release()
	g.Release()
	wg.Wait()

	if got := acquired.Load() + canceled.Load(); got != storm {
		t.Fatalf("accounted for %d waiters, want %d", got, storm)
	}
	if n := g.InUse(); n != 0 {
		t.Fatalf("InUse = %d after drain, want 0", n)
	}
	if n := g.Waiting(); n != 0 {
		t.Fatalf("Waiting = %d after drain, want 0", n)
	}
	// The gate must still work (no lost slot): acquire all slots again.
	for i := 0; i < 2; i++ {
		ctx2, c2 := context.WithTimeout(context.Background(), time.Second)
		if err := g.Acquire(ctx2); err != nil {
			t.Fatalf("post-storm Acquire %d: %v", i, err)
		}
		c2()
		defer g.Release()
	}
	waitGoroutines(t, base, 4)
}

// TestGateSurvivorFIFOUnderCancellation cancels every other queued
// waiter and checks the survivors are granted strictly in arrival order.
func TestGateSurvivorFIFOUnderCancellation(t *testing.T) {
	g := NewGate(1)
	if err := g.Acquire(context.Background()); err != nil {
		t.Fatal(err)
	}

	const n = 20
	type waiter struct {
		idx    int
		cancel context.CancelFunc
		got    chan error
	}
	var ws []waiter
	var order []int
	var orderMu sync.Mutex
	for i := 0; i < n; i++ {
		ctx, cancel := context.WithCancel(context.Background())
		w := waiter{idx: i, cancel: cancel, got: make(chan error, 1)}
		ws = append(ws, w)
		go func() {
			err := g.Acquire(ctx)
			if err == nil {
				orderMu.Lock()
				order = append(order, w.idx)
				orderMu.Unlock()
			}
			w.got <- err
		}()
		// Serialize enqueue so arrival order is the spawn order.
		for g.Waiting() < i+1 {
			time.Sleep(time.Millisecond)
		}
	}

	// Cancel the odd-indexed waiters, then drain: each surviving grant
	// is released immediately so the next survivor is granted.
	for i := 1; i < n; i += 2 {
		ws[i].cancel()
		if err := <-ws[i].got; err == nil {
			t.Fatalf("canceled waiter %d acquired", i)
		}
	}
	g.Release() // release the initial hold; survivors now flow
	for i := 0; i < n; i += 2 {
		if err := <-ws[i].got; err != nil {
			t.Fatalf("surviving waiter %d: %v", i, err)
		}
		g.Release()
	}
	for _, w := range ws {
		w.cancel()
	}

	orderMu.Lock()
	defer orderMu.Unlock()
	for j := 1; j < len(order); j++ {
		if order[j] < order[j-1] {
			t.Fatalf("survivors granted out of FIFO order: %v", order)
		}
	}
	if len(order) != n/2 {
		t.Fatalf("%d survivors granted, want %d", len(order), n/2)
	}
}

// TestBatcherAllAbandonedSkipsExec pins the drop-dead path: when every
// waiter of a pending batch cancels before the linger expires, Exec is
// never invoked and the skip is counted.
func TestBatcherAllAbandonedSkipsExec(t *testing.T) {
	var execs atomic.Int64
	b := &Batcher[string, int, int]{
		MaxBatch: 8,
		Linger:   200 * time.Millisecond,
		Exec: func(key string, items []int) ([]int, error) {
			execs.Add(1)
			return items, nil
		},
	}
	ctx, cancel := context.WithCancel(context.Background())
	var wg sync.WaitGroup
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, _, err := b.Do(ctx, "k", i); !errors.Is(err, context.Canceled) {
				t.Errorf("Do: err = %v, want context.Canceled", err)
			}
		}()
	}
	// Wait for all three to join the pending batch, then abandon them
	// all before the linger timer fires.
	for b.mu.Lock(); b.pending["k"] == nil || len(b.pending["k"].items) < 3; {
		b.mu.Unlock()
		time.Sleep(time.Millisecond)
		b.mu.Lock()
	}
	b.mu.Unlock()
	cancel()
	wg.Wait()
	// The abandonment increments race the timer only through Batcher.mu;
	// once all waiters returned, the eventual dispatch must skip.
	deadline := time.Now().Add(2 * time.Second)
	for b.Skipped() == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("batch never skipped (execs=%d)", execs.Load())
		}
		time.Sleep(time.Millisecond)
	}
	if n := execs.Load(); n != 0 {
		t.Fatalf("Exec ran %d times for a fully-abandoned batch", n)
	}
}

// TestBatcherPartialAbandonStillComputesAll pins the cache-seeding
// contract: one surviving waiter keeps the whole batch alive, and Exec
// sees every item including the abandoned ones.
func TestBatcherPartialAbandonStillComputesAll(t *testing.T) {
	var sawItems atomic.Int64
	b := &Batcher[string, int, int]{
		MaxBatch: 4,
		Linger:   200 * time.Millisecond,
		Exec: func(key string, items []int) ([]int, error) {
			sawItems.Store(int64(len(items)))
			out := make([]int, len(items))
			for i, it := range items {
				out[i] = it * 10
			}
			return out, nil
		},
	}
	quitCtx, quit := context.WithCancel(context.Background())
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			b.Do(quitCtx, "k", i) // these two abandon
		}()
	}
	// The survivor joins the same batch BEFORE the others abandon, so
	// the eventual dispatch provably has a live waiter.
	type result struct {
		got, size int
		err       error
	}
	survived := make(chan result, 1)
	go func() {
		got, size, err := b.Do(context.Background(), "k", 7)
		survived <- result{got, size, err}
	}()
	for b.mu.Lock(); b.pending["k"] == nil || len(b.pending["k"].items) < 3; {
		b.mu.Unlock()
		time.Sleep(time.Millisecond)
		b.mu.Lock()
	}
	b.mu.Unlock()
	quit()
	wg.Wait()

	r := <-survived
	got, size, err := r.got, r.size, r.err
	if err != nil {
		t.Fatalf("surviving Do: %v", err)
	}
	if got != 70 {
		t.Fatalf("survivor result = %d, want 70", got)
	}
	if size != 3 || sawItems.Load() != 3 {
		t.Fatalf("batch size = %d (exec saw %d), want 3 — abandoned items must still compute", size, sawItems.Load())
	}
	if b.Skipped() != 0 {
		t.Fatal("batch with a survivor was skipped")
	}
}

// TestBatcherExecPanicWakesWaiters pins panic containment: a panicking
// Exec surfaces as PanicError to every waiter instead of hanging them on
// the done channel forever (or killing the timer goroutine).
func TestBatcherExecPanicWakesWaiters(t *testing.T) {
	b := &Batcher[string, int, int]{
		MaxBatch: 2,
		Linger:   10 * time.Millisecond,
		Exec: func(key string, items []int) ([]int, error) {
			panic("kaboom")
		},
	}
	errs := make(chan error, 2)
	for i := 0; i < 2; i++ {
		go func() {
			_, _, err := b.Do(context.Background(), "k", i)
			errs <- err
		}()
	}
	for i := 0; i < 2; i++ {
		select {
		case err := <-errs:
			var pe PanicError
			if !errors.As(err, &pe) {
				t.Fatalf("err = %v, want PanicError", err)
			}
			if pe.Value != "kaboom" {
				t.Fatalf("PanicError.Value = %v, want kaboom", pe.Value)
			}
		case <-time.After(5 * time.Second):
			t.Fatal("waiter hung after Exec panic")
		}
	}
}

// TestBatcherTimerDispatchPanicContained arms a single-waiter batch so
// the linger timer goroutine runs the panicking dispatch: the panic must
// not escape (it would crash the process) and the waiter must wake.
func TestBatcherTimerDispatchPanicContained(t *testing.T) {
	b := &Batcher[string, int, int]{
		MaxBatch: 8, // never fills; the timer dispatches
		Linger:   5 * time.Millisecond,
		Exec: func(key string, items []int) ([]int, error) {
			panic("timer kaboom")
		},
	}
	_, _, err := b.Do(context.Background(), "k", 1)
	var pe PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v, want PanicError", err)
	}
}
