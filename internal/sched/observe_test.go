package sched

import (
	"context"
	"sync"
	"testing"
	"time"
)

// TestGateObserveWaitTimes pins the Gate hook: fast-path grants report a
// zero wait, queued grants report how long they actually queued, and
// canceled waiters report nothing.
func TestGateObserveWaitTimes(t *testing.T) {
	g := NewGate(1)
	var mu sync.Mutex
	var waits []time.Duration
	g.Observe = func(w time.Duration) {
		mu.Lock()
		waits = append(waits, w)
		mu.Unlock()
	}

	if err := g.Acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	if len(waits) != 1 || waits[0] != 0 {
		t.Fatalf("fast-path waits = %v, want [0]", waits)
	}
	mu.Unlock()

	// A queued waiter: release after a measurable hold.
	done := make(chan error, 1)
	go func() { done <- g.Acquire(context.Background()) }()
	for g.Waiting() == 0 {
		time.Sleep(time.Millisecond)
	}
	hold := 10 * time.Millisecond
	time.Sleep(hold)
	g.Release()
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	if len(waits) != 2 {
		t.Fatalf("got %d observations, want 2", len(waits))
	}
	if waits[1] < hold/2 {
		t.Fatalf("queued wait = %v, want ≥ %v", waits[1], hold/2)
	}
	mu.Unlock()

	// A canceled waiter must not be reported.
	ctx, cancel := context.WithCancel(context.Background())
	done2 := make(chan error, 1)
	go func() { done2 <- g.Acquire(ctx) }()
	for g.Waiting() == 0 {
		time.Sleep(time.Millisecond)
	}
	cancel()
	if err := <-done2; err == nil {
		t.Fatal("canceled Acquire returned nil")
	}
	mu.Lock()
	if len(waits) != 2 {
		t.Fatalf("canceled waiter was observed: %v", waits)
	}
	mu.Unlock()
	g.Release()
}

// TestBatcherObserveFillSizes pins the Batcher hook: one observation per
// executed batch carrying its fill size, including the solo degenerate
// path, and none for all-abandoned skipped batches.
func TestBatcherObserveFillSizes(t *testing.T) {
	var mu sync.Mutex
	var sizes []int
	b := &Batcher[string, int, int]{
		MaxBatch: 4,
		Linger:   time.Hour, // only explicit fills dispatch
		Exec: func(key string, items []int) ([]int, error) {
			out := make([]int, len(items))
			copy(out, items)
			return out, nil
		},
		Observe: func(size int) {
			mu.Lock()
			sizes = append(sizes, size)
			mu.Unlock()
		},
	}

	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if _, n, err := b.Do(context.Background(), "k", i); err != nil || n != 4 {
				t.Errorf("Do = (n=%d, err=%v), want batch of 4", n, err)
			}
		}(i)
	}
	wg.Wait()
	mu.Lock()
	if len(sizes) != 1 || sizes[0] != 4 {
		t.Fatalf("sizes = %v, want [4]", sizes)
	}
	mu.Unlock()

	solo := &Batcher[string, int, int]{
		MaxBatch: 1,
		Exec:     b.Exec,
		Observe:  b.Observe,
	}
	if _, _, err := solo.Do(context.Background(), "k", 9); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	if len(sizes) != 2 || sizes[1] != 1 {
		t.Fatalf("sizes = %v, want [4 1]", sizes)
	}
	mu.Unlock()

	// All waiters abandon before the linger fires: skipped, not observed.
	quick := &Batcher[string, int, int]{
		MaxBatch: 4,
		Linger:   30 * time.Millisecond,
		Exec:     b.Exec,
		Observe:  b.Observe,
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, err := quick.Do(ctx, "k", 1); err == nil {
		t.Fatal("abandoned Do returned nil error")
	}
	time.Sleep(80 * time.Millisecond) // let the linger timer fire and skip
	if quick.Skipped() != 1 {
		t.Fatalf("Skipped = %d, want 1", quick.Skipped())
	}
	mu.Lock()
	if len(sizes) != 2 {
		t.Fatalf("skipped batch was observed: %v", sizes)
	}
	mu.Unlock()
}
