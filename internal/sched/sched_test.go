package sched

import (
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
	"time"
)

// foldTrace folds trials into an order-sensitive transcript so any
// deviation from the sequential prefix semantics is visible.
func foldTrace(stopAt int) (fold func(i int, v int) bool, trace *[]string) {
	t := &[]string{}
	return func(i, v int) bool {
		*t = append(*t, fmt.Sprintf("%d=%d", i, v))
		return stopAt >= 0 && i >= stopAt
	}, t
}

func TestSequentialSemanticsForEveryWorkerCount(t *testing.T) {
	const n = 200
	trial := func(i int) (int, error) {
		// Uneven, scheduling-dependent timing: later trials often finish
		// before earlier ones under parallel execution.
		if i%7 == 0 {
			time.Sleep(time.Millisecond)
		}
		return i * i, nil
	}
	for _, stopAt := range []int{-1, 0, 37, n - 1} {
		foldSeq, traceSeq := foldTrace(stopAt)
		resSeq, err := Run(TrialRunner{Workers: 1}, n, trial, foldSeq)
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{2, 4, 16, -1} {
			fold, trace := foldTrace(stopAt)
			res, err := Run(TrialRunner{Workers: workers}, n, trial, fold)
			if err != nil {
				t.Fatal(err)
			}
			if res.Stopped != resSeq.Stopped || res.Folded != resSeq.Folded {
				t.Fatalf("stopAt=%d workers=%d: got (stopped=%d folded=%d), sequential (%d, %d)",
					stopAt, workers, res.Stopped, res.Folded, resSeq.Stopped, resSeq.Folded)
			}
			if len(*trace) != len(*traceSeq) {
				t.Fatalf("stopAt=%d workers=%d: trace length %d vs %d", stopAt, workers, len(*trace), len(*traceSeq))
			}
			for k := range *trace {
				if (*trace)[k] != (*traceSeq)[k] {
					t.Fatalf("stopAt=%d workers=%d: trace[%d] = %q, want %q",
						stopAt, workers, k, (*trace)[k], (*traceSeq)[k])
				}
			}
			if res.Executed < res.Folded {
				t.Fatalf("Executed %d < Folded %d", res.Executed, res.Folded)
			}
		}
	}
}

func TestErrorAbortsAtDeterministicPrefix(t *testing.T) {
	errBoom := errors.New("boom")
	const errAt = 13
	trial := func(i int) (int, error) {
		if i == errAt {
			return 0, errBoom
		}
		if i < errAt && i%3 == 0 {
			time.Sleep(time.Millisecond) // earlier trials finish later
		}
		return i, nil
	}
	for _, workers := range []int{1, 4, 16} {
		folded := 0
		res, err := Run(TrialRunner{Workers: workers}, 100, trial, func(i, v int) bool {
			if i >= errAt {
				t.Fatalf("workers=%d: folded trial %d past the error index", workers, i)
			}
			folded++
			return false
		})
		if !errors.Is(err, errBoom) {
			t.Fatalf("workers=%d: err = %v, want boom", workers, err)
		}
		if folded != errAt || res.Folded != errAt {
			t.Fatalf("workers=%d: folded %d (res %d), want %d", workers, folded, res.Folded, errAt)
		}
	}
}

func TestOvershootIsBoundedAndDiscarded(t *testing.T) {
	var started atomic.Int64
	const stopAt = 5
	trial := func(i int) (int, error) {
		started.Add(1)
		return i, nil
	}
	res, err := Run(TrialRunner{Workers: 4}, 10_000, trial, func(i, v int) bool { return i == stopAt })
	if err != nil {
		t.Fatal(err)
	}
	if res.Stopped != stopAt || res.Folded != stopAt+1 {
		t.Fatalf("res = %+v", res)
	}
	// Lookahead is bounded by the ring (4 workers × ring factor), so a hit
	// at index 5 must not have launched anywhere near the full batch.
	if n := started.Load(); n > 64 {
		t.Fatalf("started %d trials for a hit at index %d", n, stopAt)
	}
	if int(started.Load()) != res.Executed {
		t.Fatalf("Executed = %d, started = %d", res.Executed, started.Load())
	}
}

func TestZeroAndSmallBatches(t *testing.T) {
	res, err := Run(TrialRunner{Workers: 8}, 0, func(i int) (int, error) { return 0, nil }, nil)
	if err != nil || res.Folded != 0 || res.Stopped != -1 {
		t.Fatalf("n=0: %+v err=%v", res, err)
	}
	res, err = Run(TrialRunner{Workers: 8}, 1, func(i int) (int, error) { return 42, nil },
		func(i, v int) bool { return true })
	if err != nil || res.Folded != 1 || res.Stopped != 0 {
		t.Fatalf("n=1: %+v err=%v", res, err)
	}
	// nil fold runs everything.
	res, err = Run(TrialRunner{Workers: 3}, 50, func(i int) (int, error) { return i, nil }, nil)
	if err != nil || res.Folded != 50 || res.Stopped != -1 {
		t.Fatalf("nil fold: %+v err=%v", res, err)
	}
}

func TestTagDeterministicAndSpread(t *testing.T) {
	if Tag(1, 2, 3) != Tag(1, 2, 3) {
		t.Fatal("Tag not deterministic")
	}
	seen := map[uint64]bool{}
	for i := uint64(0); i < 1000; i++ {
		seen[Tag(7, i)] = true
	}
	if len(seen) != 1000 {
		t.Fatalf("Tag collisions: %d distinct of 1000", len(seen))
	}
	if Tag(0, 1) == Tag(1, 0) {
		t.Fatal("Tag ignores part order")
	}
}

func BenchmarkRunnerOverheadSequential(b *testing.B) {
	for b.Loop() {
		_, _ = Run(TrialRunner{Workers: 1}, 64, func(i int) (int, error) { return i, nil }, nil)
	}
}

func BenchmarkRunnerOverheadParallel(b *testing.B) {
	for b.Loop() {
		_, _ = Run(TrialRunner{Workers: -1}, 64, func(i int) (int, error) { return i, nil }, nil)
	}
}
