// Package bench is the experiment harness that regenerates the paper's
// Table 1 rows and Figure 1 empirically: parameter sweeps over n, log–log
// slope fitting against the theoretical exponents, and table rendering as
// aligned text, CSV, or markdown. The registry (All) spans the scaling
// experiments E1–E10, the ablations A1–A4, and D1, which pits the
// deterministic broadcast detector (internal/deterministic) against the
// randomized Algorithm 1. `cmd/benchtab -quick -md all` regenerates
// EXPERIMENTS.md from the registry; CI checks the committed file matches.
//
// Determinism contract: experiment tables are a pure function of
// (Config.Seed, Quick) — sweeps run their trials on the shared scheduler
// (internal/sched), so Workers and Parallel change wall-clock time but
// never a single cell of a rendered table. The exception is perf.go, the
// wall-time/allocation trajectory suite behind `benchtab -json`
// (BENCH_*.json records): its ns/op is a measurement, but its workloads
// and their domain costs (rounds, messages) are pinned and deterministic.
package bench
