package bench

import (
	"fmt"
	"math"

	"repro/internal/baseline"
	"repro/internal/congest"
	"repro/internal/core"
	"repro/internal/deterministic"
	"repro/internal/gadget"
	"repro/internal/graph"
	"repro/internal/lowprob"
	"repro/internal/quantum"
	"repro/internal/sched"
)

// Config tunes experiment scale.
type Config struct {
	// Quick shrinks sweeps for test/bench contexts; the full sweeps are
	// what EXPERIMENTS.md records.
	Quick   bool
	Seed    uint64
	Workers int
	// Parallel is the trial-level parallelism of the sweeps: how many
	// independent detection runs execute concurrently on the shared
	// scheduler (0/1 sequential, negative GOMAXPROCS). Tables are
	// deterministic for a fixed Seed regardless of Parallel.
	Parallel int
}

// runner returns the trial scheduler configured by the Config.
func (cfg Config) runner() sched.TrialRunner {
	return sched.TrialRunner{Workers: cfg.Parallel}
}

// Experiment is a named, runnable experiment.
type Experiment struct {
	ID    string
	Title string
	Run   func(cfg Config) (*Table, error)
}

// All returns the experiment registry in ID order.
func All() []Experiment {
	return []Experiment{
		{"E1", "classical C_2k rounds vs n (Theorem 1: slope 1-1/k)", E1},
		{"E2", "this paper vs Eden et al. for k ≥ 6 (Table 1 crossover)", E2},
		{"E3", "quantum C_2k rounds vs n (Theorem 2: slope 1/2-1/2k)", E3},
		{"E4", "congestion / success-probability trade-off (Section 3.2.1)", E4},
		{"E5", "quantum odd-cycle rounds vs n (Θ̃(√n))", E5},
		{"E6", "quantum bounded-length: this paper vs van Apeldoorn–de Vos", E6},
		{"E7", "lower-bound gadget families (Section 3.3)", E7},
		{"E8", "Monte-Carlo amplification: quantum √(1/ε) vs classical 1/ε", E8},
		{"E9", "density lemma dichotomy statistics (Lemma 4 / Figure 1)", E9},
		{"E10", "error calibration: one-sidedness and detection rate", E10},
		{"D1", "deterministic broadcast CONGEST vs randomized C_2k detection", D1},
		{"S1", "detection service: saved work vs worker count × corpus mix", S1},
		{"S2", "batched miss path: fused sessions vs solo reference", S2},
		{"A1", "ablation: batch vs pipelined color-BFS scheduling", A1},
		{"A2", "ablation: global vs constant local threshold on trap instances", A2},
		{"A4", "ablation: quantum with vs without diameter reduction", A4},
	}
}

// ByID returns the experiment with the given ID.
func ByID(id string) (Experiment, error) {
	for _, e := range All() {
		if e.ID == id {
			return e, nil
		}
	}
	return Experiment{}, fmt.Errorf("bench: unknown experiment %q", id)
}

// scaledP is the constant-rescaled selection probability p = c/n^{1/k}
// used by the scaling experiments (see core.Options.POverride). The
// constant c is chosen per k so that p stays below 1 across the sweep while
// the congestion signal (≈ p·deg(hub)/2k) dominates the constant per-phase
// overhead of a color-BFS.
func scaledP(n, k int) float64 {
	return math.Min(1, scaledC(k)/math.Pow(float64(n), 1/float64(k)))
}

func scaledC(k int) float64 {
	switch {
	case k <= 2:
		return 8
	case k == 3:
		return 4
	default:
		return 2
	}
}

// scaledEps is the matching base success probability 1/(3τ) with the
// rescaled τ = k·2^k·n·p (even-cycle pipeline) — exponent (1-1/k), small
// constants.
func scaledEps(k int) func(n int) (float64, error) {
	return func(n int) (float64, error) {
		tau := float64(k) * math.Pow(2, float64(k)) * float64(n) * scaledP(n, k)
		if tau < 1 {
			tau = 1
		}
		return 1 / (3 * tau), nil
	}
}

// normalizedQuantumRounds divides the charged rounds by the polylog
// factors the Õ(·) notation hides — the γ decomposition colors and the
// log(1/δ) boosting repetitions — leaving the n^{1/2-1/2k}·(D+T) core.
func normalizedQuantumRounds(res *quantum.Result) float64 {
	reps := res.MaxLedger.Repetitions
	if reps < 1 {
		reps = 1
	}
	return (res.QuantumRounds - float64(res.DecompRounds)) / (float64(res.Colors) * reps)
}

// heavyInstance builds the standard scaling instance: a sparse background,
// a hub of degree n/2, and a planted C_L through the hub. The hub is what
// makes congestion — and therefore rounds — grow like |S| = Θ(n^{1-1/k}).
func heavyInstance(n, L int, seed uint64) (*graph.Graph, []graph.NodeID, error) {
	rng := graph.NewRand(seed)
	return graph.PlantedHeavy(n, L, n/2, 1.5, rng)
}

// --------------------------------------------------------------- E1

// E1 measures the executed rounds of Algorithm 1 across n for several k
// and fits the log–log slope against the theoretical 1-1/k.
func E1(cfg Config) (*Table, error) {
	t := &Table{
		ID:     "E1",
		Title:  "Algorithm 1 (classical C_2k): measured rounds vs n",
		Header: []string{"k", "n", "rounds/iter", "congestion", "|S|", "detected"},
	}
	ks := []int{2, 3}
	sizes := []int{512, 2048, 8192, 32768, 131072}
	if cfg.Quick {
		sizes = []int{256, 1024, 4096}
	}
	const iters = 8
	for _, k := range ks {
		var xs, ys, cs []float64
		for _, n := range sizes {
			g, _, err := heavyInstance(n, 2*k, cfg.Seed+uint64(n*k))
			if err != nil {
				return nil, err
			}
			// Per-coloring rounds fluctuate with the hub's random color
			// (the hub only congests when it lands on a receiving color),
			// so we take the maximum single-iteration cost over `iters`
			// independent colorings — the quantity the worst-case bound
			// k·τ describes. The colorings are independent trials on the
			// shared scheduler.
			maxRounds, maxCong, sizeS := 0, 0, 0
			detected := false
			_, err = sched.Run(cfg.runner(), iters,
				func(it int) (*core.Result, error) {
					return core.DetectEvenCycle(g, k, core.Options{
						Seed:          cfg.Seed + uint64(n)*31 + uint64(it),
						POverride:     scaledP(n, k),
						MaxIterations: 1,
						KeepGoing:     true,
						Workers:       cfg.Workers,
					})
				},
				func(it int, res *core.Result) bool {
					if res.Rounds > maxRounds {
						maxRounds = res.Rounds
					}
					if res.MaxCongestion > maxCong {
						maxCong = res.MaxCongestion
					}
					sizeS = res.SizeS
					detected = detected || res.Found
					return false
				})
			if err != nil {
				return nil, err
			}
			xs = append(xs, float64(n))
			ys = append(ys, float64(maxRounds))
			cs = append(cs, float64(maxCong))
			t.AddRow(itoa(k), itoa(n), itoa(maxRounds), itoa(maxCong),
				itoa(sizeS), fmt.Sprintf("%v", detected))
		}
		slope, ok := FitSlope(xs, ys)
		cslope, cok := FitSlope(xs, cs)
		if ok && cok {
			t.AddNote("k=%d: rounds slope %.3f, congestion slope %.3f (theory 1-1/k = %.3f;"+
				" rounds carry a constant ≈3k-phase additive overhead that washes out as n grows)",
				k, slope, cslope, baseline.ThisPaperClassicalExponent(k))
		}
	}
	t.AddNote("instances: sparse host + degree-n/2 hub + planted C_2k through the hub")
	t.AddNote("constant-rescaled p = c_k/n^{1/k}; exponent is the measured quantity (docs/ARCHITECTURE.md)")
	t.AddNote("rounds = max single-coloring cost over %d colorings (worst case, as the k·τ bound)", iters)
	return t, nil
}

// --------------------------------------------------------------- E2

// E2 compares this paper's measured rounds for k ≥ 6 with the analytic
// round budget of Eden et al. [DISC'19], the previous best.
func E2(cfg Config) (*Table, error) {
	t := &Table{
		ID:     "E2",
		Title:  "k = 6: this paper (measured) vs Eden et al. (budget)",
		Header: []string{"n", "ours rounds/iter", "Eden budget", "ours/Eden"},
	}
	k := 6
	sizes := []int{1024, 4096, 16384, 65536}
	if cfg.Quick {
		sizes = []int{512, 2048, 8192}
	}
	var xs, ys []float64
	for _, n := range sizes {
		g, _, err := heavyInstance(n, 2*k, cfg.Seed+uint64(n))
		if err != nil {
			return nil, err
		}
		// With L = 12 colors the hub lands on a receiving color with
		// probability 1/6 per coloring; 24 colorings make the worst-case
		// (hub-active) iteration all but certain to be observed.
		maxRounds := 0
		_, err = sched.Run(cfg.runner(), 24,
			func(it int) (*core.Result, error) {
				return core.DetectEvenCycle(g, k, core.Options{
					Seed:          cfg.Seed + uint64(it),
					POverride:     scaledP(n, k),
					MaxIterations: 1,
					KeepGoing:     true,
					Workers:       cfg.Workers,
				})
			},
			func(it int, res *core.Result) bool {
				if res.Rounds > maxRounds {
					maxRounds = res.Rounds
				}
				return false
			})
		if err != nil {
			return nil, err
		}
		budget, err := baseline.EdenBudgetRounds(n, k)
		if err != nil {
			return nil, err
		}
		xs = append(xs, float64(n))
		ys = append(ys, float64(maxRounds))
		t.AddRow(itoa(n), itoa(maxRounds), f(budget), f(float64(maxRounds)/budget))
	}
	slope, _ := FitSlope(xs, ys)
	edenExp, _ := baseline.EdenExponent(k)
	t.AddNote("ours fitted slope %.3f (theory %.3f); Eden exponent %.3f — the gap grows with n",
		slope, baseline.ThisPaperClassicalExponent(k), edenExp)
	t.AddNote("Table 1: [16] was the best known for k ≥ 6 before this paper")
	return t, nil
}

// --------------------------------------------------------------- E3

// E3 measures the quantum pipeline's charged rounds across n.
func E3(cfg Config) (*Table, error) {
	t := &Table{
		ID:     "E3",
		Title:  "Quantum C_2k (Lemma 13): charged rounds vs n",
		Header: []string{"k", "n", "quantum rounds", "normalized", "ε", "components", "colors"},
	}
	ks := []int{2, 3}
	sizes := []int{512, 2048, 8192, 32768}
	if cfg.Quick {
		sizes = []int{256, 1024, 4096}
	}
	for _, k := range ks {
		var xs, raw, norm []float64
		for _, n := range sizes {
			g, _, err := heavyInstance(n, 2*k, cfg.Seed+uint64(n*k))
			if err != nil {
				return nil, err
			}
			res, err := quantum.DetectEvenCycle(g, k, quantum.Options{
				Seed:              cfg.Seed,
				MaxSims:           1,
				AttemptIterations: 1,
				EpsFn:             scaledEps(k),
				Workers:           cfg.Workers,
			})
			if err != nil {
				return nil, err
			}
			nrm := normalizedQuantumRounds(res)
			xs = append(xs, float64(n))
			raw = append(raw, res.QuantumRounds)
			norm = append(norm, nrm)
			t.AddRow(itoa(k), itoa(n), f(res.QuantumRounds), f(nrm), f(res.Eps),
				itoa(res.Components), itoa(res.Colors))
		}
		rawSlope, _ := FitSlope(xs, raw)
		normSlope, ok := FitSlope(xs, norm)
		if ok {
			t.AddNote("k=%d: raw slope %.3f, polylog-normalized slope %.3f (theory 1/2-1/2k = %.3f)",
				k, rawSlope, normSlope, baseline.ThisPaperQuantumExponent(k))
		}
	}
	t.AddNote("charged rounds = decomposition + Σ_colors max_comp log(1/δ)·⌈π/4√ε⌉·(D+T_setup);")
	t.AddNote("the Õ(·) of Theorem 2 hides γ·log(1/δ) = polylog(n) — the normalized column divides it out")
	return t, nil
}

// --------------------------------------------------------------- E4

// E4 sweeps the seed-activation probability and measures the congestion /
// success trade-off that enables the quantum speedup (Section 3.2.1).
func E4(cfg Config) (*Table, error) {
	t := &Table{
		ID:     "E4",
		Title:  "Seed activation q: congestion O(q·τ) vs success probability",
		Header: []string{"q", "max congestion", "rounds/iter", "detect rate"},
	}
	n, k := 2048, 2
	trials := 8
	iters := 48
	if cfg.Quick {
		n, trials, iters = 1024, 4, 24
	}
	for _, q := range []float64{1, 0.3, 0.1, 0.03, 0.01} {
		found := 0
		maxCong := 0
		totalRounds := 0
		totalIters := 0
		_, err := sched.Run(cfg.runner(), trials,
			func(trial int) (*core.Result, error) {
				g, _, err := heavyInstance(n, 2*k, cfg.Seed+uint64(trial))
				if err != nil {
					return nil, err
				}
				return core.DetectEvenCycle(g, k, core.Options{
					Seed:          cfg.Seed + uint64(trial)*7919,
					POverride:     scaledP(n, k),
					SeedProb:      q,
					MaxIterations: iters,
					Workers:       cfg.Workers,
				})
			},
			func(trial int, res *core.Result) bool {
				if res.Found {
					found++
				}
				if res.MaxCongestion > maxCong {
					maxCong = res.MaxCongestion
				}
				totalRounds += res.Rounds
				totalIters += res.IterationsRun
				return false
			})
		if err != nil {
			return nil, err
		}
		t.AddRow(f(q), itoa(maxCong), f(float64(totalRounds)/float64(totalIters)),
			fmt.Sprintf("%d/%d", found, trials))
	}
	t.AddNote("lower activation ⇒ proportionally lower congestion and per-iteration rounds,")
	t.AddNote("and proportionally lower detection rate under a fixed iteration budget —")
	t.AddNote("exactly the trade Theorem 3 then amplifies quadratically")
	return t, nil
}

// --------------------------------------------------------------- E5

// E5 measures the quantum odd-cycle pipeline (Section 3.4): Θ̃(√n).
func E5(cfg Config) (*Table, error) {
	t := &Table{
		ID:     "E5",
		Title:  "Quantum C_{2k+1}: charged rounds vs n (theory slope 1/2)",
		Header: []string{"k", "n", "quantum rounds", "normalized", "ε"},
	}
	sizes := []int{512, 2048, 8192, 32768}
	if cfg.Quick {
		sizes = []int{256, 1024, 4096}
	}
	k := 2 // C_5
	var xs, raw, norm []float64
	for _, n := range sizes {
		g, _, err := heavyInstance(n, 2*k+1, cfg.Seed+uint64(n))
		if err != nil {
			return nil, err
		}
		res, err := quantum.DetectOddCycle(g, k, quantum.Options{
			Seed: cfg.Seed, MaxSims: 1, AttemptIterations: 1, Workers: cfg.Workers,
		})
		if err != nil {
			return nil, err
		}
		nrm := normalizedQuantumRounds(res)
		xs = append(xs, float64(n))
		raw = append(raw, res.QuantumRounds)
		norm = append(norm, nrm)
		t.AddRow(itoa(k), itoa(n), f(res.QuantumRounds), f(nrm), f(res.Eps))
	}
	rawSlope, _ := FitSlope(xs, raw)
	normSlope, _ := FitSlope(xs, norm)
	t.AddNote("raw slope %.3f, polylog-normalized slope %.3f (theory 1/2; tight by Section 3.3.2)",
		rawSlope, normSlope)
	return t, nil
}

// --------------------------------------------------------------- E6

// E6 compares the quantum bounded-length detector with the analytic
// [PODC'22] curve it improves on.
func E6(cfg Config) (*Table, error) {
	t := &Table{
		ID:     "E6",
		Title:  "Quantum F_2k: this paper (measured) vs van Apeldoorn–de Vos (budget)",
		Header: []string{"k", "n", "ours normalized", "[33] n^exp", "ratio"},
	}
	k := 3
	sizes := []int{512, 2048, 8192, 32768}
	if cfg.Quick {
		sizes = []int{256, 1024, 4096}
	}
	boundedEps := func(n int) (float64, error) {
		tau := 2 * float64(n) * scaledP(n, k)
		if tau < 1 {
			tau = 1
		}
		return 1 / (3 * tau), nil
	}
	var xs, norm []float64
	for _, n := range sizes {
		g, _, err := heavyInstance(n, 2*k, cfg.Seed+uint64(n))
		if err != nil {
			return nil, err
		}
		res, err := quantum.DetectBoundedCycle(g, k, quantum.Options{
			Seed: cfg.Seed, MaxSims: 1, AttemptIterations: 1,
			EpsFn: boundedEps, Workers: cfg.Workers,
		})
		if err != nil {
			return nil, err
		}
		nrm := normalizedQuantumRounds(res)
		theirs := math.Pow(float64(n), baseline.VanApeldoornDeVosExponent(k))
		xs = append(xs, float64(n))
		norm = append(norm, nrm)
		t.AddRow(itoa(k), itoa(n), f(nrm), f(theirs), f(nrm/theirs))
	}
	slope, _ := FitSlope(xs, norm)
	t.AddNote("ours normalized slope %.3f (theory %.3f) vs [33] exponent %.3f",
		slope, baseline.ThisPaperQuantumExponent(k), baseline.VanApeldoornDeVosExponent(k))
	t.AddNote("both columns drop polylog factors: ours divides by γ·log(1/δ), [33] is the bare power")
	return t, nil
}

// --------------------------------------------------------------- E7

// E7 exercises the lower-bound gadget families: detection must equal
// Disjointness intersection on every instance.
func E7(cfg Config) (*Table, error) {
	t := &Table{
		ID:     "E7",
		Title:  "Lower-bound gadgets: detection ⇔ set intersection",
		Header: []string{"family", "universe", "n", "intersects", "detected", "rounds"},
	}
	trials := 4
	if cfg.Quick {
		trials = 2
	}

	// Drucker et al. C₄ family.
	drucker, err := gadget.NewDruckerC4(5)
	if err != nil {
		return nil, err
	}
	for trial := 0; trial < trials; trial++ {
		intersecting := trial%2 == 0
		d := gadget.RandomDisjointness(drucker.UniverseSize(), 0.3, !intersecting, cfg.Seed+uint64(trial))
		if intersecting {
			d.X[trial], d.Y[trial] = true, true
		}
		g, err := drucker.Build(d)
		if err != nil {
			return nil, err
		}
		res, err := core.DetectEvenCycle(g, 2, core.Options{
			Seed: cfg.Seed + uint64(trial), MaxIterations: 800, Workers: cfg.Workers,
		})
		if err != nil {
			return nil, err
		}
		if res.Found && !d.Intersects() {
			return nil, fmt.Errorf("E7: false positive on disjoint Drucker instance")
		}
		t.AddRow("Drucker-C4 (N=Θ(n^1.5))", itoa(drucker.UniverseSize()), itoa(g.NumNodes()),
			fmt.Sprintf("%v", d.Intersects()), fmt.Sprintf("%v", res.Found), itoa(res.Rounds))
	}

	// Korhonen–Rybicki C_2k family (k=2).
	kr, err := gadget.NewKRC2k(2, 200)
	if err != nil {
		return nil, err
	}
	for trial := 0; trial < trials; trial++ {
		intersecting := trial%2 == 0
		d := gadget.RandomDisjointness(kr.UniverseSize(), 0.3, !intersecting, cfg.Seed+100+uint64(trial))
		if intersecting {
			d.X[trial], d.Y[trial] = true, true
		}
		g, err := kr.Build(d)
		if err != nil {
			return nil, err
		}
		res, err := core.DetectEvenCycle(g, 2, core.Options{
			Seed: cfg.Seed + uint64(trial), MaxIterations: 800, Workers: cfg.Workers,
		})
		if err != nil {
			return nil, err
		}
		if res.Found && !d.Intersects() {
			return nil, fmt.Errorf("E7: false positive on disjoint KR instance")
		}
		t.AddRow("KR-C4 (N=Θ(n))", itoa(kr.UniverseSize()), itoa(g.NumNodes()),
			fmt.Sprintf("%v", d.Intersects()), fmt.Sprintf("%v", res.Found), itoa(res.Rounds))
	}

	// Odd-cycle family (k=2, C₅), N = Θ(n²).
	odd, err := gadget.NewOddGadget(2, 12)
	if err != nil {
		return nil, err
	}
	for trial := 0; trial < trials; trial++ {
		intersecting := trial%2 == 0
		d := gadget.RandomDisjointness(odd.UniverseSize(), 0.05, !intersecting, cfg.Seed+200+uint64(trial))
		if intersecting {
			idx := odd.Index(trial%12, (trial+3)%12)
			d.X[idx], d.Y[idx] = true, true
		}
		g, err := odd.Build(d)
		if err != nil {
			return nil, err
		}
		res, err := lowprob.DetectOdd(g, 2, lowprob.OddOptions{
			Seed: cfg.Seed + uint64(trial), MaxIterations: 30000, SeedProb: 1, Workers: cfg.Workers,
		})
		if err != nil {
			return nil, err
		}
		if res.Found && !d.Intersects() {
			return nil, fmt.Errorf("E7: false positive on disjoint odd instance")
		}
		t.AddRow("Odd-C5 (N=Θ(n²))", itoa(odd.UniverseSize()), itoa(g.NumNodes()),
			fmt.Sprintf("%v", d.Intersects()), fmt.Sprintf("%v", res.Found), itoa(res.Rounds))
	}
	t.AddNote("one-sidedness is enforced: detection on a disjoint instance aborts the experiment")
	t.AddNote("misses on intersecting instances are possible at the capped iteration budgets")
	return t, nil
}

// --------------------------------------------------------------- E8

// E8 tabulates the quadratic amplification separation (Theorem 3).
func E8(cfg Config) (*Table, error) {
	t := &Table{
		ID:     "E8",
		Title:  "Amplification to error δ=1e-4: quantum vs classical rounds",
		Header: []string{"ε", "quantum rounds", "classical rounds", "speedup"},
	}
	attempt := func(i int) (bool, []graph.NodeID, int, error) { return false, nil, 12, nil }
	for _, eps := range []float64{1e-1, 1e-2, 1e-3, 1e-4, 1e-5} {
		res, err := quantum.AmplifyMonteCarlo(attempt, quantum.AmplifyOptions{
			Eps: eps, Delta: 1e-4, Diameter: 8, ElectRounds: 8, CastRounds: 8, MaxSims: 2,
		})
		if err != nil {
			return nil, err
		}
		classical := quantum.ClassicalBoostRounds(eps, 1e-4, 8, res.Ledger.SetupRounds)
		t.AddRow(f(eps), f(res.Ledger.QuantumRounds), f(classical),
			f(classical/res.Ledger.QuantumRounds))
	}
	t.AddNote("T_setup fixed at 12+8+8 rounds, D=8: speedup grows like √(1/ε)")
	return t, nil
}

// --------------------------------------------------------------- E9

// E9 runs the density-lemma dichotomy over random layered instances.
func E9(cfg Config) (*Table, error) {
	t := &Table{
		ID:     "E9",
		Title:  "Density Lemma dichotomy over random layered instances",
		Header: []string{"k", "instances", "bound held", "violations", "cycles extracted+verified"},
	}
	trialsPer := 40
	if cfg.Quick {
		trialsPer = 15
	}
	rng := graph.NewRand(cfg.Seed ^ 0xe9)
	for _, k := range []int{2, 3, 4} {
		held, violated, extracted := 0, 0, 0
		for trial := 0; trial < trialsPer; trial++ {
			in := randomDensityInstance(k, rng)
			res, err := core.AnalyzeDensity(in)
			if err != nil {
				return nil, fmt.Errorf("E9: k=%d trial %d: %w", k, trial, err)
			}
			if res.Violation < 0 {
				held++
				continue
			}
			violated++
			if res.Witness != nil {
				if err := graph.IsSimpleCycle(in.G, res.Witness.Cycle, 2*k); err != nil {
					return nil, fmt.Errorf("E9: invalid extracted cycle: %w", err)
				}
				extracted++
			}
		}
		if violated != extracted {
			return nil, fmt.Errorf("E9: k=%d: %d violations but %d extractions", k, violated, extracted)
		}
		t.AddRow(itoa(k), itoa(trialsPer), itoa(held), itoa(violated), itoa(extracted))
	}
	t.AddNote("every density violation yielded a verified 2k-cycle through S (Lemmas 4–7)")
	return t, nil
}

// randomDensityInstance builds a random layered instance satisfying the
// k² precondition.
func randomDensityInstance(k int, rng interface {
	Int32N(int32) int32
	Float64() float64
	Perm(int) []int
}) *core.DensityInstance {
	sizeS := k*k + int(rng.Int32N(8))
	// The deepest bound is 2^{k-2}(k-1)|S|; let |W₀| range up to ~2× that
	// so both branches of the dichotomy occur at every k.
	maxW0 := int32(4 * (1 << (k - 2)) * (k - 1) * sizeS)
	sizeW0 := 1 + int(rng.Int32N(maxW0))
	b := graph.NewBuilder(0)
	var layer []int8
	add := func(l int8) graph.NodeID {
		id := graph.NodeID(len(layer))
		layer = append(layer, l)
		b.AddNodes(len(layer))
		return id
	}
	var sNodes, wNodes []graph.NodeID
	for i := 0; i < sizeS; i++ {
		sNodes = append(sNodes, add(core.LayerS))
	}
	for i := 0; i < sizeW0; i++ {
		w := add(core.LayerW0)
		wNodes = append(wNodes, w)
		perm := rng.Perm(sizeS)
		deg := k*k + int(rng.Int32N(int32(sizeS-k*k+1)))
		for _, j := range perm[:deg] {
			b.AddEdge(w, sNodes[j])
		}
	}
	prev := wNodes
	for d := 1; d <= k-1; d++ {
		cnt := 1 + int(rng.Int32N(3))
		var cur []graph.NodeID
		for c := 0; c < cnt; c++ {
			v := add(int8(d))
			cur = append(cur, v)
			for _, u := range prev {
				if rng.Float64() < 0.5 {
					b.AddEdge(v, u)
				}
			}
		}
		prev = cur
	}
	return &core.DensityInstance{G: b.Build(), K: k, Layer: layer}
}

// --------------------------------------------------------------- E10

// E10 calibrates the error guarantees of Theorem 1 at the faithful
// parameterization (k=2, where the constants are affordable).
func E10(cfg Config) (*Table, error) {
	t := &Table{
		ID:     "E10",
		Title:  "Theorem 1 guarantees at faithful parameters (k=2, ε=1/3)",
		Header: []string{"instance family", "trials", "detected", "false positives"},
	}
	trials := 12
	if cfg.Quick {
		trials = 5
	}
	n := 512

	countFound := func(trial func(i int) (*core.Result, error)) (int, error) {
		found := 0
		_, err := sched.Run(cfg.runner(), trials, trial,
			func(i int, res *core.Result) bool {
				if res.Found {
					found++
				}
				return false
			})
		return found, err
	}

	// Planted (light) C_4.
	found, err := countFound(func(trial int) (*core.Result, error) {
		rng := graph.NewRand(cfg.Seed + uint64(trial))
		g, _, err := graph.PlantedLight(n, 4, 1.5, rng)
		if err != nil {
			return nil, err
		}
		return core.DetectEvenCycle(g, 2, core.Options{Seed: cfg.Seed + uint64(trial), Workers: cfg.Workers})
	})
	if err != nil {
		return nil, err
	}
	t.AddRow("planted light C_4", itoa(trials), itoa(found), "0 by construction")

	// Planted heavy C_4 (hub).
	foundHeavy, err := countFound(func(trial int) (*core.Result, error) {
		rng := graph.NewRand(cfg.Seed + 500 + uint64(trial))
		g, _, err := graph.PlantedHeavy(n, 4, 80, 1.2, rng)
		if err != nil {
			return nil, err
		}
		return core.DetectEvenCycle(g, 2, core.Options{Seed: cfg.Seed + uint64(trial), Workers: cfg.Workers})
	})
	if err != nil {
		return nil, err
	}
	t.AddRow("planted heavy C_4", itoa(trials), itoa(foundHeavy), "0 by construction")

	// C_4-free instances: girth-6 incidence graph.
	g, err := graph.ProjectivePlaneIncidence(13)
	if err != nil {
		return nil, err
	}
	falsePos, err := countFound(func(trial int) (*core.Result, error) {
		return core.DetectEvenCycle(g, 2, core.Options{
			Seed: cfg.Seed + uint64(trial), MaxIterations: 40, Workers: cfg.Workers,
		})
	})
	if err != nil {
		return nil, err
	}
	t.AddRow("PG(2,13) incidence (C_4-free)", itoa(trials), "-", itoa(falsePos))
	if falsePos > 0 {
		return nil, fmt.Errorf("E10: %d false positives — one-sidedness broken", falsePos)
	}
	det := float64(found+foundHeavy) / float64(2*trials)
	t.AddNote("detection rate %.2f (guarantee ≥ 1-ε = 0.67); false positives impossible by construction", det)
	return t, nil
}

// --------------------------------------------------------------- D1

// D1 compares the deterministic broadcast-CONGEST detector
// (arXiv:2412.11195, internal/deterministic) with the randomized
// Algorithm 1 on the planted C_2k sweep. The deterministic detector runs
// one seedless broadcast session and decides; the randomized column is the
// cost of a single coloring iteration of its K-iteration schedule, which
// detects only when the random coloring cooperates.
func D1(cfg Config) (*Table, error) {
	t := &Table{
		ID:     "D1",
		Title:  "Deterministic broadcast vs randomized C_2k detection (planted sweep)",
		Header: []string{"k", "n", "det rounds", "det cong", "det found", "rand rounds/iter", "rand found", "rounds ratio"},
	}
	ks := []int{2, 3}
	sizes := []int{512, 2048, 8192, 32768}
	if cfg.Quick {
		sizes = []int{256, 1024, 4096}
	}
	for _, k := range ks {
		var xs, ys []float64
		for _, n := range sizes {
			g, _, err := graph.PlantedLight(n, 2*k, 1.5, graph.NewRand(cfg.Seed+uint64(n*k)))
			if err != nil {
				return nil, err
			}
			det, err := deterministic.Detect(g, k, deterministic.Options{Workers: cfg.Workers})
			if err != nil {
				return nil, err
			}
			rnd, err := core.DetectEvenCycle(g, k, core.Options{
				Seed:          cfg.Seed + uint64(n)*31,
				POverride:     scaledP(n, k),
				MaxIterations: 1,
				KeepGoing:     true,
				Workers:       cfg.Workers,
			})
			if err != nil {
				return nil, err
			}
			xs = append(xs, float64(n))
			ys = append(ys, float64(det.Rounds))
			t.AddRow(itoa(k), itoa(n), itoa(det.Rounds), itoa(det.MaxCongestion),
				fmt.Sprintf("%v", det.Found), itoa(rnd.Rounds), fmt.Sprintf("%v", rnd.Found),
				f(float64(det.Rounds)/float64(rnd.Rounds)))
		}
		if slope, ok := FitSlope(xs, ys); ok {
			t.AddNote("k=%d: deterministic rounds slope %.3f (threshold regime 1-1/k = %.3f; "+
				"sparse hosts keep the relay queues far below τ, so the measured slope tracks "+
				"the k-ball walk load, not the worst-case bound)",
				k, slope, 1-1/float64(k))
		}
	}
	t.AddNote("deterministic: one broadcast session, no repetition, no randomness; one-sided — misses need overflow or chord-polluted parent chains")
	t.AddNote("randomized: one coloring iteration at the rescaled p; its schedule needs K iterations for the 1-ε guarantee")
	t.AddNote("instances: sparse planted-light hosts; on hub-heavy instances the deterministic τ overflows (see internal/deterministic tests)")
	return t, nil
}

// --------------------------------------------------------------- A1

// A1 compares the batch (paper) and pipelined schedules.
func A1(cfg Config) (*Table, error) {
	t := &Table{
		ID:     "A1",
		Title:  "color-BFS scheduling: batch (paper) vs pipelined",
		Header: []string{"n", "mode", "rounds/iter", "messages/iter", "detected"},
	}
	sizes := []int{1024, 4096}
	if cfg.Quick {
		sizes = []int{512, 2048}
	}
	const iters = 2
	for _, n := range sizes {
		g, _, err := heavyInstance(n, 4, cfg.Seed+uint64(n))
		if err != nil {
			return nil, err
		}
		for _, pipelined := range []bool{false, true} {
			mode := "batch"
			if pipelined {
				mode = "pipelined"
			}
			res, err := core.DetectEvenCycle(g, 2, core.Options{
				Seed: cfg.Seed, POverride: scaledP(n, 2), MaxIterations: iters,
				KeepGoing: true, Pipelined: pipelined, Workers: cfg.Workers,
			})
			if err != nil {
				return nil, err
			}
			t.AddRow(itoa(n), mode, f(float64(res.Rounds)/iters),
				f(float64(res.Messages)/iters), fmt.Sprintf("%v", res.Found))
		}
	}
	t.AddNote("pipelining removes phase barriers; both preserve one-sidedness (witnesses verified)")
	return t, nil
}

// --------------------------------------------------------------- A2

// A2 runs the trap instances where constant local thresholds lose the
// cycle while the global threshold keeps it (the [SIROCCO'23] mechanism).
func A2(cfg Config) (*Table, error) {
	t := &Table{
		ID:     "A2",
		Title:  "Trap instance (C_6 + congestion trap): detection by threshold",
		Header: []string{"trap width", "τ", "detected (perfect coloring)"},
	}
	for _, width := range []int{10, 40, 160} {
		g, s, cyc := trapInstance(width)
		for _, tau := range []int{4, 16, g.NumNodes()} {
			detected, err := runTrapOnce(g, s, cyc, tau)
			if err != nil {
				return nil, err
			}
			label := itoa(tau)
			if tau == g.NumNodes() {
				label = "n (global)"
			}
			t.AddRow(itoa(width), label, fmt.Sprintf("%v", detected))
		}
	}
	t.AddNote("constant thresholds discard the flooded relay u1 once width/6 > τ;")
	t.AddNote("the global threshold τ(n) always forwards — the mechanism behind extending to k ≥ 6")
	return t, nil
}

// trapInstance builds C_6 + source + trap common neighbors of (s, u1).
func trapInstance(width int) (*graph.Graph, graph.NodeID, []graph.NodeID) {
	b := graph.NewBuilder(7 + width)
	cyc := make([]graph.NodeID, 6)
	for i := range cyc {
		cyc[i] = graph.NodeID(i)
		b.AddEdge(graph.NodeID(i), graph.NodeID((i+1)%6))
	}
	s := graph.NodeID(6)
	b.AddEdge(s, cyc[0])
	for i := 0; i < width; i++ {
		tr := graph.NodeID(7 + i)
		b.AddEdge(s, tr)
		b.AddEdge(tr, cyc[1])
	}
	return b.Build(), s, cyc
}

func runTrapOnce(g *graph.Graph, s graph.NodeID, cyc []graph.NodeID, tau int) (bool, error) {
	n := g.NumNodes()
	colors := make([]int8, n) // traps colored 0 (adversarial)
	for i, v := range cyc {
		colors[v] = int8(i)
	}
	colors[s] = 5
	inX := make([]bool, n)
	for _, w := range g.Neighbors(s) {
		inX[w] = true
	}
	all := make([]bool, n)
	for i := range all {
		all[i] = true
	}
	bfs, err := core.NewColorBFS(n, core.ColorBFSSpec{
		L: 6, Color: colors, InH: all, InX: inX, Threshold: tau, SeedProb: 1,
	})
	if err != nil {
		return false, err
	}
	eng := congest.NewEngine(congest.NewNetwork(g, 1))
	if _, err := bfs.Run(eng); err != nil {
		return false, err
	}
	return len(bfs.Detections()) > 0, nil
}

// --------------------------------------------------------------- A4

// A4 compares the quantum charge with and without diameter reduction on a
// high-diameter instance.
func A4(cfg Config) (*Table, error) {
	t := &Table{
		ID:     "A4",
		Title:  "Quantum charge on a path-like graph: with vs without Lemma 9",
		Header: []string{"n", "mode", "quantum rounds", "D term"},
	}
	// The reduction pays off once the cluster radius Θ(k log n) is well
	// below the path diameter, so sizes start at 4000.
	sizes := []int{4000, 16000}
	if cfg.Quick {
		sizes = []int{2000, 8000}
	}
	for _, n := range sizes {
		rng := graph.NewRand(cfg.Seed + uint64(n))
		g, _, err := graph.PlantCycle(graph.Path(n), 4, rng)
		if err != nil {
			return nil, err
		}
		for _, noDecomp := range []bool{false, true} {
			mode := "reduced (Lemma 9)"
			if noDecomp {
				mode = "whole graph"
			}
			res, err := quantum.DetectEvenCycle(g, 2, quantum.Options{
				Seed: cfg.Seed, MaxSims: 1, AttemptIterations: 1,
				NoDecomposition: noDecomp, EpsFn: scaledEps(2), Workers: cfg.Workers,
			})
			if err != nil {
				return nil, err
			}
			t.AddRow(itoa(n), mode, f(res.QuantumRounds), itoa(res.MaxLedger.Diameter))
		}
	}
	t.AddNote("without reduction the D·√(1/ε) term dominates on high-diameter graphs (Section 3.1.2)")
	return t, nil
}
