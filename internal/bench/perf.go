package bench

// The perf trajectory: a fixed set of end-to-end scenarios measured for
// wall time and allocations, serialized as JSON (BENCH_<pr>.json at the
// repository root). Each PR that touches performance re-runs the suite via
// `benchtab -json` and links the previous record with -baseline, so
// regressions are visible as a file diff rather than folklore. The
// scenarios mirror the root-package benchmarks (BenchmarkDetectEvenCycle,
// BenchmarkColorBFS) so `go test -bench` and the JSON stay comparable.

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"runtime"
	"strings"
	"time"

	"repro/internal/baseline"
	"repro/internal/congest"
	"repro/internal/core"
	"repro/internal/deterministic"
	"repro/internal/graph"
	"repro/internal/incr"
	"repro/internal/obs"
	"repro/internal/service"
)

// PerfResult is one measured scenario.
type PerfResult struct {
	Name        string  `json:"name"`
	Iters       int     `json:"iters"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
	// Domain cost of one op (identical across reruns for a fixed seed).
	Rounds   int   `json:"rounds,omitempty"`
	Messages int64 `json:"messages,omitempty"`
}

// PerfRecord is the serialized trajectory entry.
type PerfRecord struct {
	Schema string `json:"schema"`
	Label  string `json:"label"`
	Go     string `json:"go"`
	Quick  bool   `json:"quick,omitempty"`
	// Estimator names the ns/op statistic ("min-of-5-blocks" since PR 3;
	// records without the field used the mean over all reps). Compare
	// ns/op across records only when the estimators match — baselines
	// recorded under the old statistic should be re-measured (the suite
	// backports cleanly; see the baseline labels).
	Estimator string       `json:"estimator,omitempty"`
	Scenarios []PerfResult `json:"scenarios"`
	// Baseline embeds the record this run is compared against (typically
	// the previous PR's BENCH_*.json), so a single file carries the delta.
	Baseline *PerfRecord `json:"baseline,omitempty"`
}

// PerfSchema identifies the JSON layout.
const PerfSchema = "evencycle-perf/v1"

// DetectScenario is one end-to-end detector workload. The instances and
// seeds are pinned — trajectory records are only comparable across PRs if
// every run measures the same work — so the suite deliberately takes no
// seed/workers/parallel knobs.
type DetectScenario struct {
	Name      string
	N, K      int
	Deg       float64 // average degree of the planted-light host
	Iters     int     // coloring iterations (KeepGoing, no early stop)
	GraphSeed uint64
	Seed      uint64
}

// DetectScenarios is the shared scenario table: BenchmarkDetectEvenCycle
// in the root package and the detect-even entries of the perf JSON both
// run exactly these.
var DetectScenarios = []DetectScenario{
	{Name: "n=2000/k=2", N: 2000, K: 2, Deg: 2.0, Iters: 6, GraphSeed: 11, Seed: 42},
	{Name: "n=2000/k=3", N: 2000, K: 3, Deg: 1.5, Iters: 4, GraphSeed: 11, Seed: 42},
}

// Graph builds the scenario's instance.
func (sc DetectScenario) Graph() (*graph.Graph, error) {
	g, _, err := graph.PlantedLight(sc.N, 2*sc.K, sc.Deg, graph.NewRand(sc.GraphSeed))
	return g, err
}

// Run executes one op of the scenario.
func (sc DetectScenario) Run(g *graph.Graph) (*core.Result, error) {
	res, err := core.DetectEvenCycle(g, sc.K, core.Options{
		Seed: sc.Seed, MaxIterations: sc.Iters, KeepGoing: true,
	})
	if err != nil {
		return nil, err
	}
	if res.IterationsRun != sc.Iters {
		return nil, fmt.Errorf("ran %d iterations, want %d", res.IterationsRun, sc.Iters)
	}
	return res, nil
}

type perfScenario struct {
	name string
	// prepare builds the instance; run executes one op and reports the
	// domain cost (rounds, messages) of that op.
	run func() (rounds int, messages int64, err error)
}

// measure times reps executions of run and samples the allocator around
// them, mirroring what testing.B reports but with a caller-chosen
// deterministic iteration count (CI smoke uses 1). The reps are split
// into up to measureBlocks timing blocks and NsPerOp is the fastest
// block's per-op time: on shared hosts (CI runners, cloud sandboxes)
// wall-clock noise from CPU steal is strictly additive, so the minimum
// is the robust estimator of the code's actual speed — a single
// averaged sample can be 20%+ slow purely from a noisy neighbor.
// Allocation counters are averaged over every rep (they are
// deterministic for a fixed workload, so averaging only smooths
// GC-timing jitter).
func measure(name string, reps int, run func() (int, int64, error)) (PerfResult, error) {
	res := PerfResult{Name: name, Iters: reps}
	var err error
	if res.Rounds, res.Messages, err = run(); err != nil { // warm-up + domain cost
		return res, fmt.Errorf("%s: %w", name, err)
	}
	const measureBlocks = 5
	blocks := min(measureBlocks, reps)
	perBlock := reps / blocks
	extra := reps % blocks
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	best := math.Inf(1)
	for b := 0; b < blocks; b++ {
		n := perBlock
		if b < extra {
			n++
		}
		start := time.Now()
		for i := 0; i < n; i++ {
			if _, _, err := run(); err != nil {
				return res, fmt.Errorf("%s: %w", name, err)
			}
		}
		if perOp := float64(time.Since(start).Nanoseconds()) / float64(n); perOp < best {
			best = perOp
		}
	}
	runtime.ReadMemStats(&after)
	res.NsPerOp = best
	res.AllocsPerOp = float64(after.Mallocs-before.Mallocs) / float64(reps)
	res.BytesPerOp = float64(after.TotalAlloc-before.TotalAlloc) / float64(reps)
	return res, nil
}

// mutatePathN and mutatePathEdges pin the mutate-path instance: a simple
// path on 3000 vertices. Girth is infinite until the chord arrives, so
// the k=2 verdict is NotFound on both sides of the mutation.
const mutatePathN = 3000

func mutatePathEdges() [][2]graph.NodeID {
	edges := make([][2]graph.NodeID, 0, mutatePathN-1)
	for v := graph.NodeID(0); v < mutatePathN-1; v++ {
		edges = append(edges, [2]graph.NodeID{v, v + 1})
	}
	return edges
}

func perfScenarios() ([]perfScenario, error) {
	var scenarios []perfScenario
	for _, sc := range DetectScenarios {
		g, err := sc.Graph()
		if err != nil {
			return nil, err
		}
		scenarios = append(scenarios, perfScenario{"detect-even/" + sc.Name, func() (int, int64, error) {
			res, err := sc.Run(g)
			if err != nil {
				return 0, 0, err
			}
			return res.Rounds, res.Messages, nil
		}})
	}
	gBFS, cyc, err := graph.PlantedLight(5000, 4, 2.0, graph.NewRand(2))
	if err != nil {
		return nil, err
	}
	n := gBFS.NumNodes()
	colors := make([]int8, n)
	for i, v := range cyc {
		colors[v] = int8(i)
	}
	all := make([]bool, n)
	for i := range all {
		all[i] = true
	}
	bfsEng := congest.NewEngine(congest.NewNetwork(gBFS, 3))
	bfsPool := core.NewColorBFSPool(n)
	gBall := graph.Gnm(400, 800, graph.NewRand(4))
	// The deterministic scenario reuses the pinned n=2000/k=2 detect
	// instance, so the det-broadcast and detect-even numbers compare the
	// two algorithms on identical work.
	gDet, err := DetectScenarios[0].Graph()
	if err != nil {
		return nil, err
	}

	return append(scenarios,
		perfScenario{"colorbfs/n=5000/L=4", func() (int, int64, error) {
			bfs, err := bfsPool.Acquire(core.ColorBFSSpec{
				L: 4, Color: colors, InH: all, InX: all, Threshold: n, SeedProb: 1,
			})
			if err != nil {
				return 0, 0, err
			}
			rep, err := bfs.Run(bfsEng)
			if err != nil {
				return 0, 0, err
			}
			if len(bfs.Detections()) == 0 {
				return 0, 0, fmt.Errorf("planted cycle missed under perfect coloring")
			}
			bfsPool.Release(bfs)
			return rep.Rounds, rep.Messages, nil
		}},
		perfScenario{"kball/n=400/k=3", func() (int, int64, error) {
			res, err := baseline.DetectKBall(gBall, 3, 7, 0)
			if err != nil {
				return 0, 0, err
			}
			return res.Rounds, res.Messages, nil
		}},
		perfScenario{"det-broadcast/n=2000/k=2", func() (int, int64, error) {
			res, err := deterministic.Detect(gDet, 2, deterministic.Options{})
			if err != nil {
				return 0, 0, err
			}
			if !res.Found {
				return 0, 0, fmt.Errorf("planted cycle missed by the deterministic detector")
			}
			return res.Rounds, res.Messages, nil
		}},
		// The service hit path: after the warm-up op computes and caches
		// the det verdict (the measure() warm-up call), every measured op
		// must be a pure cache hit — fingerprint + LRU lookup, no engine
		// session. Domain cost is reported as 0: that zero IS the point.
		// The incremental mutation path, warm vs cold, on identical work:
		// one edge lands on a memoized n=3000 path graph (C4-free, and the
		// {100,105} chord closes only a C6, so the k=2 verdict stays
		// NotFound). Warm = CSR row-splice + checkpointed fingerprint
		// resume + localized recheck of the radius-2k ball; cold = full
		// Builder rebuild + full fingerprint pass + full deterministic
		// detection — exactly what serving the mutation costs without the
		// incremental machinery. The warm/cold ratio is the headline number.
		perfScenario{"mutate-path/warm/n=3000/k=2", func() func() (int, int64, error) {
			parent := graph.FromEdges(mutatePathN, mutatePathEdges())
			added := [][2]graph.NodeID{{100, 105}}
			return func() (int, int64, error) {
				child, err := parent.WithEdges(added)
				if err != nil {
					return 0, 0, err
				}
				if child.Fingerprint().IsZero() {
					return 0, 0, fmt.Errorf("zero fingerprint")
				}
				res, err := incr.Recheck(child, added, 2, incr.Options{})
				if err != nil {
					return 0, 0, err
				}
				if res.Fallback || res.Res.Found {
					return 0, 0, fmt.Errorf("warm recheck left the fast path: %+v", res)
				}
				return res.Res.Rounds, res.Res.Messages, nil
			}
		}()},
		perfScenario{"mutate-path/cold/n=3000/k=2", func() func() (int, int64, error) {
			edges := append(mutatePathEdges(), [2]graph.NodeID{100, 105})
			return func() (int, int64, error) {
				child := graph.FromEdges(mutatePathN, edges)
				if child.Fingerprint().IsZero() {
					return 0, 0, fmt.Errorf("zero fingerprint")
				}
				res, err := deterministic.Detect(child, 2, deterministic.Options{})
				if err != nil {
					return 0, 0, err
				}
				if res.Found {
					return 0, 0, fmt.Errorf("C4 found in a C6-girth instance")
				}
				return res.Rounds, res.Messages, nil
			}
		}()},
		perfScenario{"service/hit-path/n=2000/k=2", func() func() (int, int64, error) {
			svc := service.New(service.Config{Slots: 1})
			req := &service.Request{Graph: gDet, Algo: service.AlgoDet, K: 2}
			calls := 0
			return func() (int, int64, error) {
				resp, src, err := svc.Do(context.Background(), req)
				if err != nil {
					return 0, 0, err
				}
				if !resp.Found {
					return 0, 0, fmt.Errorf("service lost the det verdict")
				}
				calls++
				if calls > 1 && src != service.SourceCache {
					return 0, 0, fmt.Errorf("warmed request served from %q, not cache", src)
				}
				return 0, 0, nil
			}
		}()},
		// Observability overhead, measured not asserted: the same pinned
		// workloads with instrumentation armed. detect-even/observed runs
		// the engine with a live per-session histogram hook (two atomic
		// histogram observations plus one clock pair per session);
		// service/hit-path/observed serves warmed cache hits on an
		// Observe:true service (clock pair + latency histogram per
		// request). The disarmed twins keep their original names, so the
		// baseline diff shows the instrumentation cost as the gap between
		// the pairs rather than as a regression.
		perfScenario{"detect-even/observed/n=2000/k=2", func() func() (int, int64, error) {
			sc := DetectScenarios[0]
			reg := obs.NewRegistry()
			rounds := reg.Histogram("bench_session_rounds", "", obs.RoundBuckets(), 1)
			wall := reg.Histogram("bench_session_seconds", "", obs.DurationBuckets(), 1e-9)
			observe := func(r int, w time.Duration) {
				rounds.Observe(int64(r))
				wall.ObserveDuration(w)
			}
			return func() (int, int64, error) {
				res, err := core.DetectEvenCycle(gDet, sc.K, core.Options{
					Seed: sc.Seed, MaxIterations: sc.Iters, KeepGoing: true,
					Observe: observe,
				})
				if err != nil {
					return 0, 0, err
				}
				if res.IterationsRun != sc.Iters {
					return 0, 0, fmt.Errorf("ran %d iterations, want %d", res.IterationsRun, sc.Iters)
				}
				return res.Rounds, res.Messages, nil
			}
		}()},
		perfScenario{"service/hit-path/observed/n=2000/k=2", func() func() (int, int64, error) {
			svc := service.New(service.Config{Slots: 1, Observe: true})
			req := &service.Request{Graph: gDet, Algo: service.AlgoDet, K: 2}
			calls := 0
			return func() (int, int64, error) {
				resp, src, err := svc.Do(context.Background(), req)
				if err != nil {
					return 0, 0, err
				}
				if !resp.Found {
					return 0, 0, fmt.Errorf("service lost the det verdict")
				}
				calls++
				if calls > 1 && src != service.SourceCache {
					return 0, 0, fmt.Errorf("warmed request served from %q, not cache", src)
				}
				return 0, 0, nil
			}
		}()},
	), nil
}

// RunPerf executes the perf suite. Quick mode (CI smoke) runs each
// scenario once; the full mode takes the fastest of five timing blocks
// over 15 reps (see measure) for steal-robust nanoseconds. The
// workloads themselves are pinned (see DetectScenarios), so there is
// deliberately no seed or parallelism knob.
func RunPerf(quick bool, label string) (*PerfRecord, error) {
	reps := 15
	if quick {
		reps = 1
	}
	scenarios, err := perfScenarios()
	if err != nil {
		return nil, err
	}
	rec := &PerfRecord{
		Schema:    PerfSchema,
		Label:     label,
		Go:        runtime.Version(),
		Quick:     quick,
		Estimator: "min-of-5-blocks",
	}
	for _, sc := range scenarios {
		res, err := measure(sc.name, reps, sc.run)
		if err != nil {
			return nil, err
		}
		rec.Scenarios = append(rec.Scenarios, res)
	}
	return rec, nil
}

// CheckRegression compares the record's scenarios against its embedded
// baseline and returns an error naming every scenario whose ns/op
// regressed by more than frac (e.g. 0.10 = 10%). Scenarios absent from
// the baseline are skipped. Note the caveat that cross-machine
// comparisons carry: the committed baseline was measured on the
// recording machine, so a CI gate is a coarse tripwire against gross
// regressions, not a microbenchmark.
func (rec *PerfRecord) CheckRegression(frac float64) error {
	if rec.Baseline == nil {
		return fmt.Errorf("bench: regression check needs an embedded baseline")
	}
	if rec.Estimator != rec.Baseline.Estimator {
		// Min-of-blocks vs mean-of-reps are not comparable statistics (the
		// min is systematically lower on a noisy host), so a gate across
		// the boundary would be silently lenient; re-measure the baseline
		// with the current estimator instead (the suite backports cleanly).
		return fmt.Errorf("bench: estimator mismatch: record %q vs baseline %q — re-measure the baseline before gating",
			rec.Estimator, rec.Baseline.Estimator)
	}
	base := make(map[string]PerfResult, len(rec.Baseline.Scenarios))
	for _, s := range rec.Baseline.Scenarios {
		base[s.Name] = s
	}
	var bad []string
	for _, s := range rec.Scenarios {
		b, ok := base[s.Name]
		if !ok || b.NsPerOp <= 0 {
			continue
		}
		if s.NsPerOp > b.NsPerOp*(1+frac) {
			bad = append(bad, fmt.Sprintf("%s: %.0f ns/op vs baseline %.0f (%+.1f%%)",
				s.Name, s.NsPerOp, b.NsPerOp, 100*(s.NsPerOp/b.NsPerOp-1)))
		}
	}
	if len(bad) > 0 {
		return fmt.Errorf("bench: ns/op regression beyond %.0f%%:\n  %s",
			frac*100, strings.Join(bad, "\n  "))
	}
	return nil
}

// ReadPerfRecord parses a BENCH_*.json record.
func ReadPerfRecord(r io.Reader) (*PerfRecord, error) {
	var rec PerfRecord
	if err := json.NewDecoder(r).Decode(&rec); err != nil {
		return nil, fmt.Errorf("bench: parsing perf record: %w", err)
	}
	if rec.Schema != PerfSchema {
		return nil, fmt.Errorf("bench: unsupported perf schema %q", rec.Schema)
	}
	return &rec, nil
}

// WriteJSON serializes the record (stable indentation so records diff
// cleanly in review).
func (rec *PerfRecord) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rec)
}
