package bench

import (
	"fmt"
	"io"
	"math"
	"strings"
	"text/tabwriter"
)

// FitSlope fits y = c·x^s by least squares on (log x, log y) and returns
// the exponent s. Points with non-positive coordinates are skipped.
func FitSlope(xs, ys []float64) (slope float64, ok bool) {
	var lx, ly []float64
	for i := range xs {
		if i < len(ys) && xs[i] > 0 && ys[i] > 0 {
			lx = append(lx, math.Log(xs[i]))
			ly = append(ly, math.Log(ys[i]))
		}
	}
	n := float64(len(lx))
	if n < 2 {
		return 0, false
	}
	var sx, sy, sxx, sxy float64
	for i := range lx {
		sx += lx[i]
		sy += ly[i]
		sxx += lx[i] * lx[i]
		sxy += lx[i] * ly[i]
	}
	den := n*sxx - sx*sx
	if den == 0 {
		return 0, false
	}
	return (n*sxy - sx*sy) / den, true
}

// Table is a rendered experiment result.
type Table struct {
	ID     string
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// AddRow appends a formatted row.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// AddNote appends a free-text note (assumptions, fitted slopes, verdicts).
func (t *Table) AddNote(format string, args ...any) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// Render writes an aligned plain-text table.
func (t *Table) Render(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "## %s — %s\n\n", t.ID, t.Title); err != nil {
		return err
	}
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, strings.Join(t.Header, "\t"))
	sep := make([]string, len(t.Header))
	for i, h := range t.Header {
		sep[i] = strings.Repeat("-", len(h))
	}
	fmt.Fprintln(tw, strings.Join(sep, "\t"))
	for _, row := range t.Rows {
		fmt.Fprintln(tw, strings.Join(row, "\t"))
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	for _, note := range t.Notes {
		if _, err := fmt.Fprintf(w, "  * %s\n", note); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w)
	return err
}

// RenderMarkdown writes the table as a GitHub-flavored markdown section:
// a heading, a pipe table, and the notes as a bullet list. It is the
// renderer behind `benchtab -md`, which regenerates EXPERIMENTS.md.
func (t *Table) RenderMarkdown(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "## %s — %s\n\n", t.ID, t.Title); err != nil {
		return err
	}
	row := func(cells []string) error {
		esc := make([]string, len(cells))
		for i, c := range cells {
			esc[i] = strings.ReplaceAll(c, "|", "\\|")
		}
		_, err := fmt.Fprintf(w, "| %s |\n", strings.Join(esc, " | "))
		return err
	}
	if err := row(t.Header); err != nil {
		return err
	}
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = "---"
	}
	if err := row(sep); err != nil {
		return err
	}
	for _, r := range t.Rows {
		if err := row(r); err != nil {
			return err
		}
	}
	if len(t.Notes) > 0 {
		if _, err := fmt.Fprintln(w); err != nil {
			return err
		}
		for _, note := range t.Notes {
			if _, err := fmt.Fprintf(w, "- %s\n", note); err != nil {
				return err
			}
		}
	}
	_, err := fmt.Fprintln(w)
	return err
}

// RenderCSV writes the table as CSV (header + rows; notes as # comments).
func (t *Table) RenderCSV(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "# %s: %s\n", t.ID, t.Title); err != nil {
		return err
	}
	if _, err := fmt.Fprintln(w, strings.Join(t.Header, ",")); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if _, err := fmt.Fprintln(w, strings.Join(row, ",")); err != nil {
			return err
		}
	}
	for _, note := range t.Notes {
		if _, err := fmt.Fprintf(w, "# %s\n", note); err != nil {
			return err
		}
	}
	return nil
}

// f formats a float compactly.
func f(v float64) string {
	switch {
	case v == 0:
		return "0"
	case math.Abs(v) >= 1000 || math.Abs(v) < 0.01:
		return fmt.Sprintf("%.3g", v)
	default:
		return fmt.Sprintf("%.3f", v)
	}
}

func itoa(v int) string { return fmt.Sprintf("%d", v) }
