package bench

// S1 — the service-layer scenario family: a mixed planted/C-free corpus
// replayed against internal/service with varying worker counts and
// distinct-graph mixes. The table reports only *deterministic* quantities
// (request counts, engine sessions, saved work, hit ratios, verdicts):
// EXPERIMENTS.md must regenerate byte-identically, and wall-clock numbers
// are host noise. The invariant the table certifies is the service
// contract itself — engine sessions == distinct keys however many workers
// race (single-flight + cache make computation at-most-once per key), and
// deterministic-mode responses byte-identical across worker counts.
// Throughput/latency for the same scenario family is recorded out of band
// by cmd/cycleload (BENCH_5.json; see the CI service-smoke job).

import (
	"context"
	"encoding/json"
	"fmt"
	"sync"

	"repro/internal/graph"
	"repro/internal/service"
)

// s1Corpus builds the mixed corpus: half planted C_4 instances, half
// C_4-free high-girth instances, all distinct.
func s1Corpus(distinct int, n int, seed uint64) ([]*graph.Graph, error) {
	gs := make([]*graph.Graph, 0, distinct)
	for i := 0; i < distinct; i++ {
		gseed := seed + uint64(i)*1000
		if i%2 == 0 {
			g, _, err := graph.PlantedLight(n, 4, 1.5, graph.NewRand(gseed))
			if err != nil {
				return nil, err
			}
			gs = append(gs, g)
		} else {
			gs = append(gs, graph.HighGirth(n, 3*n/2, 6, graph.NewRand(gseed)))
		}
	}
	return gs, nil
}

// s1Point replays `requests` requests over the corpus from `clients`
// closed-loop goroutines against a fresh service with the given config,
// returning the stats and the per-graph response bodies. mkReq maps a
// corpus index to its request.
func s1Point(gs []*graph.Graph, requests, clients int, svcCfg service.Config, mkReq func(gi int) *service.Request) (service.Stats, map[int][]byte, int, error) {
	svc := service.New(svcCfg)
	bodies := make(map[int][]byte, len(gs))
	found := 0
	var mu sync.Mutex
	var wg sync.WaitGroup
	var firstErr error
	next := 0
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				mu.Lock()
				i := next
				next++
				mu.Unlock()
				if i >= requests {
					return
				}
				gi := i % len(gs)
				resp, _, err := svc.Do(context.Background(), mkReq(gi))
				mu.Lock()
				if err != nil && firstErr == nil {
					firstErr = err
				}
				if err == nil {
					body, merr := json.Marshal(resp)
					if merr != nil && firstErr == nil {
						firstErr = merr
					}
					if prev, ok := bodies[gi]; ok {
						if string(prev) != string(body) && firstErr == nil {
							firstErr = fmt.Errorf("graph %d: responses differ across serves", gi)
						}
					} else {
						bodies[gi] = body
						if resp.Found {
							found++
						}
					}
				}
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	return svc.Stats(), bodies, found, firstErr
}

// S1 runs the detection-service scenario family: worker count × corpus
// mix, deterministic counters only (see the file comment).
func S1(cfg Config) (*Table, error) {
	n, requests, clients := 1200, 240, 8
	workerSweep := []int{1, 2, 8}
	mixSweep := []int{4, 12}
	if cfg.Quick {
		n, requests, clients = 300, 60, 4
		workerSweep = []int{1, 4}
		mixSweep = []int{2, 6}
	}
	tab := &Table{
		ID:    "S1",
		Title: "detection service: saved work vs worker count × corpus mix (deterministic counters)",
		Header: []string{"slots", "distinct", "requests", "engine sessions", "saved", "hit ratio",
			"planted found", "at-most-once", "det identical"},
	}
	for _, distinct := range mixSweep {
		gs, err := s1Corpus(distinct, n, cfg.Seed)
		if err != nil {
			return nil, err
		}
		// Responses must be byte-identical not just across serves within a
		// point but across worker counts too.
		var ref map[int][]byte
		for _, slots := range workerSweep {
			// BatchSize 1 pins the solo miss path: the at-most-once column is
			// the exact session count, which fused batching would (correctly)
			// shrink by a timing-dependent amount; S2 certifies the batched
			// path through its timing-independent invariants instead.
			st, bodies, found, err := s1Point(gs, requests, clients,
				service.Config{Slots: slots, CacheEntries: 4 * len(gs), BatchSize: 1},
				func(gi int) *service.Request {
					return &service.Request{Graph: gs[gi], Algo: service.AlgoDet, K: 2}
				})
			if err != nil {
				return nil, fmt.Errorf("S1 slots=%d distinct=%d: %w", slots, distinct, err)
			}
			atMostOnce := st.EngineSessions == int64(distinct)
			identical := true
			if ref == nil {
				ref = bodies
			} else {
				for gi, body := range bodies {
					if string(ref[gi]) != string(body) {
						identical = false
					}
				}
			}
			saved := st.Hits + st.Coalesced
			tab.AddRow(itoa(slots), itoa(distinct), itoa(requests),
				itoa(int(st.EngineSessions)), itoa(int(saved)),
				f(float64(saved)/float64(st.Requests)),
				itoa(found),
				fmt.Sprintf("%v", atMostOnce), fmt.Sprintf("%v", identical))
			if !atMostOnce {
				return nil, fmt.Errorf("S1 slots=%d distinct=%d: %d engine sessions for %d keys",
					slots, distinct, st.EngineSessions, distinct)
			}
			if !identical {
				return nil, fmt.Errorf("S1 slots=%d distinct=%d: det responses differ across worker counts",
					slots, distinct)
			}
		}
	}
	tab.AddNote("requests replay a mixed planted-C4 / C4-free corpus in det mode from %d closed-loop clients; "+
		"saved = hits + coalesced (the split between the two depends on scheduling and is deliberately not tabled)", clients)
	tab.AddNote("at-most-once: engine sessions == distinct graphs — the single-flight + fingerprint-cache contract under concurrency")
	tab.AddNote("wall-clock throughput/latency for this family is measured by cmd/cycleload against cycleserved " +
		"and recorded as BENCH_5.json (see the CI service-smoke job); this table pins only host-independent counters")
	return tab, nil
}

// S2 certifies the batched miss path: the same replay as S1 but with
// fused batching on, against a batching-disabled reference. How misses
// group into batches is timing-dependent, so the table reports only the
// invariants that hold for EVERY grouping — per-key at-most-once
// computation (computed == distinct), sessions never exceeding the solo
// count (fusion only merges work), and responses byte-identical to the
// solo service (the per-component transcript-equivalence contract of
// core.DetectEvenCycleFused / deterministic.DetectMulti).
func S2(cfg Config) (*Table, error) {
	n, requests, clients := 1200, 240, 8
	mixSweep := []int{4, 12}
	if cfg.Quick {
		n, requests, clients = 300, 60, 4
		mixSweep = []int{2, 6}
	}
	tab := &Table{
		ID:    "S2",
		Title: "batched miss path: fused sessions vs solo reference (timing-independent invariants)",
		Header: []string{"algo", "distinct", "requests", "computed", "sessions ≤ distinct",
			"equal to solo", "hit ratio"},
	}
	algos := []struct {
		name  string
		mkReq func(gs []*graph.Graph) func(gi int) *service.Request
	}{
		{"det", func(gs []*graph.Graph) func(gi int) *service.Request {
			return func(gi int) *service.Request {
				return &service.Request{Graph: gs[gi], Algo: service.AlgoDet, K: 2}
			}
		}},
		{"even", func(gs []*graph.Graph) func(gi int) *service.Request {
			return func(gi int) *service.Request {
				return &service.Request{Graph: gs[gi], Algo: service.AlgoEven, K: 2,
					Seed: cfg.Seed, Iterations: 4}
			}
		}},
	}
	for _, distinct := range mixSweep {
		gs, err := s1Corpus(distinct, n, cfg.Seed)
		if err != nil {
			return nil, err
		}
		for _, a := range algos {
			batchedCfg := service.Config{Slots: 4, CacheEntries: 4 * len(gs), BatchSize: 8}
			soloCfg := service.Config{Slots: 4, CacheEntries: 4 * len(gs), BatchSize: 1}
			bst, bBodies, _, err := s1Point(gs, requests, clients, batchedCfg, a.mkReq(gs))
			if err != nil {
				return nil, fmt.Errorf("S2 %s distinct=%d (batched): %w", a.name, distinct, err)
			}
			_, sBodies, _, err := s1Point(gs, requests, clients, soloCfg, a.mkReq(gs))
			if err != nil {
				return nil, fmt.Errorf("S2 %s distinct=%d (solo): %w", a.name, distinct, err)
			}
			atMostOnce := bst.Computed == int64(distinct)
			bounded := bst.EngineSessions <= int64(distinct)
			identical := len(bBodies) == len(sBodies)
			for gi, body := range bBodies {
				if string(sBodies[gi]) != string(body) {
					identical = false
				}
			}
			saved := bst.Hits + bst.Coalesced
			tab.AddRow(a.name, itoa(distinct), itoa(requests), itoa(int(bst.Computed)),
				fmt.Sprintf("%v", bounded), fmt.Sprintf("%v", identical),
				f(float64(saved)/float64(bst.Requests)))
			if !atMostOnce {
				return nil, fmt.Errorf("S2 %s distinct=%d: %d computed for %d keys",
					a.name, distinct, bst.Computed, distinct)
			}
			if !bounded {
				return nil, fmt.Errorf("S2 %s distinct=%d: %d engine sessions exceed the %d-session solo bound",
					a.name, distinct, bst.EngineSessions, distinct)
			}
			if !identical {
				return nil, fmt.Errorf("S2 %s distinct=%d: batched responses differ from the solo service",
					a.name, distinct)
			}
		}
	}
	tab.AddNote("batched service: BatchSize 8, default linger; solo reference: BatchSize 1. " +
		"Randomized responses match across paths because the service derives each request's run seed " +
		"from (seed, fingerprint) identically on both, and the fused engine reproduces each component's solo transcript")
	tab.AddNote("how many sessions fuse is scheduling-dependent and deliberately not tabled; " +
		"the wall-clock win is recorded out of band as BENCH_6.json (the cycleload -direct -vs-solo many-small-graphs comparison)")
	return tab, nil
}
