package bench

// S1 — the service-layer scenario family: a mixed planted/C-free corpus
// replayed against internal/service with varying worker counts and
// distinct-graph mixes. The table reports only *deterministic* quantities
// (request counts, engine sessions, saved work, hit ratios, verdicts):
// EXPERIMENTS.md must regenerate byte-identically, and wall-clock numbers
// are host noise. The invariant the table certifies is the service
// contract itself — engine sessions == distinct keys however many workers
// race (single-flight + cache make computation at-most-once per key), and
// deterministic-mode responses byte-identical across worker counts.
// Throughput/latency for the same scenario family is recorded out of band
// by cmd/cycleload (BENCH_5.json; see the CI service-smoke job).

import (
	"context"
	"encoding/json"
	"fmt"
	"sync"

	"repro/internal/graph"
	"repro/internal/service"
)

// s1Corpus builds the mixed corpus: half planted C_4 instances, half
// C_4-free high-girth instances, all distinct.
func s1Corpus(distinct int, n int, seed uint64) ([]*graph.Graph, error) {
	gs := make([]*graph.Graph, 0, distinct)
	for i := 0; i < distinct; i++ {
		gseed := seed + uint64(i)*1000
		if i%2 == 0 {
			g, _, err := graph.PlantedLight(n, 4, 1.5, graph.NewRand(gseed))
			if err != nil {
				return nil, err
			}
			gs = append(gs, g)
		} else {
			gs = append(gs, graph.HighGirth(n, 3*n/2, 6, graph.NewRand(gseed)))
		}
	}
	return gs, nil
}

// s1Point replays `requests` det-mode requests over the corpus from
// `clients` closed-loop goroutines against a fresh service with `slots`
// workers, returning the stats and the per-graph response bodies.
func s1Point(gs []*graph.Graph, requests, clients, slots int) (service.Stats, map[int][]byte, int, error) {
	svc := service.New(service.Config{Slots: slots, CacheEntries: 4 * len(gs)})
	bodies := make(map[int][]byte, len(gs))
	found := 0
	var mu sync.Mutex
	var wg sync.WaitGroup
	var firstErr error
	next := 0
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				mu.Lock()
				i := next
				next++
				mu.Unlock()
				if i >= requests {
					return
				}
				gi := i % len(gs)
				resp, _, err := svc.Do(context.Background(), &service.Request{
					Graph: gs[gi], Algo: service.AlgoDet, K: 2,
				})
				mu.Lock()
				if err != nil && firstErr == nil {
					firstErr = err
				}
				if err == nil {
					body, merr := json.Marshal(resp)
					if merr != nil && firstErr == nil {
						firstErr = merr
					}
					if prev, ok := bodies[gi]; ok {
						if string(prev) != string(body) && firstErr == nil {
							firstErr = fmt.Errorf("graph %d: responses differ across serves", gi)
						}
					} else {
						bodies[gi] = body
						if resp.Found {
							found++
						}
					}
				}
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	return svc.Stats(), bodies, found, firstErr
}

// S1 runs the detection-service scenario family: worker count × corpus
// mix, deterministic counters only (see the file comment).
func S1(cfg Config) (*Table, error) {
	n, requests, clients := 1200, 240, 8
	workerSweep := []int{1, 2, 8}
	mixSweep := []int{4, 12}
	if cfg.Quick {
		n, requests, clients = 300, 60, 4
		workerSweep = []int{1, 4}
		mixSweep = []int{2, 6}
	}
	tab := &Table{
		ID:    "S1",
		Title: "detection service: saved work vs worker count × corpus mix (deterministic counters)",
		Header: []string{"slots", "distinct", "requests", "engine sessions", "saved", "hit ratio",
			"planted found", "at-most-once", "det identical"},
	}
	for _, distinct := range mixSweep {
		gs, err := s1Corpus(distinct, n, cfg.Seed)
		if err != nil {
			return nil, err
		}
		// Responses must be byte-identical not just across serves within a
		// point but across worker counts too.
		var ref map[int][]byte
		for _, slots := range workerSweep {
			st, bodies, found, err := s1Point(gs, requests, clients, slots)
			if err != nil {
				return nil, fmt.Errorf("S1 slots=%d distinct=%d: %w", slots, distinct, err)
			}
			atMostOnce := st.EngineSessions == int64(distinct)
			identical := true
			if ref == nil {
				ref = bodies
			} else {
				for gi, body := range bodies {
					if string(ref[gi]) != string(body) {
						identical = false
					}
				}
			}
			saved := st.Hits + st.Coalesced
			tab.AddRow(itoa(slots), itoa(distinct), itoa(requests),
				itoa(int(st.EngineSessions)), itoa(int(saved)),
				f(float64(saved)/float64(st.Requests)),
				itoa(found),
				fmt.Sprintf("%v", atMostOnce), fmt.Sprintf("%v", identical))
			if !atMostOnce {
				return nil, fmt.Errorf("S1 slots=%d distinct=%d: %d engine sessions for %d keys",
					slots, distinct, st.EngineSessions, distinct)
			}
			if !identical {
				return nil, fmt.Errorf("S1 slots=%d distinct=%d: det responses differ across worker counts",
					slots, distinct)
			}
		}
	}
	tab.AddNote("requests replay a mixed planted-C4 / C4-free corpus in det mode from %d closed-loop clients; "+
		"saved = hits + coalesced (the split between the two depends on scheduling and is deliberately not tabled)", clients)
	tab.AddNote("at-most-once: engine sessions == distinct graphs — the single-flight + fingerprint-cache contract under concurrency")
	tab.AddNote("wall-clock throughput/latency for this family is measured by cmd/cycleload against cycleserved " +
		"and recorded as BENCH_5.json (see the CI service-smoke job); this table pins only host-independent counters")
	return tab, nil
}
