package bench

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func TestFitSlope(t *testing.T) {
	// y = 3·x^0.75
	var xs, ys []float64
	for _, x := range []float64{10, 100, 1000, 10000} {
		xs = append(xs, x)
		ys = append(ys, 3*math.Pow(x, 0.75))
	}
	slope, ok := FitSlope(xs, ys)
	if !ok || math.Abs(slope-0.75) > 1e-9 {
		t.Fatalf("slope = %v ok=%v, want 0.75", slope, ok)
	}
	if _, ok := FitSlope([]float64{1}, []float64{2}); ok {
		t.Fatal("single point fitted")
	}
	// Non-positive points are skipped.
	slope, ok = FitSlope([]float64{-1, 10, 100, 1000}, []float64{5, 3 * math.Pow(10, 0.5), 3 * math.Pow(100, 0.5), 3 * math.Pow(1000, 0.5)})
	if !ok || math.Abs(slope-0.5) > 1e-9 {
		t.Fatalf("slope with skip = %v", slope)
	}
}

func TestTableRender(t *testing.T) {
	tab := &Table{
		ID:     "T",
		Title:  "demo",
		Header: []string{"a", "b"},
	}
	tab.AddRow("1", "2")
	tab.AddNote("note %d", 7)
	var buf bytes.Buffer
	if err := tab.Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"## T — demo", "a", "note 7"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q in:\n%s", want, out)
		}
	}
	buf.Reset()
	if err := tab.RenderCSV(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "a,b") {
		t.Fatalf("csv missing header: %s", buf.String())
	}
}

func TestRegistry(t *testing.T) {
	all := All()
	if len(all) < 12 {
		t.Fatalf("registry has %d experiments", len(all))
	}
	seen := map[string]bool{}
	for _, e := range all {
		if seen[e.ID] {
			t.Fatalf("duplicate experiment %s", e.ID)
		}
		seen[e.ID] = true
		if e.Run == nil || e.Title == "" {
			t.Fatalf("experiment %s incomplete", e.ID)
		}
	}
	if _, err := ByID("E1"); err != nil {
		t.Fatal(err)
	}
	if _, err := ByID("nope"); err == nil {
		t.Fatal("unknown ID accepted")
	}
}

func TestScaledHelpers(t *testing.T) {
	// c_2 = 8: p = 8/√10000 = 0.08.
	if p := scaledP(10000, 2); math.Abs(p-0.08) > 1e-12 {
		t.Fatalf("scaledP = %v, want 0.08", p)
	}
	if p := scaledP(4, 2); p > 1 {
		t.Fatalf("scaledP not capped: %v", p)
	}
	eps, err := scaledEps(2)(10000)
	if err != nil {
		t.Fatal(err)
	}
	// τ = 2·4·10000·0.08 = 6400; ε = 1/19200.
	if math.Abs(eps-1.0/19200) > 1e-12 {
		t.Fatalf("scaledEps = %v, want 1/19200", eps)
	}
}

// Smoke-run the fast experiments end to end in quick mode; the heavy
// sweeps run via cmd/benchtab and the root benchmarks.
func TestQuickExperiments(t *testing.T) {
	if testing.Short() {
		t.Skip("experiments skipped in -short mode")
	}
	cfg := Config{Quick: true, Seed: 1}
	for _, id := range []string{"E4", "E8", "E9", "A2"} {
		exp, err := ByID(id)
		if err != nil {
			t.Fatal(err)
		}
		tab, err := exp.Run(cfg)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if len(tab.Rows) == 0 {
			t.Fatalf("%s: empty table", id)
		}
		var buf bytes.Buffer
		if err := tab.Render(&buf); err != nil {
			t.Fatalf("%s render: %v", id, err)
		}
	}
}

// Every registered experiment must complete in quick mode and produce a
// renderable non-empty table (the full coverage run; slower).
func TestAllExperimentsQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("full experiment sweep skipped in -short mode")
	}
	cfg := Config{Quick: true, Seed: 2}
	for _, exp := range All() {
		exp := exp
		t.Run(exp.ID, func(t *testing.T) {
			tab, err := exp.Run(cfg)
			if err != nil {
				t.Fatalf("%s: %v", exp.ID, err)
			}
			if len(tab.Rows) == 0 || len(tab.Header) == 0 {
				t.Fatalf("%s: empty table", exp.ID)
			}
			var buf bytes.Buffer
			if err := tab.Render(&buf); err != nil {
				t.Fatal(err)
			}
			if err := tab.RenderCSV(&buf); err != nil {
				t.Fatal(err)
			}
		})
	}
}
