package congest

import (
	"testing"

	"repro/internal/graph"
)

// drawFlood is a toy protocol exercising randomness, wake-ups and
// message traffic: every node draws once at round 0, broadcasts the draw,
// and keeps relaying its running minimum for a draw-dependent number of
// extra rounds. Draws[u] records node u's round-0 draw so tests can pin
// stream identity across fused and solo executions.
type drawFlood struct {
	Draws []uint64
	mins  []uint64
	until []int32
}

func (p *drawFlood) Init(rt *Runtime) {
	n := rt.N()
	p.Draws = make([]uint64, n)
	p.mins = make([]uint64, n)
	p.until = make([]int32, n)
	for u := 0; u < n; u++ {
		rt.WakeAt(NodeID(u), 0)
	}
}

func (p *drawFlood) HandleRound(rt *Runtime, u NodeID, r int, inbox []Message) {
	if r == 0 {
		d := rt.Rand(u).Uint64()
		p.Draws[u] = d
		p.mins[u] = d
		p.until[u] = int32(1 + d%4)
	}
	changed := r == 0
	for _, m := range inbox {
		if v := m.A(); v < p.mins[u] {
			p.mins[u] = v
			changed = true
		}
	}
	if changed && int32(r) < p.until[u] {
		rt.Broadcast(u, 1, p.mins[u], 0)
		rt.WakeAt(u, r+1)
	}
}

func fuseTestGraphs(seed uint64) ([]*graph.Graph, []uint64) {
	rng := graph.NewRand(seed)
	gs := make([]*graph.Graph, 5)
	seeds := make([]uint64, len(gs))
	for i := range gs {
		n := 6 + rng.IntN(30)
		gs[i] = graph.Gnm(n, 2*n, rng)
		seeds[i] = rng.Uint64()
	}
	return gs, seeds
}

// TestFusedEngineMatchesSoloRuns pins the fusion invariant at the engine
// level: on a disjoint union with per-component seed bases, every
// component's node draws, rounds and message counts equal a solo run of
// that component under its own seed.
func TestFusedEngineMatchesSoloRuns(t *testing.T) {
	gs, seeds := fuseTestGraphs(42)
	eng, parts := NewFusedEngine(gs, seeds)
	fused := &drawFlood{}
	frep, err := eng.Run(fused)
	if err != nil {
		t.Fatal(err)
	}
	if len(frep.PerComp) != len(gs) {
		t.Fatalf("PerComp has %d entries for %d graphs", len(frep.PerComp), len(gs))
	}
	var sumRounds int
	var sumMsgs int64
	for i, g := range gs {
		solo := &drawFlood{}
		srep, err := NewEngine(NewNetwork(g, seeds[i])).Run(solo)
		if err != nil {
			t.Fatal(err)
		}
		lo, _ := parts.Component(i)
		for u := 0; u < g.NumNodes(); u++ {
			if fused.Draws[int(lo)+u] != solo.Draws[u] {
				t.Fatalf("component %d node %d: fused draw %x, solo draw %x",
					i, u, fused.Draws[int(lo)+u], solo.Draws[u])
			}
		}
		if frep.PerComp[i].Rounds != srep.Rounds {
			t.Errorf("component %d: fused rounds %d, solo %d", i, frep.PerComp[i].Rounds, srep.Rounds)
		}
		if frep.PerComp[i].Messages != srep.Messages {
			t.Errorf("component %d: fused messages %d, solo %d", i, frep.PerComp[i].Messages, srep.Messages)
		}
		if sumRounds < srep.Rounds {
			sumRounds = srep.Rounds
		}
		sumMsgs += srep.Messages
	}
	if frep.Rounds != sumRounds {
		t.Errorf("fused rounds %d, want max of solo rounds %d", frep.Rounds, sumRounds)
	}
	if frep.Messages != sumMsgs {
		t.Errorf("fused messages %d, want sum of solo messages %d", frep.Messages, sumMsgs)
	}
}

// TestFusedAccountingScheduleInvariant pins that the per-component split
// is identical under serial and parallel execution (workers, shards,
// forced-parallel thresholds).
func TestFusedAccountingScheduleInvariant(t *testing.T) {
	gs, seeds := fuseTestGraphs(7)
	base, parts := NewFusedEngine(gs, seeds)
	_ = parts
	ref, err := base.Run(&drawFlood{})
	if err != nil {
		t.Fatal(err)
	}
	for _, cfg := range []struct{ workers, shards, thresh int }{
		{1, 0, 0}, {4, 2, 1}, {8, 8, 1}, {2, 1, 1},
	} {
		eng, _ := NewFusedEngine(gs, seeds)
		eng.Workers, eng.Shards, eng.ParallelThreshold = cfg.workers, cfg.shards, cfg.thresh
		rep, err := eng.Run(&drawFlood{})
		if err != nil {
			t.Fatal(err)
		}
		for c := range ref.PerComp {
			if rep.PerComp[c] != ref.PerComp[c] {
				t.Fatalf("workers=%d shards=%d thresh=%d: component %d stats %+v, want %+v",
					cfg.workers, cfg.shards, cfg.thresh, c, rep.PerComp[c], ref.PerComp[c])
			}
		}
	}
}

// TestFusedEngineRejectsDropProb pins that fault injection and
// per-component accounting cannot be combined (counts are sender-side).
func TestFusedEngineRejectsDropProb(t *testing.T) {
	gs, seeds := fuseTestGraphs(3)
	eng, _ := NewFusedEngine(gs, seeds)
	eng.DropProb = 0.5
	if _, err := eng.Run(&drawFlood{}); err == nil {
		t.Fatal("expected error combining SetComponents with DropProb")
	}
}
