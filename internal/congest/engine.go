package congest

import (
	"fmt"
	"math/bits"
	"math/rand/v2"
	"runtime"
	"slices"
	"sync"
	"sync/atomic"
)

// Engine executes handler sessions on a network. All mutable per-session
// state lives in pooled Session objects, so an Engine is safe for
// concurrent Run calls; configure the exported fields before the first Run
// and leave them fixed while runs are in flight. Back-to-back sessions on
// the same engine reuse session buffers and allocate almost nothing.
type Engine struct {
	net *Network
	// MaxRounds aborts runaway protocols; 0 means the default cap.
	MaxRounds int
	// Workers is the size of the goroutine pool mapping node handlers onto
	// rounds; 0 means GOMAXPROCS.
	Workers int
	// StopOnReject halts the session at the end of the first round in
	// which some node rejected.
	StopOnReject bool
	// DropProb injects adversarial message loss: each staged message is
	// discarded at delivery time with this probability (deterministic
	// given the network seed). The CONGEST model itself is fault-free;
	// this knob exists to machine-check that one-sidedness is structural —
	// under any loss rate the detectors may miss cycles but can never
	// fabricate one.
	DropProb float64
	// Timeline collects per-round statistics into Report.Timeline.
	Timeline bool

	// adjOff[u] is the base index of u's adjacency slots in the flat
	// per-edge arrays (CSR layout over the sorted adjacency lists);
	// adjOff[n] is the total directed-edge count.
	adjOff []int32

	session  atomic.Uint64
	sessions sync.Pool // of *Session
}

// RoundStat is one entry of a collected timeline.
type RoundStat struct {
	Round    int
	Active   int   // nodes whose handler ran
	Messages int64 // messages delivered out of this round
}

// NewEngine returns an engine for the network.
func NewEngine(net *Network) *Engine {
	n := net.NumNodes()
	adjOff := make([]int32, n+1)
	for u := 0; u < n; u++ {
		adjOff[u+1] = adjOff[u] + int32(net.g.Degree(NodeID(u)))
	}
	e := &Engine{net: net, adjOff: adjOff}
	e.sessions.New = func() any { return e.newSession() }
	return e
}

// Network returns the engine's network.
func (e *Engine) Network() *Network { return e.net }

const defaultMaxRounds = 50_000_000

// autoSession namespaces engine-assigned session tags away from
// caller-chosen tags (RunSession), so mixing the two styles on one engine
// cannot collide randomness streams.
const autoSession = 1 << 63

// ReserveSessions atomically reserves k consecutive engine-assigned
// session tags and returns the first. Multi-session protocols (e.g. the
// batch color-BFS schedule) reserve their whole range up front so that
// concurrent Run calls interleave without sharing randomness streams.
func (e *Engine) ReserveSessions(k uint64) uint64 {
	return (e.session.Add(k) - k) | autoSession
}

// Run executes one session of the handler under an engine-assigned session
// tag. See RunSession for the execution contract.
func (e *Engine) Run(h Handler) (*Report, error) {
	return e.RunSession(h, e.ReserveSessions(1))
}

// RunSession executes one session of the handler until quiescence (no
// pending messages and no scheduled wake-ups), a halt request, or the
// round cap. The session tag seeds the per-node randomness streams
// (together with the network's master seed); callers that execute many
// independent sessions concurrently pass explicit tags so the transcript
// of every session is deterministic regardless of scheduling.
//
// The returned Report counts rounds in CONGEST time: Rounds is the index
// of the last round with activity, plus one; idle gaps before a scheduled
// wake-up are not simulated but do elapse (and are therefore counted).
func (e *Engine) RunSession(h Handler, sess uint64) (*Report, error) {
	s := e.sessions.Get().(*Session)
	rep, err := s.run(h, sess)
	s.cleanup()
	e.sessions.Put(s)
	return rep, err
}

// Session holds all mutable state of one engine session. Sessions are
// pooled and reused across runs: every array below is either rebuilt from
// a dirty-list at session end or guarded by a monotone stamp, so reuse
// requires no O(n) clearing and back-to-back sessions allocate ~nothing.
//
// Runtime is the handler-facing alias of Session: methods marked
// "node-local" may be called only from within HandleRound (or Init) and,
// when called for node u, only by u's handler invocation.
type Session struct {
	eng  *Engine
	net  *Network
	sess uint64

	// stamp is bumped once per executed round and never reset (it spans
	// sessions), so the zero value in any stamped array always misses.
	stamp uint64
	// runGen is bumped once per run; it invalidates the per-node rng
	// streams of the previous session lazily.
	runGen uint64

	round  int
	inInit bool

	// Candidate scheduling: bit u of pool is set iff u may need to run in
	// an upcoming round (it has undelivered messages or a pending
	// wake-up). cand counts the set bits. The bitmap doubles as the
	// dirty-list that makes session cleanup O(candidates), and scanning it
	// yields nodes in ascending ID order without any per-round sort.
	pool []uint64
	cand int
	due  []NodeID

	// wake[u] = earliest future round at which u wants to run (-1 = none).
	// Written only by u's own handler; reset via the pool bitmap walk.
	wake []int32

	// Outgoing messages staged by senders during the current round.
	// out[u] is written only by u's handler. The per-node slices are views
	// into one flat CSR buffer sized by degree: the bandwidth constraint
	// (one message per directed edge per round) caps len(out[u]) at deg(u),
	// so staging never allocates.
	out    [][]outMsg
	outBuf []outMsg

	// Flat CSR inboxes: the messages delivered to u this round are
	// inboxBuf[inboxOff[u] : inboxOff[u]+inboxLen[u]], valid iff
	// inboxStamp[u] equals the current round stamp.
	inboxBuf   []Message
	inboxOff   []int32
	inboxLen   []int32
	inboxFill  []int32
	inboxStamp []uint64
	recv       []NodeID
	scratch    []outMsg

	// lastSent[adjOff[u]+slot] = round stamp at which adjacency slot
	// `slot` of u last carried a message (bandwidth enforcement). The
	// monotone stamp makes per-session clearing unnecessary.
	lastSent []uint64

	// Per-node deterministic random streams, reseeded lazily (on first use
	// within a run) from (network seed, node, session tag). rands[u] wraps
	// &pcgs[u]; both live in flat arrays so creating a session costs two
	// allocations, not one per node.
	pcgs   []rand.PCG
	rands  []rand.Rand
	rngGen []uint64

	halt atomic.Bool

	mu         sync.Mutex
	rejections []Rejection
	violation  error
}

// Runtime is the per-session interface handlers use to interact with the
// simulated network (an alias of Session, kept as the name handler
// signatures use).
type Runtime = Session

type outMsg struct {
	to  NodeID
	msg Message
}

func (e *Engine) newSession() *Session {
	n := e.net.NumNodes()
	s := &Session{
		eng:        e,
		net:        e.net,
		pool:       make([]uint64, (n+63)/64),
		due:        make([]NodeID, 0, n),
		wake:       make([]int32, n),
		out:        make([][]outMsg, n),
		outBuf:     make([]outMsg, e.adjOff[n]),
		inboxOff:   make([]int32, n),
		inboxLen:   make([]int32, n),
		inboxFill:  make([]int32, n),
		inboxStamp: make([]uint64, n),
		recv:       make([]NodeID, 0, n),
		lastSent:   make([]uint64, e.adjOff[n]),
		pcgs:       make([]rand.PCG, n),
		rands:      make([]rand.Rand, n),
		rngGen:     make([]uint64, n),
	}
	for i := range s.wake {
		s.wake[i] = -1
	}
	for u := 0; u < n; u++ {
		s.out[u] = s.outBuf[e.adjOff[u]:e.adjOff[u]:e.adjOff[u+1]]
		s.rands[u] = *rand.New(&s.pcgs[u])
	}
	return s
}

// N returns the number of nodes in the network (global knowledge).
func (rt *Session) N() int { return rt.net.NumNodes() }

// Round returns the current round number.
func (rt *Session) Round() int { return rt.round }

// Degree returns the degree of u (node-local knowledge).
func (rt *Session) Degree(u NodeID) int { return rt.net.g.Degree(u) }

// Neighbors returns u's adjacency list (node-local knowledge). The slice
// must not be modified.
func (rt *Session) Neighbors(u NodeID) []NodeID { return rt.net.g.Neighbors(u) }

// Rand returns u's deterministic random stream for this session.
// Node-local.
func (rt *Session) Rand(u NodeID) *rand.Rand {
	if rt.rngGen[u] != rt.runGen {
		rt.rngGen[u] = rt.runGen
		seed := rt.net.nodeSeed(u, rt.sess)
		rt.pcgs[u].Seed(seed, seed^nodeSeedXor)
	}
	return &rt.rands[u]
}

// Send stages a message from u to its neighbor v for delivery at the start
// of the next round. It enforces the CONGEST constraints: v must be a
// neighbor of u, and each directed edge carries at most one message per
// round. Node-local; not callable from Init (no round is executing yet).
func (rt *Session) Send(u, v NodeID, kind uint8, a, b uint64) {
	if rt.inInit {
		rt.fail(protocolErrorf("node %d sent during Init (before round 0)", u))
		return
	}
	slot := rt.neighborSlot(u, v)
	if slot < 0 {
		rt.fail(protocolErrorf("round %d: node %d sent to non-neighbor %d", rt.round, u, v))
		return
	}
	es := rt.eng.adjOff[u] + int32(slot)
	if rt.lastSent[es] == rt.stamp {
		rt.fail(protocolErrorf("round %d: node %d sent twice on edge to %d (bandwidth violation)", rt.round, u, v))
		return
	}
	rt.lastSent[es] = rt.stamp
	rt.out[u] = append(rt.out[u], outMsg{to: v, msg: Message{From: u, Kind: kind, A: a, B: b}})
}

func (rt *Session) neighborSlot(u, v NodeID) int {
	i, found := slices.BinarySearch(rt.net.g.Neighbors(u), v)
	if found {
		return i
	}
	return -1
}

// WakeAt schedules node u to run at round r (which must not be in the
// past). Node-local (or from Init, where the current round is 0).
func (rt *Session) WakeAt(u NodeID, r int) {
	if r < rt.round {
		rt.fail(protocolErrorf("node %d scheduled wake at past round %d (now %d)", u, r, rt.round))
		return
	}
	if rt.wake[u] < 0 || int32(r) < rt.wake[u] {
		rt.wake[u] = int32(r)
	}
	if rt.inInit {
		// Init is sequential, so the shared pool bitmap is safe to touch;
		// wake-ups from HandleRound are folded in at delivery time.
		rt.setPool(u)
	}
}

// Reject records that node u outputs reject, with an optional witness
// cycle. Safe for concurrent use.
func (rt *Session) Reject(u NodeID, witness []NodeID) {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	rt.rejections = append(rt.rejections, Rejection{Node: u, Witness: witness})
}

// Halt requests a global stop at the end of the current round. Safe for
// concurrent use.
func (rt *Session) Halt() { rt.halt.Store(true) }

func (rt *Session) fail(err error) {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	if rt.violation == nil {
		rt.violation = err
	}
	rt.halt.Store(true)
}

func (rt *Session) rejectedLocked() bool {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	return len(rt.rejections) > 0
}

func (s *Session) setPool(u NodeID) {
	w, m := u>>6, uint64(1)<<(u&63)
	if s.pool[w]&m == 0 {
		s.pool[w] |= m
		s.cand++
	}
}

func (s *Session) clearPool(u NodeID) {
	w, m := u>>6, uint64(1)<<(u&63)
	if s.pool[w]&m != 0 {
		s.pool[w] &^= m
		s.cand--
	}
}

// inboxOf returns the messages delivered to u for the current round.
func (s *Session) inboxOf(u NodeID) []Message {
	if s.inboxStamp[u] != s.stamp {
		return nil
	}
	off := s.inboxOff[u]
	return s.inboxBuf[off : off+s.inboxLen[u]]
}

func (s *Session) inboxCount(u NodeID) int {
	if s.inboxStamp[u] != s.stamp {
		return 0
	}
	return int(s.inboxLen[u])
}

// cleanup restores the session invariants (wake sentinel values, empty
// pool bitmap, empty out buffers) so the Session can be reused. It walks
// only the state the finished run actually touched.
func (s *Session) cleanup() {
	for _, u := range s.due {
		s.wake[u] = -1
		if len(s.out[u]) > 0 {
			s.out[u] = s.out[u][:0]
		}
	}
	s.due = s.due[:0]
	if s.cand > 0 {
		for wi, w := range s.pool {
			for w != 0 {
				b := bits.TrailingZeros64(w)
				w &^= 1 << b
				s.wake[NodeID(wi*64+b)] = -1
			}
			s.pool[wi] = 0
		}
		s.cand = 0
	}
	// A session that ended early (halt, StopOnReject, violation, round cap)
	// can leave inboxes stamped for the round after its last delivery.
	// Burning one stamp value here guarantees no future round ever matches
	// a leftover stamp, without clearing the stamp array.
	s.stamp++
	s.violation = nil
	s.rejections = s.rejections[:0]
	s.halt.Store(false)
}

// run executes one session. The Session must satisfy the cleanup
// invariants on entry.
func (s *Session) run(h Handler, sess uint64) (*Report, error) {
	e := s.eng
	n := s.net.NumNodes()
	s.sess = sess
	s.runGen++
	s.round = 0

	s.inInit = true
	h.Init(s)
	s.inInit = false
	if s.violation != nil {
		return nil, s.violation
	}

	maxRounds := e.MaxRounds
	if maxRounds <= 0 {
		maxRounds = defaultMaxRounds
	}
	workers := e.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}

	rep := &Report{}
	msgBits := MessageBits(n)
	var dropRng *rand.Rand
	if e.DropProb > 0 {
		dropRng = s.net.nodeRand(-1, sess)
	}

	for round := 0; s.cand > 0; round++ {
		if round >= maxRounds {
			return nil, fmt.Errorf("congest: exceeded %d rounds (runaway protocol?)", maxRounds)
		}
		s.stamp++

		// Scan the candidate bitmap (ascending node order): nodes due now
		// run; the rest wait for a future wake-up.
		s.due = s.due[:0]
		earliest := int32(-1)
		for wi, w := range s.pool {
			for w != 0 {
				b := bits.TrailingZeros64(w)
				w &^= 1 << b
				u := NodeID(wi*64 + b)
				wk := s.wake[u]
				if s.inboxStamp[u] == s.stamp || (wk >= 0 && int(wk) <= round) {
					s.due = append(s.due, u)
					s.clearPool(u)
					if wk >= 0 && int(wk) <= round {
						s.wake[u] = -1
					}
				} else if earliest < 0 || wk < earliest {
					earliest = wk
				}
			}
		}
		if len(s.due) == 0 {
			// Fast-forward the clock to the earliest scheduled wake-up.
			// The skipped rounds still elapse in CONGEST time (they are
			// counted by Report.Rounds); only their simulation is skipped.
			round = int(earliest) - 1
			continue
		}
		s.round = round
		rep.Rounds = round + 1
		for _, u := range s.due {
			if load := s.inboxCount(u); load > rep.MaxInbox {
				rep.MaxInbox = load
			}
		}

		// Execute handlers (possibly in parallel).
		e.runHandlers(s, h, s.due, round, workers)
		if s.violation != nil {
			return nil, s.violation
		}

		// Deliver staged messages into the flat inboxes of the next round
		// and refresh the candidate bitmap: message receivers, re-woken due
		// nodes (waiting nodes never left the bitmap). Count first, then
		// scatter, so each receiver's messages are contiguous and arrive in
		// ascending sender order — the same per-receiver order for every
		// worker count.
		s.scratch = s.scratch[:0]
		s.recv = s.recv[:0]
		nextStamp := s.stamp + 1
		var delivered int64
		for _, u := range s.due {
			for _, om := range s.out[u] {
				if dropRng != nil && dropRng.Float64() < e.DropProb {
					continue
				}
				if s.inboxStamp[om.to] != nextStamp {
					s.inboxStamp[om.to] = nextStamp
					s.inboxLen[om.to] = 0
					s.recv = append(s.recv, om.to)
				}
				s.inboxLen[om.to]++
				s.scratch = append(s.scratch, om)
				delivered++
			}
			s.out[u] = s.out[u][:0]
			if s.wake[u] >= 0 {
				s.setPool(u)
			}
		}
		total := int32(0)
		for _, r := range s.recv {
			s.inboxOff[r] = total
			s.inboxFill[r] = 0
			total += s.inboxLen[r]
			s.setPool(r)
		}
		if cap(s.inboxBuf) < int(total) {
			s.inboxBuf = make([]Message, total)
		} else {
			s.inboxBuf = s.inboxBuf[:total]
		}
		for _, om := range s.scratch {
			pos := s.inboxOff[om.to] + s.inboxFill[om.to]
			s.inboxFill[om.to]++
			s.inboxBuf[pos] = om.msg
		}
		rep.Messages += delivered
		rep.Bits += msgBits * delivered
		if e.Timeline {
			rep.Timeline = append(rep.Timeline, RoundStat{
				Round: round, Active: len(s.due), Messages: delivered,
			})
		}

		if s.halt.Load() {
			rep.Halted = true
			break
		}
		if e.StopOnReject && s.rejectedLocked() {
			break
		}
	}
	if len(s.rejections) > 0 {
		rep.Rejections = canonicalRejections(s.rejections)
	}
	return rep, nil
}

// canonicalRejections copies the rejection list into a deterministic
// order (by node, then witness), erasing the handler-scheduling order in
// which concurrent Reject calls were appended.
func canonicalRejections(rejs []Rejection) []Rejection {
	out := make([]Rejection, len(rejs))
	copy(out, rejs)
	slices.SortFunc(out, func(a, b Rejection) int {
		if a.Node != b.Node {
			return int(a.Node) - int(b.Node)
		}
		if len(a.Witness) != len(b.Witness) {
			return len(a.Witness) - len(b.Witness)
		}
		return slices.Compare(a.Witness, b.Witness)
	})
	return out
}

// runHandlers invokes the handler for every due node, in parallel when the
// batch is large enough to amortize goroutine overhead.
func (e *Engine) runHandlers(s *Session, h Handler, due []NodeID, round int, workers int) {
	const parallelThreshold = 256
	if workers <= 1 || len(due) < parallelThreshold {
		for _, u := range due {
			h.HandleRound(s, u, round, s.inboxOf(u))
		}
		return
	}
	var wg sync.WaitGroup
	chunk := (len(due) + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		if lo >= len(due) {
			break
		}
		hi := min(lo+chunk, len(due))
		wg.Add(1)
		go func(part []NodeID) {
			defer wg.Done()
			for _, u := range part {
				h.HandleRound(s, u, round, s.inboxOf(u))
			}
		}(due[lo:hi])
	}
	wg.Wait()
}
