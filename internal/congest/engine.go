package congest

import (
	"fmt"
	"math/bits"
	"math/rand/v2"
	"runtime"
	"slices"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/faultpoint"
)

// Engine executes handler sessions on a network. All mutable per-session
// state lives in pooled Session objects, so an Engine is safe for
// concurrent Run calls; configure the exported fields before the first Run
// and leave them fixed while runs are in flight. Back-to-back sessions on
// the same engine reuse session buffers and allocate almost nothing.
type Engine struct {
	net *Network
	// MaxRounds aborts runaway protocols; 0 means the default cap.
	MaxRounds int
	// Workers is the size of the goroutine pool mapping node handlers onto
	// rounds; 0 means GOMAXPROCS.
	Workers int
	// StopOnReject halts the session at the end of the first round in
	// which some node rejected.
	StopOnReject bool
	// DropProb injects adversarial message loss: each staged message is
	// discarded at delivery time with this probability (deterministic
	// given the network seed). The CONGEST model itself is fault-free;
	// this knob exists to machine-check that one-sidedness is structural —
	// under any loss rate the detectors may miss cycles but can never
	// fabricate one. Lossy sessions always deliver serially (the drop
	// RNG consumes one draw per staged message in global staging order).
	DropProb float64
	// Timeline collects per-round statistics into Report.Timeline.
	Timeline bool
	// Shards overrides the receiver-shard count of the parallel delivery
	// phase; 0 derives it from Workers. Transcripts are bit-identical for
	// every value — the knob exists for tuning and so the determinism
	// tests can pin shard-count invariance explicitly.
	Shards int
	// ParallelThreshold is the minimum batch size (due handlers for the
	// execution phase, staged messages for the delivery phase) below
	// which a round runs serially even when Workers allows parallelism;
	// rounds smaller than this are dominated by goroutine hand-off, not
	// work. 0 means the default of 256.
	ParallelThreshold int
	// Cancel, when set, is polled once per executed round (one atomic
	// load at the round boundary): tripping it makes in-flight and future
	// runs on this engine return ErrCanceled instead of a report, so an
	// abandoned request stops consuming CPU within one round. The poll
	// has no effect on untripped runs — transcripts are bit-identical
	// with or without a flag installed. Configure before the first Run,
	// like every other engine field.
	Cancel *CancelFlag
	// Observe, when set, is called once per completed session with the
	// report's round count and the session's wall-clock duration. The
	// disarmed cost is one nil-check per RunSession — the same
	// discipline as faultpoint — and the armed path adds two
	// monotonic-clock reads outside the round loop, so transcripts,
	// reports, and the session's allocation count are identical either
	// way. The hook runs on the session's goroutine and must not block;
	// it is not called for failed sessions (panic, cancellation).
	// Configure before the first Run, like every other engine field.
	Observe func(rounds int, wall time.Duration)

	// adjOff[u] is the base index of u's adjacency slots in the flat
	// per-edge arrays (CSR layout over the sorted adjacency lists);
	// adjOff[n] is the total directed-edge count.
	adjOff []int32

	// comp/numComp split cost accounting by component when set
	// (SetComponents): Report.PerComp then records each component's own
	// rounds and sent-message count.
	comp    []int32
	numComp int

	session  atomic.Uint64
	sessions sync.Pool // of *Session
}

// RoundStat is one entry of a collected timeline.
type RoundStat struct {
	Round    int
	Active   int   // nodes whose handler ran
	Messages int64 // messages delivered out of this round
}

// NewEngine returns an engine for the network.
func NewEngine(net *Network) *Engine {
	n := net.NumNodes()
	adjOff := make([]int32, n+1)
	for u := 0; u < n; u++ {
		adjOff[u+1] = adjOff[u] + int32(net.g.Degree(NodeID(u)))
	}
	e := &Engine{net: net, adjOff: adjOff}
	e.sessions.New = func() any { return e.newSession() }
	return e
}

// Network returns the engine's network.
func (e *Engine) Network() *Network { return e.net }

// SetComponents installs a component map (comp[u] in [0, count) for every
// node) and turns on per-component cost accounting: every Report gains a
// PerComp slice with each component's own rounds and sent-message count.
// Intended for disjoint-union networks, where components never exchange
// messages and the split is exact. Call before the first Run and leave it
// fixed. Incompatible with DropProb (per-component message counts are
// taken sender-side, before the delivery drop draw).
func (e *Engine) SetComponents(comp []int32, count int) {
	if len(comp) != e.net.NumNodes() {
		panic(fmt.Sprintf("congest: component map covers %d of %d nodes", len(comp), e.net.NumNodes()))
	}
	e.comp, e.numComp = comp, count
}

const defaultMaxRounds = 50_000_000

// autoSession namespaces engine-assigned session tags away from
// caller-chosen tags (RunSession), so mixing the two styles on one engine
// cannot collide randomness streams.
const autoSession = 1 << 63

// ReserveSessions atomically reserves k consecutive engine-assigned
// session tags and returns the first. Multi-session protocols (e.g. the
// batch color-BFS schedule) reserve their whole range up front so that
// concurrent Run calls interleave without sharing randomness streams.
func (e *Engine) ReserveSessions(k uint64) uint64 {
	return (e.session.Add(k) - k) | autoSession
}

// Run executes one session of the handler under an engine-assigned session
// tag. See RunSession for the execution contract.
func (e *Engine) Run(h Handler) (*Report, error) {
	return e.RunSession(h, e.ReserveSessions(1))
}

// RunSession executes one session of the handler until quiescence (no
// pending messages and no scheduled wake-ups), a halt request, or the
// round cap. The session tag seeds the per-node randomness streams
// (together with the network's master seed); callers that execute many
// independent sessions concurrently pass explicit tags so the transcript
// of every session is deterministic regardless of scheduling.
//
// The returned Report counts rounds in CONGEST time: Rounds is the index
// of the last round with activity, plus one; idle gaps before a scheduled
// wake-up are not simulated but do elapse (and are therefore counted).
func (e *Engine) RunSession(h Handler, sess uint64) (rep *Report, err error) {
	s := e.sessions.Get().(*Session)
	// Panic containment: handler panics are recovered inside the round
	// loop and surface as ordinary errors, but if anything escapes run
	// (an engine bug, a panic mid-cleanup), convert it to an error and
	// DROP the session — its invariants are unknown, and repooling it
	// would poison a future run. The happy path repools as always.
	defer func() {
		if r := recover(); r != nil {
			rep, err = nil, fmt.Errorf("congest: session panicked: %v", r)
		}
	}()
	var start time.Time
	if e.Observe != nil {
		start = time.Now()
	}
	rep, err = s.run(h, sess)
	s.cleanup()
	e.sessions.Put(s)
	if e.Observe != nil && err == nil {
		e.Observe(rep.Rounds, time.Since(start))
	}
	return rep, err
}

// Session holds all mutable state of one engine session. Sessions are
// pooled and reused across runs: every array below is either rebuilt from
// a dirty-list at session end or guarded by a monotone stamp, so reuse
// requires no O(n) clearing and back-to-back sessions allocate ~nothing.
//
// Runtime is the handler-facing alias of Session: methods marked
// "node-local" may be called only from within HandleRound (or Init) and,
// when called for node u, only by u's handler invocation.
type Session struct {
	eng  *Engine
	net  *Network
	sess uint64

	// stamp is bumped once per executed round and never reset (it spans
	// sessions), so the zero value in any stamped array always misses.
	stamp uint64
	// runGen is bumped once per run; it invalidates the per-node rng
	// streams of the previous session lazily.
	runGen uint64

	round  int
	inInit bool

	// Candidate scheduling: bit u of pool is set iff u may need to run in
	// an upcoming round (it has undelivered messages or a pending
	// wake-up). cand counts the set bits. The bitmap doubles as the
	// dirty-list that makes session cleanup O(candidates), and scanning it
	// yields nodes in ascending ID order without any per-round sort.
	// summary is the second level: bit w of summary is set iff pool[w] is
	// nonzero, so the due-scan and cleanup walk O(active) words instead of
	// O(n/64) — which is what makes the fast-forward/wake-up rounds of
	// sparse schedules cheap on large networks.
	pool    []uint64
	summary []uint64
	cand    int
	due     []NodeID

	// wake[u] = earliest future round at which u wants to run (-1 = none).
	// Written only by u's own handler; reset via the pool bitmap walk.
	wake []int32

	// Outgoing messages staged by senders during the current round,
	// structure-split so the delivery passes touch only what they need:
	// outTo[u] holds the receivers (the counting pass scans 4 bytes per
	// message) and outPay[adjOff[u]+i] the packed message of outTo[u][i]
	// (read only by the scatter pass). Both are written only by u's
	// handler, into one flat CSR buffer each, sized by degree: the
	// bandwidth constraint (one message per directed edge per round) caps
	// len(outTo[u]) at deg(u), so staging never allocates.
	outTo    [][]NodeID
	outPay   []Message
	outToBuf []NodeID

	// Fixed-offset CSR inboxes. The bandwidth constraint caps a
	// receiver's per-round inbox at its degree, so node u's inbox region
	// is statically inboxBuf[adjOff[u]:adjOff[u+1]] and delivery needs no
	// counting or offset pass at all: a single scatter pass bumps each
	// receiver's cursor. inCur[u] packs the validity stamp and the
	// cursor into one 16-byte record (one cache line touch per message);
	// u's inbox for the current round is inboxBuf[adjOff[u]:inCur[u].pos],
	// valid iff inCur[u].stamp matches the round stamp.
	inboxBuf []Message
	inCur    []inboxCursor

	// Parallel round execution. The handler phase steals work off due via
	// the atomic parNext cursor; the delivery phase partitions receivers
	// into contiguous node-range shards (shardBounds[s] ≤ r <
	// shardBounds[s+1] for shard s), each owned by one worker goroutine
	// for both delivery passes, so every inbox cell has exactly one
	// writer and per-receiver message order stays ascending-sender — the
	// same order the serial path produces. All fields are touched only
	// between the Add/Wait pairs of one phase.
	wg          sync.WaitGroup
	parH        Handler
	parRound    int
	parNext     atomic.Int64
	shards      int
	shardBounds []int32
	shardCount  []int64
	shardRecv   [][]NodeID
	sendList    []NodeID
	shardNext   atomic.Int64

	// Prebuilt worker funcvals: `go s.method()` allocates a closure per
	// spawn, so the round phases launch these once-allocated thunks
	// instead, keeping parallel rounds allocation-free.
	handlerFn func()
	scatterFn func()

	// lastExec is the executed-round count of the previous run on this
	// session, used to presize Report.Timeline so collection does not
	// allocate per round.
	lastExec int

	// senders lists the due nodes that actually staged messages this
	// round, so the delivery passes walk senders instead of the whole due
	// list. It is maintained by Send/Broadcast only while serialRound is
	// true (handlers executing on the session goroutine — appending from
	// parallel handler workers would race); parallel rounds fall back to
	// walking due. Serial handler execution visits due in ascending
	// order, so senders is ascending too and delivery order is unchanged.
	senders     []NodeID
	serialRound bool

	// lastSent[adjOff[u]+slot] = round stamp at which adjacency slot
	// `slot` of u last carried a message (bandwidth enforcement). The
	// monotone stamp makes per-session clearing unnecessary.
	lastSent []uint64

	// Per-node deterministic random streams, reseeded lazily (on first use
	// within a run) from (network seed, node, session tag). rands[u] wraps
	// &pcgs[u]; both live in flat arrays so creating a session costs two
	// allocations, not one per node.
	pcgs   []rand.PCG
	rands  []rand.Rand
	rngGen []uint64

	// Per-component accounting (Engine.SetComponents): compLast[c] is the
	// last round in which a node of component c ran (-1 = never);
	// compMsgs[c] counts the messages component c's nodes staged. Reset at
	// the start of every run — O(components), not O(n).
	compLast []int32
	compMsgs []int64

	halt atomic.Bool

	mu         sync.Mutex
	rejections []Rejection
	violation  error
}

// Runtime is the per-session interface handlers use to interact with the
// simulated network (an alias of Session, kept as the name handler
// signatures use).
type Runtime = Session

// inboxCursor is a receiver's delivery state: the region
// inboxBuf[beg:pos] is u's inbox for the round whose stamp matches
// (beg is u's static region base adjOff[u], cached here so reading an
// inbox costs one 16-byte load). Exactly 16 bytes: a message delivery
// touches one record in one cache line.
type inboxCursor struct {
	stamp uint64
	beg   int32
	pos   int32
}

func (e *Engine) newSession() *Session {
	n := e.net.NumNodes()
	s := &Session{
		eng:      e,
		net:      e.net,
		pool:     make([]uint64, (n+63)/64),
		summary:  make([]uint64, (n+4095)/4096),
		due:      make([]NodeID, 0, n),
		wake:     make([]int32, n),
		outTo:    make([][]NodeID, n),
		outPay:   make([]Message, e.adjOff[n]),
		outToBuf: make([]NodeID, e.adjOff[n]),
		inboxBuf: make([]Message, e.adjOff[n]),
		inCur:    make([]inboxCursor, n),
		senders:  make([]NodeID, 0, n),
		lastSent: make([]uint64, e.adjOff[n]),
		pcgs:     make([]rand.PCG, n),
		rands:    make([]rand.Rand, n),
		rngGen:   make([]uint64, n),
	}
	for i := range s.wake {
		s.wake[i] = -1
	}
	for u := 0; u < n; u++ {
		s.outTo[u] = s.outToBuf[e.adjOff[u]:e.adjOff[u]:e.adjOff[u+1]]
		s.rands[u] = *rand.New(&s.pcgs[u])
	}
	s.handlerFn = s.handlerWorker
	s.scatterFn = s.scatterWorker
	return s
}

// N returns the number of nodes in the network (global knowledge).
func (rt *Session) N() int { return rt.net.NumNodes() }

// Round returns the current round number.
func (rt *Session) Round() int { return rt.round }

// Degree returns the degree of u (node-local knowledge).
func (rt *Session) Degree(u NodeID) int { return rt.net.g.Degree(u) }

// Neighbors returns u's adjacency list (node-local knowledge). The slice
// must not be modified.
func (rt *Session) Neighbors(u NodeID) []NodeID { return rt.net.g.Neighbors(u) }

// Rand returns u's deterministic random stream for this session.
// Node-local.
func (rt *Session) Rand(u NodeID) *rand.Rand {
	if rt.rngGen[u] != rt.runGen {
		rt.rngGen[u] = rt.runGen
		seed := rt.net.nodeSeed(u, rt.sess)
		rt.pcgs[u].Seed(seed, seed^nodeSeedXor)
	}
	return &rt.rands[u]
}

// Send stages a message from u to its neighbor v for delivery at the start
// of the next round. It enforces the CONGEST constraints: v must be a
// neighbor of u, each directed edge carries at most one message per
// round, and the B payload fits its ⌈log₂ n⌉-bit model word (MaxPayloadB,
// a packed-wire-format capacity no O(log n)-bit protocol approaches).
// Node-local; not callable from Init (no round is executing yet).
func (rt *Session) Send(u, v NodeID, kind uint8, a, b uint64) {
	if rt.inInit {
		rt.fail(protocolErrorf("node %d sent during Init (before round 0)", u))
		return
	}
	if b > MaxPayloadB {
		rt.fail(protocolErrorf("round %d: node %d sent payload B=%d exceeding the %d-bit model word", rt.round, u, b, msgFieldBits))
		return
	}
	slot := rt.neighborSlot(u, v)
	if slot < 0 {
		rt.fail(protocolErrorf("round %d: node %d sent to non-neighbor %d", rt.round, u, v))
		return
	}
	es := rt.eng.adjOff[u] + int32(slot)
	if rt.lastSent[es] == rt.stamp {
		rt.fail(protocolErrorf("round %d: node %d sent twice on edge to %d (bandwidth violation)", rt.round, u, v))
		return
	}
	rt.lastSent[es] = rt.stamp
	if rt.serialRound && len(rt.outTo[u]) == 0 {
		rt.senders = append(rt.senders, u)
	}
	rt.outPay[rt.eng.adjOff[u]+int32(len(rt.outTo[u]))] = packMessage(u, kind, a, b)
	rt.outTo[u] = append(rt.outTo[u], v)
}

// Broadcast stages the same message from u to every neighbor, in
// adjacency order — equivalent to one Send per neighbor (identical
// transcripts, enforced by the same bandwidth stamps) but without the
// per-edge neighbor lookup, which is the dominant Send cost of
// flood-style protocols. Node-local; not callable from Init.
func (rt *Session) Broadcast(u NodeID, kind uint8, a, b uint64) {
	if rt.inInit {
		rt.fail(protocolErrorf("node %d sent during Init (before round 0)", u))
		return
	}
	if b > MaxPayloadB {
		rt.fail(protocolErrorf("round %d: node %d sent payload B=%d exceeding the %d-bit model word", rt.round, u, b, msgFieldBits))
		return
	}
	out := rt.outTo[u]
	if len(out) > 0 {
		// A broadcast uses every one of u's edges, so any earlier staging
		// this round already makes it a bandwidth violation — rejecting it
		// here (rather than mid-loop) also keeps the payload region below
		// within u's own CSR segment.
		rt.fail(protocolErrorf("round %d: node %d broadcast after already sending to %d (bandwidth violation)", rt.round, u, out[0]))
		return
	}
	msg := packMessage(u, kind, a, b)
	base := rt.eng.adjOff[u]
	nbrs := rt.net.g.Neighbors(u)
	if rt.serialRound && len(nbrs) > 0 {
		rt.senders = append(rt.senders, u)
	}
	// len(out) == 0 means no edge of u carries this round's stamp (every
	// successful Send/Broadcast appends to out), so there is no conflict
	// to check — the stamps only need recording so a later Send on any of
	// these edges fails.
	pay := rt.outPay[base : base+int32(len(nbrs))]
	sent := rt.lastSent[base : base+int32(len(nbrs))]
	for slot := range nbrs {
		sent[slot] = rt.stamp
		pay[slot] = msg
	}
	rt.outTo[u] = append(out, nbrs...)
}

func (rt *Session) neighborSlot(u, v NodeID) int {
	i, found := slices.BinarySearch(rt.net.g.Neighbors(u), v)
	if found {
		return i
	}
	return -1
}

// WakeAt schedules node u to run at round r (which must not be in the
// past). Node-local (or from Init, where the current round is 0).
func (rt *Session) WakeAt(u NodeID, r int) {
	if r < rt.round {
		rt.fail(protocolErrorf("node %d scheduled wake at past round %d (now %d)", u, r, rt.round))
		return
	}
	if rt.wake[u] < 0 || int32(r) < rt.wake[u] {
		rt.wake[u] = int32(r)
	}
	if rt.inInit || rt.serialRound {
		// Init and serial handler rounds run on the session goroutine, so
		// the shared pool bitmap is safe to touch directly; wake-ups from
		// parallel handler rounds are folded in at delivery time.
		rt.setPool(u)
	}
}

// Reject records that node u outputs reject, with an optional witness
// cycle. Safe for concurrent use.
func (rt *Session) Reject(u NodeID, witness []NodeID) {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	rt.rejections = append(rt.rejections, Rejection{Node: u, Witness: witness})
}

// Halt requests a global stop at the end of the current round. Safe for
// concurrent use.
func (rt *Session) Halt() { rt.halt.Store(true) }

func (rt *Session) fail(err error) {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	if rt.violation == nil {
		rt.violation = err
	}
	rt.halt.Store(true)
}

func (rt *Session) rejectedLocked() bool {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	return len(rt.rejections) > 0
}

func (s *Session) setPool(u NodeID) {
	w, m := u>>6, uint64(1)<<(u&63)
	if s.pool[w]&m == 0 {
		if s.pool[w] == 0 {
			s.summary[w>>6] |= 1 << (w & 63)
		}
		s.pool[w] |= m
		s.cand++
	}
}

func (s *Session) clearPool(u NodeID) {
	w, m := u>>6, uint64(1)<<(u&63)
	if s.pool[w]&m != 0 {
		s.pool[w] &^= m
		if s.pool[w] == 0 {
			s.summary[w>>6] &^= 1 << (w & 63)
		}
		s.cand--
	}
}

// inboxOf returns the messages delivered to u for the current round.
func (s *Session) inboxOf(u NodeID) []Message {
	c := s.inCur[u]
	if c.stamp != s.stamp {
		return nil
	}
	return s.inboxBuf[c.beg:c.pos]
}

func (s *Session) inboxCount(u NodeID) int {
	c := s.inCur[u]
	if c.stamp != s.stamp {
		return 0
	}
	return int(c.pos - c.beg)
}

// cleanup restores the session invariants (wake sentinel values, empty
// pool bitmap, empty out buffers) so the Session can be reused. It walks
// only the state the finished run actually touched.
func (s *Session) cleanup() {
	for _, u := range s.due {
		s.wake[u] = -1
		if len(s.outTo[u]) > 0 {
			s.outTo[u] = s.outTo[u][:0]
		}
	}
	s.due = s.due[:0]
	s.senders = s.senders[:0]
	s.serialRound = false
	if s.cand > 0 {
		for si, sw := range s.summary {
			for sw != 0 {
				sb := bits.TrailingZeros64(sw)
				sw &^= 1 << sb
				wi := si<<6 | sb
				for w := s.pool[wi]; w != 0; {
					b := bits.TrailingZeros64(w)
					w &^= 1 << b
					s.wake[NodeID(wi<<6|b)] = -1
				}
				s.pool[wi] = 0
			}
			s.summary[si] = 0
		}
		s.cand = 0
	}
	// A session that ended early (halt, StopOnReject, violation, round cap)
	// can leave inboxes stamped for the round after its last delivery.
	// Burning one stamp value here guarantees no future round ever matches
	// a leftover stamp, without clearing the stamp array.
	s.stamp++
	s.violation = nil
	s.rejections = s.rejections[:0]
	s.halt.Store(false)
}

// run executes one session. The Session must satisfy the cleanup
// invariants on entry.
func (s *Session) run(h Handler, sess uint64) (*Report, error) {
	e := s.eng
	n := s.net.NumNodes()
	s.sess = sess
	s.runGen++
	s.round = 0

	s.inInit = true
	s.guardedInit(h)
	s.inInit = false
	if s.violation != nil {
		return nil, s.violation
	}

	maxRounds := e.MaxRounds
	if maxRounds <= 0 {
		maxRounds = defaultMaxRounds
	}
	workers := e.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}

	rep := &Report{}
	if e.Timeline {
		// Presize to the previous run's executed-round count (sessions are
		// pooled, so back-to-back runs of one protocol estimate exactly):
		// collection then costs one allocation per run, not one per growth.
		rep.Timeline = make([]RoundStat, 0, max(s.lastExec, 16))
	}
	msgBits := MessageBits(n)
	var dropRng *rand.Rand
	if e.DropProb > 0 {
		if e.numComp > 0 {
			return nil, fmt.Errorf("congest: per-component accounting is incompatible with DropProb (sender-side counts)")
		}
		dropRng = s.net.nodeRand(-1, sess)
	}
	if e.numComp > 0 {
		if len(s.compLast) != e.numComp {
			s.compLast = make([]int32, e.numComp)
			s.compMsgs = make([]int64, e.numComp)
		}
		for c := range s.compLast {
			s.compLast[c] = -1
			s.compMsgs[c] = 0
		}
	}
	s.ensureShards(e.deliveryShards(workers, n))
	exec := 0

	cancel := e.Cancel
	for round := 0; s.cand > 0; round++ {
		// Cooperative cancellation checkpoint: one nil-guarded atomic
		// load per executed round. An abandoned request's session stops
		// here instead of running to quiescence.
		if cancel.Canceled() {
			return nil, ErrCanceled
		}
		if faultpoint.Enabled() {
			faultpoint.Sleep(faultpoint.RoundStall)
		}
		if round >= maxRounds {
			return nil, fmt.Errorf("congest: exceeded %d rounds (runaway protocol?)", maxRounds)
		}
		s.stamp++

		// Scan the candidate bitmap through the summary level (ascending
		// node order): nodes due now run; the rest wait for a future
		// wake-up. The walk costs O(active words), not O(n/64).
		s.due = s.due[:0]
		earliest := int32(-1)
		maxInbox := rep.MaxInbox
		for si, sw := range s.summary {
			for sw != 0 {
				sb := bits.TrailingZeros64(sw)
				sw &^= 1 << sb
				wi := si<<6 | sb
				for w := s.pool[wi]; w != 0; {
					b := bits.TrailingZeros64(w)
					w &^= 1 << b
					u := NodeID(wi<<6 | b)
					wk := s.wake[u]
					if c := s.inCur[u]; c.stamp == s.stamp {
						if load := int(c.pos - c.beg); load > maxInbox {
							maxInbox = load
						}
						s.due = append(s.due, u)
						if wk >= 0 && int(wk) <= round {
							s.wake[u] = -1
							s.clearPool(u)
						} else if wk < 0 {
							s.clearPool(u)
						}
						// A pending future wake keeps the node a candidate.
					} else if wk >= 0 && int(wk) <= round {
						s.due = append(s.due, u)
						s.wake[u] = -1
						s.clearPool(u)
					} else if earliest < 0 || wk < earliest {
						earliest = wk
					}
				}
			}
		}
		if len(s.due) == 0 {
			// Fast-forward the clock to the earliest scheduled wake-up.
			// The skipped rounds still elapse in CONGEST time (they are
			// counted by Report.Rounds); only their simulation is skipped.
			round = int(earliest) - 1
			continue
		}
		rep.MaxInbox = maxInbox
		s.round = round
		rep.Rounds = round + 1
		exec++
		if e.numComp > 0 {
			for _, u := range s.due {
				s.compLast[e.comp[u]] = int32(round)
			}
		}

		// Execute handlers (possibly in parallel).
		serialHandlers := e.runHandlers(s, h, round, workers)
		if s.violation != nil {
			return nil, s.violation
		}

		delivered := s.deliver(workers, dropRng, serialHandlers)
		rep.Messages += delivered
		rep.Bits += msgBits * delivered
		if e.Timeline {
			rep.Timeline = append(rep.Timeline, RoundStat{
				Round: round, Active: len(s.due), Messages: delivered,
			})
		}

		if s.halt.Load() {
			rep.Halted = true
			break
		}
		if e.StopOnReject && s.rejectedLocked() {
			break
		}
	}
	s.lastExec = exec
	if e.numComp > 0 {
		rep.PerComp = make([]CompStats, e.numComp)
		for c := range rep.PerComp {
			rep.PerComp[c] = CompStats{Rounds: int(s.compLast[c]) + 1, Messages: s.compMsgs[c]}
		}
	}
	if len(s.rejections) > 0 {
		rep.Rejections = canonicalRejections(s.rejections)
		// The sorted buffer is handed off to the escaping Report (callers
		// read it after the Session returns to the pool), so the session
		// must relinquish it rather than reuse it.
		s.rejections = nil
	}
	return rep, nil
}

// canonicalRejections sorts the rejection list in place into a
// deterministic order (by node, then witness), erasing the
// handler-scheduling order in which concurrent Reject calls were
// appended, and returns it. Sorting in place instead of into a fresh
// copy saves the per-run copy allocation; the caller transfers ownership
// of the buffer to the Report.
func canonicalRejections(rejs []Rejection) []Rejection {
	slices.SortFunc(rejs, func(a, b Rejection) int {
		if a.Node != b.Node {
			return int(a.Node) - int(b.Node)
		}
		if len(a.Witness) != len(b.Witness) {
			return len(a.Witness) - len(b.Witness)
		}
		return slices.Compare(a.Witness, b.Witness)
	})
	return rejs
}

// handlerGrain is the work-stealing batch: workers claim this many due
// nodes per atomic increment. Small enough that one expensive handler
// cannot strand a worker behind a prefilled chunk, large enough that the
// cursor is not contended per node.
const handlerGrain = 16

const defaultParallelThreshold = 256

func (e *Engine) parallelThreshold() int {
	if e.ParallelThreshold > 0 {
		return e.ParallelThreshold
	}
	return defaultParallelThreshold
}

// runHandlers invokes the handler for every due node, in parallel when
// the batch is large enough to amortize goroutine overhead, and reports
// whether it ran serially (on the session goroutine). Parallel execution
// steals handlerGrain-sized batches off the shared due cursor, so uneven
// handler costs rebalance instead of idling statically chunked workers.
func (e *Engine) runHandlers(s *Session, h Handler, round int, workers int) bool {
	due := s.due
	if workers <= 1 || len(due) < e.parallelThreshold() {
		s.serialRound = true
		s.senders = s.senders[:0]
		s.serialHandlers(h, due, round)
		s.serialRound = false
		return true
	}
	if maxW := (len(due) + handlerGrain - 1) / handlerGrain; workers > maxW {
		workers = maxW
	}
	s.parH, s.parRound = h, round
	s.parNext.Store(0)
	s.wg.Add(workers)
	for w := 0; w < workers; w++ {
		go s.handlerFn()
	}
	s.wg.Wait()
	s.parH = nil
	return false
}

func (s *Session) handlerWorker() {
	defer s.wg.Done()
	defer s.recoverHandlerPanic()
	h, round, due := s.parH, s.parRound, s.due
	for {
		lo := int(s.parNext.Add(handlerGrain)) - handlerGrain
		if lo >= len(due) {
			return
		}
		for _, u := range due[lo:min(lo+handlerGrain, len(due))] {
			h.HandleRound(s, u, round, s.inboxOf(u))
		}
	}
}

// serialHandlers runs the round's due handlers on the session goroutine,
// under the same recover fence as parallel workers: a panicking handler
// fails the session (the remaining due nodes are skipped — the session
// is already doomed) instead of unwinding through RunSession and
// dropping the pooled session.
func (s *Session) serialHandlers(h Handler, due []NodeID, round int) {
	defer s.recoverHandlerPanic()
	for _, u := range due {
		h.HandleRound(s, u, round, s.inboxOf(u))
	}
}

// guardedInit runs h.Init under the handler recover fence, so a
// panicking Init surfaces as a session error instead of killing the
// process or poisoning the pool.
func (s *Session) guardedInit(h Handler) {
	defer s.recoverHandlerPanic()
	h.Init(s)
}

// recoverHandlerPanic is the deferred fence shared by Init, serial
// rounds and parallel workers. It converts a handler panic into a
// session failure (first failure wins; halt is requested) so the
// session unwinds through the normal violation path and stays poolable.
func (s *Session) recoverHandlerPanic() {
	if r := recover(); r != nil {
		s.fail(fmt.Errorf("congest: handler panicked in round %d: %v", s.round, r))
	}
}

// deliveryShards picks the receiver-shard count for this run: the
// engine's override, else one shard per worker, bounded so a shard never
// covers fewer than 64 nodes (below that the two full-buffer scans per
// shard cost more than they parallelize).
func (e *Engine) deliveryShards(workers, n int) int {
	shards := e.Shards
	if shards <= 0 {
		shards = workers
	}
	if maxS := n / 64; shards > maxS {
		shards = max(maxS, 1)
	}
	return shards
}

// ensureShards sizes the shard state for k contiguous node-range shards.
func (s *Session) ensureShards(k int) {
	if s.shards == k {
		return
	}
	if k <= 1 {
		// Serial delivery never touches the shard state.
		s.shards = k
		return
	}
	s.shards = k
	n := s.net.NumNodes()
	if cap(s.shardBounds) < k+1 {
		s.shardBounds = make([]int32, k+1)
		s.shardCount = make([]int64, k)
		s.shardRecv = make([][]NodeID, k)
	}
	s.shardBounds = s.shardBounds[:k+1]
	s.shardCount = s.shardCount[:k]
	s.shardRecv = s.shardRecv[:k]
	for i := 0; i <= k; i++ {
		s.shardBounds[i] = int32(i * n / k)
	}
}

// deliver moves the round's staged messages into the fixed-offset
// inboxes of the next round and refreshes the candidate bitmap: message
// receivers, re-woken due nodes (waiting nodes never left the bitmap).
// Both paths scatter in ascending-sender order into each receiver's
// static CSR region, so per-receiver inboxes are identical for every
// Workers and Shards setting. Returns the delivered count.
func (s *Session) deliver(workers int, dropRng *rand.Rand, serialHandlers bool) int64 {
	// After a serial handler round the senders list is exact; parallel
	// rounds walk the whole due list instead, and their wake-ups (which
	// serial rounds folded into the bitmap directly) are folded in here.
	senders := s.due
	if serialHandlers {
		senders = s.senders
	}
	var delivered int64
	if workers > 1 && s.shards > 1 && dropRng == nil {
		staged := 0
		for _, u := range senders {
			staged += len(s.outTo[u])
		}
		if staged >= s.eng.parallelThreshold() {
			delivered = s.deliverSharded(senders, workers)
		} else {
			delivered = s.deliverSerial(senders, dropRng)
		}
	} else {
		delivered = s.deliverSerial(senders, dropRng)
	}
	if s.eng.numComp > 0 {
		// Sender-side per-component counts: exact because components are
		// forbidden together with DropProb, so staged == delivered.
		for _, u := range senders {
			s.compMsgs[s.eng.comp[u]] += int64(len(s.outTo[u]))
		}
	}
	for _, u := range senders {
		if len(s.outTo[u]) > 0 {
			s.outTo[u] = s.outTo[u][:0]
		}
	}
	if !serialHandlers {
		for _, u := range s.due {
			if s.wake[u] >= 0 {
				s.setPool(u)
			}
		}
	}
	return delivered
}

// deliverSerial is the single-threaded delivery path: one scatter pass
// over the staged out buffers. Receiver regions are static (adjOff), so
// there is nothing to count or place; each message is one cursor bump
// and one 16-byte copy, and the per-message drop draw (when fault
// injection is on) happens in the same global staging order as always.
func (s *Session) deliverSerial(senders []NodeID, dropRng *rand.Rand) int64 {
	nextStamp := s.stamp + 1
	adjOff := s.eng.adjOff
	var delivered int64
	for _, u := range senders {
		out := s.outTo[u]
		pay := s.outPay[adjOff[u]:]
		for i, r := range out {
			if dropRng != nil && dropRng.Float64() < s.eng.DropProb {
				continue
			}
			c := &s.inCur[r]
			if c.stamp != nextStamp {
				c.stamp = nextStamp
				c.beg = adjOff[r]
				c.pos = c.beg
				s.setPool(r)
			}
			s.inboxBuf[c.pos] = pay[i]
			c.pos++
			delivered++
		}
	}
	return delivered
}

// deliverSharded is the parallel delivery path: receivers are
// partitioned into contiguous node-range shards and one worker per shard
// scans the full staged buffers, scattering only its own shard's
// messages. Fixed receiver regions mean one parallel pass suffices (no
// count/offset phase or barrier between them); every inbox cell has
// exactly one writer, the random-access traffic splits across workers,
// and per-receiver order stays ascending-sender (workers walk the
// sender list in ascending order, one message per directed edge per
// round) — bit-identical to the serial path.
func (s *Session) deliverSharded(senders []NodeID, workers int) int64 {
	s.sendList = senders
	shards := s.shards
	s.shardNext.Store(0)
	// Workers bounds the engine's parallelism; with more shards than
	// workers, each worker loops claiming shards off the cursor.
	w := min(workers, shards)
	s.wg.Add(w)
	for i := 0; i < w; i++ {
		go s.scatterFn()
	}
	s.wg.Wait()
	var delivered int64
	// The pool bitmap, its summary and the cand counter are shared across
	// shards, so receivers are folded in serially (O(receivers)).
	for sh := 0; sh < shards; sh++ {
		delivered += s.shardCount[sh]
		for _, r := range s.shardRecv[sh] {
			s.setPool(r)
		}
	}
	s.sendList = nil
	return delivered
}

// scatterWorker loops claiming unowned shards off the cursor and
// scattering them, until none remain.
func (s *Session) scatterWorker() {
	defer s.wg.Done()
	for {
		sh := int(s.shardNext.Add(1)) - 1
		if sh >= s.shards {
			return
		}
		s.scatterShard(sh)
	}
}

func (s *Session) scatterShard(sh int) {
	lo, hi := s.shardBounds[sh], s.shardBounds[sh+1]
	nextStamp := s.stamp + 1
	adjOff := s.eng.adjOff
	recv := s.shardRecv[sh][:0]
	count := int64(0)
	for _, u := range s.sendList {
		out := s.outTo[u]
		pay := s.outPay[adjOff[u]:]
		for i, r := range out {
			if r < lo || r >= hi {
				continue
			}
			c := &s.inCur[r]
			if c.stamp != nextStamp {
				c.stamp = nextStamp
				c.beg = adjOff[r]
				c.pos = c.beg
				recv = append(recv, r)
			}
			s.inboxBuf[c.pos] = pay[i]
			c.pos++
			count++
		}
	}
	s.shardRecv[sh] = recv
	s.shardCount[sh] = count
}
