package congest

import (
	"fmt"
	"math/rand/v2"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
)

// Engine executes handlers on a network, one session at a time. An Engine
// is not safe for concurrent Run calls.
type Engine struct {
	net *Network
	// MaxRounds aborts runaway protocols; 0 means the default cap.
	MaxRounds int
	// Workers is the size of the goroutine pool mapping node handlers onto
	// rounds; 0 means GOMAXPROCS.
	Workers int
	// StopOnReject halts the session at the end of the first round in
	// which some node rejected.
	StopOnReject bool
	// DropProb injects adversarial message loss: each staged message is
	// discarded at delivery time with this probability (deterministic
	// given the network seed). The CONGEST model itself is fault-free;
	// this knob exists to machine-check that one-sidedness is structural —
	// under any loss rate the detectors may miss cycles but can never
	// fabricate one.
	DropProb float64
	// Timeline collects per-round statistics into Report.Timeline.
	Timeline bool

	session uint64
}

// RoundStat is one entry of a collected timeline.
type RoundStat struct {
	Round    int
	Active   int   // nodes whose handler ran
	Messages int64 // messages delivered out of this round
}

// NewEngine returns an engine for the network.
func NewEngine(net *Network) *Engine {
	return &Engine{net: net}
}

// Network returns the engine's network.
func (e *Engine) Network() *Network { return e.net }

const defaultMaxRounds = 50_000_000

// Runtime is the per-session interface handlers use to interact with the
// simulated network. Methods marked "node-local" may be called only from
// within HandleRound (or Init) and, when called for node u, only by u's
// handler invocation.
type Runtime struct {
	net  *Network
	sess uint64

	// Per-node wake requests: wake[u] = earliest future round at which u
	// wants to run (-1 = none). Written only by u's own handler.
	wake []int32

	// Outgoing messages staged by senders during the current round.
	// out[u] is written only by u's handler.
	out [][]outMsg

	// lastSent[u][slot] = round at which adjacency slot `slot` of u last
	// carried a message (bandwidth enforcement). Lazily allocated.
	lastSent [][]int32

	// rngs[u] is u's deterministic random stream, created on first use by
	// u's own handler.
	rngs []*rand.Rand

	// inbox[u] holds the messages delivered to u this round.
	inbox [][]Message

	round int

	halt atomic.Bool

	mu         sync.Mutex
	rejections []Rejection
	violation  error
}

type outMsg struct {
	to  NodeID
	msg Message
}

// N returns the number of nodes in the network (global knowledge).
func (rt *Runtime) N() int { return rt.net.NumNodes() }

// Round returns the current round number.
func (rt *Runtime) Round() int { return rt.round }

// Degree returns the degree of u (node-local knowledge).
func (rt *Runtime) Degree(u NodeID) int { return rt.net.g.Degree(u) }

// Neighbors returns u's adjacency list (node-local knowledge). The slice
// must not be modified.
func (rt *Runtime) Neighbors(u NodeID) []NodeID { return rt.net.g.Neighbors(u) }

// Rand returns u's deterministic random stream. Node-local.
func (rt *Runtime) Rand(u NodeID) *rand.Rand {
	if rt.rngs[u] == nil {
		rt.rngs[u] = rt.net.nodeRand(u, rt.sess)
	}
	return rt.rngs[u]
}

// Send stages a message from u to its neighbor v for delivery at the start
// of the next round. It enforces the CONGEST constraints: v must be a
// neighbor of u, and each directed edge carries at most one message per
// round. Node-local.
func (rt *Runtime) Send(u, v NodeID, kind uint8, a, b uint64) {
	slot := rt.neighborSlot(u, v)
	if slot < 0 {
		rt.fail(protocolErrorf("round %d: node %d sent to non-neighbor %d", rt.round, u, v))
		return
	}
	if rt.lastSent[u] == nil {
		ls := make([]int32, rt.net.g.Degree(u))
		for i := range ls {
			ls[i] = -1
		}
		rt.lastSent[u] = ls
	}
	if rt.lastSent[u][slot] == int32(rt.round) {
		rt.fail(protocolErrorf("round %d: node %d sent twice on edge to %d (bandwidth violation)", rt.round, u, v))
		return
	}
	rt.lastSent[u][slot] = int32(rt.round)
	rt.out[u] = append(rt.out[u], outMsg{to: v, msg: Message{From: u, Kind: kind, A: a, B: b}})
}

func (rt *Runtime) neighborSlot(u, v NodeID) int {
	adj := rt.net.g.Neighbors(u)
	i := sort.Search(len(adj), func(i int) bool { return adj[i] >= v })
	if i < len(adj) && adj[i] == v {
		return i
	}
	return -1
}

// WakeAt schedules node u to run at round r (which must not be in the
// past). Node-local (or from Init, where the current round is 0).
func (rt *Runtime) WakeAt(u NodeID, r int) {
	if r < rt.round {
		rt.fail(protocolErrorf("node %d scheduled wake at past round %d (now %d)", u, r, rt.round))
		return
	}
	if rt.wake[u] < 0 || int32(r) < rt.wake[u] {
		rt.wake[u] = int32(r)
	}
}

// Reject records that node u outputs reject, with an optional witness
// cycle. Safe for concurrent use.
func (rt *Runtime) Reject(u NodeID, witness []NodeID) {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	rt.rejections = append(rt.rejections, Rejection{Node: u, Witness: witness})
}

// Halt requests a global stop at the end of the current round. Safe for
// concurrent use.
func (rt *Runtime) Halt() { rt.halt.Store(true) }

func (rt *Runtime) fail(err error) {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	if rt.violation == nil {
		rt.violation = err
	}
	rt.halt.Store(true)
}

func (rt *Runtime) rejectedLocked() bool {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	return len(rt.rejections) > 0
}

// Run executes one session of the handler until quiescence (no pending
// messages and no scheduled wake-ups), a halt request, or the round cap.
//
// The returned Report counts rounds in CONGEST time: Rounds is the index of
// the last round with activity, plus one; idle gaps before a scheduled
// wake-up are not simulated but do elapse (and are therefore counted).
func (e *Engine) Run(h Handler) (*Report, error) {
	n := e.net.NumNodes()
	sess := e.session
	e.session++
	rt := &Runtime{
		net:      e.net,
		sess:     sess,
		wake:     make([]int32, n),
		out:      make([][]outMsg, n),
		lastSent: make([][]int32, n),
		rngs:     make([]*rand.Rand, n),
		inbox:    make([][]Message, n),
	}
	for i := range rt.wake {
		rt.wake[i] = -1
	}
	h.Init(rt)
	if rt.violation != nil {
		return nil, rt.violation
	}

	maxRounds := e.MaxRounds
	if maxRounds <= 0 {
		maxRounds = defaultMaxRounds
	}
	workers := e.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}

	rep := &Report{}
	msgBits := MessageBits(n)
	var dropRng *rand.Rand
	if e.DropProb > 0 {
		dropRng = e.net.nodeRand(-1, sess)
	}
	// pool: candidate nodes for the current round (receivers of the
	// previous round's messages plus nodes with pending wake-ups), sorted.
	pool := make([]NodeID, 0, n)
	due := make([]NodeID, 0, n)
	waiting := make([]NodeID, 0, n)
	next := make([]NodeID, 0, n)
	inPool := make([]int32, n) // round stamp for dedup when building next
	for i := range inPool {
		inPool[i] = -1
	}
	for u := 0; u < n; u++ {
		if rt.wake[u] >= 0 {
			pool = append(pool, NodeID(u))
		}
	}

	for round := 0; len(pool) > 0; round++ {
		if round >= maxRounds {
			return nil, fmt.Errorf("congest: exceeded %d rounds (runaway protocol?)", maxRounds)
		}

		// Partition the pool into nodes due now and nodes waiting for a
		// future wake-up.
		due = due[:0]
		waiting = waiting[:0]
		earliest := int32(-1)
		for _, u := range pool {
			w := rt.wake[u]
			if len(rt.inbox[u]) > 0 || (w >= 0 && int(w) <= round) {
				due = append(due, u)
				if w >= 0 && int(w) <= round {
					rt.wake[u] = -1
				}
			} else {
				waiting = append(waiting, u)
				if earliest < 0 || w < earliest {
					earliest = w
				}
			}
		}
		if len(due) == 0 {
			// Fast-forward the clock to the earliest scheduled wake-up.
			round = int(earliest) - 1
			continue
		}
		rt.round = round
		rep.Rounds = round + 1
		for _, u := range due {
			if load := len(rt.inbox[u]); load > rep.MaxInbox {
				rep.MaxInbox = load
			}
		}

		// Execute handlers (possibly in parallel).
		e.runHandlers(rt, h, due, round, workers)
		if rt.violation != nil {
			return nil, rt.violation
		}

		// Consume inboxes, deliver staged messages, and build the next
		// pool: message receivers, re-woken due nodes, and still-waiting
		// nodes.
		next = next[:0]
		mark := func(u NodeID) {
			if inPool[u] != int32(round) {
				inPool[u] = int32(round)
				next = append(next, u)
			}
		}
		for _, u := range due {
			rt.inbox[u] = rt.inbox[u][:0]
		}
		var delivered int64
		for _, u := range due {
			for _, om := range rt.out[u] {
				if dropRng != nil && dropRng.Float64() < e.DropProb {
					continue
				}
				rt.inbox[om.to] = append(rt.inbox[om.to], om.msg)
				rep.Messages++
				rep.Bits += msgBits
				delivered++
				mark(om.to)
			}
			rt.out[u] = rt.out[u][:0]
			if rt.wake[u] >= 0 {
				mark(u)
			}
		}
		if e.Timeline {
			rep.Timeline = append(rep.Timeline, RoundStat{
				Round: round, Active: len(due), Messages: delivered,
			})
		}
		for _, u := range waiting {
			mark(u)
		}
		pool = append(pool[:0], next...)
		sort.Slice(pool, func(i, j int) bool { return pool[i] < pool[j] })

		if rt.halt.Load() {
			rep.Halted = true
			break
		}
		if e.StopOnReject && rt.rejectedLocked() {
			break
		}
	}
	rep.Rejections = rt.rejections
	return rep, nil
}

// runHandlers invokes the handler for every due node, in parallel when the
// batch is large enough to amortize goroutine overhead.
func (e *Engine) runHandlers(rt *Runtime, h Handler, due []NodeID, round int, workers int) {
	const parallelThreshold = 256
	if workers <= 1 || len(due) < parallelThreshold {
		for _, u := range due {
			h.HandleRound(rt, u, round, rt.inbox[u])
		}
		return
	}
	var wg sync.WaitGroup
	chunk := (len(due) + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		if lo >= len(due) {
			break
		}
		hi := min(lo+chunk, len(due))
		wg.Add(1)
		go func(part []NodeID) {
			defer wg.Done()
			for _, u := range part {
				h.HandleRound(rt, u, round, rt.inbox[u])
			}
		}(due[lo:hi])
	}
	wg.Wait()
}
