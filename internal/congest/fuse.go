package congest

// Fused sessions: a disjoint union of graphs is itself a valid CONGEST
// network whose components can never exchange messages (there are no
// edges between them, and Send enforces locality). One session on the
// union therefore executes every component's protocol simultaneously,
// amortizing per-session setup and per-round scheduling across the batch,
// while each component's transcript stays node-for-node identical to a
// solo run — provided the component's node randomness streams and the
// protocol's n-dependent parameters are reproduced per component. This
// file supplies the network half of that contract; SetComponents supplies
// the cost-accounting split.

import "repro/internal/graph"

// NewFusedEngine builds the disjoint-union network of the given graphs
// and returns an engine with per-component accounting installed, plus the
// component map for demultiplexing. seeds[i] is the master seed component
// i's node streams derive from: node u of graph i (global ID
// parts.Base[i]+u) draws exactly the stream it would on
// NewNetwork(gs[i], seeds[i]) under the same session tag.
func NewFusedEngine(gs []*graph.Graph, seeds []uint64) (*Engine, *graph.UnionParts) {
	if len(seeds) != len(gs) {
		panic("congest: NewFusedEngine needs one seed per graph")
	}
	u, parts := graph.UnionTagged(gs)
	bases := make([]uint64, u.NumNodes())
	for i := range gs {
		lo, hi := parts.Component(i)
		for v := lo; v < hi; v++ {
			bases[v] = SeedBase(seeds[i], v-lo)
		}
	}
	eng := NewEngine(NewNetworkSeedBases(u, bases))
	eng.SetComponents(parts.Comp, len(gs))
	return eng, parts
}
