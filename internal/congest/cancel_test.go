package congest

import (
	"context"
	"errors"
	"reflect"
	"strings"
	"testing"
	"time"

	"repro/internal/graph"
)

// spinner re-wakes itself every round forever, so a run only ends via
// cancellation or the round cap. notify is closed once the protocol has
// demonstrably entered its spin (round ≥ 100).
type spinner struct {
	notify chan struct{}
	once   bool
}

func (s *spinner) Init(rt *Runtime) { rt.WakeAt(0, 0) }
func (s *spinner) HandleRound(rt *Runtime, u NodeID, r int, inbox []Message) {
	if r >= 100 && !s.once {
		s.once = true
		close(s.notify)
	}
	rt.WakeAt(u, r+1)
}

func TestCancelPreTrippedStopsBeforeFirstRound(t *testing.T) {
	net := NewNetwork(graph.Path(2), 1)
	eng := NewEngine(net)
	eng.Cancel = &CancelFlag{}
	eng.Cancel.Cancel()
	h := &spinner{notify: make(chan struct{})}
	rep, err := eng.Run(h)
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
	if rep != nil {
		t.Fatalf("got report %+v from a canceled run", rep)
	}
	select {
	case <-h.notify:
		t.Fatal("handler ran past round 100 despite pre-tripped cancel")
	default:
	}
}

func TestCancelStopsInFlightRun(t *testing.T) {
	net := NewNetwork(graph.Path(2), 1)
	eng := NewEngine(net)
	eng.MaxRounds = 100_000_000 // effectively unbounded; cancel must end the run
	flag := &CancelFlag{}
	eng.Cancel = flag
	h := &spinner{notify: make(chan struct{})}

	done := make(chan error, 1)
	go func() {
		_, err := eng.Run(h)
		done <- err
	}()
	<-h.notify // the run is provably spinning
	flag.Cancel()
	if err := <-done; !errors.Is(err, ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}

	// The engine (and its pooled session) stays usable after cancellation.
	eng.Cancel = nil
	fh := &floodHandler{}
	if _, err := eng.Run(fh); err != nil {
		t.Fatalf("post-cancel Run: %v", err)
	}
}

// TestUntrippedFlagIsTranscriptInvisible pins the "cancellation is free
// unless tripped" contract: a run with an armed-but-untripped CancelFlag
// produces a Report identical to a run with no flag at all.
func TestUntrippedFlagIsTranscriptInvisible(t *testing.T) {
	g := graph.Path(64)
	run := func(flag *CancelFlag) *Report {
		net := NewNetwork(g, 1)
		eng := NewEngine(net)
		eng.Timeline = true
		eng.Cancel = flag
		rep, err := eng.Run(&floodHandler{})
		if err != nil {
			t.Fatalf("Run: %v", err)
		}
		return rep
	}
	bare := run(nil)
	flagged := run(&CancelFlag{})
	if !reflect.DeepEqual(bare, flagged) {
		t.Fatalf("reports diverge:\nno flag:   %+v\nwith flag: %+v", bare, flagged)
	}
}

func TestWatchContextTripsFlagWithoutGoroutine(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	flag := &CancelFlag{}
	stop := WatchContext(ctx, flag)
	if flag.Canceled() {
		t.Fatal("flag tripped before the context was done")
	}
	cancel()
	// AfterFunc runs the callback in its own goroutine; give it a moment.
	deadline := time.Now().Add(2 * time.Second)
	for !flag.Canceled() {
		if time.Now().After(deadline) {
			t.Fatal("flag did not trip after context cancellation")
		}
		time.Sleep(time.Millisecond)
	}
	stop()
}

func TestNilCancelFlagMethods(t *testing.T) {
	var c *CancelFlag
	if c.Canceled() {
		t.Fatal("nil flag reports canceled")
	}
}

// panicAtNode panics inside HandleRound for one designated node.
type panicAtNode struct {
	target NodeID
	all    bool // wake every node at round 0 (forces big due lists)
}

func (p *panicAtNode) Init(rt *Runtime) {
	if p.all {
		for u := 0; u < rt.N(); u++ {
			rt.WakeAt(NodeID(u), 0)
		}
		return
	}
	rt.WakeAt(p.target, 0)
}

func (p *panicAtNode) HandleRound(rt *Runtime, u NodeID, r int, inbox []Message) {
	if u == p.target {
		panic("boom: injected handler panic")
	}
}

func TestHandlerPanicSerialBecomesError(t *testing.T) {
	net := NewNetwork(graph.Path(4), 1)
	eng := NewEngine(net)
	_, err := eng.Run(&panicAtNode{target: 1})
	if err == nil || !strings.Contains(err.Error(), "panicked") {
		t.Fatalf("err = %v, want handler-panicked error", err)
	}
	// The pooled session must be clean for the next run.
	if _, err := eng.Run(&floodHandler{}); err != nil {
		t.Fatalf("post-panic Run: %v", err)
	}
}

func TestHandlerPanicParallelBecomesError(t *testing.T) {
	net := NewNetwork(graph.Path(256), 1)
	eng := NewEngine(net)
	eng.Workers = 4
	eng.ParallelThreshold = 2 // force the parallel handler path
	_, err := eng.Run(&panicAtNode{target: 97, all: true})
	if err == nil || !strings.Contains(err.Error(), "panicked") {
		t.Fatalf("err = %v, want handler-panicked error", err)
	}
	if _, err := eng.Run(&floodHandler{}); err != nil {
		t.Fatalf("post-panic Run: %v", err)
	}
}

// initPanics panics during Init.
type initPanics struct{}

func (initPanics) Init(rt *Runtime)                                       { panic("boom in Init") }
func (initPanics) HandleRound(rt *Runtime, u NodeID, r int, in []Message) {}

func TestInitPanicBecomesError(t *testing.T) {
	net := NewNetwork(graph.Path(4), 1)
	eng := NewEngine(net)
	_, err := eng.Run(initPanics{})
	if err == nil || !strings.Contains(err.Error(), "panicked") {
		t.Fatalf("err = %v, want panicked error", err)
	}
	if _, err := eng.Run(&floodHandler{}); err != nil {
		t.Fatalf("post-panic Run: %v", err)
	}
}
