package congest

import (
	"fmt"
	"testing"

	"repro/internal/graph"
)

// pingpong is a minimal allocation-free protocol: every node forwards a
// token to all neighbors for `rounds` rounds. Its own state is allocated
// once and reused, so the benchmark isolates the engine's per-session and
// per-round allocation behavior.
type pingpong struct{ rounds int }

func (p *pingpong) Init(rt *Runtime) {
	for u := 0; u < rt.N(); u++ {
		rt.WakeAt(NodeID(u), 0)
	}
}

func (p *pingpong) HandleRound(rt *Runtime, u NodeID, r int, inbox []Message) {
	if r >= p.rounds {
		return
	}
	for _, v := range rt.Neighbors(u) {
		rt.Send(u, v, 1, uint64(u), uint64(r))
	}
}

// BenchmarkSessionRoundLoop measures allocs/op and ns/op of back-to-back
// sessions on one engine — the hot path of every detector's trial loop.
// Before the pooled-session refactor each run allocated all per-session
// state (wake/out/lastSent/rngs/inbox arrays plus per-receiver inbox
// slices); after it, steady-state runs reuse pooled buffers.
func BenchmarkSessionRoundLoop(b *testing.B) {
	g := graph.Gnm(2048, 8192, graph.NewRand(7))
	e := NewEngine(NewNetwork(g, 1))
	h := &pingpong{rounds: 16}
	b.ReportAllocs()
	for b.Loop() {
		if _, err := e.Run(h); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSessionRoundLoopSparse is the sparse-activity regime: few nodes
// active per round over many rounds, dominated by scheduler bookkeeping
// rather than message volume.
func BenchmarkSessionRoundLoopSparse(b *testing.B) {
	g := graph.Cycle(4096)
	e := NewEngine(NewNetwork(g, 1))
	h := &floodHandler{}
	b.ReportAllocs()
	for b.Loop() {
		h.heard = nil // reset handler state; engine state is pooled
		if _, err := e.Run(h); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDeliveryDense drives the delivery pipeline at maximal message
// density — every node broadcasts to every neighbor every round — on the
// two dense regimes the Congested-Clique-motivated scatter work targets:
// a complete bipartite network (uniform high degree, 32k messages per
// round) and a random-regular network (large n, moderate degree). The
// msgs/sec metric is the direct before/after number for the scatter
// path; the Workers sub-benchmarks compare the serial path against the
// work-stealing + sharded-scatter path (thresholds forced to 1 so every
// round takes the parallel path).
func BenchmarkDeliveryDense(b *testing.B) {
	nets := []struct {
		name string
		g    *graph.Graph
	}{
		{"bipartite-128x128", graph.CompleteBipartite(128, 128)},
	}
	if rr, err := graph.RandomRegular(4096, 4, graph.NewRand(11)); err == nil {
		nets = append(nets, struct {
			name string
			g    *graph.Graph
		}{"regular-4096x4", rr})
	} else {
		b.Fatalf("random regular: %v", err)
	}
	const rounds = 8
	for _, net := range nets {
		for _, workers := range []int{1, 4} {
			b.Run(fmt.Sprintf("%s/workers=%d", net.name, workers), func(b *testing.B) {
				e := NewEngine(NewNetwork(net.g, 1))
				e.Workers = workers
				if workers > 1 {
					e.ParallelThreshold = 1
				}
				h := &pingpong{rounds: rounds}
				var msgs int64
				b.ReportAllocs()
				for b.Loop() {
					rep, err := e.Run(h)
					if err != nil {
						b.Fatal(err)
					}
					msgs += rep.Messages
				}
				b.ReportMetric(float64(msgs)/b.Elapsed().Seconds(), "msgs/sec")
			})
		}
	}
}
