//go:build !race

package congest

const raceEnabled = false
