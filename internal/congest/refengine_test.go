package congest

// A deliberately naive map-based execution of the CONGEST contract, kept
// as an executable reference for the production delivery pipeline (fixed
// CSR inbox regions, senders lists, sharded scatter, packed messages).
// The reference stores everything in maps and sorted slices, rebuilds
// its state from scratch every round, and reconstructs the per-receiver
// "ascending sender" order by explicit sorting — an independent
// derivation of the ordering the engine gets for free from its scan
// order. The equivalence test below drives randomized chaos protocols on
// both implementations, across worker and shard counts, and requires
// every observable — Report counters, rejections, per-node inbox
// fingerprints, randomness draws — to match exactly.

import (
	"fmt"
	"math/rand/v2"
	"reflect"
	"slices"
	"sort"
	"testing"

	"repro/internal/graph"
)

// probeRuntime is the least common API of the production Runtime and the
// reference runtime, so one protocol implementation can drive both.
type probeRuntime interface {
	N() int
	Round() int
	Degree(u NodeID) int
	Neighbors(u NodeID) []NodeID
	Rand(u NodeID) *rand.Rand
	Send(u, v NodeID, kind uint8, a, b uint64)
	Broadcast(u NodeID, kind uint8, a, b uint64)
	WakeAt(u NodeID, r int)
	Reject(u NodeID, witness []NodeID)
	Halt()
}

var _ probeRuntime = (*Session)(nil)

// probeHandler mirrors Handler over probeRuntime.
type probeHandler interface {
	ProbeInit(rt probeRuntime)
	ProbeRound(rt probeRuntime, u NodeID, r int, inbox []Message)
}

// engineProbe adapts a probeHandler to the production engine.
type engineProbe struct{ h probeHandler }

func (a engineProbe) Init(rt *Runtime) { a.h.ProbeInit(rt) }
func (a engineProbe) HandleRound(rt *Runtime, u NodeID, r int, inbox []Message) {
	a.h.ProbeRound(rt, u, r, inbox)
}

// refRuntime implements probeRuntime over maps.
type refRuntime struct {
	net    *Network
	sess   uint64
	round  int
	inInit bool

	rands map[NodeID]*rand.Rand
	wake  map[NodeID]int
	// staged[v] accumulates messages sent to v during the current round;
	// sentOn enforces the one-message-per-directed-edge constraint.
	staged map[NodeID][]Message
	sentOn map[[2]NodeID]bool

	rejections []Rejection
	halted     bool
	violation  error
}

func (rt *refRuntime) N() int                      { return rt.net.NumNodes() }
func (rt *refRuntime) Round() int                  { return rt.round }
func (rt *refRuntime) Degree(u NodeID) int         { return rt.net.Graph().Degree(u) }
func (rt *refRuntime) Neighbors(u NodeID) []NodeID { return rt.net.Graph().Neighbors(u) }
func (rt *refRuntime) Halt()                       { rt.halted = true }

func (rt *refRuntime) Rand(u NodeID) *rand.Rand {
	if r, ok := rt.rands[u]; ok {
		return r
	}
	r := rt.net.nodeRand(u, rt.sess)
	rt.rands[u] = r
	return r
}

func (rt *refRuntime) WakeAt(u NodeID, r int) {
	if r < rt.round {
		rt.fail(fmt.Errorf("ref: past wake"))
		return
	}
	if cur, ok := rt.wake[u]; !ok || r < cur {
		rt.wake[u] = r
	}
}

func (rt *refRuntime) Reject(u NodeID, witness []NodeID) {
	rt.rejections = append(rt.rejections, Rejection{Node: u, Witness: witness})
}

func (rt *refRuntime) fail(err error) {
	if rt.violation == nil {
		rt.violation = err
	}
	rt.halted = true
}

func (rt *refRuntime) Send(u, v NodeID, kind uint8, a, b uint64) {
	if rt.inInit {
		rt.fail(fmt.Errorf("ref: send during init"))
		return
	}
	if b > MaxPayloadB {
		rt.fail(fmt.Errorf("ref: payload B overflow"))
		return
	}
	if !slices.Contains(rt.net.Graph().Neighbors(u), v) {
		rt.fail(fmt.Errorf("ref: non-neighbor send"))
		return
	}
	if rt.sentOn[[2]NodeID{u, v}] {
		rt.fail(fmt.Errorf("ref: bandwidth violation"))
		return
	}
	rt.sentOn[[2]NodeID{u, v}] = true
	rt.staged[v] = append(rt.staged[v], packMessage(u, kind, a, b))
}

func (rt *refRuntime) Broadcast(u NodeID, kind uint8, a, b uint64) {
	for _, v := range rt.net.Graph().Neighbors(u) {
		rt.Send(u, v, kind, a, b)
	}
}

// runRef executes a probeHandler session on the map-based reference.
func runRef(net *Network, h probeHandler, sess uint64, maxRounds int, timeline bool) (*Report, error) {
	rt := &refRuntime{
		net:    net,
		sess:   sess,
		rands:  map[NodeID]*rand.Rand{},
		wake:   map[NodeID]int{},
		staged: map[NodeID][]Message{},
		sentOn: map[[2]NodeID]bool{},
	}
	rt.inInit = true
	h.ProbeInit(rt)
	rt.inInit = false
	if rt.violation != nil {
		return nil, rt.violation
	}

	rep := &Report{}
	msgBits := MessageBits(net.NumNodes())
	inbox := map[NodeID][]Message{}
	for round := 0; len(inbox) > 0 || len(rt.wake) > 0; round++ {
		if round >= maxRounds {
			return nil, fmt.Errorf("ref: exceeded %d rounds", maxRounds)
		}
		// Due nodes: inbox holders plus expired wake-ups, ascending.
		dueSet := map[NodeID]bool{}
		earliest := -1
		for v := range inbox {
			dueSet[v] = true
		}
		for v, r := range rt.wake {
			if r <= round {
				dueSet[v] = true
				delete(rt.wake, v)
			} else if earliest < 0 || r < earliest {
				earliest = r
			}
		}
		if len(dueSet) == 0 {
			round = earliest - 1
			continue
		}
		due := make([]NodeID, 0, len(dueSet))
		for v := range dueSet {
			due = append(due, v)
		}
		sort.Slice(due, func(i, j int) bool { return due[i] < due[j] })

		rt.round = round
		rep.Rounds = round + 1
		var delivered int64
		for _, v := range due {
			if len(inbox[v]) > rep.MaxInbox {
				rep.MaxInbox = len(inbox[v])
			}
		}
		for _, v := range due {
			h.ProbeRound(rt, v, round, inbox[v])
			if rt.violation != nil {
				return nil, rt.violation
			}
		}
		// Deliver: per receiver, ascending sender order — rederived here
		// by sorting (one message per directed edge per round makes the
		// sender a unique key), independently of the engine's scan order.
		inbox = map[NodeID][]Message{}
		for v, msgs := range rt.staged {
			sort.SliceStable(msgs, func(i, j int) bool { return msgs[i].From() < msgs[j].From() })
			inbox[v] = msgs
			delivered += int64(len(msgs))
		}
		rt.staged = map[NodeID][]Message{}
		rt.sentOn = map[[2]NodeID]bool{}
		rep.Messages += delivered
		rep.Bits += msgBits * delivered
		if timeline {
			rep.Timeline = append(rep.Timeline, RoundStat{Round: round, Active: len(due), Messages: delivered})
		}
		if rt.halted {
			rep.Halted = true
			break
		}
	}
	if len(rt.rejections) > 0 {
		rep.Rejections = canonicalRejections(rt.rejections)
	}
	return rep, nil
}

// chaosProbe is a randomized protocol that exercises every delivery
// feature: per-node randomness decides between unicast bursts and full
// broadcasts, future wake-ups, rejections and halts, and every node
// folds its full observation sequence (round, sender, kind, payloads,
// in inbox order) into a fingerprint, so any divergence in content or
// per-receiver order between two executions changes fp.
type chaosProbe struct {
	rounds int
	fp     []uint64
}

func (p *chaosProbe) ProbeInit(rt probeRuntime) {
	p.fp = make([]uint64, rt.N())
	for u := 0; u < rt.N(); u++ {
		if u%3 != 1 {
			rt.WakeAt(NodeID(u), 0)
		}
	}
}

func mix(h, x uint64) uint64 {
	h ^= x
	h *= 0x9e3779b97f4a7c15
	h ^= h >> 29
	return h
}

func (p *chaosProbe) ProbeRound(rt probeRuntime, u NodeID, r int, inbox []Message) {
	for _, m := range inbox {
		p.fp[u] = mix(p.fp[u], uint64(r))
		p.fp[u] = mix(p.fp[u], uint64(m.From()))
		p.fp[u] = mix(p.fp[u], uint64(m.Kind()))
		p.fp[u] = mix(p.fp[u], m.A())
		p.fp[u] = mix(p.fp[u], m.B())
	}
	if r >= p.rounds {
		return
	}
	rng := rt.Rand(u)
	switch rng.IntN(6) {
	case 0, 1:
		rt.Broadcast(u, uint8(rng.IntN(3)), rng.Uint64(), uint64(r))
	case 2:
		nbrs := rt.Neighbors(u)
		for _, v := range nbrs {
			if rng.IntN(2) == 0 {
				rt.Send(u, v, 7, uint64(u), uint64(v)&MaxPayloadB)
			}
		}
	case 3:
		rt.WakeAt(u, r+1+rng.IntN(3))
	case 4:
		rt.Broadcast(u, 9, p.fp[u], uint64(r))
		if rng.IntN(16) == 0 {
			rt.Reject(u, []NodeID{u})
		}
	case 5:
		if rng.IntN(64) == 0 {
			rt.Halt()
		}
		rt.WakeAt(u, r+1)
	}
}

// TestEngineMatchesMapReference drives the production engine — across
// worker counts, shard counts, and forced-parallel thresholds — and the
// map-based reference side by side on randomized instances, requiring
// identical Reports and per-node observation fingerprints.
func TestEngineMatchesMapReference(t *testing.T) {
	type engCfg struct {
		workers, shards, threshold int
	}
	cfgs := []engCfg{
		{workers: 1},
		{workers: 2, threshold: 1},
		{workers: 8, shards: 3, threshold: 1},
		{workers: 8, shards: 1, threshold: 4},
	}
	for trial := 0; trial < 25; trial++ {
		rng := rand.New(rand.NewPCG(uint64(trial), 0xabc))
		n := 30 + rng.IntN(400)
		g := graph.Gnm(n, n+rng.IntN(3*n), graph.NewRand(uint64(trial)*13+1))
		net := NewNetwork(g, uint64(trial)*7+3)
		sess := uint64(trial) * 1000
		timeline := trial%2 == 0

		want := &chaosProbe{rounds: 8 + rng.IntN(10)}
		wantRep, err := runRef(net, want, sess, 100_000, timeline)
		if err != nil {
			t.Fatalf("trial %d: reference: %v", trial, err)
		}

		for _, cfg := range cfgs {
			e := NewEngine(net)
			e.Workers = cfg.workers
			e.Shards = cfg.shards
			e.ParallelThreshold = cfg.threshold
			e.Timeline = timeline
			got := &chaosProbe{rounds: want.rounds}
			gotRep, err := e.RunSession(engineProbe{got}, sess)
			if err != nil {
				t.Fatalf("trial %d %+v: engine: %v", trial, cfg, err)
			}
			if !reflect.DeepEqual(gotRep, wantRep) {
				t.Fatalf("trial %d %+v: report diverges from reference:\nengine:    %+v\nreference: %+v",
					trial, cfg, gotRep, wantRep)
			}
			if !reflect.DeepEqual(got.fp, want.fp) {
				t.Fatalf("trial %d %+v: inbox fingerprints diverge from reference", trial, cfg)
			}
		}
	}
}

// TestEngineMatchesReferenceOnReusedSessions runs several back-to-back
// chaos sessions on ONE engine (exercising pooled-session reuse against
// the from-scratch reference).
func TestEngineMatchesReferenceOnReusedSessions(t *testing.T) {
	g := graph.Gnm(300, 900, graph.NewRand(5))
	net := NewNetwork(g, 11)
	e := NewEngine(net)
	e.Workers = 4
	e.Shards = 2
	e.ParallelThreshold = 1
	for sess := uint64(0); sess < 8; sess++ {
		want := &chaosProbe{rounds: 12}
		wantRep, err := runRef(net, want, sess, 100_000, false)
		if err != nil {
			t.Fatalf("sess %d: reference: %v", sess, err)
		}
		got := &chaosProbe{rounds: 12}
		gotRep, err := e.RunSession(engineProbe{got}, sess)
		if err != nil {
			t.Fatalf("sess %d: engine: %v", sess, err)
		}
		if !reflect.DeepEqual(gotRep, wantRep) || !reflect.DeepEqual(got.fp, want.fp) {
			t.Fatalf("sess %d: reused session diverges from reference", sess)
		}
	}
}
