//go:build race

package congest

// raceEnabled reports that the race detector is instrumenting this build;
// allocation-count pins are skipped because instrumentation changes them.
const raceEnabled = true
