package congest

import (
	"context"
	"errors"
	"sync/atomic"
)

// ErrCanceled is returned by Engine.Run/RunSession when the engine's
// Cancel flag trips: the session stops at the next round boundary
// without producing a report. Callers translate it into their own
// cancellation error (the service maps it through the request context).
var ErrCanceled = errors.New("congest: session canceled")

// CancelFlag is a cooperative cancellation signal shared by a caller and
// any number of engine sessions. The engine polls it once per executed
// round — a single atomic load on the round boundary — so an abandoned
// multi-second run stops within one round of the flag tripping, and an
// untripped flag perturbs nothing: the poll draws no randomness and
// writes no state, so transcripts of uncancelled runs are bit-identical
// to runs without a flag. The zero value is ready to use; methods are
// nil-receiver safe so an unset Engine.Cancel costs one predictable
// branch per round.
type CancelFlag struct{ v atomic.Bool }

// Cancel trips the flag. Idempotent and safe for concurrent use.
func (c *CancelFlag) Cancel() { c.v.Store(true) }

// Canceled reports whether the flag has tripped. Nil-receiver safe.
func (c *CancelFlag) Canceled() bool { return c != nil && c.v.Load() }

// WatchContext arms c when ctx is done, without spawning a goroutine
// (context.AfterFunc registers a callback on the context's own
// machinery). The returned stop function detaches the watch; callers
// must invoke it when the run finishes so a long-lived context does not
// accumulate dead callbacks.
func WatchContext(ctx context.Context, c *CancelFlag) (stop func() bool) {
	return context.AfterFunc(ctx, c.Cancel)
}
