// Package congest implements the CONGEST model of distributed computing as
// a deterministic, round-synchronous simulator. It is the bottom layer of
// the repository: every detector — classical (internal/core), low-probability
// (internal/lowprob), quantum-amplified (internal/quantum), deterministic
// broadcast (internal/deterministic) and the baselines — executes as a
// Handler on this engine. docs/ARCHITECTURE.md describes the delivery
// pipeline in detail.
//
// The model (Peleg 2000, as used by the paper): the network is a simple
// connected n-vertex graph; one computing node per vertex; computation
// proceeds in lockstep rounds; in each round every node may send one
// O(log n)-bit message to each of its neighbors, receives the messages sent
// to it, and performs arbitrary local computation. Nodes know their own
// O(log n)-bit identifier, their incident edges, and (as in the paper) the
// number n of vertices. Runtime.Broadcast additionally models the Broadcast
// CONGEST restriction (one message per round to all neighbors at once);
// it is transcript-equivalent to a Send loop over the adjacency list.
//
// Simulation contract:
//
//   - One Message per directed edge per round, enforced; a second send on
//     the same edge in the same round aborts the run with an error.
//   - A Message carries a kind byte and two payload words — a constant
//     number of identifiers/counters, i.e. O(log n) bits (the host packs
//     all of that into 16 bytes; see Message). Protocols that need to
//     ship a set of identifiers must do so one message per round, which
//     is exactly how congestion becomes round complexity.
//   - Handlers for distinct nodes run concurrently (a goroutine worker pool
//     with a barrier per round maps goroutines onto CONGEST rounds); a
//     handler may only touch its own node's state, send to neighbors, and
//     schedule its own future wake-ups, so execution is transcript-
//     deterministic for a fixed master seed.
//   - Rounds in which no node is active are not simulated (the clock
//     fast-forwards to the next scheduled wake-up) but they still elapse:
//     the reported round count is the CONGEST time of the execution, i.e.
//     the span from round 0 to the last round with activity. This is the
//     quantity the paper's theorems bound.
//
// Pooling and determinism contract: an Engine is safe for concurrent
// RunSession calls — all mutable per-run state lives in pooled Session
// objects whose buffers are stamp-guarded or dirty-list-cleared, so
// back-to-back sessions allocate ~nothing. Transcripts (inbox contents and
// order, reports, rejections) are bit-identical for every Workers, Shards
// and ParallelThreshold setting; per-receiver inbox order is always
// ascending sender. Explicit session tags (RunSession) keep the per-node
// randomness streams — derived from (network seed, node, tag) — independent
// of scheduling, which is what makes concurrent trials reproducible.
// TestEngineMatchesMapReference pins the engine against a map-based
// reference implementation, and the root delivery-determinism suite pins
// every detector's transcript across engine configurations under -race.
package congest
