package congest

import (
	"testing"

	"repro/internal/graph"
)

func TestDropProbLosesMessages(t *testing.T) {
	g := graph.CompleteBipartite(10, 10)
	run := func(drop float64) int64 {
		net := NewNetwork(g, 5)
		e := NewEngine(net)
		e.DropProb = drop
		h := &floodHandler{}
		rep, err := e.Run(h)
		if err != nil {
			t.Fatal(err)
		}
		return rep.Messages
	}
	full, lossy := run(0), run(0.5)
	if lossy >= full {
		t.Fatalf("drop 0.5 delivered %d ≥ %d messages", lossy, full)
	}
	if lossy == 0 {
		t.Fatal("drop 0.5 delivered nothing")
	}
}

func TestDropProbDeterministic(t *testing.T) {
	g := graph.Cycle(20)
	run := func() int64 {
		net := NewNetwork(g, 9)
		e := NewEngine(net)
		e.DropProb = 0.3
		h := &floodHandler{}
		rep, err := e.Run(h)
		if err != nil {
			t.Fatal(err)
		}
		return rep.Messages
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("lossy runs differ: %d vs %d", a, b)
	}
}

func TestTimelineCollection(t *testing.T) {
	g := graph.Path(8)
	net := NewNetwork(g, 2)
	e := NewEngine(net)
	e.Timeline = true
	h := &floodHandler{}
	rep, err := e.Run(h)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Timeline) == 0 {
		t.Fatal("no timeline collected")
	}
	var total int64
	for i, st := range rep.Timeline {
		if st.Active == 0 {
			t.Fatalf("timeline entry %d has no active nodes", i)
		}
		total += st.Messages
	}
	if total != rep.Messages {
		t.Fatalf("timeline messages %d != report messages %d", total, rep.Messages)
	}
}
