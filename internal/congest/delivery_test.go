package congest

import (
	"reflect"
	"runtime/debug"
	"strings"
	"testing"

	"repro/internal/graph"
)

// TestDeliveryInvariantAcrossWorkersAndShards pins the tentpole contract
// of the sharded delivery pipeline at the engine level: the transcript
// probe's full Report and handler state are bit-identical for every
// (Workers, Shards, ParallelThreshold) combination, including thresholds
// that force the parallel handler and scatter paths onto tiny rounds.
func TestDeliveryInvariantAcrossWorkersAndShards(t *testing.T) {
	g := graph.Gnm(2500, 7500, graph.NewRand(21))
	run := func(workers, shards, threshold int) (*Report, *transcriptProbe) {
		e := NewEngine(NewNetwork(g, 77))
		e.Workers = workers
		e.Shards = shards
		e.ParallelThreshold = threshold
		e.Timeline = true
		return runProbe(t, e, 5)
	}
	baseRep, baseH := run(1, 0, 0)
	for _, cfg := range []struct{ workers, shards, threshold int }{
		{1, 4, 1}, // shard state configured but serial (workers=1)
		{2, 1, 1},
		{2, 2, 1},
		{8, 3, 1},
		{8, 8, 1},
		{8, 0, 0}, // defaults: shards derived from workers
	} {
		rep, h := run(cfg.workers, cfg.shards, cfg.threshold)
		if !reflect.DeepEqual(baseRep, rep) {
			t.Fatalf("Report diverges at %+v:\nbase: %+v\ngot:  %+v", cfg, baseRep, rep)
		}
		if !reflect.DeepEqual(baseH.heard, h.heard) || !reflect.DeepEqual(baseH.draws, h.draws) {
			t.Fatalf("handler state diverges at %+v", cfg)
		}
	}
}

// TestDeliverySteadyStateAllocs pins the zero-allocation contract of the
// delivery phase: once an engine's pooled session and a protocol's own
// state are warm, a whole session costs exactly one allocation — the
// escaping Report — for both the serial and the forced-parallel
// (work-stealing handlers + sharded scatter) paths. The delivery phase
// itself contributes zero.
func TestDeliverySteadyStateAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation changes allocation counts")
	}
	defer debug.SetGCPercent(debug.SetGCPercent(-1))
	g := graph.Gnm(2048, 8192, graph.NewRand(7))
	for _, cfg := range []struct {
		name                       string
		workers, shards, threshold int
	}{
		{"serial", 1, 0, 0},
		{"parallel", 4, 4, 1},
	} {
		t.Run(cfg.name, func(t *testing.T) {
			e := NewEngine(NewNetwork(g, 1))
			e.Workers = cfg.workers
			e.Shards = cfg.shards
			e.ParallelThreshold = cfg.threshold
			h := &pingpong{rounds: 8}
			run := func() {
				if _, err := e.Run(h); err != nil {
					t.Fatal(err)
				}
			}
			for i := 0; i < 5; i++ {
				run() // warm the session pool, goroutine cache, buffers
			}
			if avg := testing.AllocsPerRun(20, run); avg > 1 {
				t.Fatalf("allocs/run = %v, want 1 (the escaping Report; delivery must contribute 0)", avg)
			}
		})
	}
}

// TestTimelineSteadyStateAllocs pins the Timeline satellite: collection
// costs one presized buffer per run, independent of the round count.
func TestTimelineSteadyStateAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation changes allocation counts")
	}
	defer debug.SetGCPercent(debug.SetGCPercent(-1))
	g := graph.Cycle(64)
	e := NewEngine(NewNetwork(g, 3))
	e.Timeline = true
	h := &pingpong{rounds: 200} // many rounds: growth would show up
	run := func() {
		rep, err := e.Run(h)
		if err != nil {
			t.Fatal(err)
		}
		if len(rep.Timeline) < 200 {
			t.Fatalf("timeline too short: %d", len(rep.Timeline))
		}
	}
	for i := 0; i < 3; i++ {
		run() // teach the pooled session its round count
	}
	if avg := testing.AllocsPerRun(20, run); avg > 2 {
		t.Fatalf("allocs/run = %v, want ≤ 2 (Report + presized Timeline)", avg)
	}
}

// TestBroadcastMatchesSendLoop pins that Broadcast is exactly a Send
// loop over the adjacency (bandwidth stamps included: a Broadcast after
// a Send on one edge must fail).
func TestBroadcastMatchesSendLoop(t *testing.T) {
	g := graph.Gnm(200, 800, graph.NewRand(9))
	run := func(broadcast bool) (*Report, *floodHandler) {
		e := NewEngine(NewNetwork(g, 4))
		h := &floodHandler{broadcast: broadcast}
		rep, err := e.Run(h)
		if err != nil {
			t.Fatal(err)
		}
		return rep, h
	}
	sendRep, sendH := run(false)
	bcastRep, bcastH := run(true)
	if !reflect.DeepEqual(sendRep, bcastRep) || !reflect.DeepEqual(sendH.heard, bcastH.heard) {
		t.Fatal("Broadcast transcript differs from the equivalent Send loop")
	}
}

// doubleSendBroadcast sends on one edge and then broadcasts from the
// given node, which must trip the bandwidth check.
type doubleSendBroadcast struct{ node NodeID }

func (h doubleSendBroadcast) Init(rt *Runtime) { rt.WakeAt(h.node, 0) }
func (h doubleSendBroadcast) HandleRound(rt *Runtime, u NodeID, r int, inbox []Message) {
	rt.Send(u, rt.Neighbors(u)[0], 1, 0, 0)
	rt.Broadcast(u, 1, 0, 0)
}

func TestBroadcastEnforcesBandwidth(t *testing.T) {
	// Node 2 is the highest-ID node: its CSR out-region is the last one,
	// so a mis-based broadcast payload slice would run past the buffer
	// instead of failing gracefully (regression test).
	for _, node := range []NodeID{0, 2} {
		net := NewNetwork(graph.Path(3), 1)
		_, err := NewEngine(net).Run(doubleSendBroadcast{node: node})
		if err == nil || !strings.Contains(err.Error(), "bandwidth") {
			t.Fatalf("node %d: want bandwidth violation from Send+Broadcast on one edge, got %v", node, err)
		}
	}
}

// payloadOverflow ships a B payload beyond the packed wire capacity.
type payloadOverflow struct{}

func (payloadOverflow) Init(rt *Runtime) { rt.WakeAt(0, 0) }
func (payloadOverflow) HandleRound(rt *Runtime, u NodeID, r int, inbox []Message) {
	rt.Send(u, rt.Neighbors(u)[0], 1, 0, MaxPayloadB+1)
}

func TestPayloadCapEnforced(t *testing.T) {
	net := NewNetwork(graph.Path(2), 1)
	_, err := NewEngine(net).Run(payloadOverflow{})
	if err == nil {
		t.Fatal("want protocol error for B payload beyond MaxPayloadB")
	}
}

// TestPackedMessageRoundTrip pins the 16-byte packing: accessors return
// exactly what Send staged, at the struct size the packing promises.
func TestPackedMessageRoundTrip(t *testing.T) {
	if size := int(reflect.TypeOf(Message{}).Size()); size != 16 {
		t.Fatalf("Message is %d bytes, want 16", size)
	}
	m := packMessage(1234567, 0xAB, ^uint64(0), MaxPayloadB)
	if m.From() != 1234567 || m.Kind() != 0xAB || m.A() != ^uint64(0) || m.B() != MaxPayloadB {
		t.Fatalf("round-trip mismatch: From=%d Kind=%#x A=%#x B=%#x", m.From(), m.Kind(), m.A(), m.B())
	}
}
