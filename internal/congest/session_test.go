package congest

import (
	"fmt"
	"reflect"
	"runtime"
	"sync"
	"testing"

	"repro/internal/graph"
)

// transcriptProbe is a deterministic protocol that exercises every part of
// a Report: it floods a token, draws per-node randomness, rejects at a
// deterministic subset of nodes with witnesses, and re-wakes itself, so
// any scheduling leak shows up as a Report difference.
type transcriptProbe struct {
	heard []int32
	draws []uint64
}

func (p *transcriptProbe) Init(rt *Runtime) {
	n := rt.N()
	p.heard = make([]int32, n)
	p.draws = make([]uint64, n)
	for i := range p.heard {
		p.heard[i] = -1
	}
	p.heard[0] = 0
	rt.WakeAt(0, 0)
}

func (p *transcriptProbe) HandleRound(rt *Runtime, u NodeID, r int, inbox []Message) {
	if p.draws[u] == 0 {
		p.draws[u] = rt.Rand(u).Uint64() | 1
	}
	if p.heard[u] >= 0 && int(p.heard[u]) < r {
		return
	}
	if p.heard[u] < 0 {
		p.heard[u] = int32(r)
		if u%17 == 0 {
			rt.Reject(u, []NodeID{u, NodeID((u + 1) % NodeID(rt.N()))})
		}
	}
	// The random draw travels in A (the full payload word); B is capped
	// at the ⌈log₂ n⌉-bit model word and carries the sender ID.
	for _, v := range rt.Neighbors(u) {
		rt.Send(u, v, 1, p.draws[u], uint64(u))
	}
}

func runProbe(t *testing.T, e *Engine, sess uint64) (*Report, *transcriptProbe) {
	t.Helper()
	h := &transcriptProbe{}
	rep, err := e.RunSession(h, sess)
	if err != nil {
		t.Fatalf("RunSession: %v", err)
	}
	return rep, h
}

// TestTranscriptDeterminismAcrossWorkers pins the determinism contract of
// the engine: for a fixed network seed and session tag, the full Report
// (rounds, messages, bits, congestion, rejections with witnesses,
// timeline) and all handler-visible state are identical whether handlers
// run on one worker or on GOMAXPROCS workers.
func TestTranscriptDeterminismAcrossWorkers(t *testing.T) {
	g := graph.Gnm(3000, 9000, graph.NewRand(11))
	run := func(workers int) (*Report, *transcriptProbe) {
		e := NewEngine(NewNetwork(g, 42))
		e.Workers = workers
		e.Timeline = true
		return runProbe(t, e, 7)
	}
	rep1, h1 := run(1)
	repN, hN := run(max(runtime.GOMAXPROCS(0), 8))
	if !reflect.DeepEqual(rep1, repN) {
		t.Fatalf("Reports differ across worker counts:\n1 worker: %+v\nN workers: %+v", rep1, repN)
	}
	if !reflect.DeepEqual(h1.heard, hN.heard) || !reflect.DeepEqual(h1.draws, hN.draws) {
		t.Fatal("handler state differs across worker counts")
	}
	if len(rep1.Rejections) == 0 {
		t.Fatal("probe produced no rejections; test lost its teeth")
	}
}

// TestRepeatedSessionsOnReusedEngineIdentical pins that pooled session
// reuse leaks no state: the same protocol under the same session tag
// yields byte-identical Reports run after run on one engine, including
// after an aborted (halted and capped) session in between.
func TestRepeatedSessionsOnReusedEngineIdentical(t *testing.T) {
	g := graph.Gnm(500, 1500, graph.NewRand(3))
	e := NewEngine(NewNetwork(g, 9))
	first, h1 := runProbe(t, e, 21)

	// Dirty the pooled session state: a capped runaway session...
	e.MaxRounds = 10
	if _, err := e.RunSession(infiniteLoop{}, 22); err == nil {
		t.Fatal("expected round-cap error")
	}
	// ... and a protocol violation mid-flight.
	if _, err := e.RunSession(bandwidthViolator{}, 23); err == nil {
		t.Fatal("expected bandwidth violation")
	}
	e.MaxRounds = 0

	again, h2 := runProbe(t, e, 21)
	if !reflect.DeepEqual(first, again) {
		t.Fatalf("Reports differ across reused sessions:\nfirst: %+v\nagain: %+v", first, again)
	}
	if !reflect.DeepEqual(h1.draws, h2.draws) {
		t.Fatal("randomness streams differ for identical session tags")
	}
}

// TestConcurrentRunsOnOneEngine exercises the concurrency contract: many
// goroutines running sessions on one engine simultaneously each get the
// transcript they would have gotten alone.
func TestConcurrentRunsOnOneEngine(t *testing.T) {
	g := graph.Gnm(400, 1200, graph.NewRand(5))
	e := NewEngine(NewNetwork(g, 77))

	want := make([]*Report, 16)
	for i := range want {
		want[i], _ = runProbe(t, e, uint64(100+i))
	}

	var wg sync.WaitGroup
	got := make([]*Report, len(want))
	errs := make([]error, len(want))
	for i := range want {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			h := &transcriptProbe{}
			got[i], errs[i] = e.RunSession(h, uint64(100+i))
		}(i)
	}
	wg.Wait()
	for i := range want {
		if errs[i] != nil {
			t.Fatalf("concurrent run %d: %v", i, errs[i])
		}
		if !reflect.DeepEqual(want[i], got[i]) {
			t.Fatalf("concurrent run %d diverged from its solo transcript", i)
		}
	}
}

// gapProtocol pins the fast-forward semantics: activity at rounds 0 and 1,
// then an idle gap to round 400, one more active round there, then a
// scheduled wake at 900 that does nothing.
type gapProtocol struct{ ran []int }

func (p *gapProtocol) Init(rt *Runtime) { rt.WakeAt(0, 0) }
func (p *gapProtocol) HandleRound(rt *Runtime, u NodeID, r int, inbox []Message) {
	p.ran = append(p.ran, r)
	switch r {
	case 0:
		rt.Send(u, rt.Neighbors(u)[0], 1, 0, 0) // forces round 1 at the receiver
		rt.WakeAt(u, 400)
	case 400:
		rt.WakeAt(u, 900)
	}
}

// TestIdleGapsElapseInRounds pins the round-accounting contract stated on
// Report.Rounds: idle gaps are not simulated, but they elapse in CONGEST
// time and are counted.
func TestIdleGapsElapseInRounds(t *testing.T) {
	h := &gapProtocol{}
	rep, err := NewEngine(NewNetwork(graph.Path(2), 1)).Run(h)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	// Node 0 runs at rounds 0, 400, 900; node 1 (the receiver) at round 1.
	want := []int{0, 1, 400, 900}
	if fmt.Sprint(h.ran) != fmt.Sprint(want) {
		t.Fatalf("executed rounds %v, want %v", h.ran, want)
	}
	if rep.Rounds != 901 {
		t.Fatalf("Rounds = %d, want 901: idle gaps elapse (and are counted) even though they are not simulated", rep.Rounds)
	}
}
