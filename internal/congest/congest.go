package congest

import (
	"fmt"
	"math/rand/v2"

	"repro/internal/graph"
)

// NodeID identifies a node; it coincides with the vertex ID of the
// underlying graph.
type NodeID = graph.NodeID

// Message is the unit of communication: a kind byte plus two payload
// words A and B, i.e. O(log n) bits at the model level (MessageBits is
// what Report.Bits charges, and it is unchanged by how the host stores a
// message). At the host level the struct is packed into 16 bytes:
//
//	w0 = A                                  (a full 64-bit payload word)
//	w1 = Kind(8) | From(28) | B(28)         (kind in the high byte)
//
// compared to the naive layout (kind byte + two words + sender, 24 bytes
// padded) this halves the memory traffic of the inbox and out buffers,
// which the delivery pipeline streams every round. The packing caps the
// network size and the B payload at 2^28 (MaxNodes, MaxPayloadB); both
// are model-faithful bounds — From and B are identifier/counter words of
// ⌈log₂ n⌉ bits — and far beyond what a simulation can hold in memory.
// A keeps the full word because protocols legitimately pack two
// identifiers into it (e.g. an edge key). Read fields through the
// From/Kind/A/B accessors; construction happens inside Send/Broadcast.
type Message struct {
	w0, w1 uint64
}

const (
	msgFieldBits = 28
	msgFieldMask = 1<<msgFieldBits - 1
	msgKindShift = 2 * msgFieldBits

	// MaxNodes is the largest network the packed wire format addresses.
	MaxNodes = 1 << msgFieldBits
	// MaxPayloadB is the capacity of the second payload word B.
	MaxPayloadB = 1<<msgFieldBits - 1
)

// packMessage packs a staged message. Callers guarantee from < MaxNodes
// (enforced by NewNetwork) and b <= MaxPayloadB (enforced by Send).
func packMessage(from NodeID, kind uint8, a, b uint64) Message {
	return Message{
		w0: a,
		w1: uint64(kind)<<msgKindShift | uint64(uint32(from))<<msgFieldBits | b,
	}
}

// From returns the sender, filled in by the runtime at staging time.
func (m Message) From() NodeID { return NodeID(m.w1 >> msgFieldBits & msgFieldMask) }

// Kind returns the kind byte.
func (m Message) Kind() uint8 { return uint8(m.w1 >> msgKindShift) }

// A returns the first payload word.
func (m Message) A() uint64 { return m.w0 }

// B returns the second payload word.
func (m Message) B() uint64 { return m.w1 & msgFieldMask }

// Handler is a distributed protocol: per-node state lives inside the
// implementation, indexed by node ID; the engine guarantees that
// HandleRound is invoked at most once per node per round and that
// invocations for distinct nodes never share state unless the handler
// itself shares it (it must not).
type Handler interface {
	// Init is called once, sequentially, before round 0. It typically
	// allocates per-node state and schedules initial wake-ups via
	// rt.WakeAt.
	Init(rt *Runtime)
	// HandleRound is called for node u at round r with the messages
	// delivered to u at the beginning of r. The inbox slice is only valid
	// for the duration of the call.
	HandleRound(rt *Runtime, u NodeID, r int, inbox []Message)
}

// Rejection records a node's reject output together with the witness cycle
// it can reconstruct (possibly nil when the protocol offers none).
type Rejection struct {
	Node    NodeID
	Witness []graph.NodeID
}

// Report summarizes one engine run.
type Report struct {
	// Rounds is the CONGEST time of the execution: the last round in which
	// any node was active, plus one. Idle gaps before a scheduled wake-up
	// are skipped by the simulator (never executed) but still elapse on the
	// model's clock and are therefore included — a protocol that wakes a
	// node at round 100 and does nothing else reports Rounds = 101. This is
	// the quantity the paper's theorems bound; see the package comment and
	// TestIdleGapsElapseInRounds.
	Rounds int
	// Messages is the total number of messages delivered.
	Messages int64
	// Bits is the model-level bandwidth consumed: every message carries a
	// kind byte plus up to two identifiers/counters, i.e.
	// 8 + 2·⌈log₂ n⌉ bits in the O(log n)-bit regime of the model.
	Bits int64
	// MaxInbox is the maximum number of messages received by a single node
	// in a single round (a congestion measure).
	MaxInbox int
	// Rejections lists all reject outputs, in canonical order (by node,
	// then witness) so the report is identical for every worker count.
	Rejections []Rejection
	// Halted reports whether a handler requested a global stop.
	Halted bool
	// Timeline holds per-round statistics when Engine.Timeline is set.
	Timeline []RoundStat
	// PerComp splits Rounds and Messages by component when the engine has a
	// component map (Engine.SetComponents); nil otherwise. Per-component
	// Bits are deliberately not tracked here: the model charges
	// MessageBits(n) for the component's own n, which only the caller
	// knows (Report.Bits charges the fused network's n and is therefore
	// NOT the sum of the per-component costs).
	PerComp []CompStats
}

// CompStats is the per-component slice of a fused session's cost: the
// component's own CONGEST time (the last round in which one of its nodes
// was active, plus one — idle gaps elapse exactly as in Report.Rounds)
// and the messages its nodes sent. Components of a disjoint union never
// exchange messages, so these equal the counts a solo run of the
// component would report.
type CompStats struct {
	Rounds   int
	Messages int64
}

// MessageBits returns the model-level size of one message on an n-node
// network: a kind byte plus two ⌈log₂ n⌉-bit words. This is the cost the
// paper's bandwidth bound charges and is deliberately decoupled from the
// 16 host bytes a packed Message occupies (see Message): Report.Bits
// tracks the model, not the simulator's memory layout.
func MessageBits(n int) int64 {
	bits := 1
	for 1<<bits < n {
		bits++
	}
	return int64(8 + 2*bits)
}

// Accumulate adds r's counters into t (for sequential protocol
// composition). Per-component stats accumulate elementwise.
func (t *Report) Accumulate(r *Report) {
	t.Rounds += r.Rounds
	t.Messages += r.Messages
	t.Bits += r.Bits
	if r.MaxInbox > t.MaxInbox {
		t.MaxInbox = r.MaxInbox
	}
	t.Rejections = append(t.Rejections, r.Rejections...)
	t.Halted = t.Halted || r.Halted
	if r.PerComp != nil {
		if t.PerComp == nil {
			t.PerComp = make([]CompStats, len(r.PerComp))
		}
		for c := range r.PerComp {
			t.PerComp[c].Rounds += r.PerComp[c].Rounds
			t.PerComp[c].Messages += r.PerComp[c].Messages
		}
	}
}

// Network is the immutable execution substrate: topology plus model
// parameters shared by all sessions run on it.
type Network struct {
	g    *graph.Graph
	seed uint64
	// seedBase, when non-nil, overrides the per-node half of the seed
	// derivation: node u's streams derive from seedBase[u] instead of
	// SeedBase(seed, u). Fused networks use it to give every component the
	// node streams of its own solo network (see NewNetworkSeedBases).
	seedBase []uint64
}

// NewNetwork wraps a graph as a CONGEST network with the given master seed
// (per-node randomness streams are derived from it). Networks beyond
// MaxNodes vertices are rejected: the packed wire format addresses
// senders with 28 bits, a bound no graph that fits in simulator memory
// approaches.
func NewNetwork(g *graph.Graph, seed uint64) *Network {
	if g.NumNodes() > MaxNodes {
		panic(fmt.Sprintf("congest: %d nodes exceeds the %d-node cap of the packed wire format", g.NumNodes(), MaxNodes))
	}
	return &Network{g: g, seed: seed}
}

// Graph returns the underlying topology.
func (n *Network) Graph() *graph.Graph { return n.g }

// NumNodes returns the network size (global knowledge, as in the paper).
func (n *Network) NumNodes() int { return n.g.NumNodes() }

// Seed returns the master seed.
func (n *Network) Seed() uint64 { return n.seed }

// NewNetworkSeedBases wraps a graph as a CONGEST network whose node
// randomness streams derive from an explicit per-node seed base instead
// of a single master seed: node u's stream for session sess seeds from
// bases[u] combined with the session tag, exactly as a NewNetwork(seed)
// node whose SeedBase(seed, u) equals bases[u]. Fused disjoint-union
// networks use this to make every component's node streams byte-identical
// to the component's own solo network.
func NewNetworkSeedBases(g *graph.Graph, bases []uint64) *Network {
	if len(bases) != g.NumNodes() {
		panic(fmt.Sprintf("congest: %d seed bases for %d nodes", len(bases), g.NumNodes()))
	}
	n := NewNetwork(g, 0)
	n.seedBase = bases
	return n
}

// SeedBase returns the per-node half of the seed derivation: the value
// nodeSeed folds with the session tag for node u on a network with the
// given master seed. It is exported so fused networks can reproduce a
// solo network's node streams via NewNetworkSeedBases.
func SeedBase(seed uint64, u NodeID) uint64 {
	return seed ^ (uint64(u)+1)*0x9e3779b97f4a7c15
}

// nodeSeedXor derives the second PCG word from the first in every node
// stream (see nodeSeed).
const nodeSeedXor = 0x94d049bb133111eb

// nodeSeed derives the first PCG seed word of node u's deterministic
// random stream for session sess. It is the single source of truth for
// the derivation: Session.Rand reseeds its pooled per-node generators
// from it. (The engine's fault-injection stream uses u = -1, which is
// outside any seed-base override and always derives from the master
// seed.)
func (n *Network) nodeSeed(u NodeID, sess uint64) uint64 {
	base := SeedBase(n.seed, u)
	if n.seedBase != nil && u >= 0 {
		base = n.seedBase[u]
	}
	return base ^ (sess+1)*0xbf58476d1ce4e5b9
}

// nodeRand derives the deterministic random stream of node u for session
// sess.
func (n *Network) nodeRand(u NodeID, sess uint64) *rand.Rand {
	s := n.nodeSeed(u, sess)
	return rand.New(rand.NewPCG(s, s^nodeSeedXor))
}

// errProtocol wraps protocol-level violations (bandwidth, locality).
type errProtocol struct{ msg string }

func (e *errProtocol) Error() string { return "congest: " + e.msg }

func protocolErrorf(format string, args ...any) error {
	return &errProtocol{msg: fmt.Sprintf(format, args...)}
}
