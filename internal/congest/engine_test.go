package congest

import (
	"strings"
	"testing"

	"repro/internal/graph"
)

// floodHandler floods a token from node 0; every node records the round at
// which it first heard the token. Used to check basic delivery and timing;
// the broadcast flag switches the flood from a per-edge Send loop to the
// engine's Broadcast fast path (transcripts must be identical).
type floodHandler struct {
	heard     []int32 // round of first receipt, -1 otherwise
	broadcast bool
}

func (f *floodHandler) Init(rt *Runtime) {
	f.heard = make([]int32, rt.N())
	for i := range f.heard {
		f.heard[i] = -1
	}
	f.heard[0] = 0
	rt.WakeAt(0, 0)
}

func (f *floodHandler) HandleRound(rt *Runtime, u NodeID, r int, inbox []Message) {
	if f.heard[u] >= 0 && int(f.heard[u]) < r {
		return // already flooded on a previous round
	}
	if f.heard[u] < 0 {
		f.heard[u] = int32(r)
	}
	if f.broadcast {
		rt.Broadcast(u, 1, uint64(u), 0)
		return
	}
	for _, v := range rt.Neighbors(u) {
		rt.Send(u, v, 1, uint64(u), 0)
	}
}

func TestFloodReachesAllAtBFSDistance(t *testing.T) {
	g := graph.Path(6)
	net := NewNetwork(g, 1)
	h := &floodHandler{}
	rep, err := NewEngine(net).Run(h)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	want := g.BFSDistances(0)
	for v := 0; v < 6; v++ {
		// Node v first hears the token one round after the sender at
		// distance d-1 sends, i.e. at round d (send at round d-1 delivers
		// at round d).
		if v == 0 {
			continue
		}
		if f := h.heard[v]; f != want[v] {
			t.Errorf("node %d heard at round %d, want %d", v, f, want[v])
		}
	}
	// Path flooding: last node hears at round 5, replies nothing new; the
	// executed rounds should be distance+1 (its own handler run).
	if rep.Rounds < 5 || rep.Rounds > 7 {
		t.Errorf("Rounds = %d, want ≈ 6", rep.Rounds)
	}
	if rep.Messages == 0 {
		t.Error("no messages recorded")
	}
}

// bandwidthViolator sends twice on the same edge in one round.
type bandwidthViolator struct{}

func (bandwidthViolator) Init(rt *Runtime) { rt.WakeAt(0, 0) }
func (bandwidthViolator) HandleRound(rt *Runtime, u NodeID, r int, inbox []Message) {
	v := rt.Neighbors(u)[0]
	rt.Send(u, v, 1, 0, 0)
	rt.Send(u, v, 1, 1, 0)
}

func TestBandwidthViolationDetected(t *testing.T) {
	net := NewNetwork(graph.Path(2), 1)
	_, err := NewEngine(net).Run(bandwidthViolator{})
	if err == nil || !strings.Contains(err.Error(), "bandwidth") {
		t.Fatalf("want bandwidth violation, got %v", err)
	}
}

// nonNeighborSender sends to a node that is not adjacent.
type nonNeighborSender struct{}

func (nonNeighborSender) Init(rt *Runtime) { rt.WakeAt(0, 0) }
func (nonNeighborSender) HandleRound(rt *Runtime, u NodeID, r int, inbox []Message) {
	rt.Send(u, 2, 1, 0, 0) // path 0-1-2: node 2 is not adjacent to 0
}

func TestLocalityViolationDetected(t *testing.T) {
	net := NewNetwork(graph.Path(3), 1)
	_, err := NewEngine(net).Run(nonNeighborSender{})
	if err == nil || !strings.Contains(err.Error(), "non-neighbor") {
		t.Fatalf("want locality violation, got %v", err)
	}
}

// sameRoundBothDirections exercises that u→v and v→u in the same round are
// both legal (one message per *directed* edge).
type sameRoundBothDirections struct{ got [2]bool }

func (s *sameRoundBothDirections) Init(rt *Runtime) {
	rt.WakeAt(0, 0)
	rt.WakeAt(1, 0)
}

func (s *sameRoundBothDirections) HandleRound(rt *Runtime, u NodeID, r int, inbox []Message) {
	if r == 0 {
		rt.Send(u, 1-u, 1, uint64(u), 0)
		return
	}
	for _, m := range inbox {
		s.got[u] = s.got[u] || m.From() == 1-u
	}
}

func TestDirectedEdgeBandwidth(t *testing.T) {
	net := NewNetwork(graph.Path(2), 1)
	h := &sameRoundBothDirections{}
	if _, err := NewEngine(net).Run(h); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !h.got[0] || !h.got[1] {
		t.Fatalf("messages lost: %+v", h.got)
	}
}

// wakeScheduler checks fast-forward over idle gaps: node 0 wakes at round
// 100 only.
type wakeScheduler struct{ ranAt []int }

func (w *wakeScheduler) Init(rt *Runtime) { rt.WakeAt(0, 100) }
func (w *wakeScheduler) HandleRound(rt *Runtime, u NodeID, r int, inbox []Message) {
	w.ranAt = append(w.ranAt, r)
}

func TestWakeFastForward(t *testing.T) {
	net := NewNetwork(graph.Path(2), 1)
	h := &wakeScheduler{}
	rep, err := NewEngine(net).Run(h)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(h.ranAt) != 1 || h.ranAt[0] != 100 {
		t.Fatalf("ranAt = %v, want [100]", h.ranAt)
	}
	if rep.Rounds != 101 {
		t.Fatalf("Rounds = %d, want 101 (idle gaps elapse)", rep.Rounds)
	}
}

// pastWake scheduling must fail.
type pastWake struct{}

func (pastWake) Init(rt *Runtime) { rt.WakeAt(0, 5) }
func (pastWake) HandleRound(rt *Runtime, u NodeID, r int, inbox []Message) {
	rt.WakeAt(u, r-1)
}

func TestPastWakeRejected(t *testing.T) {
	net := NewNetwork(graph.Path(2), 1)
	_, err := NewEngine(net).Run(pastWake{})
	if err == nil || !strings.Contains(err.Error(), "past round") {
		t.Fatalf("want past-wake violation, got %v", err)
	}
}

// haltingHandler requests a halt at round 3 while otherwise ping-ponging
// forever.
type haltingHandler struct{}

func (haltingHandler) Init(rt *Runtime) { rt.WakeAt(0, 0) }
func (haltingHandler) HandleRound(rt *Runtime, u NodeID, r int, inbox []Message) {
	if r == 3 {
		rt.Halt()
		return
	}
	rt.Send(u, rt.Neighbors(u)[0], 1, 0, 0)
}

func TestHaltStopsSession(t *testing.T) {
	net := NewNetwork(graph.Path(2), 1)
	rep, err := NewEngine(net).Run(haltingHandler{})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !rep.Halted {
		t.Fatal("Halted not reported")
	}
	if rep.Rounds != 4 {
		t.Fatalf("Rounds = %d, want 4", rep.Rounds)
	}
}

// infiniteLoop never stops; the round cap must fire.
type infiniteLoop struct{}

func (infiniteLoop) Init(rt *Runtime) { rt.WakeAt(0, 0) }
func (infiniteLoop) HandleRound(rt *Runtime, u NodeID, r int, inbox []Message) {
	rt.Send(u, rt.Neighbors(u)[0], 1, 0, 0)
}

func TestMaxRoundsCap(t *testing.T) {
	net := NewNetwork(graph.Path(2), 1)
	e := NewEngine(net)
	e.MaxRounds = 50
	_, err := e.Run(infiniteLoop{})
	if err == nil || !strings.Contains(err.Error(), "exceeded") {
		t.Fatalf("want round-cap error, got %v", err)
	}
}

// rejecter rejects immediately with a witness.
type rejecter struct{}

func (rejecter) Init(rt *Runtime) { rt.WakeAt(3, 0) }
func (rejecter) HandleRound(rt *Runtime, u NodeID, r int, inbox []Message) {
	rt.Reject(u, []NodeID{1, 2, 3})
}

func TestRejectionRecorded(t *testing.T) {
	net := NewNetwork(graph.Path(5), 1)
	rep, err := NewEngine(net).Run(rejecter{})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(rep.Rejections) != 1 || rep.Rejections[0].Node != 3 {
		t.Fatalf("Rejections = %+v", rep.Rejections)
	}
	if len(rep.Rejections[0].Witness) != 3 {
		t.Fatalf("witness = %v", rep.Rejections[0].Witness)
	}
}

// stopOnRejectHandler floods forever but rejects at round 2.
type stopOnRejectHandler struct{}

func (stopOnRejectHandler) Init(rt *Runtime) { rt.WakeAt(0, 0) }
func (stopOnRejectHandler) HandleRound(rt *Runtime, u NodeID, r int, inbox []Message) {
	if r == 2 && u == 0 {
		rt.Reject(u, nil)
	}
	rt.Send(u, rt.Neighbors(u)[0], 1, 0, 0)
}

func TestStopOnReject(t *testing.T) {
	net := NewNetwork(graph.Path(2), 1)
	e := NewEngine(net)
	e.StopOnReject = true
	e.MaxRounds = 1000
	rep, err := e.Run(stopOnRejectHandler{})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if rep.Rounds != 3 {
		t.Fatalf("Rounds = %d, want 3", rep.Rounds)
	}
}

// randDeterminism: per-node streams are reproducible across sessions of the
// same network+seed and differ across nodes.
type randProbe struct{ draws []uint64 }

func (p *randProbe) Init(rt *Runtime) {
	p.draws = make([]uint64, rt.N())
	for u := 0; u < rt.N(); u++ {
		rt.WakeAt(NodeID(u), 0)
	}
}

func (p *randProbe) HandleRound(rt *Runtime, u NodeID, r int, inbox []Message) {
	p.draws[u] = rt.Rand(u).Uint64()
}

func TestPerNodeRandDeterminism(t *testing.T) {
	g := graph.Cycle(8)
	run := func(seed uint64) []uint64 {
		net := NewNetwork(g, seed)
		h := &randProbe{}
		if _, err := NewEngine(net).Run(h); err != nil {
			t.Fatalf("Run: %v", err)
		}
		return h.draws
	}
	a, b := run(7), run(7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("node %d draws differ across identical runs", i)
		}
	}
	c := run(8)
	same := 0
	for i := range a {
		if a[i] == c[i] {
			same++
		}
	}
	if same == len(a) {
		t.Fatal("different seeds produced identical draws")
	}
	distinct := make(map[uint64]bool)
	for _, d := range a {
		distinct[d] = true
	}
	if len(distinct) < len(a) {
		t.Fatal("per-node streams collide")
	}
}

func TestSessionStreamsDiffer(t *testing.T) {
	net := NewNetwork(graph.Cycle(4), 9)
	e := NewEngine(net)
	h1 := &randProbe{}
	if _, err := e.Run(h1); err != nil {
		t.Fatal(err)
	}
	h2 := &randProbe{}
	if _, err := e.Run(h2); err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range h1.draws {
		if h1.draws[i] != h2.draws[i] {
			same = false
		}
	}
	if same {
		t.Fatal("two sessions reused identical random streams")
	}
}

func TestReportAccumulate(t *testing.T) {
	a := &Report{Rounds: 3, Messages: 10, MaxInbox: 2}
	b := &Report{Rounds: 4, Messages: 5, MaxInbox: 7,
		Rejections: []Rejection{{Node: 1}}, Halted: true}
	a.Accumulate(b)
	if a.Rounds != 7 || a.Messages != 15 || a.MaxInbox != 7 {
		t.Fatalf("Accumulate: %+v", a)
	}
	if len(a.Rejections) != 1 || !a.Halted {
		t.Fatalf("Accumulate: %+v", a)
	}
}

// parallelStress runs a big flood with many workers to exercise the
// concurrent path under the race detector.
func TestParallelFloodStress(t *testing.T) {
	rng := graph.NewRand(4)
	g := graph.Gnm(2000, 6000, rng)
	net := NewNetwork(g, 4)
	e := NewEngine(net)
	e.Workers = 8
	h := &floodHandler{}
	if _, err := e.Run(h); err != nil {
		t.Fatalf("Run: %v", err)
	}
	comp, _ := g.ConnectedComponents()
	for v := 0; v < g.NumNodes(); v++ {
		if comp[v] == comp[0] && h.heard[v] < 0 {
			t.Fatalf("node %d in component of 0 never heard the flood", v)
		}
	}
}

func TestBitsAccounting(t *testing.T) {
	g := graph.Path(6)
	net := NewNetwork(g, 1)
	h := &floodHandler{}
	rep, err := NewEngine(net).Run(h)
	if err != nil {
		t.Fatal(err)
	}
	want := rep.Messages * MessageBits(6)
	if rep.Bits != want {
		t.Fatalf("Bits = %d, want %d (messages %d × %d)", rep.Bits, want, rep.Messages, MessageBits(6))
	}
	// MessageBits: 8 + 2·⌈log₂ n⌉.
	for _, tc := range []struct {
		n    int
		want int64
	}{{2, 10}, {4, 12}, {5, 14}, {1024, 28}, {1025, 30}} {
		if got := MessageBits(tc.n); got != tc.want {
			t.Errorf("MessageBits(%d) = %d, want %d", tc.n, got, tc.want)
		}
	}
}
