package congest

import (
	"errors"
	"reflect"
	"runtime/debug"
	"testing"
	"time"

	"repro/internal/graph"
)

// TestObserveHookFires pins the Observe contract: one callback per
// completed session, carrying the report's own round count and a
// positive wall clock, and an identical report with or without the hook.
func TestObserveHookFires(t *testing.T) {
	g := graph.Cycle(64)

	bare := NewEngine(NewNetwork(g, 3))
	wantRep, err := bare.Run(&pingpong{rounds: 8})
	if err != nil {
		t.Fatal(err)
	}

	eng := NewEngine(NewNetwork(g, 3))
	var calls int
	var gotRounds int
	var gotWall time.Duration
	eng.Observe = func(rounds int, wall time.Duration) {
		calls++
		gotRounds = rounds
		gotWall = wall
	}
	rep, err := eng.Run(&pingpong{rounds: 8})
	if err != nil {
		t.Fatal(err)
	}
	if calls != 1 {
		t.Fatalf("Observe called %d times, want 1", calls)
	}
	if gotRounds != rep.Rounds {
		t.Fatalf("Observe rounds = %d, report says %d", gotRounds, rep.Rounds)
	}
	if gotWall <= 0 {
		t.Fatalf("Observe wall = %v, want > 0", gotWall)
	}
	if !reflect.DeepEqual(rep, wantRep) {
		t.Fatalf("observed report differs from bare report:\n got %+v\nwant %+v", rep, wantRep)
	}
}

// TestObserveSkipsFailedSessions pins that cancellation (and any other
// session error) does not invoke the hook.
func TestObserveSkipsFailedSessions(t *testing.T) {
	eng := NewEngine(NewNetwork(graph.Path(2), 1))
	eng.Cancel = &CancelFlag{}
	eng.Cancel.Cancel()
	eng.Observe = func(rounds int, wall time.Duration) {
		t.Errorf("Observe fired for a canceled session (rounds=%d)", rounds)
	}
	if _, err := eng.Run(&spinner{notify: make(chan struct{})}); !errors.Is(err, ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
}

// TestObserveSteadyStateAllocs pins that an ARMED observer keeps the
// session at the disarmed allocation budget: the hook is a plain
// closure call outside the round loop, so observation costs zero
// allocations either way.
func TestObserveSteadyStateAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation changes allocation counts")
	}
	defer debug.SetGCPercent(debug.SetGCPercent(-1))
	g := graph.Gnm(2048, 8192, graph.NewRand(7))
	for _, armed := range []bool{false, true} {
		name := "disarmed"
		if armed {
			name = "armed"
		}
		t.Run(name, func(t *testing.T) {
			e := NewEngine(NewNetwork(g, 1))
			if armed {
				var sink int64
				e.Observe = func(rounds int, wall time.Duration) { sink += int64(rounds) + int64(wall) }
			}
			h := &pingpong{rounds: 8}
			run := func() {
				if _, err := e.Run(h); err != nil {
					t.Fatal(err)
				}
			}
			for i := 0; i < 5; i++ {
				run()
			}
			if avg := testing.AllocsPerRun(20, run); avg > 1 {
				t.Fatalf("allocs/run = %v, want ≤ 1 (the escaping Report)", avg)
			}
		})
	}
}
