package store

import (
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/faultpoint"
	"repro/internal/graph"
)

// testGraph builds a deterministic random graph.
func testGraph(n, degree int, seed int64) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	edges := make([][2]graph.NodeID, 0, n*degree/2)
	for i := 0; i < n*degree/2; i++ {
		u := graph.NodeID(rng.Intn(n))
		v := graph.NodeID(rng.Intn(n))
		edges = append(edges, [2]graph.NodeID{u, v})
	}
	return graph.FromEdges(n, edges)
}

// checkState asserts the store holds exactly the graphs in want, with
// byte-equal fingerprints.
func checkState(t *testing.T, st *Store, want map[string]*graph.Graph) {
	t.Helper()
	names := st.Names()
	if len(names) != len(want) {
		t.Fatalf("store holds %d graphs %v, want %d", len(names), names, len(want))
	}
	for name, wg := range want {
		g, ok := st.Get(name)
		if !ok {
			t.Fatalf("store lost graph %q", name)
		}
		if g.Fingerprint() != wg.Fingerprint() {
			t.Fatalf("graph %q recovered with fingerprint %s, want %s", name, g.Fingerprint(), wg.Fingerprint())
		}
	}
}

// quietOpts returns test Options that swallow warnings into logged, if
// given.
func quietOpts(logged *[]string) Options {
	return Options{
		CompactThreshold: -1,
		Logf: func(format string, args ...any) {
			if logged != nil {
				*logged = append(*logged, fmt.Sprintf(format, args...))
			}
		},
	}
}

func TestOpenEmpty(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir, quietOpts(nil))
	if err != nil {
		t.Fatalf("Open empty dir: %v", err)
	}
	if names := st.Names(); len(names) != 0 {
		t.Fatalf("fresh store holds %v", names)
	}
	if err := st.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
}

func TestRoundtrip(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir, quietOpts(nil))
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]*graph.Graph{}

	for i := 0; i < 4; i++ {
		name := fmt.Sprintf("g%d", i)
		g := testGraph(20+i*7, 3, int64(i))
		if err := st.Create(name, g); err != nil {
			t.Fatalf("Create %s: %v", name, err)
		}
		want[name] = g
	}
	extra := [][2]graph.NodeID{{1, 19}, {0, 25}, {3, 3}, {2, 7}}
	ng, err := st.AddEdges("g1", extra)
	if err != nil {
		t.Fatalf("AddEdges: %v", err)
	}
	ref, err := want["g1"].WithEdges(extra)
	if err != nil {
		t.Fatal(err)
	}
	if ng.Fingerprint() != ref.Fingerprint() {
		t.Fatalf("AddEdges result diverges from WithEdges reference")
	}
	want["g1"] = ref
	if err := st.Delete("g3"); err != nil {
		t.Fatalf("Delete: %v", err)
	}
	delete(want, "g3")

	checkState(t, st, want)
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	st2, err := Open(dir, quietOpts(nil))
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer st2.Close()
	checkState(t, st2, want)
	if s := st2.Stats(); s.Recovered != 6 || s.TornTail {
		t.Fatalf("recovery stats = %+v, want 6 replayed records and no torn tail", s)
	}
}

func TestCompactAndRecover(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir, quietOpts(nil))
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]*graph.Graph{}
	for i := 0; i < 3; i++ {
		name := fmt.Sprintf("g%d", i)
		g := testGraph(30, 4, int64(100+i))
		if err := st.Create(name, g); err != nil {
			t.Fatal(err)
		}
		want[name] = g
	}
	if err := st.Compact(); err != nil {
		t.Fatalf("Compact: %v", err)
	}
	if s := st.Stats(); s.Compactions != 1 || s.WALBytes != magicLen {
		t.Fatalf("post-compact stats = %+v, want 1 compaction and an empty journal", s)
	}
	// Mutations after compaction land in the fresh journal.
	ng, err := st.AddEdges("g0", [][2]graph.NodeID{{0, 29}})
	if err != nil {
		t.Fatal(err)
	}
	want["g0"] = ng
	if err := st.Delete("g2"); err != nil {
		t.Fatal(err)
	}
	delete(want, "g2")
	st.Close()

	st2, err := Open(dir, quietOpts(nil))
	if err != nil {
		t.Fatalf("reopen after compaction: %v", err)
	}
	defer st2.Close()
	checkState(t, st2, want)
	if s := st2.Stats(); s.Recovered != 2 {
		t.Fatalf("replayed %d records, want 2 (snapshot covers the rest)", s.Recovered)
	}
}

func TestAutoCompact(t *testing.T) {
	dir := t.TempDir()
	opts := quietOpts(nil)
	opts.CompactThreshold = 512
	st, err := Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]*graph.Graph{}
	for i := 0; i < 12; i++ {
		name := fmt.Sprintf("g%d", i)
		g := testGraph(40, 4, int64(i))
		if err := st.Create(name, g); err != nil {
			t.Fatal(err)
		}
		want[name] = g
	}
	if s := st.Stats(); s.Compactions == 0 {
		t.Fatalf("no automatic compaction after %d bytes of journal", s.WALBytes)
	}
	st.Close()

	st2, err := Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	checkState(t, st2, want)
}

// tornTailCase mutates the journal file to simulate one torn-append
// shape.
type tornTailCase struct {
	name string
	tear func(t *testing.T, path string)
}

func tornTailCases() []tornTailCase {
	return []tornTailCase{
		{"partial-header", func(t *testing.T, path string) {
			appendBytes(t, path, []byte{0x10, 0x00, 0x00})
		}},
		{"partial-payload", func(t *testing.T, path string) {
			frame := appendFrame(nil, []byte("payload-that-will-be-cut"))
			appendBytes(t, path, frame[:len(frame)-5])
		}},
		{"last-frame-bad-crc", func(t *testing.T, path string) {
			data, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			data[len(data)-1] ^= 0xff
			if err := os.WriteFile(path, data, 0o644); err != nil {
				t.Fatal(err)
			}
		}},
	}
}

func appendBytes(t *testing.T, path string, b []byte) {
	t.Helper()
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(b); err != nil {
		t.Fatal(err)
	}
	f.Close()
}

func TestTornTailTruncated(t *testing.T) {
	for _, tc := range tornTailCases() {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			st, err := Open(dir, quietOpts(nil))
			if err != nil {
				t.Fatal(err)
			}
			want := map[string]*graph.Graph{}
			for i := 0; i < 3; i++ {
				name := fmt.Sprintf("g%d", i)
				g := testGraph(25, 3, int64(i))
				if err := st.Create(name, g); err != nil {
					t.Fatal(err)
				}
				if tc.name != "last-frame-bad-crc" || i < 2 {
					want[name] = g
				}
			}
			st.Close()
			// last-frame-bad-crc destroys the FINAL acknowledged record: with
			// a real crash that record's ack never made it out either (the
			// tear happens before the write returns), so recovery legitimately
			// drops exactly that one.
			tc.tear(t, filepath.Join(dir, walName))

			var logged []string
			st2, err := Open(dir, quietOpts(&logged))
			if err != nil {
				t.Fatalf("reopen over torn tail: %v", err)
			}
			checkState(t, st2, want)
			if s := st2.Stats(); !s.TornTail {
				t.Fatalf("stats = %+v, want TornTail", s)
			}
			if len(logged) == 0 || !strings.Contains(strings.Join(logged, "\n"), "torn tail") {
				t.Fatalf("torn-tail truncation was not logged: %q", logged)
			}

			// The store must be fully writable after truncation and clean on
			// the next recovery.
			g := testGraph(10, 2, 99)
			if err := st2.Create("after", g); err != nil {
				t.Fatalf("Create after torn-tail recovery: %v", err)
			}
			want["after"] = g
			st2.Close()
			st3, err := Open(dir, quietOpts(nil))
			if err != nil {
				t.Fatal(err)
			}
			defer st3.Close()
			checkState(t, st3, want)
			if s := st3.Stats(); s.TornTail {
				t.Fatalf("second recovery still reports a torn tail: %+v", s)
			}
		})
	}
}

func TestMidFileCorruptionFailsLoudly(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir, quietOpts(nil))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if err := st.Create(fmt.Sprintf("g%d", i), testGraph(25, 3, int64(i))); err != nil {
			t.Fatal(err)
		}
	}
	st.Close()

	path := filepath.Join(dir, walName)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	t.Run("payload-bit-flip", func(t *testing.T) {
		bad := append([]byte(nil), data...)
		bad[magicLen+frameHeaderLen+2] ^= 0x01 // inside the FIRST record's payload
		if err := os.WriteFile(path, bad, 0o644); err != nil {
			t.Fatal(err)
		}
		_, err := Open(dir, quietOpts(nil))
		if !errors.Is(err, ErrCorrupt) {
			t.Fatalf("Open over mid-file bit flip: err = %v, want ErrCorrupt", err)
		}
	})
	t.Run("absurd-length-prefix", func(t *testing.T) {
		bad := append([]byte(nil), data...)
		// A huge length whose frame still "ends" before EOF is impossible;
		// craft one that claims more than maxFramePayload but less than the
		// remaining file, by corrupting the first length to maxFramePayload+1
		// only when enough data follows — otherwise it reads as torn. Here
		// the file is small, so instead corrupt a middle frame's length to a
		// small wrong value: the next "frame" then starts mid-record and
		// fails its CRC with intact bytes after it.
		bad[magicLen] ^= 0x04
		if err := os.WriteFile(path, bad, 0o644); err != nil {
			t.Fatal(err)
		}
		_, err := Open(dir, quietOpts(nil))
		if !errors.Is(err, ErrCorrupt) {
			t.Fatalf("Open over corrupted length prefix: err = %v, want ErrCorrupt", err)
		}
	})
	t.Run("bad-magic", func(t *testing.T) {
		bad := append([]byte(nil), data...)
		bad[0] = 'X'
		if err := os.WriteFile(path, bad, 0o644); err != nil {
			t.Fatal(err)
		}
		_, err := Open(dir, quietOpts(nil))
		if !errors.Is(err, ErrCorrupt) {
			t.Fatalf("Open over bad magic: err = %v, want ErrCorrupt", err)
		}
	})
}

func TestSnapshotCorruptionFailsLoudly(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir, quietOpts(nil))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := st.Create(fmt.Sprintf("g%d", i), testGraph(25, 3, int64(i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.Compact(); err != nil {
		t.Fatal(err)
	}
	st.Close()

	path := filepath.Join(dir, snapName)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Flip a payload byte anywhere — snapshots are atomic, so even a
	// damaged LAST frame is corruption, never a torn tail.
	bad := append([]byte(nil), data...)
	bad[len(bad)-3] ^= 0x80
	if err := os.WriteFile(path, bad, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, quietOpts(nil)); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Open over corrupted snapshot: err = %v, want ErrCorrupt", err)
	}
}

func TestLeftoverTempSnapshotIgnored(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir, quietOpts(nil))
	if err != nil {
		t.Fatal(err)
	}
	g := testGraph(15, 2, 7)
	if err := st.Create("g", g); err != nil {
		t.Fatal(err)
	}
	st.Close()

	tmp := filepath.Join(dir, snapTmpName)
	if err := os.WriteFile(tmp, []byte("half-written snapshot garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	var logged []string
	st2, err := Open(dir, quietOpts(&logged))
	if err != nil {
		t.Fatalf("Open with leftover temp snapshot: %v", err)
	}
	defer st2.Close()
	checkState(t, st2, map[string]*graph.Graph{"g": g})
	if _, err := os.Stat(tmp); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("temp snapshot survived Open: stat err = %v", err)
	}
	if !strings.Contains(strings.Join(logged, "\n"), "incomplete snapshot") {
		t.Fatalf("temp-snapshot removal was not logged: %q", logged)
	}
}

func TestTornMagicRewritten(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir, quietOpts(nil))
	if err != nil {
		t.Fatal(err)
	}
	g := testGraph(15, 2, 7)
	if err := st.Create("g", g); err != nil {
		t.Fatal(err)
	}
	if err := st.Compact(); err != nil {
		t.Fatal(err)
	}
	st.Close()
	// Simulate a crash between journal reset and the magic rewrite: the
	// journal holds only a prefix of the magic. The snapshot carries the
	// state.
	if err := os.WriteFile(filepath.Join(dir, walName), walMagic[:3], 0o644); err != nil {
		t.Fatal(err)
	}
	var logged []string
	st2, err := Open(dir, quietOpts(&logged))
	if err != nil {
		t.Fatalf("Open over torn magic: %v", err)
	}
	defer st2.Close()
	checkState(t, st2, map[string]*graph.Graph{"g": g})
	if !strings.Contains(strings.Join(logged, "\n"), "torn inside the magic") {
		t.Fatalf("torn-magic rewrite was not logged: %q", logged)
	}
}

func TestErrorSentinels(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir, quietOpts(nil))
	if err != nil {
		t.Fatal(err)
	}
	g := testGraph(10, 2, 1)
	if err := st.Create("g", g); err != nil {
		t.Fatal(err)
	}
	if err := st.Create("g", g); !errors.Is(err, ErrExists) {
		t.Fatalf("duplicate Create: err = %v, want ErrExists", err)
	}
	if _, err := st.AddEdges("nope", nil); !errors.Is(err, ErrNotFound) {
		t.Fatalf("AddEdges on unknown: err = %v, want ErrNotFound", err)
	}
	if err := st.Delete("nope"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Delete on unknown: err = %v, want ErrNotFound", err)
	}
	if err := st.Create("", g); err == nil {
		t.Fatal("Create with empty name succeeded")
	}
	if _, err := st.AddEdges("g", [][2]graph.NodeID{{-1, 2}}); err == nil {
		t.Fatal("AddEdges with negative endpoint succeeded")
	}
	st.Close()
	if err := st.Create("h", g); !errors.Is(err, ErrClosed) {
		t.Fatalf("Create after Close: err = %v, want ErrClosed", err)
	}
	if err := st.Compact(); !errors.Is(err, ErrClosed) {
		t.Fatalf("Compact after Close: err = %v, want ErrClosed", err)
	}
}

func TestFsyncFailurePoisonsStore(t *testing.T) {
	dir := t.TempDir()
	opts := quietOpts(nil)
	opts.Fsync = true
	st, err := Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	g := testGraph(10, 2, 1)
	if err := st.Create("durable", g); err != nil {
		t.Fatal(err)
	}

	faultpoint.Reset()
	if err := faultpoint.Set("fsync-fail:every=1:limit=1"); err != nil {
		t.Fatal(err)
	}
	defer faultpoint.Reset()

	if err := st.Create("doomed", g); err == nil {
		t.Fatal("Create with failing fsync was acknowledged")
	}
	// The store is poisoned: even though the faultpoint is spent, every
	// later mutation is refused until reopen.
	if err := st.Delete("durable"); !errors.Is(err, ErrFailed) {
		t.Fatalf("mutation on poisoned store: err = %v, want ErrFailed", err)
	}
	if _, ok := st.Get("durable"); !ok {
		t.Fatal("poisoning destroyed the readable in-memory state")
	}
	st.Close()

	faultpoint.Reset()
	st2, err := Open(dir, opts)
	if err != nil {
		t.Fatalf("reopen after fsync failure: %v", err)
	}
	defer st2.Close()
	// "durable" was acknowledged and must be back; "doomed" was NOT
	// acknowledged — its journal bytes were written (only the fsync
	// failed), so either outcome is legal, but acknowledged state is not.
	if _, ok := st2.Get("durable"); !ok {
		t.Fatal("acknowledged graph lost after fsync-failure reopen")
	}
	if err := st2.Create("after", g); err != nil {
		t.Fatalf("reopened store refuses mutations: %v", err)
	}
}

// TestRecordSizeCapEnforcedAtWriteTime proves the write-side half of the
// frame-cap contract: a mutation whose journal record — or whose merged
// graph's future snapshot record — would exceed the cap is refused with
// ErrTooLarge BEFORE anything reaches disk. The store stays usable, no
// over-cap frame is ever journaled, and a reopen recovers exactly the
// acknowledged (in-cap) state. (Without this, an acknowledged oversize
// graph would make the next Open fail ErrCorrupt — durable state lost.)
func TestRecordSizeCapEnforcedAtWriteTime(t *testing.T) {
	old := maxRecordPayload
	maxRecordPayload = 256
	defer func() { maxRecordPayload = old }()

	dir := t.TempDir()
	st, err := Open(dir, quietOpts(nil))
	if err != nil {
		t.Fatal(err)
	}

	// A graph whose create record blows the lowered cap outright.
	if err := st.Create("huge", testGraph(200, 4, 1)); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("oversize Create: err = %v, want ErrTooLarge", err)
	}
	// The rejection poisoned nothing: a small create still works.
	small := testGraph(12, 2, 2)
	if err := st.Create("ok", small); err != nil {
		t.Fatalf("small Create after rejection: %v", err)
	}
	want := map[string]*graph.Graph{"ok": small}

	// Grow "ok" by small deltas: each add-edges record is tiny, but the
	// merged graph's snapshot record must keep fitting — eventually an
	// append is refused even though its own delta is well under the cap.
	var rejected bool
	for i := 0; i < 100 && !rejected; i++ {
		edges := make([][2]graph.NodeID, 4)
		for j := range edges {
			edges[j] = [2]graph.NodeID{graph.NodeID(100 + 8*i + 2*j), graph.NodeID(101 + 8*i + 2*j)}
		}
		before, _ := st.Get("ok")
		ng, err := st.AddEdges("ok", edges)
		switch {
		case err == nil:
			want["ok"] = ng
		case errors.Is(err, ErrTooLarge):
			rejected = true
			// The refused mutation must not have half-applied.
			after, _ := st.Get("ok")
			if after.Fingerprint() != before.Fingerprint() {
				t.Fatal("rejected AddEdges mutated the graph")
			}
		default:
			t.Fatalf("AddEdges: unexpected error %v", err)
		}
	}
	if !rejected {
		t.Fatal("growth never hit the snapshot-record cap")
	}
	checkState(t, st, want)

	// Everything acknowledged is within the cap, so compaction and
	// recovery both succeed and agree with the reference.
	if err := st.Compact(); err != nil {
		t.Fatalf("Compact over in-cap corpus: %v", err)
	}
	st.Close()
	st2, err := Open(dir, quietOpts(nil))
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer st2.Close()
	checkState(t, st2, want)
}

// TestSnapshotWriterRefusesOversizeRecord drives the writeSnapshotFile
// backstop directly: if a graph somehow outgrows the cap (here: the cap
// is lowered under an existing graph), compaction fails loudly with
// ErrTooLarge and the journal remains authoritative — never a snapshot
// that recovery would refuse as corrupt.
func TestSnapshotWriterRefusesOversizeRecord(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir, quietOpts(nil))
	if err != nil {
		t.Fatal(err)
	}
	g := testGraph(50, 4, 3)
	if err := st.Create("big", g); err != nil {
		t.Fatal(err)
	}

	old := maxRecordPayload
	maxRecordPayload = 16
	defer func() { maxRecordPayload = old }()
	if err := st.Compact(); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("Compact with over-cap graph: err = %v, want ErrTooLarge", err)
	}
	maxRecordPayload = old

	// The failed compaction left no snapshot behind; the journal still
	// recovers the full corpus.
	st.Close()
	st2, err := Open(dir, quietOpts(nil))
	if err != nil {
		t.Fatalf("reopen after failed compaction: %v", err)
	}
	defer st2.Close()
	checkState(t, st2, map[string]*graph.Graph{"big": g})
}
