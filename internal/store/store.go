package store

import (
	"errors"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"slices"
	"sync"
	"time"

	"repro/internal/faultpoint"
	"repro/internal/graph"
)

// The store's error taxonomy. ErrCorrupt is the loud one: it means the
// durable files hold acknowledged state this build can no longer trust,
// and the only safe reactions are operator intervention or restore from
// a replica — never a silent repair.
var (
	// ErrCorrupt marks unrecoverable damage in the snapshot or mid-file
	// in the journal. (A torn journal TAIL is not corruption: it is the
	// expected residue of a crash mid-append and is truncated with a
	// logged warning on open.)
	ErrCorrupt = errors.New("store: corrupt data")
	// ErrExists is returned by Create for a name already in the corpus.
	ErrExists = errors.New("store: graph already exists")
	// ErrNotFound is returned by AddEdges/Delete for an unknown name.
	ErrNotFound = errors.New("store: unknown graph")
	// ErrTooLarge rejects a mutation whose journal record — or whose
	// resulting graph's compaction-time snapshot record — would exceed
	// the on-disk frame cap. Enforced BEFORE anything is written, so the
	// store never acknowledges state that recovery would later refuse as
	// corrupt; the mutation simply fails and the store stays usable.
	ErrTooLarge = errors.New("store: graph too large for durable storage")
	// ErrFailed poisons a store whose journal write or fsync failed: the
	// on-disk suffix is unknowable, so every later mutation is refused
	// until the store is reopened (recovery truncates any torn tail).
	ErrFailed = errors.New("store: store failed; reopen to recover")
	// ErrClosed is returned by every method after Close.
	ErrClosed = errors.New("store: store is closed")
)

// errFsyncInjected is what the fsync-fail faultpoint surfaces in place
// of a real fsync error.
var errFsyncInjected = errors.New("store: injected fsync failure")

// The file names inside a store directory.
const (
	walName     = "corpus.wal"
	snapName    = "corpus.snap"
	snapTmpName = "corpus.snap.tmp"
)

// DefaultCompactThreshold is the journal size that triggers automatic
// snapshot compaction when Options.CompactThreshold is zero.
const DefaultCompactThreshold = 4 << 20

// Options tunes a Store. The zero value is usable: no fsync (page-cache
// durability — survives process death, not power loss), default
// compaction threshold, log.Printf warnings.
type Options struct {
	// Fsync, when true, fsyncs the journal before a mutation is
	// acknowledged: acknowledged state then survives power loss, not just
	// process death. A failed fsync fails the mutation AND poisons the
	// store (ErrFailed) — after a rejected fsync the kernel may have
	// discarded the dirty pages, so no later write can be trusted.
	Fsync bool
	// CompactThreshold is the journal byte size beyond which a mutation
	// triggers snapshot compaction. 0 means DefaultCompactThreshold;
	// negative disables automatic compaction (Compact still works).
	CompactThreshold int64
	// Logf receives recovery warnings (e.g. torn-tail truncation). Nil
	// means log.Printf.
	Logf func(format string, args ...any)
}

// Observer receives passive measurements of the store's durability
// work. Any field may be nil. Hooks run with the store lock held — they
// must be cheap and must not call back into the store; feeding an
// atomic histogram (internal/obs) is the intended use.
type Observer struct {
	// Append receives the framed byte size of every journaled record.
	Append func(bytes int)
	// Fsync receives the duration of every journal fsync on the append
	// path (only fired when Options.Fsync is on).
	Fsync func(d time.Duration)
	// Compact receives the duration of every successful compaction.
	Compact func(d time.Duration)
}

// Stats is a point-in-time snapshot of store counters.
type Stats struct {
	// Graphs is the number of corpus graphs; LastSeq the sequence number
	// of the newest applied mutation.
	Graphs  int    `json:"graphs"`
	LastSeq uint64 `json:"last_seq"`
	// WALBytes is the current journal file size (magic included);
	// Appended counts mutations journaled by this process and
	// Compactions the snapshots it has taken.
	WALBytes    int64 `json:"wal_bytes"`
	Appended    int64 `json:"appended"`
	Compactions int64 `json:"compactions"`
	// Recovered counts journal records replayed at Open; TornTail
	// reports whether Open truncated a torn journal tail.
	Recovered int64 `json:"recovered"`
	TornTail  bool  `json:"torn_tail"`
	// Fsync echoes Options.Fsync.
	Fsync bool `json:"fsync"`
}

// Store is a crash-safe named-graph corpus: an in-memory map of
// immutable graphs backed by a checksummed append-only journal plus a
// compacted snapshot. Every mutation is durable in the journal before it
// is acknowledged (applied in memory and returned to the caller), so
// after ANY crash — kill -9 included — Open rebuilds exactly the
// acknowledged corpus, bit-for-bit (equal fingerprints). Safe for
// concurrent use.
type Store struct {
	dir  string
	opts Options

	mu      sync.Mutex
	graphs  map[string]*graph.Graph
	parents map[string]graph.Fingerprint // last mutation's parent fp per name
	seq     uint64
	wal     *os.File
	walSize int64
	payload []byte // scratch: encoded record payload
	scratch []byte // scratch: framed payload (header + payload copy)
	failed  error  // non-nil once a journal write/fsync failed
	closed  bool

	appended    int64
	compactions int64
	recovered   int64
	tornTail    bool

	observer *Observer // nil when unobserved; read under mu
}

// Open opens (or initializes) the store in dir, replaying snapshot and
// journal into memory. A torn journal tail — the residue of a crash in
// the middle of an append — is truncated with a warning through
// Options.Logf; mid-file damage fails with ErrCorrupt.
func Open(dir string, opts Options) (*Store, error) {
	if opts.CompactThreshold == 0 {
		opts.CompactThreshold = DefaultCompactThreshold
	}
	if opts.Logf == nil {
		opts.Logf = log.Printf
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	// A leftover temporary snapshot is an interrupted compaction that
	// never reached the rename: the previous snapshot+journal pair is
	// complete without it.
	if err := os.Remove(filepath.Join(dir, snapTmpName)); err == nil {
		opts.Logf("store: removed incomplete snapshot %s (crash during compaction)", snapTmpName)
	}

	graphs, seq, err := loadSnapshotFile(filepath.Join(dir, snapName))
	if err != nil {
		return nil, err
	}
	st := &Store{dir: dir, opts: opts, graphs: graphs, seq: seq,
		parents: make(map[string]graph.Fingerprint)}
	if err := st.recoverWAL(); err != nil {
		return nil, err
	}
	return st, nil
}

// recoverWAL scans the journal, replays every record newer than the
// snapshot, truncates a torn tail, and leaves st.wal open for appends.
func (st *Store) recoverWAL() error {
	path := filepath.Join(st.dir, walName)
	data, err := os.ReadFile(path)
	fresh := errors.Is(err, os.ErrNotExist)
	if err != nil && !fresh {
		return err
	}

	good := 0
	if !fresh {
		if len(data) < magicLen {
			// Shorter than the magic: only legal as the residue of a crash
			// between journal reset and the magic write (or mid-magic). A
			// prefix that disagrees with the magic is someone else's file.
			if string(data) != string(walMagic[:len(data)]) {
				return fmt.Errorf("%w: journal %s: bad magic", ErrCorrupt, path)
			}
			st.opts.Logf("store: journal %s torn inside the magic header; rewriting", walName)
			fresh = true
		} else if [magicLen]byte(data[:magicLen]) != walMagic {
			return fmt.Errorf("%w: journal %s: bad magic", ErrCorrupt, path)
		}
	}
	if !fresh {
		payloads, g, torn, err := scanFrames(data[magicLen:])
		if err != nil {
			return fmt.Errorf("journal %s: %w", path, err)
		}
		good = magicLen + g
		for _, p := range payloads {
			rec, err := decodeRecord(p)
			if err != nil {
				return fmt.Errorf("journal %s: %w", path, err)
			}
			if rec.seq <= st.seq {
				// Already covered by the snapshot: the residue of a crash
				// between snapshot rename and journal reset.
				continue
			}
			if err := applyRecord(st.graphs, rec); err != nil {
				return fmt.Errorf("%w: journal %s: replaying seq %d: %v", ErrCorrupt, path, rec.seq, err)
			}
			switch rec.op {
			case opAddEdgesFP:
				st.parents[rec.name] = rec.parent
			case opDelete:
				delete(st.parents, rec.name)
			}
			st.seq = rec.seq
			st.recovered++
		}
		if torn {
			st.tornTail = true
			st.opts.Logf("store: journal %s: truncating torn tail at offset %d (crash mid-append; %d bytes dropped)",
				walName, good, len(data)-good)
		}
	}

	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return err
	}
	if fresh {
		good = 0 // rewrite from scratch, magic included
	}
	if fresh || good < len(data) {
		if err := f.Truncate(int64(good)); err != nil {
			f.Close()
			return err
		}
	}
	if good < magicLen {
		if _, err := f.WriteAt(walMagic[:], 0); err != nil {
			f.Close()
			return err
		}
		good = magicLen
		if err := f.Sync(); err != nil {
			f.Close()
			return err
		}
		if err := syncDir(st.dir); err != nil {
			f.Close()
			return err
		}
	}
	if _, err := f.Seek(int64(good), 0); err != nil {
		f.Close()
		return err
	}
	st.wal = f
	st.walSize = int64(good)
	return nil
}

// applyRecord applies one journaled mutation to a corpus map, using the
// exact copy-on-write construction the live mutation path uses — which
// is what makes recovered fingerprints byte-equal to the acknowledged
// ones.
func applyRecord(graphs map[string]*graph.Graph, rec *record) error {
	switch rec.op {
	case opCreate:
		if _, dup := graphs[rec.name]; dup {
			return fmt.Errorf("create %q: already exists", rec.name)
		}
		graphs[rec.name] = graph.FromEdges(rec.n, rec.edges)
	case opAddEdges, opAddEdgesFP:
		g, ok := graphs[rec.name]
		if !ok {
			return fmt.Errorf("add-edges %q: unknown graph", rec.name)
		}
		if rec.op == opAddEdgesFP && g.Fingerprint() != rec.parent {
			// The record acknowledges a mutation of a SPECIFIC parent
			// graph; a recovered parent with a different fingerprint means
			// the chain on disk diverges from the acknowledged history.
			return fmt.Errorf("add-edges %q: parent fingerprint %s does not match recovered graph %s",
				rec.name, rec.parent, g.Fingerprint())
		}
		ng, err := g.WithEdges(rec.edges)
		if err != nil {
			return fmt.Errorf("add-edges %q: %v", rec.name, err)
		}
		graphs[rec.name] = ng
	case opDelete:
		if _, ok := graphs[rec.name]; !ok {
			return fmt.Errorf("delete %q: unknown graph", rec.name)
		}
		delete(graphs, rec.name)
	default:
		return fmt.Errorf("unknown op %d", rec.op)
	}
	return nil
}

// Get returns the current immutable graph value for name. The returned
// graph never changes; a later mutation installs a NEW value under the
// name, so holders of this pointer keep a consistent snapshot.
func (st *Store) Get(name string) (*graph.Graph, bool) {
	st.mu.Lock()
	defer st.mu.Unlock()
	g, ok := st.graphs[name]
	return g, ok
}

// Names returns the sorted corpus names.
func (st *Store) Names() []string {
	st.mu.Lock()
	defer st.mu.Unlock()
	names := make([]string, 0, len(st.graphs))
	for name := range st.graphs {
		names = append(names, name)
	}
	slices.Sort(names)
	return names
}

// Create durably installs a new named graph. ErrExists if the name is
// taken.
func (st *Store) Create(name string, g *graph.Graph) error {
	if name == "" || len(name) > MaxNameLen || g == nil {
		return fmt.Errorf("store: create needs a name (≤ %d bytes) and a graph", MaxNameLen)
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	if err := st.usable(); err != nil {
		return err
	}
	if _, dup := st.graphs[name]; dup {
		return fmt.Errorf("%w: %q", ErrExists, name)
	}
	// The create record carries the full graph, and its snapshot record
	// (same fields, seq 0) can only be smaller — one size check covers
	// both the journal frame and every future compaction.
	rec := record{seq: st.seq + 1, op: opCreate, name: name, n: g.NumNodes(), edges: g.Edges()}
	if s := rec.size(); s > maxRecordPayload {
		return fmt.Errorf("%w: %q: create record encodes to %d bytes (cap %d)", ErrTooLarge, name, s, maxRecordPayload)
	}
	if err := st.appendLocked(&rec); err != nil {
		return err
	}
	st.graphs[name] = g
	st.maybeCompactLocked()
	return nil
}

// AddEdges durably appends undirected edges to the named graph and
// returns the NEW graph value (copy-on-write: the old value is untouched
// and keeps its fingerprint). The journal record carries the parent
// graph's fingerprint, which replay verifies before applying the delta.
// A no-op batch (every edge already present) returns the CURRENT graph
// pointer unchanged and journals nothing — the WAL does not grow.
// ErrNotFound for an unknown name.
func (st *Store) AddEdges(name string, edges [][2]graph.NodeID) (*graph.Graph, error) {
	st.mu.Lock()
	defer st.mu.Unlock()
	if err := st.usable(); err != nil {
		return nil, err
	}
	g, ok := st.graphs[name]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNotFound, name)
	}
	ng, err := g.WithEdges(edges)
	if err != nil {
		return nil, err
	}
	if ng == g {
		return g, nil
	}
	rec := record{seq: st.seq + 1, op: opAddEdgesFP, name: name, edges: edges, parent: g.Fingerprint()}
	if s := rec.size(); s > maxRecordPayload {
		return nil, fmt.Errorf("%w: %q: add-edges record encodes to %d bytes (cap %d)", ErrTooLarge, name, s, maxRecordPayload)
	}
	// The delta record may be tiny while the merged graph has outgrown
	// what one snapshot record can hold — price the whole graph as
	// compaction will have to write it, or the acknowledged state would
	// become un-snapshottable.
	snap := record{op: opCreate, name: name, n: ng.NumNodes(), edges: ng.Edges()}
	if s := snap.size(); s > maxRecordPayload {
		return nil, fmt.Errorf("%w: %q: graph would encode to a %d-byte snapshot record (cap %d)", ErrTooLarge, name, s, maxRecordPayload)
	}
	if err := st.appendLocked(&rec); err != nil {
		return nil, err
	}
	st.graphs[name] = ng
	st.parents[name] = rec.parent
	st.maybeCompactLocked()
	return ng, nil
}

// Delete durably removes the named graph. ErrNotFound for an unknown
// name.
func (st *Store) Delete(name string) error {
	st.mu.Lock()
	defer st.mu.Unlock()
	if err := st.usable(); err != nil {
		return err
	}
	if _, ok := st.graphs[name]; !ok {
		return fmt.Errorf("%w: %q", ErrNotFound, name)
	}
	rec := record{seq: st.seq + 1, op: opDelete, name: name}
	if err := st.appendLocked(&rec); err != nil {
		return err
	}
	delete(st.graphs, name)
	delete(st.parents, name)
	st.maybeCompactLocked()
	return nil
}

// ParentFingerprint returns the fingerprint of the graph that name's most
// recent mutation was applied to — the parent side of the newest
// parent→child lineage edge — and whether one is known. Lineage spans the
// journal: it is rebuilt on recovery from opAddEdgesFP records but not
// preserved across compaction (snapshots hold values, not history), so a
// recovered process can rebuild warm state for exactly the mutations the
// journal still holds.
func (st *Store) ParentFingerprint(name string) (graph.Fingerprint, bool) {
	st.mu.Lock()
	defer st.mu.Unlock()
	fp, ok := st.parents[name]
	return fp, ok
}

func (st *Store) usable() error {
	if st.closed {
		return ErrClosed
	}
	if st.failed != nil {
		return fmt.Errorf("%w (cause: %v)", ErrFailed, st.failed)
	}
	return nil
}

// appendLocked journals one record (and makes it durable per the fsync
// policy) BEFORE the caller applies it in memory: the acknowledgment
// order that makes recovery exact. A write or fsync failure poisons the
// store — the journal's on-disk suffix is unknowable after one.
func (st *Store) appendLocked(rec *record) error {
	st.payload = rec.encode(st.payload[:0])
	if len(st.payload) > maxRecordPayload {
		// Callers size-check first; this backstop keeps any future
		// mutation path from journaling a frame recovery must reject.
		// Nothing has been written, so the store is NOT poisoned.
		return fmt.Errorf("%w: record encodes to %d bytes (cap %d)", ErrTooLarge, len(st.payload), maxRecordPayload)
	}
	st.scratch = appendFrame(st.scratch[:0], st.payload)
	frame := st.scratch
	if faultpoint.Enabled() && faultpoint.Fire(faultpoint.WALAppendTorn) {
		// Crash site: half the frame reaches the file, then the process
		// dies without running a single deferred function — the kill -9
		// shape recovery's torn-tail truncation exists for.
		st.wal.Write(frame[:len(frame)/2])
		st.wal.Sync()
		faultpoint.KillProcess()
	}
	if _, err := st.wal.Write(frame); err != nil {
		st.failed = err
		return fmt.Errorf("store: journal append: %w", err)
	}
	if st.opts.Fsync {
		var start time.Time
		obs := st.observer
		if obs != nil && obs.Fsync != nil {
			start = time.Now()
		}
		if err := st.sync(st.wal); err != nil {
			st.failed = err
			return fmt.Errorf("store: journal fsync: %w", err)
		}
		if obs != nil && obs.Fsync != nil {
			obs.Fsync(time.Since(start))
		}
	}
	if obs := st.observer; obs != nil && obs.Append != nil {
		obs.Append(len(frame))
	}
	st.seq = rec.seq
	st.walSize += int64(len(frame))
	st.appended++
	return nil
}

// sync fsyncs f, or fails with an injected error when the fsync-fail
// faultpoint fires.
func (st *Store) sync(f *os.File) error {
	if faultpoint.Enabled() && faultpoint.Fire(faultpoint.FsyncFail) {
		return errFsyncInjected
	}
	return f.Sync()
}

// maybeCompactLocked compacts when the journal has outgrown the
// threshold. Compaction failure is logged, not returned: the mutation
// that triggered it is already durable in the journal, and the journal
// remains the complete source of truth.
func (st *Store) maybeCompactLocked() {
	if st.opts.CompactThreshold <= 0 || st.walSize <= st.opts.CompactThreshold {
		return
	}
	if err := st.compactLocked(); err != nil {
		st.opts.Logf("store: compaction failed (journal remains authoritative): %v", err)
	}
}

// Compact takes a snapshot of the current corpus and truncates the
// journal. The state machine is crash-safe at every step:
//
//  1. write the full corpus to corpus.snap.tmp and fsync it
//     (crash here: tmp is ignored and removed on next Open)
//  2. rename corpus.snap.tmp → corpus.snap, fsync the directory
//     (crash between 1 and 2 is the snapshot-rename-crash fault site;
//     crash after: the journal's now-redundant records are skipped on
//     replay by their sequence numbers)
//  3. truncate the journal to just its magic and fsync
//     (crash mid-step: a short or empty journal file reads as empty)
func (st *Store) Compact() error {
	st.mu.Lock()
	defer st.mu.Unlock()
	if err := st.usable(); err != nil {
		return err
	}
	return st.compactLocked()
}

func (st *Store) compactLocked() error {
	var start time.Time
	if obs := st.observer; obs != nil && obs.Compact != nil {
		start = time.Now()
	}
	tmp := filepath.Join(st.dir, snapTmpName)
	if err := writeSnapshotFile(tmp, st.seq, st.graphs, st.sync); err != nil {
		return fmt.Errorf("store: writing snapshot: %w", err)
	}
	// Crash site: the temp snapshot is durable but not installed.
	faultpoint.Kill(faultpoint.SnapshotRenameCrash)
	if err := os.Rename(tmp, filepath.Join(st.dir, snapName)); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("store: installing snapshot: %w", err)
	}
	if err := syncDir(st.dir); err != nil {
		return fmt.Errorf("store: syncing directory: %w", err)
	}
	if err := st.wal.Truncate(int64(magicLen)); err != nil {
		st.failed = err
		return fmt.Errorf("store: resetting journal: %w", err)
	}
	if _, err := st.wal.Seek(int64(magicLen), 0); err != nil {
		st.failed = err
		return fmt.Errorf("store: resetting journal: %w", err)
	}
	if err := st.sync(st.wal); err != nil {
		st.failed = err
		return fmt.Errorf("store: syncing reset journal: %w", err)
	}
	st.walSize = int64(magicLen)
	st.compactions++
	if obs := st.observer; obs != nil && obs.Compact != nil {
		obs.Compact(time.Since(start))
	}
	return nil
}

// SetObserver installs (or, with nil, removes) the store's passive
// measurement hooks. Safe to call while mutations are in flight; the
// new observer takes effect for subsequent appends and compactions.
func (st *Store) SetObserver(o *Observer) {
	st.mu.Lock()
	defer st.mu.Unlock()
	st.observer = o
}

// Close flushes and closes the journal. The store refuses all further
// operations.
func (st *Store) Close() error {
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.closed {
		return nil
	}
	st.closed = true
	if st.wal == nil {
		return nil
	}
	err := st.wal.Sync()
	if cerr := st.wal.Close(); err == nil {
		err = cerr
	}
	return err
}

// Stats snapshots the store counters.
func (st *Store) Stats() Stats {
	st.mu.Lock()
	defer st.mu.Unlock()
	return Stats{
		Graphs:      len(st.graphs),
		LastSeq:     st.seq,
		WALBytes:    st.walSize,
		Appended:    st.appended,
		Compactions: st.compactions,
		Recovered:   st.recovered,
		TornTail:    st.tornTail,
		Fsync:       st.opts.Fsync,
	}
}

// syncDir fsyncs a directory so a just-created or just-renamed entry is
// durable in the directory itself, not only in the file's own blocks.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}
