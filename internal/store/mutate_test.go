package store

import (
	"errors"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/graph"
)

// writeJournal hand-crafts a corpus.wal from raw records — the only way
// to exercise replay of record shapes the current write path no longer
// produces (legacy op=2) or would never produce (tampered lineage).
func writeJournal(t *testing.T, dir string, recs ...*record) {
	t.Helper()
	buf := append([]byte(nil), walMagic[:]...)
	for _, r := range recs {
		buf = appendFrame(buf, r.encode(nil))
	}
	if err := os.WriteFile(filepath.Join(dir, walName), buf, 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestAddEdgesFPRecordRoundtrip pins the op=4 wire shape: the parent
// fingerprint survives encode/decode bit-for-bit and size() prices the
// 16 extra bytes exactly.
func TestAddEdgesFPRecordRoundtrip(t *testing.T) {
	parent := testGraph(30, 3, 7).Fingerprint()
	r := &record{
		seq:    42,
		op:     opAddEdgesFP,
		name:   "g",
		edges:  [][2]graph.NodeID{{0, 29}, {5, 17}},
		parent: parent,
	}
	payload := r.encode(nil)
	if len(payload) != r.size() {
		t.Fatalf("size() = %d, encoded %d bytes", r.size(), len(payload))
	}
	plain := &record{seq: 42, op: opAddEdges, name: "g", edges: r.edges}
	if r.size() != plain.size()+16 {
		t.Fatalf("op=4 record should cost exactly 16 bytes over op=2: %d vs %d", r.size(), plain.size())
	}
	got, err := decodeRecord(payload)
	if err != nil {
		t.Fatal(err)
	}
	if got.seq != r.seq || got.op != r.op || got.name != r.name || got.parent != parent {
		t.Fatalf("roundtrip diverged: %+v", got)
	}
	if len(got.edges) != 2 || got.edges[0] != r.edges[0] || got.edges[1] != r.edges[1] {
		t.Fatalf("edges diverged: %v", got.edges)
	}
	// A truncated fingerprint is corruption, not a short read to pad.
	if _, err := decodeRecord(payload[:10]); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("truncated record: err = %v, want ErrCorrupt", err)
	}
}

// TestReplayVerifiesParentFingerprint: an op=4 record whose parent
// fingerprint disagrees with the recovered graph means the on-disk chain
// diverges from the acknowledged one — recovery must refuse with
// ErrCorrupt rather than rebuild a different history.
func TestReplayVerifiesParentFingerprint(t *testing.T) {
	dir := t.TempDir()
	g := testGraph(20, 3, 1)
	bad := g.Fingerprint()
	bad[0] ^= 1 // one bit off the true parent
	writeJournal(t, dir,
		&record{seq: 1, op: opCreate, name: "g", n: g.NumNodes(), edges: g.Edges()},
		&record{seq: 2, op: opAddEdgesFP, name: "g", edges: [][2]graph.NodeID{{0, 19}}, parent: bad},
	)
	if _, err := Open(dir, quietOpts(nil)); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("tampered parent fingerprint: err = %v, want ErrCorrupt", err)
	}
}

// TestLegacyAddEdgesReplay: journals written by earlier builds carry
// op=2 records with no lineage — they must keep replaying (same
// copy-on-write construction, byte-equal fingerprints), just without a
// recovered parent edge.
func TestLegacyAddEdgesReplay(t *testing.T) {
	dir := t.TempDir()
	g := testGraph(20, 3, 2)
	extra := [][2]graph.NodeID{{0, 19}, {1, 18}}
	writeJournal(t, dir,
		&record{seq: 1, op: opCreate, name: "g", n: g.NumNodes(), edges: g.Edges()},
		&record{seq: 2, op: opAddEdges, name: "g", edges: extra},
	)
	st, err := Open(dir, quietOpts(nil))
	if err != nil {
		t.Fatalf("legacy journal failed to replay: %v", err)
	}
	defer st.Close()
	want, err := g.WithEdges(extra)
	if err != nil {
		t.Fatal(err)
	}
	checkState(t, st, map[string]*graph.Graph{"g": want})
	if _, ok := st.ParentFingerprint("g"); ok {
		t.Fatal("legacy op=2 record must not synthesize a parent fingerprint")
	}
}

// TestNoopAddEdgesSkipsJournal pins the write-side half of the no-op
// contract: an all-duplicate batch returns the identical pointer and
// appends nothing — acknowledged-but-unjournaled state cannot exist
// because there is no state change to acknowledge.
func TestNoopAddEdgesSkipsJournal(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir, quietOpts(nil))
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	g := graph.FromEdges(10, [][2]graph.NodeID{{0, 1}, {1, 2}, {2, 3}})
	if err := st.Create("g", g); err != nil {
		t.Fatal(err)
	}
	before := st.Stats()
	for i := 0; i < 3; i++ {
		ng, err := st.AddEdges("g", [][2]graph.NodeID{{1, 0}, {2, 3}, {4, 4}})
		if err != nil {
			t.Fatal(err)
		}
		if ng != g {
			t.Fatalf("iteration %d: no-op AddEdges returned a new graph value", i)
		}
	}
	after := st.Stats()
	if after.WALBytes != before.WALBytes || after.Appended != before.Appended {
		t.Fatalf("no-op AddEdges grew the journal: %d→%d bytes, %d→%d appends",
			before.WALBytes, after.WALBytes, before.Appended, after.Appended)
	}
	if _, ok := st.ParentFingerprint("g"); ok {
		t.Fatal("no-op AddEdges must not record a lineage edge")
	}
}

// TestParentFingerprintLineage follows one lineage edge through append,
// recovery, delete, and compaction: recovery rebuilds it from the
// journal, delete drops it, and a compacted store starts with none
// (snapshots hold values, not history).
func TestParentFingerprintLineage(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir, quietOpts(nil))
	if err != nil {
		t.Fatal(err)
	}
	parent := testGraph(25, 3, 3)
	if err := st.Create("g", parent); err != nil {
		t.Fatal(err)
	}
	if _, ok := st.ParentFingerprint("g"); ok {
		t.Fatal("freshly created graph has no mutation lineage yet")
	}
	if _, err := st.AddEdges("g", [][2]graph.NodeID{{0, 24}}); err != nil {
		t.Fatal(err)
	}
	if fp, ok := st.ParentFingerprint("g"); !ok || fp != parent.Fingerprint() {
		t.Fatalf("live lineage = (%s, %v), want parent %s", fp, ok, parent.Fingerprint())
	}
	st.Close()

	st2, err := Open(dir, quietOpts(nil))
	if err != nil {
		t.Fatal(err)
	}
	if fp, ok := st2.ParentFingerprint("g"); !ok || fp != parent.Fingerprint() {
		t.Fatalf("recovered lineage = (%s, %v), want parent %s", fp, ok, parent.Fingerprint())
	}
	if err := st2.Compact(); err != nil {
		t.Fatal(err)
	}
	st2.Close()

	st3, err := Open(dir, quietOpts(nil))
	if err != nil {
		t.Fatal(err)
	}
	defer st3.Close()
	if _, ok := st3.ParentFingerprint("g"); ok {
		t.Fatal("lineage must not survive compaction: the snapshot holds no history")
	}
	if err := st3.Delete("g"); err != nil {
		t.Fatal(err)
	}
	if _, ok := st3.ParentFingerprint("g"); ok {
		t.Fatal("deleted graph still reports lineage")
	}
}

// TestAddEdgesFPCrashRecovery: the acknowledged op=4 chain replays
// bit-for-bit — three chained mutations, then a reopen must verify every
// parent link and land on the same fingerprint.
func TestAddEdgesFPCrashRecovery(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir, quietOpts(nil))
	if err != nil {
		t.Fatal(err)
	}
	g := testGraph(40, 3, 4)
	if err := st.Create("g", g); err != nil {
		t.Fatal(err)
	}
	cur := g
	for i := 0; i < 3; i++ {
		cur, err = st.AddEdges("g", [][2]graph.NodeID{
			{graph.NodeID(i), graph.NodeID(39 - i)},
			{graph.NodeID(i + 10), graph.NodeID(i + 20)},
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	st.Close() // crash-equivalent for durability: every append was synced

	st2, err := Open(dir, quietOpts(nil))
	if err != nil {
		t.Fatalf("reopen after chained op=4 mutations: %v", err)
	}
	defer st2.Close()
	checkState(t, st2, map[string]*graph.Graph{"g": cur})
	if st2.Stats().Recovered != 4 {
		t.Fatalf("recovered %d records, want 4", st2.Stats().Recovered)
	}
}
