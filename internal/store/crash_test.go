package store

// Crash-recovery matrix: a helper process runs a deterministic mutation
// script against a real store with a faultpoint armed, printing "ack i"
// after each acknowledged mutation, until the injected fault kills it
// hard (exit 137 — no deferred functions, the in-process kill -9). The
// parent then reopens the directory and asserts the recovered corpus is
// fingerprint-identical to an in-memory reference replay of the
// acknowledged prefix — allowing exactly one unacknowledged trailing
// mutation, which is durable-but-unacked when the crash lands between
// the journal append and the ack (e.g. inside the compaction a mutation
// triggered).

import (
	"bufio"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"os/exec"
	"strconv"
	"strings"
	"testing"

	"repro/internal/faultpoint"
	"repro/internal/graph"
)

// scriptOp is one step of the deterministic mutation script shared by
// the helper process and the parent's reference replay.
type scriptOp struct {
	op    opKind
	name  string
	n     int
	edges [][2]graph.NodeID
}

const scriptLen = 60

// crashScript generates the deterministic script: a mix of creates,
// edge appends and deletes over a small set of names, always valid at
// the point it is applied.
func crashScript() []scriptOp {
	rng := rand.New(rand.NewSource(20240807))
	names := []string{"alpha", "beta", "gamma", "delta"}
	size := map[string]int{}
	ops := make([]scriptOp, 0, scriptLen)
	for len(ops) < scriptLen {
		name := names[rng.Intn(len(names))]
		n, exists := size[name]
		switch {
		case !exists:
			n = 12 + rng.Intn(30)
			edges := randEdges(rng, n, 2*n)
			ops = append(ops, scriptOp{op: opCreate, name: name, n: n, edges: edges})
			size[name] = n
		case rng.Intn(6) == 0:
			ops = append(ops, scriptOp{op: opDelete, name: name})
			delete(size, name)
		default:
			ops = append(ops, scriptOp{op: opAddEdges, name: name, edges: randEdges(rng, n, 4+rng.Intn(12))})
		}
	}
	return ops
}

func randEdges(rng *rand.Rand, n, m int) [][2]graph.NodeID {
	edges := make([][2]graph.NodeID, m)
	for i := range edges {
		edges[i] = [2]graph.NodeID{graph.NodeID(rng.Intn(n)), graph.NodeID(rng.Intn(n))}
	}
	return edges
}

// replayScript builds the reference corpus for the first count script
// ops, through the exact same applyRecord path recovery uses.
func replayScript(t *testing.T, count int) map[string]*graph.Graph {
	t.Helper()
	graphs := map[string]*graph.Graph{}
	for i, op := range crashScript()[:count] {
		rec := &record{seq: uint64(i + 1), op: op.op, name: op.name, n: op.n, edges: op.edges}
		if err := applyRecord(graphs, rec); err != nil {
			t.Fatalf("reference replay op %d: %v", i, err)
		}
	}
	return graphs
}

func statesEqual(a, b map[string]*graph.Graph) bool {
	if len(a) != len(b) {
		return false
	}
	for name, ga := range a {
		gb, ok := b[name]
		if !ok || ga.Fingerprint() != gb.Fingerprint() {
			return false
		}
	}
	return true
}

// TestCrashHelper is the subprocess body, inert unless dispatched by
// TestCrashRecoveryMatrix through the environment.
func TestCrashHelper(t *testing.T) {
	if os.Getenv("STORE_CRASH_HELPER") != "1" {
		t.Skip("helper process for TestCrashRecoveryMatrix")
	}
	faultpoint.Reset()
	if spec := os.Getenv("STORE_CRASH_FAULT"); spec != "" {
		if err := faultpoint.Set(spec); err != nil {
			fmt.Printf("helper: bad fault spec: %v\n", err)
			os.Exit(3)
		}
	}
	threshold := int64(-1)
	if v := os.Getenv("STORE_CRASH_COMPACT"); v != "" {
		n, err := strconv.ParseInt(v, 10, 64)
		if err != nil {
			os.Exit(3)
		}
		threshold = n
	}
	st, err := Open(os.Getenv("STORE_CRASH_DIR"), Options{
		Fsync:            true,
		CompactThreshold: threshold,
		Logf:             func(string, ...any) {},
	})
	if err != nil {
		fmt.Printf("helper: open: %v\n", err)
		os.Exit(3)
	}
	for i, op := range crashScript() {
		var err error
		switch op.op {
		case opCreate:
			err = st.Create(op.name, graph.FromEdges(op.n, op.edges))
		case opAddEdges:
			_, err = st.AddEdges(op.name, op.edges)
		case opDelete:
			err = st.Delete(op.name)
		}
		if err != nil {
			fmt.Printf("helper: op %d: %v\n", i, err)
			os.Exit(3)
		}
		fmt.Printf("ack %d\n", i)
	}
	st.Close()
	fmt.Println("done")
}

// runCrashHelper executes the script subprocess and returns the number
// of acknowledged ops and whether it finished the whole script.
func runCrashHelper(t *testing.T, dir, fault string, compact int64) (acked int, done bool) {
	t.Helper()
	cmd := exec.Command(os.Args[0], "-test.run=^TestCrashHelper$", "-test.v")
	cmd.Env = append(os.Environ(),
		"STORE_CRASH_HELPER=1",
		"STORE_CRASH_DIR="+dir,
		"STORE_CRASH_FAULT="+fault,
		fmt.Sprintf("STORE_CRASH_COMPACT=%d", compact),
	)
	out, err := cmd.Output()
	acked = -1
	sc := bufio.NewScanner(strings.NewReader(string(out)))
	for sc.Scan() {
		line := sc.Text()
		if n, ok := strings.CutPrefix(line, "ack "); ok {
			i, perr := strconv.Atoi(n)
			if perr != nil || i != acked+1 {
				t.Fatalf("helper ack stream out of order at %q (after %d)", line, acked)
			}
			acked = i
		}
		if line == "done" {
			done = true
		}
	}
	acked++ // count, not index
	if done {
		if err != nil {
			t.Fatalf("helper finished but exited with error: %v\n%s", err, out)
		}
		return acked, true
	}
	var exit *exec.ExitError
	if !errors.As(err, &exit) || exit.ExitCode() != faultpoint.KillExitCode {
		t.Fatalf("helper died without the injected kill (err = %v, want exit %d)\n%s",
			err, faultpoint.KillExitCode, out)
	}
	return acked, false
}

func TestCrashRecoveryMatrix(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess crash matrix skipped in -short")
	}
	cases := []struct {
		name     string
		fault    string
		compact  int64 // helper's compaction threshold (-1: disabled)
		wantTorn bool
	}{
		// Torn journal append at several script depths: recovery must
		// truncate the half-written frame and keep every acknowledged op.
		{"torn-append-first", "wal-append-torn:every=1:limit=1", -1, true},
		{"torn-append-early", "wal-append-torn:every=7:limit=1", -1, true},
		{"torn-append-late", "wal-append-torn:every=41:limit=1", -1, true},
		// Torn append AFTER snapshot compactions have happened: recovery
		// stitches snapshot + short journal + truncation together.
		{"torn-append-after-compaction", "wal-append-torn:every=50:limit=1", 2048, true},
		// Hard kill between the durable temp snapshot and its rename:
		// the temp file is discarded, snapshot+journal replay as if the
		// compaction never started.
		{"snapshot-rename-crash", "snapshot-rename-crash:every=1:limit=1", 2048, false},
		// Same, but a LATER compaction: the first one completed and
		// truncated the journal, so recovery also proves completed
		// compactions survive.
		{"snapshot-rename-crash-late", "snapshot-rename-crash:every=2:limit=1", 512, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			acked, done := runCrashHelper(t, dir, tc.fault, tc.compact)
			if done {
				t.Fatalf("fault %s never fired: helper completed all %d ops", tc.fault, scriptLen)
			}
			var logged []string
			st, err := Open(dir, quietOpts(&logged))
			if err != nil {
				t.Fatalf("recovery after %s (%d acked): %v", tc.fault, acked, err)
			}
			defer st.Close()

			recovered := map[string]*graph.Graph{}
			for _, name := range st.Names() {
				g, _ := st.Get(name)
				recovered[name] = g
			}
			// The recovered corpus must equal the reference replay of the
			// acknowledged prefix — or of one extra op, when the crash landed
			// after the journal append but before the ack (compaction crashes
			// sit exactly there).
			switch {
			case statesEqual(recovered, replayScript(t, acked)):
			case acked < scriptLen && statesEqual(recovered, replayScript(t, acked+1)):
			default:
				t.Fatalf("%s: recovered corpus matches neither %d nor %d acknowledged ops (names: %v)",
					tc.fault, acked, acked+1, st.Names())
			}
			if s := st.Stats(); s.TornTail != tc.wantTorn {
				t.Fatalf("stats = %+v, want TornTail=%v\nlog: %s", s, tc.wantTorn, strings.Join(logged, "\n"))
			}

			// And the recovered store must accept new durable mutations.
			if err := st.Create("post-crash", testGraph(10, 2, 5)); err != nil {
				t.Fatalf("recovered store refuses mutations: %v", err)
			}
		})
	}
}
