// Package store implements the crash-safe persistent corpus: a named
// collection of immutable graphs whose every mutation (create,
// add-edges, delete) is made durable in a checksummed append-only
// journal before it is acknowledged, with periodic snapshot compaction
// and recovery that replays snapshot + journal on open.
//
// # On-disk layout
//
// A store directory holds at most three files:
//
//	corpus.wal       append-only journal: 8-byte magic, then CRC-framed
//	                 mutation records
//	corpus.snap      compacted snapshot: 8-byte magic, framed header
//	                 (version, last covered sequence number, graph
//	                 count), then one framed full-graph record per entry
//	corpus.snap.tmp  an in-progress snapshot; never read, removed on Open
//
// Every frame is [u32 LE payload length][u32 LE CRC-32C][payload]; the
// payloads are uvarint-packed records (see record.go). The frame cap
// recovery enforces on length prefixes is also enforced at write time:
// a mutation whose record — or whose merged graph's future snapshot
// record — would exceed it is refused with ErrTooLarge before anything
// is written, so the store never acknowledges state that recovery would
// later have to reject.
//
// # Recovery policy
//
// Open loads the snapshot, then replays every journal record whose
// sequence number the snapshot does not already cover. A torn journal
// TAIL — a final frame whose bytes or checksum never fully reached the
// disk — is the expected residue of a crash mid-append: the lost suffix
// was never acknowledged, so it is truncated away with a logged
// warning. Damage anywhere ELSE (a mid-file checksum mismatch, an
// absurd length prefix with intact data after it, any snapshot decode
// failure) sits under acknowledged state and is never silently
// repaired: Open fails with an error wrapping ErrCorrupt.
//
// Because recovery rebuilds graphs with the exact canonical
// constructors the live mutation path uses (graph.FromEdges,
// Graph.WithEdges), a recovered corpus is bit-identical to the
// acknowledged one — equal graph fingerprints, which is what the crash
// tests in this package assert at every injected kill site.
package store
