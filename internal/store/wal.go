package store

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
)

// On-disk framing shared by the journal and the snapshot. Every payload
// travels in one frame:
//
//	[4 bytes LE payload length][4 bytes LE CRC-32C of payload][payload]
//
// preceded (once per file) by an 8-byte magic identifying the file kind
// and format version. The CRC is Castagnoli — hardware-accelerated on
// every platform we serve from.
const (
	frameHeaderLen = 8
	// maxFramePayload bounds a single frame. A length prefix beyond it is
	// corruption by definition (and the cap is what keeps a corrupted
	// length from driving a giant allocation during recovery).
	maxFramePayload = 1 << 26
	// magicLen is the length of the per-file magic header.
	magicLen = 8
)

// maxRecordPayload is the write-side twin of maxFramePayload: no journal
// record — and no graph's compaction-time snapshot record — may encode
// past it, enforced BEFORE anything reaches disk (ErrTooLarge), so
// recovery can never meet a frame this store acknowledged and refuse it.
// A variable only so tests can shrink it; it must never exceed
// maxFramePayload, the recovery-side cap.
var maxRecordPayload = maxFramePayload

// The per-file magics. The trailing digit is the format version: bump it
// and old files fail loudly with ErrCorrupt instead of misparsing.
var (
	walMagic  = [magicLen]byte{'E', 'V', 'C', 'W', 'A', 'L', '1', '\n'}
	snapMagic = [magicLen]byte{'E', 'V', 'C', 'S', 'N', 'P', '1', '\n'}
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// appendFrame appends the framed payload to buf.
func appendFrame(buf, payload []byte) []byte {
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(payload)))
	buf = binary.LittleEndian.AppendUint32(buf, crc32.Checksum(payload, crcTable))
	return append(buf, payload...)
}

// scanFrames walks a frame stream (the file contents after the magic)
// and returns the parsed payloads (aliasing data), the byte offset just
// past the last intact frame, and whether the stream ended in a torn
// tail. The distinction it draws is the store's whole recovery policy:
//
//   - A frame that extends past the end of data, or whose CRC fails on
//     the final frame, is a TORN TAIL — the signature of a crash mid-
//     append, in which the lost suffix was never acknowledged. The
//     caller truncates to good and carries on (torn = true, err = nil).
//   - A CRC mismatch or absurd length prefix with intact data after it
//     is MID-FILE CORRUPTION — bit rot or outside interference under
//     acknowledged records. That is never silently repairable:
//     err wraps ErrCorrupt and good is the offset of the bad frame.
func scanFrames(data []byte) (payloads [][]byte, good int, torn bool, err error) {
	o := 0
	for {
		rest := len(data) - o
		if rest == 0 {
			return payloads, o, false, nil
		}
		if rest < frameHeaderLen {
			// Not even a whole header: a torn header write.
			return payloads, o, true, nil
		}
		length := int(binary.LittleEndian.Uint32(data[o:]))
		sum := binary.LittleEndian.Uint32(data[o+4:])
		end := o + frameHeaderLen + length
		if length > maxFramePayload {
			if end > len(data) {
				// The garbage length also runs past EOF — indistinguishable
				// from a torn header, and everything before it is intact.
				return payloads, o, true, nil
			}
			return payloads, o, false, fmt.Errorf(
				"%w: frame at offset %d declares %d-byte payload (max %d)", ErrCorrupt, o, length, maxFramePayload)
		}
		if end > len(data) {
			// The payload never fully reached the file: torn append.
			return payloads, o, true, nil
		}
		payload := data[o+frameHeaderLen : end]
		if crc32.Checksum(payload, crcTable) != sum {
			if end == len(data) {
				// Bad CRC on the very last frame: the tail of the payload
				// was lost or zero-filled by a torn page write.
				return payloads, o, true, nil
			}
			return payloads, o, false, fmt.Errorf(
				"%w: frame at offset %d fails CRC with %d intact bytes after it", ErrCorrupt, o, len(data)-end)
		}
		payloads = append(payloads, payload)
		o = end
	}
}
