package store

import (
	"bytes"
	"errors"
	"reflect"
	"testing"

	"repro/internal/graph"
)

// FuzzDecodeRecord hammers the record decoder with arbitrary payloads:
// it must never panic or over-allocate, every failure must wrap
// ErrCorrupt, and every accepted record must survive an encode/decode
// round trip unchanged (the journal a recovered store writes replays
// identically to the one it read).
func FuzzDecodeRecord(f *testing.F) {
	seed := []record{
		{seq: 1, op: opCreate, name: "g", n: 4, edges: [][2]graph.NodeID{{0, 1}, {2, 3}}},
		{seq: 900, op: opAddEdges, name: "alpha", edges: [][2]graph.NodeID{{7, 9}}},
		{seq: 3, op: opDelete, name: "gone"},
		{seq: 0, op: opCreate, name: "empty", n: 0},
	}
	for _, r := range seed {
		f.Add(r.encode(nil))
	}
	f.Add([]byte{})
	f.Add([]byte{0x01, 0xff})

	f.Fuzz(func(t *testing.T, p []byte) {
		rec, err := decodeRecord(p)
		if err != nil {
			if !errors.Is(err, ErrCorrupt) {
				t.Fatalf("decode error does not wrap ErrCorrupt: %v", err)
			}
			return
		}
		rec2, err := decodeRecord(rec.encode(nil))
		if err != nil {
			t.Fatalf("re-encoded record fails decoding: %v", err)
		}
		if !reflect.DeepEqual(rec, rec2) {
			t.Fatalf("record changed across round trip: %+v → %+v", rec, rec2)
		}
	})
}

// FuzzScanFrames hammers the frame scanner with arbitrary streams. The
// invariants: no panic, good never exceeds the input, a clean scan
// consumes a frame-aligned prefix, and the accepted payload bytes
// re-frame to exactly the good prefix (so truncating at good and
// re-scanning is stable — the recovery loop's fixed point).
func FuzzScanFrames(f *testing.F) {
	f.Add([]byte{})
	f.Add(appendFrame(nil, []byte("one")))
	two := appendFrame(appendFrame(nil, []byte("one")), []byte("two"))
	f.Add(two)
	f.Add(two[:len(two)-2])                           // torn tail
	f.Add([]byte{0xff, 0xff, 0xff, 0x7f, 0, 0, 0, 0}) // absurd length

	f.Fuzz(func(t *testing.T, data []byte) {
		payloads, good, torn, err := scanFrames(data)
		if good < 0 || good > len(data) {
			t.Fatalf("good = %d outside [0, %d]", good, len(data))
		}
		if err != nil {
			if !errors.Is(err, ErrCorrupt) {
				t.Fatalf("scan error does not wrap ErrCorrupt: %v", err)
			}
			if torn {
				t.Fatal("scan reported both torn and corrupt")
			}
			return
		}
		var reframed []byte
		for _, p := range payloads {
			reframed = appendFrame(reframed, p)
		}
		if !bytes.Equal(reframed, data[:good]) {
			t.Fatalf("accepted frames re-frame to %x, want prefix %x", reframed, data[:good])
		}
		if !torn && good != len(data) {
			t.Fatalf("clean scan stopped at %d of %d bytes", good, len(data))
		}
		// Truncating at good and re-scanning must be a fixed point.
		p2, g2, t2, err2 := scanFrames(data[:good])
		if err2 != nil || t2 || g2 != good || len(p2) != len(payloads) {
			t.Fatalf("re-scan of good prefix not clean: good %d→%d torn=%v err=%v", good, g2, t2, err2)
		}
	})
}
