package store

import (
	"encoding/binary"
	"fmt"

	"repro/internal/graph"
)

// opKind tags one corpus mutation in the journal. The values are part of
// the on-disk format and must never be renumbered.
type opKind byte

const (
	// opCreate installs a new named graph (declared vertex count + full
	// edge list). Snapshot graph records reuse this op with seq 0.
	opCreate opKind = 1
	// opAddEdges appends undirected edges to an existing graph
	// (copy-on-write on replay, exactly as the live mutation path).
	// Written by earlier builds; replay keeps working, new mutations
	// journal opAddEdgesFP instead.
	opAddEdges opKind = 2
	// opDelete removes a named graph.
	opDelete opKind = 3
	// opAddEdgesFP is opAddEdges plus the 128-bit fingerprint of the
	// pre-mutation (parent) graph. Replay verifies the recovered parent
	// against it before applying the delta — a recovered mutation chain
	// that diverges from the acknowledged one is corruption, not a graph
	// to silently rebuild differently — and the parent→child lineage is
	// what recovery-time warm state is rebuilt from.
	opAddEdgesFP opKind = 4
)

// MaxNameLen bounds corpus names in records — long enough for any
// operational naming scheme, small enough that a corrupted length can
// never drive a giant allocation. Exported so the service layer can
// reject over-long names as a client error before they reach the store.
const MaxNameLen = 512

// record is one decoded corpus mutation. The payload layout (all values
// uvarint unless noted) is:
//
//	seq       uvarint   mutation sequence number (0 in snapshot records)
//	op        1 byte    opCreate | opAddEdges | opDelete
//	nameLen   uvarint   followed by nameLen bytes of name
//	opCreate:     n uvarint, m uvarint, then m × (u uvarint, v uvarint)
//	opAddEdges:   m uvarint, then m × (u uvarint, v uvarint)
//	opDelete:     nothing
//	opAddEdgesFP: parent fingerprint (16 bytes, two big-endian uint64,
//	              high word first), then the opAddEdges body
//
// The layout is pinned: recovery of journals written by earlier builds
// must keep working, so changes are append-only (new opKinds).
type record struct {
	seq   uint64
	op    opKind
	name  string
	n     int               // opCreate: declared vertex count
	edges [][2]graph.NodeID // opCreate, opAddEdges, opAddEdgesFP
	// parent is the pre-mutation graph's fingerprint (opAddEdgesFP).
	parent graph.Fingerprint
}

// encode appends the record payload (frame-less) to buf.
func (r *record) encode(buf []byte) []byte {
	buf = binary.AppendUvarint(buf, r.seq)
	buf = append(buf, byte(r.op))
	buf = binary.AppendUvarint(buf, uint64(len(r.name)))
	buf = append(buf, r.name...)
	switch r.op {
	case opCreate:
		buf = binary.AppendUvarint(buf, uint64(r.n))
		buf = appendEdges(buf, r.edges)
	case opAddEdges:
		buf = appendEdges(buf, r.edges)
	case opAddEdgesFP:
		buf = binary.BigEndian.AppendUint64(buf, r.parent[0])
		buf = binary.BigEndian.AppendUint64(buf, r.parent[1])
		buf = appendEdges(buf, r.edges)
	}
	return buf
}

// size returns the exact encoded payload length of the record without
// materializing it — the write-side half of the frame-cap contract
// (see maxRecordPayload). It walks the edge list but allocates nothing,
// so mutation paths can price a record before committing to encode it.
func (r *record) size() int {
	n := uvarintLen(r.seq) + 1 + uvarintLen(uint64(len(r.name))) + len(r.name)
	switch r.op {
	case opCreate:
		n += uvarintLen(uint64(r.n)) + edgesSize(r.edges)
	case opAddEdges:
		n += edgesSize(r.edges)
	case opAddEdgesFP:
		n += 16 + edgesSize(r.edges)
	}
	return n
}

func edgesSize(edges [][2]graph.NodeID) int {
	n := uvarintLen(uint64(len(edges)))
	for _, e := range edges {
		n += uvarintLen(uint64(uint32(e[0]))) + uvarintLen(uint64(uint32(e[1])))
	}
	return n
}

// uvarintLen is the byte length binary.AppendUvarint would use for v.
func uvarintLen(v uint64) int {
	n := 1
	for v >= 0x80 {
		v >>= 7
		n++
	}
	return n
}

func appendEdges(buf []byte, edges [][2]graph.NodeID) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(edges)))
	for _, e := range edges {
		buf = binary.AppendUvarint(buf, uint64(uint32(e[0])))
		buf = binary.AppendUvarint(buf, uint64(uint32(e[1])))
	}
	return buf
}

// decodeRecord parses one record payload. Every failure wraps ErrCorrupt:
// the payload passed its frame CRC, so a malformed body means the file
// holds something this build cannot interpret — never worth guessing at.
func decodeRecord(p []byte) (*record, error) {
	d := recDecoder{p: p}
	r := &record{}
	r.seq = d.uvarint("seq")
	r.op = opKind(d.byte("op"))
	nameLen := d.uvarint("name length")
	if d.err == nil && nameLen > MaxNameLen {
		d.fail(fmt.Errorf("name length %d exceeds %d", nameLen, MaxNameLen))
	}
	r.name = string(d.bytes(int(nameLen), "name"))
	switch r.op {
	case opCreate:
		n := d.uvarint("vertex count")
		if d.err == nil && n > graph.MaxReadNodes {
			d.fail(fmt.Errorf("vertex count %d exceeds %d", n, graph.MaxReadNodes))
		}
		r.n = int(n)
		r.edges = d.edges()
	case opAddEdges:
		r.edges = d.edges()
	case opAddEdgesFP:
		fp := d.bytes(16, "parent fingerprint")
		if d.err == nil {
			r.parent[0] = binary.BigEndian.Uint64(fp)
			r.parent[1] = binary.BigEndian.Uint64(fp[8:])
		}
		r.edges = d.edges()
	case opDelete:
	default:
		if d.err == nil {
			d.fail(fmt.Errorf("unknown op %d", r.op))
		}
	}
	if d.err == nil && len(d.p) != 0 {
		d.fail(fmt.Errorf("%d trailing bytes after record", len(d.p)))
	}
	if d.err != nil {
		return nil, fmt.Errorf("%w: record: %v", ErrCorrupt, d.err)
	}
	return r, nil
}

// recDecoder is a cursor over a record payload that latches its first
// error, so decode code reads linearly without per-field error plumbing.
type recDecoder struct {
	p   []byte
	err error
}

func (d *recDecoder) fail(err error) {
	if d.err == nil {
		d.err = err
	}
}

func (d *recDecoder) uvarint(what string) uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.p)
	if n <= 0 {
		d.fail(fmt.Errorf("truncated or overlong %s varint", what))
		return 0
	}
	d.p = d.p[n:]
	return v
}

func (d *recDecoder) byte(what string) byte {
	if d.err != nil {
		return 0
	}
	if len(d.p) == 0 {
		d.fail(fmt.Errorf("missing %s byte", what))
		return 0
	}
	b := d.p[0]
	d.p = d.p[1:]
	return b
}

func (d *recDecoder) bytes(n int, what string) []byte {
	if d.err != nil {
		return nil
	}
	if n < 0 || n > len(d.p) {
		d.fail(fmt.Errorf("%s: want %d bytes, have %d", what, n, len(d.p)))
		return nil
	}
	b := d.p[:n]
	d.p = d.p[n:]
	return b
}

func (d *recDecoder) edges() [][2]graph.NodeID {
	m := d.uvarint("edge count")
	if d.err != nil {
		return nil
	}
	// Plausibility before allocation: every encoded edge takes at least
	// two bytes, so a claimed count beyond the remaining payload is
	// corruption — not a reason to allocate a giant slice.
	if m > uint64(len(d.p)) {
		d.fail(fmt.Errorf("edge count %d exceeds remaining payload %d", m, len(d.p)))
		return nil
	}
	edges := make([][2]graph.NodeID, 0, m)
	for i := uint64(0); i < m; i++ {
		u := d.uvarint("edge endpoint")
		v := d.uvarint("edge endpoint")
		if d.err != nil {
			return nil
		}
		if u > graph.MaxReadNodes || v > graph.MaxReadNodes {
			d.fail(fmt.Errorf("edge endpoint out of range: [%d,%d]", u, v))
			return nil
		}
		edges = append(edges, [2]graph.NodeID{graph.NodeID(u), graph.NodeID(v)})
	}
	return edges
}
