package store

import (
	"encoding/binary"
	"errors"
	"fmt"
	"os"
	"slices"

	"repro/internal/graph"
)

// snapshotVersion is the header version of the snapshot payload layout.
const snapshotVersion = 1

// writeSnapshotFile writes the full corpus state to path (the temporary
// snapshot file): the snapshot magic, a framed header payload
// (version, lastSeq, graph count — all uvarint), then one framed graph
// record per corpus entry in sorted name order. The file is fsynced via
// sync before close; the caller performs the atomic rename. Torn writes
// are not a concern here — the file only becomes the snapshot after the
// rename — so recovery treats ANY snapshot decode failure as ErrCorrupt.
func writeSnapshotFile(path string, lastSeq uint64, graphs map[string]*graph.Graph, sync func(*os.File) error) (err error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	defer func() {
		if cerr := f.Close(); cerr != nil && err == nil {
			err = cerr
		}
		if err != nil {
			os.Remove(path)
		}
	}()

	names := make([]string, 0, len(graphs))
	for name := range graphs {
		names = append(names, name)
	}
	slices.Sort(names)

	var buf []byte
	header := binary.AppendUvarint(nil, snapshotVersion)
	header = binary.AppendUvarint(header, lastSeq)
	header = binary.AppendUvarint(header, uint64(len(names)))
	buf = append(buf, snapMagic[:]...)
	buf = appendFrame(buf, header)
	if _, err := f.Write(buf); err != nil {
		return err
	}
	for _, name := range names {
		g := graphs[name]
		rec := record{op: opCreate, name: name, n: g.NumNodes(), edges: g.Edges()}
		payload := rec.encode(nil)
		if len(payload) > maxRecordPayload {
			// The mutation paths enforce this cap before acknowledging, so
			// reaching it here means a bug upstream; failing the compaction
			// (journal stays authoritative) beats writing a snapshot that
			// loadSnapshotFile would refuse as corrupt.
			return fmt.Errorf("%w: graph %q snapshot record encodes to %d bytes (cap %d)",
				ErrTooLarge, name, len(payload), maxRecordPayload)
		}
		buf = appendFrame(buf[:0], payload)
		if _, err := f.Write(buf); err != nil {
			return err
		}
	}
	return sync(f)
}

// loadSnapshotFile reads the snapshot at path back into a corpus map and
// the sequence number it covers. A missing file is an empty corpus at
// seq 0 (first boot). Anything short of a perfectly formed snapshot —
// bad magic, torn frame, CRC mismatch, wrong graph count, trailing
// bytes — is ErrCorrupt: the atomic-rename protocol guarantees a
// snapshot is either absent or complete, so a broken one means the disk
// lied and replaying the journal on top of it would build a corpus that
// silently disagrees with every acknowledgment we ever sent.
func loadSnapshotFile(path string) (map[string]*graph.Graph, uint64, error) {
	data, err := os.ReadFile(path)
	if errors.Is(err, os.ErrNotExist) {
		return map[string]*graph.Graph{}, 0, nil
	}
	if err != nil {
		return nil, 0, err
	}
	if len(data) < magicLen || [magicLen]byte(data[:magicLen]) != snapMagic {
		return nil, 0, fmt.Errorf("%w: snapshot %s: bad magic", ErrCorrupt, path)
	}
	payloads, _, torn, err := scanFrames(data[magicLen:])
	if err != nil {
		return nil, 0, fmt.Errorf("snapshot %s: %w", path, err)
	}
	if torn {
		return nil, 0, fmt.Errorf("%w: snapshot %s: truncated frame (snapshots are atomic; a torn one is corruption)", ErrCorrupt, path)
	}
	if len(payloads) == 0 {
		return nil, 0, fmt.Errorf("%w: snapshot %s: missing header frame", ErrCorrupt, path)
	}
	d := recDecoder{p: payloads[0]}
	version := d.uvarint("snapshot version")
	lastSeq := d.uvarint("snapshot last seq")
	count := d.uvarint("snapshot graph count")
	if d.err != nil {
		return nil, 0, fmt.Errorf("%w: snapshot %s: header: %v", ErrCorrupt, path, d.err)
	}
	if version != snapshotVersion {
		return nil, 0, fmt.Errorf("%w: snapshot %s: unknown version %d", ErrCorrupt, path, version)
	}
	if uint64(len(payloads)-1) != count {
		return nil, 0, fmt.Errorf("%w: snapshot %s: header declares %d graphs, file holds %d",
			ErrCorrupt, path, count, len(payloads)-1)
	}
	graphs := make(map[string]*graph.Graph, count)
	for _, p := range payloads[1:] {
		rec, err := decodeRecord(p)
		if err != nil {
			return nil, 0, fmt.Errorf("snapshot %s: %w", path, err)
		}
		if rec.op != opCreate {
			return nil, 0, fmt.Errorf("%w: snapshot %s: unexpected op %d in graph record", ErrCorrupt, path, rec.op)
		}
		if _, dup := graphs[rec.name]; dup {
			return nil, 0, fmt.Errorf("%w: snapshot %s: duplicate graph %q", ErrCorrupt, path, rec.name)
		}
		graphs[rec.name] = graph.FromEdges(rec.n, rec.edges)
	}
	return graphs, lastSeq, nil
}
