// Package baseline implements the algorithms the paper compares against in
// Table 1:
//
//   - the local-threshold detector of Censor-Hillel et al. [DISC'20]
//     (C_{2k}-freeness in O(n^{1-1/k}) rounds for k ∈ {2,3,4,5}, whose
//     technique provably does not extend to k ≥ 6 [SIROCCO'23]),
//   - a deterministic full-information k-ball detector in the spirit of
//     Korhonen–Rybicki [OPODIS'17] (Θ̃(n) rounds on bounded-degree
//     graphs; the sublinear deterministic detector of arXiv:2412.11195
//     lives in internal/deterministic),
//   - the round-budget shape of Eden et al. [DISC'19]
//     (Õ(n^{1-2/(k²-2k+4)}) for even k ≥ 4, Õ(n^{1-2/(k²-k+2)}) for odd
//     k ≥ 3), used as the crossover curve in experiment E2,
//   - naive unthresholded color coding (the congestion blow-up the global
//     threshold prevents).
//
// Pooling/determinism contract: the detectors run on the shared engine and
// trial scheduler under the same rules as internal/core — per-node state
// only, randomness derived from (seed, attempt index) via sched.Tag, and
// the k-ball baseline's per-node edge sets use internal/idset with TTL
// upserts. Results are bit-identical for every Workers/Shards/Parallel
// setting; reported witnesses are verified against the input graph.
package baseline
