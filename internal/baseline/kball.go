package baseline

import (
	"fmt"

	"repro/internal/congest"
	"repro/internal/graph"
	"repro/internal/idset"
)

const kindEdge uint8 = 20 // an edge announcement (A = packed endpoints, B = TTL)

// KBallResult reports the deterministic full-information detector.
type KBallResult struct {
	Found    bool
	Witness  []graph.NodeID
	Rounds   int
	Messages int64
	// MaxBallEdges is the largest edge set any node accumulated — the
	// congestion that drives the Θ(n)-type round complexity.
	MaxBallEdges int
}

// queuedEdge is a pending relay: the packed edge and the TTL receivers
// will get (number of further relays allowed).
type queuedEdge struct {
	key uint64
	ttl int32
}

// kballProto floods edge announcements with a relay TTL: an edge
// originating at its endpoint travels at most k-1 hops, so after
// quiescence every node knows every edge having an endpoint at distance
// ≤ k-1. One edge per round per direction (pipelined).
//
// Because pipelining delays messages behind queues, the first arrival of
// an edge is not necessarily via the fewest hops; a node therefore tracks
// the best TTL it has seen per edge and re-relays when a later arrival
// improves it (otherwise far corners of the ball would be missed).
//
// The per-node edge → best-TTL sets use the same flat stamp-guarded
// representation as the color-BFS identifier sets (internal/idset): the
// ball sets are the dominant allocation of the deterministic baseline, and
// unlike Go maps they can be upserted with zero steady-state allocations.
type kballProto struct {
	ttl0  int32        // initial TTL: k-1 hops of propagation
	known *idset.Store // per-node edge → best TTL seen
	queue [][]queuedEdge
	qIdx  []int
}

var _ congest.Handler = (*kballProto)(nil)

func edgeKey(a, b graph.NodeID) uint64 {
	if a > b {
		a, b = b, a
	}
	return uint64(uint32(a))<<32 | uint64(uint32(b))
}

func (p *kballProto) Init(rt *congest.Runtime) {
	n := rt.N()
	p.known = idset.New(n)
	p.queue = make([][]queuedEdge, n)
	p.qIdx = make([]int, n)
	for u := 0; u < n; u++ {
		v := graph.NodeID(u)
		for _, w := range rt.Neighbors(v) {
			key := edgeKey(v, w)
			p.known.Put(v, key, p.ttl0)
			if p.ttl0 > 0 {
				p.queue[v] = append(p.queue[v], queuedEdge{key: key, ttl: p.ttl0 - 1})
			}
		}
		if len(p.queue[v]) > 0 {
			rt.WakeAt(v, 0)
		}
	}
}

func (p *kballProto) HandleRound(rt *congest.Runtime, u graph.NodeID, r int, inbox []congest.Message) {
	for _, m := range inbox {
		if m.Kind() != kindEdge {
			continue
		}
		key, ttl := m.A(), int32(m.B())
		if best, seen := p.known.Get(u, key); seen && best >= ttl {
			continue
		}
		p.known.Put(u, key, ttl)
		if ttl > 0 {
			p.queue[u] = append(p.queue[u], queuedEdge{key: key, ttl: ttl - 1})
		}
	}
	if p.qIdx[u] < len(p.queue[u]) {
		item := p.queue[u][p.qIdx[u]]
		p.qIdx[u]++
		rt.Broadcast(u, kindEdge, item.key, uint64(item.ttl))
		if p.qIdx[u] < len(p.queue[u]) {
			rt.WakeAt(u, r+1)
		}
	}
}

// ball returns the learned edge set of node u as a map (tests only).
func (p *kballProto) ball(u graph.NodeID) map[uint64]int32 {
	out := make(map[uint64]int32, p.known.Len(u))
	for _, key := range p.known.AppendIDs(u, nil) {
		ttl, _ := p.known.Get(u, key)
		out[key] = ttl
	}
	return out
}

// DetectKBall is a deterministic C_{2k} detector in the spirit of
// Korhonen–Rybicki: every node floods its incident edges for k-1 relay
// hops (pipelined, one edge per round per direction), after which each
// node knows every edge with an endpoint at distance ≤ k-1 — a superset of
// every 2k-cycle through it. Detection is then node-local; since the local
// computation has no round cost and its outcome equals exact global
// search, the simulator performs the search once globally.
//
// Round complexity: the pipelined flood costs Θ(max_v |E(ball_{k-1}(v))|)
// rounds — Θ(n) on bounded-degree graphs, matching the deterministic Õ(n)
// row of Table 1.
func DetectKBall(g *graph.Graph, k int, seed uint64, workers int) (*KBallResult, error) {
	if k < 2 {
		return nil, fmt.Errorf("baseline: k-ball detection needs k ≥ 2")
	}
	net := congest.NewNetwork(g, seed)
	eng := congest.NewEngine(net)
	eng.Workers = workers
	proto := &kballProto{ttl0: int32(k - 1)}
	rep, err := eng.Run(proto)
	if err != nil {
		return nil, fmt.Errorf("baseline: k-ball flood: %w", err)
	}
	res := &KBallResult{Rounds: rep.Rounds, Messages: rep.Messages}
	res.MaxBallEdges = proto.known.MaxLen()
	if cyc := graph.FindCycleLen(g, 2*k); cyc != nil {
		res.Found = true
		res.Witness = cyc
	}
	return res, nil
}
