package baseline

import (
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/graph"
)

// EdenExponent returns the round-complexity exponent of Eden et al.
// [DISC'19] for C_{2k}-freeness: 1 - 2/(k²-2k+4) for even k ≥ 4 and
// 1 - 2/(k²-k+2) for odd k ≥ 3 (Table 1 rows [16]).
func EdenExponent(k int) (float64, error) {
	switch {
	case k >= 4 && k%2 == 0:
		return 1 - 2/float64(k*k-2*k+4), nil
	case k >= 3 && k%2 == 1:
		return 1 - 2/float64(k*k-k+2), nil
	default:
		return 0, fmt.Errorf("baseline: Eden et al. bound defined for k ≥ 3, got %d", k)
	}
}

// EdenBudgetRounds is the analytic round budget Õ(n^{EdenExponent}) with
// unit leading constant and a single log n factor for the Õ.
func EdenBudgetRounds(n, k int) (float64, error) {
	exp, err := EdenExponent(k)
	if err != nil {
		return 0, err
	}
	return math.Pow(float64(n), exp) * math.Log(float64(n)+2), nil
}

// EdenShapeResult pairs a functional detection outcome with the [DISC'19]
// analytic budget for the same (n, k), for crossover plots (experiment
// E2). The detection core reuses the repository's color-BFS machinery —
// re-implementing all of [DISC'19] is out of scope (see the substitution
// matrix in docs/ARCHITECTURE.md); the row's *curve* is its budget.
type EdenShapeResult struct {
	Found        bool
	Witness      []graph.NodeID
	BudgetRounds float64
	Exponent     float64
}

// DetectEdenShape runs the functional core and attaches the Eden et al.
// budget.
func DetectEdenShape(g *graph.Graph, k int, opt core.Options) (*EdenShapeResult, error) {
	exp, err := EdenExponent(k)
	if err != nil {
		return nil, err
	}
	budget, err := EdenBudgetRounds(g.NumNodes(), k)
	if err != nil {
		return nil, err
	}
	res, err := core.DetectEvenCycle(g, k, opt)
	if err != nil {
		return nil, err
	}
	return &EdenShapeResult{
		Found:        res.Found,
		Witness:      res.Witness,
		BudgetRounds: budget,
		Exponent:     exp,
	}, nil
}

// VanApeldoornDeVosExponent is the quantum F_{2k} exponent of [PODC'22]:
// 1/2 - 1/(4k+2) (Table 1 row [33]); the paper improves it to 1/2 - 1/2k.
func VanApeldoornDeVosExponent(k int) float64 {
	return 0.5 - 1/float64(4*k+2)
}

// ThisPaperClassicalExponent is 1 - 1/k (Theorem 1).
func ThisPaperClassicalExponent(k int) float64 { return 1 - 1/float64(k) }

// ThisPaperQuantumExponent is 1/2 - 1/2k (Theorem 2).
func ThisPaperQuantumExponent(k int) float64 { return 0.5 - 1/float64(2*k) }

// TriangleExponent is the Õ(n^{1/3}) bound of Chang–Saranurak [11]
// (analytic row only).
const TriangleExponent = 1.0 / 3

// QuantumTriangleExponent is the Õ(n^{1/5}) bound of [8] (analytic row
// only).
const QuantumTriangleExponent = 1.0 / 5
