package baseline

import (
	"math"
	"testing"

	"repro/internal/congest"
	"repro/internal/core"
	"repro/internal/graph"
)

func TestLocalThresholdFindsPlantedC4(t *testing.T) {
	rng := graph.NewRand(1)
	g, _, err := graph.PlantedLight(100, 4, 1.8, rng)
	if err != nil {
		t.Fatal(err)
	}
	res, err := DetectLocalThreshold(g, 2, LocalThresholdOptions{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Found {
		t.Fatalf("planted C_4 missed after %d attempts", res.AttemptsRun)
	}
	if err := graph.IsSimpleCycle(g, res.Witness, 4); err != nil {
		t.Fatalf("invalid witness: %v", err)
	}
	// The local threshold caps congestion at τ (+1 before discard).
	if res.MaxCongestion > 17 {
		t.Fatalf("congestion %d exceeds τ=16", res.MaxCongestion)
	}
}

func TestLocalThresholdOneSided(t *testing.T) {
	g, err := graph.ProjectivePlaneIncidence(3)
	if err != nil {
		t.Fatal(err)
	}
	res, err := DetectLocalThreshold(g, 2, LocalThresholdOptions{Seed: 1, Attempts: 300})
	if err != nil {
		t.Fatal(err)
	}
	if res.Found {
		t.Fatal("false positive on C₄-free incidence graph")
	}
}

func TestLocalThresholdTinyGraph(t *testing.T) {
	res, err := DetectLocalThreshold(graph.Path(3), 2, LocalThresholdOptions{})
	if err != nil || res.Found {
		t.Fatalf("res=%+v err=%v", res, err)
	}
	if _, err := DetectLocalThreshold(graph.Cycle(8), 1, LocalThresholdOptions{}); err == nil {
		t.Fatal("k=1 accepted")
	}
}

// trapGraph builds the A2 congestion trap for k=3: a C_6 = (u0,…,u5), a
// source s adjacent to u0, and `width` trap vertices adjacent to both s
// and u1. Trap vertices create only C_4s (irrelevant to C_6 detection, and
// no new C_6), but when s's neighborhood seeds the exploration, u1 — the
// cycle's mandatory relay — receives ≈ width/6 color-0 identifiers and a
// constant threshold discards them, killing the only C_6. This is the
// mechanism behind the [SIROCCO'23] impossibility for constant (local)
// thresholds; the global threshold τ(n) of Algorithm 1 is immune.
func trapGraph(width int) (*graph.Graph, graph.NodeID, []graph.NodeID) {
	b := graph.NewBuilder(7 + width)
	cyc := make([]graph.NodeID, 6)
	for i := range cyc {
		cyc[i] = graph.NodeID(i)
		b.AddEdge(graph.NodeID(i), graph.NodeID((i+1)%6))
	}
	s := graph.NodeID(6)
	b.AddEdge(s, cyc[0])
	for i := 0; i < width; i++ {
		tr := graph.NodeID(7 + i)
		b.AddEdge(s, tr)
		b.AddEdge(tr, cyc[1])
	}
	return b.Build(), s, cyc
}

// With a perfect coloring, the trap defeats any constant threshold while a
// large (global-style) threshold sails through — the core of experiment A2.
func TestTrapDefeatsConstantThreshold(t *testing.T) {
	g, s, cyc := trapGraph(60)
	if !graph.HasCycleLen(g, 6) {
		t.Fatal("test setup: no C_6")
	}
	n := g.NumNodes()
	colors := make([]int8, n) // traps all colored 0 (worst case)
	for i, v := range cyc {
		colors[v] = int8(i)
	}
	colors[s] = 5 // inert
	inX := make([]bool, n)
	for _, w := range g.Neighbors(s) {
		inX[w] = true // X = N(s), the local-threshold seed set
	}
	all := make([]bool, n)
	for i := range all {
		all[i] = true
	}
	run := func(tau int) bool {
		bfs, err := core.NewColorBFS(n, core.ColorBFSSpec{
			L: 6, Color: colors, InH: all, InX: inX, Threshold: tau, SeedProb: 1,
		})
		if err != nil {
			t.Fatal(err)
		}
		net := congest.NewNetwork(g, 1)
		if _, err := bfs.Run(congest.NewEngine(net)); err != nil {
			t.Fatal(err)
		}
		return len(bfs.Detections()) > 0
	}
	for _, tau := range []int{2, 4, 8, 16} {
		if run(tau) {
			t.Fatalf("constant threshold τ=%d detected through the trap (width 60)", tau)
		}
	}
	if !run(n) {
		t.Fatal("global threshold τ=n missed the cycle")
	}
}

// The same trap at driver level with a fixed source: a constant threshold
// detects (via lucky colorings that color few traps 0) strictly less often
// than the unconstrained threshold under an equal attempt budget.
func TestLocalThresholdTrapLowersDetection(t *testing.T) {
	if testing.Short() {
		t.Skip("statistical trap comparison skipped in -short mode")
	}
	g, s, _ := trapGraph(60)
	rate := func(tau int) int {
		found := 0
		for seed := uint64(0); seed < 3; seed++ {
			res, err := DetectLocalThreshold(g, 3, LocalThresholdOptions{
				Seed: seed, Tau: tau, Attempts: 20000,
				HasFixedSource: true, FixedSource: s,
			})
			if err != nil {
				t.Fatal(err)
			}
			if res.Found {
				found++
			}
		}
		return found
	}
	constTau, bigTau := rate(4), rate(g.NumNodes())
	if constTau > bigTau {
		t.Fatalf("constant threshold found more often (%d vs %d)", constTau, bigTau)
	}
	if bigTau == 0 {
		t.Fatal("unconstrained threshold never detected (attempt budget too small?)")
	}
}

func TestNaiveDetectCongestionBlowup(t *testing.T) {
	rng := graph.NewRand(3)
	// Hub instances are where congestion explodes without a threshold.
	g, _, err := graph.PlantedHeavy(300, 4, 200, 1.2, rng)
	if err != nil {
		t.Fatal(err)
	}
	res, err := NaiveDetect(g, 2, 60, 5)
	if err != nil {
		t.Fatal(err)
	}
	if res.MaxCongestion < 15 {
		t.Fatalf("naive congestion %d suspiciously low around a degree-200 hub", res.MaxCongestion)
	}
	if !res.Found {
		t.Fatalf("naive color coding missed planted C_4 in %d iterations", res.AttemptsRun)
	}
}

func TestKBallLearnsExactBall(t *testing.T) {
	rng := graph.NewRand(4)
	g := graph.Gnm(40, 80, rng)
	k := 3
	net := congest.NewNetwork(g, 1)
	eng := congest.NewEngine(net)
	proto := &kballProto{ttl0: int32(k - 1)}
	if _, err := eng.Run(proto); err != nil {
		t.Fatal(err)
	}
	for v := 0; v < g.NumNodes(); v++ {
		dist := g.BFSDistances(graph.NodeID(v))
		want := make(map[uint64]struct{})
		for _, e := range g.Edges() {
			if (dist[e[0]] >= 0 && int(dist[e[0]]) <= k-1) ||
				(dist[e[1]] >= 0 && int(dist[e[1]]) <= k-1) {
				want[edgeKey(e[0], e[1])] = struct{}{}
			}
		}
		got := proto.ball(graph.NodeID(v))
		for key := range want {
			if _, ok := got[key]; !ok {
				t.Fatalf("node %d missing ball edge %x", v, key)
			}
		}
		for key := range got {
			if _, ok := want[key]; !ok {
				t.Fatalf("node %d learned out-of-ball edge %x", v, key)
			}
		}
	}
}

func TestKBallDetects(t *testing.T) {
	rng := graph.NewRand(5)
	g, _, err := graph.PlantedLight(80, 6, 1.5, rng)
	if err != nil {
		t.Fatal(err)
	}
	res, err := DetectKBall(g, 3, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Found {
		t.Fatal("deterministic detector missed planted C_6")
	}
	if err := graph.IsSimpleCycle(g, res.Witness, 6); err != nil {
		t.Fatalf("invalid witness: %v", err)
	}
	if res.Rounds == 0 || res.MaxBallEdges == 0 {
		t.Fatalf("metrics empty: %+v", res)
	}

	free := graph.HighGirth(80, 100, 6, rng)
	res, err = DetectKBall(free, 3, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Found {
		t.Fatal("false positive on girth>6 graph")
	}
}

// Round complexity of the deterministic detector scales with the ball
// volume — Θ(n) once some ball contains Θ(n) edges (hub/star instances),
// which is the Θ̃(n)-type behaviour of the deterministic row of Table 1.
// (On bounded-degree graphs the (k-1)-ball has O(1) edges and the flood is
// O(1) rounds; the Θ̃(n) lower bound concerns worst-case instances.)
func TestKBallRoundsGrowOnHubs(t *testing.T) {
	rounds := func(n int) int {
		// Star: the hub's n edges must transit every leaf's relay queue.
		res, err := DetectKBall(graph.Star(n), 3, 1, 0)
		if err != nil {
			t.Fatal(err)
		}
		return res.Rounds
	}
	r1, r2 := rounds(100), rounds(400)
	ratio := float64(r2) / float64(r1)
	if ratio < 2.5 {
		t.Fatalf("rounds(400)/rounds(100) = %v (r1=%d r2=%d), want ≈ 4", ratio, r1, r2)
	}
}

func TestEdenExponents(t *testing.T) {
	for _, tc := range []struct {
		k    int
		want float64
	}{
		{4, 1 - 2.0/12}, // even: k²-2k+4 = 12
		{6, 1 - 2.0/28}, // even: 28
		{3, 1 - 2.0/8},  // odd: k²-k+2 = 8
		{7, 1 - 2.0/44}, // odd: 44
	} {
		got, err := EdenExponent(tc.k)
		if err != nil {
			t.Fatalf("k=%d: %v", tc.k, err)
		}
		if math.Abs(got-tc.want) > 1e-12 {
			t.Fatalf("k=%d: exponent %v, want %v", tc.k, got, tc.want)
		}
	}
	if _, err := EdenExponent(2); err == nil {
		t.Fatal("k=2 accepted")
	}
}

// The paper's headline improvement: for every k ≥ 6, 1-1/k beats the Eden
// et al. exponent; for k ≤ 5 Censor-Hillel et al. already had 1-1/k.
func TestThisPaperBeatsEdenForLargeK(t *testing.T) {
	for k := 3; k <= 12; k++ {
		eden, err := EdenExponent(k)
		if err != nil {
			t.Fatal(err)
		}
		ours := ThisPaperClassicalExponent(k)
		if k >= 4 && ours >= eden {
			t.Fatalf("k=%d: ours %v not better than Eden %v", k, ours, eden)
		}
	}
}

// The quantum improvement over van Apeldoorn–de Vos for bounded-length
// detection: 1/2-1/2k < 1/2-1/(4k+2) for all k ≥ 2.
func TestQuantumBeatsVanApeldoornDeVos(t *testing.T) {
	for k := 2; k <= 10; k++ {
		ours := ThisPaperQuantumExponent(k)
		theirs := VanApeldoornDeVosExponent(k)
		if ours >= theirs {
			t.Fatalf("k=%d: ours %v not better than [33] %v", k, ours, theirs)
		}
	}
}

func TestDetectEdenShape(t *testing.T) {
	rng := graph.NewRand(6)
	g, _, err := graph.PlantedLight(64, 6, 1.5, rng)
	if err != nil {
		t.Fatal(err)
	}
	res, err := DetectEdenShape(g, 3, core.Options{Seed: 1, MaxIterations: 50})
	if err != nil {
		t.Fatal(err)
	}
	if res.BudgetRounds <= 0 || res.Exponent <= 0 {
		t.Fatalf("budget not computed: %+v", res)
	}
}
