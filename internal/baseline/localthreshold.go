package baseline

import (
	"fmt"
	"math"

	"repro/internal/congest"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/sched"
)

// LocalThresholdOptions tunes the [DISC'20]-style detector.
type LocalThresholdOptions struct {
	// Tau is the constant local threshold τ_k (0 means 16). The original
	// analysis proves a suitable constant exists for k ∈ {2,…,5}; its
	// value is not spelled out, so it is a parameter here (experiment A2
	// sweeps it).
	Tau int
	// Attempts overrides the number of (source, coloring) attempts;
	// 0 means the faithful Θ(n^{1-1/k}) (with constant 4·(2k)^{2k}
	// mirroring the color-coding repetition).
	Attempts int
	// AttemptFactor scales the faithful attempt count without replacing
	// it (ignored when Attempts > 0; 0 means 1).
	AttemptFactor float64
	// HasFixedSource pins the source to FixedSource in every attempt
	// instead of sampling it uniformly (used by the A2 trap experiments).
	HasFixedSource bool
	FixedSource    graph.NodeID
	Seed           uint64
	Workers        int
	// Shards / ParallelThreshold tune the engine's parallel delivery
	// phase (see congest.Engine); 0 keeps the engine defaults.
	// Transcripts are bit-identical for every setting.
	Shards            int
	ParallelThreshold int
	// Parallel is the number of attempts in flight (0/1 sequential,
	// negative GOMAXPROCS); results are deterministic regardless.
	Parallel  int
	KeepGoing bool
}

// LocalThresholdResult reports a run.
type LocalThresholdResult struct {
	Found         bool
	Witness       []graph.NodeID
	Rounds        int
	Messages      int64
	AttemptsRun   int
	MaxCongestion int
}

// DetectLocalThreshold runs the local-threshold algorithm of
// Censor-Hillel et al.: each attempt selects a source s uniformly at
// random (shared randomness), colors every node uniformly in {0,…,2k-1},
// and lets the color-0 neighbors of s launch a color-BFS with the constant
// threshold τ_k. Each attempt costs at most k·τ_k = O(1) rounds; the
// Θ(n^{1-1/k}) attempts give constant success probability for
// k ∈ {2,…,5}. For k ≥ 6 no constant threshold works on all instances
// (Fraigniaud et al. [SIROCCO'23]) — experiment A2 exhibits the failure.
func DetectLocalThreshold(g *graph.Graph, k int, opt LocalThresholdOptions) (*LocalThresholdResult, error) {
	if k < 2 {
		return nil, fmt.Errorf("baseline: local threshold needs k ≥ 2, got %d", k)
	}
	n := g.NumNodes()
	if n < 2*k {
		return &LocalThresholdResult{}, nil
	}
	tau := opt.Tau
	if tau == 0 {
		tau = 16
	}
	attempts := opt.Attempts
	if attempts == 0 {
		factor := opt.AttemptFactor
		if factor == 0 {
			factor = 1
		}
		base := 4 * math.Pow(2*float64(k), 2*float64(k)) *
			math.Pow(float64(n), 1-1/float64(k)) * factor
		if base > math.MaxInt32 {
			base = math.MaxInt32
		}
		attempts = int(math.Ceil(base))
	}

	net := congest.NewNetwork(g, opt.Seed)
	eng := congest.NewEngine(net)
	eng.Workers = opt.Workers
	eng.Shards = opt.Shards
	eng.ParallelThreshold = opt.ParallelThreshold

	all := make([]bool, n)
	for v := range all {
		all[v] = true
	}
	L := 2 * k

	// Each (source, coloring) attempt is an independent trial on the
	// shared scheduler, with all shared randomness derived from the
	// attempt index so the outcome is the same for every Parallel setting.
	type attemptOutcome struct {
		rep     congest.Report
		maxCong int
		found   bool
		witness []graph.NodeID
	}
	trial := func(a int) (*attemptOutcome, error) {
		rng := graph.NewRand(sched.Tag(opt.Seed, 0x10ca1, uint64(a)))
		s := graph.NodeID(rng.Int32N(int32(n)))
		if opt.HasFixedSource {
			s = opt.FixedSource
		}
		colors := make([]int8, n)
		for v := range colors {
			colors[v] = int8(rng.IntN(L))
		}
		inX := make([]bool, n)
		for _, w := range g.Neighbors(s) {
			inX[w] = true
		}
		bfs, err := core.NewColorBFS(n, core.ColorBFSSpec{
			L:         L,
			Color:     colors,
			InH:       all,
			InX:       inX,
			Threshold: tau,
			SeedProb:  1,
		})
		if err != nil {
			return nil, fmt.Errorf("baseline: local threshold: %w", err)
		}
		rep, err := bfs.RunSessions(eng, sched.Tag(opt.Seed, 0x10ca2, uint64(a)))
		if err != nil {
			return nil, fmt.Errorf("baseline: local threshold: %w", err)
		}
		out := &attemptOutcome{maxCong: bfs.MaxCongestion()}
		out.rep.Accumulate(rep)
		if ds := bfs.Detections(); len(ds) > 0 {
			witness, err := bfs.Witness(ds[0])
			if err != nil {
				return nil, fmt.Errorf("baseline: local threshold witness: %w", err)
			}
			if err := graph.IsSimpleCycle(g, witness, L); err != nil {
				return nil, fmt.Errorf("baseline: local threshold invalid witness: %w", err)
			}
			out.found = true
			out.witness = witness
		}
		return out, nil
	}
	res := &LocalThresholdResult{}
	total := &congest.Report{}
	fold := func(a int, out *attemptOutcome) bool {
		res.AttemptsRun = a + 1
		total.Accumulate(&out.rep)
		if out.maxCong > res.MaxCongestion {
			res.MaxCongestion = out.maxCong
		}
		if out.found && !res.Found {
			res.Found = true
			res.Witness = out.witness
		}
		return res.Found && !opt.KeepGoing
	}
	runner := sched.TrialRunner{Workers: opt.Parallel}
	if _, err := sched.Run(runner, attempts, trial, fold); err != nil {
		return nil, err
	}
	res.Rounds = total.Rounds
	res.Messages = total.Messages
	return res, nil
}

// NaiveDetect runs unthresholded colored BFS (threshold = n, every node a
// seed) — classical color coding with no congestion control. Its round
// count blows up with the identifier load; it is the negative control for
// the threshold experiments.
func NaiveDetect(g *graph.Graph, k int, iterations int, seed uint64) (*LocalThresholdResult, error) {
	if k < 2 {
		return nil, fmt.Errorf("baseline: naive detection needs k ≥ 2")
	}
	n := g.NumNodes()
	net := congest.NewNetwork(g, seed)
	eng := congest.NewEngine(net)
	all := make([]bool, n)
	for v := range all {
		all[v] = true
	}
	colors := make([]int8, n)
	rng := graph.NewRand(seed ^ 0x0a11)
	L := 2 * k
	res := &LocalThresholdResult{}
	total := &congest.Report{}
	for it := 0; it < iterations; it++ {
		res.AttemptsRun = it + 1
		for v := range colors {
			colors[v] = int8(rng.IntN(L))
		}
		bfs, err := core.NewColorBFS(n, core.ColorBFSSpec{
			L: L, Color: colors, InH: all, InX: all,
			Threshold: n + 1, SeedProb: 1,
		})
		if err != nil {
			return nil, err
		}
		rep, err := bfs.Run(eng)
		if err != nil {
			return nil, err
		}
		total.Accumulate(rep)
		if c := bfs.MaxCongestion(); c > res.MaxCongestion {
			res.MaxCongestion = c
		}
		if ds := bfs.Detections(); len(ds) > 0 && !res.Found {
			witness, err := bfs.Witness(ds[0])
			if err != nil {
				return nil, err
			}
			if err := graph.IsSimpleCycle(g, witness, L); err != nil {
				return nil, err
			}
			res.Found = true
			res.Witness = witness
			break
		}
	}
	res.Rounds = total.Rounds
	res.Messages = total.Messages
	return res, nil
}
