package core

import (
	"runtime/debug"
	"testing"

	"repro/internal/congest"
	"repro/internal/graph"
)

// TestColorBFSPooledSteadyStateAllocs pins the allocation behavior the
// pooled flat-set layer exists to provide: once a pooled invocation has
// warmed up its tables and queues on a graph, further acquire/run/release
// cycles allocate only the per-session constants of the engine (reports
// and handler headers), independent of n or the identifier traffic.
func TestColorBFSPooledSteadyStateAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation changes allocation counts")
	}
	defer debug.SetGCPercent(debug.SetGCPercent(-1))
	g, cyc, err := graph.PlantedLight(600, 6, 2.0, graph.NewRand(5))
	if err != nil {
		t.Fatal(err)
	}
	n := g.NumNodes()
	colors := perfectColoring(n, cyc)
	all := allTrue(n)
	eng := congest.NewEngine(congest.NewNetwork(g, 9))
	pool := NewColorBFSPool(n)
	for _, mode := range []struct {
		name      string
		pipelined bool
		budget    float64
	}{
		// Batch runs tmax engine sessions (one *Report each); pipelined one.
		{"batch", false, 15},
		{"pipelined", true, 10},
	} {
		t.Run(mode.name, func(t *testing.T) {
			spec := ColorBFSSpec{
				L: 6, Color: colors, InH: all, InX: all,
				Threshold: n, SeedProb: 1, Pipelined: mode.pipelined,
			}
			run := func() {
				bfs, err := pool.Acquire(spec)
				if err != nil {
					t.Fatal(err)
				}
				if _, err := bfs.Run(eng); err != nil {
					t.Fatal(err)
				}
				if len(bfs.Detections()) == 0 {
					t.Fatal("planted cycle missed under perfect coloring")
				}
				pool.Release(bfs)
			}
			for i := 0; i < 3; i++ {
				run() // warm up table/queue capacities and the session pool
			}
			avg := testing.AllocsPerRun(30, run)
			if avg > mode.budget {
				t.Fatalf("pooled steady state allocates %.1f allocs/run, budget %.0f", avg, mode.budget)
			}
			t.Logf("steady state: %.1f allocs/run", avg)
		})
	}
}
