package core

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/idset"
)

// Witness reconstructs the cycle certified by a detection, walking the
// parent pointers recorded at identifier insertion. The reconstruction is a
// simulator-side convenience: the paper's rejection argument
// (Section 2.2, "Acceptance without error") proves the same cycle exists
// whenever a node rejects — here we materialize it so that every rejection
// in the test suite can be re-verified against the input graph.
//
// The returned vertex sequence has length L for a regular detection and
// L-1 for a skip (merged C_{L-1}) detection, ordered so that consecutive
// vertices (cyclically) are adjacent.
func (b *ColorBFS) Witness(d Detection) ([]graph.NodeID, error) {
	seed := graph.NodeID(d.Seed)
	wantLen := b.spec.L
	ascSteps := b.m
	if d.Skip {
		wantLen = b.spec.L - 1
		ascSteps = b.m - 1
	}

	// Ascending side: detector → colors m-1, …, 1 → seed.
	ascPath, err := b.walk(b.asc, d.Node, d.Seed, ascSteps, seed)
	if err != nil {
		return nil, fmt.Errorf("core: ascending witness walk: %w", err)
	}

	// Descending side: detector → colors m+1, …, L-1 → seed (for a skip
	// detection the first hop uses the skip pointer to the (m+1)-colored
	// relay, then continues through the descending sets).
	var descPath []graph.NodeID
	if d.Skip {
		relay, ok := b.skip.Get(d.Node, d.Seed)
		if !ok {
			return nil, fmt.Errorf("core: skip pointer missing at node %d", d.Node)
		}
		rest, err := b.walk(b.desc, relay, d.Seed, b.spec.L-b.m-1, seed)
		if err != nil {
			return nil, fmt.Errorf("core: descending witness walk (skip): %w", err)
		}
		descPath = append([]graph.NodeID{relay}, rest...)
	} else {
		descPath, err = b.walk(b.desc, d.Node, d.Seed, b.spec.L-b.m, seed)
		if err != nil {
			return nil, fmt.Errorf("core: descending witness walk: %w", err)
		}
	}

	// Assemble: seed, ascending internals in increasing color order,
	// detector, descending internals in decreasing color order.
	cycle := make([]graph.NodeID, 0, wantLen)
	cycle = append(cycle, seed)
	for i := len(ascPath) - 2; i >= 0; i-- { // ascPath ends at seed
		cycle = append(cycle, ascPath[i])
	}
	cycle = append(cycle, d.Node)
	for i := 0; i < len(descPath)-1; i++ {
		cycle = append(cycle, descPath[i])
	}
	if len(cycle) != wantLen {
		return nil, fmt.Errorf("core: witness has %d vertices, want %d", len(cycle), wantLen)
	}
	return cycle, nil
}

// walk follows parent pointers for `steps` hops starting one hop below
// `from`, returning the visited vertices (excluding `from`, ending at what
// should be the seed).
func (b *ColorBFS) walk(sets *idset.Store, from graph.NodeID, id uint64, steps int, seed graph.NodeID) ([]graph.NodeID, error) {
	out := make([]graph.NodeID, 0, steps)
	cur := from
	for i := 0; i < steps; i++ {
		next, ok := sets.Get(cur, id)
		if !ok {
			return nil, fmt.Errorf("parent pointer missing at node %d (hop %d)", cur, i)
		}
		out = append(out, next)
		cur = next
	}
	if cur != seed {
		return nil, fmt.Errorf("walk ended at %d, want seed %d", cur, seed)
	}
	return out, nil
}
