package core

import (
	"fmt"

	"repro/internal/congest"
	"repro/internal/graph"
	"repro/internal/sched"
)

// FusedItem is one request of a fused detection batch: a graph, the
// master seed its randomness derives from, and its own trial budget.
type FusedItem struct {
	Graph *graph.Graph
	Seed  uint64
	// Iterations is the coloring-repetition budget for this item; fused
	// runs always state an explicit finite budget (≥ 1).
	Iterations int
}

// DetectEvenCycleFused runs Algorithm 1 for a batch of independent
// requests in fused engine sessions on the disjoint union of their
// graphs. Components of a disjoint union never exchange messages, so
// each component executes exactly the protocol it would solo — provided
// everything n-dependent is per-component: the node randomness streams
// (per-node seed bases reproduce each component's solo network), the
// parameters p, n^{1/k} and τ (applied per node), and the iteration
// colorings (drawn from each component's own (seed, iteration) stream).
// Under that contract results[i] is identical to
// DetectEvenCycle(items[i].Graph, k, opt′) with opt′.Seed = items[i].Seed
// and opt′.MaxIterations = items[i].Iterations — verdict, witness (in
// the item's own vertex IDs), rounds, messages, bits, congestion
// watermark, overflow flag, iterations run and set sizes — which the
// equivalence suite pins. A component whose detector finds a cycle (or
// exhausts its budget) stops scheduling its nodes at the end of that
// iteration while the rest of the batch continues.
//
// opt.Seed, opt.MaxIterations and opt.Parallel are ignored (per-item
// seeds and budgets; iterations run sequentially on the one fused
// engine). Randomized seed activation (SeedProb < 1) and fault injection
// (DropProb) are not supported on the fused path — the service's miss
// path never sets either.
func DetectEvenCycleFused(items []FusedItem, k int, opt Options) ([]*Result, error) {
	if len(items) == 0 {
		return nil, fmt.Errorf("core: empty fused batch")
	}
	if opt.SeedProb != 0 && opt.SeedProb != 1 {
		return nil, fmt.Errorf("core: fused sessions do not support randomized seed activation (SeedProb %v)", opt.SeedProb)
	}
	if opt.DropProb != 0 {
		return nil, fmt.Errorf("core: fused sessions do not support fault injection (DropProb %v)", opt.DropProb)
	}
	eps := opt.Eps
	if eps == 0 {
		eps = 1.0 / 3
	}

	B := len(items)
	gs := make([]*graph.Graph, B)
	seeds := make([]uint64, B)
	params := make([]Params, B)
	for i, it := range items {
		if it.Iterations < 1 {
			return nil, fmt.Errorf("core: fused item %d has no trial budget (iterations %d)", i, it.Iterations)
		}
		p, err := NewParams(it.Graph.NumNodes(), k, eps)
		if err != nil {
			return nil, fmt.Errorf("core: fused item %d: %w", i, err)
		}
		p.Iterations = it.Iterations
		if opt.POverride > 0 {
			p.ApplyP(opt.POverride)
		}
		if opt.Threshold > 0 {
			p.Tau = opt.Threshold
		}
		gs[i], seeds[i], params[i] = it.Graph, it.Seed, p
	}

	eng, parts := congest.NewFusedEngine(gs, seeds)
	eng.Workers = opt.Workers
	eng.Shards = opt.Shards
	eng.ParallelThreshold = opt.ParallelThreshold
	eng.MaxRounds = opt.MaxRounds
	eng.Cancel = opt.Cancel
	eng.Observe = opt.Observe
	total := eng.Network().NumNodes()

	// Instructions 1–5 for the whole batch in one session: per-node p and
	// n^{1/k} make every component's membership draws its own (the session
	// tag of this first run matches a solo engine's first run, and the
	// per-node seed bases make node streams component-solo-identical).
	sets := &Sets{
		Params:     params[0], // supplies the shared K; n-dependent fields are per node
		PAt:        make([]float64, total),
		LightMaxAt: make([]int32, total),
	}
	thrAt := make([]int32, total)
	for i := range items {
		lo, hi := parts.Component(i)
		bfsThreshold := params[i].Tau
		if opt.BFSThreshold > 0 {
			bfsThreshold = opt.BFSThreshold
		}
		for v := lo; v < hi; v++ {
			sets.PAt[v] = params[i].P
			sets.LightMaxAt[v] = int32(params[i].LightMax)
			thrAt[v] = int32(bfsThreshold)
		}
	}
	setsRep, err := eng.Run(sets)
	if err != nil {
		return nil, fmt.Errorf("core: fused set construction: %w", err)
	}

	results := make([]*Result, B)
	active := make([]bool, B)
	var totals []congest.CompStats
	for i := range items {
		lo, hi := parts.Component(i)
		res := &Result{Params: params[i]}
		for v := lo; v < hi; v++ {
			if sets.InU[v] {
				res.SizeU++
			}
			if sets.InS[v] {
				res.SizeS++
			}
			if sets.InW[v] {
				res.SizeW++
			}
		}
		results[i] = res
		active[i] = true
	}
	totals = append(totals, setsRep.PerComp...)

	// Shared mask arrays for the three calls. Deactivating a component
	// zeroes its block in every mask (and its colors stay whatever the
	// last active iteration drew — harmless, since membership gates every
	// send and accept), so finished components cost nothing while the
	// rest of the batch continues.
	all := make([]bool, total)
	notS := make([]bool, total)
	for v := 0; v < total; v++ {
		all[v] = true
		notS[v] = !sets.InS[v]
	}
	deactivate := func(i int) {
		active[i] = false
		lo, hi := parts.Component(i)
		for v := lo; v < hi; v++ {
			all[v] = false
			notS[v] = false
			sets.InU[v] = false
			sets.InS[v] = false
			sets.InW[v] = false
		}
	}

	L := 2 * k
	calls := []struct {
		name     string
		inH, inX []bool
	}{
		{"light (G[U],U)", sets.InU, sets.InU},
		{"selected (G,S)", all, sets.InS},
		{"heavy (G∖S,W)", notS, sets.InW},
	}
	pool := NewColorBFSPool(total)
	foundAt := make([]bool, B) // found during the current iteration

	for it := 0; ; it++ {
		anyActive := false
		for i := range items {
			if active[i] && it >= params[i].Iterations {
				deactivate(i)
			}
			anyActive = anyActive || active[i]
		}
		if !anyActive {
			break
		}
		// A fresh coloring array per iteration: pooled invocations cache
		// their send-phase buckets by the Color slice's identity, so the
		// slice must change when its content does. Inactive components keep
		// color 0; their nodes are outside every H and never scheduled.
		colors := make([]int8, total)
		for i := range items {
			if !active[i] {
				continue
			}
			lo, hi := parts.Component(i)
			iterationColorsInto(colors[lo:hi], L, seeds[i], it)
			foundAt[i] = false
		}
		for ci, call := range calls {
			bfs, err := pool.Acquire(ColorBFSSpec{
				L:           L,
				Color:       colors,
				InH:         call.inH,
				InX:         call.inX,
				Threshold:   1, // ignored: ThresholdAt is set
				ThresholdAt: thrAt,
				SeedProb:    1,
				Pipelined:   opt.Pipelined,
			})
			if err != nil {
				return nil, fmt.Errorf("core: fused %s: %w", call.name, err)
			}
			rep, err := bfs.RunSessions(eng, sched.Tag(0xf05ed, uint64(it), uint64(ci)))
			if err != nil {
				return nil, fmt.Errorf("core: fused %s: %w", call.name, err)
			}
			dets := bfs.Detections()
			for i := range items {
				if !active[i] {
					continue
				}
				lo, hi := parts.Component(i)
				totals[i].Rounds += rep.PerComp[i].Rounds
				totals[i].Messages += rep.PerComp[i].Messages
				res := results[i]
				if c := bfs.MaxCongestionRange(lo, hi); c > res.MaxCongestion {
					res.MaxCongestion = c
				}
				res.Overflowed = res.Overflowed || bfs.OverflowedRange(lo, hi)
				if res.Found || foundAt[i] {
					continue
				}
				for _, d := range dets {
					if d.Node < lo || d.Node >= hi {
						continue
					}
					witness, err := bfs.Witness(d)
					if err != nil {
						return nil, fmt.Errorf("core: fused %s: %w", call.name, err)
					}
					for j := range witness {
						witness[j] -= lo
					}
					if err := graph.IsSimpleCycle(items[i].Graph, witness, L); err != nil {
						return nil, fmt.Errorf("core: fused %s produced invalid witness %v: %w", call.name, witness, err)
					}
					res.Found = true
					res.Witness = witness
					res.Detector = d.Node - lo
					foundAt[i] = true
					break
				}
			}
			pool.Release(bfs)
		}
		for i := range items {
			if !active[i] {
				continue
			}
			results[i].IterationsRun = it + 1
			if foundAt[i] && !opt.KeepGoing {
				deactivate(i)
			}
		}
	}

	for i := range items {
		results[i].Rounds = totals[i].Rounds
		results[i].Messages = totals[i].Messages
		results[i].Bits = totals[i].Messages * congest.MessageBits(items[i].Graph.NumNodes())
	}
	return results, nil
}
