package core
