package core

import (
	"testing"

	"repro/internal/graph"
)

func TestDetectBoundedFindsTriangle(t *testing.T) {
	rng := graph.NewRand(10)
	g, _, err := graph.PlantCycle(graph.HighGirth(100, 110, 8, rng), 3, rng)
	if err != nil {
		t.Fatal(err)
	}
	res, err := DetectBoundedCycle(g, 2, Options{Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Found {
		t.Fatalf("planted C_3 missed (%d iterations)", res.IterationsRun)
	}
	if res.FoundLen > 4 {
		t.Fatalf("FoundLen = %d, want ≤ 4", res.FoundLen)
	}
	if err := graph.IsSimpleCycle(g, res.Witness, res.FoundLen); err != nil {
		t.Fatalf("invalid witness: %v", err)
	}
}

func TestDetectBoundedFindsC4(t *testing.T) {
	rng := graph.NewRand(20)
	g, _, err := graph.PlantCycle(graph.Tree(150, rng), 4, rng)
	if err != nil {
		t.Fatal(err)
	}
	res, err := DetectBoundedCycle(g, 2, Options{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Found {
		t.Fatalf("planted C_4 missed (%d iterations)", res.IterationsRun)
	}
	if err := graph.IsSimpleCycle(g, res.Witness, res.FoundLen); err != nil {
		t.Fatalf("invalid witness: %v", err)
	}
}

func TestDetectBoundedFindsC5ViaSkip(t *testing.T) {
	rng := graph.NewRand(30)
	// Host with girth > 6 so the only short cycle is the planted C_5.
	g, _, err := graph.PlantCycle(graph.HighGirth(120, 140, 6, rng), 5, rng)
	if err != nil {
		t.Fatal(err)
	}
	res, err := DetectBoundedCycle(g, 3, Options{Seed: 11, MaxIterations: 60000})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Found {
		t.Fatalf("planted C_5 missed (%d iterations)", res.IterationsRun)
	}
	if res.FoundLen < 3 || res.FoundLen > 6 {
		t.Fatalf("FoundLen = %d outside [3,6]", res.FoundLen)
	}
	if err := graph.IsSimpleCycle(g, res.Witness, res.FoundLen); err != nil {
		t.Fatalf("invalid witness: %v", err)
	}
}

// One-sidedness: a graph of girth > 2k yields no detection.
func TestDetectBoundedOneSided(t *testing.T) {
	rng := graph.NewRand(40)
	g := graph.HighGirth(120, 140, 6, rng) // girth ≥ 7 > 2k for k=3
	for seed := uint64(0); seed < 4; seed++ {
		res, err := DetectBoundedCycle(g, 3, Options{Seed: seed, MaxIterations: 25})
		if err != nil {
			t.Fatal(err)
		}
		if res.Found {
			t.Fatalf("seed %d: false positive C_%d: %v", seed, res.FoundLen, res.Witness)
		}
	}
}

// The incidence graph of PG(2,q) has girth exactly 6: F_4 detection (k=2)
// must stay silent, while planting a C_4 flips it.
func TestDetectBoundedOnIncidenceGraph(t *testing.T) {
	g, err := graph.ProjectivePlaneIncidence(3)
	if err != nil {
		t.Fatal(err)
	}
	res, err := DetectBoundedCycle(g, 2, Options{Seed: 5, MaxIterations: 30})
	if err != nil {
		t.Fatal(err)
	}
	if res.Found {
		t.Fatalf("false positive on C₄-free incidence graph: C_%d", res.FoundLen)
	}

	rng := graph.NewRand(50)
	planted, _, err := graph.PlantCycle(g, 4, rng)
	if err != nil {
		t.Fatal(err)
	}
	res, err = DetectBoundedCycle(planted, 2, Options{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Found {
		t.Fatalf("planted C_4 in incidence graph missed (%d iterations)", res.IterationsRun)
	}
}

// k=4 exercises multiple length pairs in one run: the ℓ=2 pair runs dry on
// a girth-8 host, then the ℓ=3 pair catches the planted C_5 via the merged
// skip mode. (Planting C_7 directly would need ≈(2k)^{2k} ≈ 10⁶ colorings
// per hit — the ℓ=4 pair's machinery is identical, so ℓ=3 suffices.)
func TestDetectBoundedK4MultiPair(t *testing.T) {
	rng := graph.NewRand(60)
	g, _, err := graph.PlantCycle(graph.HighGirth(120, 140, 8, rng), 5, rng)
	if err != nil {
		t.Fatal(err)
	}
	res, err := DetectBoundedCycle(g, 4, Options{Seed: 13, MaxIterations: 25000})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Found {
		t.Fatalf("planted C_5 missed (%d iterations)", res.IterationsRun)
	}
	// Planted chords can create incidental shorter cycles; anything ≤ 6
	// is a legitimate find, but it must verify.
	if res.FoundLen < 3 || res.FoundLen > 6 {
		t.Fatalf("FoundLen = %d outside [3,6]", res.FoundLen)
	}
	if err := graph.IsSimpleCycle(g, res.Witness, res.FoundLen); err != nil {
		t.Fatalf("invalid witness: %v", err)
	}
	// The run must have consumed the ℓ=2 pair's budget before finding.
	if res.IterationsRun <= 25000 {
		t.Fatalf("IterationsRun = %d: expected the ℓ=2 pair's full budget plus ℓ=3 work", res.IterationsRun)
	}
}

func TestDetectBoundedEarlyPairWins(t *testing.T) {
	rng := graph.NewRand(61)
	// A triangle present: the ℓ=2 pair must catch it before ℓ=3 ever runs
	// (FoundLen ≤ 4).
	g, _, err := graph.PlantCycle(graph.Tree(100, rng), 3, rng)
	if err != nil {
		t.Fatal(err)
	}
	res, err := DetectBoundedCycle(g, 4, Options{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Found || res.FoundLen > 4 {
		t.Fatalf("res = %+v, want the ℓ=2 pair to fire first", res)
	}
}
