package core

import (
	"testing"

	"repro/internal/graph"
)

// buildDenseInstance constructs a layered instance engineered to violate
// the density bound: |S| S-vertices, w0 W₀-vertices each adjacent to all of
// S (so the k² precondition holds when |S| ≥ k²), a chain of layer vertices
// v₁ ∈ V₁ … adjacent to everything in the previous layer so W₀(v) = W₀.
func buildDenseInstance(k, sizeS, sizeW0, depth int) *DensityInstance {
	b := graph.NewBuilder(0)
	layer := make([]int8, 0)
	addNode := func(l int8) graph.NodeID {
		id := graph.NodeID(len(layer))
		layer = append(layer, l)
		b.AddNodes(len(layer))
		return id
	}
	sNodes := make([]graph.NodeID, sizeS)
	for i := range sNodes {
		sNodes[i] = addNode(LayerS)
	}
	wNodes := make([]graph.NodeID, sizeW0)
	for i := range wNodes {
		wNodes[i] = addNode(LayerW0)
		for _, s := range sNodes {
			b.AddEdge(wNodes[i], s)
		}
	}
	prev := wNodes
	for d := 1; d <= depth; d++ {
		v := addNode(int8(d))
		for _, u := range prev {
			b.AddEdge(v, u)
		}
		prev = []graph.NodeID{v}
	}
	return &DensityInstance{G: b.Build(), K: k, Layer: layer}
}

func TestDensityValidate(t *testing.T) {
	in := buildDenseInstance(2, 4, 10, 1)
	if err := in.Validate(); err != nil {
		t.Fatalf("valid instance rejected: %v", err)
	}
	// Break the k² precondition: one W₀ node with a single S-neighbor.
	b := graph.NewBuilder(3)
	b.AddEdge(0, 1)
	bad := &DensityInstance{G: b.Build(), K: 2, Layer: []int8{LayerW0, LayerS, LayerNone}}
	if err := bad.Validate(); err == nil {
		t.Fatal("W₀ vertex with 1 S-neighbor accepted (k²=4 required)")
	}
	if err := (&DensityInstance{G: b.Build(), K: 1, Layer: []int8{0, 0, 0}}).Validate(); err == nil {
		t.Fatal("k=1 accepted")
	}
}

// A violation must always be paired with a verified 2k-cycle through S —
// the Density Lemma dichotomy.
func TestDensityViolationYieldsCycle(t *testing.T) {
	for _, tc := range []struct{ k, sizeS, sizeW0, depth int }{
		{2, 4, 10, 1},
		{3, 9, 40, 1},
		{3, 9, 40, 2},
		{4, 16, 120, 2},
		{4, 16, 200, 3},
		{5, 25, 500, 2},
	} {
		in := buildDenseInstance(tc.k, tc.sizeS, tc.sizeW0, tc.depth)
		res, err := AnalyzeDensity(in)
		if err != nil {
			t.Fatalf("k=%d depth=%d: %v", tc.k, tc.depth, err)
		}
		if res.Violation < 0 {
			// The instance was engineered to violate at the deepest layer:
			// |W₀(v)| = sizeW0 must exceed 2^{i-1}(k-1)·sizeS.
			t.Fatalf("k=%d depth=%d: expected violation (reach %v vs |S|=%d)",
				tc.k, tc.depth, res.MaxReach, res.SizeS)
		}
		if res.Witness == nil {
			t.Fatalf("k=%d depth=%d: violation without witness", tc.k, tc.depth)
		}
		cyc := res.Witness.Cycle
		if err := graph.IsSimpleCycle(in.G, cyc, 2*tc.k); err != nil {
			t.Fatalf("k=%d depth=%d: bad cycle %v: %v", tc.k, tc.depth, cyc, err)
		}
		touchesS := false
		for _, v := range cyc {
			if in.Layer[v] == LayerS {
				touchesS = true
			}
		}
		if !touchesS {
			t.Fatalf("k=%d depth=%d: cycle avoids S", tc.k, tc.depth)
		}
	}
}

// Sparse instances must satisfy the bound and report no violation.
func TestDensityBoundHoldsOnSparse(t *testing.T) {
	// W₀ nodes see exactly k² S-nodes; each layer vertex sees only one
	// W₀/previous-layer vertex, so |W₀(v)| = 1 ≤ (k-1)|S|.
	k := 3
	b := graph.NewBuilder(0)
	var layer []int8
	add := func(l int8) graph.NodeID {
		id := graph.NodeID(len(layer))
		layer = append(layer, l)
		b.AddNodes(len(layer))
		return id
	}
	var sNodes []graph.NodeID
	for i := 0; i < k*k; i++ {
		sNodes = append(sNodes, add(LayerS))
	}
	w := add(LayerW0)
	for _, s := range sNodes {
		b.AddEdge(w, s)
	}
	v1 := add(1)
	b.AddEdge(v1, w)
	v2 := add(2)
	b.AddEdge(v2, v1)
	in := &DensityInstance{G: b.Build(), K: k, Layer: layer}
	res, err := AnalyzeDensity(in)
	if err != nil {
		t.Fatal(err)
	}
	if res.Violation >= 0 {
		t.Fatalf("unexpected violation at %d", res.Violation)
	}
	if res.MaxReach[1] != 1 || res.MaxReach[2] != 1 {
		t.Fatalf("MaxReach = %v, want [_,1,1]", res.MaxReach)
	}
}

// Property: on random layered instances, AnalyzeDensity never errors —
// every violation is extractable (this mechanically checks Lemmas 4–7).
func TestDensityDichotomyRandomized(t *testing.T) {
	rng := graph.NewRand(99)
	violations, holds := 0, 0
	for trial := 0; trial < 60; trial++ {
		k := 2 + int(rng.Int32N(3)) // k ∈ {2,3,4}
		sizeS := k*k + int(rng.Int32N(10))
		sizeW0 := 1 + int(rng.Int32N(60))
		nLayerTotal := int(rng.Int32N(12))

		b := graph.NewBuilder(0)
		var layer []int8
		add := func(l int8) graph.NodeID {
			id := graph.NodeID(len(layer))
			layer = append(layer, l)
			b.AddNodes(len(layer))
			return id
		}
		var sNodes, wNodes []graph.NodeID
		for i := 0; i < sizeS; i++ {
			sNodes = append(sNodes, add(LayerS))
		}
		for i := 0; i < sizeW0; i++ {
			w := add(LayerW0)
			wNodes = append(wNodes, w)
			// Every W₀ vertex: ≥ k² random S-neighbors.
			perm := rng.Perm(sizeS)
			deg := k*k + int(rng.Int32N(int32(sizeS-k*k+1)))
			for _, j := range perm[:deg] {
				b.AddEdge(w, sNodes[j])
			}
		}
		prevLayer := wNodes
		for d := 1; d <= k-1 && nLayerTotal > 0; d++ {
			cnt := 1 + int(rng.Int32N(int32(nLayerTotal)))
			var cur []graph.NodeID
			for c := 0; c < cnt; c++ {
				v := add(int8(d))
				cur = append(cur, v)
				// Random subset of previous layer.
				for _, u := range prevLayer {
					if rng.Float64() < 0.6 {
						b.AddEdge(v, u)
					}
				}
			}
			prevLayer = cur
		}
		in := &DensityInstance{G: b.Build(), K: k, Layer: layer}
		res, err := AnalyzeDensity(in)
		if err != nil {
			t.Fatalf("trial %d (k=%d |S|=%d |W0|=%d): %v", trial, k, sizeS, sizeW0, err)
		}
		if res.Violation >= 0 {
			violations++
			if err := graph.IsSimpleCycle(in.G, res.Witness.Cycle, 2*k); err != nil {
				t.Fatalf("trial %d: invalid extracted cycle: %v", trial, err)
			}
		} else {
			holds++
		}
	}
	t.Logf("density dichotomy over random instances: %d violations, %d bounds held", violations, holds)
}

// The Figure 1 scenario: k=5, i=2 — a 10-cycle extracted through the
// nested IN sets, decomposed as P (6 vertices), P′ (w,v′₁,v) and
// P″ (s,w″,v″₁,v).
func TestDensityFigure1Scenario(t *testing.T) {
	in := buildDenseInstance(5, 25, 600, 2)
	res, err := AnalyzeDensity(in)
	if err != nil {
		t.Fatal(err)
	}
	if res.Violation < 0 {
		t.Fatalf("Figure 1 instance: no violation (reach %v, |S|=%d)", res.MaxReach, res.SizeS)
	}
	w := res.Witness
	if w.LayerI < 1 {
		t.Fatalf("witness layer = %d", w.LayerI)
	}
	if len(w.Cycle) != 10 {
		t.Fatalf("cycle length %d, want 10", len(w.Cycle))
	}
	if len(w.P) != 2*(5-w.LayerI) {
		t.Fatalf("|P| = %d, want %d", len(w.P), 2*(5-w.LayerI))
	}
	if len(w.PPrime) != w.LayerI+1 {
		t.Fatalf("|P′| = %d, want %d", len(w.PPrime), w.LayerI+1)
	}
	if len(w.PDbl) != w.LayerI+2 {
		t.Fatalf("|P″| = %d, want %d", len(w.PDbl), w.LayerI+2)
	}
	if err := graph.IsSimpleCycle(in.G, w.Cycle, 10); err != nil {
		t.Fatalf("invalid cycle: %v", err)
	}
}
