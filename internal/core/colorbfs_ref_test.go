package core

// This file retains the original map-per-node implementation of color-BFS
// (the representation PR 2 replaced with pooled flat sets, see
// internal/idset) as an executable reference. The equivalence tests below
// drive the production ColorBFS — acquired through a shared ColorBFSPool,
// so instance reuse is stressed too — and the reference side by side on
// randomized instances, asserting identical detections, congestion,
// overflow flags, transcripts and witnesses.

import (
	"math/rand/v2"
	"sort"
	"sync"
	"testing"

	"repro/internal/congest"
	"repro/internal/graph"
)

type refColorBFS struct {
	spec ColorBFSSpec
	m    int
	tmax int

	asc, desc, skip []map[uint64]graph.NodeID
	ascOver         []bool
	descOver        []bool

	mu         sync.Mutex
	detections []Detection

	queue    [][]uint64
	queueIdx []int
}

func newRefColorBFS(n int, spec ColorBFSSpec) *refColorBFS {
	m := spec.L / 2
	b := &refColorBFS{
		spec:     spec,
		m:        m,
		tmax:     max(m, spec.L-m),
		asc:      make([]map[uint64]graph.NodeID, n),
		desc:     make([]map[uint64]graph.NodeID, n),
		ascOver:  make([]bool, n),
		descOver: make([]bool, n),
	}
	if spec.DetectSkip {
		b.skip = make([]map[uint64]graph.NodeID, n)
	}
	return b
}

func (b *refColorBFS) isAscForwarder(c int8) bool { return c >= 1 && int(c) <= b.m-1 }
func (b *refColorBFS) isDescForwarder(c int8) bool {
	return int(c) >= b.m+1 && int(c) <= b.spec.L-1
}

func (b *refColorBFS) sendPhase(c int8) int {
	switch {
	case c == 0:
		return 1
	case b.isAscForwarder(c):
		return int(c) + 1
	case b.isDescForwarder(c):
		return b.spec.L - int(c) + 1
	default:
		return 0
	}
}

func (b *refColorBFS) accept(v graph.NodeID, c int8, m congest.Message) {
	if !b.spec.InH[v] {
		return
	}
	id := m.A()
	switch m.Kind() {
	case kindSeed:
		if int(c) == 1 {
			b.insertAsc(v, c, id, m.From())
		}
		if int(c) == b.spec.L-1 {
			b.insertDesc(v, c, id, m.From())
		}
	case kindFwd:
		sc := int(m.B()) & 0xff
		descDir := m.B()&dirDesc != 0
		if !descDir && int(c) == sc+1 && int(c) <= b.m {
			b.insertAsc(v, c, id, m.From())
		}
		if descDir && int(c) == sc-1 && int(c) >= b.m {
			b.insertDesc(v, c, id, m.From())
		}
		if descDir && b.spec.DetectSkip && sc == b.m+1 && int(c) == b.m-1 {
			b.insertSkip(v, id, m.From())
		}
	}
}

func (b *refColorBFS) insertAsc(v graph.NodeID, c int8, id uint64, from graph.NodeID) {
	if b.ascOver[v] {
		return
	}
	set := b.asc[v]
	if set == nil {
		set = make(map[uint64]graph.NodeID, 4)
		b.asc[v] = set
	}
	if _, dup := set[id]; dup {
		return
	}
	if b.isAscForwarder(c) && len(set) >= b.spec.Threshold {
		b.ascOver[v] = true
		return
	}
	set[id] = from
	if int(c) == b.m {
		if _, hit := b.desc[v][id]; hit {
			b.record(Detection{Node: v, Seed: id})
		}
	}
	if b.spec.DetectSkip && int(c) == b.m-1 {
		if _, hit := b.skip[v][id]; hit {
			b.record(Detection{Node: v, Seed: id, Skip: true})
		}
	}
}

func (b *refColorBFS) insertDesc(v graph.NodeID, c int8, id uint64, from graph.NodeID) {
	if b.descOver[v] {
		return
	}
	set := b.desc[v]
	if set == nil {
		set = make(map[uint64]graph.NodeID, 4)
		b.desc[v] = set
	}
	if _, dup := set[id]; dup {
		return
	}
	if b.isDescForwarder(c) && len(set) >= b.spec.Threshold {
		b.descOver[v] = true
		return
	}
	set[id] = from
	if int(c) == b.m {
		if _, hit := b.asc[v][id]; hit {
			b.record(Detection{Node: v, Seed: id})
		}
	}
}

func (b *refColorBFS) insertSkip(v graph.NodeID, id uint64, from graph.NodeID) {
	set := b.skip[v]
	if set == nil {
		set = make(map[uint64]graph.NodeID, 4)
		b.skip[v] = set
	}
	if _, dup := set[id]; dup {
		return
	}
	set[id] = from
	if !b.ascOver[v] {
		if _, hit := b.asc[v][id]; hit {
			b.record(Detection{Node: v, Seed: id, Skip: true})
		}
	}
}

func (b *refColorBFS) record(d Detection) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.detections = append(b.detections, d)
}

func (b *refColorBFS) maxCongestion() int {
	best := 0
	for v := range b.asc {
		if len(b.asc[v]) > best {
			best = len(b.asc[v])
		}
		if len(b.desc[v]) > best {
			best = len(b.desc[v])
		}
	}
	return best
}

func (b *refColorBFS) overflowed() bool {
	for v := range b.ascOver {
		if b.ascOver[v] || b.descOver[v] {
			return true
		}
	}
	return false
}

func (b *refColorBFS) run(e *congest.Engine) (*congest.Report, error) {
	var rep *congest.Report
	var err error
	if b.spec.Pipelined {
		n := e.Network().NumNodes()
		b.queue = make([][]uint64, n)
		b.queueIdx = make([]int, n)
		rep, err = e.RunSession(&refPipelinedRun{bfs: b}, e.ReserveSessions(1))
	} else {
		base := e.ReserveSessions(uint64(b.tmax))
		total := &congest.Report{}
		for phase := 1; phase <= b.tmax; phase++ {
			var prep *congest.Report
			prep, err = e.RunSession(&refBatchPhase{bfs: b, phase: phase}, base+uint64(phase-1))
			if err != nil {
				break
			}
			total.Accumulate(prep)
		}
		rep = total
	}
	if err != nil {
		return nil, err
	}
	sort.Slice(b.detections, func(i, j int) bool {
		di, dj := b.detections[i], b.detections[j]
		if di.Node != dj.Node {
			return di.Node < dj.Node
		}
		if di.Seed != dj.Seed {
			return di.Seed < dj.Seed
		}
		return !di.Skip && dj.Skip
	})
	return rep, nil
}

// witness mirrors ColorBFS.Witness over the reference maps.
func (b *refColorBFS) witness(d Detection) ([]graph.NodeID, error) {
	seed := graph.NodeID(d.Seed)
	wantLen := b.spec.L
	ascSteps := b.m
	if d.Skip {
		wantLen = b.spec.L - 1
		ascSteps = b.m - 1
	}
	walk := func(maps []map[uint64]graph.NodeID, from graph.NodeID, steps int) ([]graph.NodeID, error) {
		out := make([]graph.NodeID, 0, steps)
		cur := from
		for i := 0; i < steps; i++ {
			next, ok := maps[cur][d.Seed]
			if !ok {
				return nil, errMissing
			}
			out = append(out, next)
			cur = next
		}
		if cur != seed {
			return nil, errMissing
		}
		return out, nil
	}
	ascPath, err := walk(b.asc, d.Node, ascSteps)
	if err != nil {
		return nil, err
	}
	var descPath []graph.NodeID
	if d.Skip {
		relay, ok := b.skip[d.Node][d.Seed]
		if !ok {
			return nil, errMissing
		}
		rest, err := walk(b.desc, relay, b.spec.L-b.m-1)
		if err != nil {
			return nil, err
		}
		descPath = append([]graph.NodeID{relay}, rest...)
	} else {
		descPath, err = walk(b.desc, d.Node, b.spec.L-b.m)
		if err != nil {
			return nil, err
		}
	}
	cycle := make([]graph.NodeID, 0, wantLen)
	cycle = append(cycle, seed)
	for i := len(ascPath) - 2; i >= 0; i-- {
		cycle = append(cycle, ascPath[i])
	}
	cycle = append(cycle, d.Node)
	for i := 0; i < len(descPath)-1; i++ {
		cycle = append(cycle, descPath[i])
	}
	if len(cycle) != wantLen {
		return nil, errMissing
	}
	return cycle, nil
}

type refWalkError string

func (e refWalkError) Error() string { return string(e) }

const errMissing = refWalkError("reference witness walk failed")

type refBatchPhase struct {
	bfs   *refColorBFS
	phase int

	queue    [][]uint64
	queueIdx []int
}

func (p *refBatchPhase) Init(rt *congest.Runtime) {
	b := p.bfs
	n := rt.N()
	p.queue = make([][]uint64, n)
	p.queueIdx = make([]int, n)
	for u := 0; u < n; u++ {
		v := graph.NodeID(u)
		if !b.spec.InH[v] {
			continue
		}
		c := b.spec.Color[v]
		if b.sendPhase(c) != p.phase {
			continue
		}
		var ids []uint64
		switch {
		case c == 0:
			if !b.spec.InX[v] {
				continue
			}
			if b.spec.SeedProb < 1 && rt.Rand(v).Float64() >= b.spec.SeedProb {
				continue
			}
			ids = []uint64{uint64(v)}
		case b.isAscForwarder(c):
			if b.ascOver[v] || len(b.asc[v]) == 0 {
				continue
			}
			ids = refSortedIDs(b.asc[v])
		default:
			if b.descOver[v] || len(b.desc[v]) == 0 {
				continue
			}
			ids = refSortedIDs(b.desc[v])
		}
		p.queue[v] = ids
		rt.WakeAt(v, 0)
	}
}

func (p *refBatchPhase) HandleRound(rt *congest.Runtime, u graph.NodeID, r int, inbox []congest.Message) {
	b := p.bfs
	c := b.spec.Color[u]
	for _, m := range inbox {
		b.accept(u, c, m)
	}
	q := p.queue[u]
	if idx := p.queueIdx[u]; idx < len(q) {
		id := q[idx]
		p.queueIdx[u]++
		kind, payload := kindFwd, uint64(c)
		if c == 0 {
			kind, payload = kindSeed, 0
		} else if b.isDescForwarder(c) {
			payload |= dirDesc
		}
		for _, w := range rt.Neighbors(u) {
			rt.Send(u, w, kind, id, payload)
		}
		if p.queueIdx[u] < len(q) {
			rt.WakeAt(u, r+1)
		}
	}
}

func refSortedIDs(set map[uint64]graph.NodeID) []uint64 {
	ids := make([]uint64, 0, len(set))
	for id := range set {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

type refPipelinedRun struct {
	bfs *refColorBFS
}

func (p *refPipelinedRun) Init(rt *congest.Runtime) {
	b := p.bfs
	for u := 0; u < rt.N(); u++ {
		v := graph.NodeID(u)
		if !b.spec.InH[v] || b.spec.Color[v] != 0 || !b.spec.InX[v] {
			continue
		}
		if b.spec.SeedProb < 1 && rt.Rand(v).Float64() >= b.spec.SeedProb {
			continue
		}
		b.queue[v] = []uint64{uint64(v)}
		rt.WakeAt(v, 0)
	}
}

func (p *refPipelinedRun) HandleRound(rt *congest.Runtime, u graph.NodeID, r int, inbox []congest.Message) {
	b := p.bfs
	c := b.spec.Color[u]
	forwarder := b.isAscForwarder(c) || b.isDescForwarder(c)
	for _, m := range inbox {
		var before int
		if forwarder {
			before = p.setSize(u, c)
		}
		b.accept(u, c, m)
		if forwarder && p.setSize(u, c) > before && !p.overflowedAt(u, c) {
			b.queue[u] = append(b.queue[u], m.A())
		}
	}
	if p.overflowedAt(u, c) {
		b.queue[u] = nil
		return
	}
	q := b.queue[u]
	if idx := b.queueIdx[u]; idx < len(q) {
		id := q[idx]
		b.queueIdx[u]++
		kind, payload := kindFwd, uint64(c)
		if c == 0 {
			kind, payload = kindSeed, 0
		} else if b.isDescForwarder(c) {
			payload |= dirDesc
		}
		for _, w := range rt.Neighbors(u) {
			rt.Send(u, w, kind, id, payload)
		}
		if b.queueIdx[u] < len(q) {
			rt.WakeAt(u, r+1)
		}
	}
}

func (p *refPipelinedRun) setSize(u graph.NodeID, c int8) int {
	if p.bfs.isAscForwarder(c) {
		return len(p.bfs.asc[u])
	}
	return len(p.bfs.desc[u])
}

func (p *refPipelinedRun) overflowedAt(u graph.NodeID, c int8) bool {
	if p.bfs.isAscForwarder(c) {
		return p.bfs.ascOver[u]
	}
	return p.bfs.descOver[u]
}

// ---------------------------------------------------------------------------
// Equivalence tests.

// TestColorBFSMatchesMapReference drives the flat-set ColorBFS (through a
// shared pool, so buffer reuse across wildly different specs is exercised)
// and the retained map-based reference on randomized instances, comparing
// detections, congestion, overflow, transcript cost and every witness.
func TestColorBFSMatchesMapReference(t *testing.T) {
	rng := rand.New(rand.NewPCG(0xe9, 0x1))
	var pool *ColorBFSPool
	for trial := 0; trial < 120; trial++ {
		n := 20 + rng.IntN(80)
		g := graph.Gnm(n, n+rng.IntN(2*n), graph.NewRand(uint64(trial)))
		if rng.IntN(2) == 0 {
			var err error
			g, _, err = graph.PlantCycle(g, 4+2*rng.IntN(2), graph.NewRand(uint64(trial)*7+1))
			if err != nil {
				t.Fatal(err)
			}
		}
		n = g.NumNodes()
		L := []int{4, 5, 6, 8}[rng.IntN(4)]
		colors := make([]int8, n)
		for v := range colors {
			colors[v] = int8(rng.IntN(L))
		}
		inH := make([]bool, n)
		inX := make([]bool, n)
		for v := 0; v < n; v++ {
			inH[v] = rng.IntN(10) > 0 // mostly in H
			inX[v] = rng.IntN(4) > 0
		}
		threshold := 1 + rng.IntN(6)
		if rng.IntN(3) == 0 {
			threshold = n
		}
		seedProb := 1.0
		if rng.IntN(2) == 0 {
			seedProb = 0.6
		}
		spec := ColorBFSSpec{
			L:          L,
			Color:      colors,
			InH:        inH,
			InX:        inX,
			Threshold:  threshold,
			SeedProb:   seedProb,
			DetectSkip: L%2 == 0 && rng.IntN(2) == 0,
			Pipelined:  rng.IntN(2) == 0,
		}

		if pool == nil || pool.n != n {
			pool = NewColorBFSPool(n)
		}
		got, err := pool.Acquire(spec)
		if err != nil {
			t.Fatalf("trial %d: Acquire: %v", trial, err)
		}
		netSeed := uint64(trial) * 31
		gotRep, err := got.Run(congest.NewEngine(congest.NewNetwork(g, netSeed)))
		if err != nil {
			t.Fatalf("trial %d: flat run: %v", trial, err)
		}

		want := newRefColorBFS(n, spec)
		wantRep, err := want.run(congest.NewEngine(congest.NewNetwork(g, netSeed)))
		if err != nil {
			t.Fatalf("trial %d: reference run: %v", trial, err)
		}

		if gotRep.Rounds != wantRep.Rounds || gotRep.Messages != wantRep.Messages || gotRep.Bits != wantRep.Bits {
			t.Fatalf("trial %d (%+v): transcript cost (%d,%d,%d) != reference (%d,%d,%d)",
				trial, specSummary(spec), gotRep.Rounds, gotRep.Messages, gotRep.Bits,
				wantRep.Rounds, wantRep.Messages, wantRep.Bits)
		}
		if got.MaxCongestion() != want.maxCongestion() {
			t.Fatalf("trial %d: MaxCongestion %d != %d", trial, got.MaxCongestion(), want.maxCongestion())
		}
		if got.Overflowed() != want.overflowed() {
			t.Fatalf("trial %d: Overflowed %v != %v", trial, got.Overflowed(), want.overflowed())
		}
		gd, wd := got.Detections(), want.detections
		if len(gd) != len(wd) {
			t.Fatalf("trial %d: %d detections != reference %d", trial, len(gd), len(wd))
		}
		for i := range gd {
			if gd[i] != wd[i] {
				t.Fatalf("trial %d: detection[%d] = %+v != reference %+v", trial, i, gd[i], wd[i])
			}
			gw, gerr := got.Witness(gd[i])
			ww, werr := want.witness(wd[i])
			if (gerr == nil) != (werr == nil) {
				t.Fatalf("trial %d: witness errors diverge: %v vs %v", trial, gerr, werr)
			}
			if gerr == nil && !equalNodes(gw, ww) {
				t.Fatalf("trial %d: witness %v != reference %v", trial, gw, ww)
			}
		}
		pool.Release(got)
	}
}

func specSummary(s ColorBFSSpec) ColorBFSSpec {
	s.Color, s.InH, s.InX = nil, nil, nil
	return s
}

func equalNodes(a, b []graph.NodeID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
