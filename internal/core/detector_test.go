package core

import (
	"math"
	"testing"

	"repro/internal/graph"
)

func TestParamsFaithfulValues(t *testing.T) {
	p, err := NewParams(10000, 2, 1.0/3)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(p.EpsHat-math.Log(9)) > 1e-9 {
		t.Fatalf("EpsHat = %v, want ln 9", p.EpsHat)
	}
	// p = ε̂·2k²/n^{1/k} = ln9·8/100
	wantP := math.Log(9) * 8 / 100
	if math.Abs(p.P-wantP) > 1e-9 {
		t.Fatalf("P = %v, want %v", p.P, wantP)
	}
	// τ = k·2^k·n·p
	wantTau := 2.0 * 4 * 10000 * wantP
	if p.Tau != int(math.Ceil(wantTau)) {
		t.Fatalf("Tau = %d, want %v", p.Tau, wantTau)
	}
	if p.LightMax != 100 {
		t.Fatalf("LightMax = %d, want 100", p.LightMax)
	}
	// K = ε̂·(2k)^{2k} = ln9·256
	if want := int(math.Ceil(math.Log(9) * 256)); p.Iterations != want {
		t.Fatalf("Iterations = %d, want %d", p.Iterations, want)
	}
	if p.BudgetRounds() <= 0 {
		t.Fatal("BudgetRounds not positive")
	}
}

func TestParamsValidation(t *testing.T) {
	if _, err := NewParams(100, 1, 0.3); err == nil {
		t.Error("k=1 accepted")
	}
	if _, err := NewParams(1, 2, 0.3); err == nil {
		t.Error("n=1 accepted")
	}
	if _, err := NewParams(100, 2, 0); err == nil {
		t.Error("eps=0 accepted")
	}
	if _, err := NewParams(100, 2, 1); err == nil {
		t.Error("eps=1 accepted")
	}
}

func TestParamsCapsProbability(t *testing.T) {
	p, err := NewParams(4, 2, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	if p.P > 1 {
		t.Fatalf("P = %v > 1", p.P)
	}
}

func TestDetectEvenCycleFindsPlantedC4(t *testing.T) {
	rng := graph.NewRand(100)
	g, _, err := graph.PlantedLight(150, 4, 2.0, rng)
	if err != nil {
		t.Fatal(err)
	}
	res, err := DetectEvenCycle(g, 2, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Found {
		t.Fatalf("planted C_4 missed after %d iterations", res.IterationsRun)
	}
	if err := graph.IsSimpleCycle(g, res.Witness, 4); err != nil {
		t.Fatalf("invalid witness: %v", err)
	}
	if res.Rounds == 0 || res.Messages == 0 {
		t.Fatalf("metrics empty: %+v", res)
	}
}

func TestDetectEvenCycleFindsPlantedC6(t *testing.T) {
	rng := graph.NewRand(200)
	g, _, err := graph.PlantedLight(60, 6, 1.5, rng)
	if err != nil {
		t.Fatal(err)
	}
	res, err := DetectEvenCycle(g, 3, Options{Seed: 3, MaxIterations: 20000})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Found {
		t.Fatalf("planted C_6 missed after %d iterations", res.IterationsRun)
	}
	if err := graph.IsSimpleCycle(g, res.Witness, 6); err != nil {
		t.Fatalf("invalid witness: %v", err)
	}
}

// Heavy case: the planted cycle passes through a hub whose degree exceeds
// n^{1/2}, so the cycle is not inside G[U]; detection must come from the S-
// or W-based calls.
func TestDetectEvenCycleFindsHeavyCycle(t *testing.T) {
	rng := graph.NewRand(300)
	g, cyc, err := graph.PlantedHeavy(300, 4, 60, 1.2, rng)
	if err != nil {
		t.Fatal(err)
	}
	if g.Degree(cyc[0]) <= int(math.Sqrt(float64(g.NumNodes()))) {
		t.Fatalf("test setup: hub degree %d not heavy", g.Degree(cyc[0]))
	}
	res, err := DetectEvenCycle(g, 2, Options{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Found {
		t.Fatalf("heavy planted C_4 missed after %d iterations", res.IterationsRun)
	}
	if err := graph.IsSimpleCycle(g, res.Witness, 4); err != nil {
		t.Fatalf("invalid witness: %v", err)
	}
}

// One-sidedness: on graphs of girth > 2k, Algorithm 1 must never report
// Found, for any seed. This is the paper's "acceptance without error".
func TestDetectEvenCycleOneSided(t *testing.T) {
	rng := graph.NewRand(400)
	g := graph.HighGirth(120, 150, 4, rng) // girth ≥ 5: no C_4
	for seed := uint64(0); seed < 5; seed++ {
		res, err := DetectEvenCycle(g, 2, Options{Seed: seed, MaxIterations: 40})
		if err != nil {
			t.Fatal(err)
		}
		if res.Found {
			t.Fatalf("seed %d: false positive on girth-5 graph: %v", seed, res.Witness)
		}
	}
}

func TestDetectEvenCycleOneSidedOnTrees(t *testing.T) {
	rng := graph.NewRand(500)
	g := graph.Tree(200, rng)
	res, err := DetectEvenCycle(g, 3, Options{Seed: 1, MaxIterations: 30})
	if err != nil {
		t.Fatal(err)
	}
	if res.Found {
		t.Fatal("false positive on a tree")
	}
}

// The detection rate over many planted instances must be high once the
// faithful iteration count is used (k=2 keeps it affordable).
func TestDetectEvenCycleDetectionRate(t *testing.T) {
	rng := graph.NewRand(600)
	found := 0
	const trials = 10
	for trial := 0; trial < trials; trial++ {
		g, _, err := graph.PlantedLight(80, 4, 1.5, rng)
		if err != nil {
			t.Fatal(err)
		}
		res, err := DetectEvenCycle(g, 2, Options{Seed: uint64(trial)})
		if err != nil {
			t.Fatal(err)
		}
		if res.Found {
			found++
		}
	}
	if found < trials*2/3 {
		t.Fatalf("detection rate %d/%d below 2/3", found, trials)
	}
}

func TestDetectEvenCycleRejectsBadK(t *testing.T) {
	g := graph.Cycle(6)
	if _, err := DetectEvenCycle(g, 1, Options{}); err == nil {
		t.Fatal("k=1 accepted")
	}
}

func TestDetectEvenCyclePipelined(t *testing.T) {
	rng := graph.NewRand(700)
	g, _, err := graph.PlantedLight(120, 4, 2.0, rng)
	if err != nil {
		t.Fatal(err)
	}
	res, err := DetectEvenCycle(g, 2, Options{Seed: 2, Pipelined: true})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Found {
		t.Fatalf("pipelined mode missed planted C_4 (%d iterations)", res.IterationsRun)
	}
	if err := graph.IsSimpleCycle(g, res.Witness, 4); err != nil {
		t.Fatalf("invalid witness: %v", err)
	}
}

// The sets protocol: sizes concentrate around their expectations and W
// captures heavy nodes.
func TestSetsConstruction(t *testing.T) {
	rng := graph.NewRand(800)
	g, cyc, err := graph.PlantedHeavy(400, 4, 80, 1.5, rng)
	if err != nil {
		t.Fatal(err)
	}
	res, err := DetectEvenCycle(g, 2, Options{Seed: 9, MaxIterations: 1})
	if err != nil {
		t.Fatal(err)
	}
	n := float64(g.NumNodes())
	expS := res.Params.P * n
	if float64(res.SizeS) < expS/3 || float64(res.SizeS) > expS*3 {
		t.Fatalf("|S| = %d, expected ≈ %.1f", res.SizeS, expS)
	}
	if res.SizeU == 0 {
		t.Fatal("no light nodes in a sparse graph")
	}
	// The hub has degree ≥ 80 ≥ n^{1/2}=20 and P ≈ ln9·8/20 ≈ 0.88 → it is
	// essentially surely in S or W.
	hub := cyc[0]
	_ = hub
	if res.SizeS+res.SizeW == 0 {
		t.Fatal("S and W both empty despite p close to 1")
	}
}
