package core

import (
	"sort"
	"testing"

	"repro/internal/graph"
)

func TestLocalDetectionMatchesWitness(t *testing.T) {
	rng := graph.NewRand(55)
	for trial := 0; trial < 10; trial++ {
		g, _, err := graph.PlantedLight(120, 4, 2.0, rng)
		if err != nil {
			t.Fatal(err)
		}
		res, err := DetectEvenCycleLocal(g, 2, Options{Seed: uint64(trial)})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Found {
			continue
		}
		want := append([]graph.NodeID{}, res.Witness...)
		sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
		got := append([]graph.NodeID{}, res.Rejecting...)
		sort.Slice(got, func(i, j int) bool { return got[i] < got[j] })
		if len(got) != len(want) {
			t.Fatalf("trial %d: rejecting %v vs witness %v", trial, got, want)
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("trial %d: rejecting %v vs witness %v", trial, got, want)
			}
		}
		if res.NotifyRounds == 0 || res.NotifyRounds > 10 {
			t.Fatalf("trial %d: notification took %d rounds, want Θ(L)", trial, res.NotifyRounds)
		}
	}
}

func TestLocalDetectionOnFreeGraph(t *testing.T) {
	rng := graph.NewRand(66)
	g := graph.HighGirth(100, 120, 4, rng)
	res, err := DetectEvenCycleLocal(g, 2, Options{Seed: 1, MaxIterations: 30})
	if err != nil {
		t.Fatal(err)
	}
	if res.Found || len(res.Rejecting) != 0 {
		t.Fatalf("res = %+v", res)
	}
}
