package core

import (
	"testing"
	"testing/quick"

	"repro/internal/graph"
)

func TestCanonicalCycleRotationsAgree(t *testing.T) {
	base := []graph.NodeID{5, 2, 9, 1, 7, 3}
	want := CanonicalCycle(base)
	n := len(base)
	for r := 0; r < n; r++ {
		rot := append(append([]graph.NodeID{}, base[r:]...), base[:r]...)
		got := CanonicalCycle(rot)
		if !eqSeq(got, want) {
			t.Fatalf("rotation %d canonicalizes to %v, want %v", r, got, want)
		}
		// Reflections too.
		rev := make([]graph.NodeID, n)
		for i := range rot {
			rev[i] = rot[n-1-i]
		}
		got = CanonicalCycle(rev)
		if !eqSeq(got, want) {
			t.Fatalf("reflection of rotation %d canonicalizes to %v, want %v", r, got, want)
		}
	}
	if CanonicalCycle(nil) != nil {
		t.Fatal("empty input")
	}
}

func eqSeq(a, b []graph.NodeID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Property: canonical forms start at the minimum vertex and are invariant
// under random rotation+reflection.
func TestCanonicalCycleQuick(t *testing.T) {
	f := func(raw []uint8, rot uint8, flip bool) bool {
		if len(raw) < 3 {
			return true
		}
		// Build a duplicate-free vertex sequence.
		seen := map[graph.NodeID]bool{}
		var verts []graph.NodeID
		for _, r := range raw {
			v := graph.NodeID(r)
			if !seen[v] {
				seen[v] = true
				verts = append(verts, v)
			}
		}
		if len(verts) < 3 {
			return true
		}
		want := CanonicalCycle(verts)
		if len(want) == 0 || want[0] != minOf(verts) {
			return false
		}
		r := int(rot) % len(verts)
		turned := append(append([]graph.NodeID{}, verts[r:]...), verts[:r]...)
		if flip {
			for i, j := 0, len(turned)-1; i < j; i, j = i+1, j-1 {
				turned[i], turned[j] = turned[j], turned[i]
			}
		}
		return eqSeq(CanonicalCycle(turned), want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func minOf(v []graph.NodeID) graph.NodeID {
	m := v[0]
	for _, x := range v {
		if x < m {
			m = x
		}
	}
	return m
}

func TestListEvenCyclesFindsAllPlanted(t *testing.T) {
	// Two disjoint C_4s in an otherwise empty graph: listing must find
	// exactly both.
	b := graph.NewBuilder(12)
	for i := 0; i < 4; i++ {
		b.AddEdge(graph.NodeID(i), graph.NodeID((i+1)%4))
		b.AddEdge(graph.NodeID(4+i), graph.NodeID(4+(i+1)%4))
	}
	g := b.Build()
	res, err := ListEvenCycles(g, 2, Options{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cycles) != 2 {
		t.Fatalf("listed %d cycles, want 2: %v", len(res.Cycles), res.Cycles)
	}
	for _, c := range res.Cycles {
		if err := graph.IsSimpleCycle(g, c, 4); err != nil {
			t.Fatalf("listed cycle invalid: %v", err)
		}
	}
	// Canonical and sorted.
	if res.Cycles[0][0] != 0 || res.Cycles[1][0] != 4 {
		t.Fatalf("cycles not canonical/sorted: %v", res.Cycles)
	}
}

func TestListEvenCyclesDedupes(t *testing.T) {
	// A single C_4 run with many iterations must still be listed once.
	g := graph.Cycle(4)
	res, err := ListEvenCycles(g, 2, Options{Seed: 1, MaxIterations: 200})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cycles) != 1 {
		t.Fatalf("listed %d cycles, want 1", len(res.Cycles))
	}
}

func TestListEvenCyclesAgainstExactEnumeration(t *testing.T) {
	// On K_{2,3} the 4-cycles are exactly the (3 choose 2) = 3 choices of
	// two right-side vertices.
	g := graph.CompleteBipartite(2, 3)
	res, err := ListEvenCycles(g, 2, Options{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cycles) != 3 {
		t.Fatalf("listed %d cycles in K_{2,3}, want 3: %v", len(res.Cycles), res.Cycles)
	}
	for _, c := range res.Cycles {
		if err := graph.IsSimpleCycle(g, c, 4); err != nil {
			t.Fatalf("invalid: %v", err)
		}
	}
}

func TestListEvenCyclesEmptyOnFreeGraph(t *testing.T) {
	rng := graph.NewRand(8)
	g := graph.HighGirth(80, 100, 4, rng)
	res, err := ListEvenCycles(g, 2, Options{Seed: 2, MaxIterations: 40})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cycles) != 0 {
		t.Fatalf("listed cycles on a C_4-free graph: %v", res.Cycles)
	}
}
