package core

import (
	"reflect"
	"testing"

	"repro/internal/graph"
)

// fusedEvenCorpus builds a mixed batch: planted C_2k positives, high-girth
// negatives, plain G(n,m) — with per-item seeds and trial budgets.
func fusedEvenCorpus(t *testing.T, k, count int, seed uint64) []FusedItem {
	t.Helper()
	rng := graph.NewRand(seed)
	items := make([]FusedItem, count)
	for i := range items {
		n := 24 + rng.IntN(72)
		var g *graph.Graph
		switch i % 3 {
		case 0:
			pg, _, err := graph.PlantedLight(n, 2*k, 2.0, rng)
			if err != nil {
				t.Fatalf("planted: %v", err)
			}
			g = pg
		case 1:
			g = graph.HighGirth(n, 2*n, 2*k+1, rng)
		default:
			g = graph.Gnm(n, 3*n, rng)
		}
		items[i] = FusedItem{Graph: g, Seed: rng.Uint64(), Iterations: 1 + rng.IntN(6)}
	}
	return items
}

// soloOptions maps the fused batch options plus one item's seed/budget
// onto a solo DetectEvenCycle call.
func soloOptions(opt Options, it FusedItem) Options {
	opt.Seed = it.Seed
	opt.MaxIterations = it.Iterations
	return opt
}

// TestDetectEvenCycleFusedMatchesSolo pins the tentpole equivalence: every
// Result field of every batch component — verdict, witness in the item's
// own IDs, detector, rounds, messages, bits, congestion, overflow,
// iterations run, set sizes, params — equals a solo run with the item's
// seed and budget, across engine schedules and both color-BFS modes.
func TestDetectEvenCycleFusedMatchesSolo(t *testing.T) {
	for _, k := range []int{2, 3} {
		items := fusedEvenCorpus(t, k, 8, uint64(1000+k))
		for _, opt := range []Options{
			{},
			{Workers: 4, Shards: 2, ParallelThreshold: 1},
			{Workers: 8, Shards: 8, ParallelThreshold: 1},
			{Pipelined: true},
		} {
			fused, err := DetectEvenCycleFused(items, k, opt)
			if err != nil {
				t.Fatal(err)
			}
			for i, item := range items {
				solo, err := DetectEvenCycle(item.Graph, k, soloOptions(opt, item))
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(fused[i], solo) {
					t.Fatalf("k=%d opt=%+v component %d:\nfused %+v\nsolo  %+v",
						k, opt, i, fused[i], solo)
				}
				if fused[i].Found {
					if err := graph.IsSimpleCycle(item.Graph, fused[i].Witness, 2*k); err != nil {
						t.Fatalf("k=%d component %d: remapped witness invalid: %v", k, i, err)
					}
				}
			}
		}
	}
}

// TestDetectEvenCycleFusedMatchesParallelSolo pins that solo trial
// parallelism does not change results relative to the (sequential) fused
// path.
func TestDetectEvenCycleFusedMatchesParallelSolo(t *testing.T) {
	items := fusedEvenCorpus(t, 2, 6, 77)
	fused, err := DetectEvenCycleFused(items, 2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i, item := range items {
		solo, err := DetectEvenCycle(item.Graph, 2, soloOptions(Options{Parallel: 4}, item))
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(fused[i], solo) {
			t.Fatalf("component %d:\nfused         %+v\nparallel solo %+v", i, fused[i], solo)
		}
	}
}

// TestDetectEvenCycleFusedSingleton pins the degenerate batch of one.
func TestDetectEvenCycleFusedSingleton(t *testing.T) {
	g, _, err := graph.PlantedLight(60, 4, 2.0, graph.NewRand(9))
	if err != nil {
		t.Fatal(err)
	}
	item := FusedItem{Graph: g, Seed: 31, Iterations: 4}
	fused, err := DetectEvenCycleFused([]FusedItem{item}, 2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	solo, err := DetectEvenCycle(g, 2, soloOptions(Options{}, item))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(fused[0], solo) {
		t.Fatalf("singleton:\nfused %+v\nsolo  %+v", fused[0], solo)
	}
}

// TestDetectEvenCycleFusedRejectsUnsupported pins the unsupported-knob
// errors (randomized activation, fault injection, missing budget).
func TestDetectEvenCycleFusedRejectsUnsupported(t *testing.T) {
	g := graph.Gnm(30, 60, graph.NewRand(1))
	ok := FusedItem{Graph: g, Seed: 1, Iterations: 1}
	if _, err := DetectEvenCycleFused([]FusedItem{ok}, 2, Options{SeedProb: 0.5}); err == nil {
		t.Fatal("expected SeedProb rejection")
	}
	if _, err := DetectEvenCycleFused([]FusedItem{ok}, 2, Options{DropProb: 0.1}); err == nil {
		t.Fatal("expected DropProb rejection")
	}
	if _, err := DetectEvenCycleFused([]FusedItem{{Graph: g, Seed: 1}}, 2, Options{}); err == nil {
		t.Fatal("expected missing-budget rejection")
	}
	if _, err := DetectEvenCycleFused(nil, 2, Options{}); err == nil {
		t.Fatal("expected empty-batch rejection")
	}
}
