package core

import (
	"reflect"
	"testing"

	"repro/internal/graph"
)

// TestDetectorDeterministicAcrossParallel pins the end-to-end determinism
// contract of the trial-scheduler migration: for a fixed master seed the
// full Result — verdict, witness, round/message/bit ledger, congestion,
// iteration count — is identical whether the coloring iterations run
// sequentially or many-at-a-time, and identical across engine worker
// counts.
func TestDetectorDeterministicAcrossParallel(t *testing.T) {
	rng := graph.NewRand(5)
	g, _, err := graph.PlantedHeavy(600, 4, 60, 1.4, rng)
	if err != nil {
		t.Fatal(err)
	}
	run := func(parallel, workers int, keepGoing bool) *Result {
		res, err := DetectEvenCycle(g, 2, Options{
			Seed:          99,
			MaxIterations: 24,
			KeepGoing:     keepGoing,
			Parallel:      parallel,
			Workers:       workers,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	for _, keepGoing := range []bool{false, true} {
		want := run(1, 1, keepGoing)
		for _, cfg := range [][2]int{{4, 1}, {-1, 1}, {1, 8}, {4, 8}} {
			got := run(cfg[0], cfg[1], keepGoing)
			if !reflect.DeepEqual(want, got) {
				t.Fatalf("keepGoing=%v parallel=%d workers=%d: result diverged\nwant %+v\ngot  %+v",
					keepGoing, cfg[0], cfg[1], want, got)
			}
		}
		if keepGoing && !want.Found {
			t.Fatal("planted cycle not found in 24 iterations; test lost its teeth")
		}
	}
}

// TestBoundedDetectorDeterministicAcrossParallel is the same pin for the
// bounded-length (F_{2k}) detector, whose pair loop composes sequential
// stages with parallel trial batches.
func TestBoundedDetectorDeterministicAcrossParallel(t *testing.T) {
	rng := graph.NewRand(8)
	g, _, err := graph.PlantedLight(400, 6, 1.3, rng)
	if err != nil {
		t.Fatal(err)
	}
	run := func(parallel int) *BoundedResult {
		res, err := DetectBoundedCycle(g, 3, Options{
			Seed:          7,
			MaxIterations: 16,
			Parallel:      parallel,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	want := run(1)
	for _, p := range []int{2, -1} {
		if got := run(p); !reflect.DeepEqual(want, got) {
			t.Fatalf("parallel=%d: result diverged\nwant %+v\ngot  %+v", p, want, got)
		}
	}
}

// BenchmarkDetectorTrialsSequential / ...Parallel measure the multi-trial
// hot path end to end: K coloring iterations of Algorithm 1 on a planted
// instance, run through the shared trial scheduler with 1 worker vs
// GOMAXPROCS workers. (On a multi-core host the parallel variant is the
// TrialRunner speedup the refactor targets; the engine-level allocation
// win is measured separately in internal/congest.)
func benchmarkDetectorTrials(b *testing.B, parallel int) {
	rng := graph.NewRand(5)
	g, _, err := graph.PlantedHeavy(2000, 4, 100, 1.4, rng)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for b.Loop() {
		_, err := DetectEvenCycle(g, 2, Options{
			Seed:          42,
			MaxIterations: 16,
			KeepGoing:     true,
			Parallel:      parallel,
			Workers:       1,
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDetectorTrialsSequential(b *testing.B) { benchmarkDetectorTrials(b, 1) }
func BenchmarkDetectorTrialsParallel(b *testing.B)   { benchmarkDetectorTrials(b, -1) }
