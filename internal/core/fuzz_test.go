package core

import (
	"testing"

	"repro/internal/congest"
	"repro/internal/graph"
)

// TestColorBFSUniversalOneSidedness is the strongest invariant check in
// the suite: across completely arbitrary configurations — random graphs,
// random (not necessarily sensible) colorings, random subgraph H, random
// seed set X, random thresholds, random activation probabilities, both
// schedules, even/odd cycle lengths and skip mode — every single detection
// must materialize into a verified simple cycle of the exact target length
// inside H. This is the machine-checked form of the paper's "acceptance
// without error" argument (Section 2.2.1).
func TestColorBFSUniversalOneSidedness(t *testing.T) {
	rng := graph.NewRand(2024)
	detections := 0
	for trial := 0; trial < 150; trial++ {
		n := 20 + int(rng.Int32N(60))
		m := n / 2 * (1 + int(rng.Int32N(4)))
		g := graph.Gnm(n, m, rng)
		L := 3 + int(rng.Int32N(6)) // 3..8
		skip := L%2 == 0 && rng.Float64() < 0.4
		// A third of the trials plant a consecutively colored cycle so the
		// fuzz exercises the detection path heavily; the coloring of the
		// rest of the graph stays adversarially random either way.
		var planted []graph.NodeID
		if rng.Float64() < 0.35 {
			var err error
			g, planted, err = graph.PlantCycle(g, L, rng)
			if err != nil {
				t.Fatal(err)
			}
		}
		colors := make([]int8, n)
		inH := make([]bool, n)
		inX := make([]bool, n)
		for v := 0; v < n; v++ {
			colors[v] = int8(rng.IntN(L))
			inH[v] = rng.Float64() < 0.9
			inX[v] = rng.Float64() < 0.7
		}
		for i, v := range planted {
			colors[v] = int8(i)
			inH[v] = true
			if i == 0 {
				inX[v] = true
			}
		}
		threshold := 1 + int(rng.Int32N(int32(n)))
		seedProb := 1.0
		if rng.Float64() < 0.3 {
			seedProb = 0.3 + rng.Float64()*0.7
		}
		spec := ColorBFSSpec{
			L:          L,
			Color:      colors,
			InH:        inH,
			InX:        inX,
			Threshold:  threshold,
			SeedProb:   seedProb,
			DetectSkip: skip,
			Pipelined:  rng.Float64() < 0.5,
		}
		bfs, err := NewColorBFS(n, spec)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		net := congest.NewNetwork(g, uint64(trial))
		if _, err := bfs.Run(congest.NewEngine(net)); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		for _, d := range bfs.Detections() {
			detections++
			w, err := bfs.Witness(d)
			if err != nil {
				t.Fatalf("trial %d: witness reconstruction: %v", trial, err)
			}
			wantLen := L
			if d.Skip {
				wantLen = L - 1
			}
			if err := graph.IsSimpleCycle(g, w, wantLen); err != nil {
				t.Fatalf("trial %d (L=%d skip=%v): invalid witness %v: %v",
					trial, L, d.Skip, w, err)
			}
			// The cycle must lie entirely inside H.
			for _, v := range w {
				if !inH[v] {
					t.Fatalf("trial %d: witness leaves H at %d", trial, v)
				}
			}
			// And its seed must come from X.
			if !inX[graph.NodeID(d.Seed)] {
				t.Fatalf("trial %d: witness seeded outside X", trial)
			}
		}
	}
	if detections < 20 {
		t.Fatalf("fuzz exercised only %d detections; instance mix too weak", detections)
	}
	t.Logf("one-sidedness fuzz: %d detections, all witnesses verified", detections)
}

// TestAlgorithm1UniversalOneSidedness fuzzes the full driver: random
// graphs and parameters; every Found must carry a verified witness (the
// driver itself enforces this — the test proves no configuration can
// produce an error or an invalid result).
func TestAlgorithm1UniversalOneSidedness(t *testing.T) {
	rng := graph.NewRand(4048)
	found := 0
	for trial := 0; trial < 40; trial++ {
		n := 30 + int(rng.Int32N(90))
		m := n + int(rng.Int32N(int32(n)))
		g := graph.Gnm(n, m, rng)
		k := 2 + int(rng.Int32N(2))
		opt := Options{
			Seed:          uint64(trial),
			MaxIterations: 1 + int(rng.Int32N(40)),
			Pipelined:     rng.Float64() < 0.5,
		}
		if rng.Float64() < 0.3 {
			opt.SeedProb = 0.5
		}
		if rng.Float64() < 0.3 {
			opt.Threshold = 1 + int(rng.Int32N(20))
		}
		res, err := DetectEvenCycle(g, k, opt)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if res.Found {
			found++
			if err := graph.IsSimpleCycle(g, res.Witness, 2*k); err != nil {
				t.Fatalf("trial %d: %v", trial, err)
			}
			if !graph.HasCycleLen(g, 2*k) {
				t.Fatalf("trial %d: detector and exact search disagree", trial)
			}
		}
	}
	t.Logf("driver fuzz: %d detections across 40 random configurations", found)
}

// TestOneSidednessUnderMessageLoss machine-checks that one-sidedness is
// structural: even with 30% adversarial message loss, any detection that
// does occur still carries a valid witness (a received identifier implies
// its whole well-colored path was received upstream), and C-free inputs
// are never rejected.
func TestOneSidednessUnderMessageLoss(t *testing.T) {
	rng := graph.NewRand(777)
	found := 0
	for trial := 0; trial < 25; trial++ {
		n := 60 + int(rng.Int32N(60))
		g, _, err := graph.PlantedLight(n, 4, 2.0, rng)
		if err != nil {
			t.Fatal(err)
		}
		res, err := DetectEvenCycle(g, 2, Options{
			Seed:          uint64(trial),
			MaxIterations: 30,
			DropProb:      0.3,
		})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if res.Found {
			found++
			if err := graph.IsSimpleCycle(g, res.Witness, 4); err != nil {
				t.Fatalf("trial %d: loss corrupted a witness: %v", trial, err)
			}
		}
	}
	if found == 0 {
		t.Fatal("nothing detected under 30% loss; test exercised nothing")
	}
	// And a C_4-free graph must stay clean under loss as well.
	free := graph.HighGirth(100, 120, 4, rng)
	res, err := DetectEvenCycle(free, 2, Options{Seed: 1, MaxIterations: 40, DropProb: 0.3})
	if err != nil {
		t.Fatal(err)
	}
	if res.Found {
		t.Fatal("false positive under message loss")
	}
}
