// Package core implements the paper's primary contribution: Algorithm 1
// (deciding C_{2k}-freeness with a global congestion threshold, Theorem 1),
// its color-BFS-with-threshold subroutine in both the paper's batch
// schedule and a pipelined variant, the construction of the vertex sets U,
// S and W (Instructions 1–5), witness extraction, the listing and
// local-detection variants of Section 1.2, the bounded-length (F_{2k})
// detector of Section 3.5, and the Density Lemma machinery (Lemmas 4–7,
// see density.go).
//
// Pooling contract: ColorBFS invocations are reusable via ColorBFSPool —
// an acquired instance's identifier sets (internal/idset), forwarding
// queues and detection buffers retain their capacity across invocations,
// so the steady state of the 3·K color-BFS calls of one detection run
// allocates almost nothing. After Release, nothing read from the instance
// (Detections, parent pointers, witnesses) may be retained; callers that
// need an instance to stay readable (witness notification walks its parent
// pointers) keep it and skip the Release.
//
// Determinism contract: all randomness derives from the caller's seed via
// sched.Tag (per-iteration coloring streams, per-session engine tags), and
// detections are recorded into per-node lock-free buffers that are merged
// and canonically sorted after each session — so every verdict, witness
// and cost counter is bit-identical for any Workers/Shards/Parallel
// setting. One-sidedness is enforced mechanically: every detection's
// witness is re-verified against the input graph before it is reported.
package core
