package core

import (
	"fmt"
	"math"
)

// Params carries the parameterization of Algorithm 1 for deciding
// C_{2k}-freeness with one-sided error ε on an n-vertex graph
// (Instructions 1–6 of Algorithm 1):
//
//	ε̂ = ln(3/ε)
//	p  = ε̂·2k²/n^{1/k}        (selection probability of S)
//	τ  = k·2^k·n·p            (global threshold, Θ(n^{1-1/k}))
//	K  = ε̂·(2k)^{2k}          (number of coloring repetitions)
//	light degree bound n^{1/k} (membership in U)
type Params struct {
	N   int     // number of vertices
	K   int     // half cycle length: the algorithm decides C_{2k}-freeness
	Eps float64 // one-sided error probability

	EpsHat     float64 // ln(3/ε)
	P          float64 // selection probability, capped at 1
	Tau        int     // global threshold τ
	Iterations int     // K, the repetition count actually used
	LightMax   int     // degree bound for U

	// FaithfulIterations is the paper's K = ε̂(2k)^{2k} before any override;
	// it is astronomically large for k ≥ 3 and constant in n, so experiments
	// override Iterations while reporting this value.
	FaithfulIterations float64
}

// NewParams derives the paper's parameters.
func NewParams(n, k int, eps float64) (Params, error) {
	if k < 2 {
		return Params{}, fmt.Errorf("core: k = %d < 2 (C_{2k} detection needs k ≥ 2)", k)
	}
	if n < 2 {
		return Params{}, fmt.Errorf("core: n = %d too small", n)
	}
	if eps <= 0 || eps >= 1 {
		return Params{}, fmt.Errorf("core: ε = %v outside (0,1)", eps)
	}
	epsHat := math.Log(3 / eps)
	nRoot := math.Pow(float64(n), 1/float64(k))
	p := epsHat * 2 * float64(k*k) / nRoot
	if p > 1 {
		p = 1
	}
	tau := float64(k) * math.Pow(2, float64(k)) * float64(n) * p
	faithfulK := epsHat * math.Pow(2*float64(k), 2*float64(k))
	iter := faithfulK
	// Keep the value representable; callers override Iterations anyway for
	// large k.
	if iter > math.MaxInt32 {
		iter = math.MaxInt32
	}
	return Params{
		N:                  n,
		K:                  k,
		Eps:                eps,
		EpsHat:             epsHat,
		P:                  p,
		Tau:                int(math.Ceil(tau)),
		Iterations:         int(math.Ceil(iter)),
		LightMax:           int(math.Floor(nRoot)),
		FaithfulIterations: faithfulK,
	}, nil
}

// ApplyP replaces the selection probability and rederives the threshold
// τ = k·2^k·n·p that depends on it.
func (p *Params) ApplyP(prob float64) {
	if prob > 1 {
		prob = 1
	}
	p.P = prob
	p.Tau = int(math.Ceil(float64(p.K) * math.Pow(2, float64(p.K)) * float64(p.N) * prob))
	if p.Tau < 1 {
		p.Tau = 1
	}
}

// BudgetRounds returns the a-priori round budget K·3·k·τ of Algorithm 1
// (three color-BFS calls of at most k·τ rounds per iteration), the
// O(log²(1/ε)·2^{3k}k^{2k+3}·n^{1-1/k}) quantity of Theorem 1.
func (p Params) BudgetRounds() float64 {
	return float64(p.Iterations) * 3 * float64(p.K) * float64(p.Tau)
}
