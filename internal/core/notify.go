package core

import (
	"fmt"

	"repro/internal/congest"
	"repro/internal/graph"
)

const kindNotify uint8 = 13 // membership token: A = seed id, B = direction

// This file implements the *local detection* variant discussed in the
// paper's Section 1.2: local detection requires each node to output
// accept/reject according to whether it belongs to a copy of the target
// subgraph. The decision algorithm gives one rejecting node (the color-m
// detector); WitnessNotify upgrades it distributively — the detector sends
// membership tokens backward along the two parent chains of the detected
// identifier, so every vertex of the discovered cycle rejects. The
// notification takes L extra rounds and O(L) messages.

// WitnessNotify is a CONGEST protocol run after a ColorBFS detection; on
// completion, Member[v] is true exactly for the vertices of the detected
// cycle.
type WitnessNotify struct {
	BFS *ColorBFS
	Det Detection

	Member []bool
}

var _ congest.Handler = (*WitnessNotify)(nil)

// Init wakes the detector.
func (w *WitnessNotify) Init(rt *congest.Runtime) {
	w.Member = make([]bool, rt.N())
	rt.WakeAt(w.Det.Node, 0)
}

// HandleRound implements congest.Handler.
func (w *WitnessNotify) HandleRound(rt *congest.Runtime, u graph.NodeID, r int, inbox []congest.Message) {
	b := w.BFS
	id := w.Det.Seed
	if r == 0 && u == w.Det.Node {
		w.Member[u] = true
		// Ascending chain.
		if p, ok := b.asc.Get(u, id); ok {
			rt.Send(u, p, kindNotify, id, 0)
		}
		// Descending chain: for a skip detection the first hop is the
		// skip relay, which then continues through its descending map.
		if w.Det.Skip {
			if p, ok := b.skip.Get(u, id); ok {
				rt.Send(u, p, kindNotify, id, 1)
			}
		} else if p, ok := b.desc.Get(u, id); ok {
			rt.Send(u, p, kindNotify, id, 1)
		}
		return
	}
	for _, m := range inbox {
		if m.Kind() != kindNotify || m.A() != id {
			continue
		}
		w.Member[u] = true
		if uint64(u) == id {
			continue // the seed: both chains terminate here
		}
		var parent graph.NodeID
		var ok bool
		if m.B() == 0 {
			parent, ok = b.asc.Get(u, id)
		} else {
			parent, ok = b.desc.Get(u, id)
		}
		if ok {
			rt.Send(u, parent, kindNotify, id, m.B())
		}
	}
}

// LocalResult extends a detection with the local-detection output.
type LocalResult struct {
	*Result
	// Rejecting lists every node that outputs reject: the members of the
	// detected cycle (empty when nothing was found).
	Rejecting []graph.NodeID
	// NotifyRounds is the extra cost of the membership notification.
	NotifyRounds int
}

// DetectEvenCycleLocal runs Algorithm 1 and, on detection, the
// witness-notification protocol, returning the full rejecting set — the
// local-detection output of Section 1.2.
func DetectEvenCycleLocal(g *graph.Graph, k int, opt Options) (*LocalResult, error) {
	// Re-run the final detecting color-BFS is not needed: we re-execute
	// the whole driver but capture the detecting BFS by replaying the
	// winning call with the same seeds. Simpler and faithful: run the
	// driver, then reconstruct membership from the witness directly via a
	// notification session on a fresh ColorBFS replay is not available —
	// instead the driver below duplicates runAlgorithm1's loop, keeping
	// the detecting ColorBFS alive for the notification.
	eps := opt.Eps
	if eps == 0 {
		eps = 1.0 / 3
	}
	params, err := NewParams(g.NumNodes(), k, eps)
	if err != nil {
		return nil, err
	}
	if opt.MaxIterations > 0 {
		params.Iterations = opt.MaxIterations
	}
	if opt.POverride > 0 {
		params.ApplyP(opt.POverride)
	}
	if opt.Threshold > 0 {
		params.Tau = opt.Threshold
	}
	res, bfs, det, eng, err := runAlgorithm1Capturing(g, params, opt)
	if err != nil {
		return nil, err
	}
	out := &LocalResult{Result: res}
	if !res.Found {
		return out, nil
	}
	notify := &WitnessNotify{BFS: bfs, Det: det}
	rep, err := eng.Run(notify)
	if err != nil {
		return nil, fmt.Errorf("core: witness notification: %w", err)
	}
	out.NotifyRounds = rep.Rounds
	out.Rounds += rep.Rounds
	out.Messages += rep.Messages
	for v, member := range notify.Member {
		if member {
			out.Rejecting = append(out.Rejecting, graph.NodeID(v))
		}
	}
	// Sanity: the rejecting set must be exactly the witness vertices.
	if len(out.Rejecting) != len(res.Witness) {
		return nil, fmt.Errorf("core: notification reached %d nodes, witness has %d",
			len(out.Rejecting), len(res.Witness))
	}
	return out, nil
}
