package core

import (
	"fmt"
	"slices"
	"strings"

	"repro/internal/congest"
	"repro/internal/graph"
	"repro/internal/sched"
)

// This file implements the listing variant of cycle detection discussed in
// the paper's Section 1.2: in subgraph listing, every occurrence must be
// reported by at least one node (as opposed to decision, where one
// rejection suffices). Algorithm 1 already surfaces one witness per
// (coloring, detector, seed) collision; the listing driver keeps *all*
// collisions across all iterations, reconstructs their witnesses, and
// deduplicates them up to rotation and reflection. Since distinct
// well-colored copies produce distinct collisions, every C_{2k} whose
// vertices receive a consecutive coloring during some iteration is listed;
// with the faithful K the guarantee "each copy listed with probability
// ≥ 1-ε" follows from Fact 1 exactly as for detection.

// CanonicalCycle returns a canonical form of a cycle's vertex sequence:
// rotated so the minimum vertex comes first and oriented toward the
// smaller second vertex. Two sequences describe the same cycle iff their
// canonical forms are equal.
func CanonicalCycle(verts []graph.NodeID) []graph.NodeID {
	n := len(verts)
	if n == 0 {
		return nil
	}
	minIdx := 0
	for i, v := range verts {
		if v < verts[minIdx] {
			minIdx = i
		}
	}
	forward := make([]graph.NodeID, n)
	backward := make([]graph.NodeID, n)
	for i := 0; i < n; i++ {
		forward[i] = verts[(minIdx+i)%n]
		backward[i] = verts[(minIdx-i+n)%n]
	}
	if lessSeq(forward, backward) {
		return forward
	}
	return backward
}

func lessSeq(a, b []graph.NodeID) bool {
	for i := range a {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return false
}

func cycleKey(verts []graph.NodeID) string {
	canon := CanonicalCycle(verts)
	var sb strings.Builder
	for _, v := range canon {
		fmt.Fprintf(&sb, "%d,", v)
	}
	return sb.String()
}

// ListResult reports a listing run.
type ListResult struct {
	// Cycles are the distinct (up to rotation/reflection) verified
	// 2k-cycles found, in canonical form, sorted lexicographically.
	Cycles [][]graph.NodeID
	// Rounds/Messages aggregate the run's cost.
	Rounds        int
	Messages      int64
	IterationsRun int
}

// ListEvenCycles runs Algorithm 1 in listing mode: all iterations execute
// (no early stop), every identifier collision is materialized into a
// witness, and distinct cycles are collected. Every returned cycle is
// verified against g.
func ListEvenCycles(g *graph.Graph, k int, opt Options) (*ListResult, error) {
	eps := opt.Eps
	if eps == 0 {
		eps = 1.0 / 3
	}
	params, err := NewParams(g.NumNodes(), k, eps)
	if err != nil {
		return nil, err
	}
	if opt.MaxIterations > 0 {
		params.Iterations = opt.MaxIterations
	}
	if opt.POverride > 0 {
		params.ApplyP(opt.POverride)
	}
	if opt.Threshold > 0 {
		params.Tau = opt.Threshold
	}

	n := g.NumNodes()
	net := congest.NewNetwork(g, opt.Seed)
	eng := congest.NewEngine(net)
	eng.Workers = opt.Workers
	eng.Shards = opt.Shards
	eng.ParallelThreshold = opt.ParallelThreshold
	eng.MaxRounds = opt.MaxRounds
	eng.Cancel = opt.Cancel
	eng.Observe = opt.Observe

	res := &ListResult{}
	total := &congest.Report{}

	sets := &Sets{Params: params}
	rep, err := eng.Run(sets)
	if err != nil {
		return nil, fmt.Errorf("core: listing set construction: %w", err)
	}
	sets.Finish()
	total.Accumulate(rep)

	seedProb := opt.SeedProb
	if seedProb == 0 {
		seedProb = 1
	}
	bfsThreshold := opt.BFSThreshold
	if bfsThreshold == 0 {
		bfsThreshold = params.Tau
	}

	all := make([]bool, n)
	notS := make([]bool, n)
	for v := 0; v < n; v++ {
		all[v] = true
		notS[v] = !sets.InS[v]
	}
	L := 2 * params.K
	calls := []struct {
		inH, inX []bool
	}{
		{sets.InU, sets.InU},
		{all, sets.InS},
		{notS, sets.InW},
	}

	// Listing mode has no early stop: every iteration is an independent
	// trial; the fold merges each trial's witnesses in index order, so the
	// listed set is identical for every Parallel setting.
	type listOutcome struct {
		rep       congest.Report
		witnesses [][]graph.NodeID
	}
	seen := make(map[string]struct{})
	pool := NewColorBFSPool(n)
	trial := func(it int) (*listOutcome, error) {
		colors := IterationColors(n, L, opt.Seed, it)
		out := &listOutcome{}
		for ci, call := range calls {
			bfs, err := pool.Acquire(ColorBFSSpec{
				L:         L,
				Color:     colors,
				InH:       call.inH,
				InX:       call.inX,
				Threshold: bfsThreshold,
				SeedProb:  seedProb,
				Pipelined: opt.Pipelined,
			})
			if err != nil {
				return nil, err
			}
			rep, err := bfs.RunSessions(eng, sched.Tag(opt.Seed, 0xa190, uint64(it), uint64(ci)))
			if err != nil {
				return nil, err
			}
			out.rep.Accumulate(rep)
			for _, d := range bfs.Detections() {
				witness, err := bfs.Witness(d)
				if err != nil {
					return nil, fmt.Errorf("core: listing witness: %w", err)
				}
				if err := graph.IsSimpleCycle(g, witness, L); err != nil {
					return nil, fmt.Errorf("core: listing invalid witness: %w", err)
				}
				out.witnesses = append(out.witnesses, witness)
			}
			pool.Release(bfs)
		}
		return out, nil
	}
	fold := func(it int, out *listOutcome) bool {
		res.IterationsRun = it + 1
		total.Accumulate(&out.rep)
		for _, witness := range out.witnesses {
			key := cycleKey(witness)
			if _, dup := seen[key]; dup {
				continue
			}
			seen[key] = struct{}{}
			res.Cycles = append(res.Cycles, CanonicalCycle(witness))
		}
		return false
	}
	runner := sched.TrialRunner{Workers: opt.Parallel}
	if _, err := sched.Run(runner, params.Iterations, trial, fold); err != nil {
		return nil, err
	}
	slices.SortFunc(res.Cycles, slices.Compare)
	res.Rounds = total.Rounds
	res.Messages = total.Messages
	return res, nil
}
