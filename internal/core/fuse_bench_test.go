package core

import (
	"testing"

	"repro/internal/graph"
)

// benchmarkFusedVsSolo measures the fused batch path against B solo runs
// over the same graphs (the service's miss-path comparison).
func benchCorpus(b *testing.B, n, count int) []FusedItem {
	b.Helper()
	rng := graph.NewRand(7)
	items := make([]FusedItem, count)
	for i := range items {
		pg, _, err := graph.PlantedLight(n, 4, 1.5, rng)
		if err != nil {
			b.Fatal(err)
		}
		items[i] = FusedItem{Graph: pg, Seed: uint64(i), Iterations: 2}
	}
	return items
}

func BenchmarkMissPathSolo(b *testing.B) {
	items := benchCorpus(b, 16, 16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, it := range items {
			if _, err := DetectEvenCycle(it.Graph, 2, Options{Seed: it.Seed, MaxIterations: it.Iterations}); err != nil {
				b.Fatal(err)
			}
		}
	}
}

func BenchmarkMissPathFused(b *testing.B) {
	items := benchCorpus(b, 16, 16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := DetectEvenCycleFused(items, 2, Options{}); err != nil {
			b.Fatal(err)
		}
	}
}
