package core

import (
	"fmt"
	"math/rand/v2"
	"time"

	"repro/internal/congest"
	"repro/internal/graph"
	"repro/internal/sched"
)

// Options tunes a run of Algorithm 1. The zero value requests the paper's
// faithful parameterization with ε = 1/3.
type Options struct {
	// Eps is the one-sided error probability; 0 means 1/3.
	Eps float64
	// MaxIterations overrides the number of coloring repetitions K; 0
	// keeps the faithful (constant-in-n but enormous) value. Experiments
	// set a small value, which only lowers the success probability;
	// classical amplification of the low-probability detector sets a large
	// one. One-sidedness is unaffected either way.
	MaxIterations int
	// Threshold overrides τ (0 keeps the faithful value). Used by
	// congestion ablations.
	Threshold int
	// POverride overrides the selection probability p of S (0 keeps the
	// faithful ε̂·2k²/n^{1/k}). Scaling experiments use p = c/n^{1/k} with
	// a small c: the exponent of the round complexity in n — the measured
	// quantity — is unchanged, while the paper's constants (which exist to
	// guarantee the success probability and only matter at astronomical n
	// for k ≥ 3) stop dominating the instance sizes a simulation can run.
	POverride float64
	// SeedProb activates each color-0 seed independently with this
	// probability (0 means 1, the deterministic activation of
	// Algorithm 1). Values < 1 yield the congestion-reduced Algorithm 2.
	SeedProb float64
	// BFSThreshold overrides the threshold used inside color-BFS only,
	// leaving τ-derived set sizes alone; 0 means "same as Threshold".
	// Algorithm 2 sets this to 4.
	BFSThreshold int
	// Pipelined selects the pipelined color-BFS schedule (ablation A1).
	Pipelined bool
	// EarlyStop ends the iteration loop at the first detection (on by
	// default via DetectEvenCycle; set KeepGoing to run all iterations).
	KeepGoing bool
	// Seed is the master random seed.
	Seed uint64
	// Workers configures engine parallelism (0 = GOMAXPROCS).
	Workers int
	// Shards overrides the receiver-shard count of the engine's parallel
	// delivery phase and ParallelThreshold its serial/parallel cutover
	// (see congest.Engine); 0 keeps the engine defaults. Transcripts are
	// bit-identical for every setting.
	Shards            int
	ParallelThreshold int
	// Parallel is the number of coloring iterations (trials) in flight at
	// once: 0 or 1 runs them sequentially, negative means GOMAXPROCS.
	// Results are deterministic for a fixed Seed regardless of Parallel
	// (see internal/sched for the contract).
	Parallel int
	// MaxRounds bounds each engine session (0 = engine default).
	MaxRounds int
	// DropProb injects adversarial message loss (see congest.Engine);
	// detection may be missed under loss but one-sidedness is structural.
	DropProb float64
	// Cancel, when set, is handed to every engine session of the run:
	// tripping it aborts the detection at the next round boundary with
	// congest.ErrCanceled. An untripped flag leaves every transcript
	// bit-identical (see congest.CancelFlag).
	Cancel *congest.CancelFlag
	// Observe, when set, is handed to every engine session of the run
	// and called with each completed session's round count and wall
	// clock (see congest.Engine.Observe). Purely passive: transcripts,
	// results, and allocation counts are identical with or without it.
	Observe func(rounds int, wall time.Duration)
}

// Result reports the outcome and cost of a detection run.
type Result struct {
	// Found is true when some node rejected; by one-sidedness the input
	// then provably contains the target cycle, and Witness holds it.
	Found    bool
	Witness  []graph.NodeID
	Detector graph.NodeID

	// Rounds is the executed CONGEST round count, summed over every
	// session of the run (set construction plus all color-BFS phases).
	Rounds int
	// Messages is the total message count, and Bits the model-level
	// bandwidth they consumed (Messages × (8 + 2⌈log₂ n⌉)).
	Messages int64
	Bits     int64
	// MaxCongestion is the largest identifier set any node accumulated.
	MaxCongestion int
	// Overflowed reports whether any forwarder hit the threshold.
	Overflowed bool
	// IterationsRun is the number of coloring repetitions executed.
	IterationsRun int

	// Set sizes from the construction phase.
	SizeU, SizeS, SizeW int

	// Params echoes the parameterization used.
	Params Params
}

// DetectEvenCycle runs Algorithm 1, deciding C_{2k}-freeness on g with
// one-sided error: if it reports Found, g contains C_{2k} (the witness is
// re-verified against g before returning); if g contains C_{2k}, it reports
// Found with probability ≥ 1-ε under the faithful parameterization.
func DetectEvenCycle(g *graph.Graph, k int, opt Options) (*Result, error) {
	eps := opt.Eps
	if eps == 0 {
		eps = 1.0 / 3
	}
	params, err := NewParams(g.NumNodes(), k, eps)
	if err != nil {
		return nil, err
	}
	if opt.MaxIterations > 0 {
		params.Iterations = opt.MaxIterations
	}
	if opt.POverride > 0 {
		params.ApplyP(opt.POverride)
	}
	if opt.Threshold > 0 {
		params.Tau = opt.Threshold
	}
	return runAlgorithm1(g, params, opt)
}

// runAlgorithm1 executes the three-call structure of Algorithm 1 for the
// given (possibly overridden) parameters.
func runAlgorithm1(g *graph.Graph, params Params, opt Options) (*Result, error) {
	res, _, _, _, err := runAlgorithm1Capturing(g, params, opt)
	return res, err
}

// IterationColors draws the fresh uniform coloring of iteration `it`
// (Instruction 8): node-local randomness, zero rounds; drawn centrally
// from a per-iteration stream so that trials are reproducible and
// decorrelated under any scheduling. Callers running several independent
// coloring families (length pairs, detector variants) pre-tag the seed so
// the families draw distinct streams.
func IterationColors(n, L int, seed uint64, it int) []int8 {
	colors := make([]int8, n)
	iterationColorsInto(colors, L, seed, it)
	return colors
}

// iterationColorsInto fills dst with iteration it's coloring. Fused
// sessions draw each component's block of the union coloring through
// this, from the component's own (seed, it) stream — identical draws to
// the component's solo run.
func iterationColorsInto(dst []int8, L int, seed uint64, it int) {
	rng := rand.New(rand.NewPCG(
		sched.Tag(seed, 0xc0102, uint64(it)),
		sched.Tag(seed, 0xc0103, uint64(it)),
	))
	for v := range dst {
		dst[v] = int8(rng.IntN(L))
	}
}

// iterOutcome is the result of one coloring iteration (one trial of the
// shared scheduler): the summed cost of its color-BFS calls plus the
// detection state needed to finish the run.
type iterOutcome struct {
	rep        congest.Report
	maxCong    int
	overflowed bool
	found      bool
	witness    []graph.NodeID
	detector   graph.NodeID
	bfs        *ColorBFS
	det        Detection
}

// runAlgorithm1Capturing is runAlgorithm1 but additionally returns the
// detecting ColorBFS instance, its detection and the engine, so that
// follow-up protocols (witness notification, Section 1.2's local
// detection) can run on the same session state.
func runAlgorithm1Capturing(g *graph.Graph, params Params, opt Options) (*Result, *ColorBFS, Detection, *congest.Engine, error) {
	n := g.NumNodes()
	net := congest.NewNetwork(g, opt.Seed)
	eng := congest.NewEngine(net)
	eng.Workers = opt.Workers
	eng.Shards = opt.Shards
	eng.ParallelThreshold = opt.ParallelThreshold
	eng.MaxRounds = opt.MaxRounds
	eng.DropProb = opt.DropProb
	eng.Cancel = opt.Cancel
	eng.Observe = opt.Observe

	res := &Result{Params: params}
	total := &congest.Report{}
	var detBFS *ColorBFS
	var det Detection

	// Instructions 1–5: construct U, S, W (one communication round).
	sets := &Sets{Params: params}
	rep, err := eng.Run(sets)
	if err != nil {
		return nil, nil, det, nil, fmt.Errorf("core: set construction: %w", err)
	}
	sets.Finish()
	total.Accumulate(rep)
	res.SizeU, res.SizeS, res.SizeW = sets.SizeU, sets.SizeS, sets.SizeW

	seedProb := opt.SeedProb
	if seedProb == 0 {
		seedProb = 1
	}
	bfsThreshold := opt.BFSThreshold
	if bfsThreshold == 0 {
		bfsThreshold = params.Tau
	}

	all := make([]bool, n)
	notS := make([]bool, n)
	for v := 0; v < n; v++ {
		all[v] = true
		notS[v] = !sets.InS[v]
	}
	L := 2 * params.K

	calls := []struct {
		name     string
		inH, inX []bool
	}{
		{"light (G[U],U)", sets.InU, sets.InU}, // Instruction 9
		{"selected (G,S)", all, sets.InS},      // Instruction 10
		{"heavy (G∖S,W)", notS, sets.InW},      // Instruction 11
	}

	// Instruction 7: K search phases, as independent trials on the shared
	// scheduler. Each trial runs the three color-BFS calls of one coloring
	// under explicit session tags; the fold below aggregates the
	// deterministic prefix, so the result is the same for every Parallel.
	// Invocations are pooled: every trial reuses the identifier-set tables
	// of earlier ones, so the 3×K color-BFS calls allocate almost nothing
	// after the first coloring.
	pool := NewColorBFSPool(n)
	trial := func(it int) (*iterOutcome, error) {
		colors := IterationColors(n, L, opt.Seed, it)
		out := &iterOutcome{}
		for ci, call := range calls {
			bfs, err := pool.Acquire(ColorBFSSpec{
				L:         L,
				Color:     colors,
				InH:       call.inH,
				InX:       call.inX,
				Threshold: bfsThreshold,
				SeedProb:  seedProb,
				Pipelined: opt.Pipelined,
			})
			if err != nil {
				return nil, fmt.Errorf("core: %s: %w", call.name, err)
			}
			rep, err := bfs.RunSessions(eng, sched.Tag(opt.Seed, 0xa190, uint64(it), uint64(ci)))
			if err != nil {
				return nil, fmt.Errorf("core: %s: %w", call.name, err)
			}
			out.rep.Accumulate(rep)
			if c := bfs.MaxCongestion(); c > out.maxCong {
				out.maxCong = c
			}
			out.overflowed = out.overflowed || bfs.Overflowed()
			if len(bfs.Detections()) > 0 && !out.found {
				d := bfs.Detections()[0]
				witness, err := bfs.Witness(d)
				if err != nil {
					return nil, fmt.Errorf("core: %s: %w", call.name, err)
				}
				if err := graph.IsSimpleCycle(g, witness, L); err != nil {
					return nil, fmt.Errorf("core: %s produced invalid witness %v: %w", call.name, witness, err)
				}
				out.found = true
				out.witness = witness
				out.detector = d.Node
				out.bfs = bfs
				out.det = d
			}
			if out.bfs != bfs {
				// The detecting invocation is retained (witness notification
				// walks its parent pointers after the loop); everything else
				// goes back to the pool.
				pool.Release(bfs)
			}
		}
		return out, nil
	}
	fold := func(it int, out *iterOutcome) bool {
		res.IterationsRun = it + 1
		total.Accumulate(&out.rep)
		if out.maxCong > res.MaxCongestion {
			res.MaxCongestion = out.maxCong
		}
		res.Overflowed = res.Overflowed || out.overflowed
		if out.found && !res.Found {
			res.Found = true
			res.Witness = out.witness
			res.Detector = out.detector
			detBFS = out.bfs
			det = out.det
		} else if out.bfs != nil {
			// A detecting trial that lost the fold (KeepGoing, or a later
			// index than the first winner) no longer needs its retained
			// invocation; only detBFS must stay readable for notification.
			pool.Release(out.bfs)
		}
		return res.Found && !opt.KeepGoing
	}
	runner := sched.TrialRunner{Workers: opt.Parallel}
	if _, err := sched.Run(runner, params.Iterations, trial, fold); err != nil {
		return nil, nil, det, nil, err
	}
	res.Rounds = total.Rounds
	res.Messages = total.Messages
	res.Bits = total.Bits
	return res, detBFS, det, eng, nil
}
