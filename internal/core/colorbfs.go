package core

import (
	"fmt"
	"math"
	"slices"
	"sync"
	"sync/atomic"

	"repro/internal/congest"
	"repro/internal/graph"
	"repro/internal/idset"
)

// Message kinds used by color-BFS sessions.
const (
	kindSeed uint8 = 10 // phase-1 message from a color-0 seed; A = seed ID
	kindFwd  uint8 = 11 // forwarded identifier; A = seed ID, B = senderColor | dir<<8
)

const dirDesc = 1 << 8

// ColorBFSSpec describes one invocation of the color-BFS-with-threshold
// procedure color-BFS(k, H, c, X, τ) of Algorithm 1, generalized to
//
//   - arbitrary cycle length L (even L = 2k as in Algorithm 1, odd
//     L = 2k+1 as in Section 3.4),
//   - randomized seed activation with probability SeedProb and an
//     alternative constant threshold, which yields exactly Algorithm 2
//     (randomized-color-BFS) when SeedProb = 1/τ and Threshold = 4,
//   - an optional merged mode (DetectSkip) in which nodes colored m+1 also
//     feed nodes colored m-1, detecting C_{L-1} in the same run
//     (Section 3.5's conjoint testing of C_{2ℓ-1} and C_{2ℓ}).
//
// Vertices of H are those with InH true; seeds are InX ∩ InH with color 0.
// The search looks for an identifier that travelled from a seed to a node
// colored m = ⌊L/2⌋ along two well-colored paths: ascending through colors
// 0,1,…,m and descending through colors 0,L-1,…,m.
type ColorBFSSpec struct {
	L          int     // target cycle length, ≥ 3
	Color      []int8  // c(v) ∈ {0,…,L-1} for every vertex
	InH        []bool  // subgraph membership
	InX        []bool  // seed-set membership
	Threshold  int     // τ: forwarders discard their set when it exceeds τ
	SeedProb   float64 // activation probability of each seed (Algorithm 2)
	DetectSkip bool    // additionally detect C_{L-1} (merged F_{2k} mode)
	Pipelined  bool    // pipelined schedule instead of the batch schedule
	// ThresholdAt, when non-nil, overrides Threshold per node. τ is
	// n-dependent (Θ(n^{1-1/k})), so a fused disjoint-union session sets
	// each component's nodes to the component's own τ — the condition for
	// the component's transcript to match a solo run. Threshold is ignored
	// when set (pass 1 to satisfy validation).
	ThresholdAt []int32
}

// Detection records one identifier collision at a detector node, i.e. one
// discovered cycle.
type Detection struct {
	Node graph.NodeID
	Seed uint64
	Skip bool // true: a C_{L-1} found via the merged mode
}

// ColorBFS executes one color-BFS invocation on an engine. Instances are
// reusable: a ColorBFSPool hands out reset instances whose identifier-set
// tables, forwarding queues and detection buffers are retained across
// invocations, so the steady state of a pooled instance allocates nothing
// per invocation (see internal/idset for the set representation).
type ColorBFS struct {
	spec ColorBFSSpec
	n    int
	m    int // detector color ⌊L/2⌋
	tmax int // number of forwarding phases: max(m, L-m)

	// Per-node identifier sets, storing id → parent (the neighbor that
	// first delivered the id), which is the information witness extraction
	// walks. Each node's set is touched only by that node's handler
	// invocation, so the engine may run handlers in parallel without locks.
	asc, desc, skip *idset.Store
	ascOver         []bool
	descOver        []bool

	// Lock-free detection recording: detAt[v] is appended to only by v's
	// handler; RunSessions merges the per-node buffers (in ascending node
	// order) after the engine session ends. detCount short-circuits the
	// merge scan on the common no-detection path.
	detAt      [][]Detection
	detCount   atomic.Int64
	detections []Detection

	// Forwarding queues, shared by the batch phases (each node transmits in
	// exactly one phase, so a drained queue never aliases a later phase's)
	// and by the pipelined schedule. Every queue starts as a slice of one
	// shared slab (queueSlabCap entries per node, covering seeds and small
	// forwarder sets without a first-touch allocation per node); queues
	// that outgrow the slab segment get individual backing from append.
	queue    [][]uint64
	queueIdx []int32

	// over mirrors "any entry of ascOver/descOver is set" so Overflowed is
	// O(1) instead of a 2n-wide scan per invocation. It is an atomic only
	// because overflow is flagged from concurrent node handlers; reads on
	// the handler path stay on the per-node bool arrays.
	over atomic.Bool

	// Send-phase buckets, cached across invocations: bucketSeeds lists
	// the color-0 vertices and bucketPhase[p-2] the vertices transmitting
	// in batch phase p ≥ 2, for the coloring snapshot held in bucketColor
	// (compared by content) at cycle length bucketL. The buckets depend
	// only on (L, Color), so the three color-BFS calls of one trial —
	// same coloring, different H and X, which initSender rechecks —
	// bucket the graph once instead of once per call and phase.
	bucketL     int
	bucketSrc   []int8 // the Color slice the buckets were built from
	bucketColor []int8 // private snapshot, compared when bucketSrc moved
	bucketSeeds []graph.NodeID
	bucketPhase [][]graph.NodeID
}

// validateSpec checks a spec against a graph on n vertices.
func validateSpec(n int, spec ColorBFSSpec) error {
	if spec.L < 3 {
		return fmt.Errorf("core: cycle length %d < 3", spec.L)
	}
	if len(spec.Color) != n || len(spec.InH) != n || len(spec.InX) != n {
		return fmt.Errorf("core: spec arrays must have length %d", n)
	}
	if spec.Threshold < 1 {
		return fmt.Errorf("core: threshold %d < 1", spec.Threshold)
	}
	if spec.SeedProb <= 0 || spec.SeedProb > 1 {
		return fmt.Errorf("core: seed probability %v outside (0,1]", spec.SeedProb)
	}
	if spec.DetectSkip && spec.L%2 != 0 {
		return fmt.Errorf("core: merged C_{L-1} mode requires even L, got %d", spec.L)
	}
	if spec.ThresholdAt != nil {
		if len(spec.ThresholdAt) != n {
			return fmt.Errorf("core: per-node threshold array has length %d, want %d", len(spec.ThresholdAt), n)
		}
		for v, t := range spec.ThresholdAt {
			if t < 1 {
				return fmt.Errorf("core: per-node threshold %d < 1 at node %d", t, v)
			}
		}
	}
	return nil
}

// NewColorBFS validates the spec and prepares an invocation for a graph on
// n vertices. Callers that execute many invocations should use a
// ColorBFSPool instead, which reuses instances.
func NewColorBFS(n int, spec ColorBFSSpec) (*ColorBFS, error) {
	if err := validateSpec(n, spec); err != nil {
		return nil, err
	}
	b := newColorBFS(n)
	b.reset(spec)
	return b, nil
}

// queueSlabCap is the per-node segment size of the shared forwarding-
// queue slab.
const queueSlabCap = 4

// newColorBFS allocates the per-node state for an n-vertex graph.
func newColorBFS(n int) *ColorBFS {
	b := &ColorBFS{
		n:        n,
		asc:      idset.New(n),
		desc:     idset.New(n),
		ascOver:  make([]bool, n),
		descOver: make([]bool, n),
		detAt:    make([][]Detection, n),
		queue:    make([][]uint64, n),
		queueIdx: make([]int32, n),
	}
	slab := make([]uint64, n*queueSlabCap)
	for v := range b.queue {
		b.queue[v] = slab[v*queueSlabCap : v*queueSlabCap : (v+1)*queueSlabCap]
	}
	return b
}

// reset prepares a (possibly reused) instance for a fresh invocation. The
// identifier sets are emptied by a generation bump (O(1)); the remaining
// per-node arrays are cleared in place, retaining their capacity.
func (b *ColorBFS) reset(spec ColorBFSSpec) {
	b.spec = spec
	b.m = spec.L / 2
	b.tmax = max(b.m, spec.L-b.m)
	b.asc.Reset(b.n)
	b.desc.Reset(b.n)
	// The skip store exists only once an instance has run in merged mode
	// (every skip code path is gated on DetectSkip or a Skip detection).
	if spec.DetectSkip && b.skip == nil {
		b.skip = idset.New(b.n)
	} else if b.skip != nil {
		b.skip.Reset(b.n)
	}
	clear(b.ascOver)
	clear(b.descOver)
	if b.detCount.Load() != 0 {
		for v := range b.detAt {
			b.detAt[v] = b.detAt[v][:0]
		}
		b.detCount.Store(0)
	}
	b.detections = b.detections[:0]
	for v := range b.queue {
		// Truncate only non-empty queues: reads are cheaper than
		// unconditionally dirtying 2n header words.
		if len(b.queue[v]) > 0 {
			b.queue[v] = b.queue[v][:0]
		}
	}
	clear(b.queueIdx)
	b.over.Store(false)
}

// ColorBFSPool hands out reusable ColorBFS instances for a fixed vertex
// count. Acquire/Release are safe for concurrent use (the trial scheduler
// runs many invocations in flight on one engine); a released instance must
// no longer be read — in particular its Detections and parent pointers —
// because the next Acquire recycles its buffers.
type ColorBFSPool struct {
	n    int
	mu   sync.Mutex
	free []*ColorBFS
}

// NewColorBFSPool returns a pool of invocations for graphs on n vertices.
func NewColorBFSPool(n int) *ColorBFSPool {
	return &ColorBFSPool{n: n}
}

// Acquire returns a reset instance for the spec, reusing a released one
// when available.
func (p *ColorBFSPool) Acquire(spec ColorBFSSpec) (*ColorBFS, error) {
	if err := validateSpec(p.n, spec); err != nil {
		return nil, err
	}
	p.mu.Lock()
	var b *ColorBFS
	if k := len(p.free); k > 0 {
		b = p.free[k-1]
		p.free = p.free[:k-1]
	}
	p.mu.Unlock()
	if b == nil {
		b = newColorBFS(p.n)
	}
	b.reset(spec)
	return b, nil
}

// Release returns an instance to the pool. Callers that retain a detecting
// instance (for witness notification) simply skip the Release.
func (p *ColorBFSPool) Release(b *ColorBFS) {
	if b == nil || b.n != p.n {
		return
	}
	p.mu.Lock()
	p.free = append(p.free, b)
	p.mu.Unlock()
}

// Role predicates. Colors: 0 seeds; 1..m-1 ascending forwarders; m
// detector; m+1..L-1 descending forwarders; in skip mode m-1 also detects.

func (b *ColorBFS) isAscForwarder(c int8) bool { return c >= 1 && int(c) <= b.m-1 }
func (b *ColorBFS) isDescForwarder(c int8) bool {
	return int(c) >= b.m+1 && int(c) <= b.spec.L-1
}

// sendPhase returns the batch phase (1-based) in which a node of color c
// transmits, or 0 if it never transmits. Seeds transmit in phase 1;
// an ascending forwarder colored c transmits in phase c+1; a descending
// forwarder colored c transmits in phase L-c+1.
func (b *ColorBFS) sendPhase(c int8) int {
	switch {
	case c == 0:
		return 1
	case b.isAscForwarder(c):
		return int(c) + 1
	case b.isDescForwarder(c):
		return b.spec.L - int(c) + 1
	default:
		return 0
	}
}

// acceptAll runs accept over a whole inbox (one call per node per round
// instead of one per message on the batch schedule's hot path).
func (b *ColorBFS) acceptAll(v graph.NodeID, c int8, inbox []congest.Message) {
	for _, m := range inbox {
		b.accept(v, c, m)
	}
}

// accept processes an incoming identifier at node v according to the
// receiver-side rules and reports whether a detection occurred.
// Receiver-side filtering (rather than sender-side color knowledge) keeps
// every node's decisions local; it costs extra messages on wrongly-colored
// edges but never extra rounds, so round complexity is unaffected.
func (b *ColorBFS) accept(v graph.NodeID, c int8, m congest.Message) {
	if !b.spec.InH[v] {
		return
	}
	id := m.A()
	switch m.Kind() {
	case kindSeed:
		if int(c) == 1 {
			b.insertAsc(v, c, id, m.From())
		}
		if int(c) == b.spec.L-1 {
			b.insertDesc(v, c, id, m.From())
		}
	case kindFwd:
		sc := int(m.B()) & 0xff
		descDir := m.B()&dirDesc != 0
		if !descDir && int(c) == sc+1 && int(c) <= b.m {
			b.insertAsc(v, c, id, m.From())
		}
		if descDir && int(c) == sc-1 && int(c) >= b.m {
			b.insertDesc(v, c, id, m.From())
		}
		if descDir && b.spec.DetectSkip && sc == b.m+1 && int(c) == b.m-1 {
			b.insertSkip(v, id, m.From())
		}
	}
}

func (b *ColorBFS) insertAsc(v graph.NodeID, c int8, id uint64, from graph.NodeID) {
	if b.ascOver[v] {
		return
	}
	// The forwarding threshold τ applies to forwarders: a set that would
	// exceed τ is discarded entirely (Instruction 19 of Algorithm 1).
	// In skip mode the color-(m-1) detectors are also forwarders, so their
	// ascending set obeys the same rule. InsertCapped settles the
	// duplicate check, the bound and the insertion in one probe.
	capLen := int32(math.MaxInt32)
	if b.isAscForwarder(c) {
		capLen = b.thresholdAt(v)
	}
	inserted, capped := b.asc.InsertCapped(v, id, from, capLen)
	if capped {
		b.ascOver[v] = true
		b.over.Store(true)
		return
	}
	if !inserted {
		return // duplicate
	}
	if int(c) == b.m {
		if _, hit := b.desc.Get(v, id); hit {
			b.record(Detection{Node: v, Seed: id})
		}
	}
	if b.spec.DetectSkip && int(c) == b.m-1 {
		if _, hit := b.skip.Get(v, id); hit {
			b.record(Detection{Node: v, Seed: id, Skip: true})
		}
	}
}

func (b *ColorBFS) insertDesc(v graph.NodeID, c int8, id uint64, from graph.NodeID) {
	if b.descOver[v] {
		return
	}
	capLen := int32(math.MaxInt32)
	if b.isDescForwarder(c) {
		capLen = b.thresholdAt(v)
	}
	inserted, capped := b.desc.InsertCapped(v, id, from, capLen)
	if capped {
		b.descOver[v] = true
		b.over.Store(true)
		return
	}
	if !inserted {
		return // duplicate
	}
	if int(c) == b.m {
		if _, hit := b.asc.Get(v, id); hit {
			b.record(Detection{Node: v, Seed: id})
		}
	}
}

func (b *ColorBFS) insertSkip(v graph.NodeID, id uint64, from graph.NodeID) {
	if !b.skip.Insert(v, id, from) {
		return
	}
	if !b.ascOver[v] {
		if _, hit := b.asc.Get(v, id); hit {
			b.record(Detection{Node: v, Seed: id, Skip: true})
		}
	}
}

// record stores a detection at its node's buffer. Node v's buffer is only
// written by v's handler invocation, so no lock is needed; the buffers are
// merged into a canonical order after the session ends.
func (b *ColorBFS) record(d Detection) {
	b.detAt[d.Node] = append(b.detAt[d.Node], d)
	b.detCount.Add(1)
}

// Detections returns the identifier collisions found by the run.
func (b *ColorBFS) Detections() []Detection { return b.detections }

// MaxCongestion returns the largest identifier set accumulated at any
// single node on either side — the congestion quantity that the paper's
// threshold τ bounds for forwarders.
func (b *ColorBFS) MaxCongestion() int {
	return max(b.asc.MaxLen(), b.desc.MaxLen())
}

// thresholdAt returns node v's forwarding threshold.
func (b *ColorBFS) thresholdAt(v graph.NodeID) int32 {
	if b.spec.ThresholdAt != nil {
		return b.spec.ThresholdAt[v]
	}
	return int32(b.spec.Threshold)
}

// MaxCongestionRange returns the congestion watermark restricted to nodes
// in [lo, hi) — the per-component split of MaxCongestion for fused
// sessions (identifier sets only grow within an invocation, so the final
// per-node lengths are the watermark).
func (b *ColorBFS) MaxCongestionRange(lo, hi graph.NodeID) int {
	return max(b.asc.MaxLenRange(lo, hi), b.desc.MaxLenRange(lo, hi))
}

// Overflowed reports whether any forwarder discarded its set.
func (b *ColorBFS) Overflowed() bool { return b.over.Load() }

// OverflowedRange reports whether any forwarder in [lo, hi) discarded its
// set (the per-component split of Overflowed).
func (b *ColorBFS) OverflowedRange(lo, hi graph.NodeID) bool {
	for v := lo; v < hi; v++ {
		if b.ascOver[v] || b.descOver[v] {
			return true
		}
	}
	return false
}

// Run executes the invocation on the engine and returns the accumulated
// report. Batch mode runs the paper's phase-synchronous schedule as one
// engine session per phase (each phase ends at quiescence, i.e. after
// max_v |queue(v)| rounds — the early exit changes no message's timing
// relative to a fixed τ-round phase, it only skips the idle tail).
// Pipelined mode runs a single session in which identifiers are forwarded
// as they arrive.
func (b *ColorBFS) Run(e *congest.Engine) (*congest.Report, error) {
	phases := uint64(1)
	if !b.spec.Pipelined {
		phases = uint64(b.tmax)
	}
	return b.RunSessions(e, e.ReserveSessions(phases))
}

// RunSessions is Run with caller-chosen engine session tags (base,
// base+1, … for the batch phases). Trial schedulers that execute many
// invocations concurrently on one engine pass explicit tags so every
// invocation's randomness — and therefore its transcript — is independent
// of scheduling.
func (b *ColorBFS) RunSessions(e *congest.Engine, base uint64) (*congest.Report, error) {
	var rep *congest.Report
	var err error
	if b.spec.Pipelined {
		rep, err = b.runPipelined(e, base)
	} else {
		rep, err = b.runBatch(e, base)
	}
	if err != nil {
		return nil, err
	}
	// Merge the per-node detection buffers and canonicalize their order:
	// sort by node, then seed, so Detections()[0] — and hence the extracted
	// witness — is the same for every worker count.
	if b.detCount.Load() > 0 {
		for v := range b.detAt {
			b.detections = append(b.detections, b.detAt[v]...)
		}
		slices.SortFunc(b.detections, func(di, dj Detection) int {
			if di.Node != dj.Node {
				return int(di.Node) - int(dj.Node)
			}
			if di.Seed != dj.Seed {
				if di.Seed < dj.Seed {
					return -1
				}
				return 1
			}
			switch {
			case di.Skip == dj.Skip:
				return 0
			case dj.Skip:
				return -1
			default:
				return 1
			}
		})
	}
	return rep, nil
}

func (b *ColorBFS) runBatch(e *congest.Engine, base uint64) (*congest.Report, error) {
	total := &congest.Report{}
	ph := &batchPhase{bfs: b}
	for phase := 1; phase <= b.tmax; phase++ {
		ph.phase = phase
		rep, err := e.RunSession(ph, base+uint64(phase-1))
		if err != nil {
			return nil, fmt.Errorf("core: color-BFS phase %d: %w", phase, err)
		}
		total.Accumulate(rep)
	}
	return total, nil
}

// batchPhase is the engine handler for a single batch phase: the phase's
// senders transmit their identifier sets one per round; receivers
// accumulate. The forwarding queues live on the ColorBFS and are reused
// across phases (a node transmits in exactly one phase, so queues drained
// by earlier phases stay inert).
type batchPhase struct {
	bfs   *ColorBFS
	phase int
}

var _ congest.Handler = (*batchPhase)(nil)

func (p *batchPhase) Init(rt *congest.Runtime) {
	b := p.bfs
	if p.phase == 1 {
		b.ensureBuckets()
		for _, v := range b.bucketSeeds {
			if b.spec.InH[v] {
				p.initSender(rt, v)
			}
		}
		return
	}
	for _, v := range b.bucketPhase[p.phase-2] {
		if b.spec.InH[v] {
			p.initSender(rt, v)
		}
	}
}

// ensureBuckets (re)builds the send-phase buckets for the current
// (L, Color) pair, skipping the walk when the cached buckets already
// reflect it: first by slice identity (the three calls of one trial
// share one coloring array — callers must not mutate a Color slice they
// re-pass to a pooled instance), then by content. Vertices are bucketed
// in ascending order, so the per-phase iteration order — and with it
// every seed's randomness draw — matches the full-graph scan it
// replaces.
func (b *ColorBFS) ensureBuckets() {
	if b.bucketL == b.spec.L && len(b.bucketSrc) == len(b.spec.Color) && len(b.bucketSrc) > 0 &&
		(&b.bucketSrc[0] == &b.spec.Color[0] || slices.Equal(b.bucketColor, b.spec.Color)) {
		b.bucketSrc = b.spec.Color
		return
	}
	b.bucketSrc = b.spec.Color
	b.bucketL = b.spec.L
	b.bucketColor = append(b.bucketColor[:0], b.spec.Color...)
	b.bucketSeeds = b.bucketSeeds[:0]
	for len(b.bucketPhase) < b.tmax-1 {
		b.bucketPhase = append(b.bucketPhase, nil)
	}
	b.bucketPhase = b.bucketPhase[:b.tmax-1]
	for i := range b.bucketPhase {
		b.bucketPhase[i] = b.bucketPhase[i][:0]
	}
	for u, c := range b.bucketColor {
		v := graph.NodeID(u)
		switch ph := b.sendPhase(c); {
		case ph == 1:
			b.bucketSeeds = append(b.bucketSeeds, v)
		case ph > 1:
			b.bucketPhase[ph-2] = append(b.bucketPhase[ph-2], v)
		}
	}
}

// initSender loads v's forwarding queue for its transmission phase and
// wakes it, unless it has nothing to transmit (inactive seed, empty or
// overflowed set).
func (p *batchPhase) initSender(rt *congest.Runtime, v graph.NodeID) {
	b := p.bfs
	switch c := b.spec.Color[v]; {
	case c == 0:
		if !b.spec.InX[v] {
			return
		}
		// Algorithm 2's randomized activation (Instruction 1).
		if b.spec.SeedProb < 1 && rt.Rand(v).Float64() >= b.spec.SeedProb {
			return
		}
		b.queue[v] = append(b.queue[v][:0], uint64(v))
	case b.isAscForwarder(c):
		if b.ascOver[v] || b.asc.Len(v) == 0 {
			return
		}
		b.fillQueueSorted(b.asc, v)
	default: // descending forwarder
		if b.descOver[v] || b.desc.Len(v) == 0 {
			return
		}
		b.fillQueueSorted(b.desc, v)
	}
	b.queueIdx[v] = 0
	rt.WakeAt(v, 0)
}

func (p *batchPhase) HandleRound(rt *congest.Runtime, u graph.NodeID, r int, inbox []congest.Message) {
	b := p.bfs
	if !b.spec.InH[u] {
		// Non-H nodes neither accept nor transmit (their queues are never
		// loaded); skipping them avoids a no-op walk of flood inboxes.
		return
	}
	c := b.spec.Color[u]
	if len(inbox) > 0 {
		b.acceptAll(u, c, inbox)
	}
	// Checking the queue before its index spares receive-only nodes (the
	// common case) the queueIdx load.
	if q := b.queue[u]; len(q) > 0 {
		if idx := int(b.queueIdx[u]); idx < len(q) {
			id := q[idx]
			b.queueIdx[u]++
			kind, payload := kindFwd, uint64(c)
			if c == 0 {
				kind, payload = kindSeed, 0
			} else if b.isDescForwarder(c) {
				payload |= dirDesc
			}
			rt.Broadcast(u, kind, id, payload)
			if int(b.queueIdx[u]) < len(q) {
				rt.WakeAt(u, r+1)
			}
		}
	}
}

// fillQueueSorted loads node v's forwarding queue with its identifier set
// in ascending order, reusing the queue's backing array.
func (b *ColorBFS) fillQueueSorted(set *idset.Store, v graph.NodeID) {
	ids := set.AppendIDs(v, b.queue[v][:0])
	slices.Sort(ids)
	b.queue[v] = ids
}

// runPipelined executes the pipelined schedule: one engine session,
// identifiers forwarded as they arrive, with the threshold acting as a
// cutoff (a forwarder that exceeds τ stops forwarding; identifiers it
// already relayed still witness well-colored paths, so one-sided
// correctness is preserved — this is ablation A1).
func (b *ColorBFS) runPipelined(e *congest.Engine, base uint64) (*congest.Report, error) {
	rep, err := e.RunSession(&pipelinedRun{bfs: b}, base)
	if err != nil {
		return nil, fmt.Errorf("core: pipelined color-BFS: %w", err)
	}
	return rep, nil
}

type pipelinedRun struct {
	bfs *ColorBFS
}

var _ congest.Handler = (*pipelinedRun)(nil)

func (p *pipelinedRun) Init(rt *congest.Runtime) {
	b := p.bfs
	b.ensureBuckets()
	for _, v := range b.bucketSeeds {
		if !b.spec.InH[v] || !b.spec.InX[v] {
			continue
		}
		if b.spec.SeedProb < 1 && rt.Rand(v).Float64() >= b.spec.SeedProb {
			continue
		}
		b.queue[v] = append(b.queue[v][:0], uint64(v))
		rt.WakeAt(v, 0)
	}
}

func (p *pipelinedRun) HandleRound(rt *congest.Runtime, u graph.NodeID, r int, inbox []congest.Message) {
	b := p.bfs
	if !b.spec.InH[u] {
		// As in the batch schedule: non-H nodes are pure bystanders.
		return
	}
	c := b.spec.Color[u]
	forwarder := b.isAscForwarder(c) || b.isDescForwarder(c)
	for _, m := range inbox {
		var before int
		if forwarder {
			before = p.setSize(u, c)
		}
		b.accept(u, c, m)
		if forwarder && p.setSize(u, c) > before && !p.overflowed(u, c) {
			b.queue[u] = append(b.queue[u], m.A())
		}
	}
	if p.overflowed(u, c) {
		b.queue[u] = b.queue[u][:0]
		b.queueIdx[u] = 0
		return
	}
	q := b.queue[u]
	if idx := int(b.queueIdx[u]); idx < len(q) {
		id := q[idx]
		b.queueIdx[u]++
		kind, payload := kindFwd, uint64(c)
		if c == 0 {
			kind, payload = kindSeed, 0
		} else if b.isDescForwarder(c) {
			payload |= dirDesc
		}
		rt.Broadcast(u, kind, id, payload)
		if int(b.queueIdx[u]) < len(q) {
			rt.WakeAt(u, r+1)
		}
	}
}

func (p *pipelinedRun) setSize(u graph.NodeID, c int8) int {
	if p.bfs.isAscForwarder(c) {
		return p.bfs.asc.Len(u)
	}
	return p.bfs.desc.Len(u)
}

func (p *pipelinedRun) overflowed(u graph.NodeID, c int8) bool {
	if p.bfs.isAscForwarder(c) {
		return p.bfs.ascOver[u]
	}
	return p.bfs.descOver[u]
}
