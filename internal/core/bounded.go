package core

import (
	"fmt"
	"math"

	"repro/internal/congest"
	"repro/internal/graph"
	"repro/internal/sched"
)

// BoundedResult reports the outcome of bounded-length cycle detection
// (F_{2k}-freeness, F_{2k} = {C_ℓ | 3 ≤ ℓ ≤ 2k}).
type BoundedResult struct {
	// Found is true when a cycle of some length ℓ ∈ [3, 2k] was detected;
	// FoundLen is that length and Witness the verified cycle.
	Found    bool
	FoundLen int
	Witness  []graph.NodeID
	Detector graph.NodeID

	Rounds        int
	Messages      int64
	Bits          int64
	MaxCongestion int
	// Overflowed reports whether any forwarder hit the threshold.
	Overflowed    bool
	IterationsRun int
	Params        Params
}

// DetectBoundedCycle decides F_{2k}-freeness: whether g contains any cycle
// of length at most 2k. It implements the classical algorithm of
// Censor-Hillel et al. [DISC'20] with the paper's Section 3.5 adaptations,
// which is the algorithm the paper quantizes:
//
//   - lengths are tested in pairs (2ℓ-1, 2ℓ) for ℓ = 2..k, each pair by a
//     single merged color-BFS (nodes colored ℓ+1 also feed nodes colored
//     ℓ-1, catching odd cycles);
//   - the light-degree bound stays n^{1/k} for every pair;
//   - W is the set of all neighbors of S (no degree-count requirement);
//   - the threshold is τ = 2np;
//   - two color-BFS calls per coloring: (G[U], U) and (G, W).
//
// One-sidedness: every detection carries a witness verified against g.
func DetectBoundedCycle(g *graph.Graph, k int, opt Options) (*BoundedResult, error) {
	eps := opt.Eps
	if eps == 0 {
		eps = 1.0 / 3
	}
	params, err := NewParams(g.NumNodes(), k, eps)
	if err != nil {
		return nil, err
	}
	if opt.POverride > 0 {
		params.P = math.Min(opt.POverride, 1)
	}
	// Section 3.5 threshold: τ = 2np.
	params.Tau = int(math.Ceil(2 * float64(params.N) * params.P))
	if opt.Threshold > 0 {
		params.Tau = opt.Threshold
	}
	if opt.MaxIterations > 0 {
		params.Iterations = opt.MaxIterations
	}

	n := g.NumNodes()
	net := congest.NewNetwork(g, opt.Seed)
	eng := congest.NewEngine(net)
	eng.Workers = opt.Workers
	eng.Shards = opt.Shards
	eng.ParallelThreshold = opt.ParallelThreshold
	eng.MaxRounds = opt.MaxRounds
	eng.Cancel = opt.Cancel
	eng.Observe = opt.Observe

	res := &BoundedResult{Params: params}
	total := &congest.Report{}

	sets := &Sets{Params: params, WAllNeighbors: true}
	rep, err := eng.Run(sets)
	if err != nil {
		return nil, fmt.Errorf("core: bounded set construction: %w", err)
	}
	sets.Finish()
	total.Accumulate(rep)

	seedProb := opt.SeedProb
	if seedProb == 0 {
		seedProb = 1
	}
	bfsThreshold := opt.BFSThreshold
	if bfsThreshold == 0 {
		bfsThreshold = params.Tau
	}

	all := make([]bool, n)
	for v := range all {
		all[v] = true
	}

	// Pairs (2ℓ-1, 2ℓ) in increasing order: correctness for pair ℓ assumes
	// no cycle of length ≤ 2(ℓ-1), which earlier pairs would have caught —
	// so the pair loop stays sequential while the iterations within a pair
	// run as independent trials on the shared scheduler. One invocation
	// pool serves every pair (the vertex count never changes).
	runner := sched.TrialRunner{Workers: opt.Parallel}
	pool := NewColorBFSPool(n)
	for ell := 2; ell <= k && !res.Found; ell++ {
		L := 2 * ell
		calls := []struct {
			name     string
			inH, inX []bool
		}{
			{"light (G[U],U)", sets.InU, sets.InU},
			{"heavy (G,W)", all, sets.InW},
		}
		trial := func(it int) (*iterOutcome, error) {
			// The color stream is tagged with ell so every (pair, iteration)
			// draws an independent fresh coloring, as the failure-probability
			// bound assumes.
			colors := IterationColors(n, L, sched.Tag(opt.Seed, 0x5bd1e995, uint64(ell)), it)
			out := &iterOutcome{}
			for ci, call := range calls {
				bfs, err := pool.Acquire(ColorBFSSpec{
					L:          L,
					Color:      colors,
					InH:        call.inH,
					InX:        call.inX,
					Threshold:  bfsThreshold,
					SeedProb:   seedProb,
					DetectSkip: true,
					Pipelined:  opt.Pipelined,
				})
				if err != nil {
					return nil, fmt.Errorf("core: bounded %s: %w", call.name, err)
				}
				rep, err := bfs.RunSessions(eng, sched.Tag(opt.Seed, 0xb09d, uint64(ell), uint64(it), uint64(ci)))
				if err != nil {
					return nil, fmt.Errorf("core: bounded %s: %w", call.name, err)
				}
				out.rep.Accumulate(rep)
				if c := bfs.MaxCongestion(); c > out.maxCong {
					out.maxCong = c
				}
				out.overflowed = out.overflowed || bfs.Overflowed()
				if len(bfs.Detections()) > 0 && !out.found {
					d := bfs.Detections()[0]
					witness, err := bfs.Witness(d)
					if err != nil {
						return nil, fmt.Errorf("core: bounded %s: %w", call.name, err)
					}
					wantLen := L
					if d.Skip {
						wantLen = L - 1
					}
					if err := graph.IsSimpleCycle(g, witness, wantLen); err != nil {
						return nil, fmt.Errorf("core: bounded %s invalid witness: %w", call.name, err)
					}
					out.found = true
					out.witness = witness
					out.detector = d.Node
					out.det = d
				}
				// Witness already extracted and verified; nothing aliases the
				// invocation's buffers past this point.
				pool.Release(bfs)
			}
			return out, nil
		}
		fold := func(it int, out *iterOutcome) bool {
			res.IterationsRun++
			total.Accumulate(&out.rep)
			if out.maxCong > res.MaxCongestion {
				res.MaxCongestion = out.maxCong
			}
			res.Overflowed = res.Overflowed || out.overflowed
			if out.found && !res.Found {
				res.Found = true
				res.FoundLen = L
				if out.det.Skip {
					res.FoundLen = L - 1
				}
				res.Witness = out.witness
				res.Detector = out.detector
			}
			return res.Found
		}
		if _, err := sched.Run(runner, params.Iterations, trial, fold); err != nil {
			return nil, err
		}
	}
	res.Rounds = total.Rounds
	res.Messages = total.Messages
	res.Bits = total.Bits
	return res, nil
}
