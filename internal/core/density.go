package core

import (
	"fmt"
	"math"
	"math/bits"
	"slices"

	"repro/internal/graph"
)

// This file implements the combinatorial core of the paper (Section 2.2.3):
// the Density Lemma (Lemma 4) together with its constructive proof — the
// OUT/IN(v,γ) sparsification (Eqs. 3–8), the Lemma 5 path realization, and
// the Lemma 6 three-path cycle construction (paths P, P′, P″; Figure 1).
//
// It is deliberately a centralized procedure: the distributed algorithm
// never runs it — Algorithm 1 only relies on the *existence* statement
// (a congested node implies a 2k-cycle through S). Materializing the
// construction lets the test suite check the dichotomy mechanically: for
// every instance, either the density bound |W₀(v)| ≤ 2^{i-1}(k-1)|S| holds
// at every node, or a verified 2k-cycle intersecting S is produced.

// Layer labels for DensityInstance.Layer.
const (
	LayerNone int8 = -2 // vertex not participating
	LayerS    int8 = -1 // vertex in S
	LayerW0   int8 = 0  // vertex in W₀ (= V₀)
	// positive values j = 1..k-1 denote V_j
)

// DensityInstance is an input to the Density Lemma: a graph together with
// the disjoint vertex sets S, W₀ = V₀, V₁, …, V_{k-1} encoded as a layer
// assignment.
type DensityInstance struct {
	G     *graph.Graph
	K     int    // the k of C_{2k}
	Layer []int8 // per-vertex label (see constants above)
}

// DensityWitness is the constructive outcome of a density violation: the
// three paths of Lemma 6 and their union, a simple 2k-cycle intersecting S.
type DensityWitness struct {
	V      graph.NodeID   // the node with IN(V,0) ≠ ∅
	LayerI int            // its layer i
	P      []graph.NodeID // alternating W₀/S path, 2(k-i) vertices
	PPrime []graph.NodeID // (w, v′₁, …, v′_{i-1}, V)
	PDbl   []graph.NodeID // (s, w″, v″₁, …, v″_{i-1}, V)
	Cycle  []graph.NodeID // the assembled 2k-cycle
}

// DensityResult reports the dichotomy.
type DensityResult struct {
	// Violation is the first (smallest layer, then smallest ID) node whose
	// W₀-reach exceeds the bound, or -1 when the density bound holds
	// everywhere.
	Violation graph.NodeID
	// ViolationLayer is the layer i of the violating node.
	ViolationLayer int
	// ReachSize is |W₀(v)| at the violating node, and Bound the value
	// 2^{i-1}(k-1)|S| it exceeds.
	ReachSize, Bound int
	// Witness is the constructed cycle (present iff Violation ≥ 0).
	Witness *DensityWitness

	// MaxReach[i] is max_{v ∈ V_i} |W₀(v)| for diagnostics.
	MaxReach []int
	SizeS    int
	SizeW0   int
}

// Validate checks the structural preconditions of Lemma 4: layers are
// within range and every W₀ vertex has at least k² neighbors in S.
func (in *DensityInstance) Validate() error {
	if in.K < 2 {
		return fmt.Errorf("core: density instance needs k ≥ 2, got %d", in.K)
	}
	n := in.G.NumNodes()
	if len(in.Layer) != n {
		return fmt.Errorf("core: layer array has %d entries for %d vertices", len(in.Layer), n)
	}
	for v, l := range in.Layer {
		if l < LayerNone || int(l) > in.K-1 {
			return fmt.Errorf("core: vertex %d has invalid layer %d", v, l)
		}
		if l == LayerW0 {
			cnt := 0
			for _, u := range in.G.Neighbors(graph.NodeID(v)) {
				if in.Layer[u] == LayerS {
					cnt++
				}
			}
			if cnt < in.K*in.K {
				return fmt.Errorf("core: W₀ vertex %d has %d S-neighbors, needs ≥ k² = %d",
					v, cnt, in.K*in.K)
			}
		}
	}
	return nil
}

// AnalyzeDensity evaluates the Density Lemma dichotomy on the instance:
// it computes the reach sets W₀(v) for every layered vertex, finds the
// first violation of the bound |W₀(v)| ≤ 2^{i-1}(k-1)|S| if any, and in
// that case materializes the Lemma 6 cycle construction. The returned
// witness cycle is verified to be a simple 2k-cycle intersecting S before
// returning (an extraction failure is reported as an error — it would
// falsify the lemma).
func AnalyzeDensity(in *DensityInstance) (*DensityResult, error) {
	if err := in.Validate(); err != nil {
		return nil, err
	}
	n := in.G.NumNodes()
	res := &DensityResult{Violation: -1, MaxReach: make([]int, in.K)}

	// Index W₀ for bitset reach computation.
	w0Index := make([]int32, n)
	var w0List []graph.NodeID
	for v := 0; v < n; v++ {
		w0Index[v] = -1
		if in.Layer[v] == LayerW0 {
			w0Index[v] = int32(len(w0List))
			w0List = append(w0List, graph.NodeID(v))
		}
		if in.Layer[v] == LayerS {
			res.SizeS++
		}
	}
	res.SizeW0 = len(w0List)
	words := (len(w0List) + 63) / 64

	// reach[v] = bitset of W₀ vertices connected to v by a layered path
	// (w, v₁, …, v_i = v) — exactly the sets W₀(v) of Lemma 4.
	reach := make([][]uint64, n)
	popcnt := func(bs []uint64) int {
		total := 0
		for _, w := range bs {
			total += popcount(w)
		}
		return total
	}
	for i := 1; i <= in.K-1; i++ {
		for v := 0; v < n; v++ {
			if int(in.Layer[v]) != i {
				continue
			}
			bs := make([]uint64, words)
			for _, u := range in.G.Neighbors(graph.NodeID(v)) {
				switch {
				case i == 1 && in.Layer[u] == LayerW0:
					bs[w0Index[u]/64] |= 1 << (uint(w0Index[u]) % 64)
				case i > 1 && int(in.Layer[u]) == i-1 && reach[u] != nil:
					for w := range bs {
						bs[w] |= reach[u][w]
					}
				}
			}
			reach[v] = bs
			size := popcnt(bs)
			if size > res.MaxReach[i] {
				res.MaxReach[i] = size
			}
			bound := densityBound(i, in.K, res.SizeS)
			if size > bound && res.Violation < 0 {
				res.Violation = graph.NodeID(v)
				res.ViolationLayer = i
				res.ReachSize = size
				res.Bound = bound
			}
		}
		if res.Violation >= 0 {
			break
		}
	}
	if res.Violation < 0 {
		return res, nil
	}

	witness, err := ExtractDensityCycle(in)
	if err != nil {
		return nil, fmt.Errorf("core: density bound violated at node %d (|W₀(v)|=%d > %d) but extraction failed: %w",
			res.Violation, res.ReachSize, res.Bound, err)
	}
	res.Witness = witness
	return res, nil
}

// densityBound is 2^{i-1}(k-1)|S|, capped to avoid overflow.
func densityBound(i, k, sizeS int) int {
	b := math.Pow(2, float64(i-1)) * float64(k-1) * float64(sizeS)
	if b > math.MaxInt32 {
		return math.MaxInt32
	}
	return int(b)
}

func popcount(x uint64) int { return bits.OnesCount64(x) }

// ---------------------------------------------------------------------------
// The OUT/IN sparsification (Eqs. 3–8) and Lemma 6 extraction.

// swEdge is an edge of E(S, W₀).
type swEdge struct {
	s, w graph.NodeID
}

// sparsifier holds the per-node OUT sets and, for the node under
// extraction, the nested IN(v,γ) levels.
type sparsifier struct {
	in    *DensityInstance
	edges []swEdge                 // all edges of E(S, W₀)
	byW   map[graph.NodeID][]int32 // incident edge ids per W₀ vertex
	out   []map[int32]struct{}     // OUT(v) per vertex (edge-id sets)
	inSet []map[int32]struct{}     // IN(v) per vertex
	// levels[v] is the chain IN(v,0) ⊆ … ⊆ IN(v,2q) (index γ → edge set),
	// kept for every processed vertex so extraction can replay it.
	levels [][][]int32
}

func newSparsifier(in *DensityInstance) *sparsifier {
	n := in.G.NumNodes()
	sp := &sparsifier{
		in:     in,
		byW:    make(map[graph.NodeID][]int32),
		out:    make([]map[int32]struct{}, n),
		inSet:  make([]map[int32]struct{}, n),
		levels: make([][][]int32, n),
	}
	for v := 0; v < n; v++ {
		if in.Layer[v] != LayerW0 {
			continue
		}
		w := graph.NodeID(v)
		for _, u := range in.G.Neighbors(w) {
			if in.Layer[u] == LayerS {
				id := int32(len(sp.edges))
				sp.edges = append(sp.edges, swEdge{s: u, w: w})
				sp.byW[w] = append(sp.byW[w], id)
			}
		}
	}
	// OUT(w) = E({w}, S) for every w ∈ W₀ (Eq. 3).
	for w, ids := range sp.byW {
		set := make(map[int32]struct{}, len(ids))
		for _, id := range ids {
			set[id] = struct{}{}
		}
		sp.out[w] = set
	}
	return sp
}

// build computes IN(v), the level chain, and OUT(v) for every vertex of
// layers 1..upto, returning the first vertex (smallest layer, then ID)
// with IN(v,0) ≠ ∅, or -1.
func (sp *sparsifier) build(upto int) graph.NodeID {
	firstHot := graph.NodeID(-1)
	for i := 1; i <= upto; i++ {
		for v := 0; v < sp.in.G.NumNodes(); v++ {
			if int(sp.in.Layer[v]) != i {
				continue
			}
			node := graph.NodeID(v)
			sp.processNode(node, i)
			if firstHot < 0 && len(sp.levels[node]) > 0 && len(sp.levels[node][0]) > 0 {
				firstHot = node
			}
		}
		if firstHot >= 0 {
			return firstHot
		}
	}
	return firstHot
}

// processNode computes IN(v) (Eq. 4), the chain IN(v,2q) ⊇ … ⊇ IN(v,0)
// (Eqs. 5–7), and OUT(v) (Eq. 8) for v in layer i.
func (sp *sparsifier) processNode(v graph.NodeID, i int) {
	inSet := make(map[int32]struct{})
	for _, u := range sp.in.G.Neighbors(v) {
		prev := int8(i - 1)
		if i == 1 {
			prev = LayerW0
		}
		if sp.in.Layer[u] != prev {
			continue
		}
		for id := range sp.out[u] {
			inSet[id] = struct{}{}
		}
	}
	sp.inSet[v] = inSet

	q := (sp.in.K - i) / 2
	out := make(map[int32]struct{})
	bound := densityBound(i, sp.in.K, 1) // 2^{i-1}(k-1); |S| factor not used here
	// Split IN(v) by the Eq. 5 degree test on S-endpoints.
	degS := sp.degreeByS(inSet)
	level2q := make([]int32, 0, len(inSet))
	for id := range inSet {
		if degS[sp.edges[id].s] > bound {
			level2q = append(level2q, id)
		} else {
			out[id] = struct{}{} // first clause of Eq. 8
		}
	}
	slices.Sort(level2q)

	levels := make([][]int32, 2*q+1)
	levels[2*q] = level2q
	cur := level2q
	for gamma := q; gamma >= 1; gamma-- {
		// Eq. 6: 2γ → 2γ-1, filter by W-degree > 2γ.
		degW := sp.degreeByW(cur)
		lvlOdd := cur[:0:0]
		for _, id := range cur {
			if degW[sp.edges[id].w] > 2*gamma {
				lvlOdd = append(lvlOdd, id)
			}
		}
		levels[2*gamma-1] = lvlOdd
		// Eq. 7: 2γ-1 → 2γ-2, filter by S-degree > 2γ-1; removed edges
		// enter OUT(v) (second clause of Eq. 8).
		degS := sp.degreeByS2(lvlOdd)
		lvlEven := lvlOdd[:0:0]
		for _, id := range lvlOdd {
			if degS[sp.edges[id].s] > 2*gamma-1 {
				lvlEven = append(lvlEven, id)
			} else {
				out[id] = struct{}{}
			}
		}
		levels[2*gamma-2] = lvlEven
		cur = lvlEven
	}
	sp.levels[v] = levels
	sp.out[v] = out
}

func (sp *sparsifier) degreeByS(set map[int32]struct{}) map[graph.NodeID]int {
	deg := make(map[graph.NodeID]int)
	for id := range set {
		deg[sp.edges[id].s]++
	}
	return deg
}

func (sp *sparsifier) degreeByS2(ids []int32) map[graph.NodeID]int {
	deg := make(map[graph.NodeID]int)
	for _, id := range ids {
		deg[sp.edges[id].s]++
	}
	return deg
}

func (sp *sparsifier) degreeByW(ids []int32) map[graph.NodeID]int {
	deg := make(map[graph.NodeID]int)
	for _, id := range ids {
		deg[sp.edges[id].w]++
	}
	return deg
}

// ExtractDensityCycle runs the sparsification over all layers and, at the
// first vertex v with IN(v,0) ≠ ∅, materializes the Lemma 6 construction:
// path P (Claim 1) inside IN(v,2q), and paths P′ and P″ (Claim 2) through
// the layers. The assembled 2k-cycle is verified before returning.
func ExtractDensityCycle(in *DensityInstance) (*DensityWitness, error) {
	sp := newSparsifier(in)
	hot := sp.build(in.K - 1)
	if hot < 0 {
		return nil, fmt.Errorf("no vertex with IN(v,0) ≠ ∅ (Lemma 7 premise holds)")
	}
	i := int(in.Layer[hot])
	w := &DensityWitness{V: hot, LayerI: i}

	p, err := sp.buildClaim1Path(hot, i)
	if err != nil {
		return nil, fmt.Errorf("claim 1 path: %w", err)
	}
	w.P = p

	// P′: realize the edge of P incident to its W₀-endpoint through the
	// layers (Lemma 5).
	wEnd, sEnd := p[0], p[len(p)-1]
	eW, err := sp.findEdge(p[0], p[1])
	if err != nil {
		return nil, err
	}
	pPrime, err := sp.lemma5Path(eW, hot, i)
	if err != nil {
		return nil, fmt.Errorf("claim 2 P′: %w", err)
	}
	w.PPrime = pPrime

	// P″: pick an edge {sEnd, w″} ∈ IN(v) avoiding P's vertices and every
	// OUT(v′_j) along P′, then realize it through the layers.
	onP := make(map[graph.NodeID]struct{}, len(p))
	for _, x := range p {
		onP[x] = struct{}{}
	}
	avoidOut := make([]map[int32]struct{}, 0, i)
	for _, vj := range pPrime[1 : len(pPrime)-1] { // the v′_j of P′
		avoidOut = append(avoidOut, sp.out[vj])
	}
	var eDbl int32 = -1
	for id := range sp.inSet[hot] {
		e := sp.edges[id]
		if e.s != sEnd {
			continue
		}
		if _, hit := onP[e.w]; hit {
			continue
		}
		blocked := false
		for _, os := range avoidOut {
			if _, in := os[id]; in {
				blocked = true
				break
			}
		}
		if !blocked && (eDbl < 0 || id < eDbl) {
			eDbl = id
		}
	}
	if eDbl < 0 {
		return nil, fmt.Errorf("claim 2: no admissible edge at S-endpoint %d", sEnd)
	}
	tail, err := sp.lemma5Path(eDbl, hot, i)
	if err != nil {
		return nil, fmt.Errorf("claim 2 P″: %w", err)
	}
	// tail = (w″, v″₁, …, v″_{i-1}, v); prepend s.
	w.PDbl = append([]graph.NodeID{sEnd}, tail...)

	// Assemble the cycle: v, v′_{i-1}, …, v′₁, w, …P interior…, s, w″,
	// v″₁, …, v″_{i-1} and close back at v.
	cycle := make([]graph.NodeID, 0, 2*in.K)
	cycle = append(cycle, hot)
	for j := len(pPrime) - 2; j >= 1; j-- {
		cycle = append(cycle, pPrime[j])
	}
	cycle = append(cycle, p...) // wEnd … sEnd
	cycle = append(cycle, tail[:len(tail)-1]...)
	_ = wEnd
	w.Cycle = cycle

	if err := graph.IsSimpleCycle(in.G, cycle, 2*in.K); err != nil {
		return nil, fmt.Errorf("assembled cycle invalid: %w", err)
	}
	hasS := false
	for _, x := range cycle {
		if in.Layer[x] == LayerS {
			hasS = true
		}
	}
	if !hasS {
		return nil, fmt.Errorf("assembled cycle avoids S")
	}
	return w, nil
}

// buildClaim1Path constructs the alternating path P of Claim 1: 2(k-i)
// vertices alternating between W₀ and S, all edges inside IN(v,2q),
// starting at a W₀ vertex and ending at an S vertex.
func (sp *sparsifier) buildClaim1Path(v graph.NodeID, i int) ([]graph.NodeID, error) {
	k := sp.in.K
	q := (k - i) / 2
	levels := sp.levels[v]

	// Adjacency views per level.
	adj := func(level []int32, x graph.NodeID) []int32 {
		var out []int32
		for _, id := range level {
			if sp.edges[id].s == x || sp.edges[id].w == x {
				out = append(out, id)
			}
		}
		return out
	}

	if len(levels[0]) == 0 {
		return nil, fmt.Errorf("IN(v,0) empty")
	}
	// Base: s1 = an S-endpoint of an edge in IN(v,0).
	s1 := sp.edges[levels[0][0]].s

	used := map[graph.NodeID]struct{}{s1: {}}
	// path as a deque: grows at both ends. front endpoint / back endpoint.
	path := []graph.NodeID{s1}
	front, back := s1, s1

	extend := func(endpoint graph.NodeID, level []int32, wantW bool) (graph.NodeID, error) {
		for _, id := range adj(level, endpoint) {
			e := sp.edges[id]
			cand := e.w
			if !wantW {
				cand = e.s
			}
			if (wantW && e.s != endpoint) || (!wantW && e.w != endpoint) {
				continue
			}
			if _, dup := used[cand]; dup {
				continue
			}
			used[cand] = struct{}{}
			return cand, nil
		}
		return -1, fmt.Errorf("no fresh extension at %d (level size %d)", endpoint, len(level))
	}

	for gamma := 0; gamma < q; gamma++ {
		// Extend both ends with fresh W₀ vertices via IN(v,2γ+1).
		wF, err := extend(front, levels[2*gamma+1], true)
		if err != nil {
			return nil, err
		}
		wB, err := extend(back, levels[2*gamma+1], true)
		if err != nil {
			return nil, err
		}
		// Then fresh S vertices via IN(v,2γ+2).
		sF, err := extend(wF, levels[2*gamma+2], false)
		if err != nil {
			return nil, err
		}
		sB, err := extend(wB, levels[2*gamma+2], false)
		if err != nil {
			return nil, err
		}
		path = append([]graph.NodeID{sF, wF}, path...)
		path = append(path, wB, sB)
		front, back = sF, sB
	}

	if (k-i)%2 == 0 {
		// P_q has 2(k-i)+1 vertices S…S; drop the front endpoint so the
		// path starts at a W₀ vertex.
		path = path[1:]
	} else {
		// P_q has 2(k-i)-1 vertices; extend the front with one more fresh
		// W₀ vertex via IN(v,2q).
		wX, err := extend(front, levels[2*q], true)
		if err != nil {
			return nil, err
		}
		path = append([]graph.NodeID{wX}, path...)
	}
	if len(path) != 2*(k-i) {
		return nil, fmt.Errorf("path has %d vertices, want %d", len(path), 2*(k-i))
	}
	if sp.in.Layer[path[0]] != LayerW0 || sp.in.Layer[path[len(path)-1]] != LayerS {
		return nil, fmt.Errorf("path endpoints mis-typed")
	}
	return path, nil
}

// findEdge locates the edge id of {w,s} (in either endpoint order) in
// E(S,W₀).
func (sp *sparsifier) findEdge(a, b graph.NodeID) (int32, error) {
	w := a
	if sp.in.Layer[a] != LayerW0 {
		w = b
	}
	for _, id := range sp.byW[w] {
		e := sp.edges[id]
		if (e.w == a && e.s == b) || (e.w == b && e.s == a) {
			return id, nil
		}
	}
	return -1, fmt.Errorf("edge {%d,%d} not in E(S,W₀)", a, b)
}

// lemma5Path realizes an edge e ∈ IN(v) as a layered path
// (w, v₁, …, v_{i-1}, v) with e ∈ OUT(v_j) for every j (Lemma 5).
func (sp *sparsifier) lemma5Path(e int32, v graph.NodeID, i int) ([]graph.NodeID, error) {
	w := sp.edges[e].w
	if i == 1 {
		if !sp.in.G.HasEdge(w, v) {
			return nil, fmt.Errorf("layer-1 vertex %d not adjacent to W₀ endpoint %d", v, w)
		}
		return []graph.NodeID{w, v}, nil
	}
	for _, u := range sp.in.G.Neighbors(v) {
		if int(sp.in.Layer[u]) != i-1 {
			continue
		}
		if _, ok := sp.out[u][e]; !ok {
			continue
		}
		prefix, err := sp.lemma5Path(e, u, i-1)
		if err != nil {
			continue
		}
		return append(prefix, v), nil
	}
	return nil, fmt.Errorf("no layer-%d neighbor of %d carries edge %d in OUT", i-1, v, e)
}
