package core

import (
	"testing"

	"repro/internal/congest"
	"repro/internal/graph"
)

// perfectColoring colors a known cycle consecutively 0..L-1 and everything
// else with color L-1 (inert for seeding). Used to unit-test the color-BFS
// machinery without depending on coloring luck.
func perfectColoring(n int, cyc []graph.NodeID) []int8 {
	L := len(cyc)
	colors := make([]int8, n)
	for i := range colors {
		colors[i] = int8(L - 1)
	}
	for i, v := range cyc {
		colors[v] = int8(i)
	}
	return colors
}

func allTrue(n int) []bool {
	b := make([]bool, n)
	for i := range b {
		b[i] = true
	}
	return b
}

func runColorBFS(t *testing.T, g *graph.Graph, spec ColorBFSSpec) (*ColorBFS, *congest.Report) {
	t.Helper()
	bfs, err := NewColorBFS(g.NumNodes(), spec)
	if err != nil {
		t.Fatalf("NewColorBFS: %v", err)
	}
	net := congest.NewNetwork(g, 1)
	rep, err := bfs.Run(congest.NewEngine(net))
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	return bfs, rep
}

func TestColorBFSDetectsWellColoredEvenCycle(t *testing.T) {
	for _, L := range []int{4, 6, 8, 10} {
		for _, pipelined := range []bool{false, true} {
			g := graph.Cycle(L)
			cyc := make([]graph.NodeID, L)
			for i := range cyc {
				cyc[i] = graph.NodeID(i)
			}
			n := g.NumNodes()
			spec := ColorBFSSpec{
				L:         L,
				Color:     perfectColoring(n, cyc),
				InH:       allTrue(n),
				InX:       allTrue(n),
				Threshold: n,
				SeedProb:  1,
				Pipelined: pipelined,
			}
			bfs, rep := runColorBFS(t, g, spec)
			if len(bfs.Detections()) == 0 {
				t.Fatalf("L=%d pipelined=%v: no detection on perfectly colored C_%d", L, pipelined, L)
			}
			d := bfs.Detections()[0]
			if d.Node != graph.NodeID(L/2) {
				t.Errorf("L=%d: detector = %d, want %d", L, d.Node, L/2)
			}
			w, err := bfs.Witness(d)
			if err != nil {
				t.Fatalf("L=%d: witness: %v", L, err)
			}
			if err := graph.IsSimpleCycle(g, w, L); err != nil {
				t.Fatalf("L=%d: invalid witness %v: %v", L, w, err)
			}
			if rep.Rounds == 0 {
				t.Errorf("L=%d: zero rounds", L)
			}
		}
	}
}

func TestColorBFSDetectsWellColoredOddCycle(t *testing.T) {
	for _, L := range []int{3, 5, 7, 9} {
		g := graph.Cycle(L)
		cyc := make([]graph.NodeID, L)
		for i := range cyc {
			cyc[i] = graph.NodeID(i)
		}
		n := g.NumNodes()
		spec := ColorBFSSpec{
			L:         L,
			Color:     perfectColoring(n, cyc),
			InH:       allTrue(n),
			InX:       allTrue(n),
			Threshold: n,
			SeedProb:  1,
		}
		bfs, _ := runColorBFS(t, g, spec)
		if len(bfs.Detections()) == 0 {
			t.Fatalf("L=%d: no detection on perfectly colored C_%d", L, L)
		}
		w, err := bfs.Witness(bfs.Detections()[0])
		if err != nil {
			t.Fatalf("L=%d: witness: %v", L, err)
		}
		if err := graph.IsSimpleCycle(g, w, L); err != nil {
			t.Fatalf("L=%d: invalid witness %v: %v", L, w, err)
		}
	}
}

// One-sidedness at the subroutine level: on a tree (no cycles at all), no
// coloring can make color-BFS detect anything.
func TestColorBFSNeverDetectsOnTree(t *testing.T) {
	rng := graph.NewRand(3)
	g := graph.Tree(120, rng)
	n := g.NumNodes()
	for trial := 0; trial < 40; trial++ {
		colors := make([]int8, n)
		for v := range colors {
			colors[v] = int8(rng.IntN(6))
		}
		spec := ColorBFSSpec{
			L:         6,
			Color:     colors,
			InH:       allTrue(n),
			InX:       allTrue(n),
			Threshold: n,
			SeedProb:  1,
		}
		bfs, _ := runColorBFS(t, g, spec)
		if len(bfs.Detections()) != 0 {
			t.Fatalf("trial %d: detection on a tree", trial)
		}
	}
}

// The threshold must silence congested forwarders: a star-of-seeds feeding
// one forwarder exceeds τ and the exploration dies there.
func TestColorBFSThresholdSilencesOverflow(t *testing.T) {
	// Construction: seeds s_1..s_10 all adjacent to forwarder f (color 1),
	// f adjacent to detector d (color 2), d adjacent to x (color 3), x
	// adjacent back to s_1 (color 0) — a C_4 through s_1, f(1), d(2), x(3).
	b := graph.NewBuilder(13)
	f, d, x := graph.NodeID(10), graph.NodeID(11), graph.NodeID(12)
	for s := graph.NodeID(0); s < 10; s++ {
		b.AddEdge(s, f)
	}
	b.AddEdge(f, d)
	b.AddEdge(d, x)
	b.AddEdge(x, 0)
	g := b.Build()
	n := g.NumNodes()
	colors := make([]int8, n) // all seeds color 0
	colors[f], colors[d], colors[x] = 1, 2, 3

	spec := ColorBFSSpec{
		L:         4,
		Color:     colors,
		InH:       allTrue(n),
		InX:       allTrue(n),
		Threshold: n,
		SeedProb:  1,
	}
	bfs, _ := runColorBFS(t, g, spec)
	if len(bfs.Detections()) == 0 {
		t.Fatal("unlimited threshold: cycle not found")
	}

	// With τ = 4, f receives 10 > 4 identifiers and must discard them all.
	spec.Threshold = 4
	bfs, _ = runColorBFS(t, g, spec)
	if !bfs.Overflowed() {
		t.Fatal("threshold 4: no overflow recorded")
	}
	if len(bfs.Detections()) != 0 {
		t.Fatal("threshold 4: detection despite overflow (batch mode must discard)")
	}
}

// Batch rounds scale with the forwarded set size (congestion → rounds).
func TestColorBFSRoundsTrackCongestion(t *testing.T) {
	mkStarCycle := func(seeds int) (*graph.Graph, []int8) {
		b := graph.NewBuilder(seeds + 3)
		f, d, x := graph.NodeID(seeds), graph.NodeID(seeds+1), graph.NodeID(seeds+2)
		for s := graph.NodeID(0); s < graph.NodeID(seeds); s++ {
			b.AddEdge(s, f)
		}
		b.AddEdge(f, d)
		b.AddEdge(d, x)
		b.AddEdge(x, 0)
		g := b.Build()
		colors := make([]int8, g.NumNodes())
		colors[f], colors[d], colors[x] = 1, 2, 3
		return g, colors
	}
	rounds := func(seeds int) int {
		g, colors := mkStarCycle(seeds)
		spec := ColorBFSSpec{
			L: 4, Color: colors, InH: allTrue(g.NumNodes()),
			InX: allTrue(g.NumNodes()), Threshold: g.NumNodes(), SeedProb: 1,
		}
		_, rep := runColorBFS(t, g, spec)
		return rep.Rounds
	}
	small, large := rounds(5), rounds(50)
	if large < small+40 {
		t.Fatalf("rounds small=%d large=%d: batch rounds do not track congestion", small, large)
	}
}

// The merged mode must find odd cycles C_{L-1}.
func TestColorBFSSkipModeFindsOddCycle(t *testing.T) {
	// C_5 = (0,1,2,3,4) colored 0,1,2,4,... wait: the merged mode colors
	// with L=6: ascending 0,1,2 then skip from color 4 to color 2's
	// predecessor. Build the coloring the detection needs: cycle
	// (u0,u1,u2,s4,u5) with colors 0,1,2,4,5: path 0→1→2 (ascending, ends
	// at color 2 = m-1), path 0→5→4 descending, and the skip edge 4→2.
	g := graph.Cycle(5)
	n := g.NumNodes()
	colors := []int8{0, 1, 2, 4, 5}
	spec := ColorBFSSpec{
		L:          6,
		Color:      colors,
		InH:        allTrue(n),
		InX:        allTrue(n),
		Threshold:  n,
		SeedProb:   1,
		DetectSkip: true,
	}
	bfs, _ := runColorBFS(t, g, spec)
	var skipDet *Detection
	for i := range bfs.Detections() {
		if bfs.Detections()[i].Skip {
			skipDet = &bfs.Detections()[i]
		}
	}
	if skipDet == nil {
		t.Fatal("no skip detection on well-colored C_5")
	}
	w, err := bfs.Witness(*skipDet)
	if err != nil {
		t.Fatalf("witness: %v", err)
	}
	if err := graph.IsSimpleCycle(g, w, 5); err != nil {
		t.Fatalf("invalid C_5 witness %v: %v", w, err)
	}
}

// Seeds outside X must not launch explorations.
func TestColorBFSRespectsSeedSet(t *testing.T) {
	g := graph.Cycle(6)
	n := g.NumNodes()
	cyc := []graph.NodeID{0, 1, 2, 3, 4, 5}
	inX := make([]bool, n) // empty X
	spec := ColorBFSSpec{
		L: 6, Color: perfectColoring(n, cyc), InH: allTrue(n),
		InX: inX, Threshold: n, SeedProb: 1,
	}
	bfs, rep := runColorBFS(t, g, spec)
	if len(bfs.Detections()) != 0 {
		t.Fatal("detection with empty seed set")
	}
	if rep.Messages != 0 {
		t.Fatalf("messages = %d with empty seed set", rep.Messages)
	}
}

// Exploration must stay inside H.
func TestColorBFSRespectsSubgraph(t *testing.T) {
	g := graph.Cycle(6)
	n := g.NumNodes()
	cyc := []graph.NodeID{0, 1, 2, 3, 4, 5}
	inH := allTrue(n)
	inH[4] = false // break the descending path 0→5→4→3
	spec := ColorBFSSpec{
		L: 6, Color: perfectColoring(n, cyc), InH: inH,
		InX: allTrue(n), Threshold: n, SeedProb: 1,
	}
	bfs, _ := runColorBFS(t, g, spec)
	if len(bfs.Detections()) != 0 {
		t.Fatal("detection escaped the induced subgraph H")
	}
}

// Algorithm 2's activation: with SeedProb ~ 0 nothing is sent.
func TestColorBFSSeedProbGates(t *testing.T) {
	g := graph.Cycle(6)
	n := g.NumNodes()
	cyc := []graph.NodeID{0, 1, 2, 3, 4, 5}
	spec := ColorBFSSpec{
		L: 6, Color: perfectColoring(n, cyc), InH: allTrue(n),
		InX: allTrue(n), Threshold: n, SeedProb: 1e-12,
	}
	bfs, rep := runColorBFS(t, g, spec)
	if len(bfs.Detections()) != 0 || rep.Messages != 0 {
		t.Fatalf("SeedProb≈0 still produced %d messages", rep.Messages)
	}
}

func TestNewColorBFSValidation(t *testing.T) {
	n := 4
	ok := ColorBFSSpec{
		L: 4, Color: make([]int8, n), InH: make([]bool, n),
		InX: make([]bool, n), Threshold: 1, SeedProb: 1,
	}
	if _, err := NewColorBFS(n, ok); err != nil {
		t.Fatalf("valid spec rejected: %v", err)
	}
	for name, mut := range map[string]func(*ColorBFSSpec){
		"short L":        func(s *ColorBFSSpec) { s.L = 2 },
		"bad arrays":     func(s *ColorBFSSpec) { s.Color = make([]int8, n-1) },
		"zero threshold": func(s *ColorBFSSpec) { s.Threshold = 0 },
		"bad prob":       func(s *ColorBFSSpec) { s.SeedProb = 1.5 },
		"skip odd L":     func(s *ColorBFSSpec) { s.L = 5; s.DetectSkip = true },
	} {
		bad := ok
		mut(&bad)
		if _, err := NewColorBFS(n, bad); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

// Batch and pipelined schedules agree on what they find for a fixed
// coloring with no congestion pressure.
func TestBatchPipelinedAgree(t *testing.T) {
	rng := graph.NewRand(12)
	for trial := 0; trial < 10; trial++ {
		g, cyc, err := graph.PlantedLight(60, 6, 1.5, rng)
		if err != nil {
			t.Fatal(err)
		}
		n := g.NumNodes()
		colors := perfectColoring(n, cyc)
		for _, pipelined := range []bool{false, true} {
			spec := ColorBFSSpec{
				L: 6, Color: colors, InH: allTrue(n), InX: allTrue(n),
				Threshold: n, SeedProb: 1, Pipelined: pipelined,
			}
			bfs, _ := runColorBFS(t, g, spec)
			if len(bfs.Detections()) == 0 {
				t.Fatalf("trial %d pipelined=%v: planted cycle missed", trial, pipelined)
			}
		}
	}
}
