package core

import (
	"repro/internal/congest"
	"repro/internal/graph"
)

const kindSelect uint8 = 12 // "I am in S" announcement

// Sets constructs the three vertex sets of Algorithm 1 distributively
// (Instructions 1–5):
//
//	U = { u : deg(u) ≤ n^{1/k} }             (local computation)
//	S = { u : Bernoulli(p) }                 (local randomness)
//	W = { u ∉ S : |N(u) ∩ S| ≥ k² }          (one communication round:
//	                                          S-members announce themselves)
type Sets struct {
	Params Params

	// WAllNeighbors switches the W rule to the Section 3.5 variant
	// (bounded-length detection): W = all neighbors of S, with no
	// degree-count requirement.
	WAllNeighbors bool

	// PAt and LightMaxAt, when non-nil, override the n-dependent
	// parameters p and n^{1/k} per node. Fused disjoint-union sessions set
	// them so every component's membership draws use the component's own
	// parameterization (k, and hence the k² in the W rule, is shared by a
	// batch). Params still supplies K.
	PAt        []float64
	LightMaxAt []int32

	InU, InS, InW []bool
	SCount        []int32 // |N(u) ∩ S|

	SizeU, SizeS, SizeW int
}

var _ congest.Handler = (*Sets)(nil)

// Init implements congest.Handler.
func (s *Sets) Init(rt *congest.Runtime) {
	n := rt.N()
	s.InU = make([]bool, n)
	s.InS = make([]bool, n)
	s.InW = make([]bool, n)
	s.SCount = make([]int32, n)
	for u := 0; u < n; u++ {
		rt.WakeAt(graph.NodeID(u), 0)
	}
}

// HandleRound implements congest.Handler.
func (s *Sets) HandleRound(rt *congest.Runtime, u graph.NodeID, r int, inbox []congest.Message) {
	switch r {
	case 0:
		lightMax, p := s.Params.LightMax, s.Params.P
		if s.LightMaxAt != nil {
			lightMax, p = int(s.LightMaxAt[u]), s.PAt[u]
		}
		s.InU[u] = rt.Degree(u) <= lightMax
		s.InS[u] = rt.Rand(u).Float64() < p
		if s.InS[u] {
			rt.Broadcast(u, kindSelect, 0, 0)
		}
	default:
		for _, m := range inbox {
			if m.Kind() == kindSelect {
				s.SCount[u]++
			}
		}
		if s.WAllNeighbors {
			s.InW[u] = s.SCount[u] >= 1
		} else {
			s.InW[u] = !s.InS[u] && int(s.SCount[u]) >= s.Params.K*s.Params.K
		}
	}
}

// Finish tallies set sizes; call after the session completes.
func (s *Sets) Finish() {
	s.SizeU, s.SizeS, s.SizeW = 0, 0, 0
	for i := range s.InU {
		if s.InU[i] {
			s.SizeU++
		}
		if s.InS[i] {
			s.SizeS++
		}
		if s.InW[i] {
			s.SizeW++
		}
	}
}
