package incr

import (
	"strings"
	"testing"

	"repro/internal/deterministic"
	"repro/internal/graph"
)

// pathGraph returns a simple path v0-v1-…-v(len-1) over the given IDs.
func pathEdges(ids ...graph.NodeID) [][2]graph.NodeID {
	edges := make([][2]graph.NodeID, 0, len(ids)-1)
	for i := 1; i < len(ids); i++ {
		edges = append(edges, [2]graph.NodeID{ids[i-1], ids[i]})
	}
	return edges
}

// TestRecheckVerdictFlip drives the planted-C_2k insertion tables: the
// parent holds an open 2k-path (C_2k-free, NotFound), and adding the
// closing edge must flip the verdict to Found through the localized
// recheck, with a witness verified against the full child graph. The far
// component keeps the ball a strict subset of the graph so the recheck
// genuinely localizes rather than falling back.
func TestRecheckVerdictFlip(t *testing.T) {
	cases := []struct {
		name    string
		k       int
		openIDs []graph.NodeID // the 2k-path missing its closing edge
	}{
		{"c4/k=2", 2, []graph.NodeID{0, 1, 2, 3}},
		{"c6/k=3", 3, []graph.NodeID{0, 1, 2, 3, 4, 5}},
		{"c8/k=4", 4, []graph.NodeID{2, 9, 4, 11, 0, 7, 3, 8}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			const n = 64
			edges := pathEdges(tc.openIDs...)
			// A far component (vertices 20..63 as a path) that the ball
			// around the closing edge can never reach.
			for v := graph.NodeID(20); v < n-1; v++ {
				edges = append(edges, [2]graph.NodeID{v, v + 1})
			}
			parent := graph.FromEdges(n, edges)
			if pres, err := deterministic.Detect(parent, tc.k, deterministic.Options{}); err != nil || pres.Found {
				t.Fatalf("parent should be C_%d-free: res=%+v err=%v", 2*tc.k, pres, err)
			}
			closing := [2]graph.NodeID{tc.openIDs[len(tc.openIDs)-1], tc.openIDs[0]}
			child, err := parent.WithEdges([][2]graph.NodeID{closing})
			if err != nil {
				t.Fatalf("WithEdges: %v", err)
			}
			res, err := Recheck(child, [][2]graph.NodeID{closing}, tc.k, Options{})
			if err != nil {
				t.Fatalf("Recheck: %v", err)
			}
			if res.Fallback {
				t.Fatalf("unexpected fallback: %s", res.Reason)
			}
			if res.BallNodes >= n {
				t.Fatalf("ball covered %d of %d vertices — nothing was localized", res.BallNodes, n)
			}
			if !res.Res.Found {
				t.Fatalf("closing edge must flip NotFound→Found, got %+v", res.Res)
			}
			if err := graph.IsSimpleCycle(child, res.Res.Witness, 2*tc.k); err != nil {
				t.Fatalf("warm witness invalid in child graph: %v", err)
			}
		})
	}
}

// TestRecheckFarEdgeStaysNotFound is the adversarial complement: an added
// edge far from any possible short cycle keeps the verdict NotFound, via
// the localized path (no fallback) — the exact case the warm start exists
// to make cheap.
func TestRecheckFarEdgeStaysNotFound(t *testing.T) {
	const n = 80
	var edges [][2]graph.NodeID
	for v := graph.NodeID(0); v < 40; v++ {
		edges = append(edges, [2]graph.NodeID{v, v + 1})
	}
	g0 := graph.FromEdges(n, edges)
	added := [2]graph.NodeID{60, 61} // isolated pair: a lone edge, no cycle near it
	g, err := g0.WithEdges([][2]graph.NodeID{added})
	if err != nil {
		t.Fatalf("WithEdges: %v", err)
	}
	res, err := Recheck(g, [][2]graph.NodeID{added}, 2, Options{})
	if err != nil {
		t.Fatalf("Recheck: %v", err)
	}
	if res.Fallback {
		t.Fatalf("unexpected fallback: %s", res.Reason)
	}
	if res.Res.Found {
		t.Fatalf("no C4 exists, got Found with witness %v", res.Res.Witness)
	}
	if res.BallNodes == 0 || res.BallNodes >= n {
		t.Fatalf("ball size %d out of expected (0,%d)", res.BallNodes, n)
	}
}

// TestRecheckFallbackBallCoversGraph pins the first fallback reason: on a
// small-diameter graph the radius-2k ball reaches everything and the
// localized run would just be the full run with extra steps.
func TestRecheckFallbackBallCoversGraph(t *testing.T) {
	// A star: every vertex within 2 hops of everything.
	var edges [][2]graph.NodeID
	for v := graph.NodeID(1); v < 6; v++ {
		edges = append(edges, [2]graph.NodeID{0, v})
	}
	g0 := graph.FromEdges(6, edges)
	g, err := g0.WithEdges([][2]graph.NodeID{{1, 2}})
	if err != nil {
		t.Fatalf("WithEdges: %v", err)
	}
	res, err := Recheck(g, [][2]graph.NodeID{{1, 2}}, 2, Options{})
	if err != nil {
		t.Fatalf("Recheck: %v", err)
	}
	if !res.Fallback {
		t.Fatalf("want fallback (ball covers graph), got %+v", res)
	}
	if !strings.Contains(res.Reason, "ball covers") {
		t.Fatalf("unexpected fallback reason: %q", res.Reason)
	}
}

// TestRecheckFallbackOnOverflow pins the second fallback reason: when the
// localized session overflows its identifier threshold without finding a
// cycle, the NotFound is not trustworthy and Recheck must punt rather
// than warm the cache with it.
func TestRecheckFallbackOnOverflow(t *testing.T) {
	const n = 40
	var edges [][2]graph.NodeID
	for v := graph.NodeID(1); v < 8; v++ {
		edges = append(edges, [2]graph.NodeID{0, v}) // a C4-free star…
	}
	for v := graph.NodeID(20); v < n-1; v++ {
		edges = append(edges, [2]graph.NodeID{v, v + 1}) // …plus a far path
	}
	g0 := graph.FromEdges(n, edges)
	added := [2]graph.NodeID{1, 2}
	g, err := g0.WithEdges([][2]graph.NodeID{added}) // closes a triangle, still C4-free
	if err != nil {
		t.Fatalf("WithEdges: %v", err)
	}
	res, err := Recheck(g, [][2]graph.NodeID{added}, 2, Options{Threshold: 1})
	if err != nil {
		t.Fatalf("Recheck: %v", err)
	}
	if !res.Fallback {
		t.Fatalf("want fallback (overflow at τ=1), got %+v", res)
	}
	if !strings.Contains(res.Reason, "overflowed") {
		t.Fatalf("unexpected fallback reason: %q", res.Reason)
	}
}

// TestRecheckEmptyAdditions: a no-op mutation needs no detection at all;
// the parent verdict carries over and Recheck reports a zero-cost result.
func TestRecheckEmptyAdditions(t *testing.T) {
	g := graph.FromEdges(10, pathEdges(0, 1, 2, 3))
	res, err := Recheck(g, nil, 2, Options{})
	if err != nil {
		t.Fatalf("Recheck: %v", err)
	}
	if res.Fallback || res.Res == nil || res.Res.Found {
		t.Fatalf("empty additions: want clean NotFound carry-over, got %+v", res)
	}
}

// TestRecheckInputValidation pins the error cases: k out of range and
// added endpoints outside the child graph.
func TestRecheckInputValidation(t *testing.T) {
	g := graph.FromEdges(4, pathEdges(0, 1, 2, 3))
	if _, err := Recheck(g, nil, 1, Options{}); err == nil {
		t.Error("k=1: want error")
	}
	if _, err := Recheck(g, [][2]graph.NodeID{{0, 9}}, 2, Options{}); err == nil {
		t.Error("endpoint 9 out of range: want error")
	}
	if _, err := Recheck(g, [][2]graph.NodeID{{-1, 2}}, 2, Options{}); err == nil {
		t.Error("negative endpoint: want error")
	}
}
