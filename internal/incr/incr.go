package incr

import (
	"fmt"
	"time"

	"repro/internal/congest"
	"repro/internal/deterministic"
	"repro/internal/graph"
)

// Options tunes a warm-start recheck. The zero value uses the child
// graph's default threshold and a serial engine, exactly like
// deterministic.Options.
type Options struct {
	// Threshold overrides τ for the localized run (0 = the FULL child
	// graph's DefaultThreshold, NOT the ball's own — the ball run must be
	// at least as permissive as the full run it stands in for).
	Threshold int
	// Workers, Shards and ParallelThreshold configure the engine exactly
	// as in deterministic.Options.
	Workers           int
	Shards            int
	ParallelThreshold int
	// Cancel aborts the localized session at the next round boundary.
	Cancel *congest.CancelFlag
	// Observe receives each completed engine session's round count and
	// wall clock (see congest.Engine.Observe); purely passive.
	Observe func(rounds int, wall time.Duration)
}

// Result reports one warm-start recheck.
type Result struct {
	// Res is the localized detection result with Witness and Detector
	// remapped to the child graph's vertex IDs. Cost fields (Rounds,
	// Messages, Bits, …) describe the localized session, not a full run.
	// Nil when Fallback is true.
	Res *deterministic.Result
	// BallNodes is the size of the radius-2k ball the recheck ran on.
	BallNodes int
	// Fallback reports that the localization precondition failed and the
	// caller must run full-graph detection instead; Reason says why.
	Fallback bool
	Reason   string
}

// Radius is the localization radius for half-length k: every vertex of a
// 2k-cycle through an added edge {u,v} is within distance k of u or v
// along the cycle itself, so radius 2k around the endpoints covers any
// such cycle with slack for the detector's walk tables.
func Radius(k int) int { return 2 * k }

// ball marks every vertex within the given radius of any seed and
// returns the mark array plus the count of marked vertices.
func ball(g *graph.Graph, seeds []graph.NodeID, radius int) ([]bool, int) {
	n := g.NumNodes()
	keep := make([]bool, n)
	depth := make([]int32, n)
	queue := make([]graph.NodeID, 0, len(seeds))
	count := 0
	for _, s := range seeds {
		if !keep[s] {
			keep[s] = true
			count++
			queue = append(queue, s)
		}
	}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		if int(depth[u]) >= radius {
			continue
		}
		for _, w := range g.Neighbors(u) {
			if !keep[w] {
				keep[w] = true
				count++
				depth[w] = depth[u] + 1
				queue = append(queue, w)
			}
		}
	}
	return keep, count
}

// Recheck runs the deterministic detector restricted to the neighborhood
// the added edges can affect. It presumes the caller holds a NotFound
// verdict for the parent graph (the child minus the added edges): under
// that premise any C_2k in the child passes through an added edge and
// therefore lies inside the radius-2k ball around the added endpoints, so
// a localized run decides the child. Fallback (Result.Fallback) is
// reported — never a guessed verdict — when the ball covers the whole
// graph or the localized session overflows its identifier threshold.
//
// On Found, the witness is remapped to g's vertex IDs and re-verified as
// a simple 2k-cycle in the full child graph before being returned: a
// warm-start Found is exactly as trustworthy as a cold one.
func Recheck(g *graph.Graph, added [][2]graph.NodeID, k int, opt Options) (*Result, error) {
	if k < 2 || k > deterministic.MaxK {
		return nil, fmt.Errorf("incr: k = %d out of range [2,%d]", k, deterministic.MaxK)
	}
	n := g.NumNodes()
	seeds := make([]graph.NodeID, 0, 2*len(added))
	for _, e := range added {
		for _, v := range e {
			if int(v) < 0 || int(v) >= n {
				return nil, fmt.Errorf("incr: added endpoint %d out of range [0,%d)", v, n)
			}
			seeds = append(seeds, v)
		}
	}
	if len(seeds) == 0 {
		// Nothing was added: the parent verdict IS the child verdict.
		return &Result{Res: &deterministic.Result{Threshold: tau(n, k, opt)}}, nil
	}
	keep, count := ball(g, seeds, Radius(k))
	if count >= n {
		return &Result{BallNodes: count, Fallback: true,
			Reason: fmt.Sprintf("ball covers all %d vertices", n)}, nil
	}
	sub, orig := g.InducedSubgraph(keep)
	res, err := deterministic.Detect(sub, k, deterministic.Options{
		Threshold:         tau(n, k, opt),
		Workers:           opt.Workers,
		Shards:            opt.Shards,
		ParallelThreshold: opt.ParallelThreshold,
		Cancel:            opt.Cancel,
		Observe:           opt.Observe,
	})
	if err != nil {
		return nil, fmt.Errorf("incr: localized detect: %w", err)
	}
	if res.Overflowed && !res.Found {
		return &Result{BallNodes: count, Fallback: true,
			Reason: fmt.Sprintf("localized session overflowed τ=%d", res.Threshold)}, nil
	}
	if res.Found {
		witness := make([]graph.NodeID, len(res.Witness))
		for i, v := range res.Witness {
			witness[i] = orig[v]
		}
		if err := graph.IsSimpleCycle(g, witness, 2*k); err != nil {
			// Cannot happen — induced-subgraph edges are child edges — but
			// a warm Found must never ship an unverified witness.
			return nil, fmt.Errorf("incr: remapped witness invalid: %w", err)
		}
		res.Witness = witness
		res.Detector = orig[res.Detector]
	}
	return &Result{Res: res, BallNodes: count}, nil
}

// tau is the threshold the localized run uses: the caller's override, or
// the full child graph's default — deliberately not the (smaller) ball
// default, so localization never makes the detector more conservative
// than the full run it replaces.
func tau(n, k int, opt Options) int {
	if opt.Threshold > 0 {
		return opt.Threshold
	}
	return deterministic.DefaultThreshold(n, k)
}
