// Package incr implements warm-start re-detection after corpus mutation:
// given that a parent graph was already judged C_2k-free (a cached
// NotFound verdict), re-checking the mutated child only requires running
// the deterministic detector on the neighborhood the new edges can reach.
//
// The localization rule follows the walk-table structure of the detector
// (arXiv:2412.11195): the parent verdict certifies every cycle candidate
// not involving an added edge, and a 2k-cycle through an added edge
// {u,v} lies entirely within walk-table radius 2k of u or v. Recheck
// therefore runs the detector on the subgraph induced by the radius-2k
// ball around the added endpoints — typically a small fraction of the
// graph — and remaps any witness back to the child's vertex IDs,
// verifying it against the full child graph before reporting it.
//
// Localization has a precondition, and Recheck falls back (reporting
// Fallback plus the reason) instead of guessing whenever it fails: the
// ball may cover the whole graph (nothing to localize), or the localized
// session may overflow its identifier threshold (an overflow discards
// walk sets, so a clean NotFound cannot be distinguished from a masked
// collision). Callers run the ordinary full-graph detection in that case.
// The recheck inherits the detector's one-sided contract either way:
// Found is always backed by a verified witness; NotFound can miss.
package incr
