package idset

import (
	"math/rand/v2"
	"runtime/debug"
	"slices"
	"testing"
)

func TestInsertGetBasics(t *testing.T) {
	s := New(4)
	if got := s.Len(0); got != 0 {
		t.Fatalf("empty Len = %d", got)
	}
	if !s.Insert(0, 42, 7) {
		t.Fatal("first insert reported duplicate")
	}
	if s.Insert(0, 42, 9) {
		t.Fatal("duplicate insert reported inserted")
	}
	if v, ok := s.Get(0, 42); !ok || v != 7 {
		t.Fatalf("Get = (%d,%v), want (7,true): insert must be first-writer-wins", v, ok)
	}
	if _, ok := s.Get(1, 42); ok {
		t.Fatal("id leaked into another node's set")
	}
	if _, ok := s.Get(0, 43); ok {
		t.Fatal("Get hit for absent id")
	}
	if s.Len(0) != 1 || s.Len(1) != 0 {
		t.Fatalf("lens = %d,%d", s.Len(0), s.Len(1))
	}
}

func TestPutOverwrites(t *testing.T) {
	s := New(1)
	if _, existed := s.Put(0, 5, 1); existed {
		t.Fatal("Put on empty set reported existing")
	}
	prev, existed := s.Put(0, 5, 2)
	if !existed || prev != 1 {
		t.Fatalf("Put = (%d,%v), want (1,true)", prev, existed)
	}
	if v, _ := s.Get(0, 5); v != 2 {
		t.Fatalf("value after Put = %d, want 2", v)
	}
	if s.Len(0) != 1 {
		t.Fatalf("Len = %d after overwrite", s.Len(0))
	}
}

func TestResetIsolatesGenerations(t *testing.T) {
	s := New(3)
	for id := uint64(0); id < 100; id++ {
		s.Insert(1, id, int32(id))
	}
	s.Reset(3)
	if s.Len(1) != 0 || s.MaxLen() != 0 {
		t.Fatalf("Len=%d MaxLen=%d after Reset", s.Len(1), s.MaxLen())
	}
	if _, ok := s.Get(1, 4); ok {
		t.Fatal("stale entry visible after Reset")
	}
	if ids := s.AppendIDs(1, nil); len(ids) != 0 {
		t.Fatalf("AppendIDs returned %d stale ids", len(ids))
	}
	// New-generation inserts must not resurrect stale slots.
	s.Insert(1, 4, 99)
	if v, ok := s.Get(1, 4); !ok || v != 99 {
		t.Fatalf("post-reset Get = (%d,%v)", v, ok)
	}
	if s.Len(1) != 1 {
		t.Fatalf("post-reset Len = %d", s.Len(1))
	}
}

func TestResetResizes(t *testing.T) {
	s := New(2)
	s.Insert(1, 9, 9)
	s.Reset(5)
	if s.NumNodes() != 5 {
		t.Fatalf("NumNodes = %d", s.NumNodes())
	}
	s.Insert(4, 1, 1)
	if s.Len(4) != 1 {
		t.Fatal("insert after resize failed")
	}
}

// Randomized cross-check against Go maps, including growth well past the
// initial table size and interleaved generations.
func TestRandomizedAgainstMap(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 2))
	const n = 16
	s := New(n)
	for gen := 0; gen < 5; gen++ {
		ref := make([]map[uint64]int32, n)
		for v := range ref {
			ref[v] = make(map[uint64]int32)
		}
		ops := 20000
		for i := 0; i < ops; i++ {
			v := NodeID(rng.IntN(n))
			id := uint64(rng.IntN(500))
			val := int32(rng.IntN(1000))
			switch rng.IntN(3) {
			case 0:
				inserted := s.Insert(v, id, val)
				if _, dup := ref[v][id]; dup == inserted {
					t.Fatalf("gen %d op %d: Insert inserted=%v, map dup=%v", gen, i, inserted, dup)
				}
				if !inserted {
					break
				}
				ref[v][id] = val
			case 1:
				prev, existed := s.Put(v, id, val)
				want, wantExisted := ref[v][id]
				if existed != wantExisted || (existed && prev != want) {
					t.Fatalf("gen %d op %d: Put = (%d,%v), want (%d,%v)", gen, i, prev, existed, want, wantExisted)
				}
				ref[v][id] = val
			default:
				got, ok := s.Get(v, id)
				want, wantOK := ref[v][id]
				if ok != wantOK || (ok && got != want) {
					t.Fatalf("gen %d op %d: Get = (%d,%v), want (%d,%v)", gen, i, got, ok, want, wantOK)
				}
			}
		}
		maxLen := 0
		for v := 0; v < n; v++ {
			if s.Len(NodeID(v)) != len(ref[v]) {
				t.Fatalf("gen %d: Len(%d) = %d, want %d", gen, v, s.Len(NodeID(v)), len(ref[v]))
			}
			if len(ref[v]) > maxLen {
				maxLen = len(ref[v])
			}
			ids := s.AppendIDs(NodeID(v), nil)
			slices.Sort(ids)
			var want []uint64
			for id := range ref[v] {
				want = append(want, id)
			}
			slices.Sort(want)
			if !slices.Equal(ids, want) {
				t.Fatalf("gen %d: AppendIDs(%d) mismatch", gen, v)
			}
		}
		if s.MaxLen() != maxLen {
			t.Fatalf("gen %d: MaxLen = %d, want %d", gen, s.MaxLen(), maxLen)
		}
		s.Reset(n)
	}
}

// The pooled steady state: once tables have grown to the workload's size,
// Reset+refill cycles allocate nothing.
func TestSteadyStateAllocFree(t *testing.T) {
	defer debug.SetGCPercent(debug.SetGCPercent(-1))
	const n, perNode = 32, 100
	s := New(n)
	fill := func() {
		s.Reset(n)
		for v := NodeID(0); v < n; v++ {
			for id := uint64(0); id < perNode; id++ {
				s.Insert(v, id*2654435761, int32(id))
			}
		}
	}
	fill() // warm up table capacities
	if avg := testing.AllocsPerRun(20, fill); avg != 0 {
		t.Fatalf("steady-state Reset+fill allocates %v allocs/run, want 0", avg)
	}
}
