// Package idset provides the pooled, allocation-free identifier-set layer
// under the detector protocols: for every node of a simulated network, a
// small hash set mapping 64-bit identifiers to a 32-bit value (a parent
// pointer in color-BFS and the deterministic walk relay, a TTL in the
// k-ball baseline). It is the data structure behind the congestion that
// the paper's threshold τ bounds — MaxLen is exactly the MaxCongestion
// the detectors report.
//
// A Store holds one set per node, each backed by an open-addressing table
// whose slots are stamp-guarded by the store's generation counter:
// Reset(n) bumps the generation, which logically empties every set in O(1)
// without touching the tables. Per-node tables are retained across Reset
// calls, so a Store reused for many invocations on same-sized inputs (the
// way core.ColorBFSPool reuses ColorBFS instances) reaches a steady state
// in which insertions allocate nothing. Minimum-size tables are carved
// from one shared slab, and the congestion watermark is maintained as an
// O(1) packed atomic rather than an n-wide scan.
//
// Concurrency contract: distinct nodes' sets may be operated on
// concurrently (the CONGEST engine runs node handlers in parallel), but a
// single node's set must only be touched by one goroutine at a time, and
// Reset requires exclusive access to the whole Store. This matches the
// engine's execution model, where node u's state is only mutated from u's
// own handler invocation. Iteration order (AppendIDs) is deterministic
// for a fixed insertion history, which the detectors rely on for
// transcript determinism; callers needing a canonical order sort.
package idset
