package idset

import "sync/atomic"

// NodeID mirrors graph.NodeID; the package depends on nothing so the
// substrate layers (graph, congest, core, baseline) can all use it.
type NodeID = int32

// slot is one open-addressing table entry; it is live iff gen matches the
// store's current generation. The generation is 32-bit so a slot packs
// into 16 bytes (a Reset every microsecond would take an hour and a half
// to wrap, and sets are reused on far coarser timescales), which matters
// because the per-node minimum tables form one large slab.
type slot struct {
	id  uint64
	gen uint32
	val int32
}

const minTableSize = 4 // power of two

// Store is a per-node family of identifier sets. The zero value is not
// usable; call New.
type Store struct {
	gen    uint32
	tables [][]slot // per-node open-addressing tables
	// meta[v] packs node v's generation (high 32 bits) and live count
	// (low 32): one load answers both "is the set current?" and "how
	// big is it?", which the insert and length paths ask together.
	meta []uint64
	// maxLen is the running maximum live count, packed like a meta entry
	// (generation high, count low) so Reset invalidates it for free. It
	// is atomic because inserts for distinct nodes may race; the common
	// insert pays one relaxed load, and a CAS happens only when a set
	// strictly exceeds the watermark — at most max-congestion times per
	// generation, not per insert. MaxLen is then O(1) instead of an
	// n-wide scan per query.
	maxLen atomic.Uint64
}

func (s *Store) lenOf(v NodeID) int32 {
	m := s.meta[v]
	if uint32(m>>32) != s.gen {
		return 0
	}
	return int32(uint32(m))
}

// New returns a store with one empty set per node.
func New(n int) *Store {
	s := &Store{}
	s.Reset(n)
	return s
}

// Reset empties every set (O(1) via the generation stamp) and re-sizes the
// store to n nodes. Table capacity acquired by previous generations is
// retained, which is what makes pooled reuse allocation-free.
//
// Every node starts with a minimum-size table carved out of one shared
// slab: n separate first-touch allocations become one, and the common
// small sets (the threshold τ bounds forwarder sets) stay contiguous in
// memory. Only tables that outgrow the minimum size get individual
// backing from grow.
func (s *Store) Reset(n int) {
	s.gen++
	if n != len(s.meta) {
		s.tables = make([][]slot, n)
		s.meta = make([]uint64, n)
		slab := make([]slot, n*minTableSize)
		for v := range s.tables {
			s.tables[v] = slab[v*minTableSize : (v+1)*minTableSize : (v+1)*minTableSize]
		}
	}
}

// NumNodes returns the number of per-node sets.
func (s *Store) NumNodes() int { return len(s.meta) }

// hash is the splitmix64 finalizer: a full-avalanche mix so that the
// low bits used for table indexing depend on every bit of the identifier.
func hash(id uint64) uint64 {
	id ^= id >> 30
	id *= 0xbf58476d1ce4e5b9
	id ^= id >> 27
	id *= 0x94d049bb133111eb
	id ^= id >> 31
	return id
}

// Len returns the size of node v's set.
func (s *Store) Len(v NodeID) int { return int(s.lenOf(v)) }

// MaxLen returns the largest set size across all nodes.
func (s *Store) MaxLen() int {
	m := s.maxLen.Load()
	if uint32(m>>32) != s.gen {
		return 0
	}
	return int(uint32(m))
}

// MaxLenRange returns the largest set size among nodes in [lo, hi).
// Unlike MaxLen it is an O(hi-lo) scan of the meta slab; fused sessions
// use it to split the congestion watermark by component (sets only ever
// grow within a generation, so the final per-node length IS the node's
// historical maximum).
func (s *Store) MaxLenRange(lo, hi NodeID) int {
	best := int32(0)
	for v := lo; v < hi; v++ {
		if l := s.lenOf(v); l > best {
			best = l
		}
	}
	return int(best)
}

// Get returns the value stored for id in node v's set.
func (s *Store) Get(v NodeID, id uint64) (int32, bool) {
	if s.lenOf(v) == 0 {
		return 0, false
	}
	tbl := s.tables[v]
	mask := uint64(len(tbl) - 1)
	for i := hash(id) & mask; ; i = (i + 1) & mask {
		sl := &tbl[i]
		if sl.gen != s.gen {
			return 0, false
		}
		if sl.id == id {
			return sl.val, true
		}
	}
}

// Insert adds id → val to node v's set if id is absent and reports whether
// it inserted; an existing entry is left untouched (first-writer-wins, the
// semantics parent pointers need).
func (s *Store) Insert(v NodeID, id uint64, val int32) bool {
	_, _, inserted := s.put(v, id, val, false)
	return inserted
}

// InsertCapped is Insert with a capacity bound: when node v's set
// already holds capLen entries and id is absent, nothing is inserted and
// capped is reported. One meta load and one probe settle the duplicate
// check, the bound, and the insertion together (callers that checked
// Len before Insert paid both twice).
func (s *Store) InsertCapped(v NodeID, id uint64, val int32, capLen int32) (inserted, capped bool) {
	if s.lenOf(v) >= capLen {
		_, dup := s.Get(v, id)
		return false, !dup
	}
	_, _, inserted = s.put(v, id, val, false)
	return inserted, false
}

// Put adds or overwrites id → val in node v's set, returning the previous
// value if one existed (the upsert the k-ball TTL relaxation needs).
func (s *Store) Put(v NodeID, id uint64, val int32) (prev int32, existed bool) {
	prev, existed, _ = s.put(v, id, val, true)
	return prev, existed
}

func (s *Store) put(v NodeID, id uint64, val int32, overwrite bool) (prev int32, existed, inserted bool) {
	live := s.lenOf(v)
	tbl := s.tables[v]
	// Grow at ¾ load (or allocate the first table) before probing, so the
	// probe loop below always finds a dead slot.
	if len(tbl) == 0 || int(live)*4 >= len(tbl)*3 {
		tbl = s.grow(v)
	}
	mask := uint64(len(tbl) - 1)
	for i := hash(id) & mask; ; i = (i + 1) & mask {
		sl := &tbl[i]
		if sl.gen != s.gen {
			sl.gen = s.gen
			sl.id = id
			sl.val = val
			s.meta[v] = uint64(s.gen)<<32 | uint64(uint32(live+1))
			s.raiseMax(live + 1)
			return 0, false, true
		}
		if sl.id == id {
			prev = sl.val
			if overwrite {
				sl.val = val
			}
			return prev, true, false
		}
	}
}

// raiseMax lifts the packed watermark to newLen if it exceeds the
// current generation's maximum.
func (s *Store) raiseMax(newLen int32) {
	packed := uint64(s.gen)<<32 | uint64(uint32(newLen))
	for {
		cur := s.maxLen.Load()
		if uint32(cur>>32) == s.gen && int32(uint32(cur)) >= newLen {
			return
		}
		if s.maxLen.CompareAndSwap(cur, packed) {
			return
		}
	}
}

// grow doubles node v's table (or installs the retained one / a fresh
// minimum-size one) and re-inserts the live entries.
func (s *Store) grow(v NodeID) []slot {
	old := s.tables[v]
	size := minTableSize
	live := int(s.lenOf(v))
	for size <= len(old) || live*4 >= size*3 {
		size *= 2
	}
	tbl := make([]slot, size)
	mask := uint64(size - 1)
	for oi := range old {
		sl := &old[oi]
		if sl.gen != s.gen {
			continue
		}
		for i := hash(sl.id) & mask; ; i = (i + 1) & mask {
			if tbl[i].gen != s.gen {
				tbl[i] = *sl
				break
			}
		}
	}
	s.tables[v] = tbl
	return tbl
}

// AppendIDs appends the identifiers of node v's set to buf (in unspecified
// but deterministic table order) and returns the extended slice. Callers
// that need a canonical order sort the result.
func (s *Store) AppendIDs(v NodeID, buf []uint64) []uint64 {
	if s.lenOf(v) == 0 {
		return buf
	}
	for i := range s.tables[v] {
		if s.tables[v][i].gen == s.gen {
			buf = append(buf, s.tables[v][i].id)
		}
	}
	return buf
}
