// Package idset provides the pooled, allocation-free identifier-set layer
// under the color-BFS primitive: for every node of a simulated network, a
// small hash set mapping 64-bit identifiers to a 32-bit value (a parent
// pointer in color-BFS, a TTL in the k-ball baseline).
//
// A Store holds one set per node, each backed by an open-addressing table
// whose slots are stamp-guarded by the store's generation counter:
// Reset(n) bumps the generation, which logically empties every set in O(1)
// without touching the tables. Per-node tables are retained across Reset
// calls, so a Store reused for many invocations on same-sized inputs (the
// way core.ColorBFSPool reuses ColorBFS instances) reaches a steady state
// in which insertions allocate nothing.
//
// Concurrency contract: distinct nodes' sets may be operated on
// concurrently (the CONGEST engine runs node handlers in parallel), but a
// single node's set must only be touched by one goroutine at a time, and
// Reset requires exclusive access to the whole Store. This matches the
// engine's execution model, where node u's state is only mutated from u's
// own handler invocation.
package idset

// NodeID mirrors graph.NodeID; the package depends on nothing so the
// substrate layers (graph, congest, core, baseline) can all use it.
type NodeID = int32

// slot is one open-addressing table entry; it is live iff gen matches the
// store's current generation.
type slot struct {
	gen uint64
	id  uint64
	val int32
}

const minTableSize = 8 // power of two

// Store is a per-node family of identifier sets. The zero value is not
// usable; call New.
type Store struct {
	gen    uint64
	tables [][]slot // per-node open-addressing tables (nil until first use)
	lens   []int32  // per-node live counts, valid iff genOf matches gen
	genOf  []uint64
}

// New returns a store with one empty set per node.
func New(n int) *Store {
	s := &Store{}
	s.Reset(n)
	return s
}

// Reset empties every set (O(1) via the generation stamp) and re-sizes the
// store to n nodes. Table capacity acquired by previous generations is
// retained, which is what makes pooled reuse allocation-free.
func (s *Store) Reset(n int) {
	s.gen++
	if n != len(s.lens) {
		s.tables = make([][]slot, n)
		s.lens = make([]int32, n)
		s.genOf = make([]uint64, n)
	}
}

// NumNodes returns the number of per-node sets.
func (s *Store) NumNodes() int { return len(s.lens) }

// hash is the splitmix64 finalizer: a full-avalanche mix so that the
// low bits used for table indexing depend on every bit of the identifier.
func hash(id uint64) uint64 {
	id ^= id >> 30
	id *= 0xbf58476d1ce4e5b9
	id ^= id >> 27
	id *= 0x94d049bb133111eb
	id ^= id >> 31
	return id
}

// Len returns the size of node v's set.
func (s *Store) Len(v NodeID) int {
	if s.genOf[v] != s.gen {
		return 0
	}
	return int(s.lens[v])
}

// MaxLen returns the largest set size across all nodes.
func (s *Store) MaxLen() int {
	best := int32(0)
	for v, g := range s.genOf {
		if g == s.gen && s.lens[v] > best {
			best = s.lens[v]
		}
	}
	return int(best)
}

// Get returns the value stored for id in node v's set.
func (s *Store) Get(v NodeID, id uint64) (int32, bool) {
	tbl := s.tables[v]
	if len(tbl) == 0 || s.genOf[v] != s.gen {
		return 0, false
	}
	mask := uint64(len(tbl) - 1)
	for i := hash(id) & mask; ; i = (i + 1) & mask {
		sl := &tbl[i]
		if sl.gen != s.gen {
			return 0, false
		}
		if sl.id == id {
			return sl.val, true
		}
	}
}

// Insert adds id → val to node v's set if id is absent and reports whether
// it inserted; an existing entry is left untouched (first-writer-wins, the
// semantics parent pointers need).
func (s *Store) Insert(v NodeID, id uint64, val int32) bool {
	_, _, inserted := s.put(v, id, val, false)
	return inserted
}

// Put adds or overwrites id → val in node v's set, returning the previous
// value if one existed (the upsert the k-ball TTL relaxation needs).
func (s *Store) Put(v NodeID, id uint64, val int32) (prev int32, existed bool) {
	prev, existed, _ = s.put(v, id, val, true)
	return prev, existed
}

func (s *Store) put(v NodeID, id uint64, val int32, overwrite bool) (prev int32, existed, inserted bool) {
	if s.genOf[v] != s.gen {
		s.genOf[v] = s.gen
		s.lens[v] = 0
	}
	tbl := s.tables[v]
	// Grow at ¾ load (or allocate the first table) before probing, so the
	// probe loop below always finds a dead slot.
	if len(tbl) == 0 || int(s.lens[v])*4 >= len(tbl)*3 {
		tbl = s.grow(v)
	}
	mask := uint64(len(tbl) - 1)
	for i := hash(id) & mask; ; i = (i + 1) & mask {
		sl := &tbl[i]
		if sl.gen != s.gen {
			sl.gen = s.gen
			sl.id = id
			sl.val = val
			s.lens[v]++
			return 0, false, true
		}
		if sl.id == id {
			prev = sl.val
			if overwrite {
				sl.val = val
			}
			return prev, true, false
		}
	}
}

// grow doubles node v's table (or installs the retained one / a fresh
// minimum-size one) and re-inserts the live entries.
func (s *Store) grow(v NodeID) []slot {
	old := s.tables[v]
	size := minTableSize
	live := 0
	if s.genOf[v] == s.gen {
		live = int(s.lens[v])
	}
	for size <= len(old) || live*4 >= size*3 {
		size *= 2
	}
	tbl := make([]slot, size)
	mask := uint64(size - 1)
	for oi := range old {
		sl := &old[oi]
		if sl.gen != s.gen {
			continue
		}
		for i := hash(sl.id) & mask; ; i = (i + 1) & mask {
			if tbl[i].gen != s.gen {
				tbl[i] = *sl
				break
			}
		}
	}
	s.tables[v] = tbl
	return tbl
}

// AppendIDs appends the identifiers of node v's set to buf (in unspecified
// but deterministic table order) and returns the extended slice. Callers
// that need a canonical order sort the result.
func (s *Store) AppendIDs(v NodeID, buf []uint64) []uint64 {
	if s.genOf[v] != s.gen {
		return buf
	}
	for i := range s.tables[v] {
		if s.tables[v][i].gen == s.gen {
			buf = append(buf, s.tables[v][i].id)
		}
	}
	return buf
}
