package deterministic

import (
	"fmt"
	"math"
	"slices"
	"sync/atomic"
	"time"

	"repro/internal/congest"
	"repro/internal/graph"
	"repro/internal/idset"
)

// kindWalk announces a walk: A = source identifier, B = walk length at the
// sender. Receivers extend the walk by one hop.
const kindWalk uint8 = 30

// Key packing: a stored identifier is source<<hopBits | length. Sources are
// bounded by congest.MaxNodes (2^28), lengths by MaxK, so keys fit a uint64
// with room to spare.
const (
	hopBits = 6
	hopMask = 1<<hopBits - 1

	// MaxK bounds the half cycle length so a walk length always fits the
	// key's hop field (and the simulation's memory; real runs use small k).
	MaxK = 1<<hopBits - 1
)

func walkKey(src uint64, length uint64) uint64 { return src<<hopBits | length }

// Options tunes a deterministic detection run. The zero value requests the
// default threshold and a serial engine.
type Options struct {
	// Threshold overrides τ, the per-node identifier cap (0 keeps the
	// default ⌈2k·n^{1-1/k}⌉). A node that would exceed τ discards its set
	// and stops relaying; experiment D1 sweeps the resulting trade-off.
	Threshold int
	// Seed is the engine's master seed. The protocol draws no randomness,
	// so every Seed yields a bit-identical transcript and Result; the
	// field exists so tests can pin exactly that.
	Seed uint64
	// Workers, Shards and ParallelThreshold configure the engine's
	// parallel handler/delivery phases (see congest.Engine); transcripts
	// are bit-identical for every setting.
	Workers           int
	Shards            int
	ParallelThreshold int
	// MaxRounds bounds the engine session (0 = engine default).
	MaxRounds int
	// Cancel aborts the broadcast session at the next round boundary when
	// tripped (see congest.CancelFlag); untripped it changes nothing.
	Cancel *congest.CancelFlag
	// Observe receives each completed engine session's round count and
	// wall clock (see congest.Engine.Observe); purely passive — the
	// transcript stays a pure function of the graph.
	Observe func(rounds int, wall time.Duration)
}

// Result reports a deterministic detection run.
type Result struct {
	// Found is true iff a verified C_2k was reconstructed; Witness then
	// holds the cycle and Detector the node whose walk collision found it.
	Found    bool
	Witness  []graph.NodeID
	Detector graph.NodeID

	// Rounds is the CONGEST time of the single broadcast session;
	// Messages the delivered message count and Bits their model-level
	// bandwidth.
	Rounds   int
	Messages int64
	Bits     int64
	// MaxCongestion is the largest walk-key set any node accumulated
	// (bounded by the threshold).
	MaxCongestion int
	// Overflowed reports whether any node hit the threshold and discarded
	// its set; detection may be missed on such instances, never fabricated.
	Overflowed bool
	// Candidates is the number of walk collisions examined; collisions
	// whose reconstruction is not a simple 2k-cycle are discarded.
	Candidates int
	// Threshold echoes the τ used.
	Threshold int
}

// DefaultThreshold is the faithful per-node identifier cap
// τ = ⌈2k·n^{1-1/k}⌉ of the deterministic algorithm's Θ(n^{1-1/k}) regime.
func DefaultThreshold(n, k int) int {
	if n < 2 {
		return 1
	}
	return int(math.Ceil(2 * float64(k) * math.Pow(float64(n), 1-1/float64(k))))
}

// candidate records one terminal walk collision: two walks of length k
// from Src meet at Node, the first via the first-parent store and the
// second via the distinct last hop Second. Every distinct second parent
// yields its own candidate (a neighbor relays a given key at most once,
// so arrivals per (Node, Src, Second) are unique), which lets witness
// verification try every pairing rather than only the earliest.
type candidate struct {
	Node   graph.NodeID
	Src    graph.NodeID
	Second graph.NodeID
}

// detProto is the broadcast-CONGEST handler. All per-node state is touched
// only by that node's handler invocation, so the engine may execute
// handlers in parallel; detections are buffered per node and merged into a
// canonical order after the session (the same lock-free discipline as
// core.ColorBFS).
type detProto struct {
	k   uint64 // target walk length (half cycle length)
	tau int32
	// tauAt, when non-nil, overrides tau per node. Fused disjoint-union
	// sessions set it so every component runs under its own
	// DefaultThreshold(n_i, k) — τ is the protocol's only n-dependent
	// parameter, and solo-identical transcripts require the component's
	// own n, not the union's.
	tauAt []int32

	// first maps walk key → first parent (the neighbor whose relay
	// created the entry). Terminal keys arriving again over a different
	// last hop are the detection events; the extra parents live in the
	// candidate records, not in a store.
	first *idset.Store

	// over[v] is set when v's set hit the threshold; overAny mirrors it
	// globally (written from concurrent handlers, hence atomic).
	over    []bool
	overAny atomic.Bool

	// Pending relays, drained one broadcast per round (pipelined).
	queue [][]uint64
	qIdx  []int32

	detAt    [][]candidate
	detCount atomic.Int64
}

var _ congest.Handler = (*detProto)(nil)

func newDetProto(n, k, tau int) *detProto {
	return &detProto{
		k:     uint64(k),
		tau:   int32(tau),
		first: idset.New(n),
		over:  make([]bool, n),
		queue: make([][]uint64, n),
		qIdx:  make([]int32, n),
		detAt: make([][]candidate, n),
	}
}

func (p *detProto) Init(rt *congest.Runtime) {
	for u := 0; u < rt.N(); u++ {
		rt.WakeAt(graph.NodeID(u), 0)
	}
}

func (p *detProto) HandleRound(rt *congest.Runtime, u graph.NodeID, r int, inbox []congest.Message) {
	if r == 0 {
		// Round 0: every node announces itself as a walk of length 0.
		rt.Broadcast(u, kindWalk, uint64(u), 0)
		return
	}
	for _, m := range inbox {
		p.accept(u, m)
	}
	if p.over[u] {
		return
	}
	if q := p.queue[u]; int(p.qIdx[u]) < len(q) {
		key := q[p.qIdx[u]]
		p.qIdx[u]++
		rt.Broadcast(u, kindWalk, key>>hopBits, key&hopMask)
		if int(p.qIdx[u]) < len(q) {
			rt.WakeAt(u, r+1)
		}
	}
}

// accept extends an incoming walk announcement by one hop: record the key,
// enqueue a relay while the walk is still short of k, and detect when a
// terminal key arrives over a second distinct last hop.
func (p *detProto) accept(u graph.NodeID, m congest.Message) {
	if p.over[u] || m.Kind() != kindWalk {
		return
	}
	src := m.A()
	if graph.NodeID(src) == u {
		// A walk that returned to its source certifies nothing at length
		// ≤ k; dropping it also keeps parent chains acyclic at the source.
		return
	}
	h := m.B() + 1
	key := walkKey(src, h)
	tau := p.tau
	if p.tauAt != nil {
		tau = p.tauAt[u]
	}
	inserted, capped := p.first.InsertCapped(u, key, int32(m.From()), tau)
	if capped {
		// Instruction-19 semantics: the set is discarded — stop accepting
		// and cancel the relays not yet sent (those already broadcast
		// remain valid walk certificates downstream).
		p.over[u] = true
		p.overAny.Store(true)
		p.queue[u] = p.queue[u][:p.qIdx[u]]
		return
	}
	if inserted {
		if h < p.k {
			p.queue[u] = append(p.queue[u], key)
		}
		return
	}
	// Duplicate key: a second walk of the same length from the same
	// source. Only terminal collisions over a distinct last hop can close
	// a C_2k; each distinct second parent is its own candidate, so
	// verification can fall back to a later pairing when the earliest
	// reconstructs a non-simple walk.
	if h != p.k {
		return
	}
	if firstParent, _ := p.first.Get(u, key); firstParent == int32(m.From()) {
		return
	}
	p.detAt[u] = append(p.detAt[u], candidate{Node: u, Src: graph.NodeID(src), Second: m.From()})
	p.detCount.Add(1)
}

// candidates merges the per-node detection buffers into a canonical order
// (ascending node, then source), erasing any handler-scheduling order.
func (p *detProto) candidates() []candidate {
	if p.detCount.Load() == 0 {
		return nil
	}
	var out []candidate
	for _, buf := range p.detAt {
		out = append(out, buf...)
	}
	slices.SortFunc(out, func(a, b candidate) int {
		if a.Node != b.Node {
			return int(a.Node) - int(b.Node)
		}
		if a.Src != b.Src {
			return int(a.Src) - int(b.Src)
		}
		return int(a.Second) - int(b.Second)
	})
	return out
}

// witness reconstructs the closed walk of a candidate from the recorded
// parent pointers: the first chain t → … → s via the first-parent store,
// and the second chain starting at the second parent. The result has
// length 2k but may repeat vertices (walks are not paths); the caller
// verifies simplicity and discards the candidate otherwise.
func (p *detProto) witness(c candidate) ([]graph.NodeID, error) {
	k := int(p.k)
	src := uint64(c.Src)
	chain := func(start graph.NodeID, fromLen int) ([]graph.NodeID, error) {
		out := make([]graph.NodeID, 0, fromLen)
		cur := start
		for h := fromLen; h >= 1; h-- {
			parent, ok := p.first.Get(cur, walkKey(src, uint64(h)))
			if !ok {
				return nil, fmt.Errorf("deterministic: parent missing at node %d (length %d)", cur, h)
			}
			cur = graph.NodeID(parent)
			out = append(out, cur)
		}
		if cur != c.Src {
			return nil, fmt.Errorf("deterministic: walk ended at %d, want source %d", cur, c.Src)
		}
		return out, nil
	}
	first, err := chain(c.Node, k) // [v_{k-1}, …, v_1, s]
	if err != nil {
		return nil, err
	}
	w2 := c.Second
	rest, err := chain(w2, k-1) // [u_{k-2}, …, u_1, s]
	if err != nil {
		return nil, err
	}
	// Assemble s, v_1, …, v_{k-1}, t, w2, u_{k-2}, …, u_1 — the same
	// source-to-detector-and-back ordering as core.ColorBFS.Witness.
	cycle := make([]graph.NodeID, 0, 2*k)
	cycle = append(cycle, c.Src)
	for i := len(first) - 2; i >= 0; i-- {
		cycle = append(cycle, first[i])
	}
	cycle = append(cycle, c.Node, w2)
	cycle = append(cycle, rest[:len(rest)-1]...)
	if len(cycle) != 2*k {
		return nil, fmt.Errorf("deterministic: witness has %d vertices, want %d", len(cycle), 2*k)
	}
	return cycle, nil
}

// Detect runs the deterministic broadcast-CONGEST detector: one pipelined
// engine session in which every node relays exact-length walk
// announcements under the threshold τ, followed by witness reconstruction
// and verification of every walk collision. The guarantee is one-sided
// and deterministic: a reported cycle is always real, and a C_2k-free
// input is never rejected. A present C_2k can go undetected when the
// threshold overflows (Result.Overflowed) or when every recorded
// collision reconstructs a self-intersecting walk (parent chains are
// first-arrival; chords can pollute them, mostly at k ≥ 3 on dense
// instances — experiment D1 tabulates the realized detection rate).
func Detect(g *graph.Graph, k int, opt Options) (*Result, error) {
	if k < 2 {
		return nil, fmt.Errorf("deterministic: k = %d < 2 (C_2k detection needs k ≥ 2)", k)
	}
	if k > MaxK {
		return nil, fmt.Errorf("deterministic: k = %d exceeds the %d-bit walk-length field (MaxK = %d)", k, hopBits, MaxK)
	}
	n := g.NumNodes()
	tau := opt.Threshold
	if tau <= 0 {
		tau = DefaultThreshold(n, k)
	}
	net := congest.NewNetwork(g, opt.Seed)
	eng := congest.NewEngine(net)
	eng.Workers = opt.Workers
	eng.Shards = opt.Shards
	eng.ParallelThreshold = opt.ParallelThreshold
	eng.MaxRounds = opt.MaxRounds
	eng.Cancel = opt.Cancel
	eng.Observe = opt.Observe

	proto := newDetProto(n, k, tau)
	rep, err := eng.Run(proto)
	if err != nil {
		return nil, fmt.Errorf("deterministic: %w", err)
	}
	res := &Result{
		Rounds:        rep.Rounds,
		Messages:      rep.Messages,
		Bits:          rep.Bits,
		MaxCongestion: proto.first.MaxLen(),
		Overflowed:    proto.overAny.Load(),
		Threshold:     tau,
	}
	for _, c := range proto.candidates() {
		res.Candidates++
		cycle, err := proto.witness(c)
		if err != nil {
			return nil, err
		}
		if graph.IsSimpleCycle(g, cycle, 2*k) != nil {
			continue // a self-intersecting closed walk, not a C_2k
		}
		res.Found = true
		res.Witness = cycle
		res.Detector = c.Node
		break
	}
	return res, nil
}
