package deterministic

import (
	"testing"

	"repro/internal/graph"
)

func benchGraphs(b *testing.B, n, count int) []*graph.Graph {
	b.Helper()
	rng := graph.NewRand(7)
	gs := make([]*graph.Graph, count)
	for i := range gs {
		pg, _, err := graph.PlantedLight(n, 4, 1.5, rng)
		if err != nil {
			b.Fatal(err)
		}
		gs[i] = pg
	}
	return gs
}

func BenchmarkDetMissPathSolo(b *testing.B) {
	gs := benchGraphs(b, 64, 16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, g := range gs {
			if _, err := Detect(g, 2, Options{}); err != nil {
				b.Fatal(err)
			}
		}
	}
}

func BenchmarkDetMissPathFused(b *testing.B) {
	gs := benchGraphs(b, 64, 16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := DetectMulti(gs, 2, Options{}); err != nil {
			b.Fatal(err)
		}
	}
}
