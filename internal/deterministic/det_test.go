package deterministic

import (
	"fmt"
	"testing"

	"repro/internal/graph"
)

func TestDetectsPlantedEvenCycles(t *testing.T) {
	for _, k := range []int{2, 3} {
		t.Run(fmt.Sprintf("k=%d", k), func(t *testing.T) {
			g, planted, err := graph.PlantedLight(400, 2*k, 1.5, graph.NewRand(uint64(k)))
			if err != nil {
				t.Fatal(err)
			}
			res, err := Detect(g, k, Options{})
			if err != nil {
				t.Fatal(err)
			}
			if !res.Found {
				t.Fatalf("planted C_%d (at %v) missed; candidates=%d overflowed=%v",
					2*k, planted, res.Candidates, res.Overflowed)
			}
			if err := graph.IsSimpleCycle(g, res.Witness, 2*k); err != nil {
				t.Fatalf("invalid witness %v: %v", res.Witness, err)
			}
			if res.Rounds <= 0 || res.Messages <= 0 || res.Bits <= 0 {
				t.Fatalf("degenerate cost report: %+v", res)
			}
		})
	}
}

func TestDetectsExactCycleGraphs(t *testing.T) {
	for _, k := range []int{2, 3, 4} {
		res, err := Detect(graph.Cycle(2*k), k, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Found {
			t.Fatalf("k=%d: C_%d itself not detected", k, 2*k)
		}
		if err := graph.IsSimpleCycle(graph.Cycle(2*k), res.Witness, 2*k); err != nil {
			t.Fatalf("k=%d: invalid witness: %v", k, err)
		}
	}
	// Theta(3,2): two hubs joined by three length-2 arms — three C₄ copies.
	res, err := Detect(graph.Theta(3, 2), 2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Found {
		t.Fatal("theta graph C₄ not detected")
	}
}

// TestCycleFreeNeverRejects pins the deterministic guarantee: on a
// C_2k-free input the detector never reports a cycle — not with high
// probability, always.
func TestCycleFreeNeverRejects(t *testing.T) {
	pg, err := graph.ProjectivePlaneIncidence(7)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		g    *graph.Graph
		k    int
	}{
		{"high-girth", graph.HighGirth(300, 450, 7, graph.NewRand(5)), 2},
		{"high-girth-k3", graph.HighGirth(300, 450, 7, graph.NewRand(6)), 3},
		{"pg(2,7)", pg, 2},               // girth 6: C₄-free
		{"odd-cycle", graph.Cycle(5), 2}, // contains only C₅
		{"tree", graph.Tree(200, graph.NewRand(8)), 2},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if graph.HasCycleLen(tc.g, 2*tc.k) {
				t.Fatalf("instance is not C_%d-free", 2*tc.k)
			}
			res, err := Detect(tc.g, tc.k, Options{})
			if err != nil {
				t.Fatal(err)
			}
			if res.Found {
				t.Fatalf("false rejection on a C_%d-free input: %+v", 2*tc.k, res)
			}
		})
	}
}

// TestThresholdOverflow forces the Instruction-19 discard on a hub
// instance and checks that overflow is reported, bounded, and one-sided.
func TestThresholdOverflow(t *testing.T) {
	g, _, err := graph.PlantedHeavy(400, 4, 120, 1.5, graph.NewRand(9))
	if err != nil {
		t.Fatal(err)
	}
	res, err := Detect(g, 2, Options{Threshold: 8})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Overflowed {
		t.Fatalf("hub instance with τ=8 did not overflow: %+v", res)
	}
	if res.MaxCongestion > 8 {
		t.Fatalf("congestion %d exceeds the threshold 8", res.MaxCongestion)
	}
	if res.Found {
		if err := graph.IsSimpleCycle(g, res.Witness, 4); err != nil {
			t.Fatalf("overflowed run reported an invalid witness: %v", err)
		}
	}
	// One-sidedness under overflow: a C₄-free star cannot be rejected no
	// matter how small the threshold.
	star, err := Detect(graph.Star(100), 2, Options{Threshold: 2})
	if err != nil {
		t.Fatal(err)
	}
	if star.Found {
		t.Fatalf("star rejected under overflow: %+v", star)
	}
}

// TestKnownMissIsOneSided documents the detector's incompleteness mode:
// on chord-dense instances every recorded walk collision can reconstruct
// a self-intersecting walk, so a present C_2k goes unreported (here a
// small G(8,10) with a C₆, every candidate rejected by verification, no
// overflow). The contract under a miss is what this test pins: the run
// is deterministic, one-sided, and the candidates were all examined —
// never a false rejection.
func TestKnownMissIsOneSided(t *testing.T) {
	g := graph.Gnm(8, 10, graph.NewRand(2))
	if !graph.HasCycleLen(g, 6) {
		t.Fatal("instance lost its C₆; pick a new pinned miss")
	}
	res, err := Detect(g, 3, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Found {
		// Not a failure: an algorithm improvement that closes this gap is
		// welcome — but then this pin must move to a still-missing
		// instance, so flag it loudly.
		t.Fatalf("pinned miss instance is now detected (%+v); update the test to a current miss", res)
	}
	if res.Candidates == 0 || res.Overflowed {
		t.Fatalf("miss should come from rejected candidates, not silence/overflow: %+v", res)
	}
}

// TestTranscriptInvariance pins the determinism contract of the package
// doc: the full Result is bit-identical across engine worker counts,
// shard counts, parallel thresholds, and — because the protocol draws no
// randomness — across master seeds.
func TestTranscriptInvariance(t *testing.T) {
	g, _, err := graph.PlantedLight(500, 4, 2.0, graph.NewRand(11))
	if err != nil {
		t.Fatal(err)
	}
	cfgs := []Options{
		{Seed: 1, Workers: 1},
		{Seed: 1, Workers: 4, ParallelThreshold: 1},
		{Seed: 1, Workers: 8, Shards: 3, ParallelThreshold: 1},
		{Seed: 99999, Workers: 2, ParallelThreshold: 1},
		{Seed: 424242, Workers: 1},
	}
	var base string
	for i, opt := range cfgs {
		res, err := Detect(g, 2, opt)
		if err != nil {
			t.Fatal(err)
		}
		fp := fmt.Sprintf("%+v", res)
		if i == 0 {
			base = fp
		} else if fp != base {
			t.Fatalf("transcript diverges at cfg %+v:\nbase: %s\ngot:  %s", opt, base, fp)
		}
	}
}

func TestDefaultThreshold(t *testing.T) {
	if got := DefaultThreshold(1, 2); got != 1 {
		t.Fatalf("n=1: got %d", got)
	}
	// τ = ⌈2k·n^{1-1/k}⌉ grows with both n and k.
	if a, b := DefaultThreshold(1000, 2), DefaultThreshold(4000, 2); b <= a {
		t.Fatalf("threshold not increasing in n: %d vs %d", a, b)
	}
	if a, b := DefaultThreshold(4096, 2), DefaultThreshold(4096, 3); b <= a {
		t.Fatalf("threshold not increasing in k at this n: %d vs %d", a, b)
	}
}

func TestRejectsBadK(t *testing.T) {
	g := graph.Cycle(8)
	if _, err := Detect(g, 1, Options{}); err == nil {
		t.Fatal("k=1 accepted")
	}
	if _, err := Detect(g, MaxK+1, Options{}); err == nil {
		t.Fatal("k beyond the walk-length field accepted")
	}
}
