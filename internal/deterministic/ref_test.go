package deterministic

// A map-based reference model of the walk-relay protocol, mirroring the
// chaos-probe methodology of internal/congest's refengine_test.go one
// layer up: the same rounds, queues and threshold rules are simulated
// with plain Go maps and a hand-rolled synchronous round loop, and every
// observable of the engine-backed detector — verdict, witness, rounds,
// messages, congestion, overflow, candidate count — must match exactly.

import (
	"fmt"
	"slices"
	"testing"

	"repro/internal/congest"
	"repro/internal/graph"
)

type refMsg struct {
	from graph.NodeID
	src  uint64
	h    uint64
}

// refDetect re-implements Detect against maps. Messages staged in round r
// are delivered at round r+1 in ascending-sender order, matching the
// engine's delivery contract.
func refDetect(g *graph.Graph, k int, tau int) (*Result, error) {
	n := g.NumNodes()
	kk := uint64(k)
	known := make([]map[uint64]graph.NodeID, n)
	for v := range known {
		known[v] = map[uint64]graph.NodeID{}
	}
	queue := make([][]uint64, n)
	qIdx := make([]int, n)
	over := make([]bool, n)
	var cands []candidate
	overflowed := false
	maxCong := 0

	inbox := make([][]refMsg, n)
	var messages int64
	rounds := 0

	woken := make([]bool, n)
	anyWoken := true // round 0: every node announces
	anyInbox := false
	for v := range woken {
		woken[v] = true
	}

	for r := 0; anyWoken || anyInbox; r++ {
		staged := make([][]refMsg, n)
		nextWoken := make([]bool, n)
		anyNextWoken := false
		anyNextInbox := false
		active := false
		broadcast := func(u graph.NodeID, src, h uint64) {
			for _, w := range g.Neighbors(u) {
				staged[w] = append(staged[w], refMsg{from: u, src: src, h: h})
				anyNextInbox = true
				messages++
			}
		}
		for u := 0; u < n; u++ {
			v := graph.NodeID(u)
			if len(inbox[u]) == 0 && !woken[u] {
				continue
			}
			active = true
			if r == 0 {
				broadcast(v, uint64(u), 0)
				continue
			}
			for _, m := range inbox[u] {
				if over[u] || graph.NodeID(m.src) == v {
					continue
				}
				h := m.h + 1
				key := walkKey(m.src, h)
				if _, dup := known[u][key]; !dup {
					if len(known[u]) >= tau {
						over[u] = true
						overflowed = true
						queue[u] = queue[u][:qIdx[u]]
						continue
					}
					known[u][key] = m.from
					if len(known[u]) > maxCong {
						maxCong = len(known[u])
					}
					if h < kk {
						queue[u] = append(queue[u], key)
					}
					continue
				}
				if h != kk || known[u][key] == m.from {
					continue
				}
				cands = append(cands, candidate{Node: v, Src: graph.NodeID(m.src), Second: m.from})
			}
			if over[u] {
				continue
			}
			if qIdx[u] < len(queue[u]) {
				key := queue[u][qIdx[u]]
				qIdx[u]++
				broadcast(v, key>>hopBits, key&hopMask)
				if qIdx[u] < len(queue[u]) {
					nextWoken[u] = true
					anyNextWoken = true
				}
			}
		}
		if active {
			rounds = r + 1
		}
		inbox, woken = staged, nextWoken
		anyInbox, anyWoken = anyNextInbox, anyNextWoken
	}

	slices.SortFunc(cands, func(a, b candidate) int {
		if a.Node != b.Node {
			return int(a.Node) - int(b.Node)
		}
		if a.Src != b.Src {
			return int(a.Src) - int(b.Src)
		}
		return int(a.Second) - int(b.Second)
	})
	res := &Result{
		Rounds:        rounds,
		Messages:      messages,
		Bits:          messages * congest.MessageBits(n),
		MaxCongestion: maxCong,
		Overflowed:    overflowed,
		Threshold:     tau,
	}
	for _, c := range cands {
		res.Candidates++
		cycle, err := refWitness(known, c, k)
		if err != nil {
			return nil, err
		}
		if graph.IsSimpleCycle(g, cycle, 2*k) != nil {
			continue
		}
		res.Found = true
		res.Witness = cycle
		res.Detector = c.Node
		break
	}
	return res, nil
}

func refWitness(known []map[uint64]graph.NodeID, c candidate, k int) ([]graph.NodeID, error) {
	src := uint64(c.Src)
	chain := func(start graph.NodeID, fromLen int) ([]graph.NodeID, error) {
		out := make([]graph.NodeID, 0, fromLen)
		cur := start
		for h := fromLen; h >= 1; h-- {
			parent, ok := known[cur][walkKey(src, uint64(h))]
			if !ok {
				return nil, fmt.Errorf("ref: parent missing at %d length %d", cur, h)
			}
			cur = parent
			out = append(out, cur)
		}
		if cur != c.Src {
			return nil, fmt.Errorf("ref: walk ended at %d, want %d", cur, c.Src)
		}
		return out, nil
	}
	first, err := chain(c.Node, k)
	if err != nil {
		return nil, err
	}
	w2 := c.Second
	rest, err := chain(w2, k-1)
	if err != nil {
		return nil, err
	}
	cycle := make([]graph.NodeID, 0, 2*k)
	cycle = append(cycle, c.Src)
	for i := len(first) - 2; i >= 0; i-- {
		cycle = append(cycle, first[i])
	}
	cycle = append(cycle, c.Node, w2)
	cycle = append(cycle, rest[:len(rest)-1]...)
	return cycle, nil
}

// TestMatchesMapReference runs the engine-backed detector and the map
// reference over a spread of instances — random, planted, structured, and
// threshold-starved (overflow on every relay path) — and requires every
// Result field to match bit for bit, for both serial and forced-parallel
// engine configurations.
func TestMatchesMapReference(t *testing.T) {
	planted := func(n, L int, seed uint64) *graph.Graph {
		g, _, err := graph.PlantedLight(n, L, 2.0, graph.NewRand(seed))
		if err != nil {
			t.Fatal(err)
		}
		return g
	}
	cases := []struct {
		name string
		g    *graph.Graph
		k    int
		tau  int // 0 = default
	}{
		{"gnm-sparse", graph.Gnm(80, 120, graph.NewRand(1)), 2, 0},
		{"gnm-dense", graph.Gnm(60, 400, graph.NewRand(2)), 2, 0},
		{"gnm-k3", graph.Gnm(80, 140, graph.NewRand(3)), 3, 0},
		{"planted-c4", planted(150, 4, 4), 2, 0},
		{"planted-c6", planted(150, 6, 5), 3, 0},
		{"theta", graph.Theta(4, 3), 3, 0},
		{"grid", graph.Grid(8, 8), 2, 0},
		{"starved", graph.Gnm(70, 200, graph.NewRand(6)), 2, 3},
		{"starved-k3", planted(120, 6, 7), 3, 4},
		{"hub", func() *graph.Graph {
			g, _, err := graph.PlantedHeavy(120, 4, 40, 1.5, graph.NewRand(8))
			if err != nil {
				t.Fatal(err)
			}
			return g
		}(), 2, 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			tau := tc.tau
			if tau == 0 {
				tau = DefaultThreshold(tc.g.NumNodes(), tc.k)
			}
			want, err := refDetect(tc.g, tc.k, tau)
			if err != nil {
				t.Fatal(err)
			}
			for _, opt := range []Options{
				{Threshold: tc.tau, Workers: 1},
				{Threshold: tc.tau, Workers: 4, Shards: 2, ParallelThreshold: 1},
			} {
				got, err := Detect(tc.g, tc.k, opt)
				if err != nil {
					t.Fatal(err)
				}
				if fmt.Sprintf("%+v", got) != fmt.Sprintf("%+v", want) {
					t.Fatalf("engine run (workers=%d) diverges from reference:\nref: %+v\neng: %+v",
						opt.Workers, want, got)
				}
			}
		})
	}
}
