// Package deterministic implements a deterministic even-cycle detector in
// the Broadcast CONGEST model, after
//
//	Fraigniaud, Luce, Magniez, Todinca:
//	"Deterministic Even-Cycle Detection in Broadcast CONGEST"
//	(arXiv:2412.11195)
//
// and the threshold-based framework of Fraigniaud, Luce, Todinca, "On the
// Power of Threshold-Based Algorithms for Detecting Cycles in the CONGEST
// Model" (arXiv:2304.02360). It fills the deterministic column of the
// repository's detector matrix (see docs/ARCHITECTURE.md), next to the
// randomized and quantum detectors of the source paper.
//
// # Model
//
// Broadcast CONGEST restricts CONGEST: in each round a node sends one
// O(log n)-bit message to all its neighbors at once (no per-edge
// addressing). The protocol here uses only congest.Runtime.Broadcast —
// never Send — so it exercises exactly that model, and it draws no
// randomness at all: the transcript is a pure function of the input graph,
// bit-identical for every engine seed, worker count and shard setting
// (pinned by TestTranscriptInvariance and the root delivery-determinism
// suite).
//
// # Algorithm
//
// Every node is a source. In round 0 each node u broadcasts the
// walk-announcement (u, 0); a node that receives (s, h) records the key
// (s, h+1) — "a walk of length h+1 from s ends here" — with the sender as
// parent pointer, and, while h+1 < k, re-broadcasts (s, h+1) exactly once,
// pipelined one relay per round (the same queue discipline as the
// pipelined color-BFS schedule). Keys are exact walk lengths, not BFS
// distances: a source can be recorded at several lengths, which is what
// makes the detection length-exact.
//
// A node t detects a candidate C_2k when the terminal key (s, k) arrives
// from two distinct neighbors: two walks of length exactly k from s meet
// at t, i.e. a closed walk of length 2k through s and t. Walks may
// self-intersect, so after the session each candidate's two parent chains
// are reconstructed and the resulting vertex sequence is verified with
// graph.IsSimpleCycle; every distinct second parent is kept as its own
// candidate, so verification tries every recorded pairing, and only a
// verified C_2k is reported. Detection is therefore one-sided in the
// strong sense of the rest of the repository — a reported cycle is real,
// and a C_2k-free input is never rejected, here deterministically, not
// just with high probability. Completeness is not absolute: parent
// chains are first-arrival, so on chord-dense instances (mostly k ≥ 3)
// every recorded collision can reconstruct a self-intersecting walk and
// a present C_2k goes unreported; experiment D1 tabulates the realized
// detection rate next to the randomized detector's.
//
// # Threshold
//
// Congestion is pruned exactly as in Algorithm 1's Instruction 19: a node
// whose identifier set would exceed the threshold τ discards it — it stops
// accepting keys and cancels its pending relays (keys it already relayed
// remain valid walk certificates, as in the pipelined color-BFS schedule).
// The default τ = ⌈2k·n^{1-1/k}⌉ is the Θ(n^{1-1/k}) regime of the
// deterministic paper; the relay pipeline drains at most τ entries per
// node, which is what caps the round complexity at O(k + τ) =
// O(n^{1-1/k}). Result.Overflowed reports whether any node hit τ (on such
// instances a cycle may go undetected; experiment D1 sweeps the trade-off
// against the randomized detector).
//
// Per-node key sets use internal/idset (key → parent pointer), the same
// pooled flat-set layer as color-BFS, so the per-round hot path performs
// no map operations and no allocations.
package deterministic
