package deterministic

import (
	"reflect"
	"testing"

	"repro/internal/graph"
)

// fusedCorpus builds a mixed batch of small graphs: planted 2k-cycles,
// high-girth negatives and plain G(n,m) instances, so batches contain
// found, not-found and overflowing components side by side.

func fusedCorpus(t *testing.T, k int, count int, seed uint64) []*graph.Graph {
	t.Helper()
	rng := graph.NewRand(seed)
	gs := make([]*graph.Graph, count)
	for i := range gs {
		n := 16 + rng.IntN(64)
		switch i % 3 {
		case 0:
			g, _, err := graph.PlantedLight(n, 2*k, 2.0, rng)
			if err != nil {
				t.Fatalf("planted: %v", err)
			}
			gs[i] = g
		case 1:
			gs[i] = graph.HighGirth(n, 2*n, 2*k+1, rng)
		default:
			gs[i] = graph.Gnm(n, 3*n, rng)
		}
	}
	return gs
}

// TestDetectMultiMatchesSolo pins the fused deterministic path against
// solo runs: every Result field — verdict, witness (component-local IDs),
// detector, rounds, messages, bits, congestion, overflow, candidate
// count, threshold — must be byte-identical, across engine schedules.
func TestDetectMultiMatchesSolo(t *testing.T) {
	for _, k := range []int{2, 3} {
		gs := fusedCorpus(t, k, 9, uint64(100+k))
		for _, cfg := range []Options{
			{},
			{Workers: 4, Shards: 2, ParallelThreshold: 1},
			{Workers: 8, Shards: 8, ParallelThreshold: 1},
		} {
			fused, err := DetectMulti(gs, k, cfg)
			if err != nil {
				t.Fatal(err)
			}
			for i, g := range gs {
				solo, err := Detect(g, k, cfg)
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(fused[i], solo) {
					t.Fatalf("k=%d workers=%d component %d:\nfused %+v\nsolo  %+v",
						k, cfg.Workers, i, fused[i], solo)
				}
				if fused[i].Found {
					if err := graph.IsSimpleCycle(g, fused[i].Witness, 2*k); err != nil {
						t.Fatalf("k=%d component %d: remapped witness invalid: %v", k, i, err)
					}
				}
			}
		}
	}
}

// TestDetectMultiSingleton pins that a batch of one is identical to solo.
func TestDetectMultiSingleton(t *testing.T) {
	g := graph.Gnm(80, 240, graph.NewRand(5))
	fused, err := DetectMulti([]*graph.Graph{g}, 2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	solo, err := Detect(g, 2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(fused[0], solo) {
		t.Fatalf("singleton fused %+v != solo %+v", fused[0], solo)
	}
}
