package deterministic

import (
	"fmt"

	"repro/internal/congest"
	"repro/internal/graph"
)

// DetectMulti runs the deterministic detector for a batch of independent
// graphs in ONE fused engine session on their disjoint union. Components
// of a disjoint union can never exchange messages, and the protocol's
// only n-dependent parameter is the threshold τ, which is applied per
// node with each component's own n — so every component's transcript,
// and hence its Result (verdict, witness in the component's own IDs,
// rounds, messages, bits, congestion watermark, candidate count), is
// byte-identical to Detect on that graph alone. What the fusion saves is
// everything per-session: engine and protocol allocation, round
// scheduling, and bitmap/scatter fixed costs, amortized across the
// batch. Per-component costs are split via the engine's component
// accounting; Bits are charged at each component's own MessageBits(n).
func DetectMulti(gs []*graph.Graph, k int, opt Options) ([]*Result, error) {
	if k < 2 {
		return nil, fmt.Errorf("deterministic: k = %d < 2 (C_2k detection needs k ≥ 2)", k)
	}
	if k > MaxK {
		return nil, fmt.Errorf("deterministic: k = %d exceeds the %d-bit walk-length field (MaxK = %d)", k, hopBits, MaxK)
	}
	seeds := make([]uint64, len(gs))
	for i := range seeds {
		seeds[i] = opt.Seed // the protocol draws no randomness
	}
	eng, parts := congest.NewFusedEngine(gs, seeds)
	eng.Workers = opt.Workers
	eng.Shards = opt.Shards
	eng.ParallelThreshold = opt.ParallelThreshold
	eng.MaxRounds = opt.MaxRounds
	eng.Cancel = opt.Cancel
	eng.Observe = opt.Observe

	total := eng.Network().NumNodes()
	proto := newDetProto(total, k, 0)
	proto.tauAt = make([]int32, total)
	taus := make([]int, len(gs))
	for i, g := range gs {
		tau := opt.Threshold
		if tau <= 0 {
			tau = DefaultThreshold(g.NumNodes(), k)
		}
		taus[i] = tau
		lo, hi := parts.Component(i)
		for v := lo; v < hi; v++ {
			proto.tauAt[v] = int32(tau)
		}
	}
	rep, err := eng.Run(proto)
	if err != nil {
		return nil, fmt.Errorf("deterministic: %w", err)
	}

	cands := proto.candidates()
	results := make([]*Result, len(gs))
	for i, g := range gs {
		lo, hi := parts.Component(i)
		res := &Result{
			Rounds:        rep.PerComp[i].Rounds,
			Messages:      rep.PerComp[i].Messages,
			Bits:          rep.PerComp[i].Messages * congest.MessageBits(g.NumNodes()),
			MaxCongestion: proto.first.MaxLenRange(lo, hi),
			Threshold:     taus[i],
		}
		for v := lo; v < hi; v++ {
			if proto.over[v] {
				res.Overflowed = true
				break
			}
		}
		// Candidates are globally sorted by (Node, Src, Second); a
		// component's node block is contiguous, so its candidates appear in
		// exactly the order a solo run sorts them. Examine them in that
		// order until the first verified simple cycle, as Detect does.
		for _, c := range cands {
			if c.Node < lo || c.Node >= hi {
				continue
			}
			res.Candidates++
			cycle, err := proto.witness(c)
			if err != nil {
				return nil, err
			}
			for j := range cycle {
				cycle[j] -= lo
			}
			if graph.IsSimpleCycle(g, cycle, 2*k) != nil {
				continue
			}
			res.Found = true
			res.Witness = cycle
			res.Detector = c.Node - lo
			break
		}
		results[i] = res
	}
	return results, nil
}
