package service

import (
	"context"
	"errors"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/graph"
	"repro/internal/store"
)

func corpusTestGraph(n int, seed int64) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	edges := make([][2]graph.NodeID, 0, 2*n)
	for i := 0; i < 2*n; i++ {
		edges = append(edges, [2]graph.NodeID{graph.NodeID(rng.Intn(n)), graph.NodeID(rng.Intn(n))})
	}
	return graph.FromEdges(n, edges)
}

// TestNamedGraphImmutableSnapshot holds the NamedGraph contract under
// the race detector: a graph pointer obtained before a burst of corpus
// mutations stays readable, hashable and detectable throughout, and its
// fingerprint never moves — mutation is copy-on-write, never in place.
func TestNamedGraphImmutableSnapshot(t *testing.T) {
	s := New(Config{Slots: 2, BatchSize: 1})
	g0 := corpusTestGraph(60, 1)
	if err := s.CreateCorpus("g", g0); err != nil {
		t.Fatal(err)
	}
	snap, ok := s.NamedGraph("g")
	if !ok {
		t.Fatal("corpus graph missing")
	}
	fp0 := snap.Fingerprint()

	var wg sync.WaitGroup
	// Mutators: pile edges onto the name and occasionally replace the
	// graph wholesale.
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < 50; i++ {
				_, err := s.AddCorpusEdges("g", [][2]graph.NodeID{
					{graph.NodeID(rng.Intn(60)), graph.NodeID(rng.Intn(60))},
				})
				if err != nil {
					t.Errorf("AddCorpusEdges: %v", err)
					return
				}
			}
		}(w)
	}
	// Readers: the pre-mutation snapshot must stay bit-stable while the
	// name churns underneath it.
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				if fp := snap.Fingerprint(); fp != fp0 {
					t.Errorf("snapshot fingerprint moved: %s → %s", fp0, fp)
					return
				}
				edges := 0
				for u := graph.NodeID(0); int(u) < snap.NumNodes(); u++ {
					edges += len(snap.Neighbors(u))
				}
				if edges != 2*snap.NumEdges() {
					t.Errorf("snapshot adjacency inconsistent")
					return
				}
				if _, ok := s.NamedGraph("g"); !ok {
					t.Errorf("name vanished mid-churn")
					return
				}
			}
		}()
	}
	// A detection on the old snapshot, concurrent with the churn.
	wg.Add(1)
	go func() {
		defer wg.Done()
		_, _, err := s.Do(context.Background(), &Request{Graph: snap, Algo: AlgoDet, K: 2})
		if err != nil {
			t.Errorf("detection on snapshot: %v", err)
		}
	}()
	wg.Wait()

	if fp := snap.Fingerprint(); fp != fp0 {
		t.Fatalf("snapshot mutated in place: %s → %s", fp0, fp)
	}
	cur, _ := s.NamedGraph("g")
	if cur.NumEdges() <= g0.NumEdges() {
		t.Fatalf("mutations did not land: %d → %d edges", g0.NumEdges(), cur.NumEdges())
	}
}

// TestCorpusPersistence wires a Service to a real store and proves the
// acknowledged corpus round-trips through crash-style reopen, with
// RegisterGraph (memory-only) entries excluded and fingerprints intact.
func TestCorpusPersistence(t *testing.T) {
	dir := t.TempDir()
	st, err := store.Open(dir, store.Options{CompactThreshold: -1, Logf: func(string, ...any) {}})
	if err != nil {
		t.Fatal(err)
	}
	s := New(Config{Slots: 1, BatchSize: 1, Persist: st})

	durable := corpusTestGraph(40, 2)
	if err := s.CreateCorpus("durable", durable); err != nil {
		t.Fatal(err)
	}
	if err := s.CreateCorpus("durable", durable); !errors.Is(err, ErrDuplicateCorpus) {
		t.Fatalf("duplicate CreateCorpus: err = %v, want ErrDuplicateCorpus", err)
	}
	if err := s.RegisterGraph("durable", durable); !errors.Is(err, ErrDuplicateCorpus) {
		t.Fatalf("RegisterGraph over existing: err = %v, want ErrDuplicateCorpus", err)
	}
	if err := s.RegisterGraph("ephemeral", corpusTestGraph(10, 3)); err != nil {
		t.Fatal(err)
	}
	mut, err := s.AddCorpusEdges("durable", [][2]graph.NodeID{{0, 39}, {1, 38}})
	if err != nil {
		t.Fatal(err)
	}
	ng := mut.Graph
	if mut.Noop || mut.Parent != durable.Fingerprint() || mut.Child != ng.Fingerprint() {
		t.Fatalf("mutation lineage wrong: %+v", mut)
	}
	if err := s.CreateCorpus("doomed", corpusTestGraph(12, 4)); err != nil {
		t.Fatal(err)
	}
	if err := s.DeleteCorpus("doomed"); err != nil {
		t.Fatal(err)
	}
	if err := s.DeleteCorpus("doomed"); !errors.Is(err, ErrUnknownCorpus) {
		t.Fatalf("double delete: err = %v, want ErrUnknownCorpus", err)
	}
	if _, err := s.AddCorpusEdges("missing", nil); !errors.Is(err, ErrUnknownCorpus) {
		t.Fatalf("AddCorpusEdges on unknown: err = %v, want ErrUnknownCorpus", err)
	}
	st.Close()

	st2, err := store.Open(dir, store.Options{CompactThreshold: -1, Logf: func(string, ...any) {}})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	s2 := New(Config{Slots: 1, BatchSize: 1, Persist: st2})
	if names := s2.GraphNames(); len(names) != 1 || names[0] != "durable" {
		t.Fatalf("recovered corpus = %v, want [durable] (memory-only entries must not persist)", names)
	}
	rg, ok := s2.NamedGraph("durable")
	if !ok {
		t.Fatal("durable graph missing after reopen")
	}
	if rg.Fingerprint() != ng.Fingerprint() {
		t.Fatalf("recovered fingerprint %s, want %s", rg.Fingerprint(), ng.Fingerprint())
	}

	// A poisoned store surfaces as ErrInternal, and the mutation is not
	// applied in memory either.
	st2.Close()
	if _, err := s2.AddCorpusEdges("durable", [][2]graph.NodeID{{2, 3}}); !errors.Is(err, ErrInternal) {
		t.Fatalf("mutation through closed store: err = %v, want ErrInternal", err)
	}
	if g, _ := s2.NamedGraph("durable"); g.Fingerprint() != ng.Fingerprint() {
		t.Fatal("failed durable mutation still mutated the in-memory corpus")
	}
}
