package service

import (
	"context"
	"encoding/json"
	"reflect"
	"sync"
	"testing"
	"time"

	"repro/internal/graph"
)

// batchCorpus builds `count` distinct small graphs: a mix of planted
// C_2k positives and sparse random graphs, the many-small-graphs shape
// the batched miss path exists for.
func batchCorpus(t *testing.T, k, count int, seed uint64) []*graph.Graph {
	t.Helper()
	rng := graph.NewRand(seed)
	gs := make([]*graph.Graph, count)
	for i := range gs {
		n := 32 + rng.IntN(48)
		if i%2 == 0 {
			pg, _, err := graph.PlantedLight(n, 2*k, 2.0, rng)
			if err != nil {
				t.Fatalf("planted: %v", err)
			}
			gs[i] = pg
		} else {
			gs[i] = graph.Gnm(n, 2*n, rng)
		}
	}
	return gs
}

// doAll fires one request per graph concurrently and returns the
// responses and infos in graph order.
func doAll(t *testing.T, s *Service, reqs []*Request) ([]*Response, []Info) {
	t.Helper()
	resps := make([]*Response, len(reqs))
	infos := make([]Info, len(reqs))
	var wg sync.WaitGroup
	for i, req := range reqs {
		wg.Add(1)
		go func(i int, req *Request) {
			defer wg.Done()
			resp, info, err := s.DoInfo(context.Background(), req)
			if err != nil {
				t.Errorf("request %d: %v", i, err)
				return
			}
			resps[i], infos[i] = resp, info
		}(i, req)
	}
	wg.Wait()
	return resps, infos
}

// TestBatchedDetFusesAndSeedsCache pins the tentpole counters on the
// deterministic detector: B compatible concurrent misses run as ONE
// fused engine session, every component's verdict lands in the cache
// under its own fingerprint, and responses are byte-identical to a
// batching-disabled service.
func TestBatchedDetFusesAndSeedsCache(t *testing.T) {
	const B = 6
	gs := batchCorpus(t, 2, B, 41)
	mkReqs := func() []*Request {
		reqs := make([]*Request, B)
		for i, g := range gs {
			reqs[i] = &Request{Graph: g, Algo: AlgoDet, K: 2}
		}
		return reqs
	}
	batched := New(Config{BatchSize: B, BatchLinger: 2 * time.Second})
	solo := New(Config{BatchSize: 1})

	bresps, infos := doAll(t, batched, mkReqs())
	sresps, _ := doAll(t, solo, mkReqs())

	for i := range gs {
		bj, _ := json.Marshal(bresps[i])
		sj, _ := json.Marshal(sresps[i])
		if string(bj) != string(sj) {
			t.Errorf("graph %d: batched response differs from solo:\nbatched %s\nsolo    %s", i, bj, sj)
		}
		if infos[i].Source != SourceComputed {
			t.Errorf("graph %d: source = %s, want computed", i, infos[i].Source)
		}
		if infos[i].Batch != B {
			t.Errorf("graph %d: batch = %d, want %d", i, infos[i].Batch, B)
		}
	}

	st := batched.Stats()
	if st.FusedSessions != 1 || st.SoloSessions != 0 || st.EngineSessions != 1 {
		t.Errorf("sessions: fused=%d solo=%d engine=%d, want 1/0/1",
			st.FusedSessions, st.SoloSessions, st.EngineSessions)
	}
	if st.Computed != B || st.FusedRequests != B {
		t.Errorf("computed=%d fusedRequests=%d, want %d/%d", st.Computed, st.FusedRequests, B, B)
	}
	if st.BatchesFormed != 1 || st.MaxBatchSize != B || st.MeanBatchSize != float64(B) {
		t.Errorf("batches=%d max=%d mean=%v, want 1/%d/%d",
			st.BatchesFormed, st.MaxBatchSize, st.MeanBatchSize, B, B)
	}
	if st.CacheEntries != B {
		t.Errorf("cache entries = %d, want %d (one per fused component)", st.CacheEntries, B)
	}

	// Every fused verdict must now serve from cache.
	for i, req := range mkReqs() {
		resp, info, err := batched.DoInfo(context.Background(), req)
		if err != nil {
			t.Fatalf("replay %d: %v", i, err)
		}
		if info.Source != SourceCache || info.Batch != 0 {
			t.Errorf("replay %d: source=%s batch=%d, want cache/0", i, info.Source, info.Batch)
		}
		if !reflect.DeepEqual(resp, bresps[i]) {
			t.Errorf("replay %d: cached response differs", i)
		}
	}
}

// TestBatchedEvenMatchesSoloService pins serve-path independence of the
// randomized detector: the same requests produce identical responses —
// verdicts, witnesses in each graph's own IDs, rounds, messages, bits,
// congestion — whether the service fuses them or computes each alone.
func TestBatchedEvenMatchesSoloService(t *testing.T) {
	const B = 6
	gs := batchCorpus(t, 2, B, 99)
	mkReqs := func(iters int) []*Request {
		reqs := make([]*Request, B)
		for i, g := range gs {
			reqs[i] = &Request{Graph: g, Algo: AlgoEven, K: 2, Seed: uint64(7 + i), Iterations: iters}
		}
		return reqs
	}
	batched := New(Config{BatchSize: B, BatchLinger: 200 * time.Millisecond})
	solo := New(Config{BatchSize: 1})

	bresps, _ := doAll(t, batched, mkReqs(3))
	sresps, _ := doAll(t, solo, mkReqs(3))
	for i := range gs {
		if !reflect.DeepEqual(bresps[i], sresps[i]) {
			t.Errorf("graph %d: batched response differs from solo:\nbatched %+v\nsolo    %+v",
				i, bresps[i], sresps[i])
		}
		if bresps[i].Found {
			if err := graph.IsSimpleCycle(gs[i], bresps[i].Witness, 4); err != nil {
				t.Errorf("graph %d: witness invalid in original graph: %v", i, err)
			}
		}
	}

	// Amplification through the fused path: raise the budget; not-found
	// entries run only the missing trials, identically on both services.
	bresps2, binfos2 := doAll(t, batched, mkReqs(7))
	sresps2, sinfos2 := doAll(t, solo, mkReqs(7))
	for i := range gs {
		if !reflect.DeepEqual(bresps2[i], sresps2[i]) {
			t.Errorf("amplified graph %d: batched differs from solo:\nbatched %+v\nsolo    %+v",
				i, bresps2[i], sresps2[i])
		}
		if binfos2[i].Source != sinfos2[i].Source {
			t.Errorf("amplified graph %d: source %s (batched) vs %s (solo)",
				i, binfos2[i].Source, sinfos2[i].Source)
		}
	}
}

// TestBatchedWaiterCancelStillCaches pins the abandoned-waiter contract:
// a caller whose context dies while its batch lingers gets ctx.Err(),
// but the batch still computes and caches its verdict.
func TestBatchedWaiterCancelStillCaches(t *testing.T) {
	g := graph.Gnm(40, 80, graph.NewRand(5))
	s := New(Config{BatchSize: 8, BatchLinger: 20 * time.Millisecond})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	req := &Request{Graph: g, Algo: AlgoDet, K: 2}
	if _, _, err := s.DoInfo(ctx, req); err == nil {
		t.Fatal("expected context error from canceled waiter")
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		_, info, err := s.DoInfo(context.Background(), req)
		if err != nil {
			t.Fatal(err)
		}
		if info.Source == SourceCache {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("abandoned item's verdict never reached the cache")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestBatchIncompatibleRequestsDoNotFuse pins the compatibility key:
// concurrent misses differing in k run in separate sessions.
func TestBatchIncompatibleRequestsDoNotFuse(t *testing.T) {
	gs := batchCorpus(t, 2, 2, 13)
	s := New(Config{BatchSize: 2, BatchLinger: 20 * time.Millisecond})
	reqs := []*Request{
		{Graph: gs[0], Algo: AlgoDet, K: 2},
		{Graph: gs[1], Algo: AlgoDet, K: 3},
	}
	doAll(t, s, reqs)
	st := s.Stats()
	if st.FusedSessions != 0 {
		t.Errorf("fused sessions = %d, want 0 (incompatible k)", st.FusedSessions)
	}
	if st.EngineSessions != 2 {
		t.Errorf("engine sessions = %d, want 2", st.EngineSessions)
	}
}

// TestBatchUnfusableAlgoKeepsSoloPath pins that the bounded and odd
// detectors bypass the batcher entirely.
func TestBatchUnfusableAlgoKeepsSoloPath(t *testing.T) {
	gs := batchCorpus(t, 2, 2, 21)
	s := New(Config{BatchSize: 8, BatchLinger: time.Second})
	reqs := []*Request{
		{Graph: gs[0], Algo: AlgoOdd, K: 2, Seed: 1, Iterations: 2},
		{Graph: gs[1], Algo: AlgoBounded, K: 3, Seed: 2, Iterations: 2},
	}
	start := time.Now()
	doAll(t, s, reqs)
	if elapsed := time.Since(start); elapsed > 900*time.Millisecond {
		t.Errorf("unfusable requests appear to have waited on the linger timer (%v)", elapsed)
	}
	st := s.Stats()
	if st.BatchesFormed != 0 || st.SoloSessions != 2 {
		t.Errorf("batches=%d solo=%d, want 0/2", st.BatchesFormed, st.SoloSessions)
	}
}
